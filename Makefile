# Convenience entry points; `check` is the tier-1 gate.

.PHONY: all build check test ci bench bench-json audit clean

all: build

build:
	dune build

# Tier-1 gate: build + unit/property tests, then an intentionally
# budget-starved analysis that must *complete gracefully* (degraded but
# sound bounds, exit 0) rather than raise — the robustness contract of
# the degradation ladder — plus the end-to-end store crash-safety,
# daemon lifecycle, fault-injection validation, schedulability
# campaign, grid and chaos-injection gates.
check:
	dune build && dune runtest
	dune exec bin/pwcet_tool.exe -- analyze fibcall --engine ilp --exact \
	  --timeout 0.000001 --sets 8 --ways 2
	dune exec bin/pwcet_tool.exe -- sweep fibcall --pfail-grid 1e-5,1e-4,1e-3 \
	  --verify --sets 8 --ways 2
	sh scripts/check_store.sh ./_build/default/bin/pwcet_tool.exe
	sh scripts/check_service.sh ./_build/default/bin/pwcet_tool.exe
	sh scripts/check_sim.sh ./_build/default/bin/pwcet_tool.exe
	sh scripts/check_sched.sh ./_build/default/bin/pwcet_tool.exe
	sh scripts/check_grid.sh ./_build/default/bin/pwcet_tool.exe
	sh scripts/check_chaos.sh ./_build/default/bin/pwcet_tool.exe

test: check

# What CI runs (see .github/workflows/ci.yml): the tier-1 gate plus the
# invariant auditor. Kept as a make target so CI and a local pre-push
# run are the same command.
ci: check audit

# Runtime invariant auditor over the full benchmark registry:
# per-mechanism structural checks (FMM shape/monotonicity, distribution
# mass, exceedance-curve shape, mechanism dominance) plus seeded
# Monte-Carlo fault-injection bound-violation search. Small geometry
# keeps it fast; drop the overrides for the paper-default 16x4.
audit:
	dune exec bin/pwcet_tool.exe -- audit --sets 8 --ways 2

# Full evaluation harness (paper tables/figures + Bechamel timings).
# Pass JOBS=N to set the worker-domain count (-j) explicitly.
JOBS ?=
bench:
	dune exec bench/main.exe -- $(if $(JOBS),-j $(JOBS))

# Machine-readable engine comparisons only: naive-vs-sliced FMM
# (BENCH_fmm.json), distribution-engine + pfail-sweep amortisation
# (BENCH_dist.json), artifact-store cold/warm/uncached timings
# (BENCH_store.json), the analysis daemon's cold/warm/concurrent
# latencies plus live dedup proof (BENCH_service.json), the batched
# fault-injection emulator's speedup + million-sample campaign results
# (BENCH_sim.json), the schedulability campaign's batched-vs-
# independent law-reuse speedup (BENCH_sched.json), and the one-pass
# grid engine's structural-sharing speedup (BENCH_grid.json). Every
# emitted file is then gated on carrying schema_version + git_commit.
bench-json:
	dune exec bench/main.exe -- --only fmm-json $(if $(JOBS),-j $(JOBS))
	dune exec bench/main.exe -- --only dist-json $(if $(JOBS),-j $(JOBS))
	dune exec bench/main.exe -- --only store-json $(if $(JOBS),-j $(JOBS))
	dune exec bench/main.exe -- --only service-json $(if $(JOBS),-j $(JOBS))
	dune exec bench/main.exe -- --only sim-json $(if $(JOBS),-j $(JOBS))
	dune exec bench/main.exe -- --only sched-json $(if $(JOBS),-j $(JOBS))
	dune exec bench/main.exe -- --only grid-json $(if $(JOBS),-j $(JOBS))
	sh scripts/check_bench_json.sh

clean:
	dune clean

# Convenience entry points; `check` is the tier-1 gate.

.PHONY: all build check test bench bench-json clean

all: build

build:
	dune build

check:
	dune build && dune runtest

test: check

# Full evaluation harness (paper tables/figures + Bechamel timings).
# Pass JOBS=N to set the worker-domain count (-j) explicitly.
JOBS ?=
bench:
	dune exec bench/main.exe -- $(if $(JOBS),-j $(JOBS))

# Naive-vs-sliced FMM engine comparison only; writes BENCH_fmm.json.
bench-json:
	dune exec bench/main.exe -- --only fmm-json $(if $(JOBS),-j $(JOBS))

clean:
	dune clean

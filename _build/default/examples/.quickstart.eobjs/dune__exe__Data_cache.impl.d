examples/data_cache.ml: Array Benchmarks Cache Dcache Isa List Minic Printf Pwcet Random Sys

examples/data_cache.mli:

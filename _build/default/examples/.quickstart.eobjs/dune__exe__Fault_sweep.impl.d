examples/fault_sweep.ml: Array Benchmarks Cache Fault List Minic Printf Pwcet Sys

examples/fault_sweep.mli:

examples/mechanism_tradeoff.ml: Array Benchmarks Cache Fault List Minic Printf Pwcet Reporting Sys

examples/mechanism_tradeoff.mli:

examples/montecarlo_validation.ml: Array Benchmarks Cache Fault Isa List Minic Printf Prob Pwcet Random Sys

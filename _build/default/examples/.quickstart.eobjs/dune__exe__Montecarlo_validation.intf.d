examples/montecarlo_validation.mli:

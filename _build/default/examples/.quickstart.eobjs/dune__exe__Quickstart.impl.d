examples/quickstart.ml: Cache Format Isa List Minic Printf Prob Pwcet

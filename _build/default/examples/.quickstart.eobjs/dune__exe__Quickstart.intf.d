examples/quickstart.mli:

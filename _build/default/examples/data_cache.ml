(* The data-cache transposition (the paper's Section-VI future work):
   analyse a benchmark with BOTH an instruction cache and a data cache,
   each with its own protection mechanism, and cross-check the combined
   bound against simulation with independently sampled fault maps.

     dune exec examples/data_cache.exe [benchmark] *)

let () =
  let bench_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "cnt" in
  let entry =
    match Benchmarks.Registry.find bench_name with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown benchmark %s\n" bench_name;
      exit 1
  in
  let compiled = Minic.Compile.compile entry.Benchmarks.Registry.program in
  let iconfig = Cache.Config.paper_default in
  let dconfig = Cache.Config.paper_default in
  let pfail = 1e-4 and target = 1e-15 in
  let task = Dcache.Destimator.prepare ~compiled ~iconfig ~dconfig () in

  (* How the compiler classified the data references. *)
  let exact = ref 0 and ranged = ref 0 and stack = ref 0 in
  List.iter
    (fun (_, t) ->
      match t with
      | Minic.Compile.Data_exact _ -> incr exact
      | Minic.Compile.Data_range _ -> incr ranged
      | Minic.Compile.Data_stack -> incr stack)
    compiled.Minic.Compile.data_refs;
  Printf.printf "benchmark %s: %d exact / %d ranged / %d stack data references\n\n" bench_name
    !exact !ranged !stack;

  let itask = Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config:iconfig () in
  Printf.printf "fault-free WCET: instruction cache only %d, combined I+D %d cycles\n\n"
    (Pwcet.Estimator.fault_free_wcet itask)
    task.Dcache.Destimator.wcet_ff;

  Printf.printf "pWCET(%g) with per-cache mechanisms (rows = I-cache, cols = D-cache):\n\n" target;
  Printf.printf "  %-8s %12s %12s %12s\n" "" "D:none" "D:srb" "D:rw";
  List.iter
    (fun imech ->
      Printf.printf "  I:%-6s" (Pwcet.Mechanism.short_name imech);
      List.iter
        (fun dmech ->
          let est = Dcache.Destimator.estimate task ~pfail ~imech ~dmech () in
          Printf.printf " %12d" (Dcache.Destimator.pwcet est ~target))
        Pwcet.Mechanism.all;
      print_newline ())
    Pwcet.Mechanism.all;

  (* Monte-Carlo cross-check of the combined decomposition. *)
  let est =
    Dcache.Destimator.estimate task ~pfail ~imech:Pwcet.Mechanism.No_protection
      ~dmech:Pwcet.Mechanism.No_protection ()
  in
  let state = Random.State.make [| 20260707 |] in
  let samples = 100 in
  let violations = ref 0 in
  let worst = ref 0 in
  for _ = 1 to samples do
    let ifm = Cache.Fault_map.sample iconfig ~pbf:0.2 state in
    let dfm = Cache.Fault_map.sample dconfig ~pbf:0.2 state in
    let isim = Cache.Lru.create ~fault_map:ifm iconfig in
    let cycles =
      (Minic.Compile.run
         ~fetch:(Cache.Lru.latency_oracle isim)
         ~data_access:(Dcache.Dsim.unprotected ~fault_map:dfm dconfig)
         compiled)
        .Isa.Machine.cycles
    in
    worst := max !worst cycles;
    let bound = ref task.Dcache.Destimator.wcet_ff in
    Array.iteri
      (fun s f ->
        bound :=
          !bound
          + (Pwcet.Fmm.misses est.Dcache.Destimator.ifmm ~set:s ~faulty:f
            * Cache.Config.miss_penalty iconfig))
      (Cache.Fault_map.faulty_counts ifm);
    Array.iteri
      (fun s f ->
        bound :=
          !bound
          + (Dcache.Destimator.dfmm_misses est ~set:s ~faulty:f
            * Cache.Config.miss_penalty dconfig))
      (Cache.Fault_map.faulty_counts dfm);
    if cycles > !bound then incr violations
  done;
  Printf.printf
    "\nMonte-Carlo (%d samples, aggressive pbf 0.2 in both arrays):\n\
    \  worst simulated %d cycles, decomposition-bound violations: %d (must be 0)\n"
    samples !worst !violations;
  if !violations > 0 then exit 1

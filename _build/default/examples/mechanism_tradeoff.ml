(* The designer's view: exceedance curves (the paper's Fig. 3) for one
   benchmark, plus the pWCET/hardware-cost tradeoff across cache
   geometries. RW costs one hardened way per set (S hardened blocks);
   the SRB costs a single hardened block regardless of geometry — the
   paper's point is that which one is worth it depends on the
   application (Section IV-B).

     dune exec examples/mechanism_tradeoff.exe [benchmark] *)

let () =
  let bench_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "adpcm" in
  let entry =
    match Benchmarks.Registry.find bench_name with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown benchmark %s\n" bench_name;
      exit 1
  in
  let compiled = Minic.Compile.compile entry.Benchmarks.Registry.program in
  let pfail = 1e-4 and target = 1e-15 in

  (* Fig. 3: the three exceedance curves on the paper's configuration. *)
  let config = Cache.Config.paper_default in
  let task = Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config () in
  let series =
    List.map
      (fun mechanism ->
        let est = Pwcet.Estimator.estimate task ~pfail ~mechanism () in
        (Pwcet.Mechanism.short_name mechanism, Pwcet.Estimator.exceedance_curve est))
      Pwcet.Mechanism.all
  in
  Printf.printf "Fig. 3 reproduction — %s, pfail = %g:\n\n" bench_name pfail;
  print_string (Reporting.Ascii_plot.exceedance ~series ());

  (* Geometry sweep at constant 1 KB capacity: the hardware cost of RW
     (hardened blocks) scales with the set count, the SRB's does not. *)
  Printf.printf "\npWCET(%g) across 1 KB geometries (hardened blocks: RW = sets, SRB = 1):\n\n"
    target;
  Printf.printf "  %-22s %10s %10s %10s %8s %8s\n" "geometry" "none" "srb" "rw" "rw-cost"
    "srb-cost";
  List.iter
    (fun (sets, ways) ->
      let config = Cache.Config.make ~sets ~ways ~line_bytes:16 () in
      let task = Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config () in
      let pwcet mechanism =
        Pwcet.Estimator.pwcet (Pwcet.Estimator.estimate task ~pfail ~mechanism ()) ~target
      in
      Printf.printf "  %2d sets x %d ways       %10d %10d %10d %8d %8d\n" sets ways
        (pwcet Pwcet.Mechanism.No_protection)
        (pwcet Pwcet.Mechanism.Shared_reliable_buffer)
        (pwcet Pwcet.Mechanism.Reliable_way)
        sets 1)
    [ (64, 1); (32, 2); (16, 4); (8, 8) ];

  (* Extension: the related-work Reliable Victim Cache (paper Section V,
     Abella et al.). How many hardened supplementary lines does it need
     to fully mask faults at the target probability? *)
  let pbf = Fault.Model.pbf_of_config ~pfail config in
  let rvc_size = Pwcet.Victim.min_entries_for_target config ~pbf ~target in
  let est_none =
    Pwcet.Estimator.estimate task ~pfail ~mechanism:Pwcet.Mechanism.No_protection ()
  in
  let rvc_pwcet entries =
    Pwcet.Estimator.fault_free_wcet task
    + Pwcet.Victim.quantile
        ~none_penalty:est_none.Pwcet.Estimator.penalty
        ~overflow:(Pwcet.Victim.prob_overflow config ~pbf ~entries)
        ~target
  in
  Printf.printf
    "\nRVC extension (paper's related work, Section V), paper cache, %s:\n\n" bench_name;
  Printf.printf "  full masking at %g needs %d hardened lines (RW: 16, SRB: 1)\n" target rvc_size;
  List.iter
    (fun entries ->
      Printf.printf "  RVC with %2d entries: pWCET %d\n" entries (rvc_pwcet entries))
    [ 0; rvc_size / 2; rvc_size ]

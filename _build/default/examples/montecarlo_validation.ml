(* Monte-Carlo cross-validation of the analytic pipeline: sample
   concrete fault maps from the paper's fault model, execute the
   benchmark on the faulty-cache simulators (all three hardware
   configurations), and check that

     (a) every sampled execution respects the per-pattern analytic
         bound  wcet_ff + sum_s FMM[s][f_s] * penalty, and
     (b) the empirical penalty exceedance stays below the analytic
         exceedance curve used for the pWCET.

     dune exec examples/montecarlo_validation.exe [benchmark] [samples] *)

let () =
  let bench_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fir" in
  let samples = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 400 in
  let entry =
    match Benchmarks.Registry.find bench_name with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown benchmark %s\n" bench_name;
      exit 1
  in
  let compiled = Minic.Compile.compile entry.Benchmarks.Registry.program in
  let config = Cache.Config.paper_default in
  (* A deliberately aggressive pfail so the samples actually contain
     faults (at 1e-4 nearly all sampled chips are fault-free). *)
  let pfail = 2e-3 in
  let task = Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config () in
  let ff = Pwcet.Estimator.fault_free_wcet task in
  let penalty_unit = Cache.Config.miss_penalty config in
  Printf.printf "benchmark %s, %d samples, pfail = %g (pbf = %.4f)\n\n" bench_name samples pfail
    (Fault.Model.pbf_of_config ~pfail config);
  let state = Random.State.make [| 20260706 |] in
  let fault_maps = Array.init samples (fun _ -> Fault.Sampler.fault_map config ~pfail state) in
  List.iter
    (fun mechanism ->
      let est = Pwcet.Estimator.estimate task ~pfail ~mechanism () in
      let fmm = est.Pwcet.Estimator.fmm in
      let violations = ref 0 in
      let worst_cycles = ref 0 in
      let observed = ref [] in
      Array.iter
        (fun fm ->
          let cycles =
            match mechanism with
            | Pwcet.Mechanism.No_protection ->
              let sim = Cache.Lru.create ~fault_map:fm config in
              (Minic.Compile.run ~fetch:(Cache.Lru.latency_oracle sim) compiled)
                .Isa.Machine.cycles
            | Pwcet.Mechanism.Reliable_way ->
              let sim = Cache.Reliable.rw_cache ~fault_map:fm config in
              (Minic.Compile.run ~fetch:(Cache.Lru.latency_oracle sim) compiled)
                .Isa.Machine.cycles
            | Pwcet.Mechanism.Shared_reliable_buffer ->
              let sim = Cache.Reliable.Srb.create ~fault_map:fm config in
              (Minic.Compile.run ~fetch:(Cache.Reliable.Srb.latency_oracle sim) compiled)
                .Isa.Machine.cycles
          in
          let counts =
            match mechanism with
            | Pwcet.Mechanism.Reliable_way ->
              Cache.Fault_map.faulty_counts (Cache.Fault_map.mask_way fm ~way:0)
            | _ -> Cache.Fault_map.faulty_counts fm
          in
          let bound = ref ff in
          Array.iteri
            (fun s f -> bound := !bound + (Pwcet.Fmm.misses fmm ~set:s ~faulty:f * penalty_unit))
            counts;
          if cycles > !bound then incr violations;
          worst_cycles := max !worst_cycles cycles;
          observed := cycles :: !observed)
        fault_maps;
      (* Empirical exceedance vs the analytic curve at a few probes. *)
      let observed = Array.of_list !observed in
      let analytic_curve = Pwcet.Estimator.exceedance_curve est in
      let conservative_at x =
        let emp =
          Array.fold_left (fun acc c -> if c >= x then acc + 1 else acc) 0 observed
        in
        let empirical = float_of_int emp /. float_of_int samples in
        (* P(WCET >= x) = P(penalty > x - ff - 1) on integer cycles. *)
        let analytic = Prob.Dist.exceedance est.Pwcet.Estimator.penalty (x - ff - 1) in
        (empirical, analytic)
      in
      Printf.printf "%-30s worst simulated %8d, pWCET(1e-15) %8d, bound violations %d\n"
        (Pwcet.Mechanism.name mechanism)
        !worst_cycles
        (Pwcet.Estimator.pwcet est ~target:1e-15)
        !violations;
      List.iteri
        (fun idx (x, _) ->
          if idx < 4 then begin
            let empirical, analytic = conservative_at x in
            Printf.printf "    P(WCET >= %8d): empirical %.4f  <=  analytic %.4f %s\n" x
              empirical analytic
              (if empirical <= analytic +. 0.05 then "ok" else "VIOLATION")
          end)
        analytic_curve;
      if !violations > 0 then begin
        Printf.printf "  *** soundness violation detected ***\n";
        exit 1
      end)
    Pwcet.Mechanism.all;
  Printf.printf "\nAll %d sampled fault patterns stayed within their analytic bounds,\n\
                 for all three hardware configurations.\n" samples

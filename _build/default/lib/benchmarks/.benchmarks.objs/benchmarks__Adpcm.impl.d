lib/benchmarks/adpcm.ml: Array Minic

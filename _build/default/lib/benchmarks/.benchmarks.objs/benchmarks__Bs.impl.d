lib/benchmarks/bs.ml: Minic

lib/benchmarks/bsort100.ml: Array Minic

lib/benchmarks/cnt.ml: Array Minic

lib/benchmarks/cover.ml: Minic

lib/benchmarks/crc.ml: Array Minic

lib/benchmarks/edn.ml: Array Minic

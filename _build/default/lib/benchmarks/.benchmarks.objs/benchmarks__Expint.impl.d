lib/benchmarks/expint.ml: Minic

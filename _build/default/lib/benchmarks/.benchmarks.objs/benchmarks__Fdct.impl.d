lib/benchmarks/fdct.ml: Array Minic

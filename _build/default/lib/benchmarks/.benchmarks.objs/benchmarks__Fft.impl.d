lib/benchmarks/fft.ml: Array Float Minic

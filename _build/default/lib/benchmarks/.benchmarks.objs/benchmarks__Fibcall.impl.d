lib/benchmarks/fibcall.ml: Minic

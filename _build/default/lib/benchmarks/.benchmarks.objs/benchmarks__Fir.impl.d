lib/benchmarks/fir.ml: Array Minic

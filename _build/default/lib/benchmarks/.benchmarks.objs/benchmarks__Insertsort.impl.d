lib/benchmarks/insertsort.ml: Array Minic

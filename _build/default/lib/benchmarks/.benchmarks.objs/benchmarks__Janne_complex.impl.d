lib/benchmarks/janne_complex.ml: Minic

lib/benchmarks/jfdctint.ml: Array Float Minic

lib/benchmarks/lcdnum.ml: Array Minic

lib/benchmarks/ludcmp.ml: Array Minic

lib/benchmarks/matmult.ml: Array Minic

lib/benchmarks/minver.ml: Array Minic

lib/benchmarks/ndes.ml: Array Minic

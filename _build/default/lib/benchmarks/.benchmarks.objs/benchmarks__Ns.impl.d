lib/benchmarks/ns.ml: Array Minic

lib/benchmarks/nsichneu.ml: Array Minic

lib/benchmarks/prime.ml: Minic

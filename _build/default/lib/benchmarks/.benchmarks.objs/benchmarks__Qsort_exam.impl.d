lib/benchmarks/qsort_exam.ml: Array Minic

lib/benchmarks/qurt.ml: Minic

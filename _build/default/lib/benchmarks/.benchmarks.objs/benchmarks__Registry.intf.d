lib/benchmarks/registry.mli: Minic

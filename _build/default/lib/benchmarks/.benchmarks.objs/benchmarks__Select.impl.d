lib/benchmarks/select.ml: Array Minic

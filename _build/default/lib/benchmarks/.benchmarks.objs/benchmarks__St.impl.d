lib/benchmarks/st.ml: Array Minic

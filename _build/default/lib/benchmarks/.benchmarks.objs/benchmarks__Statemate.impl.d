lib/benchmarks/statemate.ml: Array List Minic

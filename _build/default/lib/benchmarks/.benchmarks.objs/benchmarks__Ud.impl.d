lib/benchmarks/ud.ml: Array Minic

(* IMA-style ADPCM encode/decode round trip (Mälardalen adpcm.c):
   4-bit adaptive quantisation with step-size and index tables,
   prediction state shared through globals, 64-sample main loop. *)

open Minic.Dsl

let name = "adpcm"
let description = "ADPCM encoder/decoder round trip over 64 samples"

let step_table =
  [| 7; 8; 9; 10; 11; 12; 13; 14; 16; 17; 19; 21; 23; 25; 28; 31; 34; 37; 41; 45; 50; 55; 60
   ; 66; 73; 80; 88; 97; 107; 118; 130; 143; 157; 173; 190; 209; 230; 253; 279; 307; 337; 371
   ; 408; 449; 494; 544; 598; 658; 724; 796; 876; 963; 1060; 1166; 1282; 1411; 1552; 1707
   ; 1878; 2066; 2272; 2499; 2749; 3024; 3327; 3660; 4026; 4428; 4871; 5358; 5894; 6484
   ; 7132; 7845; 8630; 9493; 10442; 11487; 12635; 13899; 15289; 16818; 18500; 20350; 22385
   ; 24623; 27086; 29794; 32767
  |]

let index_table = [| -1; -1; -1; -1; 2; 4; 6; 8; -1; -1; -1; -1; 2; 4; 6; 8 |]

let samples = 64
let input = Array.init samples (fun k -> ((k * 331) mod 4001) - 2000)

let program =
  program
    ~globals:
      [ array "steps" step_table
      ; array "indices" index_table
      ; array "inp" input
      ; scalar "enc_pred" 0
      ; scalar "enc_index" 0
      ; scalar "dec_pred" 0
      ; scalar "dec_index" 0
      ]
    [ fn "clamp_index" [ "ix" ]
        [ when_ (v "ix" <: i 0) [ ret (i 0) ]
        ; when_ (v "ix" >: i 88) [ ret (i 88) ]
        ; ret (v "ix")
        ]
    ; fn "clamp16" [ "x" ]
        [ when_ (v "x" >: i 32767) [ ret (i 32767) ]
        ; when_ (v "x" <: i (-32768)) [ ret (i (-32768)) ]
        ; ret (v "x")
        ]
    ; fn "encode" [ "sample" ]
        [ decl "step" (idx "steps" (v "enc_index"))
        ; decl "diff" (v "sample" -: v "enc_pred")
        ; decl "code" (i 0)
        ; when_ (v "diff" <: i 0) [ set "code" (i 8); set "diff" (i 0 -: v "diff") ]
        ; (* Successive approximation over 3 bits. *)
          decl "tmpstep" (v "step")
        ; decl "delta" (v "step" >>>: i 3)
        ; when_ (v "diff" >=: v "tmpstep")
            [ set "code" (v "code" |: i 4)
            ; set "diff" (v "diff" -: v "tmpstep")
            ; set "delta" (v "delta" +: v "step")
            ]
        ; set "tmpstep" (v "tmpstep" >>>: i 1)
        ; when_ (v "diff" >=: v "tmpstep")
            [ set "code" (v "code" |: i 2)
            ; set "diff" (v "diff" -: v "tmpstep")
            ; set "delta" (v "delta" +: (v "step" >>>: i 1))
            ]
        ; set "tmpstep" (v "tmpstep" >>>: i 1)
        ; when_ (v "diff" >=: v "tmpstep")
            [ set "code" (v "code" |: i 1); set "delta" (v "delta" +: (v "step" >>>: i 2)) ]
        ; (* Update prediction with the reconstructed difference. *)
          if_ ((v "code" &: i 8) <>: i 0)
            [ set "enc_pred" (call "clamp16" [ v "enc_pred" -: v "delta" ]) ]
            [ set "enc_pred" (call "clamp16" [ v "enc_pred" +: v "delta" ]) ]
        ; set "enc_index" (call "clamp_index" [ v "enc_index" +: idx "indices" (v "code") ])
        ; ret (v "code")
        ]
    ; fn "decode" [ "code" ]
        [ decl "step" (idx "steps" (v "dec_index"))
        ; decl "delta" (v "step" >>>: i 3)
        ; when_ ((v "code" &: i 4) <>: i 0) [ set "delta" (v "delta" +: v "step") ]
        ; when_ ((v "code" &: i 2) <>: i 0) [ set "delta" (v "delta" +: (v "step" >>>: i 1)) ]
        ; when_ ((v "code" &: i 1) <>: i 0) [ set "delta" (v "delta" +: (v "step" >>>: i 2)) ]
        ; if_ ((v "code" &: i 8) <>: i 0)
            [ set "dec_pred" (call "clamp16" [ v "dec_pred" -: v "delta" ]) ]
            [ set "dec_pred" (call "clamp16" [ v "dec_pred" +: v "delta" ]) ]
        ; set "dec_index" (call "clamp_index" [ v "dec_index" +: idx "indices" (v "code") ])
        ; ret (v "dec_pred")
        ]
    ; fn "main" []
        [ decl "err" (i 0)
        ; for_ "k" (i 0) (i samples)
            [ decl "sample" (idx "inp" (v "k"))
            ; decl "code" (call "encode" [ v "sample" ])
            ; decl "rec" (call "decode" [ v "code" ])
            ; decl "d" (v "sample" -: v "rec")
            ; when_ (v "d" <: i 0) [ set "d" (i 0 -: v "d") ]
            ; set "err" (v "err" +: v "d")
            ]
        ; ret (v "err")
        ]
    ]

(* OCaml oracle: identical integer pipeline. *)
let expected =
  let clamp_index ix = if ix < 0 then 0 else if ix > 88 then 88 else ix in
  let clamp16 x = if x > 32767 then 32767 else if x < -32768 then -32768 else x in
  let enc_pred = ref 0 and enc_index = ref 0 and dec_pred = ref 0 and dec_index = ref 0 in
  let encode sample =
    let step = step_table.(!enc_index) in
    let diff = ref (sample - !enc_pred) in
    let code = ref 0 in
    if !diff < 0 then begin
      code := 8;
      diff := - !diff
    end;
    let tmpstep = ref step in
    let delta = ref (step asr 3) in
    if !diff >= !tmpstep then begin
      code := !code lor 4;
      diff := !diff - !tmpstep;
      delta := !delta + step
    end;
    tmpstep := !tmpstep asr 1;
    if !diff >= !tmpstep then begin
      code := !code lor 2;
      diff := !diff - !tmpstep;
      delta := !delta + (step asr 1)
    end;
    tmpstep := !tmpstep asr 1;
    if !diff >= !tmpstep then begin
      code := !code lor 1;
      delta := !delta + (step asr 2)
    end;
    if !code land 8 <> 0 then enc_pred := clamp16 (!enc_pred - !delta)
    else enc_pred := clamp16 (!enc_pred + !delta);
    enc_index := clamp_index (!enc_index + index_table.(!code));
    !code
  in
  let decode code =
    let step = step_table.(!dec_index) in
    let delta = ref (step asr 3) in
    if code land 4 <> 0 then delta := !delta + step;
    if code land 2 <> 0 then delta := !delta + (step asr 1);
    if code land 1 <> 0 then delta := !delta + (step asr 2);
    if code land 8 <> 0 then dec_pred := clamp16 (!dec_pred - !delta)
    else dec_pred := clamp16 (!dec_pred + !delta);
    dec_index := clamp_index (!dec_index + index_table.(code));
    !dec_pred
  in
  let err = ref 0 in
  Array.iter
    (fun sample ->
      let code = encode sample in
      let rec_ = decode code in
      err := !err + abs (sample - rec_))
    input;
  !err

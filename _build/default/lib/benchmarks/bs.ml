(* Binary search of a 15-entry sorted table (Mälardalen bs.c). *)

open Minic.Dsl

let name = "bs"
let description = "binary search of a 15-entry sorted array"

let program =
  program
    ~globals:[ array_n "data" 15 (fun k -> (k * 4) + 1) ]
    [ fn "binary_search" [ "x" ]
        [ decl "fvalue" (i (-1))
        ; decl "low" (i 0)
        ; decl "up" (i 14)
        ; (* 15 elements: the interval halves each round, 4 rounds max. *)
          while_ ~bound:4
            (v "low" <=: v "up")
            [ decl "mid" ((v "low" +: v "up") /: i 2)
            ; if_
                (idx "data" (v "mid") ==: v "x")
                [ set "up" (v "low" -: i 1); set "fvalue" (v "mid") ]
                [ if_
                    (idx "data" (v "mid") >: v "x")
                    [ set "up" (v "mid" -: i 1) ]
                    [ set "low" (v "mid" +: i 1) ]
                ]
            ]
        ; ret (v "fvalue")
        ]
    ; fn "main" [] [ ret (call "binary_search" [ i 29 ] +: (call "binary_search" [ i 30 ] *: i 100)) ]
    ]

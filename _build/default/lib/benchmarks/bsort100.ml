(* Bubble sort of 100 elements (Mälardalen bsort100.c). *)

open Minic.Dsl

let name = "bsort100"
let description = "bubble sort of a 100-element array"

let initial = Array.init 100 (fun k -> ((k * 71) + 13) mod 199)

let program =
  program
    ~globals:[ array "arr" initial ]
    [ fn "main" []
        [ decl "sorted" (i 0)
        ; for_b "pass" (i 0) (i 99) ~bound:99
            [ when_
                (v "sorted" ==: i 0)
                [ set "sorted" (i 1)
                ; for_ "j" (i 0) (i 99)
                    [ when_
                        (idx "arr" (v "j") >: idx "arr" (v "j" +: i 1))
                        [ decl "temp" (idx "arr" (v "j"))
                        ; store "arr" (v "j") (idx "arr" (v "j" +: i 1))
                        ; store "arr" (v "j" +: i 1) (v "temp")
                        ; set "sorted" (i 0)
                        ]
                    ]
                ]
            ]
        ; decl "sum" (i 0)
        ; for_ "k" (i 0) (i 100) [ set "sum" (v "sum" +: (idx "arr" (v "k") *: (v "k" +: i 1))) ]
        ; ret (v "sum")
        ]
    ]

let expected =
  let sorted = Array.copy initial in
  Array.sort compare sorted;
  let total = ref 0 in
  Array.iteri (fun k x -> total := !total + (x * (k + 1))) sorted;
  !total

(* Count and sum positive/negative entries of a 10x10 matrix
   (Mälardalen cnt.c). *)

open Minic.Dsl

let name = "cnt"
let description = "count and sum positives/negatives in a 10x10 matrix"

let initial = Array.init 100 (fun k -> ((k * 37) mod 19) - 9)

let program =
  program
    ~globals:
      [ array "mat" initial
      ; scalar "postotal" 0
      ; scalar "negtotal" 0
      ; scalar "poscnt" 0
      ; scalar "negcnt" 0
      ]
    [ fn "sum_matrix" []
        [ for_ "r" (i 0) (i 10)
            [ for_ "c" (i 0) (i 10)
                [ decl "x" (idx "mat" ((v "r" *: i 10) +: v "c"))
                ; if_
                    (v "x" >: i 0)
                    [ set "postotal" (v "postotal" +: v "x"); set "poscnt" (v "poscnt" +: i 1) ]
                    [ set "negtotal" (v "negtotal" +: v "x"); set "negcnt" (v "negcnt" +: i 1) ]
                ]
            ]
        ; ret0
        ]
    ; fn "main" []
        [ expr (call "sum_matrix" [])
        ; ret
            ((v "postotal" *: i 1000000) +: (v "poscnt" *: i 10000)
            +: (v "negcnt" *: i 100) -: v "negtotal")
        ]
    ]

let expected =
  let postotal = ref 0 and negtotal = ref 0 and poscnt = ref 0 and negcnt = ref 0 in
  Array.iter
    (fun x ->
      if x > 0 then begin
        postotal := !postotal + x;
        incr poscnt
      end
      else begin
        negtotal := !negtotal + x;
        incr negcnt
      end)
    initial;
  (!postotal * 1000000) + (!poscnt * 10000) + (!negcnt * 100) - !negtotal

(* Large switch coverage (Mälardalen cover.c): three dispatch functions
   of 60, 20 and 10 cases driven in a loop. The if-else chains give the
   program a large straight-line footprint, like the original's
   switches. *)

open Minic.Dsl

let name = "cover"
let description = "switch coverage: 60/20/10-case dispatchers in a loop"

let encode k = ((k * k) + (3 * k) + 7) mod 97

(* if (c == 0) return e0; else if (c == 1) ... else return e_{n-1}; *)
let rec cases c k n =
  if k = n - 1 then [ ret (i (encode k)) ]
  else [ if_ (v c ==: i k) [ ret (i (encode k)) ] (cases c (k + 1) n) ]

let program =
  program
    [ fn "swi60" [ "c" ] (cases "c" 0 60)
    ; fn "swi20" [ "c" ] (cases "c" 0 20)
    ; fn "swi10" [ "c" ] (cases "c" 0 10)
    ; fn "main" []
        [ decl "s" (i 0)
        ; for_ "k" (i 0) (i 60)
            [ set "s" (v "s" +: call "swi60" [ v "k" ]) ]
        ; for_ "k" (i 0) (i 60)
            [ set "s" (v "s" +: call "swi20" [ v "k" %: i 20 ]) ]
        ; for_ "k" (i 0) (i 60)
            [ set "s" (v "s" +: call "swi10" [ v "k" %: i 10 ]) ]
        ; ret (v "s")
        ]
    ]

let expected =
  let sum = ref 0 in
  for k = 0 to 59 do
    sum := !sum + encode k
  done;
  for k = 0 to 59 do
    sum := !sum + encode (k mod 20)
  done;
  for k = 0 to 59 do
    sum := !sum + encode (k mod 10)
  done;
  !sum

(* CCITT CRC-16 over a 40-byte message, bitwise (Mälardalen crc.c,
   table-free variant). *)

open Minic.Dsl

let name = "crc"
let description = "bitwise CRC-16/CCITT over a 40-byte message"

let message = Array.init 40 (fun k -> ((k * k) + 3) mod 256)

let program =
  program
    ~globals:[ array "msg" message ]
    [ fn "crc16" []
        [ decl "crc" (i 0xFFFF)
        ; for_ "k" (i 0) (i 40)
            [ set "crc" (v "crc" ^: (idx "msg" (v "k") <<: i 8))
            ; for_ "bit" (i 0) (i 8)
                [ if_
                    ((v "crc" &: i 0x8000) <>: i 0)
                    [ set "crc" (((v "crc" <<: i 1) ^: i 0x1021) &: i 0xFFFF) ]
                    [ set "crc" ((v "crc" <<: i 1) &: i 0xFFFF) ]
                ]
            ]
        ; ret (v "crc")
        ]
    ; fn "main" [] [ ret (call "crc16" []) ]
    ]

let expected =
  let crc = ref 0xFFFF in
  Array.iter
    (fun byte ->
      crc := !crc lxor (byte lsl 8);
      for _ = 0 to 7 do
        if !crc land 0x8000 <> 0 then crc := ((!crc lsl 1) lxor 0x1021) land 0xFFFF
        else crc := (!crc lsl 1) land 0xFFFF
      done)
    message;
  !crc

(* Signal-processing kernel collection (Mälardalen edn.c): vector
   multiply-accumulate, dot-product MAC, lattice synthesis, IIR
   biquad and codebook search, chained from main. *)

open Minic.Dsl

let name = "edn"
let description = "DSP kernel collection: vec_mpy, mac, latsynth, iir, codebook"

let len = 60
let a_init = Array.init len (fun k -> ((k * 23) mod 101) - 50)
let b_init = Array.init len (fun k -> ((k * 47) mod 89) - 44)
let coef_init = Array.init 16 (fun k -> ((k * 9) mod 25) - 12)

let program =
  program
    ~globals:
      [ array "va" a_init
      ; array "vb" b_init
      ; array "coef" coef_init
      ; array "state" (Array.make 16 0)
      ; scalar "acc" 0
      ]
    [ fn "vec_mpy" [ "shift" ]
        [ for_ "k" (i 0) (i len)
            [ store "va" (v "k") (idx "va" (v "k") +: ((idx "vb" (v "k") *: i 25) >>>: v "shift")) ]
        ; ret0
        ]
    ; fn "mac" []
        [ decl "dot" (i 0)
        ; decl "sqr" (i 0)
        ; for_ "k" (i 0) (i len)
            [ set "dot" (v "dot" +: (idx "va" (v "k") *: idx "vb" (v "k")))
            ; set "sqr" (v "sqr" +: (idx "vb" (v "k") *: idx "vb" (v "k")))
            ]
        ; ret (v "dot" +: v "sqr")
        ]
    ; fn "latsynth" [ "n" ]
        [ decl "top" (idx "va" (i 0))
        ; decl "k" (v "n" -: i 1)
        ; while_ ~bound:16
            (v "k" >: i 0)
            [ set "top" (v "top" -: ((idx "coef" (v "k") *: idx "state" (v "k")) >>>: i 4))
            ; store "state" (v "k")
                (idx "state" (v "k" -: i 1) +: ((idx "coef" (v "k") *: v "top") >>>: i 4))
            ; set "k" (v "k" -: i 1)
            ]
        ; store "state" (i 0) (v "top")
        ; ret (v "top")
        ]
    ; fn "iir1" [ "x" ]
        [ (* Direct-form biquad with fixed coefficients. *)
          decl "y"
            (((i 29 *: v "x") +: (i 17 *: idx "state" (i 14)) -: (i 11 *: idx "state" (i 15)))
            >>>: i 5)
        ; store "state" (i 15) (idx "state" (i 14))
        ; store "state" (i 14) (v "y")
        ; ret (v "y")
        ]
    ; fn "codebook" [ "mask" ]
        [ decl "best" (i 0)
        ; decl "bestdist" (i 1000000000)
        ; for_ "c" (i 0) (i 16)
            [ decl "dist" (i 0)
            ; for_ "k" (i 0) (i 16)
                [ decl "d" (idx "va" (v "k") -: (idx "coef" (v "k") ^: (v "c" &: v "mask")))
                ; set "dist" (v "dist" +: (v "d" *: v "d"))
                ]
            ; when_ (v "dist" <: v "bestdist") [ set "bestdist" (v "dist"); set "best" (v "c") ]
            ]
        ; ret (v "best")
        ]
    ; fn "main" []
        [ expr (call "vec_mpy" [ i 3 ])
        ; decl "m" (call "mac" [])
        ; decl "l" (i 0)
        ; for_ "r" (i 0) (i 8) [ set "l" (v "l" +: call "latsynth" [ i 16 ]) ]
        ; decl "y" (i 0)
        ; for_ "r" (i 0) (i 16) [ set "y" (v "y" +: call "iir1" [ idx "vb" (v "r") ]) ]
        ; decl "cb" (call "codebook" [ i 7 ])
        ; ret (v "m" +: v "l" +: v "y" +: v "cb")
        ]
    ]

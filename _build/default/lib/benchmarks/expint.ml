(* Exponential integral (Mälardalen expint.c), transcribed to
   fixed-point: the continued-fraction branch and the power-series
   branch, preserving the original's loop structure. *)

open Minic.Dsl

let name = "expint"
let description = "fixed-point exponential integral (series + continued fraction)"

let scale = 1 lsl 10

let program =
  program
    [ fn "expint_cf" [ "n"; "x" ]
        [ (* Continued-fraction branch, 20 refinement rounds. *)
          decl "b" (v "x" +: i (scale * 1))
        ; decl "c" (i (1 lsl 20))
        ; decl "d" ((i (scale * scale)) /: (v "b" +: i 1))
        ; decl "h" (v "d")
        ; for_ "k" (i 1) (i 21)
            [ decl "an" (v "k" *: (v "n" -: i 1 +: v "k"))
            ; set "b" (v "b" +: i (2 * scale))
            ; set "d" ((i (scale * scale)) /: ((v "an" /: i 16) +: v "b" +: i 1))
            ; set "c" (v "b" +: ((v "an" *: i 16) /: (v "c" +: i 1)))
            ; when_ (v "c" ==: i 0) [ set "c" (i 1) ]
            ; decl "del" ((v "c" *: v "d") /: i scale)
            ; set "h" ((v "h" *: v "del") /: i scale)
            ]
        ; ret (v "h")
        ]
    ; fn "expint_series" [ "n"; "x" ]
        [ decl "sum" (i 0)
        ; decl "fact" (i 1)
        ; for_ "k" (i 1) (i 11)
            [ set "fact" (v "fact" *: v "k")
            ; when_ (v "fact" >: i 100000) [ set "fact" (i 100000) ]
            ; set "sum" (v "sum" +: ((v "x" *: i scale) /: (v "fact" *: v "k")))
            ]
        ; ret (v "sum" +: v "n")
        ]
    ; fn "main" []
        [ decl "r1" (call "expint_cf" [ i 50; i (2 * scale) ])
        ; decl "r2" (call "expint_series" [ i 50; i (scale / 2) ])
        ; ret (v "r1" +: v "r2")
        ]
    ]

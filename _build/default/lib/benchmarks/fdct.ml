(* Fast 8x8 forward DCT, JPEG islow butterflies (Mälardalen fdct.c):
   row pass then column pass over an integer block. *)

open Minic.Dsl

let name = "fdct"
let description = "8x8 integer DCT, butterfly (islow) implementation"

let block_init = Array.init 64 (fun k -> ((k * 49) mod 255) - 127)

(* JPEG 13-bit fixed-point constants. *)
let c0_298 = 2446
let c0_541 = 4433
let c0_765 = 6270
let c0_899 = 7373
let c1_175 = 9633
let c1_501 = 12299
let c1_847 = 15137
let c1_961 = 16069
let c2_053 = 16819
let c2_562 = 20995
let c3_072 = 25172
let c0_390 = 3196
let const_bits = 13

(* One butterfly pass; [at] computes the index expression of lane [k]. *)
let pass at out_shift =
  [ decl "b0" (idx "blk" (at 0)); decl "b1" (idx "blk" (at 1))
  ; decl "b2" (idx "blk" (at 2)); decl "b3" (idx "blk" (at 3))
  ; decl "b4" (idx "blk" (at 4)); decl "b5" (idx "blk" (at 5))
  ; decl "b6" (idx "blk" (at 6)); decl "b7" (idx "blk" (at 7))
  ; decl "t0" (v "b0" +: v "b7"); decl "t7" (v "b0" -: v "b7")
  ; decl "t1" (v "b1" +: v "b6"); decl "t6" (v "b1" -: v "b6")
  ; decl "t2" (v "b2" +: v "b5"); decl "t5" (v "b2" -: v "b5")
  ; decl "t3" (v "b3" +: v "b4"); decl "t4" (v "b3" -: v "b4")
  ; decl "t10" (v "t0" +: v "t3"); decl "t13" (v "t0" -: v "t3")
  ; decl "t11" (v "t1" +: v "t2"); decl "t12" (v "t1" -: v "t2")
  ; store "blk" (at 0) ((v "t10" +: v "t11") <<: i 2 >>>: i out_shift)
  ; store "blk" (at 4) ((v "t10" -: v "t11") <<: i 2 >>>: i out_shift)
  ; decl "z1e" ((v "t12" +: v "t13") *: i c0_541)
  ; store "blk" (at 2)
      ((v "z1e" +: (v "t13" *: i c0_765)) >>>: i (const_bits - 2) >>>: i out_shift)
  ; store "blk" (at 6)
      ((v "z1e" -: (v "t12" *: i c1_847)) >>>: i (const_bits - 2) >>>: i out_shift)
  ; decl "z1" (v "t4" +: v "t7"); decl "z2" (v "t5" +: v "t6")
  ; decl "z3" (v "t4" +: v "t6"); decl "z4" (v "t5" +: v "t7")
  ; decl "z5" ((v "z3" +: v "z4") *: i c1_175)
  ; decl "s4" (v "t4" *: i c0_298); decl "s5" (v "t5" *: i c2_053)
  ; decl "s6" (v "t6" *: i c3_072); decl "s7" (v "t7" *: i c1_501)
  ; set "z1" (i 0 -: (v "z1" *: i c0_899)); set "z2" (i 0 -: (v "z2" *: i c2_562))
  ; set "z3" ((i 0 -: (v "z3" *: i c1_961)) +: v "z5")
  ; set "z4" ((i 0 -: (v "z4" *: i c0_390)) +: v "z5")
  ; store "blk" (at 7)
      ((v "s4" +: v "z1" +: v "z3") >>>: i (const_bits - 2) >>>: i out_shift)
  ; store "blk" (at 5)
      ((v "s5" +: v "z2" +: v "z4") >>>: i (const_bits - 2) >>>: i out_shift)
  ; store "blk" (at 3)
      ((v "s6" +: v "z2" +: v "z3") >>>: i (const_bits - 2) >>>: i out_shift)
  ; store "blk" (at 1)
      ((v "s7" +: v "z1" +: v "z4") >>>: i (const_bits - 2) >>>: i out_shift)
  ]

let program =
  program
    ~globals:[ array "blk" block_init ]
    [ fn "fdct_rows" []
        [ for_ "r" (i 0) (i 8) (pass (fun k -> (v "r" *: i 8) +: i k) 0); ret0 ]
    ; fn "fdct_cols" []
        [ for_ "c" (i 0) (i 8) (pass (fun k -> (i (8 * k)) +: v "c") 5); ret0 ]
    ; fn "main" []
        [ expr (call "fdct_rows" [])
        ; expr (call "fdct_cols" [])
        ; decl "sum" (i 0)
        ; for_ "k" (i 0) (i 64)
            [ decl "x" (idx "blk" (v "k"))
            ; when_ (v "x" <: i 0) [ set "x" (i 0 -: v "x") ]
            ; set "sum" (v "sum" +: v "x")
            ]
        ; ret (v "sum")
        ]
    ]

(* OCaml oracle mirroring the integer pipeline. *)
let expected =
  let blk = Array.copy block_init in
  let pass at out_shift =
    let b = Array.init 8 (fun k -> blk.(at k)) in
    let t0 = b.(0) + b.(7) and t7 = b.(0) - b.(7) in
    let t1 = b.(1) + b.(6) and t6 = b.(1) - b.(6) in
    let t2 = b.(2) + b.(5) and t5 = b.(2) - b.(5) in
    let t3 = b.(3) + b.(4) and t4 = b.(3) - b.(4) in
    let t10 = t0 + t3 and t13 = t0 - t3 in
    let t11 = t1 + t2 and t12 = t1 - t2 in
    blk.(at 0) <- (((t10 + t11) lsl 2)) asr out_shift;
    blk.(at 4) <- ((t10 - t11) lsl 2) asr out_shift;
    let z1e = (t12 + t13) * c0_541 in
    blk.(at 2) <- ((z1e + (t13 * c0_765)) asr (const_bits - 2)) asr out_shift;
    blk.(at 6) <- ((z1e - (t12 * c1_847)) asr (const_bits - 2)) asr out_shift;
    let z1 = t4 + t7 and z2 = t5 + t6 and z3 = t4 + t6 and z4 = t5 + t7 in
    let z5 = (z3 + z4) * c1_175 in
    let s4 = t4 * c0_298 and s5 = t5 * c2_053 and s6 = t6 * c3_072 and s7 = t7 * c1_501 in
    let z1 = -(z1 * c0_899) and z2 = -(z2 * c2_562) in
    let z3 = -(z3 * c1_961) + z5 and z4 = -(z4 * c0_390) + z5 in
    blk.(at 7) <- ((s4 + z1 + z3) asr (const_bits - 2)) asr out_shift;
    blk.(at 5) <- ((s5 + z2 + z4) asr (const_bits - 2)) asr out_shift;
    blk.(at 3) <- ((s6 + z2 + z3) asr (const_bits - 2)) asr out_shift;
    blk.(at 1) <- ((s7 + z1 + z4) asr (const_bits - 2)) asr out_shift
  in
  for r = 0 to 7 do
    pass (fun k -> (r * 8) + k) 0
  done;
  for c = 0 to 7 do
    pass (fun k -> (8 * k) + c) 5
  done;
  Array.fold_left (fun acc x -> acc + abs x) 0 blk

(* 32-point radix-2 decimation-in-time FFT in fixed point (Mälardalen
   fft1.c transcribed to integers, scale 2^14 twiddles). *)

open Minic.Dsl

let name = "fft"
let description = "32-point fixed-point radix-2 FFT"

let n = 32
let scale = 1 lsl 14

(* Quarter-resolution twiddle tables, indexed by angle step. *)
let cos_table = Array.init n (fun k -> int_of_float (Float.round (cos (2.0 *. Float.pi *. float_of_int k /. float_of_int n) *. float_of_int scale)))
let sin_table = Array.init n (fun k -> int_of_float (Float.round (sin (2.0 *. Float.pi *. float_of_int k /. float_of_int n) *. float_of_int scale)))

let signal = Array.init n (fun k -> ((k * 97) mod 127) - 63)

let program =
  program
    ~globals:
      [ array "re" signal
      ; array "im" (Array.make n 0)
      ; array "ct" cos_table
      ; array "st" sin_table
      ]
    [ fn "bit_reverse" []
        [ decl "j" (i 0)
        ; for_ "k" (i 0) (i (n - 1))
            [ when_
                (v "k" <: v "j")
                [ decl "tr" (idx "re" (v "k"))
                ; store "re" (v "k") (idx "re" (v "j"))
                ; store "re" (v "j") (v "tr")
                ; decl "ti" (idx "im" (v "k"))
                ; store "im" (v "k") (idx "im" (v "j"))
                ; store "im" (v "j") (v "ti")
                ]
            ; decl "m" (i (n / 2))
            ; while_ ~bound:5
                ((v "m" >=: i 1) &&: (v "j" >=: v "m"))
                [ set "j" (v "j" -: v "m"); set "m" (v "m" /: i 2) ]
            ; set "j" (v "j" +: v "m")
            ]
        ; ret0
        ]
    ; fn "fft" []
        [ expr (call "bit_reverse" [])
        ; decl "le" (i 2)
        ; (* log2(32) = 5 stages. *)
          while_ ~bound:5
            (v "le" <=: i n)
            [ decl "le2" (v "le" /: i 2)
            ; decl "step" (i n /: v "le")
            ; for_b "j" (i 0) (v "le2") ~bound:16
                [ decl "wr" (idx "ct" (v "j" *: v "step"))
                ; decl "wi" (i 0 -: idx "st" (v "j" *: v "step"))
                ; decl "k" (v "j")
                ; while_ ~bound:16
                    (v "k" <: i n)
                    [ decl "ip" (v "k" +: v "le2")
                    ; decl "tr"
                        (((v "wr" *: idx "re" (v "ip")) -: (v "wi" *: idx "im" (v "ip")))
                        >>>: i 14)
                    ; decl "ti"
                        (((v "wr" *: idx "im" (v "ip")) +: (v "wi" *: idx "re" (v "ip")))
                        >>>: i 14)
                    ; store "re" (v "ip") (idx "re" (v "k") -: v "tr")
                    ; store "im" (v "ip") (idx "im" (v "k") -: v "ti")
                    ; store "re" (v "k") (idx "re" (v "k") +: v "tr")
                    ; store "im" (v "k") (idx "im" (v "k") +: v "ti")
                    ; set "k" (v "k" +: v "le")
                    ]
                ]
            ; set "le" (v "le" *: i 2)
            ]
        ; ret0
        ]
    ; fn "main" []
        [ expr (call "fft" [])
        ; decl "sum" (i 0)
        ; for_ "k" (i 0) (i n)
            [ decl "r" (idx "re" (v "k"))
            ; when_ (v "r" <: i 0) [ set "r" (i 0 -: v "r") ]
            ; decl "q" (idx "im" (v "k"))
            ; when_ (v "q" <: i 0) [ set "q" (i 0 -: v "q") ]
            ; set "sum" (v "sum" +: v "r" +: v "q")
            ]
        ; ret (v "sum")
        ]
    ]

(* OCaml oracle mirroring the integer arithmetic exactly. *)
let expected =
  let re = Array.copy signal and im = Array.make n 0 in
  (* bit reverse *)
  let j = ref 0 in
  for k = 0 to n - 2 do
    if k < !j then begin
      let t = re.(k) in
      re.(k) <- re.(!j);
      re.(!j) <- t;
      let t = im.(k) in
      im.(k) <- im.(!j);
      im.(!j) <- t
    end;
    let m = ref (n / 2) in
    while !m >= 1 && !j >= !m do
      j := !j - !m;
      m := !m / 2
    done;
    j := !j + !m
  done;
  let le = ref 2 in
  while !le <= n do
    let le2 = !le / 2 in
    let step = n / !le in
    for j = 0 to le2 - 1 do
      let wr = cos_table.(j * step) and wi = -sin_table.(j * step) in
      let k = ref j in
      while !k < n do
        let ip = !k + le2 in
        let tr = ((wr * re.(ip)) - (wi * im.(ip))) asr 14 in
        let ti = ((wr * im.(ip)) + (wi * re.(ip))) asr 14 in
        re.(ip) <- re.(!k) - tr;
        im.(ip) <- im.(!k) - ti;
        re.(!k) <- re.(!k) + tr;
        im.(!k) <- im.(!k) + ti;
        k := !k + !le
      done
    done;
    le := !le * 2
  done;
  let sum = ref 0 in
  for k = 0 to n - 1 do
    sum := !sum + abs re.(k) + abs im.(k)
  done;
  !sum

(* Iterative Fibonacci (Mälardalen fibcall.c): fib(30). *)

open Minic.Dsl

let name = "fibcall"
let description = "iterative Fibonacci, fib(30)"

let program =
  program
    [ fn "fib" [ "n" ]
        [ decl "fnew" (i 1)
        ; decl "fold" (i 0)
        ; decl "temp" (i 0)
        ; for_b "j" (i 2) (v "n" +: i 1) ~bound:29
            [ set "temp" (v "fnew")
            ; set "fnew" (v "fnew" +: v "fold")
            ; set "fold" (v "temp")
            ]
        ; ret (v "fnew")
        ]
    ; fn "main" [] [ ret (call "fib" [ i 30 ]) ]
    ]

(* FIR filter over a sample buffer (Mälardalen fir.c). *)

open Minic.Dsl

let name = "fir"
let description = "16-tap FIR filter over 64 samples"

let taps = 16
let samples = 64
let coef = Array.init taps (fun k -> ((k * 11) mod 31) - 15)
let input = Array.init samples (fun k -> ((k * 57) mod 201) - 100)

let program =
  program
    ~globals:
      [ array "coef" coef; array "inp" input; array "outp" (Array.make samples 0) ]
    [ fn "fir_filter" []
        [ for_ "n" (i (taps - 1)) (i samples)
            [ decl "acc" (i 0)
            ; for_ "k" (i 0) (i taps)
                [ set "acc" (v "acc" +: (idx "coef" (v "k") *: idx "inp" (v "n" -: v "k"))) ]
            ; store "outp" (v "n") (v "acc" >>>: i 6)
            ]
        ; ret0
        ]
    ; fn "main" []
        [ expr (call "fir_filter" [])
        ; decl "sum" (i 0)
        ; for_ "n" (i 0) (i samples) [ set "sum" (v "sum" +: idx "outp" (v "n")) ]
        ; ret (v "sum")
        ]
    ]

let expected =
  let out = Array.make samples 0 in
  for n = taps - 1 to samples - 1 do
    let acc = ref 0 in
    for k = 0 to taps - 1 do
      acc := !acc + (coef.(k) * input.(n - k))
    done;
    out.(n) <- !acc asr 6
  done;
  Array.fold_left ( + ) 0 out

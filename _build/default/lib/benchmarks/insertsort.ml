(* Insertion sort of 10 elements (Mälardalen insertsort.c). *)

open Minic.Dsl

let name = "insertsort"
let description = "insertion sort of a 10-element array"

let initial = [| 11; 10; 9; 8; 7; 6; 5; 4; 3; 2 |]

let program =
  program
    ~globals:[ array "a" initial ]
    [ fn "main" []
        [ for_ "k" (i 1) (i 10)
            [ decl "key" (idx "a" (v "k"))
            ; decl "j" (v "k" -: i 1)
            ; while_ ~bound:9
                ((v "j" >=: i 0) &&: (idx "a" (v "j") >: v "key"))
                [ store "a" (v "j" +: i 1) (idx "a" (v "j")); set "j" (v "j" -: i 1) ]
            ; store "a" (v "j" +: i 1) (v "key")
            ]
        ; (* Position-weighted checksum proves sortedness. *)
          decl "sum" (i 0)
        ; for_ "k" (i 0) (i 10) [ set "sum" (v "sum" +: (idx "a" (v "k") *: (v "k" +: i 1))) ]
        ; ret (v "sum")
        ]
    ]

(* The checksum an OCaml oracle computes on the same input. *)
let expected =
  let sorted = Array.copy initial in
  Array.sort compare sorted;
  let total = ref 0 in
  Array.iteri (fun k x -> total := !total + (x * (k + 1))) sorted;
  !total

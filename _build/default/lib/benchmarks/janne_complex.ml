(* Interdependent nested while loops (Mälardalen janne_complex.c) —
   designed to stress loop-bound reasoning. *)

open Minic.Dsl

let name = "janne_complex"
let description = "two nested while loops with interdependent counters"

let program =
  program
    [ fn "complex" [ "a"; "b" ]
        [ while_ ~bound:30
            (v "a" <: i 30)
            [ while_ ~bound:30
                (v "b" <: v "a")
                [ if_ (v "b" >: i 5) [ set "b" (v "b" *: i 3) ] [ set "b" (v "b" +: i 2) ]
                ; if_
                    ((v "b" >=: i 10) &&: (v "b" <=: i 12))
                    [ set "a" (v "a" +: i 10) ]
                    [ set "a" (v "a" +: i 1) ]
                ]
            ; set "a" (v "a" +: i 2)
            ; set "b" (v "b" -: i 10)
            ]
        ; ret (i 1)
        ]
    ; fn "main" [] [ ret (call "complex" [ i 1; i 1 ]) ]
    ]

let expected = 1

(* Accurate table-driven 8x8 DCT (Mälardalen jfdctint.c flavour): the
   "slow" variant as a separable matrix product against a fixed-point
   cosine table — structurally a 3-level loop nest per pass, in
   contrast to fdct's straight-line butterflies. *)

open Minic.Dsl

let name = "jfdctint"
let description = "8x8 integer DCT, table-driven (slow accurate) implementation"

let block_init = Array.init 64 (fun k -> ((k * 31) mod 255) - 127)

let cos_bits = 12

(* ct[u*8+x] = round(cos((2x+1) u pi / 16) * 2^12 * c(u)) with the
   orthonormalisation folded in. *)
let cos_table =
  Array.init 64 (fun k ->
      let u = k / 8 and x = k mod 8 in
      let cu = if u = 0 then 1.0 /. sqrt 2.0 else 1.0 in
      let angle = (float_of_int ((2 * x) + 1)) *. float_of_int u *. Float.pi /. 16.0 in
      int_of_float (Float.round (cu *. cos angle *. 0.5 *. float_of_int (1 lsl cos_bits))))

let program =
  program
    ~globals:
      [ array "blk" block_init
      ; array "ct" cos_table
      ; array "tmp" (Array.make 64 0)
      ]
    [ fn "dct_pass_rows" []
        [ for_ "r" (i 0) (i 8)
            [ for_ "u" (i 0) (i 8)
                [ decl "acc" (i 0)
                ; for_ "x" (i 0) (i 8)
                    [ set "acc"
                        (v "acc"
                        +: (idx "ct" ((v "u" *: i 8) +: v "x")
                           *: idx "blk" ((v "r" *: i 8) +: v "x")))
                    ]
                ; store "tmp" ((v "r" *: i 8) +: v "u") (v "acc" >>>: i cos_bits)
                ]
            ]
        ; ret0
        ]
    ; fn "dct_pass_cols" []
        [ for_ "c" (i 0) (i 8)
            [ for_ "u" (i 0) (i 8)
                [ decl "acc" (i 0)
                ; for_ "x" (i 0) (i 8)
                    [ set "acc"
                        (v "acc"
                        +: (idx "ct" ((v "u" *: i 8) +: v "x")
                           *: idx "tmp" ((v "x" *: i 8) +: v "c")))
                    ]
                ; store "blk" ((v "u" *: i 8) +: v "c") (v "acc" >>>: i cos_bits)
                ]
            ]
        ; ret0
        ]
    ; fn "main" []
        [ expr (call "dct_pass_rows" [])
        ; expr (call "dct_pass_cols" [])
        ; decl "sum" (i 0)
        ; for_ "k" (i 0) (i 64)
            [ decl "x" (idx "blk" (v "k"))
            ; when_ (v "x" <: i 0) [ set "x" (i 0 -: v "x") ]
            ; set "sum" (v "sum" +: v "x")
            ]
        ; ret (v "sum")
        ]
    ]

let expected =
  let tmp = Array.make 64 0 in
  let out = Array.make 64 0 in
  for r = 0 to 7 do
    for u = 0 to 7 do
      let acc = ref 0 in
      for x = 0 to 7 do
        acc := !acc + (cos_table.((u * 8) + x) * block_init.((r * 8) + x))
      done;
      tmp.((r * 8) + u) <- !acc asr cos_bits
    done
  done;
  for c = 0 to 7 do
    for u = 0 to 7 do
      let acc = ref 0 in
      for x = 0 to 7 do
        acc := !acc + (cos_table.((u * 8) + x) * tmp.((x * 8) + c))
      done;
      out.((u * 8) + c) <- !acc asr cos_bits
    done
  done;
  Array.fold_left (fun acc x -> acc + abs x) 0 out

(* Hex digit to 7-segment LCD code (Mälardalen lcdnum.c). *)

open Minic.Dsl

let name = "lcdnum"
let description = "hex nibbles to 7-segment codes over a 10-byte input"

let seven_seg =
  (* Segment encodings for 0..15, as in the original. *)
  [| 0x3F; 0x06; 0x5B; 0x4F; 0x66; 0x6D; 0x7D; 0x07; 0x7F; 0x6F; 0x77; 0x7C; 0x39; 0x5E; 0x79; 0x71 |]

let input = Array.init 10 (fun k -> ((k * 29) + 5) mod 256)

let rec cases k =
  if k = 15 then [ ret (i seven_seg.(k)) ]
  else [ if_ (v "n" ==: i k) [ ret (i seven_seg.(k)) ] (cases (k + 1)) ]

let program =
  program
    ~globals:[ array "inp" input ]
    [ fn "num_to_lcd" [ "n" ] (cases 0)
    ; fn "main" []
        [ decl "out" (i 0)
        ; for_ "k" (i 0) (i 10)
            [ decl "b" (idx "inp" (v "k"))
            ; (* Low nibble always; high nibble only every other byte,
                 like the original's masked phases. *)
              set "out" (v "out" +: call "num_to_lcd" [ v "b" &: i 0x0F ])
            ; when_
                (v "k" %: i 2 ==: i 0)
                [ set "out" (v "out" +: call "num_to_lcd" [ (v "b" >>: i 4) &: i 0x0F ]) ]
            ]
        ; ret (v "out")
        ]
    ]

let expected =
  let out = ref 0 in
  Array.iteri
    (fun k b ->
      out := !out + seven_seg.(b land 0x0F);
      if k mod 2 = 0 then out := !out + seven_seg.((b lsr 4) land 0x0F))
    input;
  !out

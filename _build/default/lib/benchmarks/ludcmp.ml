(* LU decomposition and linear-system solve, 6x6 fixed point
   (Mälardalen ludcmp.c). The matrix is diagonally dominant so integer
   pivots never vanish. *)

open Minic.Dsl

let name = "ludcmp"
let description = "6x6 LU decomposition + forward/backward substitution"

let dim = 6
let scale = 256

(* a[i][j] = small off-diagonal, strong diagonal; b = row sums so the
   exact solution of the real-valued system is all-ones. *)
let a_init =
  Array.init (dim * dim) (fun k ->
      let r = k / dim and c = k mod dim in
      if r = c then scale * (dim + 1) else scale / (1 + abs (r - c)))

let b_init =
  Array.init dim (fun r ->
      let sum = ref 0 in
      for c = 0 to dim - 1 do
        sum := !sum + a_init.((r * dim) + c)
      done;
      !sum)

let program =
  program
    ~globals:
      [ array "a" a_init
      ; array "b" b_init
      ; array "x" (Array.make dim 0)
      ; array "y" (Array.make dim 0)
      ]
    [ fn "ludcmp" []
        [ (* Doolittle elimination, in place. *)
          for_ "p" (i 0) (i (dim - 1))
            [ for_b "r" (v "p" +: i 1) (i dim) ~bound:(dim - 1)
                [ decl "factor"
                    ((idx "a" ((v "r" *: i dim) +: v "p") *: i scale)
                    /: idx "a" ((v "p" *: i dim) +: v "p"))
                ; store "a" ((v "r" *: i dim) +: v "p") (v "factor")
                ; for_b "c" (v "p" +: i 1) (i dim) ~bound:(dim - 1)
                    [ store "a"
                        ((v "r" *: i dim) +: v "c")
                        (idx "a" ((v "r" *: i dim) +: v "c")
                        -: ((v "factor" *: idx "a" ((v "p" *: i dim) +: v "c")) /: i scale))
                    ]
                ]
            ]
        ; ret0
        ]
    ; fn "solve" []
        [ (* Forward substitution: L y = b (unit diagonal). *)
          for_ "r" (i 0) (i dim)
            [ decl "acc" (idx "b" (v "r"))
            ; for_b "c" (i 0) (v "r") ~bound:(dim - 1)
                [ set "acc"
                    (v "acc" -: ((idx "a" ((v "r" *: i dim) +: v "c") *: idx "y" (v "c")) /: i scale))
                ]
            ; store "y" (v "r") (v "acc")
            ]
        ; (* Backward substitution: U x = y. *)
          decl "r" (i (dim - 1))
        ; while_ ~bound:dim
            (v "r" >=: i 0)
            [ decl "acc" (idx "y" (v "r"))
            ; for_b "c" (v "r" +: i 1) (i dim) ~bound:(dim - 1)
                [ set "acc"
                    (v "acc" -: ((idx "a" ((v "r" *: i dim) +: v "c") *: idx "x" (v "c")) /: i scale))
                ]
            ; store "x" (v "r") ((v "acc" *: i scale) /: idx "a" ((v "r" *: i dim) +: v "r"))
            ; set "r" (v "r" -: i 1)
            ]
        ; ret0
        ]
    ; fn "main" []
        [ expr (call "ludcmp" [])
        ; expr (call "solve" [])
        ; decl "sum" (i 0)
        ; for_ "k" (i 0) (i dim) [ set "sum" (v "sum" +: idx "x" (v "k")) ]
        ; ret (v "sum")
        ]
    ]

(* OCaml oracle with identical integer arithmetic. *)
let expected =
  let a = Array.copy a_init and b = Array.copy b_init in
  let x = Array.make dim 0 and y = Array.make dim 0 in
  for p = 0 to dim - 2 do
    for r = p + 1 to dim - 1 do
      let factor = a.((r * dim) + p) * scale / a.((p * dim) + p) in
      a.((r * dim) + p) <- factor;
      for c = p + 1 to dim - 1 do
        a.((r * dim) + c) <- a.((r * dim) + c) - (factor * a.((p * dim) + c) / scale)
      done
    done
  done;
  for r = 0 to dim - 1 do
    let acc = ref b.(r) in
    for c = 0 to r - 1 do
      acc := !acc - (a.((r * dim) + c) * y.(c) / scale)
    done;
    y.(r) <- !acc
  done;
  for r = dim - 1 downto 0 do
    let acc = ref y.(r) in
    for c = r + 1 to dim - 1 do
      acc := !acc - (a.((r * dim) + c) * x.(c) / scale)
    done;
    x.(r) <- !acc * scale / a.((r * dim) + r)
  done;
  Array.fold_left ( + ) 0 x

(* 20x20 integer matrix multiplication (Mälardalen matmult.c). *)

open Minic.Dsl

let name = "matmult"
let description = "20x20 integer matrix product"

let dim = 20
let a_init = Array.init (dim * dim) (fun k -> (k mod 7) + 1)
let b_init = Array.init (dim * dim) (fun k -> (k mod 5) + 2)

let program =
  program
    ~globals:
      [ array "ma" a_init; array "mb" b_init; array "mc" (Array.make (dim * dim) 0) ]
    [ fn "multiply" []
        [ for_ "r" (i 0) (i dim)
            [ for_ "c" (i 0) (i dim)
                [ decl "acc" (i 0)
                ; for_ "k" (i 0) (i dim)
                    [ set "acc"
                        (v "acc"
                        +: (idx "ma" ((v "r" *: i dim) +: v "k")
                           *: idx "mb" ((v "k" *: i dim) +: v "c")))
                    ]
                ; store "mc" ((v "r" *: i dim) +: v "c") (v "acc")
                ]
            ]
        ; ret0
        ]
    ; fn "main" []
        [ expr (call "multiply" [])
        ; ret (idx "mc" (i 0) +: idx "mc" (i 210) +: idx "mc" (i ((dim * dim) - 1)))
        ]
    ]

let expected =
  let cell r c =
    let acc = ref 0 in
    for k = 0 to dim - 1 do
      acc := !acc + (a_init.((r * dim) + k) * b_init.((k * dim) + c))
    done;
    !acc
  in
  cell 0 0 + cell 10 10 + cell 19 19

(* 3x3 matrix inversion by Gauss-Jordan with partial pivoting
   (Mälardalen minver.c, fixed point). *)

open Minic.Dsl

let name = "minver"
let description = "3x3 fixed-point matrix inversion (Gauss-Jordan)"

let dim = 3
let scale = 1024

(* A well-conditioned integer matrix (times scale). *)
let a_init = Array.map (fun x -> x * scale) [| 5; 1; 2; 1; 6; 1; 2; 1; 7 |]

let program =
  program
    ~globals:
      [ array "a" a_init
      ; array "inv" (Array.make (dim * dim) 0)
      ]
    [ fn "minver" []
        [ (* Initialise inv to identity * scale. *)
          for_ "r" (i 0) (i dim)
            [ for_ "c" (i 0) (i dim)
                [ if_ (v "r" ==: v "c")
                    [ store "inv" ((v "r" *: i dim) +: v "c") (i scale) ]
                    [ store "inv" ((v "r" *: i dim) +: v "c") (i 0) ]
                ]
            ]
        ; for_ "p" (i 0) (i dim)
            [ (* Partial pivot: swap in the largest row below. *)
              decl "best" (v "p")
            ; for_b "r" (v "p" +: i 1) (i dim) ~bound:(dim - 1)
                [ decl "cur" (idx "a" ((v "r" *: i dim) +: v "p"))
                ; when_ (v "cur" <: i 0) [ set "cur" (i 0 -: v "cur") ]
                ; decl "top" (idx "a" ((v "best" *: i dim) +: v "p"))
                ; when_ (v "top" <: i 0) [ set "top" (i 0 -: v "top") ]
                ; when_ (v "cur" >: v "top") [ set "best" (v "r") ]
                ]
            ; when_
                (v "best" <>: v "p")
                [ for_ "c" (i 0) (i dim)
                    [ decl "t" (idx "a" ((v "p" *: i dim) +: v "c"))
                    ; store "a" ((v "p" *: i dim) +: v "c") (idx "a" ((v "best" *: i dim) +: v "c"))
                    ; store "a" ((v "best" *: i dim) +: v "c") (v "t")
                    ; decl "t2" (idx "inv" ((v "p" *: i dim) +: v "c"))
                    ; store "inv" ((v "p" *: i dim) +: v "c") (idx "inv" ((v "best" *: i dim) +: v "c"))
                    ; store "inv" ((v "best" *: i dim) +: v "c") (v "t2")
                    ]
                ]
            ; decl "pivot" (idx "a" ((v "p" *: i dim) +: v "p"))
            ; (* Normalise the pivot row. *)
              for_ "c" (i 0) (i dim)
                [ store "a" ((v "p" *: i dim) +: v "c")
                    ((idx "a" ((v "p" *: i dim) +: v "c") *: i scale) /: v "pivot")
                ; store "inv" ((v "p" *: i dim) +: v "c")
                    ((idx "inv" ((v "p" *: i dim) +: v "c") *: i scale) /: v "pivot")
                ]
            ; (* Eliminate the column from every other row. *)
              for_ "r" (i 0) (i dim)
                [ when_
                    (v "r" <>: v "p")
                    [ decl "factor" (idx "a" ((v "r" *: i dim) +: v "p"))
                    ; for_ "c" (i 0) (i dim)
                        [ store "a" ((v "r" *: i dim) +: v "c")
                            (idx "a" ((v "r" *: i dim) +: v "c")
                            -: ((v "factor" *: idx "a" ((v "p" *: i dim) +: v "c")) /: i scale))
                        ; store "inv" ((v "r" *: i dim) +: v "c")
                            (idx "inv" ((v "r" *: i dim) +: v "c")
                            -: ((v "factor" *: idx "inv" ((v "p" *: i dim) +: v "c")) /: i scale))
                        ]
                    ]
                ]
            ]
        ; ret0
        ]
    ; fn "main" []
        [ expr (call "minver" [])
        ; decl "sum" (i 0)
        ; for_ "k" (i 0) (i (dim * dim))
            [ set "sum" (v "sum" +: (idx "inv" (v "k") *: (v "k" +: i 1))) ]
        ; ret (v "sum")
        ]
    ]

let expected =
  let a = Array.copy a_init in
  let inv = Array.make (dim * dim) 0 in
  for r = 0 to dim - 1 do
    inv.((r * dim) + r) <- scale
  done;
  for p = 0 to dim - 1 do
    let best = ref p in
    for r = p + 1 to dim - 1 do
      if abs a.((r * dim) + p) > abs a.((!best * dim) + p) then best := r
    done;
    if !best <> p then
      for c = 0 to dim - 1 do
        let t = a.((p * dim) + c) in
        a.((p * dim) + c) <- a.((!best * dim) + c);
        a.((!best * dim) + c) <- t;
        let t2 = inv.((p * dim) + c) in
        inv.((p * dim) + c) <- inv.((!best * dim) + c);
        inv.((!best * dim) + c) <- t2
      done;
    let pivot = a.((p * dim) + p) in
    for c = 0 to dim - 1 do
      a.((p * dim) + c) <- a.((p * dim) + c) * scale / pivot;
      inv.((p * dim) + c) <- inv.((p * dim) + c) * scale / pivot
    done;
    for r = 0 to dim - 1 do
      if r <> p then begin
        let factor = a.((r * dim) + p) in
        for c = 0 to dim - 1 do
          a.((r * dim) + c) <- a.((r * dim) + c) - (factor * a.((p * dim) + c) / scale);
          inv.((r * dim) + c) <- inv.((r * dim) + c) - (factor * inv.((p * dim) + c) / scale)
        done
      end
    done
  done;
  let sum = ref 0 in
  Array.iteri (fun k x -> sum := !sum + (x * (k + 1))) inv;
  !sum

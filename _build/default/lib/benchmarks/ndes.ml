(* Bit-manipulation heavy block cipher round in the spirit of
   Mälardalen ndes.c: repeated permutation/substitution rounds with
   table lookups over a 64-bit block held as two 32-bit halves. *)

open Minic.Dsl

let name = "ndes"
let description = "block cipher rounds: permutations + S-box lookups"

let sbox = Array.init 64 (fun k -> ((k * 43) + 17) mod 16)
let keys = Array.init 16 (fun k -> ((k * 2654435761) land 0xFFFFFF) lor 1)

let program =
  program
    ~globals:[ array "sbox" sbox; array "keys" keys ]
    [ fn "feistel" [ "half"; "key" ]
        [ decl "x" (v "half" ^: v "key")
        ; decl "out" (i 0)
        ; (* Eight 6-bit groups through the S-box. *)
          for_ "g" (i 0) (i 8)
            [ decl "chunk" ((v "x" >>: (v "g" *: i 4)) &: i 0x3F)
            ; set "out" (v "out" ^: (idx "sbox" (v "chunk") <<: (v "g" *: i 4)))
            ]
        ; (* A cheap permutation: rotate by 11. *)
          ret (((v "out" <<: i 11) |: (v "out" >>: i 21)) &: i 0xFFFFFFFF)
        ]
    ; fn "encrypt" [ "left"; "right" ]
        [ decl "l" (v "left")
        ; decl "r" (v "right")
        ; for_ "round" (i 0) (i 16)
            [ decl "t" (v "r")
            ; set "r" (v "l" ^: call "feistel" [ v "r"; idx "keys" (v "round") ])
            ; set "l" (v "t")
            ]
        ; ret (v "l" ^: v "r")
        ]
    ; fn "main" []
        [ decl "acc" (i 0)
        ; for_ "blk" (i 0) (i 4)
            [ set "acc"
                (v "acc" ^: call "encrypt" [ v "blk" *: i 0x01234567; v "blk" +: i 0x89ABCD ])
            ]
        ; ret (v "acc")
        ]
    ]

(* Oracle with identical 32-bit semantics. *)
let expected =
  let wrap32 x =
    let m = x land 0xFFFFFFFF in
    if m >= 0x80000000 then m - 0x100000000 else m
  in
  let to_u x = x land 0xFFFFFFFF in
  let feistel half key =
    let x = wrap32 (half lxor key) in
    let out = ref 0 in
    for g = 0 to 7 do
      let chunk = (to_u x lsr (g * 4)) land 0x3F in
      out := wrap32 (!out lxor wrap32 (to_u sbox.(chunk) lsl (g * 4)))
    done;
    wrap32 ((wrap32 (to_u !out lsl 11) lor (to_u !out lsr 21)) land 0xFFFFFFFF)
  in
  let encrypt left right =
    let l = ref (wrap32 left) and r = ref (wrap32 right) in
    for round = 0 to 15 do
      let t = !r in
      r := wrap32 (!l lxor feistel !r keys.(round));
      l := t
    done;
    wrap32 (!l lxor !r)
  in
  let acc = ref 0 in
  for blk = 0 to 3 do
    acc := wrap32 (!acc lxor encrypt (wrap32 (blk * 0x01234567)) (blk + 0x89ABCD))
  done;
  !acc

(* Search in a 4-dimensional 5x5x5x5 table (Mälardalen ns.c). *)

open Minic.Dsl

let name = "ns"
let description = "4-level nested search in a 5^4 table"

let table = Array.init 625 (fun k -> (k * 13) mod 400)

let program =
  program
    ~globals:[ array "keys" table ]
    [ fn "foo" [ "x" ]
        [ for_ "a" (i 0) (i 5)
            [ for_ "b" (i 0) (i 5)
                [ for_ "c" (i 0) (i 5)
                    [ for_ "d" (i 0) (i 5)
                        [ when_
                            (idx "keys"
                               ((v "a" *: i 125) +: (v "b" *: i 25) +: (v "c" *: i 5) +: v "d")
                            ==: v "x")
                            [ ret
                                ((v "a" *: i 1000) +: (v "b" *: i 100) +: (v "c" *: i 10)
                                +: v "d")
                            ]
                        ]
                    ]
                ]
            ]
        ; ret (i (-1))
        ]
    ; fn "main" [] [ ret (call "foo" [ i 399 ] +: call "foo" [ i 401 ]) ]
    ]

let expected =
  let find x =
    let result = ref (-1) in
    (try
       for a = 0 to 4 do
         for b = 0 to 4 do
           for c = 0 to 4 do
             for d = 0 to 4 do
               if table.((a * 125) + (b * 25) + (c * 5) + d) = x then begin
                 result := (a * 1000) + (b * 100) + (c * 10) + d;
                 raise Exit
               end
             done
           done
         done
       done
     with Exit -> ());
    !result
  in
  find 399 + find 401

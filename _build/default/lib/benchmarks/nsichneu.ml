(* Petri-net simulation with a very large body of transition rules
   (Mälardalen nsichneu.c). The original is thousands of generated
   if-blocks; this transcription generates 96 rules over 32 places —
   still far larger than the 1 KB instruction cache, which is the
   benchmark's role in the evaluation. The rule table is generated
   deterministically so the OCaml oracle can replay it. *)

open Minic.Dsl

let name = "nsichneu"
let description = "Petri net: 96 generated transition rules over 32 places, 2 rounds"

let places = 32
let rules = 96

(* Deterministic LCG for rule generation. *)
let rule_table =
  let seed = ref 12345 in
  let next () =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed
  in
  Array.init rules (fun _ ->
      let a = next () mod places in
      let b = next () mod places in
      let c = next () mod places in
      let d = next () mod places in
      (a, b, c, d))

let initial_marking = Array.init places (fun k -> (k mod 3) + 1)

let rule_stmt (a, b, c, d) =
  when_
    ((idx "pl" (i a) >=: i 1) &&: (idx "pl" (i b) >=: i 1))
    [ store "pl" (i a) (idx "pl" (i a) -: i 1)
    ; store "pl" (i b) (idx "pl" (i b) -: i 1)
    ; store "pl" (i c) (idx "pl" (i c) +: i 1)
    ; store "pl" (i d) (idx "pl" (i d) +: i 1)
    ]

let program =
  program
    ~globals:[ array "pl" initial_marking ]
    [ fn "main" []
        [ for_ "round" (i 0) (i 2) (Array.to_list (Array.map rule_stmt rule_table))
        ; decl "sum" (i 0)
        ; for_ "k" (i 0) (i places)
            [ set "sum" (v "sum" +: (idx "pl" (v "k") *: (v "k" +: i 1))) ]
        ; ret (v "sum")
        ]
    ]

let expected =
  let pl = Array.copy initial_marking in
  for _round = 0 to 1 do
    Array.iter
      (fun (a, b, c, d) ->
        if pl.(a) >= 1 && pl.(b) >= 1 then begin
          pl.(a) <- pl.(a) - 1;
          pl.(b) <- pl.(b) - 1;
          pl.(c) <- pl.(c) + 1;
          pl.(d) <- pl.(d) + 1
        end)
      rule_table
  done;
  let sum = ref 0 in
  Array.iteri (fun k x -> sum := !sum + (x * (k + 1))) pl;
  !sum

(* Primality tests by trial division (Mälardalen prime.c). *)

open Minic.Dsl

let name = "prime"
let description = "trial-division primality of two numbers"

let program =
  program
    [ fn "divides" [ "n"; "m" ] [ ret (v "m" %: v "n" ==: i 0) ]
    ; fn "even" [ "n" ] [ ret (call "divides" [ i 2; v "n" ]) ]
    ; fn "prime" [ "n" ]
        [ when_ (call "even" [ v "n" ]) [ ret (v "n" ==: i 2) ]
        ; decl "result" (i 1)
        ; decl "d" (i 3)
        ; (* d ranges over odd numbers up to sqrt(3571) ~ 60. *)
          while_ ~bound:30
            ((v "d" *: v "d" <=: v "n") &&: (v "result" ==: i 1))
            [ when_ (call "divides" [ v "d"; v "n" ]) [ set "result" (i 0) ]
            ; set "d" (v "d" +: i 2)
            ]
        ; ret (v "result")
        ]
    ; fn "main" [] [ ret (call "prime" [ i 3571 ] +: (i 10 *: call "prime" [ i 3573 ])) ]
    ]

(* 3571 is prime, 3573 = 3 * 1191 is not. *)
let expected = 1

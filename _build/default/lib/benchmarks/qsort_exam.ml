(* Iterative quicksort with an explicit stack (Mälardalen
   qsort-exam.c): recursion is not available in mini-C, exactly like the
   original's non-recursive formulation. *)

open Minic.Dsl

let name = "qsort_exam"
let description = "iterative quicksort of 20 elements with an explicit stack"

let initial = [| 44; 5; 77; 13; 2; 89; 34; 21; 55; 8; 99; 1; 67; 30; 12; 71; 26; 18; 60; 40 |]
let size = Array.length initial

let program =
  program
    ~globals:[ array "arr" initial; array "stack" (Array.make 64 0) ]
    [ fn "qsort" []
        [ decl "top" (i 0)
        ; store "stack" (i 0) (i 0)
        ; store "stack" (i 1) (i (size - 1))
        ; set "top" (i 2)
        ; (* Each partition pushes at most two subranges; 4 * size bounds
             the number of pops comfortably. *)
          while_ ~bound:(4 * size)
            (v "top" >: i 0)
            [ set "top" (v "top" -: i 2)
            ; decl "lo" (idx "stack" (v "top"))
            ; decl "hi" (idx "stack" (v "top" +: i 1))
            ; when_
                (v "lo" <: v "hi")
                [ (* Lomuto partition on arr[lo..hi]. *)
                  decl "pivot" (idx "arr" (v "hi"))
                ; decl "ins" (v "lo")
                ; for_b "j" (v "lo") (v "hi") ~bound:size
                    [ when_
                        (idx "arr" (v "j") <: v "pivot")
                        [ decl "t" (idx "arr" (v "ins"))
                        ; store "arr" (v "ins") (idx "arr" (v "j"))
                        ; store "arr" (v "j") (v "t")
                        ; set "ins" (v "ins" +: i 1)
                        ]
                    ]
                ; decl "t2" (idx "arr" (v "ins"))
                ; store "arr" (v "ins") (idx "arr" (v "hi"))
                ; store "arr" (v "hi") (v "t2")
                ; (* Push both halves. *)
                  store "stack" (v "top") (v "lo")
                ; store "stack" (v "top" +: i 1) (v "ins" -: i 1)
                ; set "top" (v "top" +: i 2)
                ; store "stack" (v "top") (v "ins" +: i 1)
                ; store "stack" (v "top" +: i 1) (v "hi")
                ; set "top" (v "top" +: i 2)
                ]
            ]
        ; ret0
        ]
    ; fn "main" []
        [ expr (call "qsort" [])
        ; decl "sum" (i 0)
        ; for_ "k" (i 0) (i size) [ set "sum" (v "sum" +: (idx "arr" (v "k") *: (v "k" +: i 1))) ]
        ; ret (v "sum")
        ]
    ]

let expected =
  let sorted = Array.copy initial in
  Array.sort compare sorted;
  let sum = ref 0 in
  Array.iteri (fun k x -> sum := !sum + (x * (k + 1))) sorted;
  !sum

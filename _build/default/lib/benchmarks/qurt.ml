(* Roots of quadratic equations via integer Newton square root
   (Mälardalen qurt.c, fixed-point transcription). *)

open Minic.Dsl

let name = "qurt"
let description = "quadratic roots with Newton integer square root"

let program =
  program
    [ fn "isqrt" [ "x" ]
        [ when_ (v "x" <=: i 0) [ ret (i 0) ]
        ; decl "r" (v "x")
        ; when_ (v "r" >: i 46340) [ set "r" (i 46340) ]
        ; (* Newton iteration converges well within 20 rounds on 31-bit
             inputs. *)
          for_b "it" (i 0) (i 20) ~bound:20
            [ decl "next" ((v "r" +: (v "x" /: v "r")) /: i 2)
            ; when_ (v "next" <: v "r") [ set "r" (v "next") ]
            ]
        ; ret (v "r")
        ]
    ; fn "qroots" [ "a"; "b"; "c" ]
        [ when_ (v "a" ==: i 0) [ ret (i (-1)) ]
        ; decl "disc" ((v "b" *: v "b") -: (i 4 *: v "a" *: v "c"))
        ; if_
            (v "disc" <: i 0)
            [ (* Complex roots: code them as 1000000 + |imag part|. *)
              ret (i 1000000 +: call "isqrt" [ i 0 -: v "disc" ]) ]
            [ decl "sq" (call "isqrt" [ v "disc" ])
            ; decl "r1" ((i 0 -: v "b" +: v "sq") /: (i 2 *: v "a"))
            ; decl "r2" ((i 0 -: v "b" -: v "sq") /: (i 2 *: v "a"))
            ; ret ((v "r1" *: i 1000) +: v "r2")
            ]
        ]
    ; fn "main" []
        [ decl "s" (i 0)
        ; set "s" (v "s" +: call "qroots" [ i 1; i (-7); i 12 ])   (* roots 4, 3 *)
        ; set "s" (v "s" +: call "qroots" [ i 1; i 2; i 10 ])      (* complex *)
        ; set "s" (v "s" +: call "qroots" [ i 2; i (-90); i 1000 ]) (* 25, 20 *)
        ; ret (v "s")
        ]
    ]

type entry = {
  name : string;
  description : string;
  program : Minic.Ast.program;
}

let entry name description program = { name; description; program }

let all =
  [ entry Adpcm.name Adpcm.description Adpcm.program
  ; entry Bs.name Bs.description Bs.program
  ; entry Bsort100.name Bsort100.description Bsort100.program
  ; entry Cnt.name Cnt.description Cnt.program
  ; entry Cover.name Cover.description Cover.program
  ; entry Crc.name Crc.description Crc.program
  ; entry Edn.name Edn.description Edn.program
  ; entry Expint.name Expint.description Expint.program
  ; entry Fdct.name Fdct.description Fdct.program
  ; entry Fft.name Fft.description Fft.program
  ; entry Fibcall.name Fibcall.description Fibcall.program
  ; entry Fir.name Fir.description Fir.program
  ; entry Insertsort.name Insertsort.description Insertsort.program
  ; entry Jfdctint.name Jfdctint.description Jfdctint.program
  ; entry Lcdnum.name Lcdnum.description Lcdnum.program
  ; entry Ludcmp.name Ludcmp.description Ludcmp.program
  ; entry Matmult.name Matmult.description Matmult.program
  ; entry Minver.name Minver.description Minver.program
  ; entry Ns.name Ns.description Ns.program
  ; entry Nsichneu.name Nsichneu.description Nsichneu.program
  ; entry Prime.name Prime.description Prime.program
  ; entry Qurt.name Qurt.description Qurt.program
  ; entry Select.name Select.description Select.program
  ; entry Statemate.name Statemate.description Statemate.program
  ; entry Ud.name Ud.description Ud.program
  ]

(* Additional programs kept outside the paper's 25-benchmark set. *)
let extras =
  [ entry Janne_complex.name Janne_complex.description Janne_complex.program
  ; entry St.name St.description St.program
  ; entry Ndes.name Ndes.description Ndes.program
  ; entry Qsort_exam.name Qsort_exam.description Qsort_exam.program
  ]

let find name = List.find_opt (fun e -> e.name = name) (all @ extras)
let names = List.map (fun e -> e.name) all

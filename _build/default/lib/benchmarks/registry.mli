(** The benchmark suite: 25 mini-C programs modelled on the Mälardalen
    WCET benchmarks the paper evaluates on (Section IV-A).

    Floating-point kernels of the original suite (fft, qurt, minver,
    ...) are transcribed to fixed-point integer arithmetic — the target
    ISA, like the paper's analysis, only times instruction fetches, so
    what matters is preserving each program's control structure and
    code footprint. *)

type entry = {
  name : string;
  description : string;
  program : Minic.Ast.program;
}

val all : entry list
(** The 25 benchmarks, alphabetically. *)

val extras : entry list
(** Additional programs outside the paper's benchmark set (currently
    [janne_complex], a loop-bound stress test). [find] also sees
    these. *)

val find : string -> entry option
val names : string list

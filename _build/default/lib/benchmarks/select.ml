(* k-th smallest element by quickselect (Mälardalen select.c), with the
   original's in-place partitioning loops expressed via flags (mini-C
   has no break). *)

open Minic.Dsl

let name = "select"
let description = "quickselect of the 10th smallest among 20 elements"

let initial = [| 5; 37; 2; 91; 44; 13; 8; 72; 55; 1; 66; 29; 17; 83; 40; 23; 9; 61; 34; 50 |]

let swap a b =
  [ decl "tswap" (idx "arr" a); store "arr" a (idx "arr" b); store "arr" b (v "tswap") ]

let program =
  program
    ~globals:[ array "arr" initial ]
    [ fn "select_kth" [ "k" ]
        [ decl "l" (i 0)
        ; decl "ir" (i 19)
        ; decl "done" (i 0)
        ; decl "result" (i 0)
        ; while_ ~bound:20
            (v "done" ==: i 0)
            [ if_
                (v "ir" <=: v "l" +: i 1)
                ([ when_
                     ((v "ir" ==: v "l" +: i 1) &&: (idx "arr" (v "ir") <: idx "arr" (v "l")))
                     (swap (v "l") (v "ir"))
                 ]
                @ [ set "result" (idx "arr" (v "k")); set "done" (i 1) ])
                ([ decl "mid" ((v "l" +: v "ir") /: i 2) ]
                @ swap (v "mid") (v "l" +: i 1)
                @ [ when_
                      (idx "arr" (v "l") >: idx "arr" (v "ir"))
                      (swap (v "l") (v "ir"))
                  ; when_
                      (idx "arr" (v "l" +: i 1) >: idx "arr" (v "ir"))
                      (swap (v "l" +: i 1) (v "ir"))
                  ; when_
                      (idx "arr" (v "l") >: idx "arr" (v "l" +: i 1))
                      (swap (v "l") (v "l" +: i 1))
                  ; decl "pi" (v "l" +: i 1)
                  ; decl "pj" (v "ir")
                  ; decl "pivot" (idx "arr" (v "l" +: i 1))
                  ; decl "part_done" (i 0)
                  ; while_ ~bound:20
                      (v "part_done" ==: i 0)
                      [ set "pi" (v "pi" +: i 1)
                      ; while_ ~bound:20 (idx "arr" (v "pi") <: v "pivot")
                          [ set "pi" (v "pi" +: i 1) ]
                      ; set "pj" (v "pj" -: i 1)
                      ; while_ ~bound:20 (idx "arr" (v "pj") >: v "pivot")
                          [ set "pj" (v "pj" -: i 1) ]
                      ; if_ (v "pj" <: v "pi")
                          [ set "part_done" (i 1) ]
                          (swap (v "pi") (v "pj"))
                      ]
                  ; store "arr" (v "l" +: i 1) (idx "arr" (v "pj"))
                  ; store "arr" (v "pj") (v "pivot")
                  ; when_ (v "pj" >=: v "k") [ set "ir" (v "pj" -: i 1) ]
                  ; when_ (v "pj" <=: v "k") [ set "l" (v "pi") ]
                  ])
            ]
        ; ret (v "result")
        ]
    ; fn "main" [] [ ret (call "select_kth" [ i 9 ]) ]
    ]

let expected =
  let sorted = Array.copy initial in
  Array.sort compare sorted;
  sorted.(9)

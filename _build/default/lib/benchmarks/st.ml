(* Statistics over two correlated series (Mälardalen st.c): sums, means,
   variances and covariance in fixed point over 100-element arrays. *)

open Minic.Dsl

let name = "st"
let description = "statistics: mean/variance/covariance over two 100-element series"

let size = 100
let scale = 16

let a_init = Array.init size (fun k -> (((k * 37) + 11) mod 401) - 200)
let b_init = Array.init size (fun k -> (((k * 73) + 29) mod 401) - 200)

let program =
  program
    ~globals:
      [ array "sa" a_init
      ; array "sb" b_init
      ; scalar "mean_a" 0
      ; scalar "mean_b" 0
      ; scalar "var_a" 0
      ; scalar "var_b" 0
      ; scalar "cov" 0
      ]
    [ fn "mean" []
        [ decl "ta" (i 0)
        ; decl "tb" (i 0)
        ; for_ "k" (i 0) (i size)
            [ set "ta" (v "ta" +: idx "sa" (v "k")); set "tb" (v "tb" +: idx "sb" (v "k")) ]
        ; set "mean_a" ((v "ta" *: i scale) /: i size)
        ; set "mean_b" ((v "tb" *: i scale) /: i size)
        ; ret0
        ]
    ; fn "moments" []
        [ decl "va" (i 0)
        ; decl "vb" (i 0)
        ; decl "cv" (i 0)
        ; for_ "k" (i 0) (i size)
            [ decl "da" ((idx "sa" (v "k") *: i scale) -: v "mean_a")
            ; decl "db" ((idx "sb" (v "k") *: i scale) -: v "mean_b")
            ; set "va" (v "va" +: ((v "da" *: v "da") /: (i (scale * scale) *: i size)))
            ; set "vb" (v "vb" +: ((v "db" *: v "db") /: (i (scale * scale) *: i size)))
            ; set "cv" (v "cv" +: ((v "da" *: v "db") /: (i (scale * scale) *: i size)))
            ]
        ; set "var_a" (v "va")
        ; set "var_b" (v "vb")
        ; set "cov" (v "cv")
        ; ret0
        ]
    ; fn "main" []
        [ expr (call "mean" [])
        ; expr (call "moments" [])
        ; ret (v "var_a" +: v "var_b" +: v "cov" +: v "mean_a" +: v "mean_b")
        ]
    ]

let expected =
  let mean xs = Array.fold_left ( + ) 0 xs * scale / size in
  let ma = mean a_init and mb = mean b_init in
  let va = ref 0 and vb = ref 0 and cv = ref 0 in
  for k = 0 to size - 1 do
    let da = (a_init.(k) * scale) - ma in
    let db = (b_init.(k) * scale) - mb in
    va := !va + (da * da / (scale * scale * size));
    vb := !vb + (db * db / (scale * scale * size));
    cv := !cv + (da * db / (scale * scale * size))
  done;
  !va + !vb + !cv + ma + mb

(* Generated statechart code (Mälardalen statemate.c): a large body of
   guard/action blocks driven once per activation, with the guards
   if-converted to straight-line arithmetic (as a flattening code
   generator would emit). The code footprint is several times the 1 KB
   cache and every block runs exactly once per activation, so the cache
   captures spatial locality only — the paper's "category 1" behaviour
   where both RW and SRB fully mask the impact of faults. *)

open Minic.Dsl

let name = "statemate"
let description = "generated statechart: 140 guard/action blocks, one activation"

let state_vars = 24

(* Deterministic generator for the guard/action blocks. *)
let blocks =
  let seed = ref 777 in
  let next () =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed
  in
  Array.init 140 (fun _ ->
      let guard_var = next () mod state_vars in
      let guard_const = next () mod 4 in
      let dst = next () mod state_vars in
      let src_a = next () mod state_vars in
      let src_b = next () mod state_vars in
      let add = next () mod 7 in
      (guard_var, guard_const, dst, src_a, src_b, add))

let initial = Array.init state_vars (fun k -> k mod 4)

(* If-converted guard: g = (sv[gv] == gc) in {0,1};
   sv[dst] = (g * (sv[a] + sv[b] + add) + (1-g) * (sv[dst] + 1)) % 4. *)
let block_stmt (guard_var, guard_const, dst, src_a, src_b, add) =
  store "sv" (i dst)
    ((((idx "sv" (i guard_var) ==: i guard_const)
      *: (idx "sv" (i src_a) +: idx "sv" (i src_b) +: i add))
     +: ((idx "sv" (i guard_var) <>: i guard_const) *: (idx "sv" (i dst) +: i 1)))
    %: i 4)

let program =
  program
    ~globals:[ array "sv" initial ]
    [ fn "main" []
        ((* One activation: every block runs exactly once, straight-line.
            Even the final checksum is unrolled so that no instruction is
            ever re-fetched — the cache can only exploit spatial
            locality. *)
         Array.to_list (Array.map block_stmt blocks)
        @ [ decl "sum" (i 0) ]
        @ List.init state_vars (fun k ->
              set "sum" (v "sum" +: (idx "sv" (i k) *: i (k + 1))))
        @ [ ret (v "sum") ])
    ]

let expected =
  let sv = Array.copy initial in
  Array.iter
    (fun (guard_var, guard_const, dst, src_a, src_b, add) ->
      if sv.(guard_var) = guard_const then sv.(dst) <- (sv.(src_a) + sv.(src_b) + add) mod 4
      else sv.(dst) <- (sv.(dst) + 1) mod 4)
    blocks;
  let sum = ref 0 in
  Array.iteri (fun k x -> sum := !sum + (x * (k + 1))) sv;
  !sum

(* LU-based linear equation solver, single combined routine
   (Mälardalen ud.c) — same mathematics as ludcmp but the original's
   distinct loop organisation: decomposition and substitutions fused in
   one function over a 5x5 fixed-point system. *)

open Minic.Dsl

let name = "ud"
let description = "fused 5x5 LU solve (decomposition + substitutions in one routine)"

let dim = 5
let scale = 128

let a_init =
  Array.init (dim * dim) (fun k ->
      let r = k / dim and c = k mod dim in
      if r = c then scale * (dim + 2) else scale / (2 + ((r + c) mod 3)))

let b_init =
  Array.init dim (fun r ->
      let sum = ref 0 in
      for c = 0 to dim - 1 do
        sum := !sum + (a_init.((r * dim) + c) * (c + 1))
      done;
      !sum)

let program =
  program
    ~globals:
      [ array "a" a_init; array "b" b_init; array "x" (Array.make dim 0) ]
    [ fn "ludcmp_solve" []
        [ (* Decomposition with the ud.c loop order: for each i, first
             the U row, then the L column, both via dot products. *)
          for_ "ii" (i 1) (i dim)
            [ for_b "jj" (v "ii") (i dim) ~bound:(dim - 1)
                [ decl "w" (idx "a" ((v "ii" *: i dim) +: v "jj"))
                ; for_b "kk" (i 0) (v "ii") ~bound:(dim - 1)
                    [ set "w"
                        (v "w"
                        -: ((idx "a" ((v "ii" *: i dim) +: v "kk")
                            *: idx "a" ((v "kk" *: i dim) +: v "jj"))
                           /: i scale))
                    ]
                ; store "a" ((v "ii" *: i dim) +: v "jj") (v "w")
                ]
            ; for_b "jj" (v "ii" +: i 1) (i dim) ~bound:(dim - 1)
                [ decl "w" (idx "a" ((v "jj" *: i dim) +: v "ii"))
                ; for_b "kk" (i 0) (v "ii") ~bound:(dim - 1)
                    [ set "w"
                        (v "w"
                        -: ((idx "a" ((v "jj" *: i dim) +: v "kk")
                            *: idx "a" ((v "kk" *: i dim) +: v "ii"))
                           /: i scale))
                    ]
                ; store "a" ((v "jj" *: i dim) +: v "ii")
                    ((v "w" *: i scale) /: idx "a" ((v "ii" *: i dim) +: v "ii"))
                ]
            ]
        ; (* y overwrites b (forward), x from backward substitution. *)
          for_ "ii" (i 1) (i dim)
            [ decl "w" (idx "b" (v "ii"))
            ; for_b "jj" (i 0) (v "ii") ~bound:(dim - 1)
                [ set "w" (v "w" -: ((idx "a" ((v "ii" *: i dim) +: v "jj") *: idx "b" (v "jj")) /: i scale)) ]
            ; store "b" (v "ii") (v "w")
            ]
        ; decl "ii" (i (dim - 1))
        ; while_ ~bound:dim
            (v "ii" >=: i 0)
            [ decl "w" (idx "b" (v "ii"))
            ; for_b "jj" (v "ii" +: i 1) (i dim) ~bound:(dim - 1)
                [ set "w" (v "w" -: ((idx "a" ((v "ii" *: i dim) +: v "jj") *: idx "x" (v "jj")) /: i scale)) ]
            ; store "x" (v "ii") ((v "w" *: i scale) /: idx "a" ((v "ii" *: i dim) +: v "ii"))
            ; set "ii" (v "ii" -: i 1)
            ]
        ; ret0
        ]
    ; fn "main" []
        [ expr (call "ludcmp_solve" [])
        ; decl "sum" (i 0)
        ; for_ "k" (i 0) (i dim) [ set "sum" (v "sum" +: (idx "x" (v "k") *: (v "k" +: i 1))) ]
        ; ret (v "sum")
        ]
    ]

let expected =
  let a = Array.copy a_init and b = Array.copy b_init in
  let x = Array.make dim 0 in
  for ii = 1 to dim - 1 do
    for jj = ii to dim - 1 do
      let w = ref a.((ii * dim) + jj) in
      for kk = 0 to ii - 1 do
        w := !w - (a.((ii * dim) + kk) * a.((kk * dim) + jj) / scale)
      done;
      a.((ii * dim) + jj) <- !w
    done;
    for jj = ii + 1 to dim - 1 do
      let w = ref a.((jj * dim) + ii) in
      for kk = 0 to ii - 1 do
        w := !w - (a.((jj * dim) + kk) * a.((kk * dim) + ii) / scale)
      done;
      a.((jj * dim) + ii) <- !w * scale / a.((ii * dim) + ii)
    done
  done;
  for ii = 1 to dim - 1 do
    let w = ref b.(ii) in
    for jj = 0 to ii - 1 do
      w := !w - (a.((ii * dim) + jj) * b.(jj) / scale)
    done;
    b.(ii) <- !w
  done;
  for ii = dim - 1 downto 0 do
    let w = ref b.(ii) in
    for jj = ii + 1 to dim - 1 do
      w := !w - (a.((ii * dim) + jj) * x.(jj) / scale)
    done;
    x.(ii) <- !w * scale / a.((ii * dim) + ii)
  done;
  let sum = ref 0 in
  Array.iteri (fun k xv -> sum := !sum + (xv * (k + 1))) x;
  !sum

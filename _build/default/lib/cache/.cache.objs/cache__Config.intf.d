lib/cache/config.mli: Format

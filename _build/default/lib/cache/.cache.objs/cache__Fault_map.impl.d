lib/cache/fault_map.ml: Array Config Float Format List Random String

lib/cache/fault_map.mli: Config Format Random

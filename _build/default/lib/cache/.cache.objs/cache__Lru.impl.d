lib/cache/lru.ml: Array Config Fault_map List

lib/cache/lru.mli: Config Fault_map

lib/cache/reliable.ml: Array Config Fault_map Lru

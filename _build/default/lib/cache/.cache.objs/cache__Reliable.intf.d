lib/cache/reliable.mli: Config Fault_map Lru

type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  hit_latency : int;
  miss_latency : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let make ~sets ~ways ~line_bytes ?(hit_latency = 1) ?(miss_latency = 100) () =
  if not (is_power_of_two sets) then invalid_arg "Config.make: sets must be a power of two";
  if ways <= 0 then invalid_arg "Config.make: ways must be positive";
  if not (is_power_of_two line_bytes) then
    invalid_arg "Config.make: line_bytes must be a power of two";
  if hit_latency <= 0 || miss_latency < hit_latency then
    invalid_arg "Config.make: need 0 < hit_latency <= miss_latency";
  { sets; ways; line_bytes; hit_latency; miss_latency }

let paper_default = make ~sets:16 ~ways:4 ~line_bytes:16 ()

let size_bytes t = t.sets * t.ways * t.line_bytes
let block_bits t = 8 * t.line_bytes
let block_of_address t addr = addr / t.line_bytes
let set_of_block t block = block mod t.sets
let set_of_address t addr = set_of_block t (block_of_address t addr)
let miss_penalty t = t.miss_latency - t.hit_latency
let latency t ~hit = if hit then t.hit_latency else t.miss_latency

let pp fmt t =
  Format.fprintf fmt "%dB %d-way, %d sets x %dB lines (hit %d, miss %d)" (size_bytes t) t.ways
    t.sets t.line_bytes t.hit_latency t.miss_latency

(** Cache geometry and timing parameters.

    A configuration is [S] sets x [W] ways of [line_bytes]-byte blocks
    with LRU replacement (the only policy the analysis supports), plus
    the hit/miss latencies used both by the simulators and by the WCET
    costing. The paper's experimental configuration — 1 KB, 4-way,
    16-byte lines, 1-cycle hit, 100-cycle miss — is {!paper_default}. *)

type t = private {
  sets : int;       (** power of two *)
  ways : int;
  line_bytes : int; (** power of two *)
  hit_latency : int;
  miss_latency : int;
}

val make :
  sets:int -> ways:int -> line_bytes:int -> ?hit_latency:int -> ?miss_latency:int -> unit -> t
(** Defaults: hit 1, miss 100.
    @raise Invalid_argument on non-positive or non-power-of-two
    geometry, or [miss_latency < hit_latency]. *)

val paper_default : t
(** 16 sets, 4 ways, 16-byte lines, hit 1, miss 100 (1 KB total). *)

val size_bytes : t -> int

val block_bits : t -> int
(** [K] of paper eq. 1: bits per cache block, [8 * line_bytes]. *)

val block_of_address : t -> int -> int
(** Memory-block number of a byte address ([addr / line_bytes]). *)

val set_of_block : t -> int -> int
(** Cache set a memory block maps to ([block mod sets]). *)

val set_of_address : t -> int -> int

val miss_penalty : t -> int
(** Extra cycles a miss costs over a hit ([miss - hit]); the unit of the
    fault-miss-map penalties. *)

val latency : t -> hit:bool -> int
val pp : Format.formatter -> t -> unit

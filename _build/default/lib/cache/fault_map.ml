type t = {
  sets : int;
  ways : int;
  faulty : bool array array;  (* faulty.(set).(way) *)
}

let fault_free (cfg : Config.t) =
  {
    sets = cfg.Config.sets;
    ways = cfg.Config.ways;
    faulty = Array.init cfg.Config.sets (fun _ -> Array.make cfg.Config.ways false);
  }

let of_faulty_counts (cfg : Config.t) counts =
  if Array.length counts <> cfg.Config.sets then
    invalid_arg "Fault_map.of_faulty_counts: wrong number of sets";
  Array.iter
    (fun c ->
      if c < 0 || c > cfg.Config.ways then
        invalid_arg "Fault_map.of_faulty_counts: count outside [0, ways]")
    counts;
  {
    sets = cfg.Config.sets;
    ways = cfg.Config.ways;
    faulty = Array.init cfg.Config.sets (fun s -> Array.init cfg.Config.ways (fun w -> w < counts.(s)));
  }

let sample (cfg : Config.t) ~pbf state =
  if not (Float.is_finite pbf) || pbf < 0.0 || pbf > 1.0 then
    invalid_arg "Fault_map.sample: pbf outside [0,1]";
  {
    sets = cfg.Config.sets;
    ways = cfg.Config.ways;
    faulty =
      Array.init cfg.Config.sets (fun _ ->
          Array.init cfg.Config.ways (fun _ -> Random.State.float state 1.0 < pbf));
  }

let is_faulty t ~set ~way = t.faulty.(set).(way)

let faulty_in_set t s = Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 t.faulty.(s)
let working_in_set t s = t.ways - faulty_in_set t s

let total_faulty t =
  let acc = ref 0 in
  for s = 0 to t.sets - 1 do
    acc := !acc + faulty_in_set t s
  done;
  !acc

let faulty_counts t = Array.init t.sets (faulty_in_set t)

let repair_first ~budget t =
  if budget < 0 then invalid_arg "Fault_map.repair_first: negative budget";
  let remaining = ref budget in
  {
    t with
    faulty =
      Array.map
        (fun row ->
          Array.map
            (fun f ->
              if f && !remaining > 0 then begin
                decr remaining;
                false
              end
              else f)
            row)
        t.faulty;
  }

let mask_way t ~way =
  if way < 0 || way >= t.ways then invalid_arg "Fault_map.mask_way: way out of range";
  {
    t with
    faulty = Array.map (fun row -> Array.mapi (fun w f -> if w = way then false else f) row) t.faulty;
  }

let pp fmt t =
  for s = 0 to t.sets - 1 do
    Format.fprintf fmt "set %2d: %s@." s
      (String.concat ""
         (List.init t.ways (fun w -> if t.faulty.(s).(w) then "X" else ".")))
  done

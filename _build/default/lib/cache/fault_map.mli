(** Concrete permanent-fault maps: which physical cache block (set, way)
    is faulty. The paper's fault model (Section II-A): each SRAM bit
    fails independently with probability [pfail]; a block with any
    faulty bit is disabled; LRU makes the position of faulty ways in a
    set irrelevant — only the count matters. *)

type t

val fault_free : Config.t -> t

val of_faulty_counts : Config.t -> int array -> t
(** [of_faulty_counts cfg counts] marks the first [counts.(s)] ways of
    each set faulty (position is immaterial under LRU).
    @raise Invalid_argument on bad array length or counts outside
    [0, ways]. *)

val sample : Config.t -> pbf:float -> Random.State.t -> t
(** Independent Bernoulli([pbf]) per physical block — the concrete
    counterpart of paper eq. 2. *)

val is_faulty : t -> set:int -> way:int -> bool
val faulty_in_set : t -> int -> int
val working_in_set : t -> int -> int
val total_faulty : t -> int
val faulty_counts : t -> int array

val repair_first : budget:int -> t -> t
(** Clear up to [budget] faults, scanning sets then ways in order — the
    boot-time assignment of a reliable victim cache's supplementary
    lines. @raise Invalid_argument on a negative budget. *)

val mask_way : t -> way:int -> t
(** [mask_way t ~way] returns a map where faults in the given way are
    masked (repaired) in every set — the RW mechanism's effect. *)

val pp : Format.formatter -> t -> unit

type t = {
  cfg : Config.t;
  capacity : int array;        (* working ways per set *)
  stacks : int list array;     (* per set, MRU first; length <= capacity *)
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ?fault_map (cfg : Config.t) =
  let fm = match fault_map with Some m -> m | None -> Fault_map.fault_free cfg in
  {
    cfg;
    capacity = Array.init cfg.Config.sets (Fault_map.working_in_set fm);
    stacks = Array.make cfg.Config.sets [];
    hit_count = 0;
    miss_count = 0;
  }

let access_block t block =
  let s = Config.set_of_block t.cfg block in
  let stack = t.stacks.(s) in
  let hit = List.mem block stack in
  if hit then begin
    t.hit_count <- t.hit_count + 1;
    t.stacks.(s) <- block :: List.filter (fun b -> b <> block) stack
  end
  else begin
    t.miss_count <- t.miss_count + 1;
    let cap = t.capacity.(s) in
    if cap > 0 then begin
      let trimmed =
        if List.length stack >= cap then List.filteri (fun i _ -> i < cap - 1) stack else stack
      in
      t.stacks.(s) <- block :: trimmed
    end
  end;
  hit

let access t addr = access_block t (Config.block_of_address t.cfg addr)

let latency_oracle t addr = Config.latency t.cfg ~hit:(access t addr)

let reset t =
  Array.fill t.stacks 0 (Array.length t.stacks) [];
  t.hit_count <- 0;
  t.miss_count <- 0

let contents t s = t.stacks.(s)
let config t = t.cfg
let hits t = t.hit_count
let misses t = t.miss_count

(** Concrete LRU instruction-cache simulator with disabled (faulty)
    blocks.

    A set with [k] working ways behaves as an LRU stack of depth [k]
    (paper Section II-A: "the size of the LRU stack of a set is reduced
    by its number of faulty blocks"); a fully-faulty set caches
    nothing. *)

type t

val create : ?fault_map:Fault_map.t -> Config.t -> t
(** Empty (cold) cache; default fault map is fault-free. *)

val access : t -> int -> bool
(** [access t addr] — true on hit; updates LRU state and loads the
    block on a miss (if the set has any working way). *)

val access_block : t -> int -> bool
(** Same, taking a memory-block number instead of an address. *)

val latency_oracle : t -> int -> int
(** [access] wrapped into a fetch-latency function for
    {!Isa.Machine.run}. *)

val reset : t -> unit
val contents : t -> int -> int list
(** Blocks of a set, MRU first (for tests). *)

val config : t -> Config.t
val hits : t -> int
val misses : t -> int

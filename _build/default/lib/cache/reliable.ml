let rw_cache ~fault_map ?(reliable_way = 0) cfg =
  Lru.create ~fault_map:(Fault_map.mask_way fault_map ~way:reliable_way) cfg

module Rvc = struct
  let repair ~entries fm = Fault_map.repair_first ~budget:entries fm

  let create ~fault_map ~entries cfg =
    Lru.create ~fault_map:(repair ~entries fault_map) cfg
end

module Srb = struct
  type t = {
    cfg : Config.t;
    cache : Lru.t;
    all_faulty : bool array;  (* per set: no working way at all *)
    mutable buffer : int option;
    mutable srb_refs : int;
    mutable hit_count : int;
    mutable miss_count : int;
  }

  let create ~fault_map cfg =
    {
      cfg;
      cache = Lru.create ~fault_map cfg;
      all_faulty = Array.init cfg.Config.sets (fun s -> Fault_map.working_in_set fault_map s = 0);
      buffer = None;
      srb_refs = 0;
      hit_count = 0;
      miss_count = 0;
    }

  let access_block t block =
    let s = Config.set_of_block t.cfg block in
    let hit =
      if t.all_faulty.(s) then begin
        (* Buffer path: consulted only for fully-faulty sets. *)
        t.srb_refs <- t.srb_refs + 1;
        if t.buffer = Some block then true
        else begin
          t.buffer <- Some block;
          false
        end
      end
      else Lru.access_block t.cache block
    in
    if hit then t.hit_count <- t.hit_count + 1 else t.miss_count <- t.miss_count + 1;
    hit

  let access t addr = access_block t (Config.block_of_address t.cfg addr)
  let latency_oracle t addr = Config.latency t.cfg ~hit:(access t addr)

  let reset t =
    Lru.reset t.cache;
    t.buffer <- None;
    t.srb_refs <- 0;
    t.hit_count <- 0;
    t.miss_count <- 0

  let srb_contents t = t.buffer
  let srb_accesses t = t.srb_refs
  let hits t = t.hit_count
  let misses t = t.miss_count
end

(** Concrete simulators for the paper's two reliability mechanisms.

    - {b RW} (reliable way): one fixed way per set is resilient, so at
      most [W-1] ways of a set can effectively fail. Simulated as an
      ordinary faulty LRU cache whose fault map has the reliable way
      masked.
    - {b SRB} (shared reliable buffer): a single fault-resilient buffer
      of one block, shared by all sets, consulted {e only} when every
      block of the referenced set is faulty (paper Section III-A.2). *)

val rw_cache : fault_map:Fault_map.t -> ?reliable_way:int -> Config.t -> Lru.t
(** The faulty LRU cache of an RW-protected architecture (default
    reliable way: 0). *)

(** Reliable Victim Cache (RVC) of Abella et al., HiPEAC 2011 — the
    related-work baseline of the paper's Section V: a pool of [entries]
    fault-resilient supplementary lines statically repairs faulty cache
    blocks (scan order over sets then ways) at boot. With at most
    [entries] faults on the die, the cache behaves exactly fault-free;
    further faulty blocks stay disabled. *)
module Rvc : sig
  val repair : entries:int -> Fault_map.t -> Fault_map.t
  (** The effective fault map after assigning the supplementary lines. *)

  val create : fault_map:Fault_map.t -> entries:int -> Config.t -> Lru.t
  (** The cache an RVC-protected architecture exposes. *)
end

(** SRB-protected cache. *)
module Srb : sig
  type t

  val create : fault_map:Fault_map.t -> Config.t -> t
  val access : t -> int -> bool
  val access_block : t -> int -> bool
  val latency_oracle : t -> int -> int
  val reset : t -> unit

  val srb_contents : t -> int option
  (** Block currently held by the buffer. *)

  val srb_accesses : t -> int
  (** How many references were served through the buffer path. *)

  val hits : t -> int
  val misses : t -> int
end

lib/cache_analysis/acs.ml: Format Int List Map Printf String

lib/cache_analysis/acs.mli: Format

lib/cache_analysis/chmc.ml: Acs Array Cache Cfg Fixpoint Format Int List Set

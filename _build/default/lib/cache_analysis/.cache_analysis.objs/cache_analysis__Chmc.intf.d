lib/cache_analysis/chmc.mli: Cache Cfg Format

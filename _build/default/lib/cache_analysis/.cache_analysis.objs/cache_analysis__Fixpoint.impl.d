lib/cache_analysis/fixpoint.ml: Array Cfg Int List Set

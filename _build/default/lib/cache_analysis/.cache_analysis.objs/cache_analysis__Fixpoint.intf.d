lib/cache_analysis/fixpoint.mli: Cfg

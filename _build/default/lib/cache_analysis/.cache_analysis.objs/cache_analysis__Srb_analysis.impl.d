lib/cache_analysis/srb_analysis.ml: Acs Array Cache Cfg Fixpoint List

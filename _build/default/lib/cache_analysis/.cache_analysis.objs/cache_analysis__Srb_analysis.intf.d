lib/cache_analysis/srb_analysis.mli: Cache Cfg

module IntMap = Map.Make (Int)

type t = int IntMap.t

let empty = IntMap.empty
let equal = IntMap.equal Int.equal
let age t b = IntMap.find_opt b t
let mem t b = IntMap.mem b t
let blocks t = List.map fst (IntMap.bindings t)

let must_update ~assoc t b =
  if assoc <= 0 then IntMap.empty
  else begin
    let old_age = match IntMap.find_opt b t with Some a -> a | None -> max_int in
    let aged =
      IntMap.filter_map
        (fun c a -> if c = b then None else if a < old_age then (if a + 1 < assoc then Some (a + 1) else None) else Some a)
        t
    in
    IntMap.add b 0 aged
  end

let must_age_all ~assoc t =
  if assoc <= 0 then IntMap.empty
  else IntMap.filter_map (fun _ a -> if a + 1 < assoc then Some (a + 1) else None) t

let must_join a b =
  IntMap.merge
    (fun _ x y -> match (x, y) with Some x, Some y -> Some (max x y) | _ -> None)
    a b

let may_update ~assoc t b =
  if assoc <= 0 then IntMap.empty
  else begin
    let old_age = match IntMap.find_opt b t with Some a -> a | None -> max_int in
    let aged =
      IntMap.filter_map
        (fun c a -> if c = b then None else if a <= old_age then (if a + 1 < assoc then Some (a + 1) else None) else Some a)
        t
    in
    IntMap.add b 0 aged
  end

let may_join a b =
  IntMap.union (fun _ x y -> Some (min x y)) a b

let pp fmt t =
  Format.fprintf fmt "{%s}"
    (String.concat "; "
       (List.map (fun (b, a) -> Printf.sprintf "%d@%d" b a) (IntMap.bindings t)))

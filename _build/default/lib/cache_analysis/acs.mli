(** Abstract cache states for one cache set under LRU (Ferdinand-style
    abstract interpretation).

    A state maps memory-block numbers to abstract ages in
    [0, assoc - 1]. For the Must analysis an age is an {e upper} bound
    on the block's LRU age over all represented concrete states (so
    presence proves a hit); for the May analysis it is a {e lower}
    bound (so absence proves a miss). *)

type t

val empty : t
(** The cold cache (also the correct entry state for both analyses on a
    cache that is invalidated at boot). *)

val equal : t -> t -> bool
val age : t -> int -> int option
val mem : t -> int -> bool
val blocks : t -> int list

val must_update : assoc:int -> t -> int -> t
(** Access a block: it moves to age 0; blocks with a strictly smaller
    upper-bound age (all blocks when the accessed one is absent) age by
    one and fall out at [assoc]. With [assoc <= 0] the state is empty. *)

val must_join : t -> t -> t
(** Intersection with maximal ages. *)

val must_age_all : assoc:int -> t -> t
(** The sound Must transfer for an access whose block is statically
    unknown (an imprecise data reference): any block may have been
    accessed, so every upper-bound age grows by one. *)

val may_update : assoc:int -> t -> int -> t
(** Access a block: blocks with a lower-bound age [<=] that of the
    accessed one (all blocks when it is absent) age by one. *)

val may_join : t -> t -> t
(** Union with minimal ages. *)

val pp : Format.formatter -> t -> unit

type scope =
  | Global
  | Loop of int

type classification =
  | Always_hit
  | First_miss of scope
  | Always_miss
  | Not_classified

type t = {
  classes : classification array array;  (* per node, per instruction offset *)
  blocks : int array array;
  sets : int array array;
  reachable : bool array;
}

module IntSet = Set.Make (Int)

let ref_info graph config =
  let n = Cfg.Graph.node_count graph in
  let blocks = Array.make n [||] and sets = Array.make n [||] in
  for u = 0 to n - 1 do
    let addrs = Array.of_list (Cfg.Graph.addresses graph (Cfg.Graph.node graph u)) in
    blocks.(u) <- Array.map (Cache.Config.block_of_address config) addrs;
    sets.(u) <- Array.map (Cache.Config.set_of_block config) blocks.(u)
  done;
  (blocks, sets)

(* Must and may in-states for the given cache set, then per-reference
   presence flags obtained by replaying each node's accesses. *)
let presence_for_set graph blocks sets ~set ~assoc =
  let transfer update u acs =
    let b = blocks.(u) and ss = sets.(u) in
    let acc = ref acs in
    Array.iteri (fun k blk -> if ss.(k) = set then acc := update !acc blk) b;
    !acc
  in
  let must_in =
    Fixpoint.run ~graph ~entry_state:Acs.empty
      ~transfer:(transfer (Acs.must_update ~assoc))
      ~join:Acs.must_join ~equal:Acs.equal
  in
  let may_in =
    Fixpoint.run ~graph ~entry_state:Acs.empty
      ~transfer:(transfer (Acs.may_update ~assoc))
      ~join:Acs.may_join ~equal:Acs.equal
  in
  let n = Cfg.Graph.node_count graph in
  let must_hit = Array.make n [||] and may_present = Array.make n [||] in
  for u = 0 to n - 1 do
    let len = Array.length blocks.(u) in
    must_hit.(u) <- Array.make len false;
    may_present.(u) <- Array.make len false;
    (match (must_in.(u), may_in.(u)) with
    | Some must0, Some may0 ->
      let must = ref must0 and may = ref may0 in
      for k = 0 to len - 1 do
        let blk = blocks.(u).(k) in
        if sets.(u).(k) = set then begin
          must_hit.(u).(k) <- Acs.mem !must blk;
          may_present.(u).(k) <- Acs.mem !may blk;
          must := Acs.must_update ~assoc !must blk;
          may := Acs.may_update ~assoc !may blk
        end
      done
    | _ -> () (* unreachable node *))
  done;
  (must_hit, may_present)

let analyze ~graph ~loops ~config ?assoc ?only_sets () =
  let ways = config.Cache.Config.ways in
  let assoc = match assoc with Some f -> f | None -> fun _ -> ways in
  let blocks, sets = ref_info graph config in
  let n = Cfg.Graph.node_count graph in
  let reachable = Array.make n false in
  Array.iter (fun u -> reachable.(u) <- true) (Cfg.Graph.reverse_postorder graph);
  (* Distinct blocks per cache set, globally and per loop body. *)
  let distinct_blocks nodes =
    let per_set = Array.make config.Cache.Config.sets IntSet.empty in
    List.iter
      (fun u ->
        Array.iteri (fun k blk -> per_set.(sets.(u).(k)) <- IntSet.add blk per_set.(sets.(u).(k))) blocks.(u))
      nodes;
    per_set
  in
  let reachable_nodes =
    List.filter (fun u -> reachable.(u)) (List.init n (fun u -> u))
  in
  let global_conflicts = distinct_blocks reachable_nodes in
  let loop_conflicts =
    List.map (fun (l : Cfg.Loop.loop) -> (l, distinct_blocks l.Cfg.Loop.body)) loops
  in
  (* Referenced cache sets, optionally restricted. *)
  let used_sets =
    Array.fold_left
      (fun acc ss -> Array.fold_left (fun acc s -> IntSet.add s acc) acc ss)
      IntSet.empty sets
  in
  let used_sets =
    match only_sets with
    | None -> used_sets
    | Some keep -> IntSet.inter used_sets (IntSet.of_list keep)
  in
  let classes = Array.init n (fun u -> Array.make (Array.length blocks.(u)) Not_classified) in
  IntSet.iter
    (fun set ->
      let assoc_s = assoc set in
      let must_hit, may_present = presence_for_set graph blocks sets ~set ~assoc:assoc_s in
      for u = 0 to n - 1 do
        if reachable.(u) then
          Array.iteri
            (fun k s ->
              if s = set then begin
                let cls =
                  if must_hit.(u).(k) then Always_hit
                  else if assoc_s > 0 && IntSet.cardinal global_conflicts.(set) <= assoc_s then
                    First_miss Global
                  else begin
                    (* Outermost enclosing loop whose conflict set fits. *)
                    let enclosing =
                      List.filter (fun ((l : Cfg.Loop.loop), _) -> List.mem u l.Cfg.Loop.body) loop_conflicts
                    in
                    let by_size_desc =
                      List.sort
                        (fun ((a : Cfg.Loop.loop), _) (b, _) ->
                          compare (List.length b.Cfg.Loop.body) (List.length a.Cfg.Loop.body))
                        enclosing
                    in
                    match
                      List.find_opt
                        (fun (_, conflicts) ->
                          assoc_s > 0 && IntSet.cardinal conflicts.(set) <= assoc_s)
                        by_size_desc
                    with
                    | Some (l, _) -> First_miss (Loop l.Cfg.Loop.header)
                    | None -> if not may_present.(u).(k) then Always_miss else Not_classified
                  end
                in
                classes.(u).(k) <- cls
              end)
            sets.(u)
      done)
    used_sets;
  { classes; blocks; sets; reachable }

let classification t ~node ~offset = t.classes.(node).(offset)
let block t ~node ~offset = t.blocks.(node).(offset)
let cache_set t ~node ~offset = t.sets.(node).(offset)

let fold_refs f t init =
  let acc = ref init in
  Array.iteri
    (fun u row ->
      if t.reachable.(u) then
        Array.iteri (fun k cls -> acc := f ~node:u ~offset:k cls !acc) row)
    t.classes;
  !acc

let miss_cost_per_execution = function
  | Always_miss | Not_classified -> true
  | Always_hit | First_miss _ -> false

let pp_classification fmt = function
  | Always_hit -> Format.pp_print_string fmt "AH"
  | First_miss Global -> Format.pp_print_string fmt "FM(global)"
  | First_miss (Loop h) -> Format.fprintf fmt "FM(loop n%d)" h
  | Always_miss -> Format.pp_print_string fmt "AM"
  | Not_classified -> Format.pp_print_string fmt "NC"

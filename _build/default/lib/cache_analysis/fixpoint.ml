let run ~graph ~entry_state ~transfer ~join ~equal =
  let n = Cfg.Graph.node_count graph in
  let in_state : 'a option array = Array.make n None in
  let rpo = Cfg.Graph.reverse_postorder graph in
  let rpo_pos = Array.make n max_int in
  Array.iteri (fun i u -> rpo_pos.(u) <- i) rpo;
  in_state.(graph.Cfg.Graph.entry) <- Some entry_state;
  (* Worklist keyed by rpo position so that nodes are processed in a
     near-topological order; a module-level set gives O(log n) pops. *)
  let module IS = Set.Make (Int) in
  let work = ref (IS.singleton rpo_pos.(graph.Cfg.Graph.entry)) in
  let node_at = Array.make n (-1) in
  Array.iteri (fun i u -> node_at.(i) <- u) rpo;
  while not (IS.is_empty !work) do
    let p = IS.min_elt !work in
    work := IS.remove p !work;
    let u = node_at.(p) in
    match in_state.(u) with
    | None -> ()
    | Some s ->
      let out = transfer u s in
      List.iter
        (fun v ->
          let updated =
            match in_state.(v) with
            | None -> Some out
            | Some old ->
              let joined = join old out in
              if equal joined old then None else Some joined
          in
          match updated with
          | None -> ()
          | Some j ->
            in_state.(v) <- Some j;
            work := IS.add rpo_pos.(v) !work)
        (Cfg.Graph.successors graph u)
  done;
  in_state

(** Generic forward data-flow fixpoint over a control-flow graph.

    Worklist iteration in reverse-postorder. The in-state of a node is
    the join of its predecessors' out-states; unreachable nodes keep no
    state ([None]). *)

val run :
  graph:Cfg.Graph.t ->
  entry_state:'a ->
  transfer:(int -> 'a -> 'a) ->
  join:('a -> 'a -> 'a) ->
  equal:('a -> 'a -> bool) ->
  'a option array
(** [run ~graph ~entry_state ~transfer ~join ~equal] returns the
    stabilised {e in}-state of every node (indexed by node id). The
    entry node's in-state additionally joins [entry_state] (the state
    on the virtual entry edge). *)

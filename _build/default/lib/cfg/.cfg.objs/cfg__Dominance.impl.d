lib/cfg/dominance.ml: Array Graph List

lib/cfg/dominance.mli: Graph

lib/cfg/graph.ml: Array Format Hashtbl Instr Isa List Printf Program Reg String

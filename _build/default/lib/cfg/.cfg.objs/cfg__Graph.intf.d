lib/cfg/graph.mli: Format Isa

lib/cfg/loop.ml: Array Dominance Format Graph Hashtbl Isa List Option

lib/cfg/loop.mli: Graph

type t = {
  idom : int array;      (* idom.(entry) = entry; -1 = unreachable *)
  pos : int array;       (* reverse-postorder position; -1 = unreachable *)
  entry : int;
}

let compute (g : Graph.t) =
  let n = Graph.node_count g in
  let rpo = Graph.reverse_postorder g in
  let pos = Array.make n (-1) in
  Array.iteri (fun i u -> pos.(u) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(g.Graph.entry) <- g.Graph.entry;
  let rec intersect a b =
    if a = b then a
    else if pos.(a) > pos.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun u ->
        if u <> g.Graph.entry then begin
          let processed_preds =
            List.filter (fun p -> pos.(p) >= 0 && idom.(p) >= 0) (Graph.predecessors g u)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(u) <> new_idom then begin
              idom.(u) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  { idom; pos; entry = g.Graph.entry }

let reachable t u = t.pos.(u) >= 0

let idom t u =
  if u = t.entry || t.idom.(u) < 0 then None else Some t.idom.(u)

let dominates t a b =
  if not (reachable t a && reachable t b) then false
  else begin
    (* Climb the dominator tree from b; dominators have smaller rpo
       positions. *)
    let rec climb b = if t.pos.(b) > t.pos.(a) then climb t.idom.(b) else b in
    climb b = a
  end

(** Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).

    Used to identify natural loops and check reducibility. Unreachable
    nodes have no dominator information. *)

type t

val compute : Graph.t -> t

val idom : t -> int -> int option
(** Immediate dominator; [None] for the entry node and for unreachable
    nodes. *)

val reachable : t -> int -> bool

val dominates : t -> int -> int -> bool
(** [dominates t a b] — every path from the entry to [b] goes through
    [a]. False when either node is unreachable (except [a = b]
    reachable). *)

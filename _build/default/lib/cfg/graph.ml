open Isa

type node = {
  id : int;
  first : int;
  len : int;
  context : int list;
}

type t = {
  program : Program.t;
  nodes : node array;
  succ : int list array;
  pred : int list array;
  entry : int;
  exits : int list;
}

exception Build_error of string

let error fmt = Format.kasprintf (fun s -> raise (Build_error s)) fmt

(* --- intra-function block structure ----------------------------------- *)

type terminator =
  | Fallthrough
  | Goto of int
  | Branch of int  (* taken target; also falls through *)
  | Call of int    (* callee entry index; continues after the jal *)
  | Return
  | Stop

type proto_block = { pb_first : int; pb_len : int; pb_term : terminator }

let analyze_function program (f : Program.func) : proto_block list =
  let fn_end = f.fn_start + f.fn_len in
  let in_function i = i >= f.fn_start && i < fn_end in
  let leaders = Hashtbl.create 16 in
  Hashtbl.replace leaders f.fn_start ();
  for i = f.fn_start to fn_end - 1 do
    let instr = Program.instruction program i in
    (match instr with
    | Instr.Beq2 (_, _, _, target) | Instr.Beqz (_, _, target) | Instr.J target ->
      if not (in_function target) then
        error "%s: branch at index %d targets outside the function" f.fn_name i;
      Hashtbl.replace leaders target ()
    | Instr.Jal _ | Instr.Jr _ | Instr.Halt -> ()
    | Instr.Alu _ | Instr.Alui _ | Instr.Shift _ | Instr.Li _ | Instr.Lw _ | Instr.Sw _
    | Instr.Lb _ | Instr.Sb _ | Instr.Nop ->
      ());
    if Instr.is_control_flow instr && i + 1 < fn_end then Hashtbl.replace leaders (i + 1) ()
  done;
  let sorted_leaders = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) leaders []) in
  let rec blocks = function
    | [] -> []
    | first :: rest ->
      let stop = match rest with next :: _ -> next | [] -> fn_end in
      let len = stop - first in
      let term =
        match Program.instruction program (stop - 1) with
        | Instr.Beq2 (_, _, _, target) | Instr.Beqz (_, _, target) -> Branch target
        | Instr.J target -> Goto target
        | Instr.Jal target -> Call target
        | Instr.Jr r ->
          if Reg.equal r Reg.ra then Return
          else error "%s: indirect jump through %s is not analysable" f.fn_name (Reg.name r)
        | Instr.Halt -> Stop
        | Instr.Alu _ | Instr.Alui _ | Instr.Shift _ | Instr.Li _ | Instr.Lw _ | Instr.Sw _
        | Instr.Lb _ | Instr.Sb _ | Instr.Nop ->
          if stop = fn_end then
            error "%s: control falls off the end of the function" f.fn_name
          else Fallthrough
      in
      { pb_first = first; pb_len = len; pb_term = term } :: blocks rest
  in
  blocks sorted_leaders

(* --- interprocedural expansion ----------------------------------------- *)

type builder = {
  b_program : Program.t;
  mutable b_nodes : node list;  (* reversed *)
  mutable b_count : int;
  mutable b_edges : (int * int) list;
  mutable b_halts : int list;
  protos : (string, proto_block list) Hashtbl.t;
}

let get_protos b (f : Program.func) =
  match Hashtbl.find_opt b.protos f.fn_name with
  | Some p -> p
  | None ->
    let p = analyze_function b.b_program f in
    Hashtbl.add b.protos f.fn_name p;
    p

let add_node b ~first ~len ~context =
  let id = b.b_count in
  b.b_count <- id + 1;
  b.b_nodes <- { id; first; len; context } :: b.b_nodes;
  id

let add_edge b src dst = b.b_edges <- (src, dst) :: b.b_edges

(* Expands [f] under calling context [ctx]; returns the entry node id
   and the ids of the blocks that return to the caller. *)
let rec expand b (f : Program.func) ctx (stack : string list) : int * int list =
  if List.mem f.Program.fn_name stack then
    error "recursion through %s (the analysis requires an acyclic call graph)" f.fn_name;
  let protos = get_protos b f in
  let id_of_first = Hashtbl.create 16 in
  List.iter
    (fun pb ->
      let id = add_node b ~first:pb.pb_first ~len:pb.pb_len ~context:ctx in
      Hashtbl.add id_of_first pb.pb_first id)
    protos;
  let block_id first =
    match Hashtbl.find_opt id_of_first first with
    | Some id -> id
    | None -> error "%s: no block starts at index %d" f.fn_name first
  in
  let returns = ref [] in
  List.iter
    (fun pb ->
      let id = block_id pb.pb_first in
      let next () = block_id (pb.pb_first + pb.pb_len) in
      match pb.pb_term with
      | Fallthrough -> add_edge b id (next ())
      | Goto target -> add_edge b id (block_id target)
      | Branch target ->
        add_edge b id (block_id target);
        if target <> pb.pb_first + pb.pb_len then add_edge b id (next ())
      | Call callee_start ->
        let callee =
          match
            List.find_opt
              (fun (g : Program.func) -> g.fn_start = callee_start)
              b.b_program.Program.functions
          with
          | Some g -> g
          | None -> error "%s: jal into the middle of a function (index %d)" f.fn_name callee_start
        in
        let call_site = pb.pb_first + pb.pb_len - 1 in
        let centry, cexits = expand b callee (call_site :: ctx) (f.fn_name :: stack) in
        add_edge b id centry;
        let cont = next () in
        List.iter (fun e -> add_edge b e cont) cexits
      | Return -> returns := id :: !returns
      | Stop -> b.b_halts <- id :: b.b_halts)
    protos;
  (block_id f.fn_start, !returns)

let build program =
  let main =
    match program.Program.functions with
    | [] -> error "program has no functions"
    | f :: _ -> f
  in
  let b =
    {
      b_program = program;
      b_nodes = [];
      b_count = 0;
      b_edges = [];
      b_halts = [];
      protos = Hashtbl.create 8;
    }
  in
  let entry, main_returns = expand b main [] [] in
  let nodes = Array.of_list (List.rev b.b_nodes) in
  let n = Array.length nodes in
  let succ = Array.make n [] and pred = Array.make n [] in
  let seen = Hashtbl.create (List.length b.b_edges) in
  List.iter
    (fun (u, v) ->
      if not (Hashtbl.mem seen (u, v)) then begin
        Hashtbl.add seen (u, v) ();
        succ.(u) <- v :: succ.(u);
        pred.(v) <- u :: pred.(v)
      end)
    b.b_edges;
  Array.iteri (fun i l -> succ.(i) <- List.rev l) succ;
  Array.iteri (fun i l -> pred.(i) <- List.rev l) pred;
  (* A jr in main terminates the program just like halt. *)
  let exits = b.b_halts @ main_returns in
  if exits = [] then error "program has no exit (no halt reachable)";
  { program; nodes; succ; pred; entry; exits }

let node_count t = Array.length t.nodes
let node t id = t.nodes.(id)
let successors t id = t.succ.(id)
let predecessors t id = t.pred.(id)

let instruction_indices node = List.init node.len (fun k -> node.first + k)

let addresses t node =
  List.map (Program.address_of_index t.program) (instruction_indices node)

let edges t =
  let acc = ref [] in
  Array.iteri (fun u vs -> List.iter (fun v -> acc := (u, v) :: !acc) vs) t.succ;
  List.rev !acc

let reverse_postorder t =
  let n = Array.length t.nodes in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs u =
    if not visited.(u) then begin
      visited.(u) <- true;
      List.iter dfs t.succ.(u);
      order := u :: !order
    end
  in
  dfs t.entry;
  Array.of_list !order

let pp fmt t =
  Array.iter
    (fun nd ->
      let ctx =
        match nd.context with
        | [] -> ""
        | c -> Printf.sprintf " ctx:%s" (String.concat "," (List.map string_of_int c))
      in
      Format.fprintf fmt "n%d [%d..%d]%s -> %s@." nd.id nd.first
        (nd.first + nd.len - 1)
        ctx
        (String.concat " " (List.map (Printf.sprintf "n%d") t.succ.(nd.id))))
    t.nodes

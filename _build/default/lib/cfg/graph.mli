(** Interprocedural control-flow graphs over assembled programs.

    The graph is built by {e virtual inlining}: every call site expands
    the callee's blocks into fresh nodes tagged with the call context,
    while the underlying instruction addresses stay shared. Cache
    analyses therefore see the real (physically shared) address stream
    per calling context, and the IPET formulation needs no special
    call/return pairing constraints — exactly the context mechanism of
    Heptane-style WCET tools. Recursion is rejected.

    Nodes are basic blocks: a context plus a contiguous instruction
    range of the program. *)

type node = {
  id : int;
  first : int;  (** index of the first instruction in the program *)
  len : int;  (** number of instructions (>= 1) *)
  context : int list;
      (** call string: instruction indices of the active [jal]s,
          innermost first; [[]] for code of [main] *)
}

type t = private {
  program : Isa.Program.t;
  nodes : node array;  (** indexed by [id] *)
  succ : int list array;
  pred : int list array;
  entry : int;  (** node id *)
  exits : int list;  (** nodes ending in [Halt] *)
}

exception Build_error of string

val build : Isa.Program.t -> t
(** @raise Build_error on recursion, a [jal] into the middle of a
    function, a [jr] through a non-[ra] register, or code falling off
    the end of a function. *)

val node_count : t -> int
val node : t -> int -> node
val successors : t -> int -> int list
val predecessors : t -> int -> int list

val instruction_indices : node -> int list
(** Program instruction indices covered by the node, in order. *)

val addresses : t -> node -> int list
(** Byte addresses of the node's instructions, in fetch order. *)

val edges : t -> (int * int) list
(** All edges as (source id, destination id), deduplicated. *)

val reverse_postorder : t -> int array
(** Node ids in reverse postorder from the entry. *)

val pp : Format.formatter -> t -> unit

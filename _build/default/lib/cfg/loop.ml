type loop = {
  header : int;
  back_edges : (int * int) list;
  entry_edges : (int * int) list;
  body : int list;
  bound : int;
}

exception Loop_error of string

let error fmt = Format.kasprintf (fun s -> raise (Loop_error s)) fmt

let detect (g : Graph.t) =
  let dom = Dominance.compute g in
  let rpo = Graph.reverse_postorder g in
  let pos = Array.make (Graph.node_count g) (-1) in
  Array.iteri (fun i u -> pos.(u) <- i) rpo;
  (* Classify edges: among reachable nodes, an edge u->h with
     pos(h) <= pos(u) is retreating; a reducible graph has only
     retreating edges whose target dominates their source. *)
  let back_edges_by_header = Hashtbl.create 8 in
  List.iter
    (fun (u, h) ->
      if pos.(u) >= 0 && pos.(h) >= 0 && pos.(h) <= pos.(u) then
        if Dominance.dominates dom h u then
          Hashtbl.replace back_edges_by_header h
            ((u, h) :: (Option.value (Hashtbl.find_opt back_edges_by_header h) ~default:[]))
        else
          error "irreducible control flow: retreating edge n%d -> n%d without domination" u h)
    (Graph.edges g);
  let bound_of header_node =
    let first = (Graph.node g header_node).Graph.first in
    match List.assoc_opt first g.Graph.program.Isa.Program.loop_bounds with
    | Some b -> b
    | None ->
      error "loop header n%d (instruction %d) has no bound annotation" header_node first
  in
  (* The natural loop of header h: h plus every reachable node that
     reaches a back-edge source without going through h. Unreachable
     predecessors (dead code branching into the body) are excluded —
     they execute never and would break the header-dominates-body
     invariant downstream consumers rely on. *)
  let natural_loop h sources =
    let in_body = Hashtbl.create 16 in
    Hashtbl.replace in_body h ();
    let rec pull u =
      if pos.(u) >= 0 && not (Hashtbl.mem in_body u) then begin
        Hashtbl.replace in_body u ();
        List.iter pull (Graph.predecessors g u)
      end
    in
    List.iter pull sources;
    Hashtbl.fold (fun k () acc -> k :: acc) in_body []
  in
  let headers = Hashtbl.fold (fun h _ acc -> h :: acc) back_edges_by_header [] in
  List.map
    (fun h ->
      let back_edges = Hashtbl.find back_edges_by_header h in
      let body = List.sort compare (natural_loop h (List.map fst back_edges)) in
      let body_set = Hashtbl.create 16 in
      List.iter (fun u -> Hashtbl.replace body_set u ()) body;
      let entry_edges =
        List.filter (fun p -> not (Hashtbl.mem body_set p)) (Graph.predecessors g h)
        |> List.map (fun p -> (p, h))
      in
      { header = h; back_edges; entry_edges; body; bound = bound_of h })
    (List.sort compare headers)

let loops_containing loops u = List.filter (fun l -> List.mem u l.body) loops

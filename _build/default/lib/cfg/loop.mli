(** Natural-loop detection with bound attachment.

    Back edges are grouped per header into one natural loop; the loop
    bound comes from the program's annotations (attached by the
    compiler to the loop-header instruction). Bound semantics: the
    total count of back-edge traversals is at most [bound] times the
    count of loop entries — i.e. the body runs at most [bound] times
    per entry, matching the compiler's loop shapes. *)

type loop = {
  header : int;  (** node id *)
  back_edges : (int * int) list;
  entry_edges : (int * int) list;  (** edges into the header from outside the body *)
  body : int list;  (** node ids, header included, sorted *)
  bound : int;
}

exception Loop_error of string

val detect : Graph.t -> loop list
(** Loops sorted by header id.
    @raise Loop_error on an irreducible graph or a back edge whose
    header carries no bound annotation. *)

val loops_containing : loop list -> int -> loop list
(** Loops whose body contains the given node. *)

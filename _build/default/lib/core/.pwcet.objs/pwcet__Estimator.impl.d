lib/core/estimator.ml: Cache Cache_analysis Cfg Fault Fmm Ipet List Mechanism Penalty Prob

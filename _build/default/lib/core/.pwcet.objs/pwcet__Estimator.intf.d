lib/core/estimator.mli: Cache Cache_analysis Cfg Fmm Isa Mechanism Prob

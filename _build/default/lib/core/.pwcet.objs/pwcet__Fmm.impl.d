lib/core/fmm.ml: Array Cache Cache_analysis Format Ipet Mechanism Printf

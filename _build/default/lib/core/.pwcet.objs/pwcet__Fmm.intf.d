lib/core/fmm.mli: Cache Cfg Format Mechanism

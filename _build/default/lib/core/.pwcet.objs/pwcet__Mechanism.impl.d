lib/core/mechanism.ml: Format String

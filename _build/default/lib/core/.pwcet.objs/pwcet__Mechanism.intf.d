lib/core/mechanism.mli: Format

lib/core/penalty.ml: Array Cache Fault Fmm List Mechanism Prob

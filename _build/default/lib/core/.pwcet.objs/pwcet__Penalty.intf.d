lib/core/penalty.mli: Fmm Prob

lib/core/report_data.ml: List

lib/core/report_data.mli:

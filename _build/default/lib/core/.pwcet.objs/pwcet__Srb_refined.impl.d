lib/core/srb_refined.ml: Array Cache Cache_analysis Fault Float Fmm Ipet List Mechanism Numeric Penalty Prob

lib/core/srb_refined.mli: Cache Cfg

lib/core/victim.ml: Cache Float Numeric Prob

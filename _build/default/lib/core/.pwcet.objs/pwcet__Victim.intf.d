lib/core/victim.mli: Cache Prob

type t =
  | No_protection
  | Reliable_way
  | Shared_reliable_buffer

let all = [ No_protection; Shared_reliable_buffer; Reliable_way ]

let name = function
  | No_protection -> "no protection"
  | Reliable_way -> "reliable way (RW)"
  | Shared_reliable_buffer -> "shared reliable buffer (SRB)"

let short_name = function
  | No_protection -> "none"
  | Reliable_way -> "rw"
  | Shared_reliable_buffer -> "srb"

let of_string s =
  match String.lowercase_ascii s with
  | "none" | "no-protection" | "unprotected" -> Some No_protection
  | "rw" | "reliable-way" -> Some Reliable_way
  | "srb" | "shared-reliable-buffer" -> Some Shared_reliable_buffer
  | _ -> None

let equal a b = a = b
let pp fmt t = Format.pp_print_string fmt (name t)

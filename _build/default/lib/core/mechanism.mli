(** The hardware configurations the paper compares (Section III-A):
    no protection, the Reliable Way, and the Shared Reliable Buffer. *)

type t =
  | No_protection
  | Reliable_way
  | Shared_reliable_buffer

val all : t list
(** In the paper's presentation order: no protection, SRB, RW. *)

val name : t -> string
val short_name : t -> string
(** ["none"], ["srb"], ["rw"]. *)

val of_string : string -> t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

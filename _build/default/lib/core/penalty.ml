let set_distribution ~fmm ~pbf ~set =
  let config = Fmm.config fmm in
  let ways = config.Cache.Config.ways in
  let penalty = Cache.Config.miss_penalty config in
  let pmf =
    match Fmm.mechanism fmm with
    | Mechanism.Reliable_way -> Fault.Model.way_distribution_rw ~ways ~pbf
    | Mechanism.No_protection | Mechanism.Shared_reliable_buffer ->
      Fault.Model.way_distribution ~ways ~pbf
  in
  let points = ref [] in
  Array.iteri
    (fun w p -> if p > 0.0 then points := (Fmm.misses fmm ~set ~faulty:w * penalty, p) :: !points)
    pmf;
  Prob.Dist.of_points !points

let total_distribution ?max_points ~fmm ~pbf () =
  let config = Fmm.config fmm in
  let dists =
    List.init config.Cache.Config.sets (fun set -> set_distribution ~fmm ~pbf ~set)
  in
  Prob.Dist.convolve_all ?max_points dists

type row = {
  name : string;
  wcet_ff : int;
  pwcet_none : int;
  pwcet_srb : int;
  pwcet_rw : int;
}

let gain row ~protected =
  if row.pwcet_none = 0 then 0.0
  else float_of_int (row.pwcet_none - protected) /. float_of_int row.pwcet_none

let gain_srb row = gain row ~protected:row.pwcet_srb
let gain_rw row = gain row ~protected:row.pwcet_rw

let normalized row =
  let n = float_of_int row.pwcet_none in
  (float_of_int row.wcet_ff /. n, float_of_int row.pwcet_srb /. n, float_of_int row.pwcet_rw /. n)

(* Two pWCETs are "equal" up to half a percent of the no-protection
   baseline: analysis granularity, not real differences. *)
let category row =
  let tol = max 1 (row.pwcet_none / 200) in
  let close a b = abs (a - b) <= tol in
  let rw_ff = close row.pwcet_rw row.wcet_ff in
  let srb_ff = close row.pwcet_srb row.wcet_ff in
  if rw_ff && srb_ff then 1
  else if rw_ff then 2
  else if close row.pwcet_rw row.pwcet_srb then 3
  else 4

let average_gains rows =
  let n = float_of_int (max 1 (List.length rows)) in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  (sum gain_rw /. n, sum gain_srb /. n)

let min_gain rows f =
  match rows with
  | [] -> invalid_arg "Report_data.min_gain: empty"
  | first :: rest ->
    List.fold_left
      (fun (name, g) r -> if f r < g then (r.name, f r) else (name, g))
      (first.name, f first) rest

(** Derived quantities for the paper's evaluation (Fig. 4 and the
    in-text aggregates of Section IV-B). *)

type row = {
  name : string;
  wcet_ff : int;
  pwcet_none : int;
  pwcet_srb : int;
  pwcet_rw : int;
}

val gain : row -> protected:int -> float
(** Relative pWCET reduction vs no protection:
    [(pwcet_none - protected) / pwcet_none]. *)

val gain_srb : row -> float
val gain_rw : row -> float

val normalized : row -> float * float * float
(** (fault-free, SRB, RW) pWCETs normalised to the no-protection pWCET —
    the stacked bars of Fig. 4. *)

val category : row -> int
(** The paper's four behavioural categories (Section IV-B):
    1. both mechanisms reach the fault-free WCET;
    2. RW reaches it, SRB does not;
    3. neither reaches it and both gain about the same;
    4. mixed behaviours (everything else). *)

val average_gains : row list -> float * float
(** (average RW gain, average SRB gain) over rows. *)

val min_gain : row list -> (row -> float) -> string * float
(** Benchmark with the smallest gain under the given accessor. *)

(** Refined pWCET estimation for the SRB — an implementation of the
    paper's future-work direction (Section VI: "a more precise pWCET
    estimation technique for the SRB could be devised to limit the
    conservatism of the proposed technique").

    The conservatism of the paper's SRB analysis comes from assuming
    the buffer is clobbered by {e any} interleaved reference. But the
    SRB is only consulted for fully-faulty ("dead") sets, and dead sets
    are rare: at the paper's operating point
    [P(a set is dead) = pbf^W ~ 2.6e-8], so two dead sets at once carry
    probability [~8e-14]. We therefore split on the number of dead
    sets [D] and use, for each case, the tightest sound bound:

    - [D = 0]: the ordinary per-set penalty columns [f < W]
      (sub-distribution of mass [(1 - pwf(W))^S]);
    - [D = 1], dead set [s]: an {e exclusive} SRB analysis of [s]
      (only references to [s] touch the buffer — true in this case)
      bounds the dead-set misses, other sets use their [f < W] columns;
    - [D = 2], dead pair [{s1, s2}]: a pair-exclusive SRB analysis
      (the two dead sets share and contend for the buffer, healthy
      sets never touch it);
    - [D >= 3]: fall back to the paper's conservative SRB distribution,
      capped by [P(D >= 3)] (about [1e-20] at the paper's operating
      point — far below the [1e-15] target).

    The exceedance bound is the sum of the three terms, each a
    sub-probability exceedance — sound because the cases partition the
    sample space and each case's penalty is bounded by its own sound
    per-pattern bound. *)

type t

val compute :
  graph:Cfg.Graph.t ->
  loops:Cfg.Loop.loop list ->
  config:Cache.Config.t ->
  pbf:float ->
  ?engine:[ `Path | `Ilp ] ->
  ?max_points:int ->
  unit ->
  t

val exceedance : t -> int -> float
(** Upper bound on [P(fault-induced penalty > x)] in cycles. *)

val quantile : t -> target:float -> int
(** Smallest penalty with {!exceedance} at or below the target. *)

val exclusive_dead_set_misses : t -> int array
(** The per-set miss bounds of the [D = 1] case (for reporting):
    entry [s] bounds the fault-induced misses when [s] is the only
    dead set. *)

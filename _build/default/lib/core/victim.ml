let total_blocks (config : Cache.Config.t) =
  config.Cache.Config.sets * config.Cache.Config.ways

let prob_overflow config ~pbf ~entries =
  Numeric.Binomial.survival ~n:(total_blocks config) ~p:pbf entries

let exceedance ~none_penalty ~overflow x =
  Float.min overflow (Prob.Dist.exceedance none_penalty x)

let quantile ~none_penalty ~overflow ~target =
  if overflow <= target then 0 else Prob.Dist.quantile none_penalty ~target

let min_entries_for_target config ~pbf ~target =
  let n = total_blocks config in
  let rec search entries =
    if entries > n then n
    else if prob_overflow config ~pbf ~entries <= target then entries
    else search (entries + 1)
  in
  search 0

(** pWCET analysis of the Reliable Victim Cache (RVC) — the
    related-work mechanism of the paper's Section V (Abella et al.,
    HiPEAC 2011), implemented here as an extension for cost/benefit
    comparison against RW and SRB.

    An RVC of [entries] supplementary resilient lines repairs up to
    [entries] faulty blocks at boot. The sound exceedance bound used:

    [P(penalty > x) <= min(P(#faults > entries), P_none(penalty > x))]

    because with at most [entries] faults the cache is exactly
    fault-free, and otherwise the residual faults are a subset of the
    original ones (the no-protection distribution dominates). The
    per-pattern bound [penalty_rvc(F) <= penalty_none(repair(F))] is
    validated against the concrete simulator in the tests. *)

val prob_overflow : Cache.Config.t -> pbf:float -> entries:int -> float
(** [P(total faulty blocks > entries)]; binomial over [S*W] blocks. *)

val exceedance : none_penalty:Prob.Dist.t -> overflow:float -> int -> float
(** The RVC penalty exceedance bound at a penalty value. *)

val quantile : none_penalty:Prob.Dist.t -> overflow:float -> target:float -> int
(** Smallest penalty whose exceedance bound meets the target. *)

val min_entries_for_target : Cache.Config.t -> pbf:float -> target:float -> int
(** Smallest RVC size that fully masks faults at the target probability
    (i.e. [prob_overflow <= target]) — the hardware-cost figure to set
    against RW's [S] hardened blocks and the SRB's single one. *)

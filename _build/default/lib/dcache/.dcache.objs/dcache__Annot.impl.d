lib/dcache/annot.ml: Cfg Hashtbl Isa List Minic

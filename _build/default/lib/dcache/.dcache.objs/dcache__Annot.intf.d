lib/dcache/annot.mli: Cfg Minic

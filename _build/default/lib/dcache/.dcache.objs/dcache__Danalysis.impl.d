lib/dcache/danalysis.ml: Annot Array Cache Cache_analysis Cfg Int List Minic Option Set

lib/dcache/danalysis.mli: Annot Cache Cache_analysis Cfg

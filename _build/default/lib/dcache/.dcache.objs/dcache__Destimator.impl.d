lib/dcache/destimator.ml: Annot Array Cache Cache_analysis Cfg Danalysis Fault Ipet List Minic Option Prob Pwcet

lib/dcache/destimator.mli: Annot Cache Cache_analysis Cfg Danalysis Minic Prob Pwcet

lib/dcache/dsim.ml: Cache

lib/dcache/dsim.mli: Cache

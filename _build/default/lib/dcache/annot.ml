type t = {
  graph : Cfg.Graph.t;
  by_index : (int, Minic.Compile.data_target) Hashtbl.t;
}

let build graph refs =
  let by_index = Hashtbl.create (List.length refs) in
  List.iter (fun (index, target) -> Hashtbl.replace by_index index target) refs;
  { graph; by_index }

let instruction_index t ~node ~offset = (Cfg.Graph.node t.graph node).Cfg.Graph.first + offset

let target t ~node ~offset = Hashtbl.find_opt t.by_index (instruction_index t ~node ~offset)

let is_load t ~node ~offset =
  match Isa.Program.instruction t.graph.Cfg.Graph.program (instruction_index t ~node ~offset) with
  | Isa.Instr.Lw _ | Isa.Instr.Lb _ -> true
  | _ -> false

let cached_load t ~node ~offset =
  if not (is_load t ~node ~offset) then None
  else
    match target t ~node ~offset with
    | Some Minic.Compile.Data_stack | None -> None
    | Some t -> Some t

(** Data-reference annotations projected onto the expanded CFG.

    The compiler records, per memory instruction, where its effective
    address lives ({!Minic.Compile.data_target}). This module indexes
    those records by (node, offset) so the data-cache analysis can walk
    the graph exactly like the instruction-cache one. The same
    instruction appears in several nodes (one per calling context) and
    shares its annotation, mirroring the physically-shared code. *)

type t

val build : Cfg.Graph.t -> (int * Minic.Compile.data_target) list -> t

val target : t -> node:int -> offset:int -> Minic.Compile.data_target option
(** [None] for instructions that are not loads/stores. *)

val is_load : t -> node:int -> offset:int -> bool
(** Whether the instruction is a load ([Lw]/[Lb]) — the data cache is
    read-allocate/write-through-no-allocate, so only loads are timed
    and only loads update the abstract states. *)

val cached_load : t -> node:int -> offset:int -> Minic.Compile.data_target option
(** The target when the instruction is a load whose address is cached
    (not a stack/scratchpad access); [None] otherwise. *)

module Acs = Cache_analysis.Acs
module Chmc = Cache_analysis.Chmc
module IntSet = Set.Make (Int)

(* What a cached data load can touch. *)
type kind =
  | Precise of int  (* single memory block *)
  | Imprecise of int list  (* every block of the range *)

type t = {
  classes : Chmc.classification option array array;
  kinds : kind option array array;
  config : Cache.Config.t;
  reachable : bool array;
}

let blocks_of_range config ~base ~bytes =
  let first = Cache.Config.block_of_address config base in
  let last = Cache.Config.block_of_address config (base + bytes - 1) in
  List.init (last - first + 1) (fun k -> first + k)

let kind_of config = function
  | Minic.Compile.Data_exact addr -> Precise (Cache.Config.block_of_address config addr)
  | Minic.Compile.Data_range { base; bytes } -> (
    match blocks_of_range config ~base ~bytes with
    | [ b ] -> Precise b
    | bs -> Imprecise bs)
  | Minic.Compile.Data_stack -> assert false

let analyze ~graph ~loops ~config ~annot ?assoc ?only_sets () =
  let ways = config.Cache.Config.ways in
  let assoc = match assoc with Some f -> f | None -> fun _ -> ways in
  let n = Cfg.Graph.node_count graph in
  let reachable = Array.make n false in
  Array.iter (fun u -> reachable.(u) <- true) (Cfg.Graph.reverse_postorder graph);
  (* Load kinds per node/offset. *)
  let kinds =
    Array.init n (fun u ->
        let len = (Cfg.Graph.node graph u).Cfg.Graph.len in
        Array.init len (fun k ->
            Option.map (kind_of config) (Annot.cached_load annot ~node:u ~offset:k)))
  in
  let set_of_block = Cache.Config.set_of_block config in
  (* Distinct possibly-touched blocks per cache set over a node set. *)
  let conflicts nodes =
    let per_set = Array.make config.Cache.Config.sets IntSet.empty in
    List.iter
      (fun u ->
        Array.iter
          (function
            | Some (Precise b) -> per_set.(set_of_block b) <- IntSet.add b per_set.(set_of_block b)
            | Some (Imprecise bs) ->
              List.iter (fun b -> per_set.(set_of_block b) <- IntSet.add b per_set.(set_of_block b)) bs
            | None -> ())
          kinds.(u))
      nodes;
    per_set
  in
  let reachable_nodes = List.filter (fun u -> reachable.(u)) (List.init n (fun u -> u)) in
  let global_conflicts = conflicts reachable_nodes in
  let loop_conflicts =
    List.map (fun (l : Cfg.Loop.loop) -> (l, conflicts l.Cfg.Loop.body)) loops
  in
  (* Sets actually touched. *)
  let used =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc k ->
            match k with
            | Some (Precise b) -> IntSet.add (set_of_block b) acc
            | Some (Imprecise bs) ->
              List.fold_left (fun acc b -> IntSet.add (set_of_block b) acc) acc bs
            | None -> acc)
          acc row)
      IntSet.empty kinds
  in
  let used =
    match only_sets with None -> used | Some keep -> IntSet.inter used (IntSet.of_list keep)
  in
  let classes = Array.init n (fun u -> Array.make (Array.length kinds.(u)) None) in
  IntSet.iter
    (fun set ->
      let assoc_s = assoc set in
      (* Must fixpoint restricted to this set. *)
      let step acs = function
        | Some (Precise b) when set_of_block b = set -> Acs.must_update ~assoc:assoc_s acs b
        | Some (Imprecise bs) when List.exists (fun b -> set_of_block b = set) bs ->
          Acs.must_age_all ~assoc:assoc_s acs
        | _ -> acs
      in
      let transfer u acs = Array.fold_left step acs kinds.(u) in
      let must_in =
        Cache_analysis.Fixpoint.run ~graph ~entry_state:Acs.empty ~transfer
          ~join:Acs.must_join ~equal:Acs.equal
      in
      for u = 0 to n - 1 do
        if reachable.(u) then begin
          match must_in.(u) with
          | None -> ()
          | Some acs0 ->
            let acs = ref acs0 in
            Array.iteri
              (fun k kind ->
                match kind with
                | Some (Precise b) when set_of_block b = set ->
                  let hit = Acs.mem !acs b in
                  let cls =
                    if hit then Chmc.Always_hit
                    else if assoc_s > 0 && IntSet.cardinal global_conflicts.(set) <= assoc_s
                    then Chmc.First_miss Chmc.Global
                    else begin
                      let enclosing =
                        List.filter
                          (fun ((l : Cfg.Loop.loop), _) -> List.mem u l.Cfg.Loop.body)
                          loop_conflicts
                      in
                      let by_size_desc =
                        List.sort
                          (fun ((a : Cfg.Loop.loop), _) (b, _) ->
                            compare (List.length b.Cfg.Loop.body) (List.length a.Cfg.Loop.body))
                          enclosing
                      in
                      match
                        List.find_opt
                          (fun (_, c) -> assoc_s > 0 && IntSet.cardinal c.(set) <= assoc_s)
                          by_size_desc
                      with
                      | Some (l, _) -> Chmc.First_miss (Chmc.Loop l.Cfg.Loop.header)
                      | None -> Chmc.Not_classified
                    end
                  in
                  classes.(u).(k) <- Some cls;
                  acs := step !acs kind
                | Some _ -> acs := step !acs kind
                | None -> ())
              kinds.(u)
        end
      done)
    used;
  (* Imprecise loads are NC regardless of set. *)
  for u = 0 to n - 1 do
    if reachable.(u) then
      Array.iteri
        (fun k kind ->
          match kind with
          | Some (Imprecise _) -> classes.(u).(k) <- Some Chmc.Not_classified
          | _ -> ())
        kinds.(u)
  done;
  { classes; kinds; config; reachable }

let classification t ~node ~offset = t.classes.(node).(offset)

let cache_set t ~node ~offset =
  match t.kinds.(node).(offset) with
  | Some (Precise b) -> Some (Cache.Config.set_of_block t.config b)
  | Some (Imprecise _) | None -> None

let touched_sets t ~node ~offset =
  match t.kinds.(node).(offset) with
  | Some (Precise b) -> [ Cache.Config.set_of_block t.config b ]
  | Some (Imprecise bs) ->
    List.sort_uniq compare (List.map (Cache.Config.set_of_block t.config) bs)
  | None -> []

let fold_loads f t init =
  let acc = ref init in
  Array.iteri
    (fun u row ->
      if t.reachable.(u) then
        Array.iteri
          (fun k cls -> match cls with Some c -> acc := f ~node:u ~offset:k c !acc | None -> ())
          row)
    t.classes;
  !acc

(** Data-cache CHMC — the paper's analysis transposed to data caches
    (its Section VI future-work direction).

    The modelled data cache is read-allocate, write-through with a
    non-blocking write buffer: stores cost no time and do not disturb
    the LRU state, so only loads are classified. Loads come in two
    precisions (from the compiler's {!Minic.Compile.data_target}
    annotations):

    - {e precise}: global scalars, and array accesses whose whole array
      fits in one cache block — analysed exactly like instruction
      fetches (Must + conflict-set persistence);
    - {e imprecise}: array accesses spanning several blocks. They are
      classified not-classified (costed as misses) and treated by the
      Must analysis as unknown accesses that age every tracked block,
      and by the persistence criterion as touching every block of the
      array — both conservative.

    Stack accesses go to the scratchpad and are not classified. *)

type t

val analyze :
  graph:Cfg.Graph.t ->
  loops:Cfg.Loop.loop list ->
  config:Cache.Config.t ->
  annot:Annot.t ->
  ?assoc:(int -> int) ->
  ?only_sets:int list ->
  unit ->
  t
(** Same override knobs as {!Cache_analysis.Chmc.analyze}, for the
    data-cache FMM. *)

val classification : t -> node:int -> offset:int -> Cache_analysis.Chmc.classification option
(** [None] when the instruction is not a cached data load. *)

val cache_set : t -> node:int -> offset:int -> int option
(** The cache set of a precise load; [None] for imprecise ones. *)

val touched_sets : t -> node:int -> offset:int -> int list
(** Sets a cached load can touch (singleton for precise loads). *)

val fold_loads :
  (node:int -> offset:int -> Cache_analysis.Chmc.classification -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over reachable cached loads. *)

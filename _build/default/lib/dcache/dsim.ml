let data_segment_start = 0x1000_0000
let data_segment_end = 0x7000_0000

let in_data_segment addr = addr >= data_segment_start && addr < data_segment_end

let of_lru cache config addr ~write =
  if write || not (in_data_segment addr) then 0
  else Cache.Config.latency config ~hit:(Cache.Lru.access cache addr)

let unprotected ~fault_map config =
  of_lru (Cache.Lru.create ~fault_map config) config

let rw ~fault_map config = of_lru (Cache.Reliable.rw_cache ~fault_map config) config

let srb ~fault_map config =
  let cache = Cache.Reliable.Srb.create ~fault_map config in
  fun addr ~write ->
    if write || not (in_data_segment addr) then 0
    else Cache.Config.latency config ~hit:(Cache.Reliable.Srb.access cache addr)

let fault_free config = of_lru (Cache.Lru.create config) config

(** Concrete data-cache timing oracles for {!Isa.Machine.run}.

    The modelled memory system: addresses in the data segment
    ([0x10000000, 0x70000000)) go through the data cache; the stack
    (above) lives in a scratchpad and costs nothing extra; stores are
    write-through into a non-blocking buffer — no latency charged, no
    cache-state change (no-allocate). *)

val in_data_segment : int -> bool

val unprotected : fault_map:Cache.Fault_map.t -> Cache.Config.t -> int -> write:bool -> int
(** Oracle over a faulty LRU data cache. *)

val rw : fault_map:Cache.Fault_map.t -> Cache.Config.t -> int -> write:bool -> int

val srb : fault_map:Cache.Fault_map.t -> Cache.Config.t -> int -> write:bool -> int

val fault_free : Cache.Config.t -> int -> write:bool -> int

lib/fault/model.ml: Array Cache Numeric

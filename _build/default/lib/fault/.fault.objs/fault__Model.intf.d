lib/fault/model.mli: Cache

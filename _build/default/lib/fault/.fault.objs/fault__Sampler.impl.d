lib/fault/sampler.ml: Array Cache Model Random

lib/fault/sampler.mli: Cache Random

module B = Numeric.Binomial
module Pf = Numeric.Probfloat

let pbf ~pfail ~block_bits = Pf.one_minus_pow_one_minus ~p:pfail ~k:block_bits

let pbf_of_config ~pfail cfg = pbf ~pfail ~block_bits:(Cache.Config.block_bits cfg)

let pwf ~ways ~pbf w = B.pmf ~n:ways ~p:pbf w

let pwf_rw ~ways ~pbf w =
  if ways <= 0 then invalid_arg "Model.pwf_rw: non-positive ways";
  B.pmf ~n:(ways - 1) ~p:pbf w

let way_distribution ~ways ~pbf = Array.init (ways + 1) (pwf ~ways ~pbf)

let way_distribution_rw ~ways ~pbf = Array.init (ways + 1) (pwf_rw ~ways ~pbf)

let prob_all_ways_faulty ~ways ~pbf = pwf ~ways ~pbf ways

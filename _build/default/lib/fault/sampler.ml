let fault_map cfg ~pfail state =
  let pbf = Model.pbf_of_config ~pfail cfg in
  Cache.Fault_map.sample cfg ~pbf state

let faulty_way_counts (cfg : Cache.Config.t) ~pfail state =
  let ways = cfg.Cache.Config.ways in
  let pbf = Model.pbf_of_config ~pfail cfg in
  let pmf = Model.way_distribution ~ways ~pbf in
  let draw () =
    let u = Random.State.float state 1.0 in
    let rec go w acc =
      if w >= ways then ways
      else begin
        let acc = acc +. pmf.(w) in
        if u < acc then w else go (w + 1) acc
      end
    in
    go 0 0.0
  in
  Array.init cfg.Cache.Config.sets (fun _ -> draw ())

(** Monte-Carlo sampling of fault configurations, for cross-validating
    the analytic pipeline against concrete simulation. *)

val fault_map : Cache.Config.t -> pfail:float -> Random.State.t -> Cache.Fault_map.t
(** Samples per-block failures with [pbf] derived from [pfail]
    (eq. 1) — the concrete realisation of the paper's model. *)

val faulty_way_counts : Cache.Config.t -> pfail:float -> Random.State.t -> int array
(** Per-set faulty-way counts drawn from the binomial law (eq. 2) by
    inversion; statistically identical to counting in [fault_map]. *)

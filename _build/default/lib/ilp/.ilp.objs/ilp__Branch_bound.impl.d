lib/ilp/branch_bound.ml: Array List Lp Numeric Simplex

lib/ilp/branch_bound.mli: Lp Simplex

lib/ilp/lp.ml: Format Hashtbl List Numeric Option Printf

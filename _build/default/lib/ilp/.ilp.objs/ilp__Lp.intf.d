lib/ilp/lp.mli: Format Numeric

lib/ilp/simplex.ml: Array List Lp Numeric

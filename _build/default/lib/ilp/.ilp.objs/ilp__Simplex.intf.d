lib/ilp/simplex.mli: Lp Numeric

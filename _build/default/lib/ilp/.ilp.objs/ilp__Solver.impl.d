lib/ilp/solver.ml: Array Branch_bound Lp Numeric Simplex

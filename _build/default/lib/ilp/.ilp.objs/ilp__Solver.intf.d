lib/ilp/solver.mli: Lp Numeric

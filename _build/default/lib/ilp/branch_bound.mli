(** Branch-and-bound for integer programs on top of {!Simplex}.

    Depth-first search branching on the first fractional
    integer-marked variable, pruning with the incumbent objective.
    IPET systems have near-integral relaxations, so the tree is almost
    always trivial. *)

type result =
  | Optimal of Simplex.solution
  | Infeasible
  | Unbounded  (** the root relaxation is unbounded *)

val solve : ?max_nodes:int -> Lp.t -> result
(** @raise Failure when the node budget (default 100000) is exhausted —
    never silently under-approximates. *)

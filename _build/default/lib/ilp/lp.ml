module Rat = Numeric.Rat

type var = int

type relation =
  | Le
  | Ge
  | Eq

type constr = {
  cname : string;
  coeffs : (var * Rat.t) list;
  relation : relation;
  rhs : Rat.t;
}

type t = {
  mutable names : string list;  (* reversed *)
  mutable integer : bool list;  (* reversed *)
  mutable count : int;
  mutable constrs : constr list;  (* reversed *)
  mutable objective : (var * Rat.t) list;
}

let create () = { names = []; integer = []; count = 0; constrs = []; objective = [] }

let add_var t ?name ?(integer = true) () =
  let id = t.count in
  let name = match name with Some n -> n | None -> Printf.sprintf "x%d" id in
  t.names <- name :: t.names;
  t.integer <- integer :: t.integer;
  t.count <- id + 1;
  id

let check_var t v = if v < 0 || v >= t.count then invalid_arg "Lp: unknown variable"

(* Sum duplicate terms and drop zeros so the tableau stays clean. *)
let normalize_terms t coeffs =
  let tbl = Hashtbl.create (List.length coeffs) in
  List.iter
    (fun (v, c) ->
      check_var t v;
      let prev = Option.value ~default:Rat.zero (Hashtbl.find_opt tbl v) in
      Hashtbl.replace tbl v (Rat.add prev c))
    coeffs;
  Hashtbl.fold (fun v c acc -> if Rat.is_zero c then acc else (v, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let add_constr t ?name coeffs relation rhs =
  let cname = match name with Some n -> n | None -> Printf.sprintf "c%d" (List.length t.constrs) in
  t.constrs <- { cname; coeffs = normalize_terms t coeffs; relation; rhs } :: t.constrs

let add_constr_int t ?name coeffs relation rhs =
  add_constr t ?name (List.map (fun (v, c) -> (v, Rat.of_int c)) coeffs) relation (Rat.of_int rhs)

let set_objective t coeffs = t.objective <- normalize_terms t coeffs
let set_objective_int t coeffs = set_objective t (List.map (fun (v, c) -> (v, Rat.of_int c)) coeffs)

let num_vars t = t.count
let var_name t v =
  check_var t v;
  List.nth t.names (t.count - 1 - v)

let is_integer t v =
  check_var t v;
  List.nth t.integer (t.count - 1 - v)

let constraints t = List.rev t.constrs
let objective t = t.objective

let pp_terms t fmt coeffs =
  List.iteri
    (fun i (v, c) ->
      if i > 0 then Format.pp_print_string fmt " + ";
      Format.fprintf fmt "%a %s" Rat.pp c (var_name t v))
    coeffs

let pp fmt t =
  Format.fprintf fmt "maximize: %a@." (pp_terms t) t.objective;
  List.iter
    (fun c ->
      let rel = match c.relation with Le -> "<=" | Ge -> ">=" | Eq -> "=" in
      Format.fprintf fmt "%s: %a %s %a@." c.cname (pp_terms t) c.coeffs rel Rat.pp c.rhs)
    (constraints t)

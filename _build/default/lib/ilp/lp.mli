(** Linear/integer programming models.

    Variables are non-negative rationals (optionally marked integer);
    the objective is always maximisation — the IPET convention. This is
    the model layer the exact simplex ({!Simplex}) and branch-and-bound
    ({!Branch_bound}) operate on; it replaces the Cplex dependency of
    the paper's toolchain. *)

type var = int

type relation =
  | Le
  | Ge
  | Eq

type constr = {
  cname : string;
  coeffs : (var * Numeric.Rat.t) list;
  relation : relation;
  rhs : Numeric.Rat.t;
}

type t

val create : unit -> t

val add_var : t -> ?name:string -> ?integer:bool -> unit -> var
(** A fresh non-negative variable (default: integer). *)

val add_constr :
  t -> ?name:string -> (var * Numeric.Rat.t) list -> relation -> Numeric.Rat.t -> unit
(** Terms with duplicate variables are summed; zero coefficients are
    dropped. @raise Invalid_argument on an unknown variable. *)

val add_constr_int : t -> ?name:string -> (var * int) list -> relation -> int -> unit

val set_objective : t -> (var * Numeric.Rat.t) list -> unit
val set_objective_int : t -> (var * int) list -> unit

val num_vars : t -> int
val var_name : t -> var -> string
val is_integer : t -> var -> bool
val constraints : t -> constr list
(** In insertion order. *)

val objective : t -> (var * Numeric.Rat.t) list

val pp : Format.formatter -> t -> unit
(** LP-file-style dump, for debugging. *)

module Rat = Numeric.Rat

type solution = {
  objective : Rat.t;
  values : Rat.t array;
}

type result =
  | Optimal of solution
  | Unbounded
  | Infeasible

(* Dense tableau:
     a     : m rows over [ncols] columns (structural ++ slack/surplus ++ artificial)
     b     : m right-hand sides, kept >= 0 (primal feasibility)
     basis : basic column of each row
     obj   : current reduced-cost row (entering candidates have obj > 0)
     objv  : current objective value *)
type tableau = {
  mutable m : int;
  ncols : int;
  a : Rat.t array array;
  b : Rat.t array;
  basis : int array;
  obj : Rat.t array;
  mutable objv : Rat.t;
}

let pivot t ~row ~col =
  let arow = t.a.(row) in
  let p = arow.(col) in
  (* Normalise the pivot row. *)
  for j = 0 to t.ncols - 1 do
    arow.(j) <- Rat.div arow.(j) p
  done;
  t.b.(row) <- Rat.div t.b.(row) p;
  (* Eliminate the column from every other row and from the objective. *)
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = t.a.(i).(col) in
      if not (Rat.is_zero f) then begin
        let irow = t.a.(i) in
        for j = 0 to t.ncols - 1 do
          irow.(j) <- Rat.sub irow.(j) (Rat.mul f arow.(j))
        done;
        t.b.(i) <- Rat.sub t.b.(i) (Rat.mul f t.b.(row))
      end
    end
  done;
  let f = t.obj.(col) in
  if not (Rat.is_zero f) then begin
    for j = 0 to t.ncols - 1 do
      t.obj.(j) <- Rat.sub t.obj.(j) (Rat.mul f arow.(j))
    done;
    t.objv <- Rat.add t.objv (Rat.mul f t.b.(row))
  end;
  t.basis.(row) <- col

(* Maximise the current objective row with Bland's rule. [allowed]
   filters the columns that may enter (used to bar artificials in
   phase 2). Returns false when unbounded. *)
let optimize t ~allowed =
  let rec iterate () =
    (* Bland: the entering column is the smallest-index improving one. *)
    let entering = ref (-1) in
    (try
       for j = 0 to t.ncols - 1 do
         if allowed j && Rat.sign t.obj.(j) > 0 then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then true
    else begin
      let col = !entering in
      (* Ratio test; ties broken by the smallest basic variable index. *)
      let best = ref (-1) in
      let best_ratio = ref Rat.zero in
      for i = 0 to t.m - 1 do
        if Rat.sign t.a.(i).(col) > 0 then begin
          let ratio = Rat.div t.b.(i) t.a.(i).(col) in
          if
            !best < 0
            || Rat.compare ratio !best_ratio < 0
            || (Rat.compare ratio !best_ratio = 0 && t.basis.(i) < t.basis.(!best))
          then begin
            best := i;
            best_ratio := ratio
          end
        end
      done;
      if !best < 0 then false
      else begin
        pivot t ~row:!best ~col;
        iterate ()
      end
    end
  in
  iterate ()

(* Install a fresh objective [c] (indexed by column) and rewrite it in
   terms of the current basis. *)
let set_objective t c =
  Array.blit c 0 t.obj 0 t.ncols;
  t.objv <- Rat.zero;
  for i = 0 to t.m - 1 do
    let f = t.obj.(t.basis.(i)) in
    if not (Rat.is_zero f) then begin
      let irow = t.a.(i) in
      for j = 0 to t.ncols - 1 do
        t.obj.(j) <- Rat.sub t.obj.(j) (Rat.mul f irow.(j))
      done;
      t.objv <- Rat.add t.objv (Rat.mul f t.b.(i))
    end
  done

let drop_row t row =
  let last = t.m - 1 in
  if row <> last then begin
    t.a.(row) <- t.a.(last);
    t.b.(row) <- t.b.(last);
    t.basis.(row) <- t.basis.(last)
  end;
  t.m <- last

let run_phase2 t lp n first_art =
  let c2 = Array.make t.ncols Rat.zero in
  List.iter (fun (v, q) -> c2.(v) <- q) (Lp.objective lp);
  set_objective t c2;
  if optimize t ~allowed:(fun j -> j < first_art) then begin
    let values = Array.make n Rat.zero in
    for i = 0 to t.m - 1 do
      if t.basis.(i) < n then values.(t.basis.(i)) <- t.b.(i)
    done;
    Optimal { objective = t.objv; values }
  end
  else Unbounded

let solve (lp : Lp.t) =
  let n = Lp.num_vars lp in
  let constrs = Array.of_list (Lp.constraints lp) in
  let m = Array.length constrs in
  (* Column layout: one slack/surplus column per inequality, one
     artificial per Ge/Eq constraint. *)
  let n_slack = ref 0 and n_art = ref 0 in
  Array.iter
    (fun (c : Lp.constr) ->
      (* Normalising the rhs sign may flip the relation. *)
      let relation = if Rat.sign c.Lp.rhs < 0 then
          (match c.Lp.relation with Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq)
        else c.Lp.relation
      in
      (match relation with
      | Lp.Le -> incr n_slack
      | Lp.Ge ->
        incr n_slack;
        incr n_art
      | Lp.Eq -> incr n_art))
    constrs;
  let ncols = n + !n_slack + !n_art in
  let t =
    {
      m;
      ncols;
      a = Array.init m (fun _ -> Array.make ncols Rat.zero);
      b = Array.make m Rat.zero;
      basis = Array.make (max m 1) (-1);
      obj = Array.make ncols Rat.zero;
      objv = Rat.zero;
    }
  in
  let next_slack = ref n and next_art = ref (n + !n_slack) in
  let first_art = n + !n_slack in
  Array.iteri
    (fun i (c : Lp.constr) ->
      let flip = Rat.sign c.Lp.rhs < 0 in
      let coeff v = if flip then Rat.neg v else v in
      List.iter (fun (v, q) -> t.a.(i).(v) <- coeff q) c.Lp.coeffs;
      t.b.(i) <- coeff c.Lp.rhs;
      let relation =
        if flip then
          match c.Lp.relation with Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq
        else c.Lp.relation
      in
      match relation with
      | Lp.Le ->
        let s = !next_slack in
        incr next_slack;
        t.a.(i).(s) <- Rat.one;
        t.basis.(i) <- s
      | Lp.Ge ->
        let s = !next_slack in
        incr next_slack;
        t.a.(i).(s) <- Rat.minus_one;
        let art = !next_art in
        incr next_art;
        t.a.(i).(art) <- Rat.one;
        t.basis.(i) <- art
      | Lp.Eq ->
        let art = !next_art in
        incr next_art;
        t.a.(i).(art) <- Rat.one;
        t.basis.(i) <- art)
    constrs;
  (* Phase 1: drive the artificials to zero. *)
  if first_art < ncols then begin
    let c1 = Array.make ncols Rat.zero in
    for j = first_art to ncols - 1 do
      c1.(j) <- Rat.minus_one
    done;
    set_objective t c1;
    let bounded = optimize t ~allowed:(fun _ -> true) in
    assert bounded;
    if Rat.sign t.objv < 0 then Infeasible
    else begin
      (* Pivot basic artificials out; drop redundant rows. *)
      let i = ref 0 in
      while !i < t.m do
        if t.basis.(!i) >= first_art then begin
          let col = ref (-1) in
          (try
             for j = 0 to first_art - 1 do
               if not (Rat.is_zero t.a.(!i).(j)) then begin
                 col := j;
                 raise Exit
               end
             done
           with Exit -> ());
          if !col >= 0 then begin
            pivot t ~row:!i ~col:!col;
            incr i
          end
          else drop_row t !i (* all-zero row: redundant *)
        end
        else incr i
      done;
      run_phase2 t lp n first_art
    end
  end
  else run_phase2 t lp n first_art


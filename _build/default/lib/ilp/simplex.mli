(** Exact two-phase primal simplex over arbitrary-precision rationals.

    Solves the LP relaxation of an {!Lp.t} (integrality markers are
    ignored): maximise the objective subject to the constraints and
    non-negativity. Bland's rule guarantees termination; exact
    arithmetic sidesteps every floating-point feasibility tolerance
    issue — important because WCET soundness rests on the bound being a
    true optimum (or over-estimate), never an under-estimate. *)

type solution = {
  objective : Numeric.Rat.t;
  values : Numeric.Rat.t array;  (** one value per structural variable *)
}

type result =
  | Optimal of solution
  | Unbounded
  | Infeasible

val solve : Lp.t -> result

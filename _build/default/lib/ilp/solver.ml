module Rat = Numeric.Rat
module Bigint = Numeric.Bigint

type outcome = {
  objective : Rat.t;
  values : Rat.t array;
  integral : bool;
}

type result =
  | Solution of outcome
  | Infeasible
  | Unbounded

let is_integral lp (sol : Simplex.solution) =
  let n = Array.length sol.Simplex.values in
  let rec go v =
    v >= n || ((not (Lp.is_integer lp v)) || Rat.is_integer sol.Simplex.values.(v)) && go (v + 1)
  in
  go 0

let of_simplex lp = function
  | Simplex.Optimal sol ->
    Solution
      {
        objective = sol.Simplex.objective;
        values = sol.Simplex.values;
        integral = is_integral lp sol;
      }
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded

let relaxation lp = of_simplex lp (Simplex.solve lp)

let integer lp =
  match Branch_bound.solve lp with
  | Branch_bound.Optimal sol ->
    Solution
      {
        objective = sol.Simplex.objective;
        values = sol.Simplex.values;
        integral = true;
      }
  | Branch_bound.Infeasible -> Infeasible
  | Branch_bound.Unbounded -> Unbounded

let maximize ?(exact = true) lp =
  match relaxation lp with
  | Solution o when (not o.integral) && exact -> integer lp
  | r -> r

let objective_upper_bound lp =
  match relaxation lp with
  | Solution o -> Bigint.to_int_exn (Rat.ceil o.objective)
  | Infeasible -> failwith "Solver.objective_upper_bound: infeasible model"
  | Unbounded -> failwith "Solver.objective_upper_bound: unbounded model"

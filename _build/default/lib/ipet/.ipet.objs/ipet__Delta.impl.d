lib/ipet/delta.ml: Array Cache_analysis Cfg Hashtbl Ilp List Model Numeric Option Path_engine Printf

lib/ipet/delta.mli: Cache Cache_analysis Cfg

lib/ipet/model.ml: Array Cfg Hashtbl Ilp List Option Printf

lib/ipet/model.mli: Cfg Ilp

lib/ipet/path_engine.ml: Array Cfg Hashtbl Int List Queue Set

lib/ipet/path_engine.mli: Cfg

lib/ipet/wcet.ml: Array Cache Cache_analysis Cfg Hashtbl Ilp List Model Numeric Option Path_engine Printf

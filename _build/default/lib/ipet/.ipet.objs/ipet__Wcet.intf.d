lib/ipet/wcet.mli: Cache Cache_analysis Cfg

module IntSet = Set.Make (Int)

type scope =
  | Whole_program
  | Loop_scope of int

(* Collapse state: ids [0, n) are graph nodes, ids >= n are loop
   super-nodes. [parent] implements find with path compression. *)
type state = {
  parent : int array;
  cost : int array;
  has_exit : bool array;
  succ : IntSet.t array;  (* successor ids as recorded at insert time;
                             always resolve through [find] when read *)
}

let rec find st u =
  let p = st.parent.(u) in
  if p = u then u
  else begin
    let root = find st p in
    st.parent.(u) <- root;
    root
  end

let current_successors st u =
  IntSet.fold
    (fun s acc ->
      let r = find st s in
      if r = u then acc else IntSet.add r acc)
    st.succ.(u) IntSet.empty

(* Longest node-weighted path from [source] within the node set
   [members], ignoring edges into [excluded_target] (back edges). The
   subgraph is a DAG once inner loops are collapsed. Returns the
   distance table (cost includes both endpoints). *)
let longest_within st members ~source =
  let dist = Hashtbl.create (IntSet.cardinal members) in
  (* Topological order by Kahn's algorithm on the member-induced DAG. *)
  let indegree = Hashtbl.create 16 in
  IntSet.iter (fun u -> Hashtbl.replace indegree u 0) members;
  IntSet.iter
    (fun u ->
      IntSet.iter
        (fun v ->
          if IntSet.mem v members && v <> source then
            Hashtbl.replace indegree v (1 + Hashtbl.find indegree v))
        (current_successors st u))
    members;
  let queue = Queue.create () in
  IntSet.iter (fun u -> if Hashtbl.find indegree u = 0 then Queue.add u queue) members;
  Hashtbl.replace dist source st.cost.(source);
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = Hashtbl.find_opt dist u in
    IntSet.iter
      (fun v ->
        if IntSet.mem v members && v <> source then begin
          (match du with
          | Some d ->
            let candidate = d + st.cost.(v) in
            (match Hashtbl.find_opt dist v with
            | Some existing when existing >= candidate -> ()
            | _ -> Hashtbl.replace dist v candidate)
          | None -> ());
          let remaining = Hashtbl.find indegree v - 1 in
          Hashtbl.replace indegree v remaining;
          if remaining = 0 then Queue.add v queue
        end)
      (current_successors st u)
  done;
  dist

let longest ~graph ~loops ~node_cost ~one_shots =
  let n = Cfg.Graph.node_count graph in
  let reachable = Array.make n false in
  Array.iter (fun u -> reachable.(u) <- true) (Cfg.Graph.reverse_postorder graph);
  let total_ids = n + List.length loops in
  let st =
    {
      parent = Array.init total_ids (fun k -> k);
      cost = Array.make total_ids 0;
      has_exit = Array.make total_ids false;
      succ = Array.make total_ids IntSet.empty;
    }
  in
  for u = 0 to n - 1 do
    if reachable.(u) then begin
      let c = node_cost u in
      if c < 0 then invalid_arg "Path_engine.longest: negative node cost";
      st.cost.(u) <- c;
      List.iter
        (fun v -> if reachable.(v) then st.succ.(u) <- IntSet.add v st.succ.(u))
        (Cfg.Graph.successors graph u)
    end
  done;
  List.iter (fun u -> if reachable.(u) then st.has_exit.(u) <- true) graph.Cfg.Graph.exits;
  let one_shot_total scope_filter =
    List.fold_left
      (fun acc (scope, amount) ->
        if amount < 0 then invalid_arg "Path_engine.longest: negative one-shot";
        if scope_filter scope then acc + amount else acc)
      0 one_shots
  in
  (* Innermost loops first: strictly smaller bodies. *)
  let ordered =
    List.sort
      (fun (a : Cfg.Loop.loop) b ->
        compare (List.length a.Cfg.Loop.body) (List.length b.Cfg.Loop.body))
      loops
  in
  let next_id = ref n in
  List.iter
    (fun (l : Cfg.Loop.loop) ->
      let members =
        List.fold_left (fun acc u -> IntSet.add (find st u) acc) IntSet.empty l.Cfg.Loop.body
      in
      let header = find st l.Cfg.Loop.header in
      let dist = longest_within st members ~source:header in
      let back_sources =
        List.fold_left (fun acc (src, _) -> IntSet.add (find st src) acc) IntSet.empty
          l.Cfg.Loop.back_edges
      in
      let c_iter =
        IntSet.fold
          (fun m acc -> match Hashtbl.find_opt dist m with Some d -> max acc d | None -> acc)
          back_sources 0
      in
      let leaves u =
        st.has_exit.(u)
        || IntSet.exists (fun s -> not (IntSet.mem s members)) (current_successors st u)
      in
      let c_exit =
        IntSet.fold
          (fun m acc ->
            if leaves m then
              match Hashtbl.find_opt dist m with Some d -> max acc d | None -> acc
            else acc)
          members 0
      in
      let shots =
        one_shot_total (function
          | Loop_scope h -> h = l.Cfg.Loop.header
          | Whole_program -> false)
      in
      let super = !next_id in
      incr next_id;
      st.cost.(super) <- (l.Cfg.Loop.bound * c_iter) + c_exit + shots;
      st.has_exit.(super) <- IntSet.exists (fun m -> st.has_exit.(m)) members;
      let external_succ =
        IntSet.fold
          (fun m acc ->
            IntSet.fold
              (fun s acc -> if IntSet.mem s members then acc else IntSet.add s acc)
              (current_successors st m) acc)
          members IntSet.empty
      in
      st.succ.(super) <- external_succ;
      IntSet.iter (fun m -> st.parent.(m) <- super) members)
    ordered;
  (* Final DAG over representatives. *)
  let reps = ref IntSet.empty in
  for u = 0 to n - 1 do
    if reachable.(u) then reps := IntSet.add (find st u) !reps
  done;
  let entry = find st graph.Cfg.Graph.entry in
  let dist = longest_within st !reps ~source:entry in
  let best =
    IntSet.fold
      (fun u acc ->
        if st.has_exit.(u) then
          match Hashtbl.find_opt dist u with Some d -> max acc d | None -> acc
        else acc)
      !reps 0
  in
  best + one_shot_total (function Whole_program -> true | Loop_scope _ -> false)

(** Tree-based (loop-collapse) longest-path engine — the combinatorial
    alternative to the ILP for IPET-shaped objectives, in the style of
    Heptane's tree method (Colin & Puaut).

    Loops are collapsed innermost-first: a loop with bound [b] becomes a
    super-node costing [b * C_iter + C_exit + one_shots], where [C_iter]
    is the heaviest header-to-back-edge path through the (already
    collapsed) body DAG, [C_exit] the heaviest header-to-exit path, and
    [one_shots] the first-miss-style charges scoped to this loop (paid
    once per loop entry). The result over the final DAG is a sound upper
    bound of the maximum path cost: every complete iteration costs at
    most [C_iter], there are at most [b] of them per entry, and the
    final partial traversal costs at most [C_exit].

    Compared to the LP relaxation this engine is typically equal or
    tighter on flow costs, charges scoped one-shots unconditionally
    (slightly more conservative), and runs in near-linear time — which
    is what makes the per-set, per-fault-count FMM computation cheap. *)

type scope =
  | Whole_program
  | Loop_scope of int  (** loop header node id *)

val longest :
  graph:Cfg.Graph.t ->
  loops:Cfg.Loop.loop list ->
  node_cost:(int -> int) ->
  one_shots:(scope * int) list ->
  int
(** Maximum cost over entry-to-exit paths. [node_cost] is charged per
    execution of the node; each [one_shot] is charged once per entry of
    its scope (once per run for [Whole_program]). All costs must be
    non-negative. *)

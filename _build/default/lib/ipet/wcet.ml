module Lp = Ilp.Lp
module Chmc = Cache_analysis.Chmc

type result = {
  wcet : int;
  lp_size : int * int;
}

let scope_cap model loops = function
  | Chmc.Global -> ([], 1)
  | Chmc.Loop header -> (
    match List.find_opt (fun (l : Cfg.Loop.loop) -> l.Cfg.Loop.header = header) loops with
    | Some l -> Model.entry_terms_of_loop model l
    | None -> ([], 1) (* cannot happen: scopes come from the same loop list *))

let path_scope = function
  | Chmc.Global -> Path_engine.Whole_program
  | Chmc.Loop header -> Path_engine.Loop_scope header

(* Per-execution fetch cost of a node and the one-shot (first-miss)
   penalties of its references. *)
let node_costs ~graph ~chmc ~config u =
  let node = Cfg.Graph.node graph u in
  let hit = config.Cache.Config.hit_latency in
  let miss = config.Cache.Config.miss_latency in
  let penalty = Cache.Config.miss_penalty config in
  let per_exec = ref 0 in
  let shots = ref [] in
  for k = 0 to node.Cfg.Graph.len - 1 do
    match Chmc.classification chmc ~node:u ~offset:k with
    | Chmc.Always_hit -> per_exec := !per_exec + hit
    | Chmc.First_miss scope ->
      per_exec := !per_exec + hit;
      shots := (scope, penalty) :: !shots
    | Chmc.Always_miss | Chmc.Not_classified -> per_exec := !per_exec + miss
  done;
  (!per_exec, !shots)

let compute_ilp ~graph ~loops ~chmc ~config ~exact =
  let model = Model.build graph loops in
  let lp = Model.lp model in
  let coeffs : (Lp.var, int) Hashtbl.t = Hashtbl.create 64 in
  let constant = ref 0 in
  let add_terms terms const factor =
    List.iter
      (fun (v, c) ->
        Hashtbl.replace coeffs v (Option.value ~default:0 (Hashtbl.find_opt coeffs v) + (c * factor)))
      terms;
    constant := !constant + (const * factor)
  in
  for u = 0 to Cfg.Graph.node_count graph - 1 do
    if Model.reachable model u then begin
      let per_exec, shots = node_costs ~graph ~chmc ~config u in
      List.iteri
        (fun idx (scope, amount) ->
          let y =
            Model.add_capped_counter model
              ~name:(Printf.sprintf "fm_%d_%d" u idx)
              ~node:u
              ~cap:(scope_cap model loops scope)
          in
          add_terms [ (y, 1) ] 0 amount)
        shots;
      if per_exec > 0 then begin
        let terms, const = Model.execution_terms model u in
        add_terms terms const per_exec
      end
    end
  done;
  Lp.set_objective_int lp (Hashtbl.fold (fun v c acc -> (v, c) :: acc) coeffs []);
  let bound =
    if exact then begin
      match Ilp.Solver.integer lp with
      | Ilp.Solver.Solution o -> Numeric.Bigint.to_int_exn (Numeric.Rat.ceil o.Ilp.Solver.objective)
      | Ilp.Solver.Infeasible -> failwith "Wcet.compute: infeasible IPET model"
      | Ilp.Solver.Unbounded -> failwith "Wcet.compute: unbounded IPET model (missing loop bound?)"
    end
    else Ilp.Solver.objective_upper_bound lp
  in
  { wcet = bound + !constant; lp_size = (Lp.num_vars lp, List.length (Lp.constraints lp)) }

let compute_path ~graph ~loops ~chmc ~config =
  let n = Cfg.Graph.node_count graph in
  let per_exec = Array.make n 0 in
  let one_shots = ref [] in
  let reachable = Array.make n false in
  Array.iter (fun u -> reachable.(u) <- true) (Cfg.Graph.reverse_postorder graph);
  for u = 0 to n - 1 do
    if reachable.(u) then begin
      let cost, shots = node_costs ~graph ~chmc ~config u in
      per_exec.(u) <- cost;
      List.iter (fun (scope, amount) -> one_shots := (path_scope scope, amount) :: !one_shots) shots
    end
  done;
  let wcet =
    Path_engine.longest ~graph ~loops ~node_cost:(fun u -> per_exec.(u)) ~one_shots:!one_shots
  in
  { wcet; lp_size = (0, 0) }

let compute ~graph ~loops ~chmc ~config ?(engine = `Path) ?(exact = false) () =
  match engine with
  | `Path -> compute_path ~graph ~loops ~chmc ~config
  | `Ilp -> compute_ilp ~graph ~loops ~chmc ~config ~exact

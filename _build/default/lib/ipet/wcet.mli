(** Fault-free WCET computation.

    Instruction-fetch cost per the paper's setup: a reference classified
    always-hit or first-miss costs the hit latency per execution;
    always-miss / not-classified cost the miss latency per execution; a
    first-miss reference additionally pays the miss penalty once per
    entry of its persistence scope.

    Two interchangeable engines compute the bound:
    - [`Path] (default): the tree-based loop-collapse engine
      ({!Path_engine}) — near-linear time;
    - [`Ilp]: the IPET ILP (Li & Malik) over the exact-rational solver,
      as in the paper's toolchain (Cplex there).

    Both are sound upper bounds; on loop-structured programs they agree
    up to the slightly more conservative one-shot accounting of the path
    engine (tested against each other in [test/test_ipet.ml]). *)

type result = {
  wcet : int;  (** cycles: instruction-cache contribution only *)
  lp_size : int * int;  (** (variables, constraints) — (0,0) for [`Path] *)
}

val node_costs :
  graph:Cfg.Graph.t ->
  chmc:Cache_analysis.Chmc.t ->
  config:Cache.Config.t ->
  int ->
  int * (Cache_analysis.Chmc.scope * int) list
(** Per-execution instruction-fetch cost of a node and its one-shot
    (first-miss) penalties — the building blocks of the objective,
    exposed for engines that combine several cost sources (the
    data-cache extension). *)

val compute :
  graph:Cfg.Graph.t ->
  loops:Cfg.Loop.loop list ->
  chmc:Cache_analysis.Chmc.t ->
  config:Cache.Config.t ->
  ?engine:[ `Path | `Ilp ] ->
  ?exact:bool ->
  unit ->
  result
(** [exact] (ILP engine only): branch-and-bound instead of the LP
    relaxation bound. *)

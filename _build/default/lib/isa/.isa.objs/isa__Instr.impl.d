lib/isa/instr.ml: Format Reg

lib/isa/instr.mli: Format Reg

lib/isa/machine.ml: Array Format Hashtbl Instr List Program Reg

lib/isa/machine.mli: Program

lib/isa/reg.ml: Array Format Int

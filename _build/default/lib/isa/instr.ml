type label = string

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Nor
  | Slt
  | Sltu
  | Sllv
  | Srlv
  | Srav

type cond =
  | Eq
  | Ne
  | Lez
  | Gtz
  | Ltz
  | Gez

type 'target t =
  | Alu of binop * Reg.t * Reg.t * Reg.t
  | Alui of binop * Reg.t * Reg.t * int
  | Shift of binop * Reg.t * Reg.t * int
  | Li of Reg.t * int
  | Lw of Reg.t * int * Reg.t
  | Sw of Reg.t * int * Reg.t
  | Lb of Reg.t * int * Reg.t
  | Sb of Reg.t * int * Reg.t
  | Beq2 of cond * Reg.t * Reg.t * 'target
  | Beqz of cond * Reg.t * 'target
  | J of 'target
  | Jal of 'target
  | Jr of Reg.t
  | Nop
  | Halt

type labeled = label t
type resolved = int t

let map_target f = function
  | Alu (op, rd, rs, rt) -> Alu (op, rd, rs, rt)
  | Alui (op, rd, rs, imm) -> Alui (op, rd, rs, imm)
  | Shift (op, rd, rs, shamt) -> Shift (op, rd, rs, shamt)
  | Li (rd, imm) -> Li (rd, imm)
  | Lw (rt, off, base) -> Lw (rt, off, base)
  | Sw (rt, off, base) -> Sw (rt, off, base)
  | Lb (rt, off, base) -> Lb (rt, off, base)
  | Sb (rt, off, base) -> Sb (rt, off, base)
  | Beq2 (c, rs, rt, target) -> Beq2 (c, rs, rt, f target)
  | Beqz (c, rs, target) -> Beqz (c, rs, f target)
  | J target -> J (f target)
  | Jal target -> Jal (f target)
  | Jr r -> Jr r
  | Nop -> Nop
  | Halt -> Halt

let is_control_flow = function
  | Beq2 _ | Beqz _ | J _ | Jal _ | Jr _ | Halt -> true
  | Alu _ | Alui _ | Shift _ | Li _ | Lw _ | Sw _ | Lb _ | Sb _ | Nop -> false

let branch_targets = function
  | Beq2 (_, _, _, t) | Beqz (_, _, t) | J t | Jal t -> [ t ]
  | Jr _ | Alu _ | Alui _ | Shift _ | Li _ | Lw _ | Sw _ | Lb _ | Sb _ | Nop | Halt -> []

let falls_through = function
  | J _ | Jr _ | Halt -> false
  | Beq2 _ | Beqz _ | Jal _ | Alu _ | Alui _ | Shift _ | Li _ | Lw _ | Sw _ | Lb _ | Sb _ | Nop ->
    true

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Nor -> "nor"
  | Slt -> "slt"
  | Sltu -> "sltu"
  | Sllv -> "sll"
  | Srlv -> "srl"
  | Srav -> "sra"

let cond_name = function
  | Eq -> "beq"
  | Ne -> "bne"
  | Lez -> "blez"
  | Gtz -> "bgtz"
  | Ltz -> "bltz"
  | Gez -> "bgez"

let pp_binop fmt op = Format.pp_print_string fmt (binop_name op)
let pp_cond fmt c = Format.pp_print_string fmt (cond_name c)

let pp pp_target fmt = function
  | Alu (op, rd, rs, rt) ->
    Format.fprintf fmt "%s %a, %a, %a" (binop_name op) Reg.pp rd Reg.pp rs Reg.pp rt
  | Alui (op, rd, rs, imm) ->
    Format.fprintf fmt "%si %a, %a, %d" (binop_name op) Reg.pp rd Reg.pp rs imm
  | Shift (op, rd, rs, shamt) ->
    Format.fprintf fmt "%s %a, %a, %d" (binop_name op) Reg.pp rd Reg.pp rs shamt
  | Li (rd, imm) -> Format.fprintf fmt "li %a, %d" Reg.pp rd imm
  | Lw (rt, off, base) -> Format.fprintf fmt "lw %a, %d(%a)" Reg.pp rt off Reg.pp base
  | Sw (rt, off, base) -> Format.fprintf fmt "sw %a, %d(%a)" Reg.pp rt off Reg.pp base
  | Lb (rt, off, base) -> Format.fprintf fmt "lb %a, %d(%a)" Reg.pp rt off Reg.pp base
  | Sb (rt, off, base) -> Format.fprintf fmt "sb %a, %d(%a)" Reg.pp rt off Reg.pp base
  | Beq2 (c, rs, rt, target) ->
    Format.fprintf fmt "%s %a, %a, %a" (cond_name c) Reg.pp rs Reg.pp rt pp_target target
  | Beqz (c, rs, target) ->
    Format.fprintf fmt "%s %a, %a" (cond_name c) Reg.pp rs pp_target target
  | J target -> Format.fprintf fmt "j %a" pp_target target
  | Jal target -> Format.fprintf fmt "jal %a" pp_target target
  | Jr r -> Format.fprintf fmt "jr %a" Reg.pp r
  | Nop -> Format.pp_print_string fmt "nop"
  | Halt -> Format.pp_print_string fmt "halt"

let pp_labeled fmt i = pp Format.pp_print_string fmt i
let pp_resolved fmt i = pp Format.pp_print_int fmt i

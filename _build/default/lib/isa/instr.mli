(** Instructions of the MIPS-like target ISA.

    The set mirrors the MIPS R2000/R3000 integer subset the paper's
    benchmarks compile to, with symbolic branch targets (resolved to
    absolute instruction indices by {!Program.assemble}) and without
    delay slots. Every instruction occupies 4 bytes. *)

type label = string

(** Binary ALU operations (register-register). *)
type binop =
  | Add
  | Sub
  | Mul
  | Div   (** signed division; traps on zero divisor at execution *)
  | Rem
  | And
  | Or
  | Xor
  | Nor
  | Slt   (** set-if-less-than, signed *)
  | Sltu
  | Sllv
  | Srlv
  | Srav

(** Branch comparison conditions (register vs register or vs zero). *)
type cond =
  | Eq
  | Ne
  | Lez
  | Gtz
  | Ltz
  | Gez

type 'target t =
  | Alu of binop * Reg.t * Reg.t * Reg.t        (** [Alu (op, rd, rs, rt)] *)
  | Alui of binop * Reg.t * Reg.t * int         (** immediate form; [Add]/[And]/[Or]/[Xor]/[Slt] only *)
  | Shift of binop * Reg.t * Reg.t * int        (** [Sllv]/[Srlv]/[Srav] with constant shamt *)
  | Li of Reg.t * int                           (** load immediate (lui/ori pseudo) *)
  | Lw of Reg.t * int * Reg.t                   (** [Lw (rt, offset, base)] *)
  | Sw of Reg.t * int * Reg.t
  | Lb of Reg.t * int * Reg.t
  | Sb of Reg.t * int * Reg.t
  | Beq2 of cond * Reg.t * Reg.t * 'target      (** [Eq]/[Ne] forms *)
  | Beqz of cond * Reg.t * 'target              (** compare-to-zero forms *)
  | J of 'target
  | Jal of 'target
  | Jr of Reg.t                                 (** indirect jump; [Jr ra] is return *)
  | Nop
  | Halt                                        (** terminate the task *)

type labeled = label t
(** Instructions as emitted by the compiler: targets are symbolic. *)

type resolved = int t
(** Instructions after assembly: targets are absolute instruction
    indices into the program image. *)

val map_target : ('a -> 'b) -> 'a t -> 'b t

val is_control_flow : 'a t -> bool
(** True for branches, jumps, [Jr] and [Halt] — anything that ends a
    basic block. *)

val branch_targets : resolved -> int list
(** Static targets of a resolved instruction ([Jr] has none). *)

val falls_through : 'a t -> bool
(** Whether control may continue at the next instruction. *)

val pp_binop : Format.formatter -> binop -> unit
val pp_cond : Format.formatter -> cond -> unit

val pp : (Format.formatter -> 'target -> unit) -> Format.formatter -> 'target t -> unit
val pp_labeled : Format.formatter -> labeled -> unit
val pp_resolved : Format.formatter -> resolved -> unit

type item =
  | Label of string
  | Ins of Instr.labeled

type func = { fn_name : string; fn_start : int; fn_len : int }

type source = {
  src_functions : (string * item list) list;
  src_bounds : (string * int) list;
}

type t = {
  code : Instr.resolved array;
  base_address : int;
  functions : func list;
  loop_bounds : (int * int) list;
  entry : int;
}

exception Assembly_error of string

let error fmt = Format.kasprintf (fun s -> raise (Assembly_error s)) fmt

let default_base_address = 0x0040_0000 (* conventional MIPS text-segment base *)

let assemble ?(base_address = default_base_address) source =
  if source.src_functions = [] then error "no functions";
  if base_address land 3 <> 0 then error "misaligned base address";
  let labels = Hashtbl.create 64 in
  let add_label name index =
    if Hashtbl.mem labels name then error "duplicate label %s" name;
    Hashtbl.add labels name index
  in
  (* First pass: lay out functions, record label positions. *)
  let instructions = ref [] in
  let next_index = ref 0 in
  let functions =
    List.map
      (fun (fn_name, items) ->
        add_label fn_name !next_index;
        let fn_start = !next_index in
        List.iter
          (function
            | Label name -> add_label name !next_index
            | Ins i ->
              instructions := i :: !instructions;
              incr next_index)
          items;
        if !next_index = fn_start then error "empty function %s" fn_name;
        { fn_name; fn_start; fn_len = !next_index - fn_start })
      source.src_functions
  in
  let labeled_code = Array.of_list (List.rev !instructions) in
  (* Second pass: resolve symbolic targets to instruction indices. *)
  let resolve target =
    match Hashtbl.find_opt labels target with
    | Some index -> index
    | None -> error "undefined label %s" target
  in
  let code = Array.map (Instr.map_target resolve) labeled_code in
  let loop_bounds =
    List.map
      (fun (label, bound) ->
        if bound < 0 then error "negative loop bound on %s" label;
        (resolve label, bound))
      source.src_bounds
  in
  { code; base_address; functions; loop_bounds; entry = 0 }

let instruction_count t = Array.length t.code
let address_of_index t i = t.base_address + (4 * i)

let index_of_address t addr =
  if addr land 3 <> 0 then invalid_arg "Program.index_of_address: misaligned";
  let i = (addr - t.base_address) asr 2 in
  if i < 0 || i >= Array.length t.code then invalid_arg "Program.index_of_address: out of range";
  i

let instruction t i = t.code.(i)

let find_function t name = List.find_opt (fun f -> f.fn_name = name) t.functions

let function_at t i =
  match List.find_opt (fun f -> i >= f.fn_start && i < f.fn_start + f.fn_len) t.functions with
  | Some f -> f
  | None -> invalid_arg "Program.function_at: index outside all functions"

let pp fmt t =
  List.iter
    (fun f ->
      Format.fprintf fmt "%s:@." f.fn_name;
      for i = f.fn_start to f.fn_start + f.fn_len - 1 do
        Format.fprintf fmt "  %08x  %a@." (address_of_index t i) Instr.pp_resolved t.code.(i)
      done)
    t.functions

(** Assembled program images.

    A program is a flat array of resolved instructions laid out at
    consecutive 4-byte addresses starting at [base_address], mirroring
    the text segment of a MIPS binary with the default linker layout.
    Function boundaries and loop-bound annotations (attached to loop
    header labels by the compiler) survive assembly, because the CFG
    recovery and the IPET formulation need them. *)

type item =
  | Label of string
  | Ins of Instr.labeled

type func = {
  fn_name : string;
  fn_start : int;  (** index of the first instruction *)
  fn_len : int;
}

type source = {
  src_functions : (string * item list) list;
      (** in layout order; the first function is the program entry *)
  src_bounds : (string * int) list;
      (** loop-header label [->] max body iterations per loop entry *)
}

type t = private {
  code : Instr.resolved array;
  base_address : int;
  functions : func list;
  loop_bounds : (int * int) list;  (** header instruction index [->] bound *)
  entry : int;  (** instruction index of the entry point *)
}

exception Assembly_error of string

val assemble : ?base_address:int -> source -> t
(** Lays the functions out consecutively and resolves labels.
    @raise Assembly_error on duplicate/undefined labels, empty code, or a
    bound annotation naming an unknown label. *)

val instruction_count : t -> int
val address_of_index : t -> int -> int
val index_of_address : t -> int -> int
(** @raise Invalid_argument for unmapped or misaligned addresses. *)

val instruction : t -> int -> Instr.resolved
val find_function : t -> string -> func option
val function_at : t -> int -> func
(** Function containing the given instruction index. *)

val pp : Format.formatter -> t -> unit
(** Disassembly listing with function headers and label-free targets. *)

type t = int

let count = 32

let of_index i =
  if i < 0 || i >= count then invalid_arg "Reg.of_index";
  i

let index t = t

let zero = 0
let at = 1
let v0 = 2
let v1 = 3
let a0 = 4
let a1 = 5
let a2 = 6
let a3 = 7
let t0 = 8
let t1 = 9
let t2 = 10
let t3 = 11
let t4 = 12
let t5 = 13
let t6 = 14
let t7 = 15
let s0 = 16
let s1 = 17
let s2 = 18
let s3 = 19
let s4 = 20
let s5 = 21
let s6 = 22
let s7 = 23
let t8 = 24
let t9 = 25
let gp = 28
let sp = 29
let fp = 30
let ra = 31

let temporaries = [ t0; t1; t2; t3; t4; t5; t6; t7; t8; t9; s0; s1; s2; s3; s4; s5; s6; s7 ]

let equal = Int.equal
let compare = Int.compare

let names =
  [| "zero"; "at"; "v0"; "v1"; "a0"; "a1"; "a2"; "a3"
   ; "t0"; "t1"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7"
   ; "s0"; "s1"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7"
   ; "t8"; "t9"; "k0"; "k1"; "gp"; "sp"; "fp"; "ra" |]

let name t = "$" ^ names.(t)
let pp fmt t = Format.pp_print_string fmt (name t)

(** Register file of the MIPS-like target ISA.

    32 general-purpose registers with the usual MIPS software
    conventions. [zero] is hardwired to 0. *)

type t

val count : int
(** Number of registers (32). *)

val of_index : int -> t
(** @raise Invalid_argument outside [0, 31]. *)

val index : t -> int

(* Conventional names: [zero] is hardwired $0, [at] the assembler
   temporary, [v0]/[v1] results, [a0]..[a3] arguments, [t0]..[t9]
   caller-saved temporaries, [s0]..[s7] callee-saved. *)

val zero : t
val at : t
val v0 : t
val v1 : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val t0 : t
val t1 : t
val t2 : t
val t3 : t
val t4 : t
val t5 : t
val t6 : t
val t7 : t
val t8 : t
val t9 : t
val s0 : t
val s1 : t
val s2 : t
val s3 : t
val s4 : t
val s5 : t
val s6 : t
val s7 : t
val gp : t
val sp : t
val fp : t
val ra : t

val temporaries : t list
(** The pool the register allocator in [miniC] draws from. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val name : t -> string
val pp : Format.formatter -> t -> unit

lib/minic/ast.ml: Array Format List String

lib/minic/ast.mli: Format

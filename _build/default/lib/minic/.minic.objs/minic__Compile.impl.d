lib/minic/compile.ml: Array Ast Format Hashtbl Instr Isa List Machine Printf Program Reg Typecheck

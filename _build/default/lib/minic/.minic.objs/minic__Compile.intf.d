lib/minic/compile.mli: Ast Isa

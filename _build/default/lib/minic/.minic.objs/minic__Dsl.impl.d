lib/minic/dsl.ml: Array Ast

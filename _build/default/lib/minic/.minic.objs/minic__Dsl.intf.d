lib/minic/dsl.mli: Ast

lib/minic/interp.ml: Array Ast Format Hashtbl List

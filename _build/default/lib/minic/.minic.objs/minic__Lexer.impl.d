lib/minic/lexer.ml: Format List Printf String

lib/minic/lexer.mli:

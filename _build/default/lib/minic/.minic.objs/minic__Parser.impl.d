lib/minic/parser.ml: Array Ast Format Lexer List Printf

lib/minic/parser.mli: Ast

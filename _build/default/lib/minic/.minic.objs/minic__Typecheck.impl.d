lib/minic/typecheck.ml: Ast Format Hashtbl List

lib/minic/typecheck.mli: Ast

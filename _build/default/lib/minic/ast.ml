type unop =
  | Neg
  | Lognot
  | Bitnot

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Bitand
  | Bitor
  | Bitxor
  | Shl
  | Shr
  | Ashr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Logand
  | Logor

type expr =
  | Int of int
  | Var of string
  | Index of string * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list

type stmt =
  | Decl of string * expr
  | Decl_array of string * int
  | Assign of string * expr
  | Store of string * expr * expr
  | If of expr * block * block
  | While of { cond : expr; bound : int; body : block }
  | For of { index : string; start : expr; stop : expr; bound : int option; body : block }
  | Expr of expr
  | Return of expr option

and block = stmt list

type global =
  | Scalar of int
  | Array of int array

type func = {
  fname : string;
  params : string list;
  body : block;
}

type program = {
  globals : (string * global) list;
  funcs : func list;
}

let for_bound ~start ~stop ~bound =
  match bound with
  | Some _ -> bound
  | None -> (
    match (start, stop) with
    | Int a, Int b -> Some (max 0 (b - a))
    | _ -> None)

let unop_name = function Neg -> "-" | Lognot -> "!" | Bitnot -> "~"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Bitand -> "&"
  | Bitor -> "|"
  | Bitxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>>"
  | Ashr -> ">>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Logand -> "&&"
  | Logor -> "||"

let rec pp_expr fmt = function
  | Int n -> Format.pp_print_int fmt n
  | Var v -> Format.pp_print_string fmt v
  | Index (a, e) -> Format.fprintf fmt "%s[%a]" a pp_expr e
  | Unop (op, e) -> Format.fprintf fmt "%s(%a)" (unop_name op) pp_expr e
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Call (f, args) ->
    Format.fprintf fmt "%s(%a)" f
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") pp_expr)
      args

let rec pp_stmt fmt = function
  | Decl (v, e) -> Format.fprintf fmt "int %s = %a;" v pp_expr e
  | Decl_array (v, n) -> Format.fprintf fmt "int %s[%d];" v n
  | Assign (v, e) -> Format.fprintf fmt "%s = %a;" v pp_expr e
  | Store (a, i, e) -> Format.fprintf fmt "%s[%a] = %a;" a pp_expr i pp_expr e
  | If (c, t, []) -> Format.fprintf fmt "@[<v 2>if (%a) {%a@]@,}" pp_expr c pp_block t
  | If (c, t, e) ->
    Format.fprintf fmt "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}" pp_expr c pp_block t
      pp_block e
  | While { cond; bound; body } ->
    Format.fprintf fmt "@[<v 2>while (%a) /* bound %d */ {%a@]@,}" pp_expr cond bound pp_block
      body
  | For { index; start; stop; bound; body } ->
    let pp_bound fmt = function
      | Some b -> Format.fprintf fmt " /* bound %d */" b
      | None -> ()
    in
    Format.fprintf fmt "@[<v 2>for (%s = %a; %s < %a; %s++)%a {%a@]@,}" index pp_expr start
      index pp_expr stop index pp_bound bound pp_block body
  | Expr e -> Format.fprintf fmt "%a;" pp_expr e
  | Return None -> Format.pp_print_string fmt "return;"
  | Return (Some e) -> Format.fprintf fmt "return %a;" pp_expr e

and pp_block fmt block = List.iter (fun s -> Format.fprintf fmt "@,%a" pp_stmt s) block

let pp_global fmt (name, g) =
  match g with
  | Scalar v -> Format.fprintf fmt "int %s = %d;@," name v
  | Array xs -> Format.fprintf fmt "int %s[%d] = {...};@," name (Array.length xs)

let pp_func fmt f =
  Format.fprintf fmt "@[<v 2>int %s(%s) {%a@]@,}@," f.fname (String.concat ", " f.params)
    pp_block f.body

let pp_program fmt p =
  Format.fprintf fmt "@[<v>";
  List.iter (pp_global fmt) p.globals;
  List.iter (pp_func fmt) p.funcs;
  Format.fprintf fmt "@]"

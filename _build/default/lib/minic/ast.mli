(** Abstract syntax of mini-C, the structured source language the
    benchmark suite is written in.

    Mini-C covers the integer subset of C the Mälardalen WCET benchmarks
    use: scalars and word arrays (global or local), arithmetic/logic
    expressions with short-circuit [&&]/[||], [if], bounded [for] and
    [while] loops, and non-recursive functions of up to 4 arguments.
    Every loop carries a bound on its body iterations per loop entry —
    either inferred (constant [for] bounds) or annotated — because the
    downstream IPET formulation requires one. *)

type unop =
  | Neg
  | Lognot  (** !e : 1 if e = 0 else 0 *)
  | Bitnot

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Bitand
  | Bitor
  | Bitxor
  | Shl
  | Shr   (** logical right shift *)
  | Ashr  (** arithmetic right shift *)
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Logand  (** short-circuit *)
  | Logor   (** short-circuit *)

type expr =
  | Int of int
  | Var of string
  | Index of string * expr  (** array element [a[e]] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list

type stmt =
  | Decl of string * expr  (** local scalar declaration with initialiser *)
  | Decl_array of string * int  (** local array of [n] words, zeroed *)
  | Assign of string * expr
  | Store of string * expr * expr  (** [a[e1] = e2] *)
  | If of expr * block * block
  | While of { cond : expr; bound : int; body : block }
      (** [bound]: max body iterations each time the loop is entered *)
  | For of { index : string; start : expr; stop : expr; bound : int option; body : block }
      (** [for (index = start; index < stop; index++) body]; [bound] may
          be omitted when [start] and [stop] are integer literals *)
  | Expr of expr  (** expression for effect (function call) *)
  | Return of expr option

and block = stmt list

type global =
  | Scalar of int
  | Array of int array  (** initial contents; length is the array size *)

type func = {
  fname : string;
  params : string list;
  body : block;
}

type program = {
  globals : (string * global) list;
  funcs : func list;  (** the function named ["main"] is the entry point *)
}

val for_bound : start:expr -> stop:expr -> bound:int option -> int option
(** The effective bound of a [for] loop: the annotation if present,
    otherwise [max 0 (stop - start)] when both are literals. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_program : Format.formatter -> program -> unit

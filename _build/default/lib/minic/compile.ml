open Isa

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Where a memory instruction's effective address lives — recorded at
   code-generation time for the data-cache analysis. Stack accesses
   (locals, spills, frames) are served by a scratchpad in the modelled
   architecture and are not cached. *)
type data_target =
  | Data_exact of int  (* absolute byte address *)
  | Data_range of { base : int; bytes : int }  (* somewhere in a global array *)
  | Data_stack

type compiled = {
  program : Program.t;
  data : (int * int) list;
  global_addresses : (string * int) list;
  data_refs : (int * data_target) list;
      (* instruction index -> target, for every Lw/Sw/Lb/Sb *)
}

(* Where a name lives during code generation. *)
type binding =
  | Global_scalar of int        (* absolute address *)
  | Global_array of int * int   (* absolute base address, size in bytes *)
  | Local of int                (* slot index; byte offset is 4*slot from fp *)
  | Local_array of int * int    (* base slot, size in words *)

type env = {
  bindings : (string, binding) Hashtbl.t list;  (* innermost scope first *)
  fn : string;
}

let lookup env name =
  let rec go = function
    | [] -> error "%s: unbound %s (typechecker should have caught this)" env.fn name
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with Some b -> b | None -> go rest)
  in
  go env.bindings

let push_scope env = { env with bindings = Hashtbl.create 8 :: env.bindings }

let bind env name binding =
  match env.bindings with
  | scope :: _ -> Hashtbl.add scope name binding
  | [] -> assert false

(* Pre-scan a body for the total number of local slots it can need.
   Slots are never reused (gcc -O0 spirit), so the count is the plain
   sum over all declarations, both branches of every if included. *)
let rec slots_of_block block = List.fold_left (fun acc s -> acc + slots_of_stmt s) 0 block

and slots_of_stmt (s : Ast.stmt) =
  match s with
  | Decl _ -> 1
  | Decl_array (_, n) -> n
  | If (_, t, e) -> slots_of_block t + slots_of_block e
  | While { body; _ } -> slots_of_block body
  | For { body; _ } -> 1 + slots_of_block body
  | Assign _ | Store _ | Expr _ | Return _ -> 0

(* The code of one function is accumulated as a reversed item list. *)
type emitter = {
  mutable items : Program.item list;
  mutable bounds : (string * int) list;
  mutable next_label : int;
  mutable next_slot : int;
  mutable instr_count : int;
  mutable drefs : (int * data_target) list;  (* function-local instruction index *)
  intervals : (int, int * int) Hashtbl.t;
      (* slot -> inclusive value interval, for read-only constant-bound
         for-loop indices: a tiny value analysis that tightens array
         data-target annotations *)
  fn_name : string;
  exit_label : string;
}

let emit em i =
  em.items <- Program.Ins i :: em.items;
  em.instr_count <- em.instr_count + 1

(* Memory instruction with its data-target annotation. *)
let emit_mem em i target =
  em.drefs <- (em.instr_count, target) :: em.drefs;
  emit em i
let place_label em l = em.items <- Program.Label l :: em.items

let fresh_label em stem =
  let l = Printf.sprintf "%s.%s%d" em.fn_name stem em.next_label in
  em.next_label <- em.next_label + 1;
  l

let alloc_slot em =
  let s = em.next_slot in
  em.next_slot <- em.next_slot + 1;
  s

let alloc_slots em n =
  let s = em.next_slot in
  em.next_slot <- em.next_slot + n;
  s

let slot_offset slot = 4 * slot

(* Stack push/pop of a single register, used both for expression
   spilling and for call-site save/restore. *)
let push em r =
  emit em (Instr.Alui (Instr.Add, Reg.sp, Reg.sp, -4));
  emit_mem em (Instr.Sw (r, 0, Reg.sp)) Data_stack

let pop em r =
  emit_mem em (Instr.Lw (r, 0, Reg.sp)) Data_stack;
  emit em (Instr.Alui (Instr.Add, Reg.sp, Reg.sp, 4))

let move em dst src = if not (Reg.equal dst src) then emit em (Instr.Alui (Instr.Add, dst, src, 0))

let all_temporaries = Reg.temporaries

let arith_op : Ast.binop -> Instr.binop option = function
  | Add -> Some Instr.Add
  | Sub -> Some Instr.Sub
  | Mul -> Some Instr.Mul
  | Div -> Some Instr.Div
  | Mod -> Some Instr.Rem
  | Bitand -> Some Instr.And
  | Bitor -> Some Instr.Or
  | Bitxor -> Some Instr.Xor
  | Shl -> Some Instr.Sllv
  | Shr -> Some Instr.Srlv
  | Ashr -> Some Instr.Srav
  | Lt | Le | Gt | Ge | Eq | Ne | Logand | Logor -> None

(* Does the block (or any nested statement) assign to [name]? Loop
   indices that are written in the body get no interval. *)
let rec assigns_var block name =
  List.exists
    (fun (s : Ast.stmt) ->
      match s with
      | Ast.Assign (v, _) -> v = name
      | Ast.If (_, t, e) -> assigns_var t name || assigns_var e name
      | Ast.While { body; _ } -> assigns_var body name
      | Ast.For { index; body; _ } -> index <> name && assigns_var body name
      | Ast.Decl _ | Ast.Decl_array _ | Ast.Store _ | Ast.Expr _ | Ast.Return _ -> false)
    block

(* Interval of an index expression over constants and interval-tracked
   loop indices; None when unbounded. *)
let rec interval_of em env (e : Ast.expr) : (int * int) option =
  match e with
  | Ast.Int n -> Some (n, n)
  | Ast.Var v -> (
    match lookup env v with
    | Local slot -> Hashtbl.find_opt em.intervals slot
    | Global_scalar _ | Global_array _ | Local_array _ -> None
    | exception Error _ -> None)
  | Ast.Binop (Ast.Add, a, b) -> (
    match (interval_of em env a, interval_of em env b) with
    | Some (alo, ahi), Some (blo, bhi) -> Some (alo + blo, ahi + bhi)
    | _ -> None)
  | Ast.Binop (Ast.Sub, a, b) -> (
    match (interval_of em env a, interval_of em env b) with
    | Some (alo, ahi), Some (blo, bhi) -> Some (alo - bhi, ahi - blo)
    | _ -> None)
  | Ast.Binop (Ast.Mul, a, b) -> (
    match (interval_of em env a, interval_of em env b) with
    | Some (alo, ahi), Some (blo, bhi) ->
      let products = [ alo * blo; alo * bhi; ahi * blo; ahi * bhi ] in
      Some (List.fold_left min max_int products, List.fold_left max min_int products)
    | _ -> None)
  | _ -> None

(* The annotation for an access into the array at [base] of [bytes]
   bytes, given the word-index expression: narrowed when the index
   interval is known and in bounds. *)
let range_target em env ~base ~bytes idx =
  match interval_of em env idx with
  (* The magnitude guard keeps the interval arithmetic away from any
     32-bit wrap the machine could perform. *)
  | Some (lo, hi)
    when lo >= 0 && (hi + 1) * 4 <= bytes && abs lo < 1 lsl 26 && abs hi < 1 lsl 26 ->
    Data_range { base = base + (4 * lo); bytes = 4 * (hi - lo + 1) }
  | _ -> Data_range { base; bytes }

(* gen_expr leaves the value of [e] in the returned register, which is
   always the head of [pool]. When the pool runs out the left operand is
   spilled to the stack and combined via the reserved scratch $at. *)
let rec gen_expr em env pool (e : Ast.expr) : Reg.t =
  let dst = match pool with r :: _ -> r | [] -> error "%s: empty register pool" env.fn in
  (match e with
  | Int n -> emit em (Instr.Li (dst, n))
  | Var v -> (
    match lookup env v with
    | Local slot -> emit_mem em (Instr.Lw (dst, slot_offset slot, Reg.fp)) Data_stack
    | Global_scalar addr ->
      emit em (Instr.Li (dst, addr));
      emit_mem em (Instr.Lw (dst, 0, dst)) (Data_exact addr)
    | Global_array _ | Local_array _ -> error "%s: array %s used as scalar" env.fn v)
  | Index (a, idx) ->
    let r = gen_expr em env pool idx in
    emit em (Instr.Shift (Instr.Sllv, r, r, 2));
    (match lookup env a with
    | Global_array (base, bytes) ->
      emit em (Instr.Li (Reg.at, base));
      emit em (Instr.Alu (Instr.Add, r, r, Reg.at));
      emit_mem em (Instr.Lw (r, 0, r)) (range_target em env ~base ~bytes idx)
    | Local_array (base_slot, _) ->
      emit em (Instr.Alu (Instr.Add, r, r, Reg.fp));
      emit_mem em (Instr.Lw (r, slot_offset base_slot, r)) Data_stack
    | Global_scalar _ | Local _ -> error "%s: scalar %s indexed" env.fn a)
  | Unop (op, e1) -> (
    let r = gen_expr em env pool e1 in
    match op with
    | Neg -> emit em (Instr.Alu (Instr.Sub, r, Reg.zero, r))
    | Bitnot -> emit em (Instr.Alu (Instr.Nor, r, r, Reg.zero))
    | Lognot -> emit em (Instr.Alui (Instr.Sltu, r, r, 1)))
  | Binop (Logand, a, b) ->
    let l_false = fresh_label em "and_false" and l_end = fresh_label em "and_end" in
    let r = gen_expr em env pool a in
    emit em (Instr.Beqz (Instr.Eq, r, l_false));
    let r' = gen_expr em env pool b in
    assert (Reg.equal r r');
    (* Normalise to 0/1. *)
    emit em (Instr.Alu (Instr.Sltu, r, Reg.zero, r));
    emit em (Instr.J l_end);
    place_label em l_false;
    emit em (Instr.Li (r, 0));
    place_label em l_end
  | Binop (Logor, a, b) ->
    let l_true = fresh_label em "or_true" and l_end = fresh_label em "or_end" in
    let r = gen_expr em env pool a in
    emit em (Instr.Beqz (Instr.Ne, r, l_true));
    let r' = gen_expr em env pool b in
    assert (Reg.equal r r');
    emit em (Instr.Alu (Instr.Sltu, r, Reg.zero, r));
    emit em (Instr.J l_end);
    place_label em l_true;
    emit em (Instr.Li (r, 1));
    place_label em l_end
  | Binop (op, a, b) ->
    gen_binop em env pool op a b
  | Call (f, args) ->
    (* Save the temporaries currently holding enclosing-expression
       values; everything is restored after the call returns. *)
    let in_use = List.filter (fun r -> not (List.exists (Reg.equal r) pool)) all_temporaries in
    List.iter (push em) in_use;
    let nargs = List.length args in
    if nargs > 4 then error "%s: call with more than 4 args" env.fn;
    (* Arguments are evaluated left-to-right into the (now fully free)
       temporaries and parked on the stack, then popped into $a3..$a0. *)
    List.iter
      (fun arg ->
        let r = gen_expr em env all_temporaries arg in
        push em r)
      args;
    for i = nargs - 1 downto 0 do
      pop em (Reg.of_index (Reg.index Reg.a0 + i))
    done;
    emit em (Instr.Jal f);
    move em dst Reg.v0;
    List.iter (pop em) (List.rev in_use));
  dst

and gen_binop em env pool op a b =
  let combine r_left r_right =
    match op with
    | Ast.Lt -> emit em (Instr.Alu (Instr.Slt, r_left, r_left, r_right))
    | Ast.Gt -> emit em (Instr.Alu (Instr.Slt, r_left, r_right, r_left))
    | Ast.Le ->
      (* a <= b  <=>  !(b < a) *)
      emit em (Instr.Alu (Instr.Slt, r_left, r_right, r_left));
      emit em (Instr.Alui (Instr.Xor, r_left, r_left, 1))
    | Ast.Ge ->
      emit em (Instr.Alu (Instr.Slt, r_left, r_left, r_right));
      emit em (Instr.Alui (Instr.Xor, r_left, r_left, 1))
    | Ast.Eq ->
      emit em (Instr.Alu (Instr.Xor, r_left, r_left, r_right));
      emit em (Instr.Alui (Instr.Sltu, r_left, r_left, 1))
    | Ast.Ne ->
      emit em (Instr.Alu (Instr.Xor, r_left, r_left, r_right));
      emit em (Instr.Alu (Instr.Sltu, r_left, Reg.zero, r_left))
    | _ -> (
      match arith_op op with
      | Some iop -> emit em (Instr.Alu (iop, r_left, r_left, r_right))
      | None -> assert false)
  in
  match pool with
  | [] -> error "%s: empty register pool" env.fn
  | [ r ] ->
    (* Spill path: left value waits on the stack while the only
       register computes the right value. *)
    let r1 = gen_expr em env [ r ] a in
    push em r1;
    let r2 = gen_expr em env [ r ] b in
    assert (Reg.equal r1 r2);
    pop em Reg.at;
    (* at = left, r = right; combine into r with left first. *)
    let result_in_r =
      match op with
      | Ast.Lt -> Instr.Alu (Instr.Slt, r, Reg.at, r) :: []
      | Ast.Gt -> Instr.Alu (Instr.Slt, r, r, Reg.at) :: []
      | Ast.Le -> [ Instr.Alu (Instr.Slt, r, r, Reg.at); Instr.Alui (Instr.Xor, r, r, 1) ]
      | Ast.Ge -> [ Instr.Alu (Instr.Slt, r, Reg.at, r); Instr.Alui (Instr.Xor, r, r, 1) ]
      | Ast.Eq -> [ Instr.Alu (Instr.Xor, r, Reg.at, r); Instr.Alui (Instr.Sltu, r, r, 1) ]
      | Ast.Ne -> [ Instr.Alu (Instr.Xor, r, Reg.at, r); Instr.Alu (Instr.Sltu, r, Reg.zero, r) ]
      | _ -> (
        match arith_op op with
        | Some iop -> [ Instr.Alu (iop, r, Reg.at, r) ]
        | None -> assert false)
    in
    List.iter (emit em) result_in_r
  | r1 :: rest ->
    let ra_ = gen_expr em env (r1 :: rest) a in
    let rb = gen_expr em env rest b in
    combine ra_ rb

(* Store the value of [r] into the scalar [v]. *)
let gen_assign em env v r =
  match lookup env v with
  | Local slot -> emit_mem em (Instr.Sw (r, slot_offset slot, Reg.fp)) Data_stack
  | Global_scalar addr ->
    emit em (Instr.Li (Reg.at, addr));
    emit_mem em (Instr.Sw (r, 0, Reg.at)) (Data_exact addr)
  | Global_array _ | Local_array _ -> error "%s: cannot assign to array %s" env.fn v

let rec gen_block em env block =
  let env = push_scope env in
  List.iter (gen_stmt em env) block

and gen_stmt em env (s : Ast.stmt) =
  match s with
  | Decl (v, e) ->
    let r = gen_expr em env all_temporaries e in
    let slot = alloc_slot em in
    bind env v (Local slot);
    emit_mem em (Instr.Sw (r, slot_offset slot, Reg.fp)) Data_stack
  | Decl_array (v, n) ->
    let base = alloc_slots em n in
    bind env v (Local_array (base, n))
  | Assign (v, e) ->
    let r = gen_expr em env all_temporaries e in
    gen_assign em env v r
  | Store (a, idx, e) -> (
    let ri = gen_expr em env all_temporaries idx in
    let rest = List.filter (fun r -> not (Reg.equal r ri)) all_temporaries in
    let re = gen_expr em env rest e in
    emit em (Instr.Shift (Instr.Sllv, ri, ri, 2));
    match lookup env a with
    | Global_array (base, bytes) ->
      emit em (Instr.Li (Reg.at, base));
      emit em (Instr.Alu (Instr.Add, ri, ri, Reg.at));
      emit_mem em (Instr.Sw (re, 0, ri)) (range_target em env ~base ~bytes idx)
    | Local_array (base_slot, _) ->
      emit em (Instr.Alu (Instr.Add, ri, ri, Reg.fp));
      emit_mem em (Instr.Sw (re, slot_offset base_slot, ri)) Data_stack
    | Global_scalar _ | Local _ -> error "%s: scalar %s indexed" env.fn a)
  | If (c, then_, else_) ->
    let l_else = fresh_label em "else" and l_end = fresh_label em "endif" in
    let r = gen_expr em env all_temporaries c in
    emit em (Instr.Beqz (Instr.Eq, r, l_else));
    gen_block em env then_;
    emit em (Instr.J l_end);
    place_label em l_else;
    gen_block em env else_;
    place_label em l_end
  | While { cond; bound; body } ->
    let l_head = fresh_label em "while" and l_end = fresh_label em "endwhile" in
    em.bounds <- (l_head, bound) :: em.bounds;
    place_label em l_head;
    let r = gen_expr em env all_temporaries cond in
    emit em (Instr.Beqz (Instr.Eq, r, l_end));
    gen_block em env body;
    emit em (Instr.J l_head);
    place_label em l_end
  | For { index; start; stop; bound; body } ->
    let b =
      match Ast.for_bound ~start ~stop ~bound with
      | Some b -> b
      | None -> error "%s: for loop without derivable bound" env.fn
    in
    let l_head = fresh_label em "for" and l_end = fresh_label em "endfor" in
    let env = push_scope env in
    let slot = alloc_slot em in
    bind env index (Local slot);
    (match (start, stop) with
    | Ast.Int lo, Ast.Int hi when hi > lo && not (assigns_var body index) ->
      Hashtbl.replace em.intervals slot (lo, hi - 1)
    | _ -> ());
    let r = gen_expr em env all_temporaries start in
    emit_mem em (Instr.Sw (r, slot_offset slot, Reg.fp)) Data_stack;
    em.bounds <- (l_head, b) :: em.bounds;
    place_label em l_head;
    (* index < stop ? *)
    let r = gen_expr em env all_temporaries (Ast.Binop (Ast.Lt, Ast.Var index, stop)) in
    emit em (Instr.Beqz (Instr.Eq, r, l_end));
    gen_block em env body;
    (* index++ *)
    (match all_temporaries with
    | r :: _ ->
      emit_mem em (Instr.Lw (r, slot_offset slot, Reg.fp)) Data_stack;
      emit em (Instr.Alui (Instr.Add, r, r, 1));
      emit_mem em (Instr.Sw (r, slot_offset slot, Reg.fp)) Data_stack
    | [] -> assert false);
    emit em (Instr.J l_head);
    place_label em l_end
  | Expr e -> ignore (gen_expr em env all_temporaries e)
  | Return None -> emit em (Instr.J em.exit_label)
  | Return (Some e) ->
    let r = gen_expr em env all_temporaries e in
    move em Reg.v0 r;
    emit em (Instr.J em.exit_label)

let compile_function globals_env (f : Ast.func) ~is_main =
  let nslots = List.length f.params + slots_of_block f.body in
  let frame_size = 4 * (nslots + 2) in
  let em =
    {
      items = [];
      bounds = [];
      next_label = 0;
      next_slot = 0;
      instr_count = 0;
      drefs = [];
      intervals = Hashtbl.create 8;
      fn_name = f.fname;
      exit_label = f.fname ^ ".exit";
    }
  in
  (* Prologue: allocate frame, save ra/fp, establish fp, spill params. *)
  emit em (Instr.Alui (Instr.Add, Reg.sp, Reg.sp, -frame_size));
  emit_mem em (Instr.Sw (Reg.ra, 4 * nslots, Reg.sp)) Data_stack;
  emit_mem em (Instr.Sw (Reg.fp, (4 * nslots) + 4, Reg.sp)) Data_stack;
  move em Reg.fp Reg.sp;
  let env = { bindings = [ Hashtbl.create 8; globals_env ]; fn = f.fname } in
  List.iteri
    (fun i p ->
      let slot = alloc_slot em in
      bind env p (Local slot);
      emit_mem em (Instr.Sw (Reg.of_index (Reg.index Reg.a0 + i), slot_offset slot, Reg.fp)) Data_stack)
    f.params;
  gen_block em env f.body;
  (* Epilogue. *)
  place_label em em.exit_label;
  move em Reg.sp Reg.fp;
  emit_mem em (Instr.Lw (Reg.ra, 4 * nslots, Reg.sp)) Data_stack;
  emit_mem em (Instr.Lw (Reg.fp, (4 * nslots) + 4, Reg.sp)) Data_stack;
  emit em (Instr.Alui (Instr.Add, Reg.sp, Reg.sp, frame_size));
  if is_main then emit em Instr.Halt else emit em (Instr.Jr Reg.ra);
  ((f.fname, List.rev em.items), em.bounds, List.rev em.drefs)

let default_data_base = 0x1000_0000

let compile ?base_address ?(data_base = default_data_base) (program : Ast.program) =
  Typecheck.check program;
  (* Lay out globals in the data segment. *)
  let globals_env = Hashtbl.create 16 in
  let data = ref [] in
  let next_addr = ref data_base in
  let global_addresses =
    List.map
      (fun (name, g) ->
        let addr = !next_addr in
        (match g with
        | Ast.Scalar v ->
          Hashtbl.add globals_env name (Global_scalar addr);
          data := (addr, v) :: !data;
          next_addr := !next_addr + 4
        | Ast.Array xs ->
          Hashtbl.add globals_env name (Global_array (addr, 4 * Array.length xs));
          Array.iteri (fun i v -> data := (addr + (4 * i), v) :: !data) xs;
          next_addr := !next_addr + (4 * Array.length xs));
        (name, addr))
      program.globals
  in
  (* main first: the program entry is the first instruction. *)
  let main, others = List.partition (fun (f : Ast.func) -> f.fname = "main") program.funcs in
  let ordered = main @ others in
  let compiled = List.map (fun f -> compile_function globals_env f ~is_main:(f.Ast.fname = "main")) ordered in
  let src_functions = List.map (fun (items, _, _) -> items) compiled in
  let src_bounds = List.concat_map (fun (_, bounds, _) -> bounds) compiled in
  let program =
    try Program.assemble ?base_address { src_functions; src_bounds }
    with Program.Assembly_error msg -> error "assembly failed: %s" msg
  in
  (* Function-local data-reference indices become absolute instruction
     indices now that the layout is known. *)
  let data_refs =
    List.concat_map
      (fun ((fname, _), _, drefs) ->
        match Program.find_function program fname with
        | Some fn -> List.map (fun (k, t) -> (fn.Program.fn_start + k, t)) drefs
        | None -> [])
      (List.map2 (fun (items, b, d) f -> ((f.Ast.fname, items), b, d)) compiled ordered)
  in
  { program; data = List.rev !data; global_addresses; data_refs }

let run ?max_steps ?fetch ?data_access ?on_fetch compiled =
  Machine.run ?max_steps ~memory_init:compiled.data ?fetch ?data_access ?on_fetch
    compiled.program

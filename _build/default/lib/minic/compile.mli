(** Compiler from mini-C to the target ISA.

    The code generator is deliberately naive — in the spirit of the
    paper's [gcc -O0] baseline: locals live in stack slots, expressions
    are evaluated in temporaries with stack spilling, and no
    optimisation is performed. Loop-bound annotations are carried
    through to the assembled {!Isa.Program.t} (attached to loop-header
    labels), and global initialisers are emitted as a data image rather
    than as initialisation code, mirroring a linker-populated data
    segment. *)

exception Error of string

(** Where a memory instruction's effective address lives, recorded at
    code-generation time. The modelled architecture serves stack
    accesses (locals, spills, frames) from a scratchpad, so only
    data-segment targets matter to the data-cache analysis. *)
type data_target =
  | Data_exact of int  (** absolute byte address (global scalar) *)
  | Data_range of { base : int; bytes : int }
      (** somewhere within a global array *)
  | Data_stack

type compiled = {
  program : Isa.Program.t;
  data : (int * int) list;
      (** initial data-segment contents: (word-aligned address, value) *)
  global_addresses : (string * int) list;
  data_refs : (int * data_target) list;
      (** instruction index [->] target, for every load/store *)
}

val compile : ?base_address:int -> ?data_base:int -> Ast.program -> compiled
(** Validates (via {!Typecheck.check}) then compiles. [main] is laid out
    first and is the entry point.
    @raise Error (or {!Typecheck.Error}) on invalid programs. *)

val run :
  ?max_steps:int ->
  ?fetch:(int -> int) ->
  ?data_access:(int -> write:bool -> int) ->
  ?on_fetch:(int -> unit) ->
  compiled ->
  Isa.Machine.result
(** Convenience wrapper: {!Isa.Machine.run} with the data image
    pre-loaded. *)

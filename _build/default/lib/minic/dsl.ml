open Ast

let i n = Int n
let v name = Var name
let idx a e = Index (a, e)
let call f args = Call (f, args)

let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( %: ) a b = Binop (Mod, a, b)
let ( &: ) a b = Binop (Bitand, a, b)
let ( |: ) a b = Binop (Bitor, a, b)
let ( ^: ) a b = Binop (Bitxor, a, b)
let ( <<: ) a b = Binop (Shl, a, b)
let ( >>: ) a b = Binop (Shr, a, b)
let ( >>>: ) a b = Binop (Ashr, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( >: ) a b = Binop (Gt, a, b)
let ( >=: ) a b = Binop (Ge, a, b)
let ( ==: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Ne, a, b)
let ( &&: ) a b = Binop (Logand, a, b)
let ( ||: ) a b = Binop (Logor, a, b)
let neg e = Unop (Neg, e)
let lognot e = Unop (Lognot, e)
let bitnot e = Unop (Bitnot, e)

let decl name e = Decl (name, e)
let decl_arr name n = Decl_array (name, n)
let set name e = Assign (name, e)
let store a index e = Store (a, index, e)
let if_ c t e = If (c, t, e)
let when_ c t = If (c, t, [])
let while_ ~bound cond body = While { cond; bound; body }
let for_ index start stop body = For { index; start; stop; bound = None; body }
let for_b index start stop ~bound body = For { index; start; stop; bound = Some bound; body }
let expr e = Expr e
let ret e = Return (Some e)
let ret0 = Return None

let fn fname params body = { fname; params; body }
let scalar name value = (name, Scalar value)
let array name values = (name, Array values)
let array_n name n f = (name, Array (Array.init n f))
let program ?(globals = []) funcs = { globals; funcs }

(** Combinators for building mini-C ASTs.

    The 25 benchmark programs in [lib/benchmarks] are written with these.
    Arithmetic operators are suffixed with [:] to avoid clobbering the
    standard integer operators ([+:], [-:], [*:], [/:], [%:]), and
    comparisons with [:] likewise ([<:], [==:], ...). *)

open Ast

val i : int -> expr
val v : string -> expr
val idx : string -> expr -> expr
val call : string -> expr list -> expr

val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( &: ) : expr -> expr -> expr
val ( |: ) : expr -> expr -> expr
val ( ^: ) : expr -> expr -> expr
val ( <<: ) : expr -> expr -> expr

val ( >>: ) : expr -> expr -> expr
(** Logical shift right. *)

val ( >>>: ) : expr -> expr -> expr
(** Arithmetic shift right. *)

val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( ==: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr
val neg : expr -> expr
val lognot : expr -> expr
val bitnot : expr -> expr

val decl : string -> expr -> stmt
val decl_arr : string -> int -> stmt
val set : string -> expr -> stmt
val store : string -> expr -> expr -> stmt
val if_ : expr -> block -> block -> stmt
val when_ : expr -> block -> stmt
(** [if_] with an empty else branch. *)

val while_ : bound:int -> expr -> block -> stmt
val for_ : string -> expr -> expr -> block -> stmt
(** Constant-range [for]; the bound is inferred. *)

val for_b : string -> expr -> expr -> bound:int -> block -> stmt
val expr : expr -> stmt
val ret : expr -> stmt
val ret0 : stmt

val fn : string -> string list -> block -> func
val scalar : string -> int -> string * global
val array : string -> int array -> string * global
val array_n : string -> int -> (int -> int) -> string * global
(** [array_n name n f] initialises element [k] to [f k]. *)

val program : ?globals:(string * global) list -> func list -> program

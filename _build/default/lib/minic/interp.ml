exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

exception Return_value of int

let wrap32 x =
  let m = x land 0xFFFF_FFFF in
  if m >= 0x8000_0000 then m - 0x1_0000_0000 else m

let to_u32 x = x land 0xFFFF_FFFF

type cell =
  | Scalar of int ref
  | Array of int array

(* Lexical scopes: innermost first; a call frame starts a fresh list on
   top of the globals. *)
type env = {
  globals : (string, cell) Hashtbl.t;
  mutable scopes : (string, cell) Hashtbl.t list;
  funcs : (string, Ast.func) Hashtbl.t;
  mutable fuel : int;
}

let lookup env name =
  let rec go = function
    | [] -> (
      match Hashtbl.find_opt env.globals name with
      | Some c -> c
      | None -> error "unbound %s" name)
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with Some c -> c | None -> go rest)
  in
  go env.scopes

let declare env name cell =
  match env.scopes with
  | scope :: _ -> Hashtbl.replace scope name cell
  | [] -> error "declaration outside any scope"

let scalar env name =
  match lookup env name with
  | Scalar r -> r
  | Array _ -> error "%s is an array" name

let array env name =
  match lookup env name with
  | Array a -> a
  | Scalar _ -> error "%s is a scalar" name

let tick env =
  env.fuel <- env.fuel - 1;
  if env.fuel <= 0 then error "out of fuel"

let rec eval env (e : Ast.expr) =
  match e with
  | Int v -> wrap32 v
  | Var name -> !(scalar env name)
  | Index (name, idx) ->
    let a = array env name in
    let k = eval env idx in
    if k < 0 || k >= Array.length a then error "%s[%d] out of bounds" name k;
    a.(k)
  | Unop (op, e1) -> (
    let v = eval env e1 in
    match op with
    | Neg -> wrap32 (-v)
    | Lognot -> if v = 0 then 1 else 0
    | Bitnot -> wrap32 (lnot v))
  | Binop (Logand, a, b) -> if eval env a = 0 then 0 else if eval env b <> 0 then 1 else 0
  | Binop (Logor, a, b) -> if eval env a <> 0 then 1 else if eval env b <> 0 then 1 else 0
  | Binop (op, a, b) -> (
    let x = eval env a in
    let y = eval env b in
    match op with
    | Add -> wrap32 (x + y)
    | Sub -> wrap32 (x - y)
    | Mul -> wrap32 (x * y)
    | Div -> if y = 0 then error "division by zero" else wrap32 (x / y)
    | Mod -> if y = 0 then error "mod by zero" else wrap32 (x mod y)
    | Bitand -> wrap32 (x land y)
    | Bitor -> wrap32 (x lor y)
    | Bitxor -> wrap32 (x lxor y)
    | Shl -> wrap32 (to_u32 x lsl (y land 31))
    | Shr -> wrap32 (to_u32 x lsr (y land 31))
    | Ashr -> wrap32 (x asr (y land 31))
    | Lt -> if x < y then 1 else 0
    | Le -> if x <= y then 1 else 0
    | Gt -> if x > y then 1 else 0
    | Ge -> if x >= y then 1 else 0
    | Eq -> if x = y then 1 else 0
    | Ne -> if x <> y then 1 else 0
    | Logand | Logor -> assert false)
  | Call (name, args) ->
    let values = List.map (eval env) args in
    call env name values

and call env name values =
  let f =
    match Hashtbl.find_opt env.funcs name with
    | Some f -> f
    | None -> error "undefined function %s" name
  in
  if List.length values <> List.length f.Ast.params then error "arity mismatch calling %s" name;
  let frame = Hashtbl.create 8 in
  List.iter2 (fun p v -> Hashtbl.replace frame p (Scalar (ref v))) f.Ast.params values;
  let saved = env.scopes in
  env.scopes <- [ frame ];
  let result =
    try
      exec_block env f.Ast.body;
      0 (* fell off the end *)
    with Return_value v -> v
  in
  env.scopes <- saved;
  result

and exec_block env block =
  env.scopes <- Hashtbl.create 8 :: env.scopes;
  List.iter (exec env) block;
  env.scopes <- List.tl env.scopes

and exec env (s : Ast.stmt) =
  tick env;
  match s with
  | Decl (name, e) -> declare env name (Scalar (ref (eval env e)))
  | Decl_array (name, n) -> declare env name (Array (Array.make n 0))
  | Assign (name, e) -> scalar env name := eval env e
  | Store (name, idx, e) ->
    let a = array env name in
    let k = eval env idx in
    let v = eval env e in
    if k < 0 || k >= Array.length a then error "%s[%d] out of bounds" name k;
    a.(k) <- v
  | If (c, then_, else_) -> exec_block env (if eval env c <> 0 then then_ else else_)
  | While { cond; body; _ } ->
    while eval env cond <> 0 do
      tick env;
      exec_block env body
    done
  | For { index; start; stop; body; _ } ->
    let frame = Hashtbl.create 1 in
    let i = ref (eval env start) in
    Hashtbl.replace frame index (Scalar i);
    env.scopes <- frame :: env.scopes;
    while !i < eval env stop do
      tick env;
      exec_block env body;
      i := wrap32 (!i + 1)
    done;
    env.scopes <- List.tl env.scopes
  | Expr e -> ignore (eval env e)
  | Return None -> raise (Return_value 0)
  | Return (Some e) -> raise (Return_value (eval env e))

let run ?(fuel = 10_000_000) (program : Ast.program) =
  let env =
    {
      globals = Hashtbl.create 16;
      scopes = [];
      funcs = Hashtbl.create 16;
      fuel;
    }
  in
  List.iter
    (fun (name, g) ->
      Hashtbl.replace env.globals name
        (match g with
        | Ast.Scalar v -> Scalar (ref (wrap32 v))
        | Ast.Array xs -> Array (Array.map wrap32 xs)))
    program.Ast.globals;
  List.iter (fun (f : Ast.func) -> Hashtbl.replace env.funcs f.Ast.fname f) program.Ast.funcs;
  call env "main" []

(** Reference interpreter for mini-C ASTs.

    Evaluates programs directly over the AST with the same 32-bit
    wrapping semantics as the compiled code on {!Isa.Machine}. Its only
    purpose is differential testing: a random program must produce the
    same result through [Compile + Machine] and through this
    interpreter, which is built from the language semantics alone and
    shares no code with the compiler. *)

exception Runtime_error of string
(** Division by zero, out-of-bounds array access, missing return... *)

val run : ?fuel:int -> Ast.program -> int
(** Executes [main] and returns its result (0 when [main] falls off the
    end without a [return]).
    @raise Runtime_error on runtime faults or fuel exhaustion (default
    fuel: 10 million statement steps). *)

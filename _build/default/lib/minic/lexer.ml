type token =
  | INT of int
  | IDENT of string
  | KW_INT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_BOUND
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | SHL
  | ASHR
  | LSHR
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | ANDAND
  | OROR
  | PLUSPLUS
  | EOF

type located = {
  token : token;
  line : int;
  col : int;
}

exception Error of string

let error line col fmt =
  Format.kasprintf (fun s -> raise (Error (Printf.sprintf "%d:%d: %s" line col s))) fmt

let keyword = function
  | "int" -> Some KW_INT
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "__bound" -> Some KW_BOUND
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let pos = ref 0 in
  let line = ref 1 in
  let col = ref 1 in
  let peek k = if !pos + k < n then Some source.[!pos + k] else None in
  let advance () =
    (match source.[!pos] with
    | '\n' ->
      incr line;
      col := 1
    | _ -> incr col);
    incr pos
  in
  let emit token l c = tokens := { token; line = l; col = c } :: !tokens in
  while !pos < n do
    let l = !line and c = !col in
    match source.[!pos] with
    | ' ' | '\t' | '\r' | '\n' -> advance ()
    | '/' when peek 1 = Some '/' ->
      while !pos < n && source.[!pos] <> '\n' do
        advance ()
      done
    | '/' when peek 1 = Some '*' ->
      advance ();
      advance ();
      let rec skip () =
        if !pos + 1 >= n then error l c "unterminated comment"
        else if source.[!pos] = '*' && peek 1 = Some '/' then begin
          advance ();
          advance ()
        end
        else begin
          advance ();
          skip ()
        end
      in
      skip ()
    | ch when is_digit ch ->
      let start = !pos in
      if ch = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        advance ();
        advance ();
        while !pos < n && is_hex_digit source.[!pos] do
          advance ()
        done
      end
      else
        while !pos < n && is_digit source.[!pos] do
          advance ()
        done;
      let text = String.sub source start (!pos - start) in
      (match int_of_string_opt text with
      | Some v -> emit (INT v) l c
      | None -> error l c "bad integer literal %s" text)
    | ch when is_ident_start ch ->
      let start = !pos in
      while !pos < n && is_ident_char source.[!pos] do
        advance ()
      done;
      let text = String.sub source start (!pos - start) in
      emit (match keyword text with Some kw -> kw | None -> IDENT text) l c
    | '(' -> advance (); emit LPAREN l c
    | ')' -> advance (); emit RPAREN l c
    | '{' -> advance (); emit LBRACE l c
    | '}' -> advance (); emit RBRACE l c
    | '[' -> advance (); emit LBRACKET l c
    | ']' -> advance (); emit RBRACKET l c
    | ';' -> advance (); emit SEMI l c
    | ',' -> advance (); emit COMMA l c
    | '~' -> advance (); emit TILDE l c
    | '^' -> advance (); emit CARET l c
    | '*' -> advance (); emit STAR l c
    | '/' -> advance (); emit SLASH l c
    | '%' -> advance (); emit PERCENT l c
    | '+' ->
      advance ();
      if peek 0 = Some '+' then begin
        advance ();
        emit PLUSPLUS l c
      end
      else emit PLUS l c
    | '-' -> advance (); emit MINUS l c
    | '&' ->
      advance ();
      if peek 0 = Some '&' then begin
        advance ();
        emit ANDAND l c
      end
      else emit AMP l c
    | '|' ->
      advance ();
      if peek 0 = Some '|' then begin
        advance ();
        emit OROR l c
      end
      else emit PIPE l c
    | '=' ->
      advance ();
      if peek 0 = Some '=' then begin
        advance ();
        emit EQ l c
      end
      else emit ASSIGN l c
    | '!' ->
      advance ();
      if peek 0 = Some '=' then begin
        advance ();
        emit NE l c
      end
      else emit BANG l c
    | '<' ->
      advance ();
      (match peek 0 with
      | Some '=' ->
        advance ();
        emit LE l c
      | Some '<' ->
        advance ();
        emit SHL l c
      | _ -> emit LT l c)
    | '>' ->
      advance ();
      (match peek 0 with
      | Some '=' ->
        advance ();
        emit GE l c
      | Some '>' ->
        advance ();
        if peek 0 = Some '>' then begin
          advance ();
          emit LSHR l c
        end
        else emit ASHR l c
      | _ -> emit GT l c)
    | ch -> error l c "unexpected character %c" ch
  done;
  emit EOF !line !col;
  List.rev !tokens

let describe = function
  | INT v -> Printf.sprintf "integer %d" v
  | IDENT s -> Printf.sprintf "identifier %s" s
  | KW_INT -> "'int'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_WHILE -> "'while'"
  | KW_FOR -> "'for'"
  | KW_RETURN -> "'return'"
  | KW_BOUND -> "'__bound'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | ASSIGN -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | AMP -> "'&'"
  | PIPE -> "'|'"
  | CARET -> "'^'"
  | TILDE -> "'~'"
  | BANG -> "'!'"
  | SHL -> "'<<'"
  | ASHR -> "'>>'"
  | LSHR -> "'>>>'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EQ -> "'=='"
  | NE -> "'!='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | PLUSPLUS -> "'++'"
  | EOF -> "end of input"

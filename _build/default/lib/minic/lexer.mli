(** Hand-written lexer for mini-C source text. *)

type token =
  | INT of int
  | IDENT of string
  | KW_INT        (** [int] *)
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_BOUND      (** [__bound], the loop-bound annotation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN        (** [=] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | SHL           (** [<<] *)
  | ASHR          (** [>>] (arithmetic, as on signed C ints) *)
  | LSHR          (** [>>>] (logical) *)
  | LT
  | LE
  | GT
  | GE
  | EQ            (** [==] *)
  | NE            (** [!=] *)
  | ANDAND
  | OROR
  | PLUSPLUS      (** [++], for-loop increments only *)
  | EOF

type located = {
  token : token;
  line : int;
  col : int;
}

exception Error of string
(** Carries a "line:col: message" description. *)

val tokenize : string -> located list
(** The token stream, ending with [EOF]. Handles decimal and [0x]
    integer literals, [//] and [/* */] comments.
    @raise Error on malformed input. *)

val describe : token -> string

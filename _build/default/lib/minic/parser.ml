exception Error of string

type state = {
  tokens : Lexer.located array;
  mutable index : int;
}

let current st = st.tokens.(st.index)

let error_at (tok : Lexer.located) fmt =
  Format.kasprintf
    (fun s -> raise (Error (Printf.sprintf "%d:%d: %s" tok.Lexer.line tok.Lexer.col s)))
    fmt

let advance st = if st.index < Array.length st.tokens - 1 then st.index <- st.index + 1

let expect st token =
  let tok = current st in
  if tok.Lexer.token = token then advance st
  else error_at tok "expected %s, found %s" (Lexer.describe token) (Lexer.describe tok.Lexer.token)

let accept st token =
  if (current st).Lexer.token = token then begin
    advance st;
    true
  end
  else false

let expect_ident st =
  let tok = current st in
  match tok.Lexer.token with
  | Lexer.IDENT name ->
    advance st;
    name
  | other -> error_at tok "expected an identifier, found %s" (Lexer.describe other)

let expect_int st =
  let tok = current st in
  match tok.Lexer.token with
  | Lexer.INT v ->
    advance st;
    v
  | Lexer.MINUS -> (
    advance st;
    match (current st).Lexer.token with
    | Lexer.INT v ->
      advance st;
      -v
    | other -> error_at tok "expected an integer after '-', found %s" (Lexer.describe other))
  | other -> error_at tok "expected an integer, found %s" (Lexer.describe other)

(* --- expressions (precedence climbing) ---------------------------------- *)

let binop_of_token : Lexer.token -> (int * Ast.binop) option = function
  | Lexer.OROR -> Some (1, Ast.Logor)
  | Lexer.ANDAND -> Some (2, Ast.Logand)
  | Lexer.PIPE -> Some (3, Ast.Bitor)
  | Lexer.CARET -> Some (4, Ast.Bitxor)
  | Lexer.AMP -> Some (5, Ast.Bitand)
  | Lexer.EQ -> Some (6, Ast.Eq)
  | Lexer.NE -> Some (6, Ast.Ne)
  | Lexer.LT -> Some (7, Ast.Lt)
  | Lexer.LE -> Some (7, Ast.Le)
  | Lexer.GT -> Some (7, Ast.Gt)
  | Lexer.GE -> Some (7, Ast.Ge)
  | Lexer.SHL -> Some (8, Ast.Shl)
  | Lexer.ASHR -> Some (8, Ast.Ashr)
  | Lexer.LSHR -> Some (8, Ast.Shr)
  | Lexer.PLUS -> Some (9, Ast.Add)
  | Lexer.MINUS -> Some (9, Ast.Sub)
  | Lexer.STAR -> Some (10, Ast.Mul)
  | Lexer.SLASH -> Some (10, Ast.Div)
  | Lexer.PERCENT -> Some (10, Ast.Mod)
  | _ -> None

let rec parse_expr st = parse_binary st 1

and parse_binary st min_prec =
  let left = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (current st).Lexer.token with
    | Some (prec, op) when prec >= min_prec ->
      advance st;
      (* All binary operators are left-associative. *)
      let right = parse_binary st (prec + 1) in
      left := Ast.Binop (op, !left, right)
    | _ -> continue_ := false
  done;
  !left

and parse_unary st =
  let tok = current st in
  match tok.Lexer.token with
  | Lexer.MINUS ->
    advance st;
    (* Fold negative literals so global-style constants stay constants. *)
    (match parse_unary st with
    | Ast.Int v -> Ast.Int (-v)
    | e -> Ast.Unop (Ast.Neg, e))
  | Lexer.BANG ->
    advance st;
    Ast.Unop (Ast.Lognot, parse_unary st)
  | Lexer.TILDE ->
    advance st;
    Ast.Unop (Ast.Bitnot, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let tok = current st in
  match tok.Lexer.token with
  | Lexer.INT v ->
    advance st;
    Ast.Int v
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT name -> (
    advance st;
    match (current st).Lexer.token with
    | Lexer.LPAREN ->
      advance st;
      let args = parse_args st in
      Ast.Call (name, args)
    | Lexer.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Lexer.RBRACKET;
      Ast.Index (name, idx)
    | _ -> Ast.Var name)
  | other -> error_at tok "expected an expression, found %s" (Lexer.describe other)

and parse_args st =
  if accept st Lexer.RPAREN then []
  else begin
    let rec more acc =
      let acc = parse_expr st :: acc in
      if accept st Lexer.COMMA then more acc
      else begin
        expect st Lexer.RPAREN;
        List.rev acc
      end
    in
    more []
  end

(* --- statements ----------------------------------------------------------- *)

let parse_bound st =
  expect st Lexer.KW_BOUND;
  expect st Lexer.LPAREN;
  let b = expect_int st in
  expect st Lexer.RPAREN;
  b

let rec parse_block st =
  expect st Lexer.LBRACE;
  let rec stmts acc =
    if accept st Lexer.RBRACE then List.rev acc else stmts (parse_stmt st :: acc)
  in
  stmts []

and parse_stmt st =
  let tok = current st in
  match tok.Lexer.token with
  | Lexer.KW_INT -> (
    advance st;
    let name = expect_ident st in
    match (current st).Lexer.token with
    | Lexer.ASSIGN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.SEMI;
      Ast.Decl (name, e)
    | Lexer.LBRACKET ->
      advance st;
      let size = expect_int st in
      expect st Lexer.RBRACKET;
      expect st Lexer.SEMI;
      Ast.Decl_array (name, size)
    | other -> error_at tok "expected '=' or '[' after 'int %s', found %s" name (Lexer.describe other))
  | Lexer.KW_IF ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    let then_ = parse_block st in
    let else_ =
      if accept st Lexer.KW_ELSE then
        if (current st).Lexer.token = Lexer.KW_IF then [ parse_stmt st ] else parse_block st
      else []
    in
    Ast.If (cond, then_, else_)
  | Lexer.KW_WHILE ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    let bound = parse_bound st in
    let body = parse_block st in
    Ast.While { cond; bound; body }
  | Lexer.KW_FOR ->
    advance st;
    expect st Lexer.LPAREN;
    let index = expect_ident st in
    expect st Lexer.ASSIGN;
    let start = parse_expr st in
    expect st Lexer.SEMI;
    let index2 = expect_ident st in
    if index2 <> index then error_at tok "for-loop condition must test '%s'" index;
    expect st Lexer.LT;
    let stop = parse_expr st in
    expect st Lexer.SEMI;
    let index3 = expect_ident st in
    if index3 <> index then error_at tok "for-loop increment must bump '%s'" index;
    expect st Lexer.PLUSPLUS;
    expect st Lexer.RPAREN;
    let bound =
      if (current st).Lexer.token = Lexer.KW_BOUND then Some (parse_bound st) else None
    in
    let body = parse_block st in
    Ast.For { index; start; stop; bound; body }
  | Lexer.KW_RETURN ->
    advance st;
    if accept st Lexer.SEMI then Ast.Return None
    else begin
      let e = parse_expr st in
      expect st Lexer.SEMI;
      Ast.Return (Some e)
    end
  | Lexer.IDENT name -> (
    (* assign / store / expression statement *)
    match st.tokens.(st.index + 1).Lexer.token with
    | Lexer.ASSIGN ->
      advance st;
      advance st;
      let e = parse_expr st in
      expect st Lexer.SEMI;
      Ast.Assign (name, e)
    | Lexer.LBRACKET ->
      (* Could be a store or an indexed read inside an expression
         statement; decide by looking for '=' after the bracket group. *)
      let saved = st.index in
      advance st;
      advance st;
      let idx = parse_expr st in
      expect st Lexer.RBRACKET;
      if accept st Lexer.ASSIGN then begin
        let e = parse_expr st in
        expect st Lexer.SEMI;
        Ast.Store (name, idx, e)
      end
      else begin
        st.index <- saved;
        let e = parse_expr st in
        expect st Lexer.SEMI;
        Ast.Expr e
      end
    | _ ->
      let e = parse_expr st in
      expect st Lexer.SEMI;
      Ast.Expr e)
  | _ ->
    let e = parse_expr st in
    expect st Lexer.SEMI;
    Ast.Expr e

(* --- top level -------------------------------------------------------------- *)

let parse_params st =
  expect st Lexer.LPAREN;
  if accept st Lexer.RPAREN then []
  else begin
    let rec more acc =
      expect st Lexer.KW_INT;
      let acc = expect_ident st :: acc in
      if accept st Lexer.COMMA then more acc
      else begin
        expect st Lexer.RPAREN;
        List.rev acc
      end
    in
    more []
  end

let parse_init_list st =
  expect st Lexer.LBRACE;
  let rec more acc =
    let acc = expect_int st :: acc in
    if accept st Lexer.COMMA then more acc
    else begin
      expect st Lexer.RBRACE;
      List.rev acc
    end
  in
  more []

let parse_program st =
  let globals = ref [] and funcs = ref [] in
  while (current st).Lexer.token <> Lexer.EOF do
    let tok = current st in
    expect st Lexer.KW_INT;
    let name = expect_ident st in
    match (current st).Lexer.token with
    | Lexer.LPAREN ->
      let params = parse_params st in
      let body = parse_block st in
      funcs := { Ast.fname = name; params; body } :: !funcs
    | Lexer.ASSIGN ->
      advance st;
      let v = expect_int st in
      expect st Lexer.SEMI;
      globals := (name, Ast.Scalar v) :: !globals
    | Lexer.LBRACKET ->
      advance st;
      let size = expect_int st in
      expect st Lexer.RBRACKET;
      let init =
        if accept st Lexer.ASSIGN then begin
          let values = parse_init_list st in
          if List.length values > size then
            error_at tok "array %s: %d initialisers for %d elements" name (List.length values)
              size;
          Array.init size (fun k ->
              match List.nth_opt values k with Some v -> v | None -> 0)
        end
        else Array.make size 0
      in
      expect st Lexer.SEMI;
      globals := (name, Ast.Array init) :: !globals
    | other ->
      error_at tok "expected '(', '=' or '[' after 'int %s', found %s" name
        (Lexer.describe other)
  done;
  { Ast.globals = List.rev !globals; funcs = List.rev !funcs }

let program_of_string source =
  let tokens =
    try Lexer.tokenize source with Lexer.Error msg -> raise (Error msg)
  in
  parse_program { tokens = Array.of_list tokens; index = 0 }

let program_of_file path =
  let ic = open_in_bin path in
  let source =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in ic;
      raise e
  in
  close_in ic;
  program_of_string source

(** Recursive-descent parser for mini-C source text.

    The concrete syntax is the C subset matching {!Ast}, with one
    extension: loop-bound annotations. [while] loops require one, [for]
    loops over non-constant ranges too:

    {v
int data[8] = {3, 1, 4, 1, 5, 9, 2, 6};
int g = 0;

int sum(int n) {
  int s = 0;
  for (k = 0; k < n; k++) __bound(8) { s = s + data[k]; }
  while (s > 100) __bound(3) { s = s - 10; }
  return s;
}

int main() { return sum(8); }
    v}

    Only [int] scalars and arrays exist; [for] headers use the fixed
    [id = e; id < e; id++] shape the compiler supports; [>>] is the
    arithmetic right shift (C on signed ints) and [>>>] the logical
    one. *)

exception Error of string
(** "line:col: message". *)

val program_of_string : string -> Ast.program
(** @raise Error on syntax errors (validation happens later, in
    {!Typecheck} / {!Compile}). *)

val program_of_file : string -> Ast.program
(** @raise Error on syntax errors; @raise Sys_error on I/O errors. *)

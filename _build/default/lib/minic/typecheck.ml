exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type kind =
  | Kscalar
  | Karray

(* Scopes are a stack of name->kind tables; inner scopes shadow outer. *)
type scope = (string, kind) Hashtbl.t

let lookup scopes name =
  let rec go = function
    | [] -> None
    | (s : scope) :: rest -> ( match Hashtbl.find_opt s name with Some k -> Some k | None -> go rest)
  in
  go scopes

let declare ~fn scopes name kind =
  match scopes with
  | [] -> assert false
  | current :: _ ->
    if Hashtbl.mem current name then error "%s: duplicate declaration of %s" fn name;
    Hashtbl.add current name kind

let max_params = 4

let check (program : Ast.program) =
  (* Global names and function table. *)
  let global_kinds : scope = Hashtbl.create 16 in
  List.iter
    (fun (name, g) ->
      if Hashtbl.mem global_kinds name then error "duplicate global %s" name;
      Hashtbl.add global_kinds name
        (match g with Ast.Scalar _ -> Kscalar | Ast.Array _ -> Karray))
    program.globals;
  let arities = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem arities f.fname then error "duplicate function %s" f.fname;
      if Hashtbl.mem global_kinds f.fname then error "%s is both a global and a function" f.fname;
      if List.length f.params > max_params then
        error "%s: more than %d parameters" f.fname max_params;
      let seen = Hashtbl.create 4 in
      List.iter
        (fun p ->
          if Hashtbl.mem seen p then error "%s: duplicate parameter %s" f.fname p;
          Hashtbl.add seen p ())
        f.params;
      Hashtbl.add arities f.fname (List.length f.params))
    program.funcs;
  (match Hashtbl.find_opt arities "main" with
  | None -> error "no main function"
  | Some 0 -> ()
  | Some _ -> error "main must take no parameters");
  (* Per-function body checks. *)
  let rec check_expr fn scopes (e : Ast.expr) =
    match e with
    | Int _ -> ()
    | Var v -> (
      match lookup scopes v with
      | Some Kscalar -> ()
      | Some Karray -> error "%s: array %s used as a scalar" fn v
      | None -> error "%s: unbound variable %s" fn v)
    | Index (a, idx) ->
      (match lookup scopes a with
      | Some Karray -> ()
      | Some Kscalar -> error "%s: scalar %s indexed as an array" fn a
      | None -> error "%s: unbound array %s" fn a);
      check_expr fn scopes idx
    | Unop (_, e1) -> check_expr fn scopes e1
    | Binop (_, a, b) ->
      check_expr fn scopes a;
      check_expr fn scopes b
    | Call (f, args) ->
      (match Hashtbl.find_opt arities f with
      | None -> error "%s: call to undefined function %s" fn f
      | Some arity ->
        if arity <> List.length args then
          error "%s: %s expects %d arguments, got %d" fn f arity (List.length args));
      List.iter (check_expr fn scopes) args
  in
  let rec check_block fn scopes block =
    let scope : scope = Hashtbl.create 8 in
    let scopes = scope :: scopes in
    List.iter (check_stmt fn scopes) block
  and check_stmt fn scopes (s : Ast.stmt) =
    match s with
    | Decl (v, e) ->
      check_expr fn scopes e;
      declare ~fn scopes v Kscalar
    | Decl_array (v, n) ->
      if n <= 0 then error "%s: array %s has non-positive size %d" fn v n;
      declare ~fn scopes v Karray
    | Assign (v, e) ->
      (match lookup scopes v with
      | Some Kscalar -> ()
      | Some Karray -> error "%s: cannot assign to array %s" fn v
      | None -> error "%s: assignment to unbound variable %s" fn v);
      check_expr fn scopes e
    | Store (a, idx, e) ->
      (match lookup scopes a with
      | Some Karray -> ()
      | Some Kscalar -> error "%s: scalar %s indexed as an array" fn a
      | None -> error "%s: unbound array %s" fn a);
      check_expr fn scopes idx;
      check_expr fn scopes e
    | If (c, then_, else_) ->
      check_expr fn scopes c;
      check_block fn scopes then_;
      check_block fn scopes else_
    | While { cond; bound; body } ->
      if bound < 0 then error "%s: negative while bound" fn;
      check_expr fn scopes cond;
      check_block fn scopes body
    | For { index; start; stop; bound; body } ->
      check_expr fn scopes start;
      check_expr fn scopes stop;
      (match Ast.for_bound ~start ~stop ~bound with
      | Some b when b >= 0 -> ()
      | Some _ -> error "%s: negative for bound" fn
      | None ->
        error "%s: for loop over %s needs a bound annotation (non-constant range)" fn index);
      (* The index is scoped to the loop. *)
      let scope : scope = Hashtbl.create 1 in
      Hashtbl.add scope index Kscalar;
      check_block fn (scope :: scopes) body
    | Expr e -> check_expr fn scopes e
    | Return None -> ()
    | Return (Some e) -> check_expr fn scopes e
  in
  List.iter
    (fun (f : Ast.func) ->
      let params : scope = Hashtbl.create 4 in
      List.iter (fun p -> Hashtbl.add params p Kscalar) f.params;
      check_block f.fname [ params; global_kinds ] f.body)
    program.funcs;
  (* Recursion check: DFS over the call graph. *)
  let calls_of (f : Ast.func) =
    let acc = ref [] in
    let rec expr (e : Ast.expr) =
      match e with
      | Call (g, args) ->
        acc := g :: !acc;
        List.iter expr args
      | Unop (_, e1) -> expr e1
      | Binop (_, a, b) ->
        expr a;
        expr b
      | Index (_, e1) -> expr e1
      | Int _ | Var _ -> ()
    in
    let rec stmt (s : Ast.stmt) =
      match s with
      | Decl (_, e) | Assign (_, e) | Expr e | Return (Some e) -> expr e
      | Decl_array _ | Return None -> ()
      | Store (_, i, e) ->
        expr i;
        expr e
      | If (c, t, e) ->
        expr c;
        List.iter stmt t;
        List.iter stmt e
      | While { cond; body; _ } ->
        expr cond;
        List.iter stmt body
      | For { start; stop; body; _ } ->
        expr start;
        expr stop;
        List.iter stmt body
    in
    List.iter stmt f.body;
    !acc
  in
  let graph = Hashtbl.create 16 in
  List.iter (fun (f : Ast.func) -> Hashtbl.add graph f.fname (calls_of f)) program.funcs;
  let state = Hashtbl.create 16 in
  (* 0 = visiting, 1 = done *)
  let rec dfs name =
    match Hashtbl.find_opt state name with
    | Some 0 -> error "recursion involving %s is not supported" name
    | Some _ -> ()
    | None ->
      Hashtbl.add state name 0;
      List.iter dfs (match Hashtbl.find_opt graph name with Some l -> l | None -> []);
      Hashtbl.replace state name 1
  in
  List.iter (fun (f : Ast.func) -> dfs f.fname) program.funcs

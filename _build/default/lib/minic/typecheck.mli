(** Static validation of mini-C programs.

    Rejects, with a descriptive error, everything the compiler and the
    downstream WCET analysis cannot handle: unbound or misused names
    (scalar vs array), bad arities, more than 4 parameters, a missing
    or parameterised [main], recursion (direct or mutual — the IPET
    call expansion requires an acyclic call graph), negative or missing
    loop bounds, and duplicate definitions. *)

exception Error of string

val check : Ast.program -> unit
(** @raise Error describing the first problem found. *)

lib/numeric/bigint.ml: Array Buffer Char Format Hashtbl List Printf Stdlib String

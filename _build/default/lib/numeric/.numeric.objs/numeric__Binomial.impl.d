lib/numeric/binomial.ml: Array Bigint Float Kahan Stdlib

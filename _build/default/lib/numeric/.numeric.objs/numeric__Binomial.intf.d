lib/numeric/binomial.mli: Bigint

lib/numeric/kahan.ml: Array Float List

lib/numeric/kahan.mli:

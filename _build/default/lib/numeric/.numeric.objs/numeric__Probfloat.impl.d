lib/numeric/probfloat.ml: Float

lib/numeric/probfloat.mli:

lib/numeric/rat.mli: Bigint Format

(* Sign-magnitude arbitrary-precision integers over base-2^30 limbs.
   Magnitudes are little-endian int arrays with no most-significant zero
   limb; the empty array represents zero (and only zero). The limb base
   2^30 keeps every intermediate product below 2^60, well within the
   native 63-bit int range. *)

type t = { sign : int; mag : int array }

let base_bits = 30
let base = 1 lsl base_bits
let limb_mask = base - 1

let zero = { sign = 0; mag = [||] }

(* Strip most-significant zero limbs so that representations are unique. *)
let normalize_mag mag =
  let n = Array.length mag in
  let rec significant i = if i > 0 && mag.(i - 1) = 0 then significant (i - 1) else i in
  let k = significant n in
  if k = n then mag else Array.sub mag 0 k

let make sign mag =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* min_int negation overflows; go through two limbs directly. *)
    let rec limbs acc n = if n = 0 then List.rev acc else limbs ((n land limb_mask) :: acc) (n lsr base_bits) in
    let magnitude = if n = min_int then Array.of_list (limbs [] (-(n / 2))) else Array.of_list (limbs [] (Stdlib.abs n)) in
    if n = min_int then
      (* |min_int| = 2 * (|min_int|/2); double the magnitude. *)
      let doubled = Array.make (Array.length magnitude + 1) 0 in
      let carry = ref 0 in
      Array.iteri
        (fun i limb ->
          let v = (limb lsl 1) lor !carry in
          doubled.(i) <- v land limb_mask;
          carry := v lsr base_bits)
        magnitude;
      doubled.(Array.length magnitude) <- !carry;
      make sign doubled
    else make sign magnitude
  end

let one = of_int 1
let minus_one = of_int (-1)

let sign t = t.sign
let is_zero t = t.sign = 0

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec from i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else from (i - 1) in
    from (la - 1)
  end

let compare x y =
  if x.sign <> y.sign then compare x.sign y.sign
  else if x.sign >= 0 then mag_compare x.mag y.mag
  else mag_compare y.mag x.mag

let equal x y = compare x y = 0

let hash t = Hashtbl.hash (t.sign, t.mag)

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let result = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let va = if i < la then a.(i) else 0 in
    let vb = if i < lb then b.(i) else 0 in
    let s = va + vb + !carry in
    result.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  result.(n) <- !carry;
  result

(* Requires a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let result = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let vb = if i < lb then b.(i) else 0 in
    let d = a.(i) - vb - !borrow in
    if d < 0 then begin
      result.(i) <- d + base;
      borrow := 1
    end else begin
      result.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  result

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then make x.sign (mag_add x.mag y.mag)
  else begin
    match mag_compare x.mag y.mag with
    | 0 -> zero
    | c when c > 0 -> make x.sign (mag_sub x.mag y.mag)
    | _ -> make y.sign (mag_sub y.mag x.mag)
  end

let sub x y = add x (neg y)

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let result = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then begin
        for j = 0 to lb - 1 do
          let v = result.(i + j) + (ai * b.(j)) + !carry in
          result.(i + j) <- v land limb_mask;
          carry := v lsr base_bits
        done;
        (* Propagate the final carry; it may ripple past i + lb. *)
        let k = ref (i + lb) in
        while !carry <> 0 do
          let v = result.(!k) + !carry in
          result.(!k) <- v land limb_mask;
          carry := v lsr base_bits;
          incr k
        done
      end
    done;
    result
  end

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else make (x.sign * y.sign) (mag_mul x.mag y.mag)

let mag_bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((n - 1) * base_bits) + width 0
  end

let bit_length t = mag_bit_length t.mag

let mag_get_bit a i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length a then 0 else (a.(limb) lsr off) land 1

(* Binary long division on magnitudes: O(bits(a) * limbs(b)). The
   remainder buffer is mutated in place (shift-left-one-or-bit, compare,
   subtract), which is simple to verify and fast enough for the limb
   sizes the simplex produces. *)
let mag_divmod a b =
  let lb = Array.length b in
  if lb = 0 then raise Division_by_zero;
  if mag_compare a b < 0 then ([||], Array.copy a)
  else begin
    let bits = mag_bit_length a in
    let quotient = Array.make (Array.length a) 0 in
    (* Remainder needs at most lb + 1 limbs: it stays < b after each step,
       and the shift adds one bit. *)
    let r = Array.make (lb + 1) 0 in
    let r_len = ref 0 in
    let shift_in bit =
      let carry = ref bit in
      for i = 0 to !r_len - 1 do
        let v = (r.(i) lsl 1) lor !carry in
        r.(i) <- v land limb_mask;
        carry := v lsr base_bits
      done;
      if !carry <> 0 then begin
        r.(!r_len) <- !carry;
        incr r_len
      end
    in
    let r_ge_b () =
      if !r_len <> lb then !r_len > lb
      else begin
        let rec from i =
          if i < 0 then true else if r.(i) <> b.(i) then r.(i) > b.(i) else from (i - 1)
        in
        from (lb - 1)
      end
    in
    let r_sub_b () =
      let borrow = ref 0 in
      for i = 0 to !r_len - 1 do
        let vb = if i < lb then b.(i) else 0 in
        let d = r.(i) - vb - !borrow in
        if d < 0 then begin
          r.(i) <- d + base;
          borrow := 1
        end else begin
          r.(i) <- d;
          borrow := 0
        end
      done;
      assert (!borrow = 0);
      while !r_len > 0 && r.(!r_len - 1) = 0 do
        decr r_len
      done
    in
    for i = bits - 1 downto 0 do
      shift_in (mag_get_bit a i);
      if r_ge_b () then begin
        r_sub_b ();
        quotient.(i / base_bits) <- quotient.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (quotient, Array.sub r 0 !r_len)
  end

let divmod x y =
  if y.sign = 0 then raise Division_by_zero;
  if x.sign = 0 then (zero, zero)
  else begin
    let q_mag, r_mag = mag_divmod x.mag y.mag in
    let q = make (x.sign * y.sign) q_mag in
    let r = make x.sign r_mag in
    (q, r)
  end

let div x y = fst (divmod x y)
let rem x y = snd (divmod x y)

let rec gcd_mag x y = if is_zero y then x else gcd_mag y (rem x y)
let gcd x y = gcd_mag (abs x) (abs y)

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else begin
      let acc = if n land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (n lsr 1)
    end
  in
  go one x n

let to_int t =
  (* Values of up to 62 bits round-trip directly; min_int (magnitude 2^62,
     63 bits) is the one wider value that still fits. *)
  if bit_length t > 62 then
    if compare t (of_int min_int) = 0 then Some min_int else None
  else begin
    let v = ref 0 in
    for i = Array.length t.mag - 1 downto 0 do
      v := (!v lsl base_bits) lor t.mag.(i)
    done;
    Some (if t.sign < 0 then - !v else !v)
  end

let to_int_exn t =
  match to_int t with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: value out of native int range"

let to_float t =
  let v = ref 0.0 in
  for i = Array.length t.mag - 1 downto 0 do
    v := (!v *. float_of_int base) +. float_of_int t.mag.(i)
  done;
  if t.sign < 0 then -. !v else !v

(* Decimal conversion goes through chunks of 10^9 < 2^30. *)
let decimal_chunk = 1_000_000_000

let mag_divmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks acc mag =
      if Array.length mag = 0 then acc
      else begin
        let q, r = mag_divmod_small mag decimal_chunk in
        chunks (r :: acc) (normalize_mag q)
      end
    in
    (match chunks [] t.mag with
    | [] -> assert false
    | first :: rest ->
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    let body = Buffer.contents buf in
    if t.sign < 0 then "-" ^ body else body
  end

let mag_mul_small a m =
  let la = Array.length a in
  let result = Array.make (la + 2) 0 in
  let carry = ref 0 in
  for i = 0 to la - 1 do
    let v = (a.(i) * m) + !carry in
    result.(i) <- v land limb_mask;
    carry := v lsr base_bits
  done;
  let k = ref la in
  while !carry <> 0 do
    result.(!k) <- !carry land limb_mask;
    carry := !carry lsr base_bits;
    incr k
  done;
  result

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty string";
  let negative, start =
    match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
  in
  if start >= n then invalid_arg "Bigint.of_string: missing digits";
  let mag = ref [||] in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: invalid digit";
    let d = Char.code c - Char.code '0' in
    mag := normalize_mag (mag_add (mag_mul_small !mag 10) [| d |])
  done;
  make (if negative then -1 else 1) !mag

let pp fmt t = Format.pp_print_string fmt (to_string t)

(** Arbitrary-precision signed integers.

    Implemented from scratch (zarith is not available in this environment)
    as sign-magnitude numbers over base-[2^30] limbs. Used by the exact
    rational arithmetic backing the ILP simplex solver, where coefficient
    growth would overflow native integers. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val to_int : t -> int option
(** [to_int x] is [Some n] when [x] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val to_float : t -> float
(** Nearest-double approximation (infinite for huge magnitudes). *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [|r| < |b|] and [r] having
    the sign of [a] (truncated division, like [Stdlib.( / )]).
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Greatest common divisor, always non-negative. [gcd zero zero = zero]. *)

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. @raise Invalid_argument on negative exponent. *)

val bit_length : t -> int
(** Number of significant bits of the magnitude; [0] for zero. *)

val of_string : string -> t
(** Parses an optional sign followed by decimal digits.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

let check_args n p =
  if n < 0 then invalid_arg "Binomial: negative n";
  if not (Float.is_finite p) || p < 0.0 || p > 1.0 then invalid_arg "Binomial: p outside [0,1]"

let choose n k =
  if k < 0 || k > n then 0.0
  else begin
    let k = Stdlib.min k (n - k) in
    let acc = ref 1.0 in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    !acc
  end

let choose_exact n k =
  if k < 0 || k > n then Bigint.zero
  else begin
    let k = Stdlib.min k (n - k) in
    let acc = ref Bigint.one in
    for i = 1 to k do
      (* Multiply first: the running value is always an exact integer. *)
      acc := Bigint.div (Bigint.mul !acc (Bigint.of_int (n - k + i))) (Bigint.of_int i)
    done;
    !acc
  end

(* log C(n,k) + k log p + (n-k) log(1-p), exponentiated at the end, keeps
   masses accurate even when p^k alone would underflow. log(1-p) uses
   log1p for small p. *)
let pmf ~n ~p k =
  check_args n p;
  if k < 0 || k > n then 0.0
  else if p = 0.0 then if k = 0 then 1.0 else 0.0
  else if p = 1.0 then if k = n then 1.0 else 0.0
  else begin
    let log_c = log (choose n k) in
    let log_mass = log_c +. (float_of_int k *. log p) +. (float_of_int (n - k) *. Float.log1p (-.p)) in
    exp log_mass
  end

let pmf_all ~n ~p =
  check_args n p;
  Array.init (n + 1) (fun k -> pmf ~n ~p k)

let cdf ~n ~p k =
  check_args n p;
  if k < 0 then 0.0
  else if k >= n then 1.0
  else begin
    let acc = Kahan.create () in
    for i = 0 to k do
      Kahan.add acc (pmf ~n ~p i)
    done;
    Float.min 1.0 (Kahan.total acc)
  end

let survival ~n ~p k =
  check_args n p;
  if k < 0 then 1.0
  else if k >= n then 0.0
  else begin
    let acc = Kahan.create () in
    (* Sum the tail upwards from the smallest terms. *)
    for i = n downto k + 1 do
      Kahan.add acc (pmf ~n ~p i)
    done;
    Float.min 1.0 (Kahan.total acc)
  end

(** Binomial probability law, used for the number of faulty ways per
    cache set (paper eqs. 2 and 3). Associativities are tiny (<= 64), so
    coefficients are computed exactly in floating point via a
    multiplicative ladder; extreme [p] values are handled in log space to
    avoid underflow of intermediate terms. *)

val choose : int -> int -> float
(** [choose n k] = C(n, k); [0.] outside [0 <= k <= n]. *)

val choose_exact : int -> int -> Bigint.t
(** Exact binomial coefficient (Pascal ladder on bigints). *)

val pmf : n:int -> p:float -> int -> float
(** [pmf ~n ~p k] is [C(n,k) p^k (1-p)^(n-k)]; [0.] outside the support.
    @raise Invalid_argument when [p] is outside [0, 1] or [n < 0]. *)

val pmf_all : n:int -> p:float -> float array
(** All masses [pmf 0 .. pmf n]; sums to [1.] up to rounding. *)

val cdf : n:int -> p:float -> int -> float
(** [P(X <= k)]. *)

val survival : n:int -> p:float -> int -> float
(** [P(X > k)], accumulated from the small upper-tail terms so no
    [1 - x] cancellation occurs. *)

(* Neumaier's variant of Kahan summation: unlike the classic version it
   stays accurate when a new term is larger than the running sum. *)

type t = { mutable sum : float; mutable compensation : float }

let create () = { sum = 0.0; compensation = 0.0 }

let add t x =
  let s = t.sum +. x in
  let correction =
    if Float.abs t.sum >= Float.abs x then (t.sum -. s) +. x else (x -. s) +. t.sum
  in
  t.compensation <- t.compensation +. correction;
  t.sum <- s

let total t = t.sum +. t.compensation

let sum xs =
  let acc = create () in
  List.iter (add acc) xs;
  total acc

let sum_array xs =
  let acc = create () in
  Array.iter (add acc) xs;
  total acc

let sum_by f xs =
  let acc = create () in
  List.iter (fun x -> add acc (f x)) xs;
  total acc

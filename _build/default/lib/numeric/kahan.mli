(** Compensated (Kahan–Neumaier) floating-point summation.

    Probability masses in the pWCET pipeline span ~300 orders of
    magnitude; summing them naively loses the tiny tail terms that the
    exceedance function at [1e-15] depends on. All probability
    accumulation in [lib/prob] goes through this module. *)

type t
(** A running compensated sum. Accumulators are mutable. *)

val create : unit -> t
val add : t -> float -> unit
val total : t -> float

val sum : float list -> float
(** Compensated sum of a list. *)

val sum_array : float array -> float
val sum_by : ('a -> float) -> 'a list -> float

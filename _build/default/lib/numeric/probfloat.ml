let check p k =
  if not (Float.is_finite p) || p < 0.0 || p > 1.0 then invalid_arg "Probfloat: p outside [0,1]";
  if k < 0 then invalid_arg "Probfloat: negative exponent"

let pow_one_minus ~p ~k =
  check p k;
  if p = 1.0 then if k = 0 then 1.0 else 0.0
  else exp (float_of_int k *. Float.log1p (-.p))

let one_minus_pow_one_minus ~p ~k =
  check p k;
  if p = 1.0 then if k = 0 then 0.0 else 1.0
  else -.Float.expm1 (float_of_int k *. Float.log1p (-.p))

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

(** Numerically careful probability helpers for the fault model. *)

val one_minus_pow_one_minus : p:float -> k:int -> float
(** [one_minus_pow_one_minus ~p ~k] computes [1 - (1 - p)^k] (paper
    eq. 1: block-failure probability from bit-failure probability) via
    [expm1]/[log1p] so that tiny [p] does not cancel.
    @raise Invalid_argument when [p] is outside [0,1] or [k < 0]. *)

val pow_one_minus : p:float -> k:int -> float
(** [(1 - p)^k] without forming [1 - p] when [p] is tiny. *)

val clamp01 : float -> float
(** Clamp to [0, 1] (guards accumulated rounding at the boundaries). *)

type t = { num : Bigint.t; den : Bigint.t }

let canonical num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    { num = Bigint.div num g; den = Bigint.div den g }
  end

let make num den = canonical num den
let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints num den = canonical (Bigint.of_int num) (Bigint.of_int den)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num t = t.num
let den t = t.den

let sign t = Bigint.sign t.num
let is_zero t = Bigint.is_zero t.num
let is_integer t = Bigint.equal t.den Bigint.one

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den
     (denominators are positive). *)
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = compare a b = 0

let neg t = { t with num = Bigint.neg t.num }
let abs t = { t with num = Bigint.abs t.num }

let add a b =
  canonical
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = canonical (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let inv t =
  if is_zero t then raise Division_by_zero;
  canonical t.den t.num

let div a b = mul a (inv b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor t =
  let q, r = Bigint.divmod t.num t.den in
  if Bigint.sign r < 0 then Bigint.sub q Bigint.one else q

let ceil t =
  let q, r = Bigint.divmod t.num t.den in
  if Bigint.sign r > 0 then Bigint.add q Bigint.one else q

let to_float t = Bigint.to_float t.num /. Bigint.to_float t.den

let to_int_exn t =
  if not (is_integer t) then failwith "Rat.to_int_exn: not an integer";
  Bigint.to_int_exn t.num

let to_string t =
  if is_integer t then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den

let pp fmt t = Format.pp_print_string fmt (to_string t)

(** Exact rational arithmetic over {!Bigint}.

    Values are kept in canonical form: the denominator is strictly
    positive and coprime with the numerator. This is the number type of
    the exact simplex in [lib/ilp]. *)

type t

val zero : t
val one : t
val minus_one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the canonical form of [num/den].
    @raise Division_by_zero when [den] is zero. *)

val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints num den]. @raise Division_by_zero when [den = 0]. *)

val of_bigint : Bigint.t -> t

val num : t -> Bigint.t
val den : t -> Bigint.t
(** Always strictly positive. *)

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on a zero divisor. *)

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val min : t -> t -> t
val max : t -> t -> t

val floor : t -> Bigint.t
(** Largest integer [<=] the value (true floor, also for negatives). *)

val ceil : t -> Bigint.t

val to_float : t -> float
val to_int_exn : t -> int
(** @raise Failure when the value is not an integer fitting in [int]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

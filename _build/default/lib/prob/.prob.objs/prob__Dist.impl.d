lib/prob/dist.ml: Array Float Format Hashtbl List Numeric Option Printf

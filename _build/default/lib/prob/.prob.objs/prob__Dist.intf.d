lib/prob/dist.mli: Format

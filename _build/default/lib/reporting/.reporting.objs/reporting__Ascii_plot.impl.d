lib/reporting/ascii_plot.ml: Array Buffer Float List Printf String

lib/reporting/ascii_plot.mli:

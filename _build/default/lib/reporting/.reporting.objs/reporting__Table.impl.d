lib/reporting/table.ml: Array Buffer List Printf Pwcet String

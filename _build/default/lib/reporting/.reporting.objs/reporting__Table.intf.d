lib/reporting/table.mli: Pwcet

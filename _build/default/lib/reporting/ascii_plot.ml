let floor_clip p = if p <= 0.0 then 1e-18 else p

let exceedance ?(width = 72) ?(height = 20) ~series () =
  let buf = Buffer.create 4096 in
  let all_points = List.concat_map snd series in
  if all_points = [] then "(empty plot)\n"
  else begin
    let xs = List.map fst all_points in
    let x_min = List.fold_left min max_int xs and x_max = List.fold_left max min_int xs in
    let x_max = if x_max = x_min then x_min + 1 else x_max in
    let y_top = 0.0 (* log10 of 1 *) and y_bottom = -18.0 in
    let grid = Array.make_matrix height width ' ' in
    let marks = [| '#'; '+'; 'o'; '*'; 'x' |] in
    List.iteri
      (fun si (_, points) ->
        let mark = marks.(si mod Array.length marks) in
        (* The exceedance is a right-continuous staircase: from each
           point, draw to the x of the next point at this level. *)
        let rec draw = function
          | [] -> ()
          | (x, p) :: rest ->
            let x_next = match rest with (x2, _) :: _ -> x2 | [] -> x_max in
            let level = log10 (floor_clip p) in
            let row =
              let frac = (y_top -. level) /. (y_top -. y_bottom) in
              min (height - 1) (max 0 (int_of_float (frac *. float_of_int (height - 1))))
            in
            let col_of x =
              let frac = float_of_int (x - x_min) /. float_of_int (x_max - x_min) in
              min (width - 1) (max 0 (int_of_float (frac *. float_of_int (width - 1))))
            in
            for c = col_of x to col_of x_next do
              grid.(row).(c) <- mark
            done;
            draw rest
        in
        draw points)
      series;
    Buffer.add_string buf "  P(WCET >= x)\n";
    Array.iteri
      (fun r row ->
        let level = -18.0 *. float_of_int r /. float_of_int (height - 1) in
        Buffer.add_string buf (Printf.sprintf "  1e%+03.0f |" level);
        Buffer.add_string buf (String.init width (fun c -> row.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "         +%s\n" (String.make width '-'));
    Buffer.add_string buf (Printf.sprintf "          %-10d%*d (cycles)\n" x_min (width - 10) x_max);
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "          %c = %s\n" marks.(si mod Array.length marks) name))
      series;
    Buffer.contents buf
  end

let bars ?(width = 50) ~rows () =
  let buf = Buffer.create 4096 in
  let label_width =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0 rows
  in
  List.iter
    (fun (name, entries) ->
      List.iteri
        (fun i (series, value) ->
          let v = Float.max 0.0 (Float.min 1.0 value) in
          let filled = int_of_float (v *. float_of_int width) in
          Buffer.add_string buf
            (Printf.sprintf "  %-*s %-6s |%s%s| %.3f\n" label_width
               (if i = 0 then name else "")
               series
               (String.make filled '=')
               (String.make (width - filled) ' ')
               value))
        entries;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

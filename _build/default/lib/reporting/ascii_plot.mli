(** Terminal rendering of exceedance curves (the paper's Fig. 3) and
    normalised bar charts (Fig. 4). *)

val exceedance :
  ?width:int ->
  ?height:int ->
  series:(string * (int * float) list) list ->
  unit ->
  string
(** Log-scale complementary cumulative distribution plot. Each series is
    a staircase [(wcet, P(WCET >= wcet))]; probabilities below [1e-18]
    are clipped. *)

val bars :
  ?width:int ->
  rows:(string * (string * float) list) list ->
  unit ->
  string
(** Horizontal grouped bars, one group per row, values in [0, 1]
    (normalised pWCETs). *)

let render ~header ~rows =
  let ncols = List.length header in
  List.iter
    (fun row ->
      if List.length row <> ncols then invalid_arg "Table.render: ragged rows")
    rows;
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (List.iteri (fun c cell -> widths.(c) <- max widths.(c) (String.length cell)))
    rows;
  let buf = Buffer.create 1024 in
  let emit_row cells =
    List.iteri
      (fun c cell ->
        Buffer.add_string buf (Printf.sprintf "%s%-*s" (if c = 0 then "  " else "  ") widths.(c) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  Buffer.add_string buf "  ";
  Array.iteri
    (fun c w ->
      if c > 0 then Buffer.add_string buf "--";
      Buffer.add_string buf (String.make w '-'))
    widths;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let fig4 rows =
  let data_rows =
    List.map
      (fun (r : Pwcet.Report_data.row) ->
        let ff, srb, rw = Pwcet.Report_data.normalized r in
        [ r.Pwcet.Report_data.name
        ; string_of_int r.Pwcet.Report_data.wcet_ff
        ; string_of_int r.Pwcet.Report_data.pwcet_none
        ; string_of_int r.Pwcet.Report_data.pwcet_srb
        ; string_of_int r.Pwcet.Report_data.pwcet_rw
        ; Printf.sprintf "%.3f" ff
        ; Printf.sprintf "%.3f" srb
        ; Printf.sprintf "%.3f" rw
        ; Printf.sprintf "%.1f%%" (100.0 *. Pwcet.Report_data.gain_srb r)
        ; Printf.sprintf "%.1f%%" (100.0 *. Pwcet.Report_data.gain_rw r)
        ; string_of_int (Pwcet.Report_data.category r)
        ])
      rows
  in
  render
    ~header:
      [ "benchmark"; "wcet_ff"; "pwcet none"; "pwcet srb"; "pwcet rw"; "ff/none"; "srb/none"
      ; "rw/none"; "gain srb"; "gain rw"; "cat"
      ]
    ~rows:data_rows

let aggregates rows =
  let avg_rw, avg_srb = Pwcet.Report_data.average_gains rows in
  let min_srb_name, min_srb = Pwcet.Report_data.min_gain rows Pwcet.Report_data.gain_srb in
  let min_rw_name, min_rw = Pwcet.Report_data.min_gain rows Pwcet.Report_data.gain_rw in
  let counts = Array.make 5 0 in
  List.iter
    (fun r ->
      let c = Pwcet.Report_data.category r in
      counts.(c) <- counts.(c) + 1)
    rows;
  Printf.sprintf
    "  average gain: RW %.1f%%, SRB %.1f%%  (paper: 48%% and 40%%)\n\
    \  minimum gain: SRB %.1f%% (%s), RW %.1f%% (%s)  (paper: SRB 25%% on ud, RW 26%% on fft)\n\
    \  categories:   1:%d  2:%d  3:%d  4:%d\n"
    (100.0 *. avg_rw) (100.0 *. avg_srb) (100.0 *. min_srb) min_srb_name (100.0 *. min_rw)
    min_rw_name counts.(1) counts.(2) counts.(3) counts.(4)

(** Plain-text tables for the evaluation output. *)

val render : header:string list -> rows:string list list -> string
(** Column-aligned table with a separator under the header.
    @raise Invalid_argument when a row width differs from the header. *)

val fig4 : Pwcet.Report_data.row list -> string
(** The Fig. 4 table: per benchmark, normalised fault-free / SRB / RW
    pWCETs, per-mechanism gains and the behavioural category. *)

val aggregates : Pwcet.Report_data.row list -> string
(** The Section IV-B in-text numbers: average and minimum gains. *)

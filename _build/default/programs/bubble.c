// Bubble sort with an early-exit flag and a checksum, in mini-C.

int arr[32] = {71, 13, 55, 8, 99, 2, 67, 30, 12, 26, 18, 60, 40, 44, 5, 77,
               21, 89, 34, 1, 95, 47, 62, 3, 80, 16, 58, 24, 91, 7, 50, 37};

int main() {
  int swapped = 1;
  int pass = 0;
  while (swapped > 0 && pass < 31) __bound(31) {
    swapped = 0;
    for (j = 0; j < 31; j++) {
      if (arr[j] > arr[j + 1]) {
        int t = arr[j];
        arr[j] = arr[j + 1];
        arr[j + 1] = t;
        swapped = 1;
      }
    }
    pass = pass + 1;
  }
  int sum = 0;
  for (k = 0; k < 32; k++) {
    sum = sum + arr[k] * (k + 1);
  }
  return sum;
}

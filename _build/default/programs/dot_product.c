// Dot product of two vectors, written in mini-C concrete syntax.
// Analyze with:  dune exec bin/pwcet_tool.exe -- analyze programs/dot_product.c

int xs[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
int ys[16] = {2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32};

int main() {
  int acc = 0;
  for (k = 0; k < 16; k++) {
    acc = acc + xs[k] * ys[k];
  }
  return acc;
}

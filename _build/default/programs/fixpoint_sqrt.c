// Integer square roots by Newton iteration over a table of inputs.

int inputs[10] = {4, 100, 144, 1024, 7, 99, 65535, 31, 2000, 123456};

int isqrt(int x) {
  if (x <= 0) { return 0; }
  int r = x;
  if (r > 46340) { r = 46340; }
  for (it = 0; it < 20; it++) {
    int next = (r + x / r) / 2;
    if (next < r) { r = next; }
  }
  return r;
}

int main() {
  int sum = 0;
  for (k = 0; k < 10; k++) {
    sum = sum + isqrt(inputs[k]);
  }
  return sum;
}

test/minic_gen.ml: Array List Minic Printf QCheck2

test/test_benchmarks.ml: Alcotest Array Benchmarks Cache Cache_analysis Cfg Hashtbl Ipet Isa List Minic Option Printf Pwcet Random

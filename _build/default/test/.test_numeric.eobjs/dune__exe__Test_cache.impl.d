test/test_cache.ml: Alcotest Cache List QCheck2 QCheck_alcotest Random

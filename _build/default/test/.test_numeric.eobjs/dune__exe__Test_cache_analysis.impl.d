test/test_cache_analysis.ml: Alcotest Array Cache Cache_analysis Cfg Hashtbl Isa List Minic Option Printf Random

test/test_cache_analysis.mli:

test/test_cfg.ml: Alcotest Array Cfg Hashtbl Instr Isa List Minic Option Program Reg

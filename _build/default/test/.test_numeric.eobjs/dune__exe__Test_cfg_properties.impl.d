test/test_cfg_properties.ml: Alcotest Array Benchmarks Cfg List Minic Minic_gen QCheck2 QCheck_alcotest

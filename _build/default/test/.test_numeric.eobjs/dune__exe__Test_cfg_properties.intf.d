test/test_cfg_properties.mli:

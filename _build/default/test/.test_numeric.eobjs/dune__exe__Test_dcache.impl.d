test/test_dcache.ml: Alcotest Array Benchmarks Cache Cache_analysis Cfg Dcache Isa List Minic Option Printf Pwcet Random

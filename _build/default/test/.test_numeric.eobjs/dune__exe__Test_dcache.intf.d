test/test_dcache.mli:

test/test_differential.ml: Alcotest Benchmarks Format Isa List Minic Minic_gen QCheck2 QCheck_alcotest

test/test_ilp.ml: Alcotest Array Ilp List Numeric QCheck2 QCheck_alcotest

test/test_ilp.mli:

test/test_ipet.ml: Alcotest Array Cache Cache_analysis Cfg Ipet Isa List Minic Printf Random

test/test_ipet.mli:

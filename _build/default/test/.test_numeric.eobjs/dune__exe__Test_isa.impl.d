test/test_isa.ml: Alcotest Instr Isa Machine Option Program Reg

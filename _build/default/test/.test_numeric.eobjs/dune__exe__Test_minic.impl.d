test/test_minic.ml: Alcotest Ast Compile Format Isa List Minic String Typecheck

test/test_misc.ml: Alcotest Benchmarks Cache Format Ilp Isa List Minic Option Pwcet String

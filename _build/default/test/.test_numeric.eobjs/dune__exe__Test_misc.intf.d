test/test_misc.mli:

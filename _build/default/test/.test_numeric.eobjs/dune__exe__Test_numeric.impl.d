test/test_numeric.ml: Alcotest Float List Numeric Printf QCheck2 QCheck_alcotest String

test/test_numeric.mli:

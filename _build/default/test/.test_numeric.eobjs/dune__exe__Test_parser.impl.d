test/test_parser.ml: Alcotest Array Benchmarks Cache Filename Isa List Minic Option Pwcet String Sys

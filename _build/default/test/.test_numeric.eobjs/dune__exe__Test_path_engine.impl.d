test/test_path_engine.ml: Alcotest Benchmarks Cache Cache_analysis Cfg Instr Ipet Isa List Minic Option Printf Program Reg

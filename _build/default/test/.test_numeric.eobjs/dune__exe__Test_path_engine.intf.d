test/test_path_engine.mli:

test/test_prob.ml: Alcotest Array Cache Fault Float List Numeric Printf Prob Random

test/test_pwcet.ml: Alcotest Array Benchmarks Cache Fault Float Isa List Minic Option Printf Prob Pwcet Random

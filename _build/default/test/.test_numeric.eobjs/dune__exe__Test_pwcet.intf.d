test/test_pwcet.mli:

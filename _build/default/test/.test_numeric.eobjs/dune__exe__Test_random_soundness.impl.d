test/test_random_soundness.ml: Alcotest Array Cache Cfg Dcache Format Isa Minic Minic_gen Pwcet QCheck2 QCheck_alcotest Random

test/test_random_soundness.mli:

test/test_reporting.ml: Alcotest List Pwcet Reporting String

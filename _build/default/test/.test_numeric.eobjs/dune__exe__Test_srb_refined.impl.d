test/test_srb_refined.ml: Alcotest Array Benchmarks Cache Cache_analysis Cfg Fault Float Ipet Isa List Minic Option Printf Prob Pwcet Random

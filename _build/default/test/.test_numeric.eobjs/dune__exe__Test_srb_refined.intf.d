test/test_srb_refined.mli:

(* Random mini-C program generation, shared by the differential and
   random-soundness test suites. Only defined behaviour is generated:
   array indices are masked into bounds (power-of-two sizes), divisors
   are forced non-zero, every function returns explicitly, loops have
   constant bounds and read-only indices. *)

open Minic.Ast

(* --- random program generation ------------------------------------------- *)

let arr_size = 8 (* power of two so [e & 7] is always in bounds *)

type genv = {
  scalars : string list;  (* readable scalar variables *)
  assignable : string list;  (* scalars that may be written (loop indices excluded) *)
  arrays : string list;
  funcs : (string * int) list;  (* callable functions with arity *)
  depth : int;  (* expression depth budget *)
  stmt_depth : int;  (* statement nesting budget: bounds loop nests *)
}

open QCheck2.Gen

let gen_const = int_range (-1000) 1000

let arith_op = oneofl [ Add; Sub; Mul; Bitand; Bitor; Bitxor ]
let cmp_op = oneofl [ Lt; Le; Gt; Ge; Eq; Ne ]

let rec gen_expr env =
  if env.depth <= 0 then gen_leaf env
  else
    let sub = { env with depth = env.depth - 1 } in
    frequency
      ([ (3, gen_leaf env)
       ; (4, map2 (fun op (a, b) -> Binop (op, a, b)) arith_op (pair (gen_expr sub) (gen_expr sub)))
       ; (2, map2 (fun op (a, b) -> Binop (op, a, b)) cmp_op (pair (gen_expr sub) (gen_expr sub)))
       ; (1, map (fun e -> Unop (Neg, e)) (gen_expr sub))
       ; (1, map (fun e -> Unop (Bitnot, e)) (gen_expr sub))
       ; (1, map (fun e -> Unop (Lognot, e)) (gen_expr sub))
       ; (1, map2 (fun a b -> Binop (Logand, a, b)) (gen_expr sub) (gen_expr sub))
       ; (1, map2 (fun a b -> Binop (Logor, a, b)) (gen_expr sub) (gen_expr sub))
       ; (1, map2 (fun a b -> Binop (Shl, a, Binop (Bitand, b, Int 7))) (gen_expr sub) (gen_expr sub))
       ; (1, map2 (fun a b -> Binop (Ashr, a, Binop (Bitand, b, Int 7))) (gen_expr sub) (gen_expr sub))
       ; (* Division with a guaranteed non-zero divisor. *)
         ( 1,
           map2
             (fun a b -> Binop (Div, a, Binop (Bitor, Binop (Bitand, b, Int 7), Int 1)))
             (gen_expr sub) (gen_expr sub) )
       ; ( 1,
           map2
             (fun a b -> Binop (Mod, a, Binop (Bitor, Binop (Bitand, b, Int 7), Int 1)))
             (gen_expr sub) (gen_expr sub) )
       ]
      @ (match env.arrays with
        | [] -> []
        | arrays ->
          [ ( 2,
              let* name = oneofl arrays in
              let* idx = gen_expr sub in
              return (Index (name, Binop (Bitand, idx, Int (arr_size - 1)))) )
          ])
      @
      match env.funcs with
      | [] -> []
      | funcs ->
        [ ( 1,
            let* name, arity = oneofl funcs in
            let* args = list_size (return arity) (gen_expr sub) in
            return (Call (name, args)) )
        ])

and gen_leaf env =
  match env.scalars with
  | [] -> map (fun v -> Int v) gen_const
  | scalars ->
    frequency [ (2, map (fun v -> Int v) gen_const); (3, map (fun v -> Var v) (oneofl scalars)) ]

(* Statements; returns the block plus the scalars it declares. *)
let rec gen_block env size =
  if size <= 0 then return []
  else
    let* stmt, env' = gen_stmt env in
    let* rest = gen_block env' (size - 1) in
    return (stmt :: rest)

and gen_stmt env =
  let sub = { env with depth = 2 } in
  let nested = { sub with depth = 1; stmt_depth = env.stmt_depth - 1 } in
  frequency
    ([ (* declare a fresh scalar *)
       ( 2,
         let name = Printf.sprintf "v%d" (List.length env.scalars) in
         let* e = gen_expr sub in
         return
           ( Decl (name, e),
             { env with scalars = name :: env.scalars; assignable = name :: env.assignable } ) )
     ]
    @ (match env.assignable with
      | [] -> []
      | assignable ->
        [ ( 3,
            let* name = oneofl assignable in
            let* e = gen_expr sub in
            return (Assign (name, e), env) )
        ])
    @ (match env.arrays with
      | [] -> []
      | arrays ->
        [ ( 2,
            let* name = oneofl arrays in
            let* idx = gen_expr sub in
            let* e = gen_expr sub in
            return (Store (name, Binop (Bitand, idx, Int (arr_size - 1)), e), env) )
        ])
    @
    if env.stmt_depth <= 0 then []
    else
      [ ( 2,
          let* c = gen_expr sub in
          let* then_ = gen_block nested 2 in
          let* else_ = gen_block nested 2 in
          return (If (c, then_, else_), env) )
      ; ( 1,
          let idx_name = Printf.sprintf "k%d" (List.length env.scalars) in
          let* n = int_range 1 6 in
          (* The index is readable in the body but never assignable. *)
          let* body = gen_block { nested with scalars = idx_name :: nested.scalars } 2 in
          return
            (For { index = idx_name; start = Int 0; stop = Int n; bound = None; body }, env) )
      ])

let gen_program =
  let* helper_body_expr =
    gen_expr
      { scalars = [ "x" ]; assignable = []; arrays = [ "ga" ]; funcs = []; depth = 3
      ; stmt_depth = 0 }
  in
  let* init = list_size (return arr_size) gen_const in
  let env =
    { scalars = []; assignable = []; arrays = [ "ga" ]; funcs = [ ("helper", 1) ]; depth = 3
    ; stmt_depth = 3 }
  in
  let* body = gen_block env 6 in
  let* result = gen_expr { env with scalars = List.concat_map (fun s -> match s with Decl (n, _) -> [ n ] | _ -> []) body @ env.scalars } in
  return
    {
      globals = [ ("ga", Array (Array.of_list init)) ];
      funcs =
        [ { fname = "helper"; params = [ "x" ]; body = [ Return (Some helper_body_expr) ] }
        ; { fname = "main"; params = []; body = body @ [ Return (Some result) ] }
        ];
    }


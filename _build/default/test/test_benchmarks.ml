(* Tests for the benchmark suite: every program must compile, validate,
   terminate, produce the oracle's result where one is defined, have an
   analysable CFG with bounded loops, and respect WCET soundness against
   fault-free and faulty simulation. *)

module R = Benchmarks.Registry
module C = Cache.Config

let config = C.paper_default

let compiled_cache : (string, Minic.Compile.compiled) Hashtbl.t = Hashtbl.create 32

let compiled_of (e : R.entry) =
  match Hashtbl.find_opt compiled_cache e.R.name with
  | Some c -> c
  | None ->
    let c = Minic.Compile.compile e.R.program in
    Hashtbl.add compiled_cache e.R.name c;
    c

let test_suite_shape () =
  Alcotest.(check int) "25 benchmarks" 25 (List.length R.all);
  let names = R.names in
  Alcotest.(check int) "unique names" 25 (List.length (List.sort_uniq compare names));
  (* The paper's four discussed benchmarks are present. *)
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " present") true (R.find n <> None))
    [ "adpcm"; "matmult"; "fft"; "ud" ];
  Alcotest.(check bool) "find miss" true (R.find "nonexistent" = None)

let test_all_compile () =
  List.iter (fun e -> ignore (compiled_of e)) R.all

let test_all_terminate () =
  List.iter
    (fun e ->
      let r = Minic.Compile.run (compiled_of e) in
      match r.Isa.Machine.status with
      | Isa.Machine.Halted -> ()
      | Isa.Machine.Out_of_fuel -> Alcotest.failf "%s did not terminate" e.R.name)
    R.all

(* Functional correctness against the OCaml oracles. *)
let expected_results =
  [ ("insertsort", Benchmarks.Insertsort.expected)
  ; ("bsort100", Benchmarks.Bsort100.expected)
  ; ("cnt", Benchmarks.Cnt.expected)
  ; ("matmult", Benchmarks.Matmult.expected)
  ; ("prime", Benchmarks.Prime.expected)
  ; ("crc", Benchmarks.Crc.expected)
  ; ("cover", Benchmarks.Cover.expected)
  ; ("lcdnum", Benchmarks.Lcdnum.expected)
  ; ("ns", Benchmarks.Ns.expected)
  ; ("janne_complex", Benchmarks.Janne_complex.expected) (* extras *)
  ; ("st", Benchmarks.St.expected)
  ; ("ndes", Benchmarks.Ndes.expected)
  ; ("qsort_exam", Benchmarks.Qsort_exam.expected)
  ; ("statemate", Benchmarks.Statemate.expected)
  ; ("fir", Benchmarks.Fir.expected)
  ; ("fft", Benchmarks.Fft.expected)
  ; ("ludcmp", Benchmarks.Ludcmp.expected)
  ; ("ud", Benchmarks.Ud.expected)
  ; ("minver", Benchmarks.Minver.expected)
  ; ("adpcm", Benchmarks.Adpcm.expected)
  ; ("fdct", Benchmarks.Fdct.expected)
  ; ("jfdctint", Benchmarks.Jfdctint.expected)
  ; ("nsichneu", Benchmarks.Nsichneu.expected)
  ; ("fibcall", 832040)
  ; ("bs", -93) (* found at 7, not-found -1 weighted by 100 *)
  ]

let test_expected_results () =
  List.iter
    (fun (name, expected) ->
      let e = Option.get (R.find name) in
      let r = Minic.Compile.run (compiled_of e) in
      Alcotest.(check int) name expected r.Isa.Machine.return_value)
    expected_results

let test_cfg_and_loops () =
  List.iter
    (fun e ->
      let compiled = compiled_of e in
      let graph = Cfg.Graph.build compiled.Minic.Compile.program in
      let loops = Cfg.Loop.detect graph in
      (* Every benchmark loops, except statemate which is deliberately
         straight-line (the category-1 workload). *)
      if e.R.name <> "statemate" then
        Alcotest.(check bool) (e.R.name ^ " has loops") true (List.length loops > 0);
      List.iter
        (fun (l : Cfg.Loop.loop) ->
          Alcotest.(check bool) (e.R.name ^ " bound positive") true (l.Cfg.Loop.bound >= 0))
        loops)
    R.all

let test_footprint_spread () =
  (* The suite must span both sides of the 1 KB cache for Fig. 4's
     categories to be meaningful. *)
  let sizes =
    List.map
      (fun e -> 4 * Isa.Program.instruction_count (compiled_of e).Minic.Compile.program)
      R.all
  in
  Alcotest.(check bool) "some fit in 1KB" true (List.exists (fun s -> s <= 1024) sizes);
  Alcotest.(check bool) "some exceed 1KB" true (List.exists (fun s -> s > 1024) sizes);
  Alcotest.(check bool) "some exceed 2KB" true (List.exists (fun s -> s > 2048) sizes)

let test_wcet_sound_fault_free () =
  List.iter
    (fun e ->
      let compiled = compiled_of e in
      let task = Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config () in
      let sim = Cache.Lru.create config in
      let cycles =
        (Minic.Compile.run ~fetch:(Cache.Lru.latency_oracle sim) compiled).Isa.Machine.cycles
      in
      let wcet = Pwcet.Estimator.fault_free_wcet task in
      Alcotest.(check bool)
        (Printf.sprintf "%s: sim %d <= wcet %d" e.R.name cycles wcet)
        true (cycles <= wcet))
    R.all

(* Faulty execution against the FMM decomposition, one random fault map
   per benchmark per mechanism. *)
let test_wcet_sound_with_faults () =
  let state = Random.State.make [| 4242 |] in
  List.iter
    (fun e ->
      let compiled = compiled_of e in
      let program = compiled.Minic.Compile.program in
      let graph = Cfg.Graph.build program in
      let loops = Cfg.Loop.detect graph in
      let chmc = Cache_analysis.Chmc.analyze ~graph ~loops ~config () in
      let wcet_ff = (Ipet.Wcet.compute ~graph ~loops ~chmc ~config ()).Ipet.Wcet.wcet in
      let penalty = C.miss_penalty config in
      let fm = Cache.Fault_map.sample config ~pbf:0.25 state in
      let counts = Cache.Fault_map.faulty_counts fm in
      let bound fmm counts =
        let total = ref wcet_ff in
        Array.iteri
          (fun s f -> total := !total + (Pwcet.Fmm.misses fmm ~set:s ~faulty:f * penalty))
          counts;
        !total
      in
      (* No protection. *)
      let fmm_none =
        Pwcet.Fmm.compute ~graph ~loops ~config ~mechanism:Pwcet.Mechanism.No_protection ()
      in
      let sim = Cache.Lru.create ~fault_map:fm config in
      let cyc =
        (Minic.Compile.run ~fetch:(Cache.Lru.latency_oracle sim) compiled).Isa.Machine.cycles
      in
      Alcotest.(check bool) (e.R.name ^ " none") true (cyc <= bound fmm_none counts);
      (* SRB. *)
      let fmm_srb =
        Pwcet.Fmm.compute ~graph ~loops ~config
          ~mechanism:Pwcet.Mechanism.Shared_reliable_buffer ()
      in
      let srb = Cache.Reliable.Srb.create ~fault_map:fm config in
      let cyc_srb =
        (Minic.Compile.run ~fetch:(Cache.Reliable.Srb.latency_oracle srb) compiled)
          .Isa.Machine.cycles
      in
      Alcotest.(check bool) (e.R.name ^ " srb") true (cyc_srb <= bound fmm_srb counts);
      (* RW. *)
      let fmm_rw =
        Pwcet.Fmm.compute ~graph ~loops ~config ~mechanism:Pwcet.Mechanism.Reliable_way ()
      in
      let rw = Cache.Reliable.rw_cache ~fault_map:fm config in
      let rw_counts = Cache.Fault_map.faulty_counts (Cache.Fault_map.mask_way fm ~way:0) in
      let cyc_rw =
        (Minic.Compile.run ~fetch:(Cache.Lru.latency_oracle rw) compiled).Isa.Machine.cycles
      in
      Alcotest.(check bool) (e.R.name ^ " rw") true (cyc_rw <= bound fmm_rw rw_counts))
    R.all

let () =
  Alcotest.run "benchmarks"
    [ ( "suite",
        [ Alcotest.test_case "shape" `Quick test_suite_shape
        ; Alcotest.test_case "all compile" `Quick test_all_compile
        ; Alcotest.test_case "all terminate" `Quick test_all_terminate
        ; Alcotest.test_case "oracle results" `Quick test_expected_results
        ; Alcotest.test_case "cfg + loops" `Quick test_cfg_and_loops
        ; Alcotest.test_case "footprint spread" `Quick test_footprint_spread
        ] )
    ; ( "wcet soundness",
        [ Alcotest.test_case "fault-free" `Quick test_wcet_sound_fault_free
        ; Alcotest.test_case "with faults (all mechanisms)" `Slow test_wcet_sound_with_faults
        ] )
    ]

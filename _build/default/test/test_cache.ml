(* Tests for the concrete cache simulators: LRU semantics, fault
   handling, and the RW / SRB mechanisms, including the monotonicity
   ordering RW >= SRB >= unprotected that underpins the paper's Fig. 3/4
   curves. *)

module C = Cache.Config
module FM = Cache.Fault_map
module Lru = Cache.Lru
module R = Cache.Reliable

let cfg2x2 = C.make ~sets:2 ~ways:2 ~line_bytes:16 ()
let paper = C.paper_default

(* --- config ----------------------------------------------------------- *)

let test_config_paper () =
  Alcotest.(check int) "1KB" 1024 (C.size_bytes paper);
  Alcotest.(check int) "K bits" 128 (C.block_bits paper);
  Alcotest.(check int) "penalty" 99 (C.miss_penalty paper);
  Alcotest.(check int) "set mapping" 1 (C.set_of_address paper 16);
  Alcotest.(check int) "wraps around" 0 (C.set_of_address paper (16 * 16))

let test_config_invalid () =
  let bad f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad (fun () -> C.make ~sets:3 ~ways:2 ~line_bytes:16 ());
  bad (fun () -> C.make ~sets:4 ~ways:0 ~line_bytes:16 ());
  bad (fun () -> C.make ~sets:4 ~ways:2 ~line_bytes:12 ());
  bad (fun () -> C.make ~sets:4 ~ways:2 ~line_bytes:16 ~hit_latency:5 ~miss_latency:2 ())

(* --- fault maps ------------------------------------------------------- *)

let test_fault_map_counts () =
  let fm = FM.of_faulty_counts cfg2x2 [| 1; 2 |] in
  Alcotest.(check int) "set0 working" 1 (FM.working_in_set fm 0);
  Alcotest.(check int) "set1 working" 0 (FM.working_in_set fm 1);
  Alcotest.(check int) "total" 3 (FM.total_faulty fm);
  Alcotest.(check bool) "faulty pos" true (FM.is_faulty fm ~set:0 ~way:0);
  Alcotest.(check bool) "working pos" false (FM.is_faulty fm ~set:0 ~way:1)

let test_mask_way () =
  let fm = FM.of_faulty_counts cfg2x2 [| 2; 1 |] in
  let masked = FM.mask_way fm ~way:0 in
  Alcotest.(check int) "set0 regains way0" 1 (FM.working_in_set masked 0);
  Alcotest.(check int) "set1 regains way0" 2 (FM.working_in_set masked 1);
  (* Original is unchanged (persistent op). *)
  Alcotest.(check int) "original set0" 0 (FM.working_in_set fm 0)

let test_sample_extremes () =
  let st = Random.State.make [| 42 |] in
  let all = FM.sample paper ~pbf:1.0 st in
  Alcotest.(check int) "pbf=1 all faulty" (16 * 4) (FM.total_faulty all);
  let none = FM.sample paper ~pbf:0.0 st in
  Alcotest.(check int) "pbf=0 none faulty" 0 (FM.total_faulty none)

(* --- LRU -------------------------------------------------------------- *)

(* Two sets, two ways; blocks 0,2,4 map to set 0 and 1,3,5 to set 1. *)
let test_lru_basic () =
  let c = Lru.create cfg2x2 in
  Alcotest.(check bool) "cold miss" false (Lru.access_block c 0);
  Alcotest.(check bool) "hit" true (Lru.access_block c 0);
  Alcotest.(check bool) "second block miss" false (Lru.access_block c 2);
  Alcotest.(check bool) "both resident" true (Lru.access_block c 0);
  Alcotest.(check (list int)) "MRU order" [ 0; 2 ] (Lru.contents c 0);
  (* Third block evicts LRU (block 2). *)
  Alcotest.(check bool) "capacity miss" false (Lru.access_block c 4);
  Alcotest.(check (list int)) "evicted 2" [ 4; 0 ] (Lru.contents c 0);
  Alcotest.(check bool) "2 gone" false (Lru.access_block c 2);
  Alcotest.(check int) "hits" 2 (Lru.hits c);
  Alcotest.(check int) "misses" 4 (Lru.misses c)

let test_lru_sets_independent () =
  let c = Lru.create cfg2x2 in
  ignore (Lru.access_block c 0);
  ignore (Lru.access_block c 1);
  ignore (Lru.access_block c 3);
  ignore (Lru.access_block c 5);
  (* Set 1 thrashed, set 0 untouched since. *)
  Alcotest.(check bool) "set0 unaffected" true (Lru.access_block c 0)

let test_lru_reduced_capacity () =
  let fm = FM.of_faulty_counts cfg2x2 [| 1; 0 |] in
  let c = Lru.create ~fault_map:fm cfg2x2 in
  ignore (Lru.access_block c 0);
  Alcotest.(check bool) "1-way set still hits" true (Lru.access_block c 0);
  ignore (Lru.access_block c 2);
  Alcotest.(check bool) "conflict in 1-way set" false (Lru.access_block c 0)

let test_lru_dead_set () =
  let fm = FM.of_faulty_counts cfg2x2 [| 2; 0 |] in
  let c = Lru.create ~fault_map:fm cfg2x2 in
  ignore (Lru.access_block c 0);
  Alcotest.(check bool) "fully faulty set never hits" false (Lru.access_block c 0);
  Alcotest.(check (list int)) "stores nothing" [] (Lru.contents c 0);
  (* Other set unaffected. *)
  ignore (Lru.access_block c 1);
  Alcotest.(check bool) "other set fine" true (Lru.access_block c 1)

let test_latency_oracle () =
  let c = Lru.create cfg2x2 in
  Alcotest.(check int) "miss latency" 100 (Lru.latency_oracle c 0);
  Alcotest.(check int) "hit latency" 1 (Lru.latency_oracle c 4)
  (* addr 4 is in the same 16-byte block as addr 0 *)

let test_reset () =
  let c = Lru.create cfg2x2 in
  ignore (Lru.access_block c 0);
  Lru.reset c;
  Alcotest.(check bool) "cold again" false (Lru.access_block c 0);
  Alcotest.(check int) "counters cleared" 1 (Lru.misses c)

(* --- RW ---------------------------------------------------------------- *)

let test_rw_rescues_dead_set () =
  let fm = FM.of_faulty_counts cfg2x2 [| 2; 2 |] in
  let c = R.rw_cache ~fault_map:fm cfg2x2 in
  ignore (Lru.access_block c 0);
  Alcotest.(check bool) "RW keeps one way alive" true (Lru.access_block c 0);
  (* But only one way: a second block conflicts. *)
  ignore (Lru.access_block c 2);
  Alcotest.(check bool) "direct-mapped behaviour" false (Lru.access_block c 0)

(* --- SRB ---------------------------------------------------------------- *)

let test_srb_only_for_dead_sets () =
  let fm = FM.of_faulty_counts cfg2x2 [| 2; 0 |] in
  let c = R.Srb.create ~fault_map:fm cfg2x2 in
  (* Set 1 healthy: normal path, buffer untouched. *)
  ignore (R.Srb.access_block c 1);
  Alcotest.(check int) "no SRB traffic" 0 (R.Srb.srb_accesses c);
  Alcotest.(check (option int)) "buffer empty" None (R.Srb.srb_contents c);
  (* Set 0 dead: buffer path. *)
  Alcotest.(check bool) "first SRB access misses" false (R.Srb.access_block c 0);
  Alcotest.(check bool) "SRB hit" true (R.Srb.access_block c 0);
  Alcotest.(check (option int)) "buffer holds 0" (Some 0) (R.Srb.srb_contents c);
  (* Another dead-set block steals the single buffer. *)
  Alcotest.(check bool) "buffer reload" false (R.Srb.access_block c 4);
  Alcotest.(check bool) "0 evicted from buffer" false (R.Srb.access_block c 0)

let test_srb_paper_example () =
  (* Paper Section III-B.2: stream a1 a2 b1 b2 a1 a2 with ai and bi in
     distinct (fully faulty) sets. With one shared buffer, the second
     occurrences of a2/b2 hit, while a1 reloads after b's series. *)
  let fm = FM.of_faulty_counts cfg2x2 [| 2; 2 |] in
  let c = R.Srb.create ~fault_map:fm cfg2x2 in
  (* a1 a2: two addresses of the same block (block 0, set 0);
     b1 b2: block 1, set 1. *)
  let a1 = 0 and a2 = 4 and b1 = 16 and b2 = 20 in
  let results = List.map (R.Srb.access c) [ a1; a2; b1; b2; a1; a2 ] in
  Alcotest.(check (list bool)) "a1 a2 b1 b2 a1 a2"
    [ false; true; false; true; false; true ]
    results

let test_srb_matches_lru_when_no_dead_set () =
  let fm = FM.of_faulty_counts cfg2x2 [| 1; 1 |] in
  let srb = R.Srb.create ~fault_map:fm cfg2x2 in
  let lru = Lru.create ~fault_map:fm cfg2x2 in
  let trace = [ 0; 2; 0; 4; 2; 1; 3; 1; 0 ] in
  List.iter
    (fun b ->
      Alcotest.(check bool) "identical behaviour" (Lru.access_block lru b)
        (R.Srb.access_block srb b))
    trace

(* --- ordering properties ------------------------------------------------ *)

let gen_trace =
  QCheck2.Gen.(list_size (int_range 1 300) (int_range 0 31))

let gen_fault_counts ways sets = QCheck2.Gen.(array_size (return sets) (int_range 0 ways))

let count_hits access trace =
  List.fold_left (fun acc b -> if access b then acc + 1 else acc) 0 trace

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)

let ordering_props =
  let cfg = C.make ~sets:4 ~ways:2 ~line_bytes:16 () in
  [ prop "RW >= SRB >= unprotected hits"
      QCheck2.Gen.(pair gen_trace (gen_fault_counts 2 4))
      (fun (trace, counts) ->
        let fm = FM.of_faulty_counts cfg counts in
        let plain = Lru.create ~fault_map:fm cfg in
        let rw = R.rw_cache ~fault_map:fm cfg in
        let srb = R.Srb.create ~fault_map:fm cfg in
        let h_plain = count_hits (Lru.access_block plain) trace in
        let h_rw = count_hits (Lru.access_block rw) trace in
        let h_srb = count_hits (R.Srb.access_block srb) trace in
        h_rw >= h_srb && h_srb >= h_plain)
  ; prop "fault-free cache dominates faulty"
      QCheck2.Gen.(pair gen_trace (gen_fault_counts 2 4))
      (fun (trace, counts) ->
        let fm = FM.of_faulty_counts cfg counts in
        let faulty = Lru.create ~fault_map:fm cfg in
        let clean = Lru.create cfg in
        count_hits (Lru.access_block clean) trace >= count_hits (Lru.access_block faulty) trace)
  ; prop "hits + misses = accesses" gen_trace (fun trace ->
        let c = Lru.create cfg in
        List.iter (fun b -> ignore (Lru.access_block c b)) trace;
        Lru.hits c + Lru.misses c = List.length trace)
  ; prop "LRU stack property (inclusion in ways)"
      gen_trace
      (fun trace ->
        (* A 2-way cache's contents are always a prefix-superset of the
           1-way cache's: every 1-way hit is a 2-way hit. *)
        let small = Lru.create (C.make ~sets:4 ~ways:1 ~line_bytes:16 ()) in
        let big = Lru.create (C.make ~sets:4 ~ways:2 ~line_bytes:16 ()) in
        List.for_all
          (fun b ->
            let h_small = Lru.access_block small b in
            let h_big = Lru.access_block big b in
            (not h_small) || h_big)
          trace)
  ]

let () =
  Alcotest.run "cache"
    [ ( "config",
        [ Alcotest.test_case "paper default" `Quick test_config_paper
        ; Alcotest.test_case "invalid" `Quick test_config_invalid
        ] )
    ; ( "fault map",
        [ Alcotest.test_case "counts" `Quick test_fault_map_counts
        ; Alcotest.test_case "mask way" `Quick test_mask_way
        ; Alcotest.test_case "sample extremes" `Quick test_sample_extremes
        ] )
    ; ( "lru",
        [ Alcotest.test_case "basic" `Quick test_lru_basic
        ; Alcotest.test_case "sets independent" `Quick test_lru_sets_independent
        ; Alcotest.test_case "reduced capacity" `Quick test_lru_reduced_capacity
        ; Alcotest.test_case "dead set" `Quick test_lru_dead_set
        ; Alcotest.test_case "latency oracle" `Quick test_latency_oracle
        ; Alcotest.test_case "reset" `Quick test_reset
        ] )
    ; ("rw", [ Alcotest.test_case "rescues dead set" `Quick test_rw_rescues_dead_set ])
    ; ( "srb",
        [ Alcotest.test_case "only for dead sets" `Quick test_srb_only_for_dead_sets
        ; Alcotest.test_case "paper stream example" `Quick test_srb_paper_example
        ; Alcotest.test_case "matches lru otherwise" `Quick test_srb_matches_lru_when_no_dead_set
        ] )
    ; ("properties", ordering_props)
    ]

(* Tests for CFG recovery: block structure, interprocedural expansion,
   dominance, loop detection, and conformance of the graph with real
   execution traces from the interpreter. *)

open Isa
module G = Cfg.Graph
module D = Cfg.Dominance
module L = Cfg.Loop

let ins i = Program.Ins i
let label l = Program.Label l

let assemble ?(bounds = []) functions =
  Program.assemble { src_functions = functions; src_bounds = bounds }

let compile_minic ?(globals = []) funcs =
  (Minic.Compile.compile (Minic.Dsl.program ~globals funcs)).Minic.Compile.program

(* --- basic block structure -------------------------------------------- *)

let test_straightline () =
  let p = assemble [ ("main", [ ins Instr.Nop; ins Instr.Nop; ins Instr.Halt ]) ] in
  let g = G.build p in
  Alcotest.(check int) "single block" 1 (G.node_count g);
  Alcotest.(check (list int)) "exit" [ 0 ] g.G.exits;
  Alcotest.(check int) "covers all" 3 (G.node g 0).G.len

let test_diamond () =
  let p =
    assemble
      [ ( "main",
          [ ins (Instr.Beqz (Instr.Eq, Reg.t0, "else"))
          ; ins Instr.Nop
          ; ins (Instr.J "join")
          ; label "else"
          ; ins Instr.Nop
          ; label "join"
          ; ins Instr.Halt
          ] )
      ]
  in
  let g = G.build p in
  Alcotest.(check int) "4 blocks" 4 (G.node_count g);
  (* Entry has two successors; both lead to the join. *)
  Alcotest.(check int) "entry succ" 2 (List.length (G.successors g g.G.entry));
  let join = List.hd g.G.exits in
  Alcotest.(check int) "join preds" 2 (List.length (G.predecessors g join))

let test_addresses () =
  let p = assemble [ ("main", [ ins Instr.Nop; ins Instr.Halt ]) ] in
  let g = G.build p in
  Alcotest.(check (list int)) "addresses" [ 0x400000; 0x400004 ] (G.addresses g (G.node g 0))

(* --- interprocedural expansion ----------------------------------------- *)

let callee_body = [ ins (Instr.Alu (Instr.Add, Reg.v0, Reg.a0, Reg.a0)); ins (Instr.Jr Reg.ra) ]

let test_call_expansion () =
  let p =
    assemble
      [ ( "main",
          [ ins (Instr.Jal "f"); ins (Instr.Jal "f"); ins Instr.Halt ] )
      ; ("f", callee_body)
      ]
  in
  let g = G.build p in
  (* Two call sites -> two copies of f's single block, sharing the same
     instruction range but with different contexts. *)
  let f_start = (Option.get (Program.find_function p "f")).Program.fn_start in
  let copies =
    Array.to_list g.G.nodes |> List.filter (fun nd -> nd.G.first = f_start)
  in
  Alcotest.(check int) "two copies of f" 2 (List.length copies);
  let contexts = List.map (fun nd -> nd.G.context) copies in
  Alcotest.(check bool) "distinct contexts" true
    (match contexts with [ a; b ] -> a <> b | _ -> false)

let test_recursion_rejected () =
  let p =
    assemble
      [ ("main", [ ins (Instr.Jal "f"); ins Instr.Halt ])
      ; ("f", [ ins (Instr.Jal "f"); ins (Instr.Jr Reg.ra) ])
      ]
  in
  match G.build p with
  | exception G.Build_error _ -> ()
  | _ -> Alcotest.fail "expected Build_error on recursion"

let test_jal_mid_function_rejected () =
  let p =
    assemble
      [ ("main", [ ins (Instr.Jal "inside"); ins Instr.Halt ])
      ; ("f", [ ins Instr.Nop; label "inside"; ins (Instr.Jr Reg.ra) ])
      ]
  in
  match G.build p with
  | exception G.Build_error _ -> ()
  | _ -> Alcotest.fail "expected Build_error on jal into function body"

let test_fall_off_end_rejected () =
  let p = assemble [ ("main", [ ins Instr.Nop ]) ] in
  match G.build p with
  | exception G.Build_error _ -> ()
  | _ -> Alcotest.fail "expected Build_error on fall-through at function end"

(* --- dominance ---------------------------------------------------------- *)

let test_dominance_diamond () =
  let p =
    assemble
      [ ( "main",
          [ ins (Instr.Beqz (Instr.Eq, Reg.t0, "else"))
          ; ins Instr.Nop
          ; ins (Instr.J "join")
          ; label "else"
          ; ins Instr.Nop
          ; label "join"
          ; ins Instr.Halt
          ] )
      ]
  in
  let g = G.build p in
  let dom = D.compute g in
  let join = List.hd g.G.exits in
  Alcotest.(check bool) "entry dom join" true (D.dominates dom g.G.entry join);
  Alcotest.(check bool) "join not dom entry" false (D.dominates dom join g.G.entry);
  (* Neither branch arm dominates the join. *)
  Array.iter
    (fun nd ->
      if nd.G.id <> g.G.entry && nd.G.id <> join then
        Alcotest.(check bool) "arm not dom join" false (D.dominates dom nd.G.id join))
    g.G.nodes;
  Alcotest.(check (option int)) "idom of join" (Some g.G.entry) (D.idom dom join)

(* --- loops -------------------------------------------------------------- *)

let test_simple_loop () =
  let p =
    assemble
      ~bounds:[ ("loop", 10) ]
      [ ( "main",
          [ ins (Instr.Li (Reg.t0, 10))
          ; label "loop"
          ; ins (Instr.Alui (Instr.Add, Reg.t0, Reg.t0, -1))
          ; ins (Instr.Beqz (Instr.Gtz, Reg.t0, "loop"))
          ; ins Instr.Halt
          ] )
      ]
  in
  let g = G.build p in
  let loops = L.detect g in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check int) "bound" 10 l.L.bound;
  Alcotest.(check int) "one back edge" 1 (List.length l.L.back_edges);
  Alcotest.(check int) "one entry edge" 1 (List.length l.L.entry_edges)

let test_missing_bound () =
  let p =
    assemble
      [ ( "main",
          [ label "loop"
          ; ins (Instr.Beqz (Instr.Eq, Reg.t0, "done"))
          ; ins (Instr.J "loop")
          ; label "done"
          ; ins Instr.Halt
          ] )
      ]
  in
  let g = G.build p in
  match L.detect g with
  | exception L.Loop_error _ -> ()
  | _ -> Alcotest.fail "expected Loop_error for missing bound"

let test_irreducible_rejected () =
  (* Two mutually-jumping blocks, each entered from outside: classic
     irreducible shape. *)
  let p =
    assemble
      [ ( "main",
          [ ins (Instr.Beqz (Instr.Eq, Reg.t0, "b"))
          ; label "a"
          ; ins (Instr.Beqz (Instr.Eq, Reg.t1, "exit"))
          ; ins (Instr.J "b")
          ; label "b"
          ; ins (Instr.Beqz (Instr.Eq, Reg.t2, "exit"))
          ; ins (Instr.J "a")
          ; label "exit"
          ; ins Instr.Halt
          ] )
      ]
  in
  let g = G.build p in
  match L.detect g with
  | exception L.Loop_error _ -> ()
  | _ -> Alcotest.fail "expected Loop_error for irreducible graph"

let test_nested_loops_minic () =
  let open Minic.Dsl in
  let p =
    compile_minic
      [ fn "main" []
          [ decl "s" (i 0)
          ; for_ "a" (i 0) (i 5) [ for_ "b" (i 0) (i 7) [ set "s" (v "s" +: i 1) ] ]
          ; ret (v "s")
          ]
      ]
  in
  let g = G.build p in
  let loops = L.detect g in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let bounds = List.sort compare (List.map (fun l -> l.L.bound) loops) in
  Alcotest.(check (list int)) "bounds" [ 5; 7 ] bounds;
  (* The inner loop body is contained in the outer one. *)
  let outer = List.find (fun l -> l.L.bound = 5) loops in
  let inner = List.find (fun l -> l.L.bound = 7) loops in
  List.iter
    (fun u -> Alcotest.(check bool) "inner in outer" true (List.mem u outer.L.body))
    inner.L.body

(* --- trace conformance --------------------------------------------------- *)

(* Every consecutive pair of block leaders in a real execution trace must
   correspond to an edge of the CFG (matched on instruction ranges). *)
let check_trace_conformance compiled =
  let program = compiled.Minic.Compile.program in
  let g = G.build program in
  let starts = Hashtbl.create 64 in
  Array.iter
    (fun nd -> Hashtbl.replace starts nd.G.first (nd :: Option.value ~default:[] (Hashtbl.find_opt starts nd.G.first)))
    g.G.nodes;
  let edge_exists u_first v_first =
    Array.exists
      (fun nd ->
        nd.G.first = u_first
        && List.exists (fun s -> (G.node g s).G.first = v_first) (G.successors g nd.G.id))
      g.G.nodes
  in
  let trace = ref [] in
  ignore (Minic.Compile.run ~on_fetch:(fun a -> trace := a :: !trace) compiled);
  let indices = List.rev_map (Program.index_of_address program) !trace in
  (* Walk the trace, extracting block-leader transitions. *)
  let is_leader = Hashtbl.mem starts in
  let rec walk current = function
    | [] -> ()
    | idx :: rest ->
      if is_leader idx && idx <> current then begin
        (* The previous block must have an edge to this leader. *)
        if not (edge_exists current idx) then
          Alcotest.failf "no CFG edge for executed transition %d -> %d" current idx;
        walk idx rest
      end
      else walk current rest
  in
  (match indices with
  | [] -> Alcotest.fail "empty trace"
  | first :: rest ->
    Alcotest.(check int) "starts at entry" (G.node g g.G.entry).G.first first;
    walk first rest)

let test_trace_conformance_loop () =
  let open Minic.Dsl in
  check_trace_conformance
    (Minic.Compile.compile
       (program
          [ fn "main" []
              [ decl "s" (i 0)
              ; for_ "k" (i 0) (i 6)
                  [ if_ (v "k" %: i 2 ==: i 0) [ set "s" (v "s" +: v "k") ]
                      [ set "s" (v "s" -: i 1) ]
                  ]
              ; ret (v "s")
              ]
          ]))

let test_trace_conformance_calls () =
  let open Minic.Dsl in
  check_trace_conformance
    (Minic.Compile.compile
       (program
          [ fn "main" [] [ ret (call "f" [ i 3 ] +: call "f" [ i 4 ]) ]
          ; fn "f" [ "x" ] [ ret (call "g" [ v "x" ] *: i 2) ]
          ; fn "g" [ "x" ] [ ret (v "x" +: i 1) ]
          ]))

let () =
  Alcotest.run "cfg"
    [ ( "blocks",
        [ Alcotest.test_case "straightline" `Quick test_straightline
        ; Alcotest.test_case "diamond" `Quick test_diamond
        ; Alcotest.test_case "addresses" `Quick test_addresses
        ] )
    ; ( "interprocedural",
        [ Alcotest.test_case "call expansion" `Quick test_call_expansion
        ; Alcotest.test_case "recursion rejected" `Quick test_recursion_rejected
        ; Alcotest.test_case "jal mid-function" `Quick test_jal_mid_function_rejected
        ; Alcotest.test_case "fall off end" `Quick test_fall_off_end_rejected
        ] )
    ; ("dominance", [ Alcotest.test_case "diamond" `Quick test_dominance_diamond ])
    ; ( "loops",
        [ Alcotest.test_case "simple loop" `Quick test_simple_loop
        ; Alcotest.test_case "missing bound" `Quick test_missing_bound
        ; Alcotest.test_case "irreducible" `Quick test_irreducible_rejected
        ; Alcotest.test_case "nested (minic)" `Quick test_nested_loops_minic
        ] )
    ; ( "trace conformance",
        [ Alcotest.test_case "loop+if" `Quick test_trace_conformance_loop
        ; Alcotest.test_case "calls" `Quick test_trace_conformance_calls
        ] )
    ]

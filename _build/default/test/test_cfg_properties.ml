(* Property tests for the CFG analyses on CFGs of randomly generated
   programs: the dominator computation is cross-checked against a
   brute-force definition (a dominates b iff removing a disconnects b
   from the entry), and natural loops must satisfy their structural
   invariants (header dominates body, bodies nest or are disjoint,
   back-edge sources inside the body). *)

module G = Cfg.Graph
module D = Cfg.Dominance
module L = Cfg.Loop

let graph_of program =
  let compiled = Minic.Compile.compile program in
  G.build compiled.Minic.Compile.program

(* Brute force: b reachable from entry avoiding a? *)
let reachable_avoiding g ~avoiding ~target =
  let n = G.node_count g in
  let seen = Array.make n false in
  let rec dfs u =
    if (not seen.(u)) && u <> avoiding then begin
      seen.(u) <- true;
      List.iter dfs (G.successors g u)
    end
  in
  if g.G.entry <> avoiding then dfs g.G.entry;
  seen.(target)

let reachable_set g =
  let n = G.node_count g in
  let seen = Array.make n false in
  let rec dfs u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter dfs (G.successors g u)
    end
  in
  dfs g.G.entry;
  seen

let check_dominance g =
  let dom = D.compute g in
  let reachable = reachable_set g in
  let n = G.node_count g in
  (* Brute force is quadratic in nodes x edges; random programs stay
     small enough. *)
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if reachable.(a) && reachable.(b) then begin
        let brute =
          a = b || not (reachable_avoiding g ~avoiding:a ~target:b)
        in
        if D.dominates dom a b <> brute then
          Alcotest.failf "dominates %d %d: fast %b brute %b" a b (D.dominates dom a b) brute
      end
    done
  done;
  (* idom really is a dominator and no strictly-closer one exists. *)
  for b = 0 to n - 1 do
    if reachable.(b) then
      match D.idom dom b with
      | None -> ()
      | Some a ->
        if not (D.dominates dom a b) then Alcotest.failf "idom %d of %d not a dominator" a b
  done

let check_loops g =
  match L.detect g with
  | exception L.Loop_error _ -> () (* bound-less hand assembly never happens here *)
  | loops ->
    let dom = D.compute g in
    List.iter
      (fun (l : L.loop) ->
        (* Header in body; header dominates every body node. *)
        if not (List.mem l.L.header l.L.body) then Alcotest.fail "header outside body";
        List.iter
          (fun u ->
            if not (D.dominates dom l.L.header u) then
              Alcotest.failf "header %d does not dominate body node %d" l.L.header u)
          l.L.body;
        (* Back edges start in the body and end at the header. *)
        List.iter
          (fun (src, dst) ->
            if dst <> l.L.header then Alcotest.fail "back edge not to header";
            if not (List.mem src l.L.body) then Alcotest.fail "back edge from outside")
          l.L.back_edges;
        (* Entry edges come from outside. *)
        List.iter
          (fun (src, dst) ->
            if dst <> l.L.header then Alcotest.fail "entry edge not to header";
            if List.mem src l.L.body then Alcotest.fail "entry edge from inside")
          l.L.entry_edges)
      loops;
    (* Loop bodies nest or are disjoint. *)
    List.iteri
      (fun i a ->
        List.iteri
          (fun j b ->
            if i < j then begin
              let inter =
                List.filter (fun u -> List.mem u b.L.body) a.L.body |> List.length
              in
              let la = List.length a.L.body and lb = List.length b.L.body in
              if not (inter = 0 || inter = min la lb) then
                Alcotest.fail "loop bodies overlap without nesting"
            end)
          loops)
      loops

let dominance_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:80 ~name:"dominators match brute force" Minic_gen.gen_program
       (fun program ->
         (match graph_of program with
         | exception Minic.Typecheck.Error _ -> ()
         | g -> check_dominance g);
         true))

let loops_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:80 ~name:"natural-loop invariants" Minic_gen.gen_program
       (fun program ->
         (match graph_of program with
         | exception Minic.Typecheck.Error _ -> ()
         | g -> check_loops g);
         true))

(* The benchmark CFGs as fixed heavy cases. *)
let test_benchmarks () =
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let g = graph_of e.Benchmarks.Registry.program in
      if G.node_count g <= 400 then check_dominance g;
      check_loops g)
    (Benchmarks.Registry.all @ Benchmarks.Registry.extras)

let () =
  Alcotest.run "cfg_properties"
    [ ( "random programs",
        [ dominance_prop; loops_prop; Alcotest.test_case "benchmark CFGs" `Slow test_benchmarks ]
      )
    ]

(* Tests for the data-cache extension: compiler annotations, the
   data-cache CHMC, the combined I+D WCET, fault-miss maps for the data
   cache, and end-to-end soundness against simulation with both caches
   and sampled fault maps. *)

module C = Cache.Config
module FM = Cache.Fault_map
module Chmc = Cache_analysis.Chmc
module D = Dcache.Destimator

let iconfig = C.paper_default
let dconfig = C.paper_default

let compile prog = Minic.Compile.compile prog

let scalar_loop =
  let open Minic.Dsl in
  program
    ~globals:[ scalar "g" 5 ]
    [ fn "main" []
        [ decl "s" (i 0)
        ; for_ "k" (i 0) (i 20) [ set "s" (v "s" +: v "g") ]
        ; ret (v "s")
        ]
    ]

let array_loop =
  let open Minic.Dsl in
  program
    ~globals:[ array_n "big" 64 (fun k -> k) ]
    [ fn "main" []
        [ decl "s" (i 0)
        ; for_ "k" (i 0) (i 64) [ set "s" (v "s" +: idx "big" (v "k")) ]
        ; ret (v "s")
        ]
    ]

(* --- annotations ------------------------------------------------------------ *)

let test_annotations_cover_all_memory_ops () =
  List.iter
    (fun prog ->
      let compiled = compile prog in
      let annotated = List.map fst compiled.Minic.Compile.data_refs in
      let program = compiled.Minic.Compile.program in
      for k = 0 to Isa.Program.instruction_count program - 1 do
        match Isa.Program.instruction program k with
        | Isa.Instr.Lw _ | Isa.Instr.Sw _ | Isa.Instr.Lb _ | Isa.Instr.Sb _ ->
          Alcotest.(check bool) (Printf.sprintf "instr %d annotated" k) true
            (List.mem k annotated)
        | _ ->
          Alcotest.(check bool) (Printf.sprintf "instr %d not annotated" k) false
            (List.mem k annotated)
      done)
    [ scalar_loop; array_loop ]

let test_annotation_kinds () =
  let compiled = compile scalar_loop in
  let g_addr = List.assoc "g" compiled.Minic.Compile.global_addresses in
  let kinds = List.map snd compiled.Minic.Compile.data_refs in
  Alcotest.(check bool) "reads g exactly" true
    (List.exists (fun t -> t = Minic.Compile.Data_exact g_addr) kinds);
  Alcotest.(check bool) "has stack traffic" true
    (List.exists (fun t -> t = Minic.Compile.Data_stack) kinds);
  let compiled2 = compile array_loop in
  let base = List.assoc "big" compiled2.Minic.Compile.global_addresses in
  Alcotest.(check bool) "array load is a range" true
    (List.exists
       (fun t -> t = Minic.Compile.Data_range { base; bytes = 256 })
       (List.map snd compiled2.Minic.Compile.data_refs))

(* --- data-cache classification ------------------------------------------------ *)

let danalysis_of prog =
  let compiled = compile prog in
  let graph = Cfg.Graph.build compiled.Minic.Compile.program in
  let loops = Cfg.Loop.detect graph in
  let annot = Dcache.Annot.build graph compiled.Minic.Compile.data_refs in
  (compiled, Dcache.Danalysis.analyze ~graph ~loops ~config:dconfig ~annot ())

let count_classes d =
  Dcache.Danalysis.fold_loads
    (fun ~node:_ ~offset:_ cls (ah, fm, nc) ->
      match cls with
      | Chmc.Always_hit -> (ah + 1, fm, nc)
      | Chmc.First_miss _ -> (ah, fm + 1, nc)
      | Chmc.Always_miss | Chmc.Not_classified -> (ah, fm, nc + 1))
    d (0, 0, 0)

let test_scalar_loads_classified () =
  let _, d = danalysis_of scalar_loop in
  let ah, fm, nc = count_classes d in
  (* The single global scalar: one first-miss, re-reads always-hit. *)
  Alcotest.(check int) "no unclassified" 0 nc;
  Alcotest.(check bool) "one cold miss" true (fm >= 1);
  Alcotest.(check bool) "hits exist" true (ah >= 0 || fm > 0)

let test_array_loads_unclassified () =
  let _, d = danalysis_of array_loop in
  let _, _, nc = count_classes d in
  (* 64-word array spans 16 blocks: the load is imprecise. *)
  Alcotest.(check bool) "imprecise -> NC" true (nc >= 1)

let test_single_block_array_is_precise () =
  let open Minic.Dsl in
  let prog =
    program
      ~globals:[ array_n "tiny" 4 (fun k -> k) ]  (* 16 bytes: one block *)
      [ fn "main" []
          [ decl "s" (i 0)
          ; for_ "k" (i 0) (i 4) [ set "s" (v "s" +: idx "tiny" (v "k")) ]
          ; ret (v "s")
          ]
      ]
  in
  let _, d = danalysis_of prog in
  let ah, fm, nc = count_classes d in
  Alcotest.(check int) "no unclassified" 0 nc;
  Alcotest.(check bool) "classified" true (ah + fm >= 1)

let test_interval_narrowing () =
  (* A bounded loop index over a slice of a large array: the annotation
     narrows to the slice; here the slice fits one block, so the load
     becomes precise and fully classified. *)
  let open Minic.Dsl in
  let prog =
    program
      ~globals:[ array_n "big" 64 (fun k -> k) ]
      [ fn "main" []
          [ decl "s" (i 0)
          ; for_ "k" (i 0) (i 4) [ set "s" (v "s" +: idx "big" (v "k")) ]
          ; ret (v "s")
          ]
      ]
  in
  let compiled = compile prog in
  let base = List.assoc "big" compiled.Minic.Compile.global_addresses in
  Alcotest.(check bool) "narrowed to 16 bytes" true
    (List.exists
       (fun (_, t) -> t = Minic.Compile.Data_range { base; bytes = 16 })
       compiled.Minic.Compile.data_refs);
  let _, d = danalysis_of prog in
  let _, _, nc = count_classes d in
  Alcotest.(check int) "slice load fully classified" 0 nc;
  (* An affine index over a wider slice narrows but stays imprecise. *)
  let prog2 =
    program
      ~globals:[ array_n "big" 64 (fun k -> k) ]
      [ fn "main" []
          [ decl "s" (i 0)
          ; for_ "k" (i 0) (i 8) [ set "s" (v "s" +: idx "big" ((v "k" *: i 2) +: i 16)) ]
          ; ret (v "s")
          ]
      ]
  in
  let compiled2 = compile prog2 in
  let base2 = List.assoc "big" compiled2.Minic.Compile.global_addresses in
  (* k*2+16 over k in [0,8) spans words [16, 30] -> 60 bytes at offset 64. *)
  Alcotest.(check bool) "affine narrowing" true
    (List.exists
       (fun (_, t) -> t = Minic.Compile.Data_range { base = base2 + 64; bytes = 60 })
       compiled2.Minic.Compile.data_refs)

(* --- combined WCET soundness ---------------------------------------------------- *)

let simulate_both ?ifm ?dfm compiled =
  let isim =
    match ifm with
    | Some fm -> Cache.Lru.create ~fault_map:fm iconfig
    | None -> Cache.Lru.create iconfig
  in
  let doracle =
    match dfm with
    | Some fm -> Dcache.Dsim.unprotected ~fault_map:fm dconfig
    | None -> Dcache.Dsim.fault_free dconfig
  in
  (Minic.Compile.run ~fetch:(Cache.Lru.latency_oracle isim) ~data_access:doracle compiled)
    .Isa.Machine.cycles

let test_combined_wcet_sound_all_benchmarks () =
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let compiled = compile e.Benchmarks.Registry.program in
      let task = D.prepare ~compiled ~iconfig ~dconfig () in
      let sim = simulate_both compiled in
      Alcotest.(check bool)
        (Printf.sprintf "%s: sim %d <= wcet %d" e.Benchmarks.Registry.name sim
           task.D.wcet_ff)
        true
        (sim <= task.D.wcet_ff))
    Benchmarks.Registry.all

let test_combined_wcet_exceeds_icache_only () =
  let entry = Option.get (Benchmarks.Registry.find "matmult") in
  let compiled = compile entry.Benchmarks.Registry.program in
  let task = D.prepare ~compiled ~iconfig ~dconfig () in
  let itask = Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config:iconfig () in
  Alcotest.(check bool) "data adds cost" true
    (task.D.wcet_ff > Pwcet.Estimator.fault_free_wcet itask)

(* --- data FMM -------------------------------------------------------------------- *)

let test_dfmm_monotone_and_rw () =
  let compiled = compile scalar_loop in
  let task = D.prepare ~compiled ~iconfig ~dconfig () in
  let est =
    D.estimate task ~pfail:1e-4 ~imech:Pwcet.Mechanism.No_protection
      ~dmech:Pwcet.Mechanism.No_protection ()
  in
  for s = 0 to dconfig.C.sets - 1 do
    for f = 1 to dconfig.C.ways do
      Alcotest.(check bool) "monotone" true
        (D.dfmm_misses est ~set:s ~faulty:f >= D.dfmm_misses est ~set:s ~faulty:(f - 1))
    done
  done;
  (* The scalar's set has fault-induced misses in the dead column. *)
  let total_dead = ref 0 in
  for s = 0 to dconfig.C.sets - 1 do
    total_dead := !total_dead + D.dfmm_misses est ~set:s ~faulty:dconfig.C.ways
  done;
  Alcotest.(check bool) "dead set hurts the scalar" true (!total_dead >= 1)

let test_mechanism_ordering () =
  let entry = Option.get (Benchmarks.Registry.find "crc") in
  let compiled = compile entry.Benchmarks.Registry.program in
  let task = D.prepare ~compiled ~iconfig ~dconfig () in
  let p imech dmech =
    D.pwcet (D.estimate task ~pfail:1e-4 ~imech ~dmech ()) ~target:1e-15
  in
  let none = p Pwcet.Mechanism.No_protection Pwcet.Mechanism.No_protection in
  let rw = p Pwcet.Mechanism.Reliable_way Pwcet.Mechanism.Reliable_way in
  let srb = p Pwcet.Mechanism.Shared_reliable_buffer Pwcet.Mechanism.Shared_reliable_buffer in
  Alcotest.(check bool) "ff <= rw" true (task.D.wcet_ff <= rw);
  Alcotest.(check bool) "rw <= srb" true (rw <= srb);
  Alcotest.(check bool) "srb <= none" true (srb <= none)

(* Faulty decomposition across BOTH caches. *)
let test_faulty_decomposition () =
  let state = Random.State.make [| 2718 |] in
  List.iter
    (fun name ->
      let entry = Option.get (Benchmarks.Registry.find name) in
      let compiled = compile entry.Benchmarks.Registry.program in
      let task = D.prepare ~compiled ~iconfig ~dconfig () in
      let est =
        D.estimate task ~pfail:1e-4 ~imech:Pwcet.Mechanism.No_protection
          ~dmech:Pwcet.Mechanism.No_protection ()
      in
      for _ = 1 to 6 do
        let ifm = FM.sample iconfig ~pbf:0.25 state in
        let dfm = FM.sample dconfig ~pbf:0.25 state in
        let sim = simulate_both ~ifm ~dfm compiled in
        let bound = ref task.D.wcet_ff in
        Array.iteri
          (fun s f ->
            bound :=
              !bound
              + (Pwcet.Fmm.misses est.D.ifmm ~set:s ~faulty:f * C.miss_penalty iconfig))
          (FM.faulty_counts ifm);
        Array.iteri
          (fun s f ->
            bound := !bound + (D.dfmm_misses est ~set:s ~faulty:f * C.miss_penalty dconfig))
          (FM.faulty_counts dfm);
        Alcotest.(check bool)
          (Printf.sprintf "%s: sim %d <= bound %d" name sim !bound)
          true (sim <= !bound)
      done)
    [ "fibcall"; "crc"; "bs"; "cnt"; "insertsort" ]

(* --- simulator oracle semantics ---------------------------------------------------- *)

let test_dsim_semantics () =
  let oracle = Dcache.Dsim.fault_free dconfig in
  let data_addr = 0x1000_0040 in
  Alcotest.(check int) "cold load misses" 100 (oracle data_addr ~write:false);
  Alcotest.(check int) "reload hits" 1 (oracle data_addr ~write:false);
  Alcotest.(check int) "stores are free" 0 (oracle 0x1000_0080 ~write:true);
  Alcotest.(check int) "stack is scratchpad" 0 (oracle 0x7FFF_FF00 ~write:false);
  (* Stores do not allocate: a store then load still misses. *)
  let oracle2 = Dcache.Dsim.fault_free dconfig in
  ignore (oracle2 0x1000_0100 ~write:true);
  Alcotest.(check int) "no write-allocate" 100 (oracle2 0x1000_0100 ~write:false)

let () =
  Alcotest.run "dcache"
    [ ( "annotations",
        [ Alcotest.test_case "cover all memory ops" `Quick test_annotations_cover_all_memory_ops
        ; Alcotest.test_case "kinds" `Quick test_annotation_kinds
        ] )
    ; ( "classification",
        [ Alcotest.test_case "scalars" `Quick test_scalar_loads_classified
        ; Alcotest.test_case "arrays imprecise" `Quick test_array_loads_unclassified
        ; Alcotest.test_case "single-block array" `Quick test_single_block_array_is_precise
        ; Alcotest.test_case "interval narrowing" `Quick test_interval_narrowing
        ] )
    ; ( "combined wcet",
        [ Alcotest.test_case "sound on all benchmarks" `Quick
            test_combined_wcet_sound_all_benchmarks
        ; Alcotest.test_case "exceeds I-only" `Quick test_combined_wcet_exceeds_icache_only
        ] )
    ; ( "fault dimension",
        [ Alcotest.test_case "dfmm monotone" `Quick test_dfmm_monotone_and_rw
        ; Alcotest.test_case "mechanism ordering" `Quick test_mechanism_ordering
        ; Alcotest.test_case "decomposition (both caches)" `Quick test_faulty_decomposition
        ] )
    ; ("simulator", [ Alcotest.test_case "oracle semantics" `Quick test_dsim_semantics ])
    ]

(* Differential testing of the mini-C compiler: random programs must
   produce identical results through [Compile] + [Isa.Machine] and
   through the independent AST interpreter [Minic.Interp]. The generator
   lives in [Minic_gen]. *)

(* --- the differential property -------------------------------------------- *)

let machine_result program =
  let compiled = Minic.Compile.compile program in
  let r = Minic.Compile.run ~max_steps:5_000_000 compiled in
  match r.Isa.Machine.status with
  | Isa.Machine.Halted -> r.Isa.Machine.return_value
  | Isa.Machine.Out_of_fuel -> failwith "machine out of fuel"

let differential =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"compiled = interpreted"
       ~print:(fun p -> Format.asprintf "%a" Minic.Ast.pp_program p)
       Minic_gen.gen_program (fun program ->
         match (machine_result program, Minic.Interp.run program) with
         | a, b -> a = b
         | exception Minic.Typecheck.Error _ ->
           (* The generator occasionally shadows a name; skip. *)
           QCheck2.assume_fail ()
         | exception Failure _ ->
           (* Pathological shrunk instance exceeded the step budget. *)
           QCheck2.assume_fail ()))

(* The 26 hand-written benchmarks double as fixed differential cases. *)
let test_benchmarks_agree () =
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let machine = machine_result e.Benchmarks.Registry.program in
      let interp = Minic.Interp.run ~fuel:50_000_000 e.Benchmarks.Registry.program in
      Alcotest.(check int) e.Benchmarks.Registry.name machine interp)
    (Benchmarks.Registry.all @ Benchmarks.Registry.extras)

let () =
  Alcotest.run "differential"
    [ ( "compiler vs interpreter",
        [ differential; Alcotest.test_case "benchmark suite" `Quick test_benchmarks_agree ] )
    ]

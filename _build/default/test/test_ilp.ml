(* Tests for the exact LP/ILP solver: textbook instances, edge cases
   (degeneracy, equality constraints, negative right-hand sides,
   infeasible and unbounded models), and randomized cross-validation of
   branch-and-bound against brute-force enumeration. *)

module Lp = Ilp.Lp
module Simplex = Ilp.Simplex
module BB = Ilp.Branch_bound
module Solver = Ilp.Solver
module Rat = Numeric.Rat

let rat = Alcotest.testable Rat.pp Rat.equal

let expect_optimal = function
  | Simplex.Optimal sol -> sol
  | Simplex.Infeasible -> Alcotest.fail "unexpected Infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected Unbounded"

(* --- simplex ------------------------------------------------------------ *)

let test_textbook_max () =
  (* max 3x + 5y st x <= 4; 2y <= 12; 3x + 2y <= 18  -> 36 at (2,6) *)
  let lp = Lp.create () in
  let x = Lp.add_var lp () and y = Lp.add_var lp () in
  Lp.add_constr_int lp [ (x, 1) ] Lp.Le 4;
  Lp.add_constr_int lp [ (y, 2) ] Lp.Le 12;
  Lp.add_constr_int lp [ (x, 3); (y, 2) ] Lp.Le 18;
  Lp.set_objective_int lp [ (x, 3); (y, 5) ];
  let sol = expect_optimal (Simplex.solve lp) in
  Alcotest.check rat "objective" (Rat.of_int 36) sol.Simplex.objective;
  Alcotest.check rat "x" (Rat.of_int 2) sol.Simplex.values.(x);
  Alcotest.check rat "y" (Rat.of_int 6) sol.Simplex.values.(y)

let test_fractional_optimum () =
  (* max x + y st 2x + y <= 3; x + 2y <= 3 -> 2 at (1,1); but
     max 2x + y gives fractional corner with different data:
     max x st 2x <= 3 -> x = 3/2. *)
  let lp = Lp.create () in
  let x = Lp.add_var lp () in
  Lp.add_constr_int lp [ (x, 2) ] Lp.Le 3;
  Lp.set_objective_int lp [ (x, 1) ];
  let sol = expect_optimal (Simplex.solve lp) in
  Alcotest.check rat "3/2" (Rat.of_ints 3 2) sol.Simplex.objective

let test_equality_constraints () =
  (* max x + 2y st x + y = 10; x - y = 2 -> x=6,y=4 -> 14 *)
  let lp = Lp.create () in
  let x = Lp.add_var lp () and y = Lp.add_var lp () in
  Lp.add_constr_int lp [ (x, 1); (y, 1) ] Lp.Eq 10;
  Lp.add_constr_int lp [ (x, 1); (y, -1) ] Lp.Eq 2;
  Lp.set_objective_int lp [ (x, 1); (y, 2) ];
  let sol = expect_optimal (Simplex.solve lp) in
  Alcotest.check rat "objective" (Rat.of_int 14) sol.Simplex.objective

let test_ge_and_negative_rhs () =
  (* max -x st x >= 5 -> -5; also expressed as -x <= -5. *)
  let lp = Lp.create () in
  let x = Lp.add_var lp () in
  Lp.add_constr_int lp [ (x, 1) ] Lp.Ge 5;
  Lp.set_objective_int lp [ (x, -1) ];
  let sol = expect_optimal (Simplex.solve lp) in
  Alcotest.check rat "-5" (Rat.of_int (-5)) sol.Simplex.objective;
  let lp2 = Lp.create () in
  let x2 = Lp.add_var lp2 () in
  Lp.add_constr_int lp2 [ (x2, -1) ] Lp.Le (-5);
  Lp.set_objective_int lp2 [ (x2, -1) ];
  let sol2 = expect_optimal (Simplex.solve lp2) in
  Alcotest.check rat "same model" sol.Simplex.objective sol2.Simplex.objective

let test_infeasible () =
  let lp = Lp.create () in
  let x = Lp.add_var lp () in
  Lp.add_constr_int lp [ (x, 1) ] Lp.Le 3;
  Lp.add_constr_int lp [ (x, 1) ] Lp.Ge 5;
  Lp.set_objective_int lp [ (x, 1) ];
  (match Simplex.solve lp with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected Infeasible")

let test_unbounded () =
  let lp = Lp.create () in
  let x = Lp.add_var lp () and y = Lp.add_var lp () in
  Lp.add_constr_int lp [ (x, 1); (y, -1) ] Lp.Le 4;
  Lp.set_objective_int lp [ (x, 1) ];
  (match Simplex.solve lp with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected Unbounded")

let test_degenerate_cycling_guard () =
  (* Beale's classic cycling example (cycles without Bland's rule). *)
  let lp = Lp.create () in
  let x1 = Lp.add_var lp () and x2 = Lp.add_var lp () in
  let x3 = Lp.add_var lp () and x4 = Lp.add_var lp () in
  let q a b = Rat.of_ints a b in
  Lp.add_constr lp [ (x1, q 1 4); (x2, q (-60) 1); (x3, q (-1) 25); (x4, q 9 1) ] Lp.Le Rat.zero;
  Lp.add_constr lp [ (x1, q 1 2); (x2, q (-90) 1); (x3, q (-1) 50); (x4, q 3 1) ] Lp.Le Rat.zero;
  Lp.add_constr lp [ (x3, q 1 1) ] Lp.Le Rat.one;
  Lp.set_objective lp [ (x1, q 3 4); (x2, q (-150) 1); (x3, q 1 50); (x4, q (-6) 1) ];
  let sol = expect_optimal (Simplex.solve lp) in
  Alcotest.check rat "optimum 1/20" (Rat.of_ints 1 20) sol.Simplex.objective

let test_zero_constraints () =
  (* No constraints, zero objective: optimal 0. *)
  let lp = Lp.create () in
  let _x = Lp.add_var lp () in
  Lp.set_objective_int lp [];
  let sol = expect_optimal (Simplex.solve lp) in
  Alcotest.check rat "0" Rat.zero sol.Simplex.objective

let test_redundant_equalities () =
  (* x + y = 4 stated twice: phase 1 must drop the redundant row. *)
  let lp = Lp.create () in
  let x = Lp.add_var lp () and y = Lp.add_var lp () in
  Lp.add_constr_int lp [ (x, 1); (y, 1) ] Lp.Eq 4;
  Lp.add_constr_int lp [ (x, 1); (y, 1) ] Lp.Eq 4;
  Lp.set_objective_int lp [ (x, 2); (y, 1) ];
  let sol = expect_optimal (Simplex.solve lp) in
  Alcotest.check rat "8" (Rat.of_int 8) sol.Simplex.objective

(* --- branch and bound ---------------------------------------------------- *)

let test_bb_knapsack () =
  (* max 8a + 11b + 6c + 4d st 5a + 7b + 4c + 3d <= 14, vars binary.
     Optimum: a=b=c=1 (16+... 8+11+6=25? weight 5+7+4=16 > 14). Known
     answer: a=1,b=1,d=... let's enumerate: best is 21 (a,b,d: 8+11+4=23,
     weight 15 > 14; b,c,d: 11+6+4=21 weight 14 ok; a,c,d: 18 w 12).
     So 21. *)
  let lp = Lp.create () in
  let vars = Array.init 4 (fun _ -> Lp.add_var lp ()) in
  let w = [| 5; 7; 4; 3 |] and p = [| 8; 11; 6; 4 |] in
  Lp.add_constr_int lp (Array.to_list (Array.mapi (fun i v -> (v, w.(i))) vars)) Lp.Le 14;
  Array.iter (fun v -> Lp.add_constr_int lp [ (v, 1) ] Lp.Le 1) vars;
  Lp.set_objective_int lp (Array.to_list (Array.mapi (fun i v -> (v, p.(i))) vars));
  (match BB.solve lp with
  | BB.Optimal sol ->
    Alcotest.check rat "knapsack optimum" (Rat.of_int 21) sol.Simplex.objective
  | _ -> Alcotest.fail "expected Optimal");
  (* Relaxation is strictly better here (fractional). *)
  let relaxed = expect_optimal (Simplex.solve lp) in
  Alcotest.(check bool) "relaxation is an upper bound" true
    (Rat.compare relaxed.Simplex.objective (Rat.of_int 21) >= 0)

let test_bb_infeasible () =
  let lp = Lp.create () in
  let x = Lp.add_var lp () in
  (* 2x = 3 has a fractional LP solution but no integer one. *)
  Lp.add_constr_int lp [ (x, 2) ] Lp.Eq 3;
  Lp.set_objective_int lp [ (x, 1) ];
  (match BB.solve lp with
  | BB.Infeasible -> ()
  | _ -> Alcotest.fail "expected Infeasible")

let test_solver_facade () =
  let lp = Lp.create () in
  let x = Lp.add_var lp () in
  Lp.add_constr_int lp [ (x, 2) ] Lp.Le 3;
  Lp.set_objective_int lp [ (x, 1) ];
  (match Solver.maximize ~exact:true lp with
  | Solver.Solution o ->
    Alcotest.check rat "integer optimum" (Rat.of_int 1) o.Solver.objective;
    Alcotest.(check bool) "integral" true o.Solver.integral
  | _ -> Alcotest.fail "expected Solution");
  Alcotest.(check int) "ceil of relaxation" 2 (Solver.objective_upper_bound lp)

(* Random small ILPs, brute-forced. All variables in [0, 6]. *)
let brute_force nvars constrs obj =
  let best = ref None in
  let values = Array.make nvars 0 in
  let rec enum v =
    if v = nvars then begin
      let feasible =
        List.for_all
          (fun (coeffs, rel, rhs) ->
            let lhs = List.fold_left (fun acc (i, c) -> acc + (c * values.(i))) 0 coeffs in
            match rel with Lp.Le -> lhs <= rhs | Lp.Ge -> lhs >= rhs | Lp.Eq -> lhs = rhs)
          constrs
      in
      if feasible then begin
        let z = List.fold_left (fun acc (i, c) -> acc + (c * values.(i))) 0 obj in
        match !best with Some b when b >= z -> () | _ -> best := Some z
      end
    end
    else
      for x = 0 to 6 do
        values.(v) <- x;
        enum (v + 1)
      done
  in
  enum 0;
  !best

let gen_ilp =
  QCheck2.Gen.(
    let* nvars = int_range 2 3 in
    let* nconstrs = int_range 1 3 in
    let gen_coeffs = list_size (return nvars) (int_range (-4) 4) in
    let* constrs =
      list_size (return nconstrs)
        (let* cs = gen_coeffs in
         let* rhs = int_range 0 15 in
         return (List.mapi (fun i c -> (i, c)) cs, Lp.Le, rhs))
    in
    let* obj = gen_coeffs in
    return (nvars, constrs, List.mapi (fun i c -> (i, c)) obj))

let bb_matches_brute_force =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150 ~name:"B&B matches brute force" gen_ilp
       (fun (nvars, constrs, obj) ->
         let lp = Lp.create () in
         let vars = Array.init nvars (fun _ -> Lp.add_var lp ()) in
         List.iter
           (fun (coeffs, rel, rhs) ->
             Lp.add_constr_int lp (List.map (fun (i, c) -> (vars.(i), c)) coeffs) rel rhs)
           constrs;
         (* Box so both solvers search the same region. *)
         Array.iter (fun v -> Lp.add_constr_int lp [ (v, 1) ] Lp.Le 6) vars;
         Lp.set_objective_int lp (List.map (fun (i, c) -> (vars.(i), c)) obj);
         let expected = brute_force nvars constrs obj in
         match (BB.solve lp, expected) with
         | BB.Optimal sol, Some z -> Rat.equal sol.Simplex.objective (Rat.of_int z)
         | BB.Infeasible, None -> true
         | _ -> false))

let relaxation_dominates =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150 ~name:"relaxation >= integer optimum" gen_ilp
       (fun (nvars, constrs, obj) ->
         let lp = Lp.create () in
         let vars = Array.init nvars (fun _ -> Lp.add_var lp ()) in
         List.iter
           (fun (coeffs, rel, rhs) ->
             Lp.add_constr_int lp (List.map (fun (i, c) -> (vars.(i), c)) coeffs) rel rhs)
           constrs;
         Array.iter (fun v -> Lp.add_constr_int lp [ (v, 1) ] Lp.Le 6) vars;
         Lp.set_objective_int lp (List.map (fun (i, c) -> (vars.(i), c)) obj);
         match (Simplex.solve lp, BB.solve lp) with
         | Simplex.Optimal r, BB.Optimal z ->
           Rat.compare r.Simplex.objective z.Simplex.objective >= 0
         | Simplex.Infeasible, BB.Infeasible -> true
         | _, BB.Infeasible -> true
         | _ -> false))

let () =
  Alcotest.run "ilp"
    [ ( "simplex",
        [ Alcotest.test_case "textbook" `Quick test_textbook_max
        ; Alcotest.test_case "fractional" `Quick test_fractional_optimum
        ; Alcotest.test_case "equalities" `Quick test_equality_constraints
        ; Alcotest.test_case "ge / negative rhs" `Quick test_ge_and_negative_rhs
        ; Alcotest.test_case "infeasible" `Quick test_infeasible
        ; Alcotest.test_case "unbounded" `Quick test_unbounded
        ; Alcotest.test_case "Beale degeneracy" `Quick test_degenerate_cycling_guard
        ; Alcotest.test_case "empty" `Quick test_zero_constraints
        ; Alcotest.test_case "redundant equalities" `Quick test_redundant_equalities
        ] )
    ; ( "branch-and-bound",
        [ Alcotest.test_case "knapsack" `Quick test_bb_knapsack
        ; Alcotest.test_case "integer infeasible" `Quick test_bb_infeasible
        ; Alcotest.test_case "solver facade" `Quick test_solver_facade
        ] )
    ; ("properties", [ bb_matches_brute_force; relaxation_dominates ])
    ]

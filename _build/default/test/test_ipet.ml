(* Tests for the IPET layer: WCET bounds vs concrete simulation
   (equality on single-path programs, domination in general), loop-bound
   sensitivity, and the fault-induced miss deltas. *)

module C = Cache.Config
module Chmc = Cache_analysis.Chmc

let config = C.paper_default

let prepare prog =
  let compiled = Minic.Compile.compile prog in
  let graph = Cfg.Graph.build compiled.Minic.Compile.program in
  let loops = Cfg.Loop.detect graph in
  let chmc = Chmc.analyze ~graph ~loops ~config () in
  (compiled, graph, loops, chmc)

let wcet_of ?(engine = `Path) ?(exact = false) prog =
  let compiled, graph, loops, chmc = prepare prog in
  let r = Ipet.Wcet.compute ~graph ~loops ~chmc ~config ~engine ~exact () in
  (compiled, r.Ipet.Wcet.wcet)

let simulate ?fault_map compiled =
  let sim = Cache.Lru.create ?fault_map config in
  (Minic.Compile.run ~fetch:(Cache.Lru.latency_oracle sim) compiled).Isa.Machine.cycles

(* --- fault-free WCET ----------------------------------------------------- *)

let test_straightline_exact () =
  let open Minic.Dsl in
  let prog = program [ fn "main" [] [ decl "x" (i 1); set "x" (v "x" +: i 2); ret (v "x") ] ] in
  (* Single path, no loop: both engines must equal the execution. *)
  let compiled, wcet_path = wcet_of ~engine:`Path prog in
  let _, wcet_ilp = wcet_of ~engine:`Ilp prog in
  let sim = simulate compiled in
  Alcotest.(check int) "path = simulation" sim wcet_path;
  Alcotest.(check int) "ilp = simulation" sim wcet_ilp

let test_single_path_loop_exact () =
  let open Minic.Dsl in
  let prog =
    program
      [ fn "main" []
          [ decl "s" (i 0); for_ "k" (i 0) (i 25) [ set "s" (v "s" +: v "k") ]; ret (v "s") ]
      ]
  in
  let compiled, wcet_path = wcet_of ~engine:`Path prog in
  let _, wcet_ilp = wcet_of ~engine:`Ilp prog in
  let sim = simulate compiled in
  Alcotest.(check int) "path = simulation" sim wcet_path;
  Alcotest.(check int) "ilp = simulation" sim wcet_ilp

let test_branches_dominate () =
  let open Minic.Dsl in
  (* Uneven branch: the analysis must take the heavier arm each time,
     while execution alternates. *)
  let heavy = List.init 30 (fun k -> set "s" (v "s" +: i k)) in
  let prog =
    program
      [ fn "main" []
          [ decl "s" (i 0)
          ; for_ "k" (i 0) (i 10)
              [ if_ (v "k" %: i 2 ==: i 0) heavy [ set "s" (v "s" +: i 1) ] ]
          ; ret (v "s")
          ]
      ]
  in
  let compiled, wcet = wcet_of prog in
  let sim = simulate compiled in
  Alcotest.(check bool) "dominates" true (wcet >= sim);
  (* Taking the heavy arm only half the time means the bound is
     noticeably above the simulation. *)
  Alcotest.(check bool) "strictly above" true (wcet > sim)

let test_calls_dominate () =
  let open Minic.Dsl in
  let prog =
    program
      [ fn "main" []
          [ decl "s" (i 0)
          ; for_ "k" (i 0) (i 12) [ set "s" (v "s" +: call "f" [ v "k" ]) ]
          ; ret (v "s")
          ]
      ; fn "f" [ "x" ] [ if_ (v "x" >: i 5) [ ret (v "x" *: i 2) ] [ ret (v "x" +: i 1) ] ]
      ]
  in
  let compiled, wcet = wcet_of prog in
  Alcotest.(check bool) "dominates" true (wcet >= simulate compiled)

let test_loop_bound_scaling () =
  let open Minic.Dsl in
  let make n =
    program
      [ fn "main" []
          [ decl "s" (i 0); for_ "k" (i 0) (i n) [ set "s" (v "s" +: v "k") ]; ret (v "s") ]
      ]
  in
  let _, w10 = wcet_of (make 10) in
  let _, w20 = wcet_of (make 20) in
  let _, w40 = wcet_of (make 40) in
  (* Per-iteration cost is constant once the loop is warm: WCET is
     affine in the bound, so the 20->40 jump is twice the 10->20 one. *)
  Alcotest.(check int) "linear in bound" (2 * (w20 - w10)) (w40 - w20);
  Alcotest.(check bool) "monotone" true (w10 < w20 && w20 < w40)

let test_engines_agree () =
  let open Minic.Dsl in
  let prog =
    program
      [ fn "main" []
          [ decl "s" (i 0)
          ; for_ "k" (i 0) (i 7)
              [ if_ (v "k" >: i 3) [ set "s" (v "s" +: i 2) ] [ set "s" (v "s" -: i 1) ] ]
          ; ret (v "s")
          ]
      ]
  in
  let compiled, relaxed = wcet_of ~engine:`Ilp ~exact:false prog in
  let _, exact = wcet_of ~engine:`Ilp ~exact:true prog in
  let _, path = wcet_of ~engine:`Path prog in
  Alcotest.(check int) "integral relaxation" exact relaxed;
  (* Both engines dominate the simulation; the path engine may charge a
     scoped first-miss the ILP can prove unreachable on the worst path,
     so allow a few cycles of headroom — never more. *)
  let sim = simulate compiled in
  Alcotest.(check bool) "path sound" true (path >= sim);
  Alcotest.(check bool) "ilp sound" true (exact >= sim);
  Alcotest.(check bool) "engines within a few cycles" true (path >= exact && path - exact <= 8)

(* --- deltas (FMM entries) ------------------------------------------------- *)

let delta_for prog ~set ~working =
  let _, graph, loops, baseline = prepare prog in
  let degraded_chmc =
    Chmc.analyze ~graph ~loops ~config
      ~assoc:(fun s -> if s = set then working else config.C.ways)
      ~only_sets:[ set ] ()
  in
  let degraded ~node ~offset = Chmc.classification degraded_chmc ~node ~offset in
  Ipet.Delta.extra_misses ~graph ~loops ~config ~baseline ~degraded ~sets:[ set ] ()

let loop_prog =
  let open Minic.Dsl in
  program
    [ fn "main" []
        [ decl "s" (i 0); for_ "k" (i 0) (i 30) [ set "s" (v "s" +: v "k") ]; ret (v "s") ]
    ]

let test_delta_zero_when_no_faults () =
  for set = 0 to config.C.sets - 1 do
    Alcotest.(check int) "f=0 -> no extra misses" 0 (delta_for loop_prog ~set ~working:config.C.ways)
  done

let test_delta_monotone_in_faults () =
  for set = 0 to config.C.sets - 1 do
    let prev = ref 0 in
    for f = 1 to config.C.ways do
      let d = delta_for loop_prog ~set ~working:(config.C.ways - f) in
      Alcotest.(check bool) (Printf.sprintf "set %d f %d monotone" set f) true (d >= !prev);
      prev := d
    done
  done

let test_delta_dead_set_counts_loop_blocks () =
  (* A dead set turns loop-resident lines into per-iteration misses:
     with 30 iterations the delta for an affected set must be large. *)
  let total_dead =
    List.init config.C.sets (fun set -> delta_for loop_prog ~set ~working:0)
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check bool) "loop blocks dominate" true (total_dead > 30)

(* The central decomposition: faulty execution time is bounded by the
   fault-free WCET plus the per-set deltas of the actual fault counts. *)
let check_decomposition prog fault_counts =
  let compiled, graph, loops, baseline = prepare prog in
  let wcet_ff =
    (Ipet.Wcet.compute ~graph ~loops ~chmc:baseline ~config ()).Ipet.Wcet.wcet
  in
  let penalty_bound =
    Array.to_list (Array.mapi (fun set f -> (set, f)) fault_counts)
    |> List.fold_left
         (fun acc (set, f) ->
           if f = 0 then acc
           else acc + (delta_for prog ~set ~working:(config.C.ways - f) * C.miss_penalty config))
         0
  in
  let fm = Cache.Fault_map.of_faulty_counts config fault_counts in
  let cycles = simulate ~fault_map:fm compiled in
  Alcotest.(check bool)
    (Printf.sprintf "cycles %d <= wcet %d + penalty %d" cycles wcet_ff penalty_bound)
    true
    (cycles <= wcet_ff + penalty_bound)

let test_decomposition_soundness () =
  let state = Random.State.make [| 99 |] in
  let progs =
    let open Minic.Dsl in
    [ loop_prog
    ; program
        [ fn "main" []
            [ decl "s" (i 0)
            ; for_ "k" (i 0) (i 9) [ set "s" (v "s" +: call "f" [ v "k" ]) ]
            ; ret (v "s")
            ]
        ; fn "f" [ "x" ] [ ret (v "x" *: v "x") ]
        ]
    ]
  in
  List.iter
    (fun prog ->
      for _ = 1 to 5 do
        let fc = Array.init config.C.sets (fun _ -> Random.State.int state 5) in
        check_decomposition prog fc
      done;
      check_decomposition prog (Array.make config.C.sets 4);
      check_decomposition prog (Array.make config.C.sets 0))
    progs

let () =
  Alcotest.run "ipet"
    [ ( "wcet",
        [ Alcotest.test_case "straightline exact" `Quick test_straightline_exact
        ; Alcotest.test_case "single-path loop exact" `Quick test_single_path_loop_exact
        ; Alcotest.test_case "branches dominate" `Quick test_branches_dominate
        ; Alcotest.test_case "calls dominate" `Quick test_calls_dominate
        ; Alcotest.test_case "loop bound scaling" `Quick test_loop_bound_scaling
        ; Alcotest.test_case "engines agree" `Quick test_engines_agree
        ] )
    ; ( "delta",
        [ Alcotest.test_case "no faults, no delta" `Quick test_delta_zero_when_no_faults
        ; Alcotest.test_case "monotone in faults" `Quick test_delta_monotone_in_faults
        ; Alcotest.test_case "dead set" `Quick test_delta_dead_set_counts_loop_blocks
        ] )
    ; ( "soundness",
        [ Alcotest.test_case "decomposition bound" `Quick test_decomposition_soundness ] )
    ]

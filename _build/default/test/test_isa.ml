(* Tests for the ISA layer: assembly, address mapping and the
   cycle-counting interpreter. *)

open Isa

let ins i = Program.Ins i
let label l = Program.Label l

let assemble ?bounds items =
  Program.assemble
    { src_functions = [ ("main", items) ]; src_bounds = Option.value bounds ~default:[] }

(* --- assembly --------------------------------------------------------- *)

let test_assemble_addresses () =
  let p = assemble [ ins Instr.Nop; ins Instr.Nop; ins Instr.Halt ] in
  Alcotest.(check int) "count" 3 (Program.instruction_count p);
  Alcotest.(check int) "addr 0" 0x400000 (Program.address_of_index p 0);
  Alcotest.(check int) "addr 2" 0x400008 (Program.address_of_index p 2);
  Alcotest.(check int) "roundtrip" 1 (Program.index_of_address p 0x400004)

let test_assemble_labels () =
  let p =
    assemble
      [ ins (Instr.J "end"); label "mid"; ins Instr.Nop; label "end"; ins Instr.Halt ]
  in
  (match Program.instruction p 0 with
  | Instr.J 2 -> ()
  | _ -> Alcotest.fail "jump not resolved to index 2");
  Alcotest.(check int) "count" 3 (Program.instruction_count p)

let test_assemble_errors () =
  let expect_error items =
    match assemble items with
    | exception Program.Assembly_error _ -> ()
    | _ -> Alcotest.fail "expected Assembly_error"
  in
  expect_error [ ins (Instr.J "nowhere"); ins Instr.Halt ];
  expect_error [ label "a"; label "a"; ins Instr.Halt ];
  expect_error []

let test_assemble_bounds () =
  let p =
    Program.assemble
      {
        src_functions = [ ("main", [ label "loop"; ins Instr.Nop; ins Instr.Halt ]) ];
        src_bounds = [ ("loop", 10) ];
      }
  in
  Alcotest.(check (list (pair int int))) "bounds" [ (0, 10) ] p.Program.loop_bounds

let test_misaligned_address () =
  let p = assemble [ ins Instr.Halt ] in
  Alcotest.check_raises "misaligned" (Invalid_argument "Program.index_of_address: misaligned")
    (fun () -> ignore (Program.index_of_address p 0x400002))

(* --- machine ---------------------------------------------------------- *)

let run ?args ?fetch items = Machine.run ?args ?fetch (assemble items)

let test_simple_arith () =
  let r =
    run
      [ ins (Instr.Li (Reg.t0, 20))
      ; ins (Instr.Li (Reg.t1, 22))
      ; ins (Instr.Alu (Instr.Add, Reg.v0, Reg.t0, Reg.t1))
      ; ins Instr.Halt
      ]
  in
  Alcotest.(check int) "42" 42 r.Machine.return_value;
  Alcotest.(check int) "instructions" 4 r.Machine.instructions;
  Alcotest.(check int) "cycles (1 per fetch)" 4 r.Machine.cycles

let test_zero_register_immutable () =
  let r =
    run
      [ ins (Instr.Li (Reg.zero, 99))
      ; ins (Instr.Alui (Instr.Add, Reg.v0, Reg.zero, 7))
      ; ins Instr.Halt
      ]
  in
  Alcotest.(check int) "$zero stays 0" 7 r.Machine.return_value

let test_branch_loop () =
  (* v0 = sum 1..5 *)
  let r =
    run
      [ ins (Instr.Li (Reg.t0, 5))
      ; ins (Instr.Li (Reg.v0, 0))
      ; label "loop"
      ; ins (Instr.Alu (Instr.Add, Reg.v0, Reg.v0, Reg.t0))
      ; ins (Instr.Alui (Instr.Add, Reg.t0, Reg.t0, -1))
      ; ins (Instr.Beqz (Instr.Gtz, Reg.t0, "loop"))
      ; ins Instr.Halt
      ]
  in
  Alcotest.(check int) "sum" 15 r.Machine.return_value

let test_memory_ops () =
  let r =
    run
      [ ins (Instr.Li (Reg.t0, 0x1000_0000))
      ; ins (Instr.Li (Reg.t1, 1234))
      ; ins (Instr.Sw (Reg.t1, 8, Reg.t0))
      ; ins (Instr.Lw (Reg.v0, 8, Reg.t0))
      ; ins Instr.Halt
      ]
  in
  Alcotest.(check int) "store/load" 1234 r.Machine.return_value

let test_byte_ops () =
  let r =
    run
      [ ins (Instr.Li (Reg.t0, 0x1000_0000))
      ; ins (Instr.Li (Reg.t1, 0x7F))
      ; ins (Instr.Sb (Reg.t1, 1, Reg.t0))
      ; ins (Instr.Li (Reg.t1, -2))
      ; ins (Instr.Sb (Reg.t1, 2, Reg.t0))
      ; ins (Instr.Lb (Reg.t2, 1, Reg.t0))
      ; ins (Instr.Lb (Reg.t3, 2, Reg.t0))
      ; ins (Instr.Alu (Instr.Add, Reg.v0, Reg.t2, Reg.t3))
      ; ins Instr.Halt
      ]
  in
  (* 0x7F + (-2) = 125 *)
  Alcotest.(check int) "bytes with sign extension" 125 r.Machine.return_value

let test_call_return () =
  let p =
    Program.assemble
      {
        src_functions =
          [ ( "main",
              [ ins (Instr.Li (Reg.a0, 4))
              ; ins (Instr.Jal "double")
              ; ins Instr.Halt
              ] )
          ; ( "double",
              [ ins (Instr.Alu (Instr.Add, Reg.v0, Reg.a0, Reg.a0)); ins (Instr.Jr Reg.ra) ] )
          ];
        src_bounds = [];
      }
  in
  let r = Machine.run p in
  Alcotest.(check int) "jal/jr" 8 r.Machine.return_value

let test_wrap32 () =
  let r =
    run
      [ ins (Instr.Li (Reg.t0, 0x7FFF_FFFF))
      ; ins (Instr.Alui (Instr.Add, Reg.v0, Reg.t0, 1))
      ; ins Instr.Halt
      ]
  in
  Alcotest.(check int) "overflow wraps" (-0x8000_0000) r.Machine.return_value

let test_unsigned_ops () =
  let r =
    run
      [ ins (Instr.Li (Reg.t0, -1)) (* 0xFFFFFFFF unsigned *)
      ; ins (Instr.Li (Reg.t1, 1))
      ; ins (Instr.Alu (Instr.Sltu, Reg.t2, Reg.t0, Reg.t1)) (* big < 1 ? no *)
      ; ins (Instr.Alu (Instr.Slt, Reg.t3, Reg.t0, Reg.t1)) (* -1 < 1 ? yes *)
      ; ins (Instr.Shift (Instr.Srlv, Reg.t4, Reg.t0, 28)) (* logical: 0xF *)
      ; ins (Instr.Alu (Instr.Add, Reg.v0, Reg.t2, Reg.t3))
      ; ins (Instr.Alu (Instr.Add, Reg.v0, Reg.v0, Reg.t4))
      ; ins Instr.Halt
      ]
  in
  Alcotest.(check int) "sltu/slt/srl" 16 r.Machine.return_value

let test_division_trap () =
  Alcotest.check_raises "div by zero" (Machine.Trap "division by zero") (fun () ->
      ignore
        (run
           [ ins (Instr.Li (Reg.t0, 1))
           ; ins (Instr.Alu (Instr.Div, Reg.v0, Reg.t0, Reg.zero))
           ; ins Instr.Halt
           ]))

let test_out_of_fuel () =
  let r = Machine.run ~max_steps:10 (assemble [ label "spin"; ins (Instr.J "spin") ]) in
  (match r.Machine.status with
  | Machine.Out_of_fuel -> ()
  | Machine.Halted -> Alcotest.fail "expected Out_of_fuel");
  Alcotest.(check int) "steps" 10 r.Machine.instructions

let test_fetch_oracle_and_trace () =
  let p =
    assemble [ ins Instr.Nop; ins (Instr.J "end"); ins Instr.Nop; label "end"; ins Instr.Halt ]
  in
  let trace = Machine.run_trace p in
  Alcotest.(check (list int)) "trace skips untaken path" [ 0x400000; 0x400004; 0x40000C ] trace;
  (* A custom oracle charging 5 per fetch. *)
  let r = Machine.run ~fetch:(fun _ -> 5) p in
  Alcotest.(check int) "cycles via oracle" 15 r.Machine.cycles

let test_memory_init () =
  let p =
    assemble
      [ ins (Instr.Li (Reg.t0, 0x1000_0000)); ins (Instr.Lw (Reg.v0, 4, Reg.t0)); ins Instr.Halt ]
  in
  let r = Machine.run ~memory_init:[ (0x1000_0004, 77) ] p in
  Alcotest.(check int) "preloaded" 77 r.Machine.return_value

let () =
  Alcotest.run "isa"
    [ ( "program",
        [ Alcotest.test_case "addresses" `Quick test_assemble_addresses
        ; Alcotest.test_case "labels" `Quick test_assemble_labels
        ; Alcotest.test_case "errors" `Quick test_assemble_errors
        ; Alcotest.test_case "loop bounds" `Quick test_assemble_bounds
        ; Alcotest.test_case "misaligned" `Quick test_misaligned_address
        ] )
    ; ( "machine",
        [ Alcotest.test_case "arith" `Quick test_simple_arith
        ; Alcotest.test_case "$zero" `Quick test_zero_register_immutable
        ; Alcotest.test_case "branch loop" `Quick test_branch_loop
        ; Alcotest.test_case "memory" `Quick test_memory_ops
        ; Alcotest.test_case "bytes" `Quick test_byte_ops
        ; Alcotest.test_case "call/return" `Quick test_call_return
        ; Alcotest.test_case "32-bit wrap" `Quick test_wrap32
        ; Alcotest.test_case "unsigned ops" `Quick test_unsigned_ops
        ; Alcotest.test_case "div trap" `Quick test_division_trap
        ; Alcotest.test_case "out of fuel" `Quick test_out_of_fuel
        ; Alcotest.test_case "oracle + trace" `Quick test_fetch_oracle_and_trace
        ; Alcotest.test_case "memory init" `Quick test_memory_init
        ] )
    ]

(* Tests for the mini-C front end: validation, compilation and end-to-end
   execution on the interpreter. Each execution test checks the value a
   real C compiler/机 would produce. *)

open Minic
open Minic.Dsl

let run_main ?(globals = []) body =
  let p = program ~globals [ fn "main" [] body ] in
  let compiled = Compile.compile p in
  (Compile.run compiled).Isa.Machine.return_value

let run_program p =
  let compiled = Compile.compile p in
  (Compile.run compiled).Isa.Machine.return_value

let check_main ?globals name expected body =
  Alcotest.(check int) name expected (run_main ?globals body)

(* --- expression evaluation -------------------------------------------- *)

let test_constants () = check_main "constant" 42 [ ret (i 42) ]

let test_arith () =
  check_main "arith" 17 [ ret ((i 3 *: i 5) +: (i 10 /: i 5)) ];
  check_main "sub/mod" 1 [ ret ((i 10 -: i 3) %: i 2) ];
  check_main "neg" (-7) [ ret (neg (i 7)) ]

let test_bitwise () =
  check_main "and/or/xor" 0b1110 [ ret ((i 0b1100 |: i 0b0010) ^: (i 0b1111 &: i 0b0000)) ];
  check_main "shifts" 40 [ ret ((i 5 <<: i 3) >>>: i 0) ];
  check_main "lshr" 0x0FFFFFFF [ ret (i (-1) >>: i 4) ];
  check_main "ashr" (-1) [ ret (i (-1) >>>: i 4) ];
  check_main "bitnot" (-43) [ ret (bitnot (i 42)) ]

let test_comparisons () =
  check_main "lt" 1 [ ret (i 2 <: i 3) ];
  check_main "le" 1 [ ret (i 3 <=: i 3) ];
  check_main "gt" 0 [ ret (i 2 >: i 3) ];
  check_main "ge" 0 [ ret (i 2 >=: i 3) ];
  check_main "eq" 1 [ ret (i 5 ==: i 5) ];
  check_main "ne" 0 [ ret (i 5 <>: i 5) ];
  check_main "negatives" 1 [ ret (i (-5) <: i 3) ]

let test_logical () =
  check_main "and tt" 1 [ ret (i 2 &&: i 3) ];
  check_main "and tf" 0 [ ret (i 2 &&: i 0) ];
  check_main "or ff" 0 [ ret (i 0 ||: i 0) ];
  check_main "or ft" 1 [ ret (i 0 ||: i 9) ];
  check_main "lognot" 1 [ ret (lognot (i 0)) ];
  (* Short-circuit: the second operand would trap (div by zero). *)
  check_main "short-circuit and" 0 [ ret (i 0 &&: (i 1 /: i 0)) ];
  check_main "short-circuit or" 1 [ ret (i 1 ||: (i 1 /: i 0)) ]

let test_deep_expression_spill () =
  (* Build a comb deep enough to exhaust the 18 temporaries: a right-
     leaning chain of additions of products forces many live values. *)
  let rec build n = if n = 0 then i 1 else (i 1 +: build (n - 1)) in
  check_main "deep right chain" 26 [ ret (build 25) ];
  let rec left n = if n = 0 then i 1 else left (n - 1) +: i 1 in
  check_main "deep left chain" 26 [ ret (left 25) ];
  (* Balanced tree of depth 6: 64 leaves of value 1. *)
  let rec tree d = if d = 0 then i 1 else tree (d - 1) +: tree (d - 1) in
  check_main "balanced tree" 64 [ ret (tree 6) ]

(* --- statements -------------------------------------------------------- *)

let test_locals () =
  check_main "decl/assign" 30
    [ decl "x" (i 10); decl "y" (i 20); set "x" (v "x" +: v "y"); ret (v "x") ]

let test_if () =
  check_main "then" 1 [ if_ (i 1) [ ret (i 1) ] [ ret (i 2) ] ];
  check_main "else" 2 [ if_ (i 0) [ ret (i 1) ] [ ret (i 2) ] ];
  check_main "when false" 5 [ decl "x" (i 5); when_ (i 0) [ set "x" (i 9) ]; ret (v "x") ]

let test_while () =
  check_main "sum 1..10" 55
    [ decl "s" (i 0)
    ; decl "n" (i 10)
    ; while_ ~bound:10
        (v "n" >: i 0)
        [ set "s" (v "s" +: v "n"); set "n" (v "n" -: i 1) ]
    ; ret (v "s")
    ]

let test_for () =
  check_main "sum 0..9" 45
    [ decl "s" (i 0); for_ "k" (i 0) (i 10) [ set "s" (v "s" +: v "k") ]; ret (v "s") ]

let test_nested_loops () =
  check_main "multiplication table" 2025
    [ decl "s" (i 0)
    ; for_ "a" (i 1) (i 10) [ for_ "b" (i 1) (i 10) [ set "s" (v "s" +: (v "a" *: v "b")) ] ]
    ; ret (v "s")
    ]

let test_local_arrays () =
  check_main "local array" 285
    [ decl_arr "sq" 10
    ; for_ "k" (i 0) (i 10) [ store "sq" (v "k") (v "k" *: v "k") ]
    ; decl "s" (i 0)
    ; for_ "k" (i 0) (i 10) [ set "s" (v "s" +: idx "sq" (v "k")) ]
    ; ret (v "s")
    ]

let test_global_arrays () =
  check_main "global array sum"
    ~globals:[ array "data" [| 3; 1; 4; 1; 5; 9; 2; 6 |] ]
    31
    [ decl "s" (i 0); for_ "k" (i 0) (i 8) [ set "s" (v "s" +: idx "data" (v "k")) ]; ret (v "s") ]

let test_global_scalar () =
  check_main "global scalar" ~globals:[ scalar "g" 17 ] 18
    [ set "g" (v "g" +: i 1); ret (v "g") ]

let test_shadowing () =
  check_main "inner shadows outer" 5
    [ decl "x" (i 5)
    ; if_ (i 1) [ decl "x" (i 99); set "x" (i 100) ] []
    ; ret (v "x")
    ]

(* --- functions --------------------------------------------------------- *)

let test_function_call () =
  let p =
    program
      [ fn "main" [] [ ret (call "square" [ i 7 ]) ]
      ; fn "square" [ "x" ] [ ret (v "x" *: v "x") ]
      ]
  in
  Alcotest.(check int) "square" 49 (run_program p)

let test_four_args () =
  let p =
    program
      [ fn "main" [] [ ret (call "weird" [ i 1; i 2; i 3; i 4 ]) ]
      ; fn "weird" [ "a"; "b"; "c"; "d" ]
          [ ret ((v "a" *: i 1000) +: (v "b" *: i 100) +: (v "c" *: i 10) +: v "d") ]
      ]
  in
  Alcotest.(check int) "arg order" 1234 (run_program p)

let test_call_preserves_temporaries () =
  (* The call happens while the left operand of + is live in a temp. *)
  let p =
    program
      [ fn "main" [] [ decl "x" (i 100); ret (v "x" +: call "clobber" [] +: v "x") ]
      ; fn "clobber" []
          [ decl "a" (i 1); decl "b" (i 2); decl "c" (i 3)
          ; ret (v "a" +: v "b" +: v "c" +: i 994)
          ]
      ]
  in
  Alcotest.(check int) "live across call" 1200 (run_program p)

let test_nested_calls () =
  let p =
    program
      [ fn "main" [] [ ret (call "add" [ call "add" [ i 1; i 2 ]; call "add" [ i 3; i 4 ] ]) ]
      ; fn "add" [ "a"; "b" ] [ ret (v "a" +: v "b") ]
      ]
  in
  Alcotest.(check int) "nested" 10 (run_program p)

let test_call_chain () =
  let p =
    program
      [ fn "main" [] [ ret (call "f" [ i 5 ]) ]
      ; fn "f" [ "x" ] [ ret (call "g" [ v "x" +: i 1 ] *: i 2) ]
      ; fn "g" [ "x" ] [ ret (call "h" [ v "x" ] +: i 1) ]
      ; fn "h" [ "x" ] [ ret (v "x" *: v "x") ]
      ]
  in
  Alcotest.(check int) "chain" 74 (run_program p)

let test_void_return () =
  let p =
    program ~globals:[ scalar "g" 0 ]
      [ fn "main" [] [ expr (call "bump" []); expr (call "bump" []); ret (v "g") ]
      ; fn "bump" [] [ set "g" (v "g" +: i 1); ret0 ]
      ]
  in
  Alcotest.(check int) "void calls" 2 (run_program p)

(* --- validation errors ------------------------------------------------- *)

let expect_invalid name p =
  match Compile.compile p with
  | exception Typecheck.Error _ -> ()
  | exception Compile.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected a compile-time error" name

let test_errors () =
  expect_invalid "no main" (program [ fn "f" [] [ ret (i 1) ] ]);
  expect_invalid "unbound var" (program [ fn "main" [] [ ret (v "nope") ] ]);
  expect_invalid "unbound fn" (program [ fn "main" [] [ ret (call "nope" []) ] ]);
  expect_invalid "arity" (program [ fn "main" [] [ ret (call "f" [ i 1 ]) ]; fn "f" [] [ ret0 ] ]);
  expect_invalid "recursion"
    (program [ fn "main" [] [ ret (call "f" [] ) ]; fn "f" [] [ ret (call "f" []) ] ]);
  expect_invalid "mutual recursion"
    (program
       [ fn "main" [] [ ret (call "f" []) ]
       ; fn "f" [] [ ret (call "g" []) ]
       ; fn "g" [] [ ret (call "f" []) ]
       ]);
  expect_invalid "array as scalar"
    (program ~globals:[ array "a" [| 1 |] ] [ fn "main" [] [ ret (v "a") ] ]);
  expect_invalid "scalar indexed"
    (program ~globals:[ scalar "x" 1 ] [ fn "main" [] [ ret (idx "x" (i 0)) ] ]);
  expect_invalid "dup decl" (program [ fn "main" [] [ decl "x" (i 1); decl "x" (i 2) ] ]);
  expect_invalid "5 params"
    (program
       [ fn "main" [] [ ret (i 0) ]; fn "f" [ "a"; "b"; "c"; "d"; "e" ] [ ret (i 0) ] ]);
  expect_invalid "unbounded while with non-const"
    (program
       [ fn "main" [] [ decl "n" (i 3); for_ "k" (i 0) (v "n") [ expr (i 0) ]; ret (i 0) ] ])

let test_bound_annotation_ok () =
  check_main "annotated for over variable range" 10
    [ decl "n" (i 5)
    ; decl "s" (i 0)
    ; for_b "k" (i 0) (v "n") ~bound:5 [ set "s" (v "s" +: v "k") ]
    ; ret (v "s")
    ]

(* --- loop bound metadata ----------------------------------------------- *)

let test_bounds_recorded () =
  let p =
    program
      [ fn "main" []
          [ decl "s" (i 0)
          ; for_ "a" (i 0) (i 7) [ set "s" (v "s" +: i 1) ]
          ; while_ ~bound:3 (v "s" >: i 100) [ set "s" (v "s" -: i 1) ]
          ; ret (v "s")
          ]
      ]
  in
  let compiled = Compile.compile p in
  let bounds = List.map snd compiled.Compile.program.Isa.Program.loop_bounds in
  Alcotest.(check (list int)) "bounds recorded" [ 3; 7 ] (List.sort compare bounds)

(* --- pretty printing --------------------------------------------------- *)

let string_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at k = k + nn <= nh && (String.sub haystack k nn = needle || at (k + 1)) in
  nn = 0 || at 0

let test_pp_smoke () =
  let p =
    program ~globals:[ scalar "g" 1; array "a" [| 1; 2 |] ]
      [ fn "main" []
          [ decl "x" (i 1)
          ; for_ "k" (i 0) (i 4) [ store "a" (v "k" %: i 2) (v "x") ]
          ; ret (v "x" &&: (v "g" ||: i 0))
          ]
      ]
  in
  let s = Format.asprintf "%a" Ast.pp_program p in
  Alcotest.(check bool) "mentions for" true (string_contains s "for (k = 0; k < 4; k++)");
  Alcotest.(check bool) "mentions global" true (string_contains s "int g = 1;")

let () =
  Alcotest.run "minic"
    [ ( "expressions",
        [ Alcotest.test_case "constants" `Quick test_constants
        ; Alcotest.test_case "arith" `Quick test_arith
        ; Alcotest.test_case "bitwise" `Quick test_bitwise
        ; Alcotest.test_case "comparisons" `Quick test_comparisons
        ; Alcotest.test_case "logical" `Quick test_logical
        ; Alcotest.test_case "spilling" `Quick test_deep_expression_spill
        ] )
    ; ( "statements",
        [ Alcotest.test_case "locals" `Quick test_locals
        ; Alcotest.test_case "if" `Quick test_if
        ; Alcotest.test_case "while" `Quick test_while
        ; Alcotest.test_case "for" `Quick test_for
        ; Alcotest.test_case "nested loops" `Quick test_nested_loops
        ; Alcotest.test_case "local arrays" `Quick test_local_arrays
        ; Alcotest.test_case "global arrays" `Quick test_global_arrays
        ; Alcotest.test_case "global scalar" `Quick test_global_scalar
        ; Alcotest.test_case "shadowing" `Quick test_shadowing
        ] )
    ; ( "functions",
        [ Alcotest.test_case "call" `Quick test_function_call
        ; Alcotest.test_case "four args" `Quick test_four_args
        ; Alcotest.test_case "live across call" `Quick test_call_preserves_temporaries
        ; Alcotest.test_case "nested calls" `Quick test_nested_calls
        ; Alcotest.test_case "call chain" `Quick test_call_chain
        ; Alcotest.test_case "void return" `Quick test_void_return
        ] )
    ; ( "validation",
        [ Alcotest.test_case "errors" `Quick test_errors
        ; Alcotest.test_case "bound annotation" `Quick test_bound_annotation_ok
        ; Alcotest.test_case "bounds recorded" `Quick test_bounds_recorded
        ] )
    ; ("printing", [ Alcotest.test_case "pp smoke" `Quick test_pp_smoke ])
    ]

(* Coverage for the remaining small API surface: mechanism naming,
   model printers, the Victim sizing laws across configurations, and
   Report_data edge cases. *)

let string_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at k = k + nn <= nh && (String.sub haystack k nn = needle || at (k + 1)) in
  nn = 0 || at 0

let test_mechanism_names () =
  List.iter
    (fun m ->
      (* short_name round-trips through of_string. *)
      Alcotest.(check bool) "roundtrip" true
        (Pwcet.Mechanism.of_string (Pwcet.Mechanism.short_name m) = Some m))
    Pwcet.Mechanism.all;
  Alcotest.(check bool) "aliases" true
    (Pwcet.Mechanism.of_string "reliable-way" = Some Pwcet.Mechanism.Reliable_way);
  Alcotest.(check bool) "unknown" true (Pwcet.Mechanism.of_string "magic" = None);
  Alcotest.(check int) "three mechanisms" 3 (List.length Pwcet.Mechanism.all)

let test_lp_pp () =
  let lp = Ilp.Lp.create () in
  let x = Ilp.Lp.add_var lp ~name:"flow" () in
  Ilp.Lp.add_constr_int lp ~name:"cap" [ (x, 2) ] Ilp.Lp.Le 10;
  Ilp.Lp.set_objective_int lp [ (x, 3) ];
  let s = Format.asprintf "%a" Ilp.Lp.pp lp in
  Alcotest.(check bool) "objective" true (string_contains s "maximize");
  Alcotest.(check bool) "var name" true (string_contains s "flow");
  Alcotest.(check bool) "relation" true (string_contains s "<=");
  Alcotest.(check bool) "is integer" true (Ilp.Lp.is_integer lp x);
  Alcotest.(check string) "name" "flow" (Ilp.Lp.var_name lp x)

let test_fmm_pp () =
  let config = Cache.Config.make ~sets:2 ~ways:2 ~line_bytes:16 () in
  let fmm =
    Pwcet.Fmm.of_table ~config ~mechanism:Pwcet.Mechanism.No_protection
      [| [| 0; 3; 9 |]; [| 0; 0; 5 |] |]
  in
  let s = Format.asprintf "%a" Pwcet.Fmm.pp fmm in
  Alcotest.(check bool) "has rows" true (string_contains s "set  0");
  Alcotest.(check bool) "has entries" true (string_contains s "9");
  Alcotest.(check int) "max penalty" 14 (Pwcet.Fmm.max_penalty_misses fmm)

let test_fmm_of_table_validation () =
  let config = Cache.Config.make ~sets:2 ~ways:2 ~line_bytes:16 () in
  let bad table =
    match Pwcet.Fmm.of_table ~config ~mechanism:Pwcet.Mechanism.No_protection table with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad [| [| 0; 1; 2 |] |];               (* wrong row count *)
  bad [| [| 0; 1 |]; [| 0; 1 |] |];      (* wrong width *)
  bad [| [| 1; 1; 2 |]; [| 0; 0; 0 |] |];(* nonzero column 0 *)
  bad [| [| 0; 5; 2 |]; [| 0; 0; 0 |] |] (* non-monotone *)

let test_config_pp_and_program_pp () =
  let s = Format.asprintf "%a" Cache.Config.pp Cache.Config.paper_default in
  Alcotest.(check bool) "config pp" true (string_contains s "1024B 4-way");
  let entry = Option.get (Benchmarks.Registry.find "fibcall") in
  let compiled = Minic.Compile.compile entry.Benchmarks.Registry.program in
  let listing = Format.asprintf "%a" Isa.Program.pp compiled.Minic.Compile.program in
  Alcotest.(check bool) "has main label" true (string_contains listing "main:");
  Alcotest.(check bool) "has fib label" true (string_contains listing "fib:");
  Alcotest.(check bool) "has halt" true (string_contains listing "halt")

let test_victim_sizing_scales_with_geometry () =
  (* Bigger caches need bigger RVCs for the same masking guarantee. *)
  let small = Cache.Config.make ~sets:8 ~ways:2 ~line_bytes:16 () in
  let big = Cache.Config.make ~sets:64 ~ways:4 ~line_bytes:16 () in
  let pbf = 0.0127 in
  let v_small = Pwcet.Victim.min_entries_for_target small ~pbf ~target:1e-15 in
  let v_big = Pwcet.Victim.min_entries_for_target big ~pbf ~target:1e-15 in
  Alcotest.(check bool) "monotone in blocks" true (v_big > v_small)

let test_report_min_gain_empty () =
  match Pwcet.Report_data.min_gain [] Pwcet.Report_data.gain_rw with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_registry_extras () =
  Alcotest.(check int) "4 extras" 4 (List.length Benchmarks.Registry.extras);
  (* Extras are findable but not in the paper's 25. *)
  Alcotest.(check bool) "st findable" true (Benchmarks.Registry.find "st" <> None);
  Alcotest.(check bool) "st not in names" false (List.mem "st" Benchmarks.Registry.names)

let () =
  Alcotest.run "misc"
    [ ( "api surface",
        [ Alcotest.test_case "mechanism names" `Quick test_mechanism_names
        ; Alcotest.test_case "lp pp" `Quick test_lp_pp
        ; Alcotest.test_case "fmm pp" `Quick test_fmm_pp
        ; Alcotest.test_case "fmm validation" `Quick test_fmm_of_table_validation
        ; Alcotest.test_case "config/program pp" `Quick test_config_pp_and_program_pp
        ; Alcotest.test_case "victim sizing" `Quick test_victim_sizing_scales_with_geometry
        ; Alcotest.test_case "report edge cases" `Quick test_report_min_gain_empty
        ; Alcotest.test_case "registry extras" `Quick test_registry_extras
        ] )
    ]

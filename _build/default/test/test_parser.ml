(* Tests for the mini-C lexer and parser: constructs, precedence,
   disambiguation, error reporting, and end-to-end execution parity with
   the DSL. *)

let run_source ?args src =
  let prog = Minic.Parser.program_of_string src in
  let compiled = Minic.Compile.compile prog in
  (Isa.Machine.run ?args ~memory_init:compiled.Minic.Compile.data compiled.Minic.Compile.program)
    .Isa.Machine.return_value

let check_src name expected src = Alcotest.(check int) name expected (run_source src)

(* --- expressions ----------------------------------------------------------- *)

let test_precedence () =
  check_src "mul before add" 14 "int main() { return 2 + 3 * 4; }";
  check_src "parens" 20 "int main() { return (2 + 3) * 4; }";
  check_src "left assoc sub" 1 "int main() { return 10 - 5 - 4; }";
  check_src "cmp vs arith" 1 "int main() { return 2 + 3 < 3 * 2; }";
  check_src "shift vs add" 1 "int main() { return 1 << 1 + 1 == 4; }";
  (* C gotcha: & binds looser than ==; our grammar follows C. *)
  check_src "and vs eq" 1 "int main() { return 3 & 2 == 2; }";
  check_src "logical or short" 1 "int main() { return 1 || 1 / 0; }";
  check_src "unary chain" 2 "int main() { return - - 2; }";
  check_src "bitnot" (-1) "int main() { return ~0; }";
  check_src "lognot" 0 "int main() { return !5; }"

let test_literals () =
  check_src "hex" 255 "int main() { return 0xFF; }";
  check_src "hex mixed" 48879 "int main() { return 0xbeef; }";
  check_src "negative fold" (-7) "int main() { return -7; }"

let test_shifts () =
  check_src "shl" 40 "int main() { return 5 << 3; }";
  check_src "arith shr" (-1) "int main() { return -1 >> 4; }";
  check_src "logical shr" 0x0FFFFFFF "int main() { return -1 >>> 4; }"

(* --- statements ------------------------------------------------------------ *)

let test_control_flow () =
  check_src "if/else" 1 "int main() { if (2 > 1) { return 1; } else { return 2; } }";
  check_src "else if chain" 30
    "int main() { int x = 3;\n\
     if (x == 1) { return 10; } else if (x == 2) { return 20; }\n\
     else if (x == 3) { return 30; } else { return 40; } }";
  check_src "while with bound" 55
    "int main() { int s = 0; int n = 10;\n\
     while (n > 0) __bound(10) { s = s + n; n = n - 1; } return s; }";
  check_src "for auto bound" 45
    "int main() { int s = 0; for (k = 0; k < 10; k++) { s = s + k; } return s; }";
  check_src "for annotated" 10
    "int main() { int n = 5; int s = 0;\n\
     for (k = 0; k < n; k++) __bound(5) { s = s + k; } return s; }"

let test_arrays_and_globals () =
  check_src "global array init" 19
    "int a[4] = {3, 1, 4, 11};\nint main() { return a[0] + a[1] + a[2] + a[3]; }";
  check_src "short init pads zeros" 3
    "int a[4] = {1, 2};\nint main() { return a[0] + a[1] + a[2] + a[3]; }";
  check_src "uninitialised array" 0 "int a[4];\nint main() { return a[2]; }";
  check_src "global scalar" 18 "int g = 17;\nint main() { g = g + 1; return g; }";
  check_src "negative initialisers" (-5)
    "int a[2] = {-2, -3};\nint main() { return a[0] + a[1]; }";
  check_src "local array" 6
    "int main() { int a[3]; a[0] = 1; a[1] = 2; a[2] = 3; return a[0] + a[1] + a[2]; }"

let test_store_vs_expr_statement () =
  (* a[e] = v is a store; a[e]; alone is an expression statement. *)
  check_src "store then read" 9
    "int a[2];\nint main() { a[1] = 9; a[1]; return a[1]; }"

let test_functions () =
  check_src "call" 49 "int square(int x) { return x * x; }\nint main() { return square(7); }";
  check_src "multi arg" 1234
    "int weird(int a, int b, int c, int d) { return a * 1000 + b * 100 + c * 10 + d; }\n\
     int main() { return weird(1, 2, 3, 4); }";
  check_src "void-style call" 2
    "int g = 0;\nint bump() { g = g + 1; return 0; }\n\
     int main() { bump(); bump(); return g; }"

let test_comments () =
  check_src "line comments" 5
    "// leading\nint main() { // inline\n return 5; /* block */ }";
  check_src "block comment spans lines" 6 "int main() {\n/* a\nb\nc */ return 6; }"

(* --- error reporting --------------------------------------------------------- *)

let expect_parse_error src =
  match Minic.Parser.program_of_string src with
  | exception Minic.Parser.Error _ -> ()
  | _ -> Alcotest.failf "expected a parse error for: %s" src

let test_errors () =
  expect_parse_error "int main() { return 1 }";           (* missing ; *)
  expect_parse_error "int main() { while (1) { } }";      (* missing __bound *)
  expect_parse_error "int main() { for (k = 0; j < 5; k++) {} }"; (* index mismatch *)
  expect_parse_error "int main() { return 1; ";           (* unterminated block *)
  expect_parse_error "int main() { return $; }";          (* bad character *)
  expect_parse_error "int main() { /* never closed ";     (* unterminated comment *)
  expect_parse_error "int a[2] = {1, 2, 3};";             (* too many initialisers *)
  expect_parse_error "float main() { return 0; }"         (* unknown type *)

let test_error_position () =
  match Minic.Parser.program_of_string "int main() {\n  return @;\n}" with
  | exception Minic.Parser.Error msg ->
    Alcotest.(check bool) "mentions line 2" true
      (String.length msg >= 2 && String.sub msg 0 2 = "2:")
  | _ -> Alcotest.fail "expected error"

(* --- parity with the DSL -------------------------------------------------------- *)

let test_parity_with_dsl () =
  let source =
    "int data[15] = {1, 5, 9, 13, 17, 21, 25, 29, 33, 37, 41, 45, 49, 53, 57};\n\
     int binary_search(int x) {\n\
    \  int fvalue = -1;\n\
    \  int low = 0;\n\
    \  int up = 14;\n\
    \  while (low <= up) __bound(4) {\n\
    \    int mid = (low + up) / 2;\n\
    \    if (data[mid] == x) { up = low - 1; fvalue = mid; }\n\
    \    else { if (data[mid] > x) { up = mid - 1; } else { low = mid + 1; } }\n\
    \  }\n\
    \  return fvalue;\n\
     }\n\
     int main() { return binary_search(29) + binary_search(30) * 100; }"
  in
  (* The bs benchmark is this exact program in DSL form. *)
  let dsl_entry = Option.get (Benchmarks.Registry.find "bs") in
  let dsl_result =
    (Minic.Compile.run (Minic.Compile.compile dsl_entry.Benchmarks.Registry.program))
      .Isa.Machine.return_value
  in
  Alcotest.(check int) "parsed = DSL" dsl_result (run_source source)

let test_program_of_file () =
  let path = Filename.temp_file "minic" ".c" in
  let oc = open_out path in
  output_string oc "int main() { return 77; }";
  close_out oc;
  let prog = Minic.Parser.program_of_file path in
  let compiled = Minic.Compile.compile prog in
  Sys.remove path;
  Alcotest.(check int) "from file" 77 (Minic.Compile.run compiled).Isa.Machine.return_value

let test_shipped_programs () =
  (* The .c files in programs/ must parse, run, and produce the values
     an OCaml oracle computes. *)
  let dot_expected =
    let acc = ref 0 in
    for k = 0 to 15 do
      acc := !acc + ((k + 1) * 2 * (k + 1))
    done;
    !acc
  in
  let bubble_init =
    [| 71; 13; 55; 8; 99; 2; 67; 30; 12; 26; 18; 60; 40; 44; 5; 77; 21; 89; 34; 1; 95; 47; 62
     ; 3; 80; 16; 58; 24; 91; 7; 50; 37 |]
  in
  let bubble_expected =
    let sorted = Array.copy bubble_init in
    Array.sort compare sorted;
    let sum = ref 0 in
    Array.iteri (fun k x -> sum := !sum + (x * (k + 1))) sorted;
    !sum
  in
  let sqrt_expected =
    List.fold_left
      (fun acc x -> acc + int_of_float (sqrt (float_of_int x)))
      0
      [ 4; 100; 144; 1024; 7; 99; 65535; 31; 2000; 123456 ]
  in
  (* Works both under `dune runtest` (cwd = _build/default/test) and
     `dune exec` from the project root. *)
  let programs_dir =
    if Sys.file_exists "programs" then "programs" else Filename.concat ".." "programs"
  in
  List.iter
    (fun (file, expected) ->
      let prog = Minic.Parser.program_of_file (Filename.concat programs_dir file) in
      let compiled = Minic.Compile.compile prog in
      Alcotest.(check int) file expected (Minic.Compile.run compiled).Isa.Machine.return_value)
    [ ("dot_product.c", dot_expected)
    ; ("bubble.c", bubble_expected)
    ; ("fixpoint_sqrt.c", sqrt_expected)
    ]

(* End-to-end: a parsed program goes through the full pWCET pipeline. *)
let test_parsed_through_pipeline () =
  let prog =
    Minic.Parser.program_of_string
      "int main() { int s = 0; for (k = 0; k < 12; k++) { s = s + k; } return s; }"
  in
  let compiled = Minic.Compile.compile prog in
  let config = Cache.Config.paper_default in
  let task = Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config () in
  let est =
    Pwcet.Estimator.estimate task ~pfail:1e-4 ~mechanism:Pwcet.Mechanism.No_protection ()
  in
  let sim = Cache.Lru.create config in
  let cycles =
    (Minic.Compile.run ~fetch:(Cache.Lru.latency_oracle sim) compiled).Isa.Machine.cycles
  in
  Alcotest.(check bool) "wcet sound" true (cycles <= Pwcet.Estimator.fault_free_wcet task);
  Alcotest.(check bool) "pwcet above wcet" true
    (Pwcet.Estimator.pwcet est ~target:1e-15 >= Pwcet.Estimator.fault_free_wcet task)

let () =
  Alcotest.run "parser"
    [ ( "expressions",
        [ Alcotest.test_case "precedence" `Quick test_precedence
        ; Alcotest.test_case "literals" `Quick test_literals
        ; Alcotest.test_case "shifts" `Quick test_shifts
        ] )
    ; ( "statements",
        [ Alcotest.test_case "control flow" `Quick test_control_flow
        ; Alcotest.test_case "arrays and globals" `Quick test_arrays_and_globals
        ; Alcotest.test_case "store vs expr stmt" `Quick test_store_vs_expr_statement
        ; Alcotest.test_case "functions" `Quick test_functions
        ; Alcotest.test_case "comments" `Quick test_comments
        ] )
    ; ( "errors",
        [ Alcotest.test_case "rejects" `Quick test_errors
        ; Alcotest.test_case "positions" `Quick test_error_position
        ] )
    ; ( "integration",
        [ Alcotest.test_case "parity with DSL" `Quick test_parity_with_dsl
        ; Alcotest.test_case "from file" `Quick test_program_of_file
        ; Alcotest.test_case "shipped programs" `Quick test_shipped_programs
        ; Alcotest.test_case "full pipeline" `Quick test_parsed_through_pipeline
        ] )
    ]

(* Tests for the tree-based loop-collapse engine on hand-crafted
   assembly CFGs where the exact longest-path value can be computed by
   hand, plus cross-checks against the ILP engine. *)

open Isa
module PE = Ipet.Path_engine

let ins i = Program.Ins i
let label l = Program.Label l

let build ?(bounds = []) items =
  let p = Program.assemble { src_functions = [ ("main", items) ]; src_bounds = bounds } in
  let g = Cfg.Graph.build p in
  let loops = Cfg.Loop.detect g in
  (g, loops)

(* Cost model: every node costs its instruction count (cost 1 per
   instruction) unless overridden. *)
let longest ?(node_cost = fun g u -> (Cfg.Graph.node g u).Cfg.Graph.len) ?(one_shots = [])
    (g, loops) =
  PE.longest ~graph:g ~loops ~node_cost:(node_cost g) ~one_shots

let test_straightline () =
  let gl = build [ ins Instr.Nop; ins Instr.Nop; ins Instr.Halt ] in
  Alcotest.(check int) "3 instructions" 3 (longest gl)

let test_diamond_takes_heavier_arm () =
  let gl =
    build
      [ ins (Instr.Beqz (Instr.Eq, Reg.t0, "else"))   (* 1 *)
      ; ins Instr.Nop; ins Instr.Nop; ins Instr.Nop   (* then: 3 + j *)
      ; ins (Instr.J "join")
      ; label "else"
      ; ins Instr.Nop                                  (* else: 1 *)
      ; label "join"
      ; ins Instr.Halt                                 (* 1 *)
      ]
  in
  (* branch(1) + then(4 incl. jump) + join(1) = 6 *)
  Alcotest.(check int) "heavier arm" 6 (longest gl)

let test_simple_loop () =
  let gl =
    build
      ~bounds:[ ("loop", 10) ]
      [ ins Instr.Nop                                   (* preheader: 1 *)
      ; label "loop"
      ; ins (Instr.Beqz (Instr.Eq, Reg.t0, "done"))     (* header: 1 *)
      ; ins Instr.Nop; ins Instr.Nop                    (* body: 3 incl. jump *)
      ; ins (Instr.J "loop")
      ; label "done"
      ; ins Instr.Halt                                  (* 1 *)
      ]
  in
  (* pre(1) + 10 * (header 1 + body 3) + final header(1) + halt(1) = 43 *)
  Alcotest.(check int) "loop cost" 43 (longest gl)

let test_zero_bound_loop () =
  let gl =
    build
      ~bounds:[ ("loop", 0) ]
      [ label "loop"
      ; ins (Instr.Beqz (Instr.Eq, Reg.t0, "done"))
      ; ins Instr.Nop
      ; ins (Instr.J "loop")
      ; label "done"
      ; ins Instr.Halt
      ]
  in
  (* 0 iterations: header(1) + halt(1). *)
  Alcotest.(check int) "no iterations" 2 (longest gl)

let test_nested_loops_multiply () =
  let gl =
    build
      ~bounds:[ ("outer", 5); ("inner", 7) ]
      [ label "outer"
      ; ins (Instr.Beqz (Instr.Eq, Reg.t0, "exit"))    (* outer header: 1 *)
      ; label "inner"
      ; ins (Instr.Beqz (Instr.Eq, Reg.t1, "after"))   (* inner header: 1 *)
      ; ins Instr.Nop                                   (* inner body: 2 incl. jump *)
      ; ins (Instr.J "inner")
      ; label "after"
      ; ins (Instr.J "outer")                           (* back to outer: 1 *)
      ; label "exit"
      ; ins Instr.Halt                                  (* 1 *)
      ]
  in
  (* inner collapsed: 7*(1+2) + 1 = 22; one outer iteration:
     header(1) + inner(22) + back(1) = 24; total: 5*24 + exit pass
     (header 1) + halt 1 = 122. *)
  Alcotest.(check int) "nested" 122 (longest gl)

let test_loop_exit_from_body () =
  (* The body can leave the loop directly (like a return): C_exit must
     include the deep in-body path. *)
  let gl =
    build
      ~bounds:[ ("loop", 4) ]
      [ label "loop"
      ; ins (Instr.Beqz (Instr.Eq, Reg.t0, "done"))    (* header: 1 *)
      ; ins Instr.Nop; ins Instr.Nop                    (* body1: 3 *)
      ; ins (Instr.Beqz (Instr.Eq, Reg.t1, "done"))    (* mid-exit *)
      ; ins Instr.Nop
      ; ins (Instr.J "loop")                            (* body2: 2 *)
      ; label "done"
      ; ins Instr.Halt
      ]
  in
  (* iteration: 1 + 3 + 2 = 6; C_exit = max(header 1, header+body1 = 4);
     4 iterations * 6 + 4 + 1 = 29. *)
  Alcotest.(check int) "exit from body" 29 (longest gl)

let test_one_shot_global () =
  let gl = build [ ins Instr.Nop; ins Instr.Halt ] in
  Alcotest.(check int) "global one-shot" 12
    (longest ~one_shots:[ (PE.Whole_program, 10) ] gl)

let test_one_shot_loop_scope () =
  let gl =
    build
      ~bounds:[ ("outer", 3); ("inner", 4) ]
      [ label "outer"
      ; ins (Instr.Beqz (Instr.Eq, Reg.t0, "exit"))
      ; label "inner"
      ; ins (Instr.Beqz (Instr.Eq, Reg.t1, "after"))
      ; ins (Instr.J "inner")
      ; label "after"
      ; ins (Instr.J "outer")
      ; label "exit"
      ; ins Instr.Halt
      ]
  in
  let base = longest gl in
  let g, loops = gl in
  let inner_header =
    (* The inner loop is the one whose body is smaller. *)
    (List.hd
       (List.sort
          (fun (a : Cfg.Loop.loop) b ->
            compare (List.length a.Cfg.Loop.body) (List.length b.Cfg.Loop.body))
          loops))
      .Cfg.Loop.header
  in
  let outer_header =
    (List.hd
       (List.sort
          (fun (a : Cfg.Loop.loop) b ->
            compare (List.length b.Cfg.Loop.body) (List.length a.Cfg.Loop.body))
          loops))
      .Cfg.Loop.header
  in
  (* A one-shot scoped to the inner loop is paid once per inner-loop
     entry = 3 times (once per outer iteration); scoped to the outer
     loop, once. *)
  Alcotest.(check int) "inner scope x3" (base + 30)
    (longest ~one_shots:[ (PE.Loop_scope inner_header, 10) ] gl);
  Alcotest.(check int) "outer scope x1" (base + 10)
    (longest ~one_shots:[ (PE.Loop_scope outer_header, 10) ] gl);
  ignore g

let test_against_ilp_on_benchmarks () =
  (* On real benchmark CFGs, the two engines agree tightly (the path
     engine never undercuts, and the slack stays within the scoped
     one-shot conservatism). *)
  let config = Cache.Config.paper_default in
  List.iter
    (fun name ->
      let entry = Option.get (Benchmarks.Registry.find name) in
      let compiled = Minic.Compile.compile entry.Benchmarks.Registry.program in
      let graph = Cfg.Graph.build compiled.Minic.Compile.program in
      let loops = Cfg.Loop.detect graph in
      let chmc = Cache_analysis.Chmc.analyze ~graph ~loops ~config () in
      let path = (Ipet.Wcet.compute ~graph ~loops ~chmc ~config ~engine:`Path ()).Ipet.Wcet.wcet in
      let ilp = (Ipet.Wcet.compute ~graph ~loops ~chmc ~config ~engine:`Ilp ()).Ipet.Wcet.wcet in
      Alcotest.(check bool)
        (Printf.sprintf "%s: path %d vs ilp %d" name path ilp)
        true
        (path >= ilp && path <= ilp + (ilp / 20) + 200))
    [ "fibcall"; "bs"; "crc"; "insertsort"; "cnt"; "prime" ]

let () =
  Alcotest.run "path_engine"
    [ ( "hand-crafted graphs",
        [ Alcotest.test_case "straightline" `Quick test_straightline
        ; Alcotest.test_case "diamond" `Quick test_diamond_takes_heavier_arm
        ; Alcotest.test_case "simple loop" `Quick test_simple_loop
        ; Alcotest.test_case "zero bound" `Quick test_zero_bound_loop
        ; Alcotest.test_case "nested loops" `Quick test_nested_loops_multiply
        ; Alcotest.test_case "exit from body" `Quick test_loop_exit_from_body
        ] )
    ; ( "one-shots",
        [ Alcotest.test_case "global" `Quick test_one_shot_global
        ; Alcotest.test_case "loop scoped" `Quick test_one_shot_loop_scope
        ] )
    ; ( "vs ilp",
        [ Alcotest.test_case "benchmark CFGs" `Quick test_against_ilp_on_benchmarks ] )
    ]

(* End-to-end soundness of the whole pWCET pipeline on RANDOM programs:
   for each generated program and sampled fault map, the concrete
   execution on the faulty-cache simulators must stay below the
   analytical decomposition bound, for all three mechanisms. This
   exercises CFG shapes the hand-written benchmarks never produce. *)

module C = Cache.Config
module FM = Cache.Fault_map

let config = C.paper_default

let check_program seed_counter program =
  match Minic.Compile.compile program with
  | exception Minic.Typecheck.Error _ -> () (* generator produced a shadowing clash *)
  | compiled -> (
    match Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config () with
    | exception Cfg.Loop.Loop_error _ -> Alcotest.fail "generated program not analysable"
    | task ->
      let ff = Pwcet.Estimator.fault_free_wcet task in
      let graph = task.Pwcet.Estimator.graph and loops = task.Pwcet.Estimator.loops in
      let penalty = C.miss_penalty config in
      let fmm mech = Pwcet.Fmm.compute ~graph ~loops ~config ~mechanism:mech () in
      let fmm_none = fmm Pwcet.Mechanism.No_protection in
      let fmm_srb = fmm Pwcet.Mechanism.Shared_reliable_buffer in
      let fmm_rw = fmm Pwcet.Mechanism.Reliable_way in
      let bound fmm counts =
        let total = ref ff in
        Array.iteri
          (fun s f -> total := !total + (Pwcet.Fmm.misses fmm ~set:s ~faulty:f * penalty))
          counts;
        !total
      in
      let state = Random.State.make [| !seed_counter |] in
      incr seed_counter;
      for _ = 1 to 3 do
        let fm = FM.sample config ~pbf:0.3 state in
        let counts = FM.faulty_counts fm in
        (* Unprotected. *)
        let sim = Cache.Lru.create ~fault_map:fm config in
        let cyc =
          (Minic.Compile.run ~fetch:(Cache.Lru.latency_oracle sim) compiled).Isa.Machine.cycles
        in
        if cyc > bound fmm_none counts then
          Alcotest.failf "none: sim %d > bound %d" cyc (bound fmm_none counts);
        (* SRB. *)
        let srb = Cache.Reliable.Srb.create ~fault_map:fm config in
        let cyc_srb =
          (Minic.Compile.run ~fetch:(Cache.Reliable.Srb.latency_oracle srb) compiled)
            .Isa.Machine.cycles
        in
        if cyc_srb > bound fmm_srb counts then
          Alcotest.failf "srb: sim %d > bound %d" cyc_srb (bound fmm_srb counts);
        (* RW. *)
        let rw = Cache.Reliable.rw_cache ~fault_map:fm config in
        let rw_counts = FM.faulty_counts (FM.mask_way fm ~way:0) in
        let cyc_rw =
          (Minic.Compile.run ~fetch:(Cache.Lru.latency_oracle rw) compiled).Isa.Machine.cycles
        in
        if cyc_rw > bound fmm_rw rw_counts then
          Alcotest.failf "rw: sim %d > bound %d" cyc_rw (bound fmm_rw rw_counts)
      done)

let random_soundness =
  let seed_counter = ref 424243 in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"pipeline sound on random programs"
       ~print:(fun p -> Format.asprintf "%a" Minic.Ast.pp_program p)
       Minic_gen.gen_program
       (fun program ->
         check_program seed_counter program;
         true))

(* The combined I+D pipeline on random programs as well. *)
let random_soundness_dcache =
  let seed_counter = ref 99991 in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25 ~name:"I+D pipeline sound on random programs"
       Minic_gen.gen_program
       (fun program ->
         (match Minic.Compile.compile program with
         | exception Minic.Typecheck.Error _ -> ()
         | compiled ->
           let task = Dcache.Destimator.prepare ~compiled ~iconfig:config ~dconfig:config () in
           let est =
             Dcache.Destimator.estimate task ~pfail:1e-4
               ~imech:Pwcet.Mechanism.No_protection ~dmech:Pwcet.Mechanism.No_protection ()
           in
           let state = Random.State.make [| !seed_counter |] in
           incr seed_counter;
           for _ = 1 to 2 do
             let ifm = FM.sample config ~pbf:0.25 state in
             let dfm = FM.sample config ~pbf:0.25 state in
             let isim = Cache.Lru.create ~fault_map:ifm config in
             let cyc =
               (Minic.Compile.run
                  ~fetch:(Cache.Lru.latency_oracle isim)
                  ~data_access:(Dcache.Dsim.unprotected ~fault_map:dfm config)
                  compiled)
                 .Isa.Machine.cycles
             in
             let bound = ref task.Dcache.Destimator.wcet_ff in
             Array.iteri
               (fun s f ->
                 bound :=
                   !bound
                   + (Pwcet.Fmm.misses est.Dcache.Destimator.ifmm ~set:s ~faulty:f
                     * C.miss_penalty config))
               (FM.faulty_counts ifm);
             Array.iteri
               (fun s f ->
                 bound :=
                   !bound
                   + (Dcache.Destimator.dfmm_misses est ~set:s ~faulty:f * C.miss_penalty config))
               (FM.faulty_counts dfm);
             if cyc > !bound then Alcotest.failf "I+D: sim %d > bound %d" cyc !bound
           done);
         true))

let () =
  Alcotest.run "random_soundness"
    [ ("pipeline", [ random_soundness; random_soundness_dcache ]) ]

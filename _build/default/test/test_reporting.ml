(* Tests for the text-rendering layer: tables and ASCII plots. *)

let string_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at k = k + nn <= nh && (String.sub haystack k nn = needle || at (k + 1)) in
  nn = 0 || at 0

(* --- tables ------------------------------------------------------------- *)

let test_table_alignment () =
  let s =
    Reporting.Table.render ~header:[ "name"; "value" ]
      ~rows:[ [ "a"; "1" ]; [ "longer-name"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  (* All rows padded to the same width. *)
  (match lines with
  | header :: sep :: rest ->
    Alcotest.(check bool) "has separator" true (string_contains sep "---");
    List.iter
      (fun l -> Alcotest.(check bool) "rows not shorter than header" true
          (String.length l >= String.length header - 2))
      rest
  | _ -> Alcotest.fail "unexpected shape")

let test_table_ragged_rejected () =
  match Reporting.Table.render ~header:[ "a"; "b" ] ~rows:[ [ "only-one" ] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let sample_rows =
  [ { Pwcet.Report_data.name = "alpha"; wcet_ff = 100; pwcet_none = 400; pwcet_srb = 300; pwcet_rw = 200 }
  ; { Pwcet.Report_data.name = "beta"; wcet_ff = 50; pwcet_none = 50; pwcet_srb = 50; pwcet_rw = 50 }
  ]

let test_fig4_table () =
  let s = Reporting.Table.fig4 sample_rows in
  Alcotest.(check bool) "has benchmark column" true (string_contains s "alpha");
  Alcotest.(check bool) "has normalised value" true (string_contains s "0.750");
  Alcotest.(check bool) "has gain" true (string_contains s "25.0%");
  Alcotest.(check bool) "beta is category 1" true (string_contains s "1")

let test_aggregates_text () =
  let s = Reporting.Table.aggregates sample_rows in
  Alcotest.(check bool) "mentions averages" true (string_contains s "average gain");
  Alcotest.(check bool) "mentions paper numbers" true (string_contains s "48%");
  Alcotest.(check bool) "counts categories" true (string_contains s "categories")

(* --- plots --------------------------------------------------------------- *)

let test_exceedance_plot () =
  let series =
    [ ("none", [ (100, 1.0); (200, 1e-6); (300, 1e-12) ])
    ; ("rw", [ (100, 1.0); (150, 1e-14) ])
    ]
  in
  let s = Reporting.Ascii_plot.exceedance ~series () in
  Alcotest.(check bool) "legend none" true (string_contains s "# = none");
  Alcotest.(check bool) "legend rw" true (string_contains s "+ = rw");
  Alcotest.(check bool) "x axis min" true (string_contains s "100");
  Alcotest.(check bool) "x axis max" true (string_contains s "300");
  Alcotest.(check bool) "y axis label" true (string_contains s "P(WCET >= x)")

let test_exceedance_plot_empty () =
  Alcotest.(check string) "empty" "(empty plot)\n" (Reporting.Ascii_plot.exceedance ~series:[] ())

let test_bars () =
  let s =
    Reporting.Ascii_plot.bars ~width:10
      ~rows:[ ("bench", [ ("ff", 0.5); ("rw", 1.0) ]) ]
      ()
  in
  Alcotest.(check bool) "label" true (string_contains s "bench");
  Alcotest.(check bool) "half bar" true (string_contains s "|=====     |");
  Alcotest.(check bool) "full bar" true (string_contains s "|==========|");
  (* Out-of-range values are clamped, not crashing. *)
  let s2 = Reporting.Ascii_plot.bars ~width:10 ~rows:[ ("x", [ ("v", 1.7) ]) ] () in
  Alcotest.(check bool) "clamped" true (string_contains s2 "|==========|")

let () =
  Alcotest.run "reporting"
    [ ( "tables",
        [ Alcotest.test_case "alignment" `Quick test_table_alignment
        ; Alcotest.test_case "ragged rejected" `Quick test_table_ragged_rejected
        ; Alcotest.test_case "fig4" `Quick test_fig4_table
        ; Alcotest.test_case "aggregates" `Quick test_aggregates_text
        ] )
    ; ( "plots",
        [ Alcotest.test_case "exceedance" `Quick test_exceedance_plot
        ; Alcotest.test_case "empty" `Quick test_exceedance_plot_empty
        ; Alcotest.test_case "bars" `Quick test_bars
        ] )
    ]

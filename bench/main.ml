(* Benchmark harness: regenerates every data-bearing table and figure of
   the paper's evaluation (Section IV), then measures the performance of
   the analysis pipeline itself with Bechamel.

     dune exec bench/main.exe

   Sections:
     eqs. 1-3     the fault-model quantities of Section II-A
     Figure 1     the worked FMM + convolution example
     Figure 3     exceedance curves for adpcm (none / SRB / RW)
     Figure 4     normalised pWCETs for all 25 benchmarks, categorised
     IV-B text    average/minimum gains vs the paper's numbers
     geometry     Section IV-A's cache-configuration choice
     ablations    engine choice, persistence value, convolution capping
     future work  refined SRB analysis; data-cache transposition
     fmm-json     naive vs sliced FMM engines -> BENCH_fmm.json
     dist-json    distribution engines + pfail sweep -> BENCH_dist.json
     store-json   artifact-store cold/warm/uncached -> BENCH_store.json
     service-json analysis daemon cold/warm/concurrent -> BENCH_service.json
     sim-json     batched fault-injection campaigns + speedup -> BENCH_sim.json
     sched-json   sched campaign batched vs independent -> BENCH_sched.json
     grid-json    one-pass grid vs independent per-cell -> BENCH_grid.json
     bechamel     timing of each analysis stage *)

let config = Cache.Config.paper_default
let pfail = 1e-4
let target = 1e-15

(* -j/--jobs N: worker domains for the per-set fault analyses (results
   are identical for every value; only wall-clock changes). Validated
   like the CLI's --jobs: at least 1, capped at a sane maximum —
   thousands of domains would thrash the runtime far past any
   speedup. *)
let max_jobs = 256

let jobs =
  let rec scan = function
    | ("-j" | "--jobs") :: v :: _ -> (
      match int_of_string_opt v with
      | Some n when n >= 1 && n <= max_jobs -> n
      | Some n when n > max_jobs ->
        Printf.eprintf "-j %d exceeds the cap of %d; using %d\n" n max_jobs max_jobs;
        max_jobs
      | _ ->
        Printf.eprintf "bad -j value %s (need 1..%d); using 1\n" v max_jobs;
        1)
    | _ :: rest -> scan rest
    | [] -> min max_jobs (Parallel.Pool.default_jobs ())
  in
  scan (Array.to_list Sys.argv)

(* --only NAME: run a single section (the full harness regenerates every
   figure and takes minutes). *)
let known_sections =
  [ "equations"; "figure1"; "figure3"; "figure4"; "geometry"; "ablations"; "future-work";
    "data-cache"; "fmm-json"; "dist-json"; "store-json"; "service-json"; "sched-json";
    "sim-json"; "grid-json"; "bechamel" ]

let only =
  let rec scan = function
    | "--only" :: v :: _ -> Some v
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

(* An unknown --only name would silently run nothing — a CI pipeline
   grepping for "wrote BENCH_x.json" deserves a hard failure instead. *)
let () =
  match only with
  | Some w when not (List.mem w known_sections) ->
    Printf.eprintf "bench: unknown section %S (expected one of: %s)\n" w
      (String.concat ", " known_sections);
    exit 2
  | _ -> ()

let wanted name = match only with None -> true | Some w -> String.equal w name

let banner title =
  Printf.printf "\n=== %s %s\n\n" title (String.make (max 0 (66 - String.length title)) '=')

(* Stamped into the machine-readable BENCH_*.json emitters so archived
   results stay attributable to the code that produced them. *)
let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "unknown" in
    ignore (Unix.close_process_in ic);
    line
  with _ -> "unknown"

(* --- eqs. 1-3 ------------------------------------------------------------ *)

let section_equations () =
  banner "Fault model (paper Section II-A, eqs. 1-3)";
  let pbf = Fault.Model.pbf_of_config ~pfail config in
  Printf.printf "pfail = %g, block size K = %d bits\n" pfail (Cache.Config.block_bits config);
  Printf.printf "eq.1  pbf = 1-(1-pfail)^K = %.6f\n\n" pbf;
  let ways = config.Cache.Config.ways in
  let d2 = Fault.Model.way_distribution ~ways ~pbf in
  let d3 = Fault.Model.way_distribution_rw ~ways ~pbf in
  Printf.printf "w faulty ways   eq.2 pwf(w)     eq.3 pwf_rw(w)\n";
  for w = 0 to ways do
    Printf.printf "%6d          %.6e    %.6e\n" w d2.(w) d3.(w)
  done;
  Printf.printf "\nP(all %d ways faulty) = %.3e: above the %g target -> dead sets matter\n"
    ways d2.(ways) target

(* --- Figure 1 -------------------------------------------------------------- *)

let section_figure1 () =
  banner "Figure 1: worked FMM + penalty convolution example";
  let fig_config = Cache.Config.make ~sets:4 ~ways:2 ~line_bytes:16 ~miss_latency:2 () in
  let fmm =
    Pwcet.Fmm.of_table ~config:fig_config ~mechanism:Pwcet.Mechanism.No_protection
      [| [| 0; 10; 130 |]; [| 0; 14; 164 |]; [| 0; 13; 193 |]; [| 0; 20; 240 |] |]
  in
  Format.printf "%a@." Pwcet.Fmm.pp fmm;
  let pbf = 0.1 in
  let d0 = Pwcet.Penalty.set_distribution ~fmm ~pbf ~set:0 () in
  let d1 = Pwcet.Penalty.set_distribution ~fmm ~pbf ~set:1 () in
  let show name d =
    Printf.printf "%s: " name;
    List.iter (fun (x, p) -> Printf.printf "(%d, %.4f) " x p) (Prob.Dist.support d);
    print_newline ()
  in
  show "penalty(set 0)  " d0;
  show "penalty(set 1)  " d1;
  show "penalty(set 0+1)" (Prob.Dist.convolve d0 d1)

(* --- shared pipeline helpers ------------------------------------------------ *)

let task_cache : (string, Pwcet.Estimator.task) Hashtbl.t = Hashtbl.create 32

let task_of name =
  match Hashtbl.find_opt task_cache name with
  | Some t -> t
  | None ->
    let entry = Option.get (Benchmarks.Registry.find name) in
    let compiled = Minic.Compile.compile entry.Benchmarks.Registry.program in
    let t = Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config () in
    Hashtbl.add task_cache name t;
    t

(* --- Figure 3 ---------------------------------------------------------------- *)

let section_figure3 () =
  banner "Figure 3: complementary cumulative pWCET distributions, adpcm";
  let task = task_of "adpcm" in
  let series =
    List.map
      (fun mechanism ->
        let est = Pwcet.Estimator.estimate task ~pfail ~mechanism ~jobs () in
        (Pwcet.Mechanism.short_name mechanism, Pwcet.Estimator.exceedance_curve est))
      Pwcet.Mechanism.all
  in
  (* Raw series data (the plottable reproduction artefact). *)
  List.iter
    (fun (name, points) ->
      Printf.printf "%s:" name;
      List.iteri
        (fun idx (x, p) -> if idx < 12 then Printf.printf " (%d, %.3e)" x p)
        points;
      if List.length points > 12 then
        Printf.printf " ... [%d points total]" (List.length points);
      print_newline ())
    series;
  print_newline ();
  print_string (Reporting.Ascii_plot.exceedance ~series ());
  let value name =
    let mech =
      List.find (fun m -> Pwcet.Mechanism.short_name m = name) Pwcet.Mechanism.all
    in
    Pwcet.Estimator.pwcet (Pwcet.Estimator.estimate task ~pfail ~mechanism:mech ~jobs ()) ~target
  in
  Printf.printf "\npWCET at %g: none %d, srb %d, rw %d (fault-free %d)\n" target (value "none")
    (value "srb") (value "rw")
    (Pwcet.Estimator.fault_free_wcet task)

(* --- Figure 4 ----------------------------------------------------------------- *)

let suite_rows () =
  List.map
    (fun (e : Benchmarks.Registry.entry) ->
      let task = task_of e.Benchmarks.Registry.name in
      let pwcet mechanism =
        Pwcet.Estimator.pwcet (Pwcet.Estimator.estimate task ~pfail ~mechanism ~jobs ()) ~target
      in
      {
        Pwcet.Report_data.name = e.Benchmarks.Registry.name;
        wcet_ff = Pwcet.Estimator.fault_free_wcet task;
        pwcet_none = pwcet Pwcet.Mechanism.No_protection;
        pwcet_srb = pwcet Pwcet.Mechanism.Shared_reliable_buffer;
        pwcet_rw = pwcet Pwcet.Mechanism.Reliable_way;
      })
    Benchmarks.Registry.all

let section_figure4 rows =
  banner "Figure 4: pWCET estimates normalised to no-protection (target 1e-15)";
  (* Grouped by behavioural category, as in the paper's presentation. *)
  let by_cat =
    List.stable_sort
      (fun a b -> compare (Pwcet.Report_data.category a) (Pwcet.Report_data.category b))
      rows
  in
  print_string (Reporting.Table.fig4 by_cat);
  Printf.printf "\nstacked view (bar = normalised pWCET; ff <= rw <= srb <= none = 1):\n\n";
  let bars =
    List.map
      (fun (r : Pwcet.Report_data.row) ->
        let ff, srb, rw = Pwcet.Report_data.normalized r in
        (r.Pwcet.Report_data.name, [ ("ff", ff); ("rw", rw); ("srb", srb) ]))
      by_cat
  in
  print_string (Reporting.Ascii_plot.bars ~rows:bars ())

let section_aggregates rows =
  banner "Section IV-B aggregates";
  print_string (Reporting.Table.aggregates rows)

(* --- Ablations -------------------------------------------------------------------- *)

(* Design choices called out in DESIGN.md, each quantified:
   1. path engine vs exact ILP for the WCET bound;
   2. the persistence (first-miss) analysis — disabled, every FM
      reference is costed as always-miss;
   3. the convolution support cap — aggressive capping must only move
      the quantile up (conservative), and by how much. *)
let section_ablations () =
  banner "Ablations";
  let subset = [ "fibcall"; "bs"; "crc"; "insertsort"; "cnt"; "prime"; "expint" ] in
  Printf.printf "1. WCET engine: tree-based path engine vs exact-rational ILP\n\n";
  Printf.printf "  %-12s %12s %12s %9s\n" "benchmark" "path" "ilp" "path/ilp";
  List.iter
    (fun name ->
      let task = task_of name in
      let graph = task.Pwcet.Estimator.graph
      and loops = task.Pwcet.Estimator.loops
      and chmc = task.Pwcet.Estimator.chmc in
      let path = (Ipet.Wcet.compute ~graph ~loops ~chmc ~config ~engine:`Path ()).Ipet.Wcet.wcet in
      let ilp = (Ipet.Wcet.compute ~graph ~loops ~chmc ~config ~engine:`Ilp ()).Ipet.Wcet.wcet in
      Printf.printf "  %-12s %12d %12d %9.4f\n" name path ilp
        (float_of_int path /. float_of_int ilp))
    subset;
  Printf.printf
    "\n2. Persistence analysis off (first-miss references costed as always-miss)\n\n";
  Printf.printf "  %-12s %12s %12s %9s\n" "benchmark" "with FM" "without FM" "inflation";
  List.iter
    (fun name ->
      let task = task_of name in
      let graph = task.Pwcet.Estimator.graph
      and loops = task.Pwcet.Estimator.loops
      and chmc = task.Pwcet.Estimator.chmc in
      let with_fm =
        (Ipet.Wcet.compute ~graph ~loops ~chmc ~config ~engine:`Path ()).Ipet.Wcet.wcet
      in
      (* Recost by hand with the path engine: AH keeps the hit latency,
         everything else (including FM) pays a miss per execution. *)
      let reachable = Array.make (Cfg.Graph.node_count graph) false in
      Array.iter (fun u -> reachable.(u) <- true) (Cfg.Graph.reverse_postorder graph);
      let node_cost u =
        if not reachable.(u) then 0
        else begin
          let node = Cfg.Graph.node graph u in
          let cost = ref 0 in
          for k = 0 to node.Cfg.Graph.len - 1 do
            cost :=
              !cost
              +
              match Cache_analysis.Chmc.classification chmc ~node:u ~offset:k with
              | Cache_analysis.Chmc.Always_hit -> config.Cache.Config.hit_latency
              | _ -> config.Cache.Config.miss_latency
          done;
          !cost
        end
      in
      let without_fm = Ipet.Path_engine.longest ~graph ~loops ~node_cost ~one_shots:[] in
      Printf.printf "  %-12s %12d %12d %8.2fx\n" name with_fm without_fm
        (float_of_int without_fm /. float_of_int with_fm))
    subset;
  Printf.printf "\n3. Convolution support cap (penalty points kept per convolution step)\n\n";
  let task = task_of "adpcm" in
  let est = Pwcet.Estimator.estimate task ~pfail ~mechanism:Pwcet.Mechanism.No_protection ~jobs () in
  let fmm = est.Pwcet.Estimator.fmm and pbf = est.Pwcet.Estimator.pbf in
  Printf.printf "  %-12s %14s %14s\n" "max_points" "pWCET(1e-15)" "support size";
  List.iter
    (fun max_points ->
      let d = Pwcet.Penalty.total_distribution ~max_points ~fmm ~pbf () in
      Printf.printf "  %-12d %14d %14d\n" max_points
        (Pwcet.Estimator.fault_free_wcet task + Prob.Dist.quantile d ~target)
        (Prob.Dist.size d))
    [ 16; 64; 256; 65536 ]

(* --- Configuration choice (paper Section IV-A) --------------------------------------- *)

(* The paper fixes 16 sets x 4 ways x 16 B because that configuration
   "is the one leading to the smallest pWCET in [1]". Reproduce the
   check: across 1 KB geometries, which one minimises the unprotected
   pWCET at the target probability? *)
let section_geometry () =
  banner "Configuration choice (Section IV-A): 1 KB geometries, no protection";
  let geometries = [ (64, 1); (32, 2); (16, 4); (8, 8) ] in
  let subset = [ "adpcm"; "crc"; "fft"; "matmult"; "qurt" ] in
  Printf.printf "  %-10s" "benchmark";
  List.iter (fun (s, w) -> Printf.printf " %8s" (Printf.sprintf "%dx%d" s w)) geometries;
  Printf.printf "   best\n";
  List.iter
    (fun name ->
      let entry = Option.get (Benchmarks.Registry.find name) in
      let compiled = Minic.Compile.compile entry.Benchmarks.Registry.program in
      let values =
        List.map
          (fun (sets, ways) ->
            let cfg = Cache.Config.make ~sets ~ways ~line_bytes:16 () in
            let task =
              Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config:cfg ()
            in
            Pwcet.Estimator.pwcet
              (Pwcet.Estimator.estimate task ~pfail ~mechanism:Pwcet.Mechanism.No_protection ~jobs ())
              ~target)
          geometries
      in
      Printf.printf "  %-10s" name;
      List.iter (fun v -> Printf.printf " %8d" v) values;
      let best, _ =
        List.fold_left2
          (fun (bg, bv) g v -> if v < bv then (g, v) else (bg, bv))
          ((0, 0), max_int) geometries values
      in
      Printf.printf "   %dx%d\n" (fst best) (snd best))
    subset

(* --- Future work: refined SRB analysis --------------------------------------------- *)

(* Section VI of the paper: "a more precise pWCET estimation technique
   for the SRB could be devised to limit the conservatism of the
   proposed technique". Pwcet.Srb_refined implements one such technique
   (conditioning on the number of dead sets with exclusive-buffer
   analyses); this section quantifies it. The gains appear in the
   regime where at most one dead set matters at the target probability
   (P(two dead)^ ~ 8e-14 > 1e-15 at pfail 1e-4, so we also show
   pfail = 1e-5 where the refinement binds). *)
let section_future_work () =
  banner "Future work (paper Section VI): refined SRB analysis";
  Printf.printf "  %-10s %-8s %10s %10s %10s %8s\n" "benchmark" "pfail" "ff" "srb" "refined"
    "gain";
  List.iter
    (fun pfail ->
      let pbf = Fault.Model.pbf_of_config ~pfail config in
      List.iter
        (fun name ->
          let task = task_of name in
          let ff = Pwcet.Estimator.fault_free_wcet task in
          let srb =
            Pwcet.Estimator.estimate task ~pfail
              ~mechanism:Pwcet.Mechanism.Shared_reliable_buffer ~jobs ()
          in
          let refined =
            Pwcet.Srb_refined.compute ~graph:task.Pwcet.Estimator.graph
              ~loops:task.Pwcet.Estimator.loops ~config ~pbf ()
          in
          let q_srb = ff + Prob.Dist.quantile srb.Pwcet.Estimator.penalty ~target in
          let q_ref = ff + Pwcet.Srb_refined.quantile refined ~target in
          Printf.printf "  %-10s %-8g %10d %10d %10d %7.1f%%\n" name pfail ff q_srb q_ref
            (100.0 *. float_of_int (q_srb - q_ref) /. float_of_int q_srb))
        [ "fibcall"; "crc"; "matmult"; "jfdctint" ])
    [ 1e-4; 1e-5 ];
  Printf.printf
    "\nAt pfail 1e-4 the 1e-15 quantile is set by two simultaneously dead\n\
     sets whose blocks contend for the single buffer, which no analysis\n\
     precision can recover; at 1e-5 the single-dead-set terms dominate\n\
     and the exclusive-buffer analysis shows its gains.\n"

(* --- Future work: data cache -------------------------------------------------------- *)

(* The other Section-VI direction: "transpose the hardware and
   corresponding analyses to data caches". lib/dcache implements it; a
   second 1 KB 4-way cache serves the data segment (the stack lives in a
   scratchpad, stores are write-through/no-allocate). *)
let section_data_cache () =
  banner "Future work (paper Section VI): data-cache transposition";
  let dconfig = config in
  Printf.printf "  %-10s %10s %12s %12s %12s\n" "benchmark" "wcet I+D" "pwcet(n,n)" "pwcet(rw,rw)"
    "pwcet(s,s)";
  List.iter
    (fun name ->
      let entry = Option.get (Benchmarks.Registry.find name) in
      let compiled = Minic.Compile.compile entry.Benchmarks.Registry.program in
      let task = Dcache.Destimator.prepare ~compiled ~iconfig:config ~dconfig () in
      let p imech dmech =
        Dcache.Destimator.pwcet (Dcache.Destimator.estimate task ~pfail ~imech ~dmech ~jobs ())
          ~target
      in
      Printf.printf "  %-10s %10d %12d %12d %12d\n" name task.Dcache.Destimator.wcet_ff
        (p Pwcet.Mechanism.No_protection Pwcet.Mechanism.No_protection)
        (p Pwcet.Mechanism.Reliable_way Pwcet.Mechanism.Reliable_way)
        (p Pwcet.Mechanism.Shared_reliable_buffer Pwcet.Mechanism.Shared_reliable_buffer))
    [ "fibcall"; "bs"; "crc"; "cnt"; "adpcm" ];
  Printf.printf
    "\nPrecise data references (global scalars, single-block arrays) are\n\
     classified like instruction fetches; multi-block array accesses are\n\
     conservatively costed as misses — the expected precision loss of\n\
     address-range analysis without value analysis.\n"

(* --- FMM engine comparison (machine-readable) --------------------------------- *)

(* Naive (whole-CFG re-analysis per (set, fault count)) vs sliced
   (per-set condensed fixpoints + saturation early-exit) FMM engines on
   the 64-set geometry, written to BENCH_fmm.json for tracking. Tables
   are asserted bit-identical before any timing is reported. *)
let section_fmm_json () =
  banner "FMM engine comparison (naive vs sliced) -> BENCH_fmm.json";
  let task = task_of "adpcm" in
  let graph = task.Pwcet.Estimator.graph and loops = task.Pwcet.Estimator.loops in
  let wide_config = Cache.Config.make ~sets:64 ~ways:4 ~line_bytes:16 () in
  let run ~impl ~jobs () =
    Pwcet.Fmm.compute ~graph ~loops ~config:wide_config
      ~mechanism:Pwcet.Mechanism.No_protection ~jobs ~impl ()
  in
  (* Best of three runs, after one warm-up that also yields the table. *)
  let time f =
    let result = f () in
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    (result, !best)
  in
  let naive, naive_s = time (run ~impl:`Naive ~jobs:1) in
  let sliced, sliced_s = time (run ~impl:`Sliced ~jobs:1) in
  let n_jobs = if jobs > 1 then jobs else 2 in
  let sliced_j, sliced_jobs_s = time (run ~impl:`Sliced ~jobs:n_jobs) in
  let identical =
    Pwcet.Fmm.table naive = Pwcet.Fmm.table sliced
    && Pwcet.Fmm.table naive = Pwcet.Fmm.table sliced_j
  in
  if not identical then failwith "fmm-json: naive and sliced tables differ";
  let speedup = naive_s /. sliced_s in
  Printf.printf "  naive  jobs=1 : %8.3f s\n" naive_s;
  Printf.printf "  sliced jobs=1 : %8.3f s   (%.2fx)\n" sliced_s speedup;
  Printf.printf "  sliced jobs=%d : %8.3f s   (%.2fx)\n" n_jobs sliced_jobs_s
    (naive_s /. sliced_jobs_s);
  Printf.printf "  tables identical: %b\n" identical;
  let oc = open_out "BENCH_fmm.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 1,\n\
    \  \"git_commit\": %S,\n\
    \  \"benchmark\": \"adpcm\",\n\
    \  \"geometry\": { \"sets\": 64, \"ways\": 4, \"line_bytes\": 16 },\n\
    \  \"mechanism\": \"no_protection\",\n\
    \  \"engine\": \"path\",\n\
    \  \"runs\": \"best of 3\",\n\
    \  \"naive_s\": %.6f,\n\
    \  \"sliced_s\": %.6f,\n\
    \  \"sliced_jobs\": %d,\n\
    \  \"sliced_jobs_s\": %.6f,\n\
    \  \"speedup_sliced_vs_naive\": %.3f,\n\
    \  \"speedup_sliced_jobs_vs_naive\": %.3f,\n\
    \  \"tables_identical\": %b\n\
     }\n"
    (git_commit ()) naive_s sliced_s n_jobs sliced_jobs_s speedup (naive_s /. sliced_jobs_s)
    identical;
  close_out oc;
  Printf.printf "  wrote BENCH_fmm.json\n"

(* --- Distribution engine + sweep comparison (machine-readable) ------------------ *)

(* Two amortisations from the distribution-engine overhaul, quantified
   on the 64-set geometry and written to BENCH_dist.json:
     1. total-distribution stage: the grouped engine (shared way PMF,
        equal-row grouping, power convolution by squaring, merge kernel)
        vs the reference engine (per-set hash-table convolutions);
     2. a pfail sweep through Estimator.sweep (FMM computed once) vs
        independent end-to-end estimates per grid point.
   Both comparisons assert equal pWCET tables before any timing is
   reported. *)
let section_dist_json () =
  banner "Distribution engine + sweep comparison -> BENCH_dist.json";
  let wide_config = Cache.Config.make ~sets:64 ~ways:4 ~line_bytes:16 () in
  let entry = Option.get (Benchmarks.Registry.find "adpcm") in
  let compiled = Minic.Compile.compile entry.Benchmarks.Registry.program in
  let task =
    Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config:wide_config ()
  in
  let time ?(reps = 3) f =
    let result = f () in
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    (result, !best)
  in
  let targets = [ 1e-9; 1e-12; 1e-15; 1e-18 ] in
  (* 1. Total-distribution stage, reference vs grouped, same FMM. *)
  let mechanism = Pwcet.Mechanism.No_protection in
  let est = Pwcet.Estimator.estimate task ~pfail ~mechanism () in
  let fmm = est.Pwcet.Estimator.fmm and pbf = est.Pwcet.Estimator.pbf in
  let reference_d, reference_s =
    time (fun () -> Pwcet.Penalty.total_distribution ~impl:`Reference ~fmm ~pbf ())
  in
  let grouped_d, grouped_s =
    time (fun () -> Pwcet.Penalty.total_distribution ~impl:`Grouped ~fmm ~pbf ())
  in
  let dist_identical =
    List.for_all
      (fun target ->
        Prob.Dist.quantile reference_d ~target = Prob.Dist.quantile grouped_d ~target)
      targets
  in
  let dist_speedup = reference_s /. grouped_s in
  Printf.printf "  total distribution (%d sets, jobs=1):\n" wide_config.Cache.Config.sets;
  Printf.printf "    reference engine : %10.6f s\n" reference_s;
  Printf.printf "    grouped engine   : %10.6f s   (%.2fx)\n" grouped_s dist_speedup;
  (* 2. pfail sweep vs independent end-to-end runs. The sweep amortises
     everything pfail-independent — CFG/CHMC/fault-free WCET (prepare)
     and the FMM — so the honest baseline is what a user without sweep
     mode runs: the full pipeline once per grid point. *)
  let grid = [ 1e-8; 1e-7; 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1 ] in
  let prepare () =
    Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config:wide_config ()
  in
  let swept, sweep_s =
    time ~reps:2 (fun () ->
        Pwcet.Estimator.sweep (prepare ()) ~pfail_grid:grid ~mechanism ())
  in
  let independent, independent_s =
    time ~reps:2 (fun () ->
        List.map (fun pfail -> Pwcet.Estimator.estimate (prepare ()) ~pfail ~mechanism ()) grid)
  in
  let sweep_identical =
    List.for_all2
      (fun (a : Pwcet.Estimator.estimate) (b : Pwcet.Estimator.estimate) ->
        Prob.Dist.support a.Pwcet.Estimator.penalty = Prob.Dist.support b.Pwcet.Estimator.penalty
        && List.for_all
             (fun target ->
               Pwcet.Estimator.pwcet a ~target = Pwcet.Estimator.pwcet b ~target)
             targets)
      swept independent
  in
  let sweep_speedup = independent_s /. sweep_s in
  Printf.printf "  pfail sweep (%d points):\n" (List.length grid);
  Printf.printf "    independent runs : %10.6f s\n" independent_s;
  Printf.printf "    Estimator.sweep  : %10.6f s   (%.2fx)\n" sweep_s sweep_speedup;
  let identical = dist_identical && sweep_identical in
  Printf.printf "  tables identical: %b\n" identical;
  if not identical then failwith "dist-json: engines disagree on pWCET tables";
  let oc = open_out "BENCH_dist.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 1,\n\
    \  \"benchmark\": \"adpcm\",\n\
    \  \"geometry\": { \"sets\": %d, \"ways\": %d, \"line_bytes\": %d },\n\
    \  \"mechanism\": \"no_protection\",\n\
    \  \"git_commit\": %S,\n\
    \  \"runs\": \"best of 3 (stage), best of 2 (sweep)\",\n\
    \  \"reference_total_dist_s\": %.6f,\n\
    \  \"grouped_total_dist_s\": %.6f,\n\
    \  \"speedup_grouped_vs_reference\": %.3f,\n\
    \  \"sweep_points\": %d,\n\
    \  \"sweep_s\": %.6f,\n\
    \  \"independent_s\": %.6f,\n\
    \  \"speedup_sweep_vs_independent\": %.3f,\n\
    \  \"tables_identical\": %b\n\
     }\n"
    wide_config.Cache.Config.sets wide_config.Cache.Config.ways
    wide_config.Cache.Config.line_bytes (git_commit ()) reference_s grouped_s dist_speedup
    (List.length grid) sweep_s independent_s sweep_speedup identical;
  close_out oc;
  Printf.printf "  wrote BENCH_dist.json\n"

(* --- Artifact-store cold/warm comparison (machine-readable) --------------------- *)

(* The crash-safe artifact store's value proposition, quantified: a
   warm-cache rerun (FMM tables, fault-free WCET and per-point penalty
   distributions all replayed from disk with integrity checks) vs a
   cold populate-the-cache run vs the uncached pipeline. pWCETs are
   asserted bit-identical across all three before any timing is
   reported — the cache must buy time, never change results. *)
let section_store_json () =
  banner "Artifact store cold/warm comparison -> BENCH_store.json";
  let wide_config = Cache.Config.make ~sets:64 ~ways:4 ~line_bytes:16 () in
  let entry = Option.get (Benchmarks.Registry.find "adpcm") in
  let program = (Minic.Compile.compile entry.Benchmarks.Registry.program).Minic.Compile.program in
  let targets = [ 1e-9; 1e-12; 1e-15 ] in
  let run ?store () =
    let task = Pwcet.Estimator.prepare ~program ~config:wide_config ?store () in
    List.concat_map
      (fun mechanism ->
        let est = Pwcet.Estimator.estimate task ~pfail ~mechanism ?store () in
        List.map (fun target -> Pwcet.Estimator.pwcet est ~target) targets)
      Pwcet.Mechanism.all
  in
  let time ?(reps = 3) f =
    let result = f () in
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    (result, !best)
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun name -> rm (Filename.concat path name)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pwcet_bench_store.%d" (Unix.getpid ()))
  in
  let uncached, uncached_s = time (fun () -> run ()) in
  (* Cold: every rep starts from an empty directory, so the measured
     time includes computing and atomically writing every artifact. *)
  let cold, cold_s =
    time (fun () ->
        rm dir;
        run ~store:(Store.Artifact.open_store ~dir ()) ())
  in
  let warm_store = Store.Artifact.open_store ~dir () in
  let warm, warm_s = time (fun () -> run ~store:warm_store ()) in
  let stats = Store.Artifact.stats warm_store in
  let identical = uncached = cold && cold = warm in
  rm dir;
  if not identical then failwith "store-json: cached and uncached pWCETs differ";
  Printf.printf "  uncached : %8.3f s\n" uncached_s;
  Printf.printf "  cold     : %8.3f s   (cache populated; %.2fx vs uncached)\n" cold_s
    (uncached_s /. cold_s);
  Printf.printf "  warm     : %8.3f s   (%.2fx vs uncached)\n" warm_s (uncached_s /. warm_s);
  Printf.printf "  pWCETs identical: %b\n" identical;
  let oc = open_out "BENCH_store.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 1,\n\
    \  \"benchmark\": \"adpcm\",\n\
    \  \"geometry\": { \"sets\": %d, \"ways\": %d, \"line_bytes\": %d },\n\
    \  \"mechanisms\": [\"none\", \"srb\", \"rw\"],\n\
    \  \"git_commit\": %S,\n\
    \  \"runs\": \"best of 3\",\n\
    \  \"uncached_s\": %.6f,\n\
    \  \"cold_s\": %.6f,\n\
    \  \"warm_s\": %.6f,\n\
    \  \"speedup_warm_vs_uncached\": %.3f,\n\
    \  \"warm_hits\": %d,\n\
    \  \"warm_misses\": %d,\n\
    \  \"pwcets_identical\": %b\n\
     }\n"
    wide_config.Cache.Config.sets wide_config.Cache.Config.ways
    wide_config.Cache.Config.line_bytes (git_commit ()) uncached_s cold_s warm_s
    (uncached_s /. warm_s) stats.Store.Artifact.hits stats.Store.Artifact.misses identical;
  close_out oc;
  Printf.printf "  wrote BENCH_store.json\n"

(* --- Analysis daemon cold/warm/concurrent (machine-readable) -------------------- *)

(* The pWCET-as-a-service daemon, measured end to end over its own Unix
   socket: a cold sweep (every request computes and populates the
   store + prepared-task cache), the identical warm sweep (store
   replays, prepare skipped), a concurrent warm phase for throughput,
   and the dedup guarantee demonstrated live — K identical concurrent
   requests, exactly one computation. Latencies ride the monotonic
   clock ({!Robust.Budget.now}), the same scale the daemon's deadlines
   use. The headline acceptance number is speedup_warm_vs_cold_p95. *)
let section_service_json () =
  banner "Analysis daemon cold/warm/concurrent -> BENCH_service.json";
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun name -> rm (Filename.concat path name)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  let tmp = Filename.get_temp_dir_name () in
  let store_dir = Filename.concat tmp (Printf.sprintf "pwcet_bench_svc.%d" (Unix.getpid ())) in
  let socket = Filename.concat tmp (Printf.sprintf "pwcet_bench_svc.%d.sock" (Unix.getpid ())) in
  rm store_dir;
  (try Sys.remove socket with Sys_error _ -> ());
  let store = Store.Artifact.open_store ~dir:store_dir () in
  let domains = max 2 (min 4 jobs) in
  let scheduler =
    Service.Scheduler.create
      { Service.Scheduler.domains; queue_max = 64; store = Some store; task_cache_max = 32;
        result_cache_max = 256; chaos = None }
  in
  let stop = Atomic.make false in
  let ready_m = Mutex.create () and ready_c = Condition.create () and ready = ref false in
  let server =
    Thread.create
      (fun () ->
        Service.Server.run
          { Service.Server.socket_path = socket; scheduler; stop; max_conns = None;
            read_timeout_s = None; chaos = None;
            on_ready =
              (fun () ->
                Mutex.lock ready_m;
                ready := true;
                Condition.signal ready_c;
                Mutex.unlock ready_m) })
      ()
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join server;
      rm store_dir)
    (fun () ->
      (* The 64-set geometry: heavy enough cold (CFG recovery, cache
         analysis, per-set FMM fan-out) that the warm path's value
         shows; warm cost is geometry-independent. *)
      let benches = [ "fibcall"; "crc"; "cnt"; "adpcm" ] in
      let reqs =
        List.concat_map
          (fun bench ->
            List.map
              (fun mechanism ->
                { (Service.Protocol.default_analyze ~bench) with mechanism; sets = 64 })
              Pwcet.Mechanism.all)
          benches
      in
      (* Sequential passes over the request list, each latency measured
         individually; any non-Result response is a bench failure. Cold
         is one pass by nature (a request is only ever cold once); warm
         is per-request best-of-[reps], the harness's usual steady-state
         convention, so one scheduler hiccup can't smear the
         percentiles. *)
      let sweep ?(reps = 1) label =
        let n = List.length reqs in
        let best = Array.make n infinity in
        for _ = 1 to reps do
          List.iteri
            (fun i a ->
              let t0 = Robust.Budget.now () in
              (match Service.Client.request ~socket (Service.Protocol.Analyze a) with
              | Ok (Service.Protocol.Result _) -> ()
              | Ok _ -> failwith (Printf.sprintf "service-json: unexpected %s response" label)
              | Error msg ->
                failwith (Printf.sprintf "service-json: %s request failed: %s" label msg));
              let dt = Robust.Budget.now () -. t0 in
              if dt < best.(i) then best.(i) <- dt)
            reqs
        done;
        let sorted = Array.copy best in
        Array.sort compare sorted;
        let ms p = 1000.0 *. Service.Client.percentile sorted p in
        (ms 0.50, ms 0.95, ms 0.99)
      in
      let cold_p50, cold_p95, cold_p99 = sweep "cold" in
      let warm_p50, warm_p95, warm_p99 = sweep ~reps:3 "warm" in
      let speedup_p95 = cold_p95 /. warm_p95 in
      Printf.printf "  cold sweep (%d requests) : p50 %8.2f ms  p95 %8.2f ms  p99 %8.2f ms\n"
        (List.length reqs) cold_p50 cold_p95 cold_p99;
      Printf.printf "  warm sweep (%d requests) : p50 %8.2f ms  p95 %8.2f ms  p99 %8.2f ms\n"
        (List.length reqs) warm_p50 warm_p95 warm_p99;
      Printf.printf "  warm vs cold p95         : %.1fx\n" speedup_p95;
      (* Concurrent warm phase: every key already cached, so this
         measures the socket + scheduler path under parallel load. *)
      let clients = 4 and per_client = 2 * List.length reqs in
      let conc = Service.Client.load ~socket ~clients ~requests:per_client reqs in
      if conc.Service.Client.errors > 0 then failwith "service-json: concurrent phase had errors";
      Printf.printf "  concurrent warm (%d x %d) : %.0f req/s  p50 %.2f ms  p95 %.2f ms\n"
        clients per_client conc.Service.Client.throughput conc.Service.Client.p50_ms
        conc.Service.Client.p95_ms;
      (* Dedup guarantee, live: K identical concurrent requests on a
         fresh key (distinct pfail so no cache can answer), exactly one
         computation. delay_ms holds the leader open long enough for
         every joiner to arrive. *)
      let before = Service.Scheduler.stats scheduler in
      let dedup_req =
        { (Service.Protocol.default_analyze ~bench:"adpcm") with pfail = 3.25e-5; delay_ms = 300 }
      in
      let k = 8 in
      let dedup = Service.Client.load ~socket ~clients:k ~requests:1 [ dedup_req ] in
      let after = Service.Scheduler.stats scheduler in
      let dedup_computations = after.Service.Protocol.computations - before.Service.Protocol.computations in
      let dedup_joined = after.Service.Protocol.deduped - before.Service.Protocol.deduped in
      Printf.printf "  dedup: %d identical concurrent -> %d computation(s), %d joined\n" k
        dedup_computations dedup_joined;
      if dedup_computations <> 1 || dedup.Service.Client.errors > 0 then
        failwith "service-json: dedup guarantee violated";
      let hits, misses, puts =
        match after.Service.Protocol.store with Some s -> s | None -> (0, 0, 0)
      in
      let oc = open_out "BENCH_service.json" in
      Printf.fprintf oc
        "{\n\
        \  \"schema_version\": 1,\n\
        \  \"git_commit\": %S,\n\
        \  \"runs\": \"cold single pass, warm best of 3 per request\",\n\
        \  \"benchmarks\": [\"fibcall\", \"crc\", \"cnt\", \"adpcm\"],\n\
        \  \"mechanisms\": [\"none\", \"srb\", \"rw\"],\n\
        \  \"geometry\": { \"sets\": 64, \"ways\": 4, \"line_bytes\": 16 },\n\
        \  \"domains\": %d,\n\
        \  \"requests_per_sweep\": %d,\n\
        \  \"cold_p50_ms\": %.3f,\n\
        \  \"cold_p95_ms\": %.3f,\n\
        \  \"cold_p99_ms\": %.3f,\n\
        \  \"warm_p50_ms\": %.3f,\n\
        \  \"warm_p95_ms\": %.3f,\n\
        \  \"warm_p99_ms\": %.3f,\n\
        \  \"speedup_warm_vs_cold_p95\": %.3f,\n\
        \  \"concurrent_clients\": %d,\n\
        \  \"concurrent_requests\": %d,\n\
        \  \"concurrent_throughput_rps\": %.1f,\n\
        \  \"concurrent_p50_ms\": %.3f,\n\
        \  \"concurrent_p95_ms\": %.3f,\n\
        \  \"concurrent_p99_ms\": %.3f,\n\
        \  \"dedup_clients\": %d,\n\
        \  \"dedup_computations\": %d,\n\
        \  \"dedup_joined\": %d,\n\
        \  \"store_hits\": %d,\n\
        \  \"store_misses\": %d,\n\
        \  \"store_puts\": %d\n\
         }\n"
        (git_commit ()) domains (List.length reqs) cold_p50 cold_p95 cold_p99 warm_p50 warm_p95
        warm_p99 speedup_p95 clients (clients * per_client) conc.Service.Client.throughput
        conc.Service.Client.p50_ms conc.Service.Client.p95_ms conc.Service.Client.p99_ms k
        dedup_computations dedup_joined hits misses puts;
      close_out oc;
      Printf.printf "  wrote BENCH_service.json\n")

(* --- Sched campaign: batched law reuse vs independent analysis ------------------ *)

(* The schedulability campaign's value proposition, quantified: a
   campaign computes each distinct benchmark's pWCET law exactly once
   and reuses it across every task set (batched), while the obvious
   baseline re-derives the laws each set needs from the warm artifact
   store, set by set (independent). Both paths read the same warm
   store, and the campaign digests are asserted bit-identical before
   any timing is reported — batching must buy time, never change
   verdicts. Acceptance: batched >= 5x faster than independent. *)
let section_sched_json () =
  banner "Sched campaign batched vs independent -> BENCH_sched.json";
  let module SC = Sched.Campaign in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun name -> rm (Filename.concat path name)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pwcet_bench_sched.%d" (Unix.getpid ()))
  in
  let spec =
    match
      SC.make ~count:40 ~n_tasks:3 ~utilisation:0.6 ~seed:42
        ~benchmarks:[ "nsichneu"; "fft"; "statemate"; "edn"; "adpcm" ]
        ~sets:64 ~ways:4 ~k_max:1 ~max_points:64 ()
    with
    | Ok spec -> spec
    | Error msg -> failwith ("sched-json: bad spec: " ^ msg)
  in
  rm dir;
  (* Populate the store once (untimed): both measured paths then run
     against the identical warm cache. *)
  ignore (SC.laws ~store:(Store.Artifact.open_store ~dir ()) spec);
  let time ?(reps = 3) f =
    let result = f () in
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    (result, !best)
  in
  let batched, batched_s =
    time (fun () ->
        let store = Store.Artifact.open_store ~dir () in
        let laws = SC.laws ~store spec in
        (SC.run_with_laws spec laws).SC.results)
  in
  let independent, independent_s =
    time (fun () ->
        let store = Store.Artifact.open_store ~dir () in
        List.init spec.SC.count (fun index ->
            let ts = Sched.Taskset.generate (SC.taskset_spec spec) ~index in
            let benches =
              List.fold_left
                (fun acc (t : Sched.Taskset.task) ->
                  if List.mem t.bench acc then acc else acc @ [ t.bench ])
                [] ts.Sched.Taskset.tasks
            in
            let laws = SC.laws ~store { spec with SC.benchmarks = benches } in
            fst (SC.analyze_set spec laws ~index)))
  in
  let batched_digest = SC.digest_of_results batched in
  let independent_digest = SC.digest_of_results independent in
  rm dir;
  if batched_digest <> independent_digest then
    failwith "sched-json: batched and independent campaign digests differ";
  let speedup = independent_s /. batched_s in
  Printf.printf "  independent : %8.3f s   (laws re-derived per task set)\n" independent_s;
  Printf.printf "  batched     : %8.3f s   (laws computed once; %.2fx)\n" batched_s speedup;
  Printf.printf "  digests identical: %b  (%s)\n" true batched_digest;
  if speedup < 5.0 then
    failwith (Printf.sprintf "sched-json: speedup %.2fx below the 5x acceptance floor" speedup);
  let oc = open_out "BENCH_sched.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 1,\n\
    \  \"git_commit\": %S,\n\
    \  \"runs\": \"best of 3\",\n\
    \  \"task_sets\": %d,\n\
    \  \"tasks_per_set\": %d,\n\
    \  \"utilisation\": %.3f,\n\
    \  \"benchmarks\": [%s],\n\
    \  \"geometry\": { \"sets\": %d, \"ways\": %d, \"line_bytes\": %d },\n\
    \  \"policy\": \"rm\",\n\
    \  \"k_max\": %d,\n\
    \  \"max_points\": %d,\n\
    \  \"independent_s\": %.6f,\n\
    \  \"batched_s\": %.6f,\n\
    \  \"speedup_batched_vs_independent\": %.3f,\n\
    \  \"digest\": %S,\n\
    \  \"digests_identical\": true\n\
     }\n"
    (git_commit ()) spec.SC.count spec.SC.n_tasks spec.SC.utilisation
    (String.concat ", " (List.map (Printf.sprintf "%S") spec.SC.benchmarks))
    spec.SC.sets spec.SC.ways spec.SC.line spec.SC.k_max spec.SC.max_points independent_s
    batched_s speedup batched_digest;
  close_out oc;
  Printf.printf "  wrote BENCH_sched.json\n"

(* --- Bechamel timing ------------------------------------------------------------ *)

(* --- grid-json --------------------------------------------------------------- *)

(* The cross-configuration grid engine's claim, quantified: one pass
   over mechanism x geometry x pfail shares the per-(program, geometry)
   analysis context, CHMC fixpoints, fault-free WCET and the
   mechanism-independent FMM row prefixes, so the whole matrix costs a
   little more than one full analysis per geometry instead of one per
   cell. Run single-threaded on purpose — the container is one core,
   so the reported speedup is pure structural sharing, not
   parallelism. Every cell is asserted bit-identical to an independent
   end-to-end estimate and the matrix digest identical for jobs 1/2/4
   before any timing is reported (acceptance: >= 5x on the 3-mechanism
   x 2-geometry x 8-pfail grid). *)
let section_grid_json () =
  banner "One-pass grid vs independent per-cell estimates -> BENCH_grid.json";
  let bench = "adpcm" in
  let entry = Option.get (Benchmarks.Registry.find bench) in
  let program = (Minic.Compile.compile entry.Benchmarks.Registry.program).Minic.Compile.program in
  let geometries = [ (16, 4, 16); (64, 4, 16) ] in
  let configs =
    List.map (fun (sets, ways, line) -> Cache.Config.make ~sets ~ways ~line_bytes:line ()) geometries
  in
  let pfails = [ 1e-8; 1e-7; 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1 ] in
  let grid_target = 1e-15 in
  let spec =
    { Grid.benchmarks = [ (bench, program) ];
      configs;
      mechanisms = Pwcet.Mechanism.all;
      pfail_grid = pfails;
      targets = [ grid_target ];
      engine = `Path;
      exact = false;
      impl = `Sliced }
  in
  (* Best of three runs, after one warm-up that also yields the data. *)
  let time f =
    let result = f () in
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    (result, !best)
  in
  let one_pass, one_pass_s = time (fun () -> Grid.run ~jobs:1 spec) in
  let digest = Grid.digest one_pass in
  List.iter
    (fun jobs ->
      if Grid.digest (Grid.run ~jobs spec) <> digest then
        failwith (Printf.sprintf "grid-json: jobs=%d digest differs from jobs=1" jobs))
    [ 2; 4 ];
  (* The baseline the grid replaces: every cell prepared and estimated
     from scratch, exactly what N independent analyze runs would do. *)
  let independents, independent_s =
    time (fun () ->
        List.map
          (fun (point : Grid.point) ->
            let task = Pwcet.Estimator.prepare ~program ~config:point.Grid.config () in
            ( point,
              task,
              Pwcet.Estimator.estimate task ~pfail:point.Grid.pfail
                ~mechanism:point.Grid.mechanism ~jobs:1 () ))
          (Grid.points spec))
  in
  List.iter2
    (fun (point, outcome) (point', task, est) ->
      if Grid.point_key point <> Grid.point_key point' then
        failwith "grid-json: grid and independent cell orders diverge";
      match outcome with
      | Error e ->
        failwith
          (Printf.sprintf "grid-json: cell %s failed: %s" (Grid.point_key point)
             (Robust.Pwcet_error.to_string e))
      | Ok cell ->
        let same =
          cell.Grid.wcet_ff = Pwcet.Estimator.fault_free_wcet task
          && cell.Grid.pbf = est.Pwcet.Estimator.pbf
          && List.for_all
               (fun (t, q) -> Pwcet.Estimator.pwcet est ~target:t = q)
               cell.Grid.pwcets
          && Robust.Rung.equal cell.Grid.rung (Pwcet.Estimator.worst_rung est)
        in
        if not same then
          failwith
            (Printf.sprintf "grid-json: cell %s differs from its independent estimate"
               (Grid.point_key point)))
    one_pass independents;
  let cells = List.length one_pass in
  let speedup = independent_s /. one_pass_s in
  Printf.printf "  cells                : %d (%s x %d geometries x %d mechanisms x %d pfails)\n"
    cells bench (List.length configs)
    (List.length spec.Grid.mechanisms)
    (List.length pfails);
  Printf.printf "  one-pass  jobs=1     : %8.3f s\n" one_pass_s;
  Printf.printf "  independent per-cell : %8.3f s\n" independent_s;
  Printf.printf "  speedup              : %.2fx\n" speedup;
  Printf.printf "  digest (jobs 1=2=4)  : %s\n" digest;
  Printf.printf "  cells identical to independent estimates: true\n";
  if speedup < 5.0 then
    failwith
      (Printf.sprintf "grid-json: one-pass speedup %.2fx is below the 5x acceptance floor"
         speedup);
  let oc = open_out "BENCH_grid.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 1,\n\
    \  \"git_commit\": %S,\n\
    \  \"benchmark\": %S,\n\
    \  \"geometries\": [%s],\n\
    \  \"mechanisms\": [%s],\n\
    \  \"pfail_points\": %d,\n\
    \  \"target\": %.17g,\n\
    \  \"cells\": %d,\n\
    \  \"runs\": \"best of 3\",\n\
    \  \"one_pass_jobs1_s\": %.6f,\n\
    \  \"independent_per_cell_s\": %.6f,\n\
    \  \"speedup_one_pass_vs_independent\": %.3f,\n\
    \  \"cells_identical\": true,\n\
    \  \"jobs_digests_identical\": true,\n\
    \  \"digest\": %S\n\
     }\n"
    (git_commit ()) bench
    (String.concat ", "
       (List.map
          (fun (sets, ways, line) ->
            Printf.sprintf "{ \"sets\": %d, \"ways\": %d, \"line_bytes\": %d }" sets ways line)
          geometries))
    (String.concat ", "
       (List.map
          (fun m -> Printf.sprintf "%S" (Pwcet.Mechanism.short_name m))
          spec.Grid.mechanisms))
    (List.length pfails) grid_target cells one_pass_s independent_s speedup digest;
  close_out oc;
  Printf.printf "  wrote BENCH_grid.json\n"

(* --- sim-json ---------------------------------------------------------------- *)

(* The fault-injection emulator's evaluation artifact: the
   batched-vs-baseline speedup on adpcm over the 64-set geometry
   (acceptance: >= 10x, with per-sample cycle identity against the
   concrete Isa.Machine + cache-simulator baseline and replay/emulate
   digest identity), then million-sample campaigns for six registry
   benchmarks under all three mechanisms on the paper geometry, each
   held against the analytic pWCET curve. Everything is written to
   BENCH_sim.json by the same emitter the CLI uses. *)
let section_sim_json () =
  banner "Batched fault-injection campaigns + speedup -> BENCH_sim.json";
  let campaign_samples = 1_000_000 in
  let seed = 42 in
  let benches = [ "adpcm"; "bs"; "crc"; "fibcall"; "insertsort"; "matmult" ] in
  let compiled_of name =
    let entry = Option.get (Benchmarks.Registry.find name) in
    Minic.Compile.compile entry.Benchmarks.Registry.program
  in
  (* Speedup on the wide geometry, where the baseline's per-sample
     simulator construction hurts the most. *)
  let wide_config = Cache.Config.make ~sets:64 ~ways:4 ~line_bytes:16 () in
  let adpcm = compiled_of "adpcm" in
  let wide_task =
    Pwcet.Estimator.prepare ~program:adpcm.Minic.Compile.program ~config:wide_config ()
  in
  let wide_est =
    Pwcet.Estimator.estimate wide_task ~pfail ~mechanism:Pwcet.Mechanism.No_protection ~jobs ()
  in
  let sp =
    Pwcet.Validate.measure_speedup ~program:adpcm.Minic.Compile.program
      ~data:adpcm.Minic.Compile.data ~est:wide_est ~benchmark:"adpcm" ~samples:500 ()
  in
  Printf.printf "speedup (adpcm, 64 sets, %d samples):\n" sp.Pwcet.Validate.sp_samples;
  Printf.printf "  baseline: %10.0f samples/s\n" sp.Pwcet.Validate.baseline_samples_per_sec;
  Printf.printf "  batched : %10.0f samples/s (incl. one-time trace preparation)\n"
    sp.Pwcet.Validate.batched_samples_per_sec;
  Printf.printf "  factor  : %.1fx  (cycles identical: %b, engines identical: %b)\n\n"
    sp.Pwcet.Validate.factor sp.Pwcet.Validate.cycles_identical
    sp.Pwcet.Validate.engines_identical;
  let rows = ref [] in
  List.iter
    (fun name ->
      let compiled = compiled_of name in
      let program = compiled.Minic.Compile.program in
      let data = compiled.Minic.Compile.data in
      let task = Pwcet.Estimator.prepare ~program ~config () in
      List.iter
        (fun mechanism ->
          let est = Pwcet.Estimator.estimate task ~pfail ~mechanism ~jobs () in
          let c =
            Pwcet.Validate.check ~program ~data ~est ~samples:campaign_samples ~seed ~jobs ()
          in
          Printf.printf "  %-12s %-4s %9d samples %10.0f/s  gap %+.3e  %s\n" name
            (Pwcet.Mechanism.short_name mechanism)
            c.Pwcet.Validate.samples c.Pwcet.Validate.samples_per_sec c.Pwcet.Validate.max_gap
            (if Pwcet.Validate.ok c then "ok" else "VIOLATION");
          rows := (name, c) :: !rows)
        Pwcet.Mechanism.all)
    benches;
  Pwcet.Validate.write_json ~path:"BENCH_sim.json" ~git_commit:(git_commit ()) ~config ~pfail
    ~speedup:(Some sp) ~rows:(List.rev !rows);
  Printf.printf "  wrote BENCH_sim.json\n"

let section_bechamel () =
  banner "Analysis performance (Bechamel, one test per pipeline stage / figure)";
  let open Bechamel in
  let adpcm = task_of "adpcm" in
  let crc = task_of "crc" in
  let graph = adpcm.Pwcet.Estimator.graph and loops = adpcm.Pwcet.Estimator.loops in
  let crc_entry = Option.get (Benchmarks.Registry.find "crc") in
  let crc_compiled = Minic.Compile.compile crc_entry.Benchmarks.Registry.program in
  (* FMM scaling: the per-set fan-out on a large geometry (64 sets),
     sequential vs the -j domain count. Tables are bit-identical; only
     wall-clock may differ. *)
  let wide_config = Cache.Config.make ~sets:64 ~ways:4 ~line_bytes:16 () in
  let fmm_test ?(impl = `Sliced) n =
    let impl_name = match impl with `Naive -> "naive" | `Sliced -> "sliced" in
    Test.make
      ~name:(Printf.sprintf "fmm(adpcm,64 sets,%s,jobs=%d)" impl_name n)
      (Staged.stage (fun () ->
           ignore
             (Pwcet.Fmm.compute ~graph ~loops ~config:wide_config
                ~mechanism:Pwcet.Mechanism.No_protection ~jobs:n ~impl ())))
  in
  let n_jobs = if jobs > 1 then jobs else 2 in
  let tests =
    [ fmm_test ~impl:`Naive 1
    ; fmm_test 1
    ; fmm_test n_jobs
    ; Test.make ~name:"cache-analysis(adpcm)"
        (Staged.stage (fun () ->
             ignore (Cache_analysis.Chmc.analyze ~graph ~loops ~config ())))
    ; Test.make ~name:"wcet-path-engine(adpcm)"
        (Staged.stage (fun () ->
             ignore
               (Ipet.Wcet.compute ~graph ~loops ~chmc:adpcm.Pwcet.Estimator.chmc ~config
                  ~engine:`Path ())))
    ; Test.make ~name:"wcet-ilp-engine(crc)"
        (Staged.stage (fun () ->
             ignore
               (Ipet.Wcet.compute ~graph:crc.Pwcet.Estimator.graph
                  ~loops:crc.Pwcet.Estimator.loops ~chmc:crc.Pwcet.Estimator.chmc ~config
                  ~engine:`Ilp ())))
    ; Test.make ~name:"fig3-estimate(adpcm,none)"
        (Staged.stage (fun () ->
             ignore
               (Pwcet.Estimator.estimate adpcm ~pfail ~mechanism:Pwcet.Mechanism.No_protection
                  ())))
    ; Test.make ~name:"fig3-estimate(adpcm,srb)"
        (Staged.stage (fun () ->
             ignore
               (Pwcet.Estimator.estimate adpcm ~pfail
                  ~mechanism:Pwcet.Mechanism.Shared_reliable_buffer ())))
    ; Test.make ~name:"fig3-estimate(adpcm,rw)"
        (Staged.stage (fun () ->
             ignore
               (Pwcet.Estimator.estimate adpcm ~pfail ~mechanism:Pwcet.Mechanism.Reliable_way
                  ())))
    ; Test.make ~name:"fig4-row(crc,3 mechanisms)"
        (Staged.stage (fun () ->
             List.iter
               (fun mechanism ->
                 ignore
                   (Pwcet.Estimator.pwcet
                      (Pwcet.Estimator.estimate crc ~pfail ~mechanism ())
                      ~target))
               Pwcet.Mechanism.all))
    ; Test.make ~name:"eq1-3-fault-model"
        (Staged.stage (fun () ->
             let pbf = Fault.Model.pbf_of_config ~pfail config in
             ignore (Fault.Model.way_distribution ~ways:4 ~pbf);
             ignore (Fault.Model.way_distribution_rw ~ways:4 ~pbf)))
    ; Test.make ~name:"penalty-convolution(16 sets)"
        (Staged.stage
           (let est =
              Pwcet.Estimator.estimate adpcm ~pfail ~mechanism:Pwcet.Mechanism.No_protection ()
            in
            let fmm = est.Pwcet.Estimator.fmm in
            let pbf = est.Pwcet.Estimator.pbf in
            fun () -> ignore (Pwcet.Penalty.total_distribution ~fmm ~pbf ())))
    ; Test.make ~name:"simulator(crc,faulty-cache)"
        (Staged.stage
           (let fm = Cache.Fault_map.of_faulty_counts config (Array.make 16 2) in
            fun () ->
              let sim = Cache.Lru.create ~fault_map:fm config in
              ignore (Minic.Compile.run ~fetch:(Cache.Lru.latency_oracle sim) crc_compiled)))
    ]
  in
  let grouped = Test.make_grouped ~name:"pwcet" tests in
  let cfg_bench = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg_bench Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) results [] |> List.sort compare in
  Printf.printf "%-40s %15s %10s\n" "stage" "time/run" "r^2";
  List.iter
    (fun name ->
      let r = Hashtbl.find results name in
      let time_ns =
        match Analyze.OLS.estimates r with Some (t :: _) -> t | _ -> Float.nan
      in
      let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square r) in
      let pretty =
        if time_ns >= 1e9 then Printf.sprintf "%.2f s" (time_ns /. 1e9)
        else if time_ns >= 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
        else if time_ns >= 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
        else Printf.sprintf "%.0f ns" time_ns
      in
      Printf.printf "%-40s %15s %10.4f\n" name pretty r2)
    names

let () =
  if wanted "equations" then section_equations ();
  if wanted "figure1" then section_figure1 ();
  if wanted "figure3" then section_figure3 ();
  if wanted "figure4" then begin
    let rows = suite_rows () in
    section_figure4 rows;
    section_aggregates rows
  end;
  if wanted "geometry" then section_geometry ();
  if wanted "ablations" then section_ablations ();
  if wanted "future-work" then section_future_work ();
  if wanted "data-cache" then section_data_cache ();
  if wanted "fmm-json" then section_fmm_json ();
  if wanted "dist-json" then section_dist_json ();
  if wanted "store-json" then section_store_json ();
  if wanted "service-json" then section_service_json ();
  if wanted "sched-json" then section_sched_json ();
  if wanted "sim-json" then section_sim_json ();
  if wanted "grid-json" then section_grid_json ();
  if wanted "bechamel" then section_bechamel ();
  Printf.printf "\ndone.\n"

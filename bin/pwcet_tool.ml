(* Command-line front end for the fault-aware pWCET analyzer.

   Subcommands:
     list                     enumerate the benchmark suite
     disasm <bench>           disassembly of a compiled benchmark
     analyze <bench>          WCET / pWCET analysis of one benchmark
     sweep <bench>            pWCET across a pfail grid, one analysis per mechanism
     suite                    the Fig. 4 table over the whole suite
     simulate <bench>         Monte-Carlo faulty simulation vs the bound
     audit                    invariant auditor over the whole registry

   Exit codes: 0 success; 1 analysis failure, audit or simulated bound
   violation; 2 invalid input (bad benchmark, source, cache geometry,
   probability or budget); cmdliner's own codes for CLI errors. *)

open Cmdliner

let default_pfail = 1e-4
let default_target = 1e-15

let exit_invalid_input = 2

(* A target is a registered benchmark name or a path to a mini-C source
   file (anything containing '/' or ending in .c). *)
let load_target name =
  let from_file () =
    match Minic.Parser.program_of_file name with
    | prog -> (name, prog)
    | exception Minic.Parser.Error msg ->
      Printf.eprintf "%s: parse error: %s\n" name msg;
      exit exit_invalid_input
    | exception Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit exit_invalid_input
  in
  if Sys.file_exists name && not (Sys.is_directory name) then from_file ()
  else
    match Benchmarks.Registry.find name with
    | Some e -> (e.Benchmarks.Registry.name, e.Benchmarks.Registry.program)
    | None ->
      Printf.eprintf "unknown benchmark or file %s; try 'pwcet_tool list'\n" name;
      exit exit_invalid_input

let compile_target name =
  let label, prog = load_target name in
  try (label, Minic.Compile.compile prog)
  with
  | Minic.Typecheck.Error msg | Minic.Compile.Error msg ->
    Printf.eprintf "%s: %s\n" label msg;
    exit exit_invalid_input

let config_of sets ways line =
  try Cache.Config.make ~sets ~ways ~line_bytes:line ()
  with Invalid_argument msg ->
    Printf.eprintf "invalid cache configuration: %s\n" msg;
    exit exit_invalid_input

(* --- common options ---------------------------------------------------- *)

(* Probabilities are validated at the CLI boundary: NaN and infinities
   are rejected (a plain [float] converter would let them through and
   poison the distributions), and both pfail and the exceedance target
   only make sense strictly inside (0, 1). *)
let prob_conv =
  let parse s =
    match float_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "invalid probability %S" s))
    | Some p when not (Float.is_finite p) ->
      Error (`Msg (Printf.sprintf "probability must be finite, got %s" s))
    | Some p when p <= 0.0 || p >= 1.0 ->
      Error (`Msg (Printf.sprintf "probability must lie strictly inside (0, 1), got %s" s))
    | Some p -> Ok p
  in
  Arg.conv ~docv:"P" (parse, fun fmt p -> Format.fprintf fmt "%g" p)

let bench_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc:"Benchmark name or mini-C source file.")

let pfail_arg =
  Arg.(value & opt prob_conv default_pfail
       & info [ "pfail" ] ~docv:"P"
           ~doc:"Per-bit permanent failure probability, strictly inside (0, 1) (paper: 1e-4).")

let target_arg =
  Arg.(value & opt prob_conv default_target
       & info [ "target" ] ~docv:"P"
           ~doc:"Target exceedance probability for the reported pWCET, strictly inside (0, 1) \
                 (paper: 1e-15).")

let sets_arg = Arg.(value & opt int 16 & info [ "sets" ] ~doc:"Cache sets (power of two).")
let ways_arg = Arg.(value & opt int 4 & info [ "ways" ] ~doc:"Cache associativity.")
let line_arg = Arg.(value & opt int 16 & info [ "line" ] ~doc:"Cache line size in bytes.")

let engine_conv = Arg.enum [ ("path", `Path); ("ilp", `Ilp) ]

let engine_arg =
  Arg.(value & opt engine_conv `Path
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Bounding engine: tree-based 'path' (default) or 'ilp'.")

let exact_arg =
  Arg.(value & flag
       & info [ "exact" ]
           ~doc:"With --engine ilp, solve with exact branch-and-bound instead of the LP \
                 relaxation. Under a starved --ilp-nodes budget the solver degrades \
                 back down the Exact -> Relaxed -> Structural ladder instead of failing.")

let jobs_arg =
  Arg.(value & opt int (Parallel.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the per-set fault analyses (default: the \
                 runtime's recommended domain count; 1 = sequential). Results \
                 are identical for every value.")

let impl_conv = Arg.enum [ ("naive", `Naive); ("sliced", `Sliced) ]

let impl_arg =
  Arg.(value & opt impl_conv `Sliced
       & info [ "fmm-impl" ] ~docv:"IMPL"
           ~doc:"FMM degraded-analysis engine: 'sliced' (default; per-set \
                 condensed fixpoints with saturation early-exit) or 'naive' \
                 (whole-CFG re-analysis per fault count). Tables are \
                 bit-identical; only the analysis time differs.")

let ilp_nodes_arg =
  Arg.(value & opt (some int) None
       & info [ "ilp-nodes" ] ~docv:"N"
           ~doc:"Branch-and-bound node budget per ILP. Exhaustion degrades that bound to \
                 the LP relaxation (still sound), never aborts the run.")

let timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget for the whole analysis. Per-set analyses that start \
                 after the deadline fall back to the structural bound (still sound).")

let budget_of ilp_nodes timeout =
  match (ilp_nodes, timeout) with
  | None, None -> None
  | _ -> (
    try Some (Robust.Budget.make ?ilp_nodes ?timeout ())
    with Invalid_argument msg ->
      Printf.eprintf "invalid budget: %s\n" msg;
      exit exit_invalid_input)

let exits =
  Cmd.Exit.info 1
    ~doc:"on an analysis failure, an audit violation, or a simulated bound violation."
  :: Cmd.Exit.info exit_invalid_input
       ~doc:"on invalid input: unknown benchmark, source parse/type error, bad cache \
             geometry, probability outside (0, 1), or a malformed budget."
  :: Cmd.Exit.defaults

let cmd_info name ~doc = Cmd.info name ~doc ~exits

let rung_tag rung =
  match rung with
  | Robust.Rung.Exact -> ""
  | r -> Printf.sprintf "  [degraded: %s]" (Robust.Rung.to_string r)

let report_degradation label est =
  List.iter
    (fun (set, err) ->
      Printf.eprintf "%s: set %d fell back to the structural bound: %s\n" label set
        (Robust.Pwcet_error.to_string err))
    (Pwcet.Estimator.degradation_errors est)

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Benchmarks.Registry.entry) ->
        let compiled = Minic.Compile.compile e.Benchmarks.Registry.program in
        Printf.printf "%-14s %5d instructions  %s\n" e.Benchmarks.Registry.name
          (Isa.Program.instruction_count compiled.Minic.Compile.program)
          e.Benchmarks.Registry.description)
      Benchmarks.Registry.all
  in
  Cmd.v (cmd_info "list" ~doc:"List the benchmark suite")
    Term.(const run $ const ())

(* --- disasm --------------------------------------------------------------- *)

let disasm_cmd =
  let run name =
    let _, compiled = compile_target name in
    Format.printf "%a" Isa.Program.pp compiled.Minic.Compile.program
  in
  Cmd.v (cmd_info "disasm" ~doc:"Disassemble a compiled benchmark or mini-C file")
    Term.(const run $ bench_arg)

(* --- analyze --------------------------------------------------------------- *)

let analyze_cmd =
  let run name pfail target sets ways line engine exact jobs impl ilp_nodes timeout show_curve
      show_fmm check =
    let label, compiled = compile_target name in
    let config = config_of sets ways line in
    let budget = budget_of ilp_nodes timeout in
    let task =
      Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config ~engine ~exact
        ?budget ()
    in
    Printf.printf "benchmark      : %s\n" label;
    Format.printf "cache          : %a@." Cache.Config.pp config;
    Printf.printf "pfail          : %g   pbf: %g\n" pfail
      (Fault.Model.pbf_of_config ~pfail config);
    Printf.printf "fault-free WCET: %d cycles%s\n\n"
      (Pwcet.Estimator.fault_free_wcet task)
      (rung_tag task.Pwcet.Estimator.wcet_rung);
    let results =
      List.map
        (fun mech ->
          let est =
            Pwcet.Estimator.estimate task ~pfail ~mechanism:mech ~engine ~exact ~jobs ~impl
              ?budget ()
          in
          (mech, est))
        Pwcet.Mechanism.all
    in
    List.iter
      (fun (mech, est) ->
        Printf.printf "%-30s pWCET(%g) = %d cycles%s\n" (Pwcet.Mechanism.name mech) target
          (Pwcet.Estimator.pwcet est ~target)
          (rung_tag (Pwcet.Estimator.worst_rung est));
        report_degradation (Pwcet.Mechanism.short_name mech) est;
        if show_fmm then
          Format.printf "%a@." Pwcet.Fmm.pp est.Pwcet.Estimator.fmm)
      results;
    if show_curve then begin
      let series =
        List.map
          (fun (mech, est) ->
            (Pwcet.Mechanism.short_name mech, Pwcet.Estimator.exceedance_curve est))
          results
      in
      print_newline ();
      print_string (Reporting.Ascii_plot.exceedance ~series ())
    end;
    if check then begin
      let all_exact =
        List.for_all
          (fun (_, est) -> Robust.Rung.equal (Pwcet.Estimator.worst_rung est) Robust.Rung.Exact)
          results
      in
      let baseline = List.assoc Pwcet.Mechanism.No_protection results in
      let reports =
        List.map (fun (_, est) -> Pwcet.Audit.check_estimate est) results
        @
        (* Dominance only compares like with like: under a starved
           budget the mechanisms may degrade to different rungs, and a
           looser baseline rung would flag spurious violations. *)
        if all_exact then
          List.filter_map
            (fun (mech, est) ->
              if Pwcet.Mechanism.equal mech Pwcet.Mechanism.No_protection then None
              else Some (Pwcet.Audit.check_dominance ~baseline ~other:est))
            results
        else []
      in
      let report = Pwcet.Audit.merge reports in
      print_newline ();
      Format.printf "audit: %a@." Pwcet.Audit.pp_report report;
      if not all_exact then
        print_endline "audit: dominance checks skipped (degraded bounds present)";
      if not (Pwcet.Audit.ok report) then exit 1
    end
  in
  let curve_arg = Arg.(value & flag & info [ "curve" ] ~doc:"Plot the exceedance curves (Fig. 3).") in
  let fmm_arg = Arg.(value & flag & info [ "fmm" ] ~doc:"Print the fault miss maps.") in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Run the invariant auditor on the produced estimates (FMM shape, mass \
                   conservation, exceedance monotonicity, mechanism dominance); exit 1 \
                   on any violation.")
  in
  Cmd.v
    (cmd_info "analyze"
       ~doc:"pWCET analysis of one benchmark (or mini-C file) under all three mechanisms")
    Term.(const run $ bench_arg $ pfail_arg $ target_arg $ sets_arg $ ways_arg $ line_arg
          $ engine_arg $ exact_arg $ jobs_arg $ impl_arg $ ilp_nodes_arg $ timeout_arg
          $ curve_arg $ fmm_arg $ check_arg)

(* --- sweep ------------------------------------------------------------------ *)

let sweep_cmd =
  let run name grid targets sets ways line engine exact jobs impl ilp_nodes timeout mechanisms
      json_file verify =
    let label, compiled = compile_target name in
    let config = config_of sets ways line in
    let budget = budget_of ilp_nodes timeout in
    let task =
      Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config ~engine ~exact
        ?budget ()
    in
    let results =
      List.map
        (fun mech ->
          ( mech,
            Pwcet.Estimator.sweep task ~pfail_grid:grid ~mechanism:mech ~engine ~exact ~jobs
              ~impl ?budget () ))
        mechanisms
    in
    Printf.printf "benchmark      : %s\n" label;
    Format.printf "cache          : %a@." Cache.Config.pp config;
    Printf.printf "fault-free WCET: %d cycles%s\n" (Pwcet.Estimator.fault_free_wcet task)
      (rung_tag task.Pwcet.Estimator.wcet_rung);
    List.iter
      (fun (mech, ests) ->
        Printf.printf "\n%s\n" (Pwcet.Mechanism.name mech);
        Printf.printf "  %-12s" "pfail";
        List.iter (fun t -> Printf.printf "  pWCET(%g)" t) targets;
        print_newline ();
        List.iter
          (fun est ->
            Printf.printf "  %-12g" est.Pwcet.Estimator.pfail;
            List.iter
              (fun target ->
                Printf.printf "  %10d" (Pwcet.Estimator.pwcet est ~target))
              targets;
            Printf.printf "%s\n" (rung_tag (Pwcet.Estimator.worst_rung est));
            report_degradation (Pwcet.Mechanism.short_name mech) est)
          ests)
      results;
    (match json_file with
    | None -> ()
    | Some file ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\n";
      Printf.bprintf buf "  \"benchmark\": %S,\n" label;
      Printf.bprintf buf "  \"geometry\": { \"sets\": %d, \"ways\": %d, \"line_bytes\": %d },\n"
        sets ways line;
      Printf.bprintf buf "  \"wcet_ff\": %d,\n" (Pwcet.Estimator.fault_free_wcet task);
      Printf.bprintf buf "  \"targets\": [%s],\n"
        (String.concat ", " (List.map (Printf.sprintf "%.17g") targets));
      Buffer.add_string buf "  \"mechanisms\": [\n";
      List.iteri
        (fun i (mech, ests) ->
          Printf.bprintf buf "    { \"mechanism\": %S,\n      \"points\": [\n"
            (Pwcet.Mechanism.short_name mech);
          List.iteri
            (fun j est ->
              Printf.bprintf buf "        { \"pfail\": %.17g, \"pbf\": %.17g, \"pwcet\": [%s] }%s\n"
                est.Pwcet.Estimator.pfail est.Pwcet.Estimator.pbf
                (String.concat ", "
                   (List.map
                      (fun target -> string_of_int (Pwcet.Estimator.pwcet est ~target))
                      targets))
                (if j = List.length ests - 1 then "" else ","))
            ests;
          Printf.bprintf buf "      ] }%s\n" (if i = List.length results - 1 then "" else ","))
        results;
      Buffer.add_string buf "  ]\n}\n";
      let oc = open_out file in
      Buffer.output_buffer oc buf;
      close_out oc;
      Printf.printf "\nwrote %s\n" file);
    if verify then begin
      (* Re-run every grid point as an independent end-to-end estimate
         and demand bit-identical penalty distributions and equal pWCET
         quantiles — the amortisation must be a pure refactoring of the
         computation, never an approximation. *)
      let mismatches = ref 0 in
      List.iter
        (fun (mech, ests) ->
          List.iter2
            (fun pfail est ->
              let independent =
                Pwcet.Estimator.estimate task ~pfail ~mechanism:mech ~engine ~exact ~jobs ~impl
                  ?budget ()
              in
              let same_support =
                Prob.Dist.support independent.Pwcet.Estimator.penalty
                = Prob.Dist.support est.Pwcet.Estimator.penalty
              in
              let same_quantiles =
                List.for_all
                  (fun target ->
                    Pwcet.Estimator.pwcet independent ~target = Pwcet.Estimator.pwcet est ~target)
                  targets
              in
              if not (same_support && same_quantiles) then begin
                incr mismatches;
                Printf.eprintf "verify FAILED: %s pfail=%g differs from an independent estimate\n"
                  (Pwcet.Mechanism.short_name mech) pfail
              end)
            grid ests)
        results;
      if !mismatches > 0 then exit 1
      else Printf.printf "\nverify: all %d sweep points bit-identical to independent estimates\n"
             (List.length grid * List.length results)
    end
  in
  let grid_arg =
    Arg.(value & opt (list ~sep:',' prob_conv) [ 1e-6; 1e-5; 1e-4; 1e-3 ]
         & info [ "pfail-grid" ] ~docv:"P,P,..."
             ~doc:"Comma-separated pfail grid. The expensive pfail-independent work (CHMC, \
                   FMM, fault-free WCET) runs once per mechanism; only the binomial \
                   reweighting, convolution and quantile read-off are redone per point.")
  in
  let targets_arg =
    Arg.(value & opt (list ~sep:',' prob_conv) [ default_target ]
         & info [ "targets" ] ~docv:"P,P,..."
             ~doc:"Comma-separated exceedance targets; one pWCET column per target.")
  in
  let mechanism_conv =
    Arg.enum
      [ ("none", [ Pwcet.Mechanism.No_protection ])
      ; ("srb", [ Pwcet.Mechanism.Shared_reliable_buffer ])
      ; ("rw", [ Pwcet.Mechanism.Reliable_way ])
      ; ("all", Pwcet.Mechanism.all)
      ]
  in
  let mechanism_arg =
    Arg.(value & opt mechanism_conv Pwcet.Mechanism.all
         & info [ "mechanism" ] ~docv:"MECH"
             ~doc:"Mechanism to sweep: 'none', 'srb', 'rw' or 'all' (default).")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Also write the sweep table as JSON to $(docv).")
  in
  let verify_arg =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Cross-check every sweep point against an independent end-to-end estimate \
                   (bit-identical penalty distribution and equal pWCET quantiles); exit 1 \
                   on any mismatch.")
  in
  Cmd.v
    (cmd_info "sweep"
       ~doc:"pWCET sensitivity sweep over a pfail grid (Fig. 5-style), computing the \
             pfail-independent analysis once per mechanism")
    Term.(const run $ bench_arg $ grid_arg $ targets_arg $ sets_arg $ ways_arg $ line_arg
          $ engine_arg $ exact_arg $ jobs_arg $ impl_arg $ ilp_nodes_arg $ timeout_arg
          $ mechanism_arg $ json_arg $ verify_arg)

(* --- suite ------------------------------------------------------------------ *)

let suite_row config ~pfail ~target ~engine ~exact ~jobs ?budget (e : Benchmarks.Registry.entry) =
  let compiled = Minic.Compile.compile e.Benchmarks.Registry.program in
  let task =
    Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config ~engine ~exact
      ?budget ()
  in
  let worst = ref task.Pwcet.Estimator.wcet_rung in
  let pwcet mech =
    let est = Pwcet.Estimator.estimate task ~pfail ~mechanism:mech ~engine ~exact ~jobs ?budget () in
    worst := Robust.Rung.worst !worst (Pwcet.Estimator.worst_rung est);
    Pwcet.Estimator.pwcet est ~target
  in
  let row =
    {
      Pwcet.Report_data.name = e.Benchmarks.Registry.name;
      wcet_ff = Pwcet.Estimator.fault_free_wcet task;
      pwcet_none = pwcet Pwcet.Mechanism.No_protection;
      pwcet_srb = pwcet Pwcet.Mechanism.Shared_reliable_buffer;
      pwcet_rw = pwcet Pwcet.Mechanism.Reliable_way;
    }
  in
  (row, !worst)

let suite_cmd =
  let run pfail target sets ways line engine exact jobs ilp_nodes timeout =
    let config = config_of sets ways line in
    let budget = budget_of ilp_nodes timeout in
    let rows =
      List.map
        (suite_row config ~pfail ~target ~engine ~exact ~jobs ?budget)
        Benchmarks.Registry.all
    in
    print_string (Reporting.Table.fig4 (List.map fst rows));
    print_newline ();
    print_string (Reporting.Table.aggregates (List.map fst rows));
    let degraded =
      List.filter_map
        (fun (row, rung) ->
          if Robust.Rung.equal rung Robust.Rung.Exact then None
          else Some (Printf.sprintf "%s (%s)" row.Pwcet.Report_data.name (Robust.Rung.to_string rung)))
        rows
    in
    if degraded <> [] then
      Printf.printf "\ndegraded (budget-limited, still sound): %s\n" (String.concat ", " degraded)
  in
  Cmd.v (cmd_info "suite" ~doc:"Fig. 4 table: the whole suite under all three mechanisms")
    Term.(const run $ pfail_arg $ target_arg $ sets_arg $ ways_arg $ line_arg $ engine_arg
          $ exact_arg $ jobs_arg $ ilp_nodes_arg $ timeout_arg)

(* --- simulate -------------------------------------------------------------- *)

let simulate_cmd =
  let run name pfail samples seed jobs =
    let _, compiled = compile_target name in
    let config = Cache.Config.paper_default in
    let task = Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config () in
    let est =
      Pwcet.Estimator.estimate task ~pfail ~mechanism:Pwcet.Mechanism.No_protection ~jobs ()
    in
    let state = Random.State.make [| seed |] in
    let worst = ref 0 in
    let violations = ref 0 in
    for _ = 1 to samples do
      let fm = Fault.Sampler.fault_map config ~pfail state in
      let sim = Cache.Lru.create ~fault_map:fm config in
      let cycles =
        (Minic.Compile.run ~fetch:(Cache.Lru.latency_oracle sim) compiled).Isa.Machine.cycles
      in
      worst := max !worst cycles;
      (* The analytic bound for this very fault pattern. *)
      let bound = ref (Pwcet.Estimator.fault_free_wcet task) in
      Array.iteri
        (fun s f ->
          bound :=
            !bound
            + Pwcet.Fmm.misses est.Pwcet.Estimator.fmm ~set:s ~faulty:f
              * Cache.Config.miss_penalty config)
        (Cache.Fault_map.faulty_counts fm);
      if cycles > !bound then incr violations
    done;
    Printf.printf "samples          : %d (pfail = %g)\n" samples pfail;
    Printf.printf "worst simulated  : %d cycles\n" !worst;
    Printf.printf "pWCET (1e-15)    : %d cycles\n" (Pwcet.Estimator.pwcet est ~target:1e-15);
    Printf.printf "bound violations : %d (must be 0)\n" !violations;
    if !violations > 0 then exit 1
  in
  let samples_arg =
    Arg.(value & opt int 200 & info [ "samples" ] ~doc:"Number of sampled fault maps.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (cmd_info "simulate" ~doc:"Monte-Carlo faulty execution checked against the analytic bound")
    Term.(const run $ bench_arg $ pfail_arg $ samples_arg $ seed_arg $ jobs_arg)

(* --- audit ------------------------------------------------------------------ *)

let audit_cmd =
  let run pfail sets ways line jobs samples seed =
    let config = config_of sets ways line in
    let failures = ref 0 in
    List.iter
      (fun (e : Benchmarks.Registry.entry) ->
        let compiled = Minic.Compile.compile e.Benchmarks.Registry.program in
        let task =
          Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config ()
        in
        let ests =
          List.map
            (fun mech -> (mech, Pwcet.Estimator.estimate task ~pfail ~mechanism:mech ~jobs ()))
            Pwcet.Mechanism.all
        in
        let baseline = List.assoc Pwcet.Mechanism.No_protection ests in
        let reports =
          List.map (fun (_, est) -> Pwcet.Audit.check_estimate est) ests
          @ List.map (fun (_, est) -> Pwcet.Audit.monte_carlo ~samples ~seed est) ests
          @ List.filter_map
              (fun (mech, est) ->
                if Pwcet.Mechanism.equal mech Pwcet.Mechanism.No_protection then None
                else Some (Pwcet.Audit.check_dominance ~baseline ~other:est))
              ests
        in
        let report = Pwcet.Audit.merge reports in
        Format.printf "%-14s %a@." e.Benchmarks.Registry.name Pwcet.Audit.pp_report report;
        if not (Pwcet.Audit.ok report) then incr failures)
      Benchmarks.Registry.all;
    if !failures > 0 then begin
      Printf.printf "\naudit FAILED on %d benchmark(s)\n" !failures;
      exit 1
    end
    else print_endline "\naudit passed: no invariant violations"
  in
  let samples_arg =
    Arg.(value & opt int 10
         & info [ "samples" ] ~docv:"N" ~doc:"Monte-Carlo fault maps per (benchmark, mechanism).")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed for the fault-injection search.") in
  Cmd.v
    (cmd_info "audit"
       ~doc:"Run the runtime invariant auditor over the whole benchmark registry: FMM \
             shape, distribution mass conservation, exceedance monotonicity, mechanism \
             dominance, and a seeded Monte-Carlo fault-injection bound-violation search. \
             Exits 1 on any violation.")
    Term.(const run $ pfail_arg $ sets_arg $ ways_arg $ line_arg $ jobs_arg $ samples_arg
          $ seed_arg)

(* --- source ------------------------------------------------------------------ *)

let source_cmd =
  let run name =
    let _, prog = load_target name in
    Format.printf "%a@." Minic.Ast.pp_program prog
  in
  Cmd.v (cmd_info "source" ~doc:"Print the mini-C source of a benchmark")
    Term.(const run $ bench_arg)

(* --- refined (future-work SRB analysis) ------------------------------------- *)

let refined_cmd =
  let run name pfail target jobs =
    let _, compiled = compile_target name in
    let config = Cache.Config.paper_default in
    let pbf = Fault.Model.pbf_of_config ~pfail config in
    let task = Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config () in
    let ff = Pwcet.Estimator.fault_free_wcet task in
    let srb =
      Pwcet.Estimator.estimate task ~pfail ~mechanism:Pwcet.Mechanism.Shared_reliable_buffer
        ~jobs ()
    in
    let refined =
      Pwcet.Srb_refined.compute ~graph:task.Pwcet.Estimator.graph
        ~loops:task.Pwcet.Estimator.loops ~config ~pbf ()
    in
    let q_srb = ff + Prob.Dist.quantile srb.Pwcet.Estimator.penalty ~target in
    let q_ref = ff + Pwcet.Srb_refined.quantile refined ~target in
    Printf.printf "benchmark            : %s (pfail %g, target %g)\n" name pfail target;
    Printf.printf "fault-free WCET      : %d\n" ff;
    Printf.printf "SRB pWCET (paper)    : %d\n" q_srb;
    Printf.printf "SRB pWCET (refined)  : %d  (gain %.1f%%)\n" q_ref
      (100.0 *. float_of_int (q_srb - q_ref) /. float_of_int (max 1 q_srb));
    Printf.printf "\nexclusive dead-set miss bounds vs conservative FMM column:\n";
    let excl = Pwcet.Srb_refined.exclusive_dead_set_misses refined in
    Array.iteri
      (fun s e ->
        Printf.printf "  set %2d: exclusive %6d   conservative %6d\n" s e
          (Pwcet.Fmm.misses srb.Pwcet.Estimator.fmm ~set:s ~faulty:config.Cache.Config.ways))
      excl
  in
  Cmd.v
    (cmd_info "refined"
       ~doc:"Refined SRB analysis (the paper's future-work direction) vs the paper's bound")
    Term.(const run $ bench_arg $ pfail_arg $ target_arg $ jobs_arg)

let () =
  let doc = "probabilistic WCET estimation with fault-mitigation hardware (DATE'16 reproduction)" in
  let info = Cmd.info "pwcet_tool" ~version:"1.0.0" ~doc ~exits in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; source_cmd; disasm_cmd; analyze_cmd; sweep_cmd; suite_cmd; simulate_cmd;
            audit_cmd; refined_cmd ]))

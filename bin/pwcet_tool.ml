(* Command-line front end for the fault-aware pWCET analyzer.

   Subcommands:
     list                     enumerate the benchmark suite
     disasm <bench>           disassembly of a compiled benchmark
     analyze <bench>          WCET / pWCET analysis of one benchmark
     sweep <bench>            pWCET across a pfail grid, one analysis per mechanism
     grid [bench...]          one-pass benchmark x geometry x mechanism x pfail matrix
     suite                    the Fig. 4 table over the whole suite
     simulate <bench>         Monte-Carlo faulty simulation vs the bound
     validate [bench...]      batched fault-injection campaigns vs the analytic curve
     audit                    invariant auditor over the whole registry
     sched                    probabilistic schedulability campaigns (generate / analyze / sweep)
     cache                    artifact-store maintenance (stat / verify / gc)
     serve                    long-running analysis daemon on a Unix socket
     client                   talk to a running daemon (ping / stats / analyze / load)
     chaos                    deterministic fault-injection soak (self-healing audit)

   Exit codes: 0 success; 1 analysis failure, audit or simulated bound
   violation, or corrupt store entries found by cache verify; 2 invalid
   input (bad benchmark, source, cache geometry, probability, budget or
   jobs count); 3 a client request shed by the daemon's admission
   control; 130 sweep/suite cancelled cleanly by SIGINT/SIGTERM, or a
   serve run ended by those signals after a clean drain; cmdliner's own
   codes for CLI errors. *)

open Cmdliner

let default_pfail = 1e-4
let default_target = 1e-15

let exit_invalid_input = 2
let exit_cancelled = 130

(* A target is a registered benchmark name or a path to a mini-C source
   file (anything containing '/' or ending in .c). *)
let load_target name =
  let from_file () =
    match Minic.Parser.program_of_file name with
    | prog -> (name, prog)
    | exception Minic.Parser.Error msg ->
      Printf.eprintf "%s: parse error: %s\n" name msg;
      exit exit_invalid_input
    | exception Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit exit_invalid_input
  in
  if Sys.file_exists name && not (Sys.is_directory name) then from_file ()
  else
    match Benchmarks.Registry.find name with
    | Some e -> (e.Benchmarks.Registry.name, e.Benchmarks.Registry.program)
    | None ->
      Printf.eprintf "unknown benchmark or file %s; try 'pwcet_tool list'\n" name;
      exit exit_invalid_input

let compile_target name =
  let label, prog = load_target name in
  try (label, Minic.Compile.compile prog)
  with
  | Minic.Typecheck.Error msg | Minic.Compile.Error msg ->
    Printf.eprintf "%s: %s\n" label msg;
    exit exit_invalid_input

let config_of sets ways line =
  try Cache.Config.make ~sets ~ways ~line_bytes:line ()
  with Invalid_argument msg ->
    Printf.eprintf "invalid cache configuration: %s\n" msg;
    exit exit_invalid_input

(* --- common options ---------------------------------------------------- *)

(* Probabilities are validated at the CLI boundary: NaN and infinities
   are rejected (a plain [float] converter would let them through and
   poison the distributions), and both pfail and the exceedance target
   only make sense strictly inside (0, 1). *)
let prob_conv =
  let parse s =
    match float_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "invalid probability %S" s))
    | Some p when not (Float.is_finite p) ->
      Error (`Msg (Printf.sprintf "probability must be finite, got %s" s))
    | Some p when p <= 0.0 || p >= 1.0 ->
      Error (`Msg (Printf.sprintf "probability must lie strictly inside (0, 1), got %s" s))
    | Some p -> Ok p
  in
  Arg.conv ~docv:"P" (parse, fun fmt p -> Format.fprintf fmt "%g" p)

let bench_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc:"Benchmark name or mini-C source file.")

let pfail_arg =
  Arg.(value & opt prob_conv default_pfail
       & info [ "pfail" ] ~docv:"P"
           ~doc:"Per-bit permanent failure probability, strictly inside (0, 1) (paper: 1e-4).")

let target_arg =
  Arg.(value & opt prob_conv default_target
       & info [ "target" ] ~docv:"P"
           ~doc:"Target exceedance probability for the reported pWCET, strictly inside (0, 1) \
                 (paper: 1e-15).")

let sets_arg = Arg.(value & opt int 16 & info [ "sets" ] ~doc:"Cache sets (power of two).")
let ways_arg = Arg.(value & opt int 4 & info [ "ways" ] ~doc:"Cache associativity.")
let line_arg = Arg.(value & opt int 16 & info [ "line" ] ~doc:"Cache line size in bytes.")

let engine_conv = Arg.enum [ ("path", `Path); ("ilp", `Ilp) ]

let engine_arg =
  Arg.(value & opt engine_conv `Path
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Bounding engine: tree-based 'path' (default) or 'ilp'.")

let exact_arg =
  Arg.(value & flag
       & info [ "exact" ]
           ~doc:"With --engine ilp, solve with exact branch-and-bound instead of the LP \
                 relaxation. Under a starved --ilp-nodes budget the solver degrades \
                 back down the Exact -> Relaxed -> Structural ladder instead of failing.")

(* Worker-domain counts are validated at the CLI boundary: a
   nonsensical value must never reach Pool (0 or a negative count
   would silently run nothing; thousands of domains would thrash the
   runtime far past any speedup). *)
let max_jobs = 256

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "invalid jobs count %S" s))
    | Some n when n < 1 -> Error (`Msg (Printf.sprintf "jobs must be at least 1, got %d" n))
    | Some n when n > max_jobs ->
      Error (`Msg (Printf.sprintf "jobs capped at %d, got %d" max_jobs n))
    | Some n -> Ok n
  in
  Arg.conv ~docv:"N" (parse, fun fmt n -> Format.fprintf fmt "%d" n)

let jobs_arg =
  Arg.(value & opt jobs_conv (min max_jobs (Parallel.Pool.default_jobs ()))
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the per-set fault analyses, between 1 \
                 (sequential) and 256 (default: the runtime's recommended \
                 domain count). Results are identical for every value.")

let impl_conv = Arg.enum [ ("naive", `Naive); ("sliced", `Sliced) ]

let impl_arg =
  Arg.(value & opt impl_conv `Sliced
       & info [ "fmm-impl" ] ~docv:"IMPL"
           ~doc:"FMM degraded-analysis engine: 'sliced' (default; per-set \
                 condensed fixpoints with saturation early-exit) or 'naive' \
                 (whole-CFG re-analysis per fault count). Tables are \
                 bit-identical; only the analysis time differs.")

let ilp_nodes_arg =
  Arg.(value & opt (some int) None
       & info [ "ilp-nodes" ] ~docv:"N"
           ~doc:"Branch-and-bound node budget per ILP. Exhaustion degrades that bound to \
                 the LP relaxation (still sound), never aborts the run.")

let timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget for the whole analysis. Per-set analyses that start \
                 after the deadline fall back to the structural bound (still sound).")

let budget_of ilp_nodes timeout =
  match (ilp_nodes, timeout) with
  | None, None -> None
  | _ -> (
    try Some (Robust.Budget.make ?ilp_nodes ?timeout ())
    with Invalid_argument msg ->
      Printf.eprintf "invalid budget: %s\n" msg;
      exit exit_invalid_input)

(* --- artifact store, resume journal, clean cancellation ----------------- *)

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Crash-safe artifact cache: FMM tables, fault-free WCETs and per-point \
                 penalty distributions are stored under $(docv) (created as needed), \
                 keyed by code version, program content and analysis flags, and \
                 integrity-checked on every read — a corrupt entry is quarantined and \
                 transparently recomputed. Also the home of sweep/suite resume journals. \
                 Budget-limited runs (--timeout/--ilp-nodes) bypass the cache.")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Ignore --cache-dir entirely: neither read nor write artifacts or \
                 journals. Output is bit-identical to a cached run.")

let resume_arg =
  Arg.(value & flag
       & info [ "resume" ]
           ~doc:"Resume an interrupted run from its journal under --cache-dir: completed \
                 (mechanism, pfail-point) or benchmark units are replayed from the \
                 journal (integrity-checked; a torn trailing record from a crash is \
                 dropped and recomputed) and only the remainder is analysed. The final \
                 output is bit-identical to an uninterrupted run. Requires --cache-dir; \
                 incompatible with --verify and with budget options.")

(* Deterministic crash injection for the crash-safety gate in `make
   check`: kill this very process with SIGKILL — no cleanup, no
   at_exit, exactly like an OOM kill — right after the Nth journal
   append, leaving a deliberately torn trailing record. *)
let crash_after_arg =
  Arg.(value & opt (some int) None
       & info [ "crash-after" ] ~docv:"N"
           ~doc:"Testing hook: SIGKILL this process (simulating a crash mid-write, with a \
                 torn trailing journal record) after $(docv) journal appends.")

let store_of cache_dir no_cache =
  match cache_dir with
  | Some dir when not no_cache -> Some (Store.Artifact.open_store ~dir ())
  | _ -> None

let report_store_stats store =
  match store with
  | None -> ()
  | Some st ->
    Format.eprintf "cache: %a@." Store.Artifact.pp_stats (Store.Artifact.stats st)

(* SIGINT/SIGTERM request a clean cancel: the flag is checked between
   units, so the journal is left consistent (every appended record
   complete and fsynced), no partial JSON is emitted, and the exit
   code is 130. A second Ctrl-C still kills the process the hard way —
   which the torn-record handling tolerates by design. *)
let cancel_requested = ref false

let install_cancel_handlers () =
  let handle = Sys.Signal_handle (fun _ -> cancel_requested := true) in
  List.iter
    (fun signal -> try Sys.set_signal signal handle with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let bail_if_cancelled ?journal label =
  if !cancel_requested then begin
    Option.iter Store.Journal.close journal;
    Printf.eprintf
      "%s: cancelled by signal; completed units are journalled, rerun with --resume to \
       continue\n"
      label;
    exit exit_cancelled
  end

let maybe_crash crash_after ~appended ~journal_path =
  match crash_after with
  | Some n when appended >= n ->
    (* Torn trailing record: a length prefix promising far more bytes
       than will ever arrive. [resume] must drop it. *)
    let oc = open_out_gen [ Open_append; Open_binary ] 0o644 journal_path in
    output_string oc "\xff\xff\xff\xff\xff\xff\xff\x7ftorn";
    flush oc;
    Unix.kill (Unix.getpid ()) Sys.sigkill
  | _ -> ()

let float_key f = Int64.to_string (Int64.bits_of_float f)
let engine_tag = function `Path -> "path" | `Ilp -> "ilp"
let impl_tag = function `Naive -> "naive" | `Sliced -> "sliced"

let exits =
  Cmd.Exit.info 1
    ~doc:"on an analysis failure, an audit violation, a simulated bound violation, or \
          corrupt artifact-store entries found by cache verify."
  :: Cmd.Exit.info exit_invalid_input
       ~doc:"on invalid input: unknown benchmark, source parse/type error, bad cache \
             geometry, probability outside (0, 1), a malformed budget, an out-of-range \
             jobs count, or an inconsistent --resume combination."
  :: Cmd.Exit.info exit_cancelled
       ~doc:"when SIGINT/SIGTERM cancels a sweep/suite run cleanly: the resume journal \
             is left consistent, no partial JSON is emitted, and completed units can be \
             replayed with --resume."
  :: Cmd.Exit.defaults

let cmd_info name ~doc = Cmd.info name ~doc ~exits

let rung_tag rung =
  match rung with
  | Robust.Rung.Exact -> ""
  | r -> Printf.sprintf "  [degraded: %s]" (Robust.Rung.to_string r)

let report_degradation label est =
  List.iter
    (fun (set, err) ->
      Printf.eprintf "%s: set %d fell back to the structural bound: %s\n" label set
        (Robust.Pwcet_error.to_string err))
    (Pwcet.Estimator.degradation_errors est)

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Benchmarks.Registry.entry) ->
        let compiled = Minic.Compile.compile e.Benchmarks.Registry.program in
        Printf.printf "%-14s %5d instructions  %s\n" e.Benchmarks.Registry.name
          (Isa.Program.instruction_count compiled.Minic.Compile.program)
          e.Benchmarks.Registry.description)
      Benchmarks.Registry.all
  in
  Cmd.v (cmd_info "list" ~doc:"List the benchmark suite")
    Term.(const run $ const ())

(* --- disasm --------------------------------------------------------------- *)

let disasm_cmd =
  let run name =
    let _, compiled = compile_target name in
    Format.printf "%a" Isa.Program.pp compiled.Minic.Compile.program
  in
  Cmd.v (cmd_info "disasm" ~doc:"Disassemble a compiled benchmark or mini-C file")
    Term.(const run $ bench_arg)

(* --- analyze --------------------------------------------------------------- *)

let analyze_cmd =
  let run name pfail target sets ways line engine exact jobs impl ilp_nodes timeout show_curve
      show_fmm check cache_dir no_cache =
    let label, compiled = compile_target name in
    let config = config_of sets ways line in
    let budget = budget_of ilp_nodes timeout in
    let store = store_of cache_dir no_cache in
    let task =
      Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config ~engine ~exact
        ?budget ?store ()
    in
    Printf.printf "benchmark      : %s\n" label;
    Format.printf "cache          : %a@." Cache.Config.pp config;
    Printf.printf "pfail          : %g   pbf: %g\n" pfail
      (Fault.Model.pbf_of_config ~pfail config);
    Printf.printf "fault-free WCET: %d cycles%s\n\n"
      (Pwcet.Estimator.fault_free_wcet task)
      (rung_tag task.Pwcet.Estimator.wcet_rung);
    let results =
      List.map
        (fun mech ->
          let est =
            Pwcet.Estimator.estimate task ~pfail ~mechanism:mech ~engine ~exact ~jobs ~impl
              ?budget ?store ()
          in
          (mech, est))
        Pwcet.Mechanism.all
    in
    report_store_stats store;
    List.iter
      (fun (mech, est) ->
        Printf.printf "%-30s pWCET(%g) = %d cycles%s\n" (Pwcet.Mechanism.name mech) target
          (Pwcet.Estimator.pwcet est ~target)
          (rung_tag (Pwcet.Estimator.worst_rung est));
        report_degradation (Pwcet.Mechanism.short_name mech) est;
        if show_fmm then
          Format.printf "%a@." Pwcet.Fmm.pp est.Pwcet.Estimator.fmm)
      results;
    if show_curve then begin
      let series =
        List.map
          (fun (mech, est) ->
            (Pwcet.Mechanism.short_name mech, Pwcet.Estimator.exceedance_curve est))
          results
      in
      print_newline ();
      print_string (Reporting.Ascii_plot.exceedance ~series ())
    end;
    if check then begin
      let all_exact =
        List.for_all
          (fun (_, est) -> Robust.Rung.equal (Pwcet.Estimator.worst_rung est) Robust.Rung.Exact)
          results
      in
      let baseline = List.assoc Pwcet.Mechanism.No_protection results in
      let reports =
        List.map (fun (_, est) -> Pwcet.Audit.check_estimate est) results
        @
        (* Dominance only compares like with like: under a starved
           budget the mechanisms may degrade to different rungs, and a
           looser baseline rung would flag spurious violations. *)
        if all_exact then
          List.filter_map
            (fun (mech, est) ->
              if Pwcet.Mechanism.equal mech Pwcet.Mechanism.No_protection then None
              else Some (Pwcet.Audit.check_dominance ~baseline ~other:est))
            results
        else []
      in
      let report = Pwcet.Audit.merge reports in
      print_newline ();
      Format.printf "audit: %a@." Pwcet.Audit.pp_report report;
      if not all_exact then
        print_endline "audit: dominance checks skipped (degraded bounds present)";
      if not (Pwcet.Audit.ok report) then exit 1
    end
  in
  let curve_arg = Arg.(value & flag & info [ "curve" ] ~doc:"Plot the exceedance curves (Fig. 3).") in
  let fmm_arg = Arg.(value & flag & info [ "fmm" ] ~doc:"Print the fault miss maps.") in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Run the invariant auditor on the produced estimates (FMM shape, mass \
                   conservation, exceedance monotonicity, mechanism dominance); exit 1 \
                   on any violation.")
  in
  Cmd.v
    (cmd_info "analyze"
       ~doc:"pWCET analysis of one benchmark (or mini-C file) under all three mechanisms")
    Term.(const run $ bench_arg $ pfail_arg $ target_arg $ sets_arg $ ways_arg $ line_arg
          $ engine_arg $ exact_arg $ jobs_arg $ impl_arg $ ilp_nodes_arg $ timeout_arg
          $ curve_arg $ fmm_arg $ check_arg $ cache_dir_arg $ no_cache_arg)

(* --- sweep ------------------------------------------------------------------ *)

(* A sweep point as displayed, journalled and emitted as JSON —
   identical in shape whether freshly computed or replayed from a
   resume journal, which is what makes resumed output bit-identical to
   an uninterrupted run. *)
type sweep_point = {
  sp_pfail : float;
  sp_pbf : float;
  sp_rung : Robust.Rung.t;
  sp_pwcets : int list;  (* one per target, in --targets order *)
}

let sweep_point_payload ~mech_name point =
  let w = Store.Wire.writer () in
  Store.Wire.put_string w mech_name;
  Store.Wire.put_float w point.sp_pfail;
  Store.Wire.put_float w point.sp_pbf;
  Store.Wire.put_int w (Robust.Rung.to_tag point.sp_rung);
  Store.Wire.put_int_array w (Array.of_list point.sp_pwcets);
  Store.Wire.contents w

let sweep_point_of_payload payload =
  match
    Store.Wire.decode payload (fun r ->
        let mech_name = Store.Wire.get_string r in
        let sp_pfail = Store.Wire.get_float r in
        let sp_pbf = Store.Wire.get_float r in
        let sp_rung =
          match Robust.Rung.of_tag (Store.Wire.get_int r) with
          | Some rung -> rung
          | None -> Store.Wire.malformed "bad rung tag"
        in
        let sp_pwcets = Array.to_list (Store.Wire.get_int_array r) in
        (mech_name, { sp_pfail; sp_pbf; sp_rung; sp_pwcets }))
  with
  | Ok v -> Some v
  | Error _ -> None

let sweep_cmd =
  let run name grid targets sets ways line engine exact jobs impl ilp_nodes timeout mechanisms
      json_file verify cache_dir no_cache resume crash_after =
    if grid = [] then begin
      Printf.eprintf "sweep: --pfail-grid must name at least one pfail point\n";
      exit exit_invalid_input
    end;
    if targets = [] then begin
      Printf.eprintf "sweep: --targets must name at least one exceedance target\n";
      exit exit_invalid_input
    end;
    if resume && cache_dir = None then begin
      Printf.eprintf "sweep: --resume requires --cache-dir (the journal lives there)\n";
      exit exit_invalid_input
    end;
    if resume && verify then begin
      Printf.eprintf "sweep: --resume is incompatible with --verify (replayed points have \
                      no distribution to cross-check); rerun the verification without \
                      --resume\n";
      exit exit_invalid_input
    end;
    if resume && (ilp_nodes <> None || timeout <> None) then begin
      Printf.eprintf "sweep: --resume is incompatible with budget options (budgeted \
                      results depend on wall-clock and are never journalled)\n";
      exit exit_invalid_input
    end;
    install_cancel_handlers ();
    let label, compiled = compile_target name in
    let config = config_of sets ways line in
    let budget = budget_of ilp_nodes timeout in
    let store = store_of cache_dir no_cache in
    let task =
      Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config ~engine ~exact
        ?budget ?store ()
    in
    (* The run key digests everything that shapes the output; a journal
       written under different parameters is ignored wholesale. *)
    let run_key =
      Store.Artifact.key
        (task.Pwcet.Estimator.identity
        @ [ ("run", "sweep");
            ("engine", engine_tag engine);
            ("exact", string_of_bool exact);
            ("impl", impl_tag impl);
            ("grid", String.concat "," (List.map float_key grid));
            ("targets", String.concat "," (List.map float_key targets));
            ("mechanisms",
             String.concat "," (List.map Pwcet.Mechanism.short_name mechanisms)) ])
    in
    let journal, replayed =
      match store with
      | Some st when budget = None ->
        let path = Store.Artifact.journal_path st ~run_key in
        if resume then
          let w, units = Store.Journal.resume ~path ~run_key () in
          (Some (w, path), units)
        else (Some (Store.Journal.create ~path ~run_key (), path), [])
      | _ -> (None, [])
    in
    let writer = Option.map fst journal in
    let completed = Hashtbl.create 16 in
    List.iter
      (fun payload ->
        match sweep_point_of_payload payload with
        | Some (mech_name, point) ->
          Hashtbl.replace completed (mech_name, Int64.bits_of_float point.sp_pfail) point
        | None -> ())
      replayed;
    if Hashtbl.length completed > 0 then
      Printf.eprintf "sweep: resuming %s: %d completed point(s) replayed from the journal\n"
        label (Hashtbl.length completed);
    let appended = ref 0 in
    let append_point mech_name point =
      match journal with
      | None -> ()
      | Some (w, path) ->
        Store.Journal.append w (sweep_point_payload ~mech_name point);
        incr appended;
        maybe_crash crash_after ~appended:!appended ~journal_path:path
    in
    let point_of_est est =
      { sp_pfail = est.Pwcet.Estimator.pfail;
        sp_pbf = est.Pwcet.Estimator.pbf;
        sp_rung = Pwcet.Estimator.worst_rung est;
        sp_pwcets = List.map (fun target -> Pwcet.Estimator.pwcet est ~target) targets }
    in
    (* Fresh estimates kept around for --verify's cross-check. *)
    let fresh_ests = Hashtbl.create 16 in
    let results =
      List.map
        (fun mech ->
          bail_if_cancelled ?journal:writer "sweep";
          let mech_name = Pwcet.Mechanism.short_name mech in
          let missing =
            List.filter
              (fun pfail -> not (Hashtbl.mem completed (mech_name, Int64.bits_of_float pfail)))
              grid
          in
          let record est =
            report_degradation mech_name est;
            let point = point_of_est est in
            Hashtbl.replace completed
              (mech_name, Int64.bits_of_float est.Pwcet.Estimator.pfail)
              point;
            Hashtbl.replace fresh_ests
              (mech_name, Int64.bits_of_float est.Pwcet.Estimator.pfail)
              est;
            append_point mech_name point
          in
          (match journal with
          | Some _ ->
            (* Journaled path: one estimate per point, so cancellation
               and crashes have point granularity. The pfail-independent
               work (FMM, fault-free WCET) is amortised through the
               artifact store instead of the in-process sweep loop —
               same bits either way. *)
            List.iter
              (fun pfail ->
                bail_if_cancelled ?journal:writer "sweep";
                record
                  (Pwcet.Estimator.estimate task ~pfail ~mechanism:mech ~engine ~exact ~jobs
                     ~impl ?budget ?store ()))
              missing
          | None ->
            if missing <> [] then
              List.iter record
                (Pwcet.Estimator.sweep task ~pfail_grid:missing ~mechanism:mech ~engine ~exact
                   ~jobs ~impl ?budget ?store ()));
          let points =
            List.map
              (fun pfail -> Hashtbl.find completed (mech_name, Int64.bits_of_float pfail))
              grid
          in
          (mech, points))
        mechanisms
    in
    Option.iter Store.Journal.close writer;
    Printf.printf "benchmark      : %s\n" label;
    Format.printf "cache          : %a@." Cache.Config.pp config;
    Printf.printf "fault-free WCET: %d cycles%s\n" (Pwcet.Estimator.fault_free_wcet task)
      (rung_tag task.Pwcet.Estimator.wcet_rung);
    List.iter
      (fun (mech, points) ->
        Printf.printf "\n%s\n" (Pwcet.Mechanism.name mech);
        Printf.printf "  %-12s" "pfail";
        List.iter (fun t -> Printf.printf "  pWCET(%g)" t) targets;
        print_newline ();
        List.iter
          (fun point ->
            Printf.printf "  %-12g" point.sp_pfail;
            List.iter (fun q -> Printf.printf "  %10d" q) point.sp_pwcets;
            Printf.printf "%s\n" (rung_tag point.sp_rung))
          points)
      results;
    (match json_file with
    | None -> ()
    | Some file ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\n";
      Buffer.add_string buf "  \"schema_version\": 1,\n";
      Printf.bprintf buf "  \"benchmark\": %S,\n" label;
      Printf.bprintf buf "  \"geometry\": { \"sets\": %d, \"ways\": %d, \"line_bytes\": %d },\n"
        sets ways line;
      Printf.bprintf buf "  \"wcet_ff\": %d,\n" (Pwcet.Estimator.fault_free_wcet task);
      Printf.bprintf buf "  \"targets\": [%s],\n"
        (String.concat ", " (List.map (Printf.sprintf "%.17g") targets));
      Buffer.add_string buf "  \"mechanisms\": [\n";
      List.iteri
        (fun i (mech, points) ->
          Printf.bprintf buf "    { \"mechanism\": %S,\n      \"points\": [\n"
            (Pwcet.Mechanism.short_name mech);
          List.iteri
            (fun j point ->
              Printf.bprintf buf "        { \"pfail\": %.17g, \"pbf\": %.17g, \"pwcet\": [%s] }%s\n"
                point.sp_pfail point.sp_pbf
                (String.concat ", " (List.map string_of_int point.sp_pwcets))
                (if j = List.length points - 1 then "" else ","))
            points;
          Printf.bprintf buf "      ] }%s\n" (if i = List.length results - 1 then "" else ","))
        results;
      Buffer.add_string buf "  ]\n}\n";
      let oc = open_out file in
      Buffer.output_buffer oc buf;
      close_out oc;
      Printf.printf "\nwrote %s\n" file);
    if verify then begin
      (* Re-run every grid point as an independent end-to-end estimate —
         deliberately WITHOUT the store, so a cached sweep is checked
         against genuine recomputation — and demand bit-identical
         penalty distributions and equal pWCET quantiles. The
         amortisation (in-process or through the cache) must be a pure
         refactoring of the computation, never an approximation. *)
      let mismatches = ref 0 in
      List.iter
        (fun (mech, points) ->
          let mech_name = Pwcet.Mechanism.short_name mech in
          List.iter2
            (fun pfail point ->
              let independent =
                Pwcet.Estimator.estimate task ~pfail ~mechanism:mech ~engine ~exact ~jobs ~impl
                  ?budget ()
              in
              let est =
                Hashtbl.find fresh_ests (mech_name, Int64.bits_of_float pfail)
              in
              let same_support =
                Prob.Dist.support independent.Pwcet.Estimator.penalty
                = Prob.Dist.support est.Pwcet.Estimator.penalty
              in
              let same_quantiles =
                List.for_all2
                  (fun target q -> Pwcet.Estimator.pwcet independent ~target = q)
                  targets point.sp_pwcets
              in
              if not (same_support && same_quantiles) then begin
                incr mismatches;
                Printf.eprintf "verify FAILED: %s pfail=%g differs from an independent estimate\n"
                  mech_name pfail
              end)
            grid points)
        results;
      if !mismatches > 0 then exit 1
      else Printf.printf "\nverify: all %d sweep points bit-identical to independent estimates\n"
             (List.length grid * List.length results)
    end;
    report_store_stats store
  in
  let grid_arg =
    Arg.(value & opt (list ~sep:',' prob_conv) [ 1e-6; 1e-5; 1e-4; 1e-3 ]
         & info [ "pfail-grid" ] ~docv:"P,P,..."
             ~doc:"Comma-separated pfail grid. The expensive pfail-independent work (CHMC, \
                   FMM, fault-free WCET) runs once per mechanism; only the binomial \
                   reweighting, convolution and quantile read-off are redone per point.")
  in
  let targets_arg =
    Arg.(value & opt (list ~sep:',' prob_conv) [ default_target ]
         & info [ "targets" ] ~docv:"P,P,..."
             ~doc:"Comma-separated exceedance targets; one pWCET column per target.")
  in
  let mechanism_conv =
    Arg.enum
      [ ("none", [ Pwcet.Mechanism.No_protection ])
      ; ("srb", [ Pwcet.Mechanism.Shared_reliable_buffer ])
      ; ("rw", [ Pwcet.Mechanism.Reliable_way ])
      ; ("all", Pwcet.Mechanism.all)
      ]
  in
  let mechanism_arg =
    Arg.(value & opt mechanism_conv Pwcet.Mechanism.all
         & info [ "mechanism" ] ~docv:"MECH"
             ~doc:"Mechanism to sweep: 'none', 'srb', 'rw' or 'all' (default).")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Also write the sweep table as JSON to $(docv).")
  in
  let verify_arg =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Cross-check every sweep point against an independent end-to-end estimate \
                   (bit-identical penalty distribution and equal pWCET quantiles); exit 1 \
                   on any mismatch.")
  in
  Cmd.v
    (cmd_info "sweep"
       ~doc:"pWCET sensitivity sweep over a pfail grid (Fig. 5-style), computing the \
             pfail-independent analysis once per mechanism")
    Term.(const run $ bench_arg $ grid_arg $ targets_arg $ sets_arg $ ways_arg $ line_arg
          $ engine_arg $ exact_arg $ jobs_arg $ impl_arg $ ilp_nodes_arg $ timeout_arg
          $ mechanism_arg $ json_arg $ verify_arg $ cache_dir_arg $ no_cache_arg $ resume_arg
          $ crash_after_arg)

(* --- grid ------------------------------------------------------------------- *)

(* Axis lists are validated at the CLI boundary with exit 2: an empty
   axis would silently evaluate nothing, and an unknown mechanism or a
   malformed geometry would otherwise surface as a confusing mid-run
   failure. *)
let mechanisms_of ~label names =
  if names = [] then begin
    Printf.eprintf "%s: --mechanisms must name at least one mechanism (none, srb, rw, all)\n"
      label;
    exit exit_invalid_input
  end;
  List.concat_map
    (fun name ->
      if name = "all" then Pwcet.Mechanism.all
      else
        match Pwcet.Mechanism.of_string name with
        | Some m -> [ m ]
        | None ->
          Printf.eprintf "%s: unknown mechanism %S (expected none, srb, rw or all)\n" label
            name;
          exit exit_invalid_input)
    names

(* A geometry is SETSxWAYS or SETSxWAYSxLINE_BYTES, e.g. 16x4 or 8x2x32. *)
let geometries_of ~label specs =
  if specs = [] then begin
    Printf.eprintf "%s: --geometries must name at least one geometry (SETSxWAYS[xLINE])\n"
      label;
    exit exit_invalid_input
  end;
  List.map
    (fun spec ->
      let bad () =
        Printf.eprintf "%s: malformed geometry %S (expected SETSxWAYS[xLINE], e.g. 16x4x16)\n"
          label spec;
        exit exit_invalid_input
      in
      match List.map int_of_string_opt (String.split_on_char 'x' spec) with
      | [ Some sets; Some ways ] -> config_of sets ways 16
      | [ Some sets; Some ways; Some line ] -> config_of sets ways line
      | _ -> bad ())
    specs

let grid_cmd =
  let run benches geometries mechanisms grid targets engine exact jobs impl ilp_nodes timeout
      json_file verify cache_dir no_cache resume crash_after =
    let label = "grid" in
    if benches = [] then begin
      Printf.eprintf "grid: at least one benchmark (or mini-C file) is required\n";
      exit exit_invalid_input
    end;
    if grid = [] then begin
      Printf.eprintf "grid: --pfail-grid must name at least one pfail point\n";
      exit exit_invalid_input
    end;
    if targets = [] then begin
      Printf.eprintf "grid: --targets must name at least one exceedance target\n";
      exit exit_invalid_input
    end;
    let mechanisms = mechanisms_of ~label mechanisms in
    let configs = geometries_of ~label geometries in
    if resume && cache_dir = None then begin
      Printf.eprintf "grid: --resume requires --cache-dir (the journal lives there)\n";
      exit exit_invalid_input
    end;
    if resume && verify then begin
      Printf.eprintf "grid: --resume is incompatible with --verify (replayed cells have no \
                      distribution to cross-check); rerun the verification without --resume\n";
      exit exit_invalid_input
    end;
    if resume && (ilp_nodes <> None || timeout <> None) then begin
      Printf.eprintf "grid: --resume is incompatible with budget options (budgeted results \
                      depend on wall-clock and are never journalled)\n";
      exit exit_invalid_input
    end;
    install_cancel_handlers ();
    let budget = budget_of ilp_nodes timeout in
    let store = store_of cache_dir no_cache in
    let benchmarks =
      List.map
        (fun name ->
          let label, compiled = compile_target name in
          (label, compiled.Minic.Compile.program))
        benches
    in
    let spec =
      { Grid.benchmarks; configs; mechanisms; pfail_grid = grid; targets; engine; exact; impl }
    in
    let run_key = Store.Artifact.key (("run", "grid") :: Grid.identity spec) in
    let journal =
      match store with
      | Some st when budget = None ->
        let path = Store.Artifact.journal_path st ~run_key in
        if resume then
          let w, units = Store.Journal.resume ~path ~run_key () in
          (Some (w, path), units)
        else (Some (Store.Journal.create ~path ~run_key (), path), [])
      | _ -> (None, [])
    in
    let journal, replayed = journal in
    let writer = Option.map fst journal in
    let completed = Hashtbl.create 64 in
    List.iter
      (fun payload ->
        match Grid.cell_of_wire payload with
        | Ok cell -> Hashtbl.replace completed (Grid.point_key cell.Grid.point) cell
        | Error _ -> ())
      replayed;
    if Hashtbl.length completed > 0 then
      Printf.eprintf "grid: resuming: %d completed cell(s) replayed from the journal\n"
        (Hashtbl.length completed);
    bail_if_cancelled ?journal:writer "grid";
    (* [on_cell] runs on worker domains in completion order; the
       journal writer is serialised under a mutex, and the crash hook
       fires under the same lock so the append count is exact. *)
    let append_lock = Mutex.create () in
    let appended = ref 0 in
    let on_cell cell =
      match journal with
      | None -> ()
      | Some (w, path) ->
        Mutex.lock append_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock append_lock)
          (fun () ->
            Store.Journal.append w (Grid.cell_to_wire cell);
            incr appended;
            maybe_crash crash_after ~appended:!appended ~journal_path:path)
    in
    let results =
      Grid.run ~jobs ?budget ?store
        ~skip:(fun point -> Hashtbl.find_opt completed (Grid.point_key point))
        ~on_cell spec
    in
    Option.iter Store.Journal.close writer;
    bail_if_cancelled "grid";
    let failures =
      List.filter_map
        (fun (point, outcome) ->
          match outcome with Ok _ -> None | Error e -> Some (point, e))
        results
    in
    List.iter
      (fun (point, e) ->
        Printf.eprintf "grid: cell %s failed: %s\n" (Grid.point_key point)
          (Robust.Pwcet_error.to_string e))
      failures;
    (* The comparison matrix, one panel per (benchmark, geometry). *)
    let last_panel = ref None in
    List.iter
      (fun (point, outcome) ->
        match outcome with
        | Error _ -> ()
        | Ok cell ->
          let panel = (point.Grid.bench, point.Grid.config) in
          if !last_panel <> Some panel then begin
            last_panel := Some panel;
            Printf.printf "\nbenchmark %-14s cache %s   fault-free WCET %d\n"
              point.Grid.bench
              (Format.asprintf "%a" Cache.Config.pp point.Grid.config)
              cell.Grid.wcet_ff;
            Printf.printf "  %-6s %-12s" "mech" "pfail";
            List.iter (fun t -> Printf.printf "  pWCET(%g)" t) targets;
            print_newline ()
          end;
          Printf.printf "  %-6s %-12g"
            (Pwcet.Mechanism.short_name point.Grid.mechanism)
            point.Grid.pfail;
          List.iter (fun (_, q) -> Printf.printf "  %10d" q) cell.Grid.pwcets;
          Printf.printf "%s\n" (rung_tag cell.Grid.rung))
      results;
    let digest = Grid.digest results in
    Printf.printf "\ncells  : %d (%d replayed, %d failed)\n" (List.length results)
      (Hashtbl.length completed) (List.length failures);
    Printf.printf "digest : %s\n" digest;
    (match json_file with
    | None -> ()
    | Some file ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf "{\n  \"schema_version\": 1,\n";
      Printf.bprintf buf "  \"targets\": [%s],\n"
        (String.concat ", " (List.map (Printf.sprintf "%.17g") targets));
      Printf.bprintf buf "  \"digest\": %S,\n" digest;
      Buffer.add_string buf "  \"cells\": [\n";
      let ok_cells =
        List.filter_map
          (fun (_, outcome) -> match outcome with Ok c -> Some c | Error _ -> None)
          results
      in
      List.iteri
        (fun i cell ->
          let cfg = cell.Grid.point.Grid.config in
          Printf.bprintf buf
            "    { \"bench\": %S, \"geometry\": { \"sets\": %d, \"ways\": %d, \
             \"line_bytes\": %d },\n      \"mechanism\": %S, \"pfail\": %.17g, \"pbf\": \
             %.17g, \"wcet_ff\": %d,\n      \"pwcet\": [%s], \"rung\": %S, \
             \"degraded_fmm_cells\": %d }%s\n"
            cell.Grid.point.Grid.bench cfg.Cache.Config.sets cfg.Cache.Config.ways
            cfg.Cache.Config.line_bytes
            (Pwcet.Mechanism.short_name cell.Grid.point.Grid.mechanism)
            cell.Grid.point.Grid.pfail cell.Grid.pbf cell.Grid.wcet_ff
            (String.concat ", " (List.map (fun (_, q) -> string_of_int q) cell.Grid.pwcets))
            (Robust.Rung.to_string cell.Grid.rung)
            cell.Grid.degraded
            (if i = List.length ok_cells - 1 then "" else ","))
        ok_cells;
      Buffer.add_string buf "  ]\n}\n";
      let oc = open_out file in
      Buffer.output_buffer oc buf;
      close_out oc;
      Printf.printf "wrote %s\n" file);
    if verify then begin
      (* Re-run every cell as an independent end-to-end estimate —
         deliberately WITHOUT the store — and demand equal quantiles,
         pbf and provenance. The one-pass sharing must be a pure
         refactoring of the computation, never an approximation. *)
      let tasks = Hashtbl.create 16 in
      List.iter
        (fun (name, program) ->
          List.iter
            (fun config ->
              Hashtbl.replace tasks (name, config)
                (Pwcet.Estimator.prepare ~program ~config ~engine ~exact ()))
            configs)
        benchmarks;
      let mismatches = ref 0 in
      List.iter
        (fun (point, outcome) ->
          match outcome with
          | Error _ -> incr mismatches
          | Ok cell ->
            let task = Hashtbl.find tasks (point.Grid.bench, point.Grid.config) in
            let independent =
              Pwcet.Estimator.estimate task ~pfail:point.Grid.pfail
                ~mechanism:point.Grid.mechanism ~engine ~exact ~jobs ~impl ()
            in
            let same =
              Pwcet.Estimator.fault_free_wcet task = cell.Grid.wcet_ff
              && independent.Pwcet.Estimator.pbf = cell.Grid.pbf
              && List.for_all
                   (fun (target, q) -> Pwcet.Estimator.pwcet independent ~target = q)
                   cell.Grid.pwcets
              && Robust.Rung.equal (Pwcet.Estimator.worst_rung independent) cell.Grid.rung
            in
            if not same then begin
              incr mismatches;
              Printf.eprintf "verify FAILED: cell %s differs from an independent estimate\n"
                (Grid.point_key point)
            end)
        results;
      if !mismatches > 0 then exit 1
      else
        Printf.printf "verify : all %d cells bit-identical to independent estimates\n"
          (List.length results)
    end;
    report_store_stats store;
    if failures <> [] then exit 1
  in
  let benches_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"TARGET"
             ~doc:"Benchmark names or mini-C source files (at least one).")
  in
  let geometries_arg =
    Arg.(value & opt (list ~sep:',' string) [ "16x4x16" ]
         & info [ "geometries" ] ~docv:"SxW[xL],..."
             ~doc:"Comma-separated cache geometries, each SETSxWAYS or SETSxWAYSxLINE_BYTES \
                   (default 16x4x16, the paper's). The per-geometry analysis context, CHMC \
                   fixpoints and fault-free WCET are shared across all mechanisms and pfail \
                   points at that geometry.")
  in
  let mechanisms_arg =
    Arg.(value & opt (list ~sep:',' string) [ "all" ]
         & info [ "mechanisms" ] ~docv:"MECH,..."
             ~doc:"Comma-separated mechanisms: none, srb, rw, or all (default). All \
                   mechanisms at a geometry share one set of degraded-classification \
                   fixpoints; unknown names are rejected with exit 2.")
  in
  let grid_arg =
    Arg.(value & opt (list ~sep:',' prob_conv) [ 1e-6; 1e-5; 1e-4; 1e-3 ]
         & info [ "pfail-grid" ] ~docv:"P,P,..."
             ~doc:"Comma-separated pfail grid; only the binomial reweighting, convolution \
                   and quantile read-off are redone per point.")
  in
  let targets_arg =
    Arg.(value & opt (list ~sep:',' prob_conv) [ default_target ]
         & info [ "targets" ] ~docv:"P,P,..."
             ~doc:"Comma-separated exceedance targets; one pWCET column per target.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the machine-readable comparison matrix as JSON to $(docv).")
  in
  let verify_arg =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Cross-check every grid cell against an independent end-to-end estimate \
                   (equal pWCET quantiles, pbf and degradation provenance); exit 1 on any \
                   mismatch.")
  in
  Cmd.v
    (cmd_info "grid"
       ~doc:"One-pass benchmark x geometry x mechanism x pfail comparison grid: per-geometry \
             analysis stages are computed once and shared, cells are scheduled on a \
             work-stealing pool, and the matrix is bit-identical to independent per-cell \
             runs for every --jobs value")
    Term.(const run $ benches_arg $ geometries_arg $ mechanisms_arg $ grid_arg $ targets_arg
          $ engine_arg $ exact_arg $ jobs_arg $ impl_arg $ ilp_nodes_arg $ timeout_arg
          $ json_arg $ verify_arg $ cache_dir_arg $ no_cache_arg $ resume_arg
          $ crash_after_arg)

(* --- suite ------------------------------------------------------------------ *)

let suite_row config ~pfail ~target ~engine ~exact ~jobs ?budget ?store (name, program) =
  let task = Pwcet.Estimator.prepare ~program ~config ~engine ~exact ?budget ?store () in
  let worst = ref task.Pwcet.Estimator.wcet_rung in
  let pwcet mech =
    let est =
      Pwcet.Estimator.estimate task ~pfail ~mechanism:mech ~engine ~exact ~jobs ?budget ?store ()
    in
    worst := Robust.Rung.worst !worst (Pwcet.Estimator.worst_rung est);
    Pwcet.Estimator.pwcet est ~target
  in
  let row =
    {
      Pwcet.Report_data.name;
      wcet_ff = Pwcet.Estimator.fault_free_wcet task;
      pwcet_none = pwcet Pwcet.Mechanism.No_protection;
      pwcet_srb = pwcet Pwcet.Mechanism.Shared_reliable_buffer;
      pwcet_rw = pwcet Pwcet.Mechanism.Reliable_way;
    }
  in
  (row, !worst)

(* One journal record per completed benchmark row. *)
let suite_row_payload (row : Pwcet.Report_data.row) rung =
  let w = Store.Wire.writer () in
  Store.Wire.put_string w row.Pwcet.Report_data.name;
  Store.Wire.put_int w row.Pwcet.Report_data.wcet_ff;
  Store.Wire.put_int w row.Pwcet.Report_data.pwcet_none;
  Store.Wire.put_int w row.Pwcet.Report_data.pwcet_srb;
  Store.Wire.put_int w row.Pwcet.Report_data.pwcet_rw;
  Store.Wire.put_int w (Robust.Rung.to_tag rung);
  Store.Wire.contents w

let suite_row_of_payload payload =
  match
    Store.Wire.decode payload (fun r ->
        let name = Store.Wire.get_string r in
        let wcet_ff = Store.Wire.get_int r in
        let pwcet_none = Store.Wire.get_int r in
        let pwcet_srb = Store.Wire.get_int r in
        let pwcet_rw = Store.Wire.get_int r in
        let rung =
          match Robust.Rung.of_tag (Store.Wire.get_int r) with
          | Some rung -> rung
          | None -> Store.Wire.malformed "bad rung tag"
        in
        ({ Pwcet.Report_data.name; wcet_ff; pwcet_none; pwcet_srb; pwcet_rw }, rung))
  with
  | Ok v -> Some v
  | Error _ -> None

let suite_cmd =
  let run pfail target sets ways line engine exact jobs ilp_nodes timeout cache_dir no_cache
      resume crash_after =
    if resume && cache_dir = None then begin
      Printf.eprintf "suite: --resume requires --cache-dir (the journal lives there)\n";
      exit exit_invalid_input
    end;
    if resume && (ilp_nodes <> None || timeout <> None) then begin
      Printf.eprintf "suite: --resume is incompatible with budget options (budgeted \
                      results depend on wall-clock and are never journalled)\n";
      exit exit_invalid_input
    end;
    install_cancel_handlers ();
    let config = config_of sets ways line in
    let budget = budget_of ilp_nodes timeout in
    let store = store_of cache_dir no_cache in
    let entries =
      List.map
        (fun (e : Benchmarks.Registry.entry) ->
          ( e.Benchmarks.Registry.name,
            (Minic.Compile.compile e.Benchmarks.Registry.program).Minic.Compile.program ))
        Benchmarks.Registry.all
    in
    let run_key =
      Store.Artifact.key
        ([ ("run", "suite");
           ("code", Pwcet.Estimator.code_version);
           ("config", Format.asprintf "%a" Cache.Config.pp config);
           ("pfail", float_key pfail);
           ("target", float_key target);
           ("engine", engine_tag engine);
           ("exact", string_of_bool exact) ]
        @ List.map
            (fun (name, program) ->
              (name, Digest.to_hex (Digest.string (Format.asprintf "%a" Isa.Program.pp program))))
            entries)
    in
    let journal, replayed =
      match store with
      | Some st when budget = None ->
        let path = Store.Artifact.journal_path st ~run_key in
        if resume then
          let w, units = Store.Journal.resume ~path ~run_key () in
          (Some (w, path), units)
        else (Some (Store.Journal.create ~path ~run_key (), path), [])
      | _ -> (None, [])
    in
    let writer = Option.map fst journal in
    let completed = Hashtbl.create 16 in
    List.iter
      (fun payload ->
        match suite_row_of_payload payload with
        | Some (row, rung) -> Hashtbl.replace completed row.Pwcet.Report_data.name (row, rung)
        | None -> ())
      replayed;
    if Hashtbl.length completed > 0 then
      Printf.eprintf "suite: resuming: %d completed benchmark(s) replayed from the journal\n"
        (Hashtbl.length completed);
    let appended = ref 0 in
    let rows =
      List.map
        (fun (name, program) ->
          bail_if_cancelled ?journal:writer "suite";
          match Hashtbl.find_opt completed name with
          | Some cached -> cached
          | None ->
            let (row, rung) =
              suite_row config ~pfail ~target ~engine ~exact ~jobs ?budget ?store
                (name, program)
            in
            (match journal with
            | None -> ()
            | Some (w, path) ->
              Store.Journal.append w (suite_row_payload row rung);
              incr appended;
              maybe_crash crash_after ~appended:!appended ~journal_path:path);
            (row, rung))
        entries
    in
    Option.iter Store.Journal.close writer;
    print_string (Reporting.Table.fig4 (List.map fst rows));
    print_newline ();
    print_string (Reporting.Table.aggregates (List.map fst rows));
    let degraded =
      List.filter_map
        (fun (row, rung) ->
          if Robust.Rung.equal rung Robust.Rung.Exact then None
          else Some (Printf.sprintf "%s (%s)" row.Pwcet.Report_data.name (Robust.Rung.to_string rung)))
        rows
    in
    if degraded <> [] then
      Printf.printf "\ndegraded (budget-limited, still sound): %s\n" (String.concat ", " degraded);
    report_store_stats store
  in
  Cmd.v (cmd_info "suite" ~doc:"Fig. 4 table: the whole suite under all three mechanisms")
    Term.(const run $ pfail_arg $ target_arg $ sets_arg $ ways_arg $ line_arg $ engine_arg
          $ exact_arg $ jobs_arg $ ilp_nodes_arg $ timeout_arg $ cache_dir_arg $ no_cache_arg
          $ resume_arg $ crash_after_arg)

(* --- simulate -------------------------------------------------------------- *)

let simulate_cmd =
  let run name pfail samples seed jobs =
    let _, compiled = compile_target name in
    let config = Cache.Config.paper_default in
    let task = Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config () in
    let est =
      Pwcet.Estimator.estimate task ~pfail ~mechanism:Pwcet.Mechanism.No_protection ~jobs ()
    in
    let state = Random.State.make [| seed |] in
    let worst = ref 0 in
    let violations = ref 0 in
    for _ = 1 to samples do
      let fm = Fault.Sampler.fault_map config ~pfail state in
      let sim = Cache.Lru.create ~fault_map:fm config in
      let cycles =
        (Minic.Compile.run ~fetch:(Cache.Lru.latency_oracle sim) compiled).Isa.Machine.cycles
      in
      worst := max !worst cycles;
      (* The analytic bound for this very fault pattern. *)
      let bound = ref (Pwcet.Estimator.fault_free_wcet task) in
      Array.iteri
        (fun s f ->
          bound :=
            !bound
            + Pwcet.Fmm.misses est.Pwcet.Estimator.fmm ~set:s ~faulty:f
              * Cache.Config.miss_penalty config)
        (Cache.Fault_map.faulty_counts fm);
      if cycles > !bound then incr violations
    done;
    Printf.printf "samples          : %d (pfail = %g)\n" samples pfail;
    Printf.printf "worst simulated  : %d cycles\n" !worst;
    Printf.printf "pWCET (1e-15)    : %d cycles\n" (Pwcet.Estimator.pwcet est ~target:1e-15);
    Printf.printf "bound violations : %d (must be 0)\n" !violations;
    if !violations > 0 then exit 1
  in
  let samples_arg =
    Arg.(value & opt int 200 & info [ "samples" ] ~doc:"Number of sampled fault maps.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (cmd_info "simulate" ~doc:"Monte-Carlo faulty execution checked against the analytic bound")
    Term.(const run $ bench_arg $ pfail_arg $ samples_arg $ seed_arg $ jobs_arg)

(* --- validate (batched fault-injection campaigns vs the analytic curve) ------ *)

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "unknown" in
    ignore (Unix.close_process_in ic);
    line
  with _ -> "unknown"

let validate_cmd =
  let run benches pfail samples seed jobs sets ways line engine baseline_samples json =
    let config = config_of sets ways line in
    let names =
      match benches with
      | [] -> List.map (fun e -> e.Benchmarks.Registry.name) Benchmarks.Registry.all
      | names -> names
    in
    let failures = ref 0 in
    let rows = ref [] in
    let speedup = ref None in
    List.iteri
      (fun i name ->
        let label, compiled = compile_target name in
        let program = compiled.Minic.Compile.program in
        let data = compiled.Minic.Compile.data in
        let task = Pwcet.Estimator.prepare ~program ~config () in
        List.iter
          (fun mechanism ->
            let est = Pwcet.Estimator.estimate task ~pfail ~mechanism ~jobs () in
            let c =
              try Pwcet.Validate.check ~program ~data ~est ~samples ~seed ~jobs ~engine ()
              with Failure msg ->
                Printf.eprintf "%s/%s: campaign failed: %s\n" label
                  (Pwcet.Mechanism.short_name mechanism) msg;
                exit 1
            in
            let r = c.Pwcet.Validate.result in
            Printf.printf
              "%-14s %-4s %9d samples %10.0f/s  range [%d, %d]  gap %+.3e  %s  digest %s\n"
              label
              (Pwcet.Mechanism.short_name mechanism)
              c.Pwcet.Validate.samples c.Pwcet.Validate.samples_per_sec
              r.Sim.Campaign.min_cycles r.Sim.Campaign.max_cycles c.Pwcet.Validate.max_gap
              (if Pwcet.Validate.ok c then "ok" else "FAIL")
              c.Pwcet.Validate.digest;
            if not c.Pwcet.Validate.curve_ok then
              Printf.printf
                "  FAIL: empirical exceedance above the analytic curve by %.3e (past noise) \
                 at one of %d observed values\n"
                c.Pwcet.Validate.max_gap c.Pwcet.Validate.curve_points;
            if not c.Pwcet.Validate.bound_ok then
              Printf.printf "  FAIL: %d sample(s) exceeded their per-pattern FMM bound\n"
                r.Sim.Campaign.bound_violations;
            if not (Pwcet.Validate.ok c) then incr failures;
            rows := (label, c) :: !rows)
          Pwcet.Mechanism.all;
        if i = 0 && baseline_samples > 0 then begin
          let est =
            Pwcet.Estimator.estimate task ~pfail ~mechanism:Pwcet.Mechanism.No_protection ~jobs
              ()
          in
          let sp =
            Pwcet.Validate.measure_speedup ~program ~data ~est ~benchmark:label
              ~samples:baseline_samples ()
          in
          Printf.printf
            "%-14s speedup: batched %.0f/s vs baseline %.0f/s = %.1fx (cycles identical: %b, \
             engines identical: %b)\n"
            label sp.Pwcet.Validate.batched_samples_per_sec
            sp.Pwcet.Validate.baseline_samples_per_sec sp.Pwcet.Validate.factor
            sp.Pwcet.Validate.cycles_identical sp.Pwcet.Validate.engines_identical;
          if not (sp.Pwcet.Validate.cycles_identical && sp.Pwcet.Validate.engines_identical)
          then begin
            Printf.printf "  FAIL: batched engine disagrees with the reference simulator\n";
            incr failures
          end;
          speedup := Some sp
        end)
      names;
    Option.iter
      (fun path ->
        Pwcet.Validate.write_json ~path ~git_commit:(git_commit ()) ~config ~pfail
          ~speedup:!speedup ~rows:(List.rev !rows);
        Printf.printf "wrote %s\n" path)
      json;
    if !failures > 0 then begin
      Printf.printf "\nvalidate FAILED on %d campaign(s)\n" !failures;
      exit 1
    end
    else
      Printf.printf "\nvalidate passed: empirical exceedance within the analytic pWCET on %d \
                     campaign(s)\n"
        (List.length !rows)
  in
  let benches_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"BENCH"
             ~doc:"Benchmarks to validate (default: the whole registry).")
  in
  let samples_arg =
    Arg.(value & opt int 1_000_000
         & info [ "samples" ] ~docv:"N" ~doc:"Monte-Carlo samples per (benchmark, mechanism).")
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~doc:"Campaign seed; per-sample RNG streams derive from it.")
  in
  let engine_arg =
    Arg.(value & opt (enum [ ("replay", `Replay); ("emulate", `Emulate) ]) `Replay
         & info [ "sim-engine" ] ~docv:"ENGINE"
             ~doc:"Campaign engine: 'replay' (trace-composed, the fast default) or 'emulate' \
                   (full per-sample machine emulation; the ground truth replay is \
                   cross-checked against).")
  in
  let baseline_arg =
    Arg.(value & opt int 200
         & info [ "baseline-samples" ] ~docv:"N"
             ~doc:"Samples for the batched-vs-baseline speedup measurement on the first \
                   benchmark (0 disables it).")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write the BENCH_sim.json document to $(docv).")
  in
  Cmd.v
    (cmd_info "validate"
       ~doc:"Batched fault-injection campaigns: for each benchmark and mechanism, draw N \
             fault patterns from the paper's fault law, execute each on the flat emulator's \
             faulty cache, and check the empirical execution-time exceedance curve lies at \
             or below the analytic pWCET at every observed value (within binomial sampling \
             noise) and every sample under its own per-pattern FMM bound. Exits 1 on any \
             violation. Results are bit-identical for every --jobs value.")
    Term.(const run $ benches_arg $ pfail_arg $ samples_arg $ seed_arg $ jobs_arg $ sets_arg
          $ ways_arg $ line_arg $ engine_arg $ baseline_arg $ json_arg)

(* --- audit ------------------------------------------------------------------ *)

let audit_cmd =
  let run pfail sets ways line jobs samples seed =
    let config = config_of sets ways line in
    let failures = ref 0 in
    List.iter
      (fun (e : Benchmarks.Registry.entry) ->
        let compiled = Minic.Compile.compile e.Benchmarks.Registry.program in
        let task =
          Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config ()
        in
        let ests =
          List.map
            (fun mech -> (mech, Pwcet.Estimator.estimate task ~pfail ~mechanism:mech ~jobs ()))
            Pwcet.Mechanism.all
        in
        let baseline = List.assoc Pwcet.Mechanism.No_protection ests in
        let reports =
          List.map (fun (_, est) -> Pwcet.Audit.check_estimate est) ests
          @ List.map (fun (_, est) -> Pwcet.Audit.monte_carlo ~samples ~seed est) ests
          @ List.filter_map
              (fun (mech, est) ->
                if Pwcet.Mechanism.equal mech Pwcet.Mechanism.No_protection then None
                else Some (Pwcet.Audit.check_dominance ~baseline ~other:est))
              ests
        in
        let report = Pwcet.Audit.merge reports in
        Format.printf "%-14s %a@." e.Benchmarks.Registry.name Pwcet.Audit.pp_report report;
        if not (Pwcet.Audit.ok report) then incr failures)
      Benchmarks.Registry.all;
    if !failures > 0 then begin
      Printf.printf "\naudit FAILED on %d benchmark(s)\n" !failures;
      exit 1
    end
    else print_endline "\naudit passed: no invariant violations"
  in
  let samples_arg =
    Arg.(value & opt int 10
         & info [ "samples" ] ~docv:"N" ~doc:"Monte-Carlo fault maps per (benchmark, mechanism).")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed for the fault-injection search.") in
  Cmd.v
    (cmd_info "audit"
       ~doc:"Run the runtime invariant auditor over the whole benchmark registry: FMM \
             shape, distribution mass conservation, exceedance monotonicity, mechanism \
             dominance, and a seeded Monte-Carlo fault-injection bound-violation search. \
             Exits 1 on any violation.")
    Term.(const run $ pfail_arg $ sets_arg $ ways_arg $ line_arg $ jobs_arg $ samples_arg
          $ seed_arg)

(* --- cache (artifact-store maintenance) -------------------------------------- *)

let cache_dir_required =
  Arg.(required & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR" ~doc:"The artifact store directory.")

let cache_stat_cmd =
  let run dir =
    let st = Store.Artifact.open_store ~dir () in
    let d = Store.Artifact.disk_stats st in
    Printf.printf "store      : %s\n" (Store.Artifact.root st);
    Printf.printf "objects    : %d (%d bytes)\n" d.Store.Artifact.objects
      d.Store.Artifact.object_bytes;
    Printf.printf "quarantined: %d\n" d.Store.Artifact.quarantined;
    Printf.printf "journals   : %d\n" d.Store.Artifact.journals
  in
  Cmd.v
    (cmd_info "stat" ~doc:"What is in the artifact store: object/journal counts and bytes")
    Term.(const run $ cache_dir_required)

let cache_verify_cmd =
  let run dir =
    let st = Store.Artifact.open_store ~dir () in
    let r = Store.Artifact.verify ~expected:Pwcet.Estimator.artifact_kinds st in
    Printf.printf "checked %d object(s): %d intact, %d corrupt (quarantined), %d stale\n"
      r.Store.Artifact.total r.Store.Artifact.intact
      (List.length r.Store.Artifact.quarantined)
      (List.length r.Store.Artifact.stale);
    List.iter
      (fun (key, e) ->
        Printf.printf "  corrupt %s: %s\n" key (Robust.Pwcet_error.to_string e))
      r.Store.Artifact.quarantined;
    List.iter
      (fun (key, e) ->
        Printf.printf "  stale   %s: %s\n" key (Robust.Pwcet_error.to_string e))
      r.Store.Artifact.stale;
    if r.Store.Artifact.quarantined <> [] then exit 1
  in
  Cmd.v
    (cmd_info "verify"
       ~doc:"Integrity-check every stored artifact; corrupt entries are quarantined (and \
             will be recomputed on next use). Exit 1 if any corruption was found. Intact \
             entries of an outdated format version are reported as stale.")
    Term.(const run $ cache_dir_required)

let cache_gc_cmd =
  let run dir all =
    let st = Store.Artifact.open_store ~dir () in
    let files, bytes = Store.Artifact.gc ~all st in
    Printf.printf "removed %d file(s), %d bytes\n" files bytes
  in
  let all_arg =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"Drop every object and journal too — a full reset, not just the \
                   quarantine and stale temp files.")
  in
  Cmd.v
    (cmd_info "gc"
       ~doc:"Empty the quarantine and drop stale temp files; with --all, reset the whole \
             store.")
    Term.(const run $ cache_dir_required $ all_arg)

let cache_cmd =
  Cmd.group
    (cmd_info "cache"
       ~doc:"Artifact-store maintenance: stat (disk usage), verify (integrity check every \
             entry), gc (quarantine/full cleanup)")
    [ cache_stat_cmd; cache_verify_cmd; cache_gc_cmd ]

(* --- serve / client (the analysis daemon) ------------------------------------ *)

let exit_overloaded = 3

let socket_arg =
  Arg.(required & opt (some string) None
       & info [ "s"; "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket the daemon listens on (serve) or connects to (client).")

let serve_cmd =
  let run socket domains queue_max task_cache result_cache cache_dir no_cache max_conns
      read_timeout chaos_plan chaos_seed =
    if queue_max < 0 then begin
      Printf.eprintf "serve: --queue-max must be non-negative, got %d\n" queue_max;
      exit exit_invalid_input
    end;
    if task_cache < 1 then begin
      Printf.eprintf "serve: --task-cache must be at least 1, got %d\n" task_cache;
      exit exit_invalid_input
    end;
    if result_cache < 0 then begin
      Printf.eprintf "serve: --result-cache must be non-negative, got %d\n" result_cache;
      exit exit_invalid_input
    end;
    (match max_conns with
    | Some n when n < 1 ->
      Printf.eprintf "serve: --max-conns must be at least 1, got %d\n" n;
      exit exit_invalid_input
    | _ -> ());
    (match read_timeout with
    | Some s when s <= 0.0 ->
      Printf.eprintf "serve: --read-timeout must be positive, got %g\n" s;
      exit exit_invalid_input
    | _ -> ());
    let chaos =
      match chaos_plan with
      | None -> None
      | Some name -> (
        match Chaos.Plan.named name with
        | Ok plan -> Some (Chaos.Injector.create ~seed:chaos_seed plan)
        | Error msg ->
          Printf.eprintf "serve: %s\n" msg;
          exit exit_invalid_input)
    in
    let store = store_of cache_dir no_cache in
    let scheduler =
      Service.Scheduler.create
        { Service.Scheduler.domains; queue_max; store; task_cache_max = task_cache;
          result_cache_max = result_cache; chaos }
    in
    let stop = Atomic.make false in
    let handle = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
    List.iter
      (fun signal -> try Sys.set_signal signal handle with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigint; Sys.sigterm ];
    let on_ready () =
      Printf.printf "pwcet_tool serve: listening on %s (domains=%d, queue-max=%d%s)\n%!" socket
        domains queue_max
        (match store with
        | Some st -> Printf.sprintf ", store %s" (Store.Artifact.root st)
        | None -> ", no store")
    in
    match
      Service.Server.run
        { Service.Server.socket_path = socket; scheduler; on_ready; stop; max_conns;
          read_timeout_s = read_timeout; chaos }
    with
    | () ->
      let s = Service.Scheduler.stats scheduler in
      Printf.printf
        "pwcet_tool serve: clean shutdown after %.1f s: %d request(s) (%d computed, %d \
         deduped, %d shed, %d errors)\n"
        s.Service.Protocol.uptime_s s.Service.Protocol.requests s.Service.Protocol.computations
        s.Service.Protocol.deduped s.Service.Protocol.overloaded s.Service.Protocol.errors;
      report_store_stats store;
      exit exit_cancelled
    | exception Service.Server.Already_running msg ->
      Printf.eprintf "serve: %s\n" msg;
      exit 1
  in
  let domains_arg =
    Arg.(value & opt jobs_conv 2
         & info [ "domains" ] ~docv:"N"
             ~doc:"Worker domains computing estimates, between 1 and 256.")
  in
  let queue_max_arg =
    Arg.(value & opt int 64
         & info [ "queue-max" ] ~docv:"N"
             ~doc:"Bound on queued (not yet running) computations; beyond it requests are \
                   shed with a typed overloaded response instead of queuing unboundedly.")
  in
  let task_cache_arg =
    Arg.(value & opt int 32
         & info [ "task-cache" ] ~docv:"N"
             ~doc:"Prepared analysis tasks kept in memory (FIFO-evicted), so warm requests \
                   skip CFG recovery and cache analysis entirely.")
  in
  let result_cache_arg =
    Arg.(value & opt int 256
         & info [ "result-cache" ] ~docv:"N"
             ~doc:"Completed estimates kept in memory (FIFO-evicted) and returned directly \
                   for repeat requests; 0 disables the layer so every warm request replays \
                   from the artifact store instead.")
  in
  let max_conns_arg =
    Arg.(value & opt (some int) None
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Connection admission cap: beyond N concurrently served connections, new \
                   ones are refused at accept with a typed overloaded response — the \
                   fd/thread analogue of --queue-max. Default: unbounded.")
  in
  let read_timeout_arg =
    Arg.(value & opt (some float) None
         & info [ "read-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-frame read deadline: a client stalling mid-request longer than this \
                   is shed with a typed overloaded response and disconnected (slow-loris \
                   defence). Default: wait forever.")
  in
  let chaos_plan_arg =
    Arg.(value & opt (some string) None
         & info [ "chaos-plan" ] ~docv:"PLAN"
             ~doc:"Arm deterministic fault injection inside the daemon using the named \
                   built-in plan (none, store, workers, pool, service, all) — worker-domain \
                   deaths, stalled and reset transfers. For soak testing only.")
  in
  let chaos_seed_arg =
    Arg.(value & opt int 0
         & info [ "chaos-seed" ] ~docv:"SEED"
             ~doc:"Seed for --chaos-plan; the fault schedule is a pure function of \
                   (seed, site, occurrence).")
  in
  Cmd.v
    (cmd_info "serve"
       ~doc:"Long-running pWCET analysis daemon: length-prefixed JSON over a Unix socket, \
             concurrent requests fanned across worker domains, identical in-flight \
             requests deduplicated by content-addressed identity, admission control with \
             typed load shedding, per-request deadlines on the degradation ladder, and the \
             artifact store as a warm cross-restart cache. SIGTERM/SIGINT shut it down \
             cleanly (in-flight responses finish, the store is left consistent, the \
             socket is removed); it then exits 130 like every signal-ended run.")
    Term.(const run $ socket_arg $ domains_arg $ queue_max_arg $ task_cache_arg
          $ result_cache_arg $ cache_dir_arg $ no_cache_arg $ max_conns_arg
          $ read_timeout_arg $ chaos_plan_arg $ chaos_seed_arg)

let client_mech_conv =
  Arg.enum
    [ ("none", Pwcet.Mechanism.No_protection);
      ("srb", Pwcet.Mechanism.Shared_reliable_buffer);
      ("rw", Pwcet.Mechanism.Reliable_way) ]

(* --- sched (probabilistic schedulability) ------------------------------------ *)

let policy_conv = Arg.enum [ ("rm", Sched.Analysis.Rm); ("edf", Sched.Analysis.Edf) ]

let positive_float_conv what =
  let parse s =
    match float_of_string_opt s with
    | Some f when Float.is_finite f && f > 0.0 -> Ok f
    | _ -> Error (`Msg (Printf.sprintf "%s must be a positive finite number, got %S" what s))
  in
  Arg.conv ~docv:"X" (parse, fun fmt f -> Format.fprintf fmt "%g" f)

(* All campaign parameters funnel through Campaign.make, so the CLI and
   the service validate specs identically. *)
let sched_spec_term =
  let count_arg =
    Arg.(value & opt int 100
         & info [ "count" ] ~docv:"N" ~doc:"Task sets in the campaign.")
  in
  let n_tasks_arg =
    Arg.(value & opt int 4 & info [ "n-tasks" ] ~docv:"N" ~doc:"Tasks per set.")
  in
  let utilisation_arg =
    Arg.(value & opt (positive_float_conv "utilisation") 0.6
         & info [ "utilisation" ] ~docv:"U"
             ~doc:"Total utilisation UUniFast splits across the set, in (0, n-tasks].")
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N"
             ~doc:"Campaign seed; task set $(i,i) is a pure function of (seed, i).")
  in
  let policy_arg =
    Arg.(value & opt policy_conv Sched.Analysis.Rm
         & info [ "policy" ] ~docv:"POLICY" ~doc:"Scheduling policy: 'rm' (default) or 'edf'.")
  in
  let reexec_arg =
    Arg.(value & opt int 1
         & info [ "reexec" ] ~docv:"K"
             ~doc:"Re-execution budget k: a fault-flagged job re-runs up to $(docv) times \
                   (k+1 executions in total) before it counts as failed.")
  in
  let k_max_arg =
    Arg.(value & opt int 3
         & info [ "k-max" ] ~docv:"K"
             ~doc:"Top of the minimal-budget scan reported per target; at least --reexec.")
  in
  let sched_targets_arg =
    Arg.(value & opt (list ~sep:',' prob_conv) Sched.Analysis.default_targets
         & info [ "targets" ] ~docv:"P,P,..."
             ~doc:"Per-hour deadline-failure-rate targets (default 1e-3,1e-5,1e-7,1e-9).")
  in
  let fault_rate_arg =
    Arg.(value & opt prob_conv 1e-4
         & info [ "fault-rate" ] ~docv:"P"
             ~doc:"Transient (detected) fault probability per hour of execution, composed \
                   per execution in log space.")
  in
  let clock_arg =
    Arg.(value & opt (positive_float_conv "clock") 100.0
         & info [ "clock-mhz" ] ~docv:"MHZ" ~doc:"Processor clock, for cycles-per-hour.")
  in
  let rep_target_arg =
    Arg.(value & opt prob_conv 1e-9
         & info [ "rep-target" ] ~docv:"P"
             ~doc:"Quantile of each task's pWCET law provisioning its per-execution budget \
                   (and fault-exposure window).")
  in
  let max_points_arg =
    Arg.(value & opt int 512
         & info [ "max-points" ] ~docv:"N"
             ~doc:"Convolution support cap for the sched layer; capping is recorded as \
                   degraded (relaxed-rung) provenance and only ever rounds upward.")
  in
  let benchmarks_arg =
    Arg.(value & opt (list ~sep:',' string) []
         & info [ "benchmarks" ] ~docv:"NAME,NAME,..."
             ~doc:"Benchmarks tasks draw from (default: the whole registry).")
  in
  let build count n_tasks utilisation seed policy reexec_budget k_max targets pfail mech sets
      ways line fault_rate clock_mhz rep_target max_points benchmarks =
    let benchmarks =
      match benchmarks with [] -> Benchmarks.Registry.names | names -> names
    in
    match
      Sched.Campaign.make ~count ~n_tasks ~utilisation ~seed ~policy ~reexec_budget ~k_max
        ~targets ~pfail ~mechanism:mech ~sets ~ways ~line ~fault_rate ~clock_mhz ~rep_target
        ~max_points ~benchmarks ()
    with
    | Ok spec -> spec
    | Error msg ->
      Printf.eprintf "sched: %s\n" msg;
      exit exit_invalid_input
  in
  let sched_mech_arg =
    Arg.(value & opt client_mech_conv Pwcet.Mechanism.Shared_reliable_buffer
         & info [ "mechanism" ] ~docv:"MECH" ~doc:"Mechanism: 'none', 'srb' (default) or 'rw'.")
  in
  Term.(const build $ count_arg $ n_tasks_arg $ utilisation_arg $ seed_arg $ policy_arg
        $ reexec_arg $ k_max_arg $ sched_targets_arg $ pfail_arg $ sched_mech_arg $ sets_arg
        $ ways_arg $ line_arg $ fault_rate_arg $ clock_arg $ rep_target_arg $ max_points_arg
        $ benchmarks_arg)

let sched_generate_cmd =
  let run (spec : Sched.Campaign.spec) =
    for index = 0 to spec.count - 1 do
      let ts = Sched.Taskset.generate (Sched.Campaign.taskset_spec spec) ~index in
      Printf.printf "set %4d  U=%.4f " index (Sched.Taskset.total_utilisation ts);
      List.iter
        (fun (t : Sched.Taskset.task) -> Printf.printf " %s:%.4f" t.bench t.utilisation)
        ts.tasks;
      print_newline ()
    done
  in
  Cmd.v
    (cmd_info "generate"
       ~doc:"Print the campaign's UUniFast task sets (pure function of seed and index)")
    Term.(const run $ sched_spec_term)

let mc_samples_arg =
  Arg.(value & opt int 0
       & info [ "mc-samples" ] ~docv:"N"
           ~doc:"Cross-validate each analysed set against $(docv) Monte-Carlo scheduler \
                 samples (empirical deadline misses must stay under the analytic bound \
                 plus 5-sigma noise); 0 (default) skips validation.")

let mc_seed_arg =
  Arg.(value & opt (some int) None
       & info [ "mc-seed" ] ~docv:"N"
           ~doc:"Seed of the Monte-Carlo cross-validation (default: the campaign seed).")

let print_sched_summary (spec : Sched.Campaign.spec) results digest =
  let count = List.length results in
  Printf.printf "campaign    : %d set(s) x %d task(s), U=%g, policy %s, k=%d (scan to %d)\n"
    count spec.n_tasks spec.utilisation
    (Sched.Analysis.policy_name spec.policy)
    spec.reexec_budget spec.k_max;
  Printf.printf "model       : %s, pfail %g, fault rate %g/h @ %g MHz, rep target %g\n"
    (Pwcet.Mechanism.short_name spec.mechanism)
    spec.pfail spec.fault_rate spec.clock_mhz spec.rep_target;
  List.iter
    (fun target ->
      let passed =
        List.length
          (List.filter
             (fun (r : Sched.Campaign.set_result) ->
               match List.assoc_opt target r.passes with Some ok -> ok | None -> false)
             results)
      in
      let feasible =
        List.length
          (List.filter
             (fun (r : Sched.Campaign.set_result) ->
               match List.assoc_opt target r.min_budget with
               | Some (Some _) -> true
               | _ -> false)
             results)
      in
      Printf.printf "  target %-8g: %4d/%d pass at k=%d, %4d feasible within k<=%d\n" target
        passed count spec.reexec_budget feasible spec.k_max)
    spec.targets;
  let count_if pred = List.length (List.filter pred results) in
  Printf.printf "degraded    : %d set(s) on budget-exhausted upper bounds\n"
    (count_if (fun (r : Sched.Campaign.set_result) -> r.degraded));
  Printf.printf "capped      : %d set(s) with max-points provenance\n"
    (count_if (fun (r : Sched.Campaign.set_result) -> r.capped));
  let worst =
    List.fold_left
      (fun acc (r : Sched.Campaign.set_result) -> Float.max acc r.p_system_hour)
      0.0 results
  in
  Printf.printf "worst system: %g /h\n" worst;
  Printf.printf "digest      : %s\n" digest

let print_sched_per_set results =
  List.iter
    (fun (r : Sched.Campaign.set_result) ->
      Printf.printf "  set %4d: p_system %.3e /h%s%s%s\n" r.set_index r.p_system_hour
        (rung_tag r.rung)
        (if r.capped then "  [capped]" else "")
        (if r.degraded then "  [degraded]" else ""))
    results

let sched_json results (spec : Sched.Campaign.spec) digest file =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema_version\": 1,\n";
  Printf.bprintf buf "  \"count\": %d,\n" (List.length results);
  Printf.bprintf buf "  \"n_tasks\": %d,\n" spec.n_tasks;
  Printf.bprintf buf "  \"utilisation\": %.17g,\n" spec.utilisation;
  Printf.bprintf buf "  \"seed\": %d,\n" spec.seed;
  Printf.bprintf buf "  \"policy\": %S,\n" (Sched.Analysis.policy_name spec.policy);
  Printf.bprintf buf "  \"reexec_budget\": %d,\n" spec.reexec_budget;
  Printf.bprintf buf "  \"k_max\": %d,\n" spec.k_max;
  Printf.bprintf buf "  \"pfail\": %.17g,\n" spec.pfail;
  Printf.bprintf buf "  \"mechanism\": %S,\n" (Pwcet.Mechanism.short_name spec.mechanism);
  Printf.bprintf buf "  \"fault_rate\": %.17g,\n" spec.fault_rate;
  Printf.bprintf buf "  \"clock_mhz\": %.17g,\n" spec.clock_mhz;
  Printf.bprintf buf "  \"targets\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "%.17g") spec.targets));
  Printf.bprintf buf "  \"digest\": %S,\n" digest;
  Buffer.add_string buf "  \"sets\": [\n";
  List.iteri
    (fun i (r : Sched.Campaign.set_result) ->
      Printf.bprintf buf "    { \"index\": %d, \"p_system_hour\": %.17g, \"rung\": %S,\n"
        r.set_index r.p_system_hour
        (Robust.Rung.to_string r.rung);
      Printf.bprintf buf "      \"capped\": %b, \"degraded\": %b,\n" r.capped r.degraded;
      Printf.bprintf buf "      \"passes\": [%s],\n"
        (String.concat ", " (List.map (fun (_, ok) -> string_of_bool ok) r.passes));
      Printf.bprintf buf "      \"min_budget\": [%s],\n"
        (String.concat ", "
           (List.map
              (fun (_, k) -> match k with None -> "null" | Some k -> string_of_int k)
              r.min_budget));
      Printf.bprintf buf "      \"tasks\": [\n";
      List.iteri
        (fun j (row : Sched.Campaign.task_row) ->
          Printf.bprintf buf
            "        { \"bench\": %S, \"utilisation\": %.17g, \"period\": %d, \"p_exec\": \
             %.17g, \"p_job\": %.17g, \"p_hour\": %.17g }%s\n"
            row.bench row.utilisation row.period row.p_exec row.p_job row.p_hour
            (if j = List.length r.rows - 1 then "" else ","))
        r.rows;
      Printf.bprintf buf "      ] }%s\n" (if i = List.length results - 1 then "" else ","))
    results;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out file in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s\n" file

let sched_analyze_cmd =
  let run (spec : Sched.Campaign.spec) jobs ilp_nodes timeout mc_samples mc_seed json_file
      per_set cache_dir no_cache resume crash_after =
    if resume && cache_dir = None then begin
      Printf.eprintf "sched analyze: --resume requires --cache-dir (the journal lives there)\n";
      exit exit_invalid_input
    end;
    if resume && (ilp_nodes <> None || timeout <> None) then begin
      Printf.eprintf
        "sched analyze: --resume is incompatible with budget options (budgeted results \
         depend on wall-clock and are never journalled)\n";
      exit exit_invalid_input
    end;
    install_cancel_handlers ();
    let budget = budget_of ilp_nodes timeout in
    let store = store_of cache_dir no_cache in
    let laws = Sched.Campaign.laws ?store ?budget ~jobs spec in
    let run_key = Store.Artifact.key (Sched.Campaign.identity spec) in
    let journal, replayed =
      match store with
      | Some st when budget = None ->
        let path = Store.Artifact.journal_path st ~run_key in
        if resume then
          let w, units = Store.Journal.resume ~path ~run_key () in
          (Some (w, path), units)
        else (Some (Store.Journal.create ~path ~run_key (), path), [])
      | _ -> (None, [])
    in
    let writer = Option.map fst journal in
    let completed = Hashtbl.create 64 in
    List.iter
      (fun payload ->
        match Sched.Campaign.result_of_wire payload with
        | Ok r -> Hashtbl.replace completed r.set_index r
        | Error _ -> ())
      replayed;
    if Hashtbl.length completed > 0 then
      Printf.eprintf "sched analyze: resuming: %d completed set(s) replayed from the journal\n"
        (Hashtbl.length completed);
    let appended = ref 0 in
    let append_result r =
      match journal with
      | None -> ()
      | Some (w, path) ->
        Store.Journal.append w (Sched.Campaign.result_to_wire r);
        incr appended;
        maybe_crash crash_after ~appended:!appended ~journal_path:path
    in
    let mcs = ref [] in
    let results =
      match journal with
      | Some _ ->
        (* Journaled path: sequential, set granularity — cancellation
           and crashes lose at most the set in flight. Replayed sets
           skip Monte-Carlo re-validation (they were validated when
           first computed, and the digest covers only the analytic
           results either way). *)
        let out = ref [] in
        for index = 0 to spec.count - 1 do
          bail_if_cancelled ?journal:writer "sched analyze";
          let r =
            match Hashtbl.find_opt completed index with
            | Some r -> r
            | None ->
              let r, mc =
                Sched.Campaign.analyze_set ?budget ~mc_samples ?mc_seed spec laws ~index
              in
              Option.iter (fun m -> mcs := (index, m) :: !mcs) mc;
              append_result r;
              r
          in
          out := r :: !out
        done;
        List.rev !out
      | None ->
        let t = Sched.Campaign.run_with_laws ?budget ~jobs ~mc_samples ?mc_seed spec laws in
        mcs := List.rev t.Sched.Campaign.mc;
        t.Sched.Campaign.results
    in
    Option.iter Store.Journal.close writer;
    let digest = Sched.Campaign.digest_of_results results in
    print_sched_summary spec results digest;
    if per_set then print_sched_per_set results;
    let mc_failures =
      List.filter (fun ((_ : int), (m : Sched.Montecarlo.t)) -> not m.pass) (List.rev !mcs)
    in
    if mc_samples > 0 then begin
      let validated = List.length !mcs in
      if mc_failures = [] then
        Printf.printf "monte-carlo : %d set(s) x %d sample(s): analytic bounds hold\n"
          validated mc_samples
      else
        List.iter
          (fun (index, (m : Sched.Montecarlo.t)) ->
            List.iteri
              (fun i (s : Sched.Montecarlo.task_stat) ->
                if not s.pass then
                  Printf.eprintf
                    "monte-carlo VIOLATION: set %d task %d: empirical %.3e > analytic %.3e \
                     + noise %.3e\n"
                    index i s.empirical s.analytic s.noise)
              m.tasks)
          mc_failures
    end;
    Option.iter (sched_json results spec digest) json_file;
    report_store_stats store;
    if mc_failures <> [] then exit 1
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Also write the campaign results as JSON.")
  in
  let per_set_arg =
    Arg.(value & flag & info [ "per-set" ] ~doc:"Print one line per analysed task set.")
  in
  Cmd.v
    (cmd_info "analyze"
       ~doc:"Deadline-failure-probability campaign: per-benchmark pWCET laws once (store- \
             backed), then UUniFast task sets analysed under bounded re-execution, with \
             per-target verdicts, minimal budgets, journal resume and optional Monte-Carlo \
             cross-validation")
    Term.(const run $ sched_spec_term $ jobs_arg $ ilp_nodes_arg $ timeout_arg
          $ mc_samples_arg $ mc_seed_arg $ json_arg $ per_set_arg $ cache_dir_arg
          $ no_cache_arg $ resume_arg $ crash_after_arg)

let sched_sweep_cmd =
  let run (spec : Sched.Campaign.spec) jobs ilp_nodes timeout u_grid n_grid pfail_grid
      json_file cache_dir no_cache =
    install_cancel_handlers ();
    let budget = budget_of ilp_nodes timeout in
    let store = store_of cache_dir no_cache in
    let u_grid = match u_grid with [] -> [ spec.utilisation ] | g -> g in
    let n_grid = match n_grid with [] -> [ spec.n_tasks ] | g -> g in
    let pfail_grid = match pfail_grid with [] -> [ spec.pfail ] | g -> g in
    (* Validate every grid combination before computing anything. *)
    List.iter
      (fun pfail ->
        List.iter
          (fun n_tasks ->
            List.iter
              (fun utilisation ->
                match
                  Sched.Campaign.validate { spec with pfail; n_tasks; utilisation }
                with
                | Ok () -> ()
                | Error msg ->
                  Printf.eprintf "sched sweep: pfail=%g n=%d U=%g: %s\n" pfail n_tasks
                    utilisation msg;
                  exit exit_invalid_input)
              u_grid)
          n_grid)
      pfail_grid;
    let rows =
      List.concat_map
        (fun pfail ->
          (* The expensive per-benchmark estimates depend on pfail but
             not on the task-set shape: one law pool serves the whole
             utilisation x n-tasks sub-grid. *)
          let laws = Sched.Campaign.laws ?store ?budget ~jobs { spec with pfail } in
          List.concat_map
            (fun n_tasks ->
              List.map
                (fun utilisation ->
                  bail_if_cancelled "sched sweep";
                  let spec' = { spec with pfail; n_tasks; utilisation } in
                  let t = Sched.Campaign.run_with_laws ?budget ~jobs spec' laws in
                  (spec', t))
                u_grid)
            n_grid)
        pfail_grid
    in
    Printf.printf "%-10s %-7s %-8s" "pfail" "n-tasks" "U";
    List.iter (fun t -> Printf.printf "  pass(%g)" t) spec.targets;
    print_newline ();
    List.iter
      (fun ((spec' : Sched.Campaign.spec), (t : Sched.Campaign.t)) ->
        Printf.printf "%-10g %-7d %-8g" spec'.pfail spec'.n_tasks spec'.utilisation;
        List.iter
          (fun target ->
            let passed =
              List.length
                (List.filter
                   (fun (r : Sched.Campaign.set_result) ->
                     match List.assoc_opt target r.passes with
                     | Some ok -> ok
                     | None -> false)
                   t.results)
            in
            Printf.printf "  %4d/%-4d" passed (List.length t.results))
          spec'.targets;
        print_newline ())
      rows;
    (match json_file with
    | None -> ()
    | Some file ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf "{\n  \"schema_version\": 1,\n  \"points\": [\n";
      List.iteri
        (fun i ((spec' : Sched.Campaign.spec), (t : Sched.Campaign.t)) ->
          Printf.bprintf buf
            "    { \"pfail\": %.17g, \"n_tasks\": %d, \"utilisation\": %.17g, \"digest\": \
             %S,\n      \"targets\": [%s],\n      \"pass\": [%s] }%s\n"
            spec'.pfail spec'.n_tasks spec'.utilisation t.digest
            (String.concat ", " (List.map (Printf.sprintf "%.17g") spec'.targets))
            (String.concat ", "
               (List.map
                  (fun target ->
                    string_of_int
                      (List.length
                         (List.filter
                            (fun (r : Sched.Campaign.set_result) ->
                              match List.assoc_opt target r.passes with
                              | Some ok -> ok
                              | None -> false)
                            t.results)))
                  spec'.targets))
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Buffer.add_string buf "  ]\n}\n";
      let oc = open_out file in
      Buffer.output_buffer oc buf;
      close_out oc;
      Printf.printf "wrote %s\n" file);
    report_store_stats store
  in
  let u_grid_arg =
    Arg.(value & opt (list ~sep:',' (positive_float_conv "utilisation")) []
         & info [ "utilisation-grid" ] ~docv:"U,U,..."
             ~doc:"Total-utilisation grid (default: just --utilisation).")
  in
  let n_grid_arg =
    Arg.(value & opt (list ~sep:',' int) []
         & info [ "n-tasks-grid" ] ~docv:"N,N,..."
             ~doc:"Tasks-per-set grid (default: just --n-tasks).")
  in
  let sweep_pfail_grid_arg =
    Arg.(value & opt (list ~sep:',' prob_conv) []
         & info [ "pfail-grid" ] ~docv:"P,P,..."
             ~doc:"pfail grid; the per-benchmark laws are computed once per pfail and \
                   shared across the whole utilisation x n-tasks sub-grid.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Also write the sweep table as JSON.")
  in
  Cmd.v
    (cmd_info "sweep"
       ~doc:"Schedulability sweep over utilisation x n-tasks x pfail grids, amortising the \
             per-benchmark pWCET laws across each pfail slice")
    Term.(const run $ sched_spec_term $ jobs_arg $ ilp_nodes_arg $ timeout_arg $ u_grid_arg
          $ n_grid_arg $ sweep_pfail_grid_arg $ json_arg $ cache_dir_arg $ no_cache_arg)

let sched_cmd =
  Cmd.group
    (cmd_info "sched"
       ~doc:"Probabilistic schedulability: UUniFast task-set campaigns over the suite's \
             pWCET laws, with bounded re-execution, per-hour reliability targets and \
             Monte-Carlo cross-validation")
    [ sched_generate_cmd; sched_analyze_cmd; sched_sweep_cmd ]

(* --- client (talks to a running daemon) -------------------------------------- *)

(* The campaign spec, reshaped for the wire. Field for field, so a
   daemon-side Campaign.make sees exactly what a local one would. *)
let sched_request_of_spec (spec : Sched.Campaign.spec) : Service.Protocol.sched =
  { Service.Protocol.count = spec.count;
    n_tasks = spec.n_tasks;
    utilisation = spec.utilisation;
    seed = spec.seed;
    policy = spec.policy;
    reexec = spec.reexec_budget;
    k_max = spec.k_max;
    targets = spec.targets;
    s_pfail = spec.pfail;
    s_mechanism = spec.mechanism;
    s_sets = spec.sets;
    s_ways = spec.ways;
    s_line = spec.line;
    fault_rate = spec.fault_rate;
    clock_mhz = spec.clock_mhz;
    rep_target = spec.rep_target;
    max_points = spec.max_points;
    benchmarks = spec.benchmarks }

let client_cmd =
  let run socket op bench pfail target mech sets ways line engine exact impl timeout_ms
      delay_ms bench_load clients requests retries retry_base_ms hold_ms
      (spec : Sched.Campaign.spec) grid_benchmarks grid_geometries grid_mechanisms
      grid_pfails grid_targets =
    if retries < 0 || retry_base_ms < 0 then begin
      Printf.eprintf "client: --retries and --retry-base-ms must be non-negative\n";
      exit exit_invalid_input
    end;
    let fail_transport msg =
      Printf.eprintf "client: %s\n" msg;
      exit 1
    in
    let request req = Service.Client.request_with_retry ~socket ~retries ~base_ms:retry_base_ms req in
    let fail_overloaded queued queue_max =
      Printf.eprintf "client: request shed by admission control (%d/%d queued%s)\n" queued
        queue_max
        (if retries > 0 then Printf.sprintf " after %d retries" retries else "");
      exit exit_overloaded
    in
    let analyze_request () =
      match bench with
      | None ->
        Printf.eprintf "client: analyze needs a TARGET benchmark name\n";
        exit exit_invalid_input
      | Some bench ->
        { (Service.Protocol.default_analyze ~bench) with
          Service.Protocol.pfail; target; mechanism = mech; sets; ways; line; engine; exact;
          impl; timeout_ms; delay_ms }
    in
    let print_stats (s : Service.Protocol.stats_payload) =
      Printf.printf "requests     : %d\n" s.Service.Protocol.requests;
      Printf.printf "computations : %d\n" s.Service.Protocol.computations;
      Printf.printf "deduped      : %d\n" s.Service.Protocol.deduped;
      Printf.printf "overloaded   : %d\n" s.Service.Protocol.overloaded;
      Printf.printf "errors       : %d\n" s.Service.Protocol.errors;
      Printf.printf "queued       : %d\n" s.Service.Protocol.queued;
      Printf.printf "crashed      : %d\n" s.Service.Protocol.crashed_workers;
      Printf.printf "respawned    : %d\n" s.Service.Protocol.respawned_workers;
      Printf.printf "slow-clients : %d\n" s.Service.Protocol.slow_clients;
      Printf.printf "rejected     : %d\n" s.Service.Protocol.rejected_conns;
      (match s.Service.Protocol.store with
      | None -> ()
      | Some (hits, misses, puts) ->
        Printf.printf "store        : %d hits, %d misses, %d puts\n" hits misses puts);
      Printf.printf "uptime       : %.1f s\n" s.Service.Protocol.uptime_s
    in
    match op with
    | `Ping -> (
      match Service.Client.request ~socket Service.Protocol.Ping with
      | Ok Service.Protocol.Pong -> print_endline "pong"
      | Ok _ -> fail_transport "unexpected response to ping"
      | Error msg -> fail_transport msg)
    | `Stats -> (
      match Service.Client.request ~socket Service.Protocol.Stats with
      | Ok (Service.Protocol.Stats_reply s) -> print_stats s
      | Ok _ -> fail_transport "unexpected response to stats"
      | Error msg -> fail_transport msg)
    | `Sched -> (
      match request (Service.Protocol.Sched (sched_request_of_spec spec)) with
      | Ok (Service.Protocol.Sched_reply r) ->
        Printf.printf "analyzed : %d task set(s)\n" r.Service.Protocol.analyzed;
        Printf.printf "passes   : %d (every target, at k=%d)\n" r.Service.Protocol.passes
          spec.reexec_budget;
        Printf.printf "degraded : %d\n" r.Service.Protocol.degraded;
        Printf.printf "digest   : %s\n" r.Service.Protocol.digest;
        Printf.printf "computed : %b\n" r.Service.Protocol.sched_computed
      | Ok (Service.Protocol.Overloaded { queued; queue_max }) ->
        fail_overloaded queued queue_max
      | Ok (Service.Protocol.Error_reply msg) ->
        Printf.eprintf "client: daemon error: %s\n" msg;
        exit 1
      | Ok _ -> fail_transport "unexpected response to sched"
      | Error msg -> fail_transport msg)
    | `Grid -> (
      let benchmarks =
        match (grid_benchmarks, bench) with
        | [], None ->
          Printf.eprintf
            "client: grid needs a TARGET benchmark name or --grid-benchmarks\n";
          exit exit_invalid_input
        | [], Some b -> [ b ]
        | bs, _ -> bs
      in
      if grid_pfails = [] then begin
        Printf.eprintf "client: --grid-pfails must name at least one pfail point\n";
        exit exit_invalid_input
      end;
      if grid_targets = [] then begin
        Printf.eprintf "client: --grid-targets must name at least one exceedance target\n";
        exit exit_invalid_input
      end;
      let req =
        { (Service.Protocol.default_grid ~benchmarks) with
          Service.Protocol.g_geometries =
            List.map
              (fun c ->
                (c.Cache.Config.sets, c.Cache.Config.ways, c.Cache.Config.line_bytes))
              (geometries_of ~label:"client" grid_geometries);
          g_mechanisms = mechanisms_of ~label:"client" grid_mechanisms;
          g_pfails = grid_pfails;
          g_targets = grid_targets;
          g_engine = engine;
          g_exact = exact;
          g_impl = impl }
      in
      match request (Service.Protocol.Grid req) with
      | Ok (Service.Protocol.Grid_reply r) ->
        Printf.printf "cells    : %d (%d failed)\n" r.Service.Protocol.cells
          r.Service.Protocol.failed;
        Printf.printf "digest   : %s\n" r.Service.Protocol.grid_digest;
        Printf.printf "computed : %b\n" r.Service.Protocol.grid_computed;
        if r.Service.Protocol.failed > 0 then exit 1
      | Ok (Service.Protocol.Overloaded { queued; queue_max }) ->
        fail_overloaded queued queue_max
      | Ok (Service.Protocol.Error_reply msg) ->
        Printf.eprintf "client: daemon error: %s\n" msg;
        exit 1
      | Ok _ -> fail_transport "unexpected response to grid"
      | Error msg -> fail_transport msg)
    | `Stall ->
      (* Slow-loris probe: each connection sends a deliberately
         unfinished frame (3 of the 8 length-prefix bytes) and then
         goes silent, exactly the shape the daemon's --read-timeout
         exists to shed. Counts how many connections were answered
         with the typed overloaded response before [--hold-ms]
         expired. *)
      if clients < 1 then begin
        Printf.eprintf "client: --clients must be at least 1\n";
        exit exit_invalid_input
      end;
      let hold_s = float_of_int hold_ms /. 1000.0 in
      let shed = ref 0 and lock = Mutex.create () in
      let one () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            match Unix.connect fd (Unix.ADDR_UNIX socket) with
            | exception Unix.Unix_error _ -> ()
            | () ->
              let partial = Bytes.of_string "\x03\x00\x00" in
              (match Unix.write fd partial 0 (Bytes.length partial) with
              | _ -> ()
              | exception Unix.Unix_error _ -> ());
              let deadline = Robust.Budget.now () +. hold_s in
              (match Service.Frame.read_within ~deadline fd with
              | Ok (Some payload) -> (
                match Service.Protocol.response_of_string payload with
                | Ok (Service.Protocol.Overloaded _) ->
                  Mutex.lock lock;
                  incr shed;
                  Mutex.unlock lock
                | Ok _ | Error _ -> ())
              | Ok None | Error _ -> ()
              | exception Unix.Unix_error _ -> ()))
      in
      let threads = List.init clients (fun _ -> Thread.create one ()) in
      List.iter Thread.join threads;
      Printf.printf "stalled : %d\n" clients;
      Printf.printf "shed    : %d\n" !shed
    | `Analyze ->
      let req = analyze_request () in
      if bench_load then begin
        if clients < 1 || requests < 1 then begin
          Printf.eprintf "client: --clients and --requests must be at least 1\n";
          exit exit_invalid_input
        end;
        let report = Service.Client.load ~socket ~clients ~requests [ req ] in
        Format.printf "%a@." Service.Client.pp_load_report report;
        if report.Service.Client.errors > 0 then exit 1
      end
      else begin
        match request (Service.Protocol.Analyze req) with
        | Ok (Service.Protocol.Result r) ->
          Printf.printf "benchmark      : %s\n" req.Service.Protocol.bench;
          Printf.printf "mechanism      : %s\n" (Pwcet.Mechanism.short_name mech);
          Printf.printf "fault-free WCET: %d cycles\n" r.Service.Protocol.wcet_ff;
          Printf.printf "pbf            : %g\n" r.Service.Protocol.pbf;
          Printf.printf "pWCET(%g) = %d cycles%s\n" target r.Service.Protocol.pwcet
            (if r.Service.Protocol.rung = "exact" then ""
             else Printf.sprintf "  [degraded: %s]" r.Service.Protocol.rung);
          Printf.printf "computed       : %b\n" r.Service.Protocol.computed
        | Ok (Service.Protocol.Overloaded { queued; queue_max }) ->
          fail_overloaded queued queue_max
        | Ok (Service.Protocol.Error_reply msg) ->
          Printf.eprintf "client: daemon error: %s\n" msg;
          exit 1
        | Ok _ -> fail_transport "unexpected response to analyze"
        | Error msg -> fail_transport msg
      end
  in
  let op_arg =
    Arg.(required
         & pos 0
             (some
                (enum
                   [ ("ping", `Ping); ("stats", `Stats); ("analyze", `Analyze);
                     ("sched", `Sched); ("grid", `Grid); ("stall", `Stall) ]))
             None
         & info [] ~docv:"OP" ~doc:"ping, stats, analyze, sched, grid, or stall.")
  in
  let client_bench_arg =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"TARGET" ~doc:"Benchmark name (analyze and grid only).")
  in
  let grid_benchmarks_arg =
    Arg.(value & opt (list ~sep:',' string) []
         & info [ "grid-benchmarks" ] ~docv:"B,B,..."
             ~doc:"Benchmarks for the grid op (overrides the positional TARGET).")
  in
  let grid_geometries_arg =
    Arg.(value & opt (list ~sep:',' string) [ "16x4x16" ]
         & info [ "grid-geometries" ] ~docv:"SxW[xL],..."
             ~doc:"Cache geometries for the grid op, as in the grid subcommand.")
  in
  let grid_mechanisms_arg =
    Arg.(value & opt (list ~sep:',' string) [ "all" ]
         & info [ "grid-mechanisms" ] ~docv:"MECH,..."
             ~doc:"Mechanisms for the grid op: none, srb, rw, or all (default).")
  in
  let grid_pfails_arg =
    Arg.(value & opt (list ~sep:',' prob_conv) [ 1e-6; 1e-5; 1e-4; 1e-3 ]
         & info [ "grid-pfails" ] ~docv:"P,P,..." ~doc:"Pfail grid for the grid op.")
  in
  let grid_targets_arg =
    Arg.(value & opt (list ~sep:',' prob_conv) [ default_target ]
         & info [ "grid-targets" ] ~docv:"P,P,..."
             ~doc:"Exceedance targets for the grid op.")
  in
  let mech_arg =
    Arg.(value & opt client_mech_conv Pwcet.Mechanism.No_protection
         & info [ "analyze-mechanism" ] ~docv:"MECH"
             ~doc:"Mechanism for the analyze op: 'none' (default), 'srb' or 'rw'. The sched \
                   op takes --mechanism (default srb), like the sched subcommands.")
  in
  let timeout_ms_arg =
    Arg.(value & opt (some int) None
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Per-request deadline in milliseconds, enforced on the daemon's monotonic \
                   clock; bounds that start after it fall down the degradation ladder \
                   (still sound). Budgeted requests bypass the daemon's caches and dedup.")
  in
  let delay_ms_arg =
    Arg.(value & opt int 0
         & info [ "delay-ms" ] ~docv:"MS"
             ~doc:"Testing hook: ask the daemon to sleep this long inside the computation, \
                   widening the dedup/overload windows deterministically.")
  in
  let load_arg =
    Arg.(value & flag
         & info [ "bench" ]
             ~doc:"Concurrent-load generator: --clients threads each issue --requests \
                   copies of this analyze request over their own connection, then report \
                   throughput and p50/p95/p99 latency.")
  in
  let clients_arg =
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc:"Load-generator connections.")
  in
  let requests_arg =
    Arg.(value & opt int 16
         & info [ "requests" ] ~docv:"N" ~doc:"Requests per load-generator connection.")
  in
  let retries_arg =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry a shed (overloaded) analyze/sched request up to $(docv) more \
                   times with jittered exponential backoff before giving up with exit 3. \
                   Only typed shedding is retried; errors are final.")
  in
  let retry_base_arg =
    Arg.(value & opt int 50
         & info [ "retry-base-ms" ] ~docv:"MS"
             ~doc:"Base backoff delay: retry $(i,i) sleeps base * 2^i * (0.5 + jitter) ms.")
  in
  let hold_ms_arg =
    Arg.(value & opt int 2000
         & info [ "hold-ms" ] ~docv:"MS"
             ~doc:"For the stall op: how long each stalled connection waits for the \
                   daemon's verdict before giving up. Must exceed the daemon's \
                   --read-timeout for the shed count to be meaningful.")
  in
  let exits =
    Cmd.Exit.info exit_overloaded
      ~doc:"when the daemon sheds the request via admission control (typed overloaded \
            response) and --retries attempts were exhausted; retry later or against a \
            less loaded daemon."
    :: exits
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Talk to a running analysis daemon: single ping/stats/analyze round trips, \
             bulk sched campaigns (same options as the sched subcommands, digest-identical \
             to a local run), or the --bench concurrent-load generator."
       ~exits)
    Term.(const run $ socket_arg $ op_arg $ client_bench_arg $ pfail_arg $ target_arg
          $ mech_arg $ sets_arg $ ways_arg $ line_arg $ engine_arg $ exact_arg $ impl_arg
          $ timeout_ms_arg $ delay_ms_arg $ load_arg $ clients_arg $ requests_arg
          $ retries_arg $ retry_base_arg $ hold_ms_arg $ sched_spec_term
          $ grid_benchmarks_arg $ grid_geometries_arg $ grid_mechanisms_arg
          $ grid_pfails_arg $ grid_targets_arg)

(* --- source ------------------------------------------------------------------ *)

let source_cmd =
  let run name =
    let _, prog = load_target name in
    Format.printf "%a@." Minic.Ast.pp_program prog
  in
  Cmd.v (cmd_info "source" ~doc:"Print the mini-C source of a benchmark")
    Term.(const run $ bench_arg)

(* --- refined (future-work SRB analysis) ------------------------------------- *)

let refined_cmd =
  let run name pfail target jobs =
    let _, compiled = compile_target name in
    let config = Cache.Config.paper_default in
    let pbf = Fault.Model.pbf_of_config ~pfail config in
    let task = Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config () in
    let ff = Pwcet.Estimator.fault_free_wcet task in
    let srb =
      Pwcet.Estimator.estimate task ~pfail ~mechanism:Pwcet.Mechanism.Shared_reliable_buffer
        ~jobs ()
    in
    let refined =
      Pwcet.Srb_refined.compute ~graph:task.Pwcet.Estimator.graph
        ~loops:task.Pwcet.Estimator.loops ~config ~pbf ()
    in
    let q_srb = ff + Prob.Dist.quantile srb.Pwcet.Estimator.penalty ~target in
    let q_ref = ff + Pwcet.Srb_refined.quantile refined ~target in
    Printf.printf "benchmark            : %s (pfail %g, target %g)\n" name pfail target;
    Printf.printf "fault-free WCET      : %d\n" ff;
    Printf.printf "SRB pWCET (paper)    : %d\n" q_srb;
    Printf.printf "SRB pWCET (refined)  : %d  (gain %.1f%%)\n" q_ref
      (100.0 *. float_of_int (q_srb - q_ref) /. float_of_int (max 1 q_srb));
    Printf.printf "\nexclusive dead-set miss bounds vs conservative FMM column:\n";
    let excl = Pwcet.Srb_refined.exclusive_dead_set_misses refined in
    Array.iteri
      (fun s e ->
        Printf.printf "  set %2d: exclusive %6d   conservative %6d\n" s e
          (Pwcet.Fmm.misses srb.Pwcet.Estimator.fmm ~set:s ~faulty:config.Cache.Config.ways))
      excl
  in
  Cmd.v
    (cmd_info "refined"
       ~doc:"Refined SRB analysis (the paper's future-work direction) vs the paper's bound")
    Term.(const run $ bench_arg $ pfail_arg $ target_arg $ jobs_arg)


(* --- chaos (deterministic fault-injection soak) ------------------------------ *)

(* The soak harness behind scripts/check_chaos.sh: [campaigns] seeded
   campaigns cycle through the analyze / sweep / grid / sched
   workloads, each under its own deterministic injector (seeded purely
   from (--seed, campaign index)), each against its own throwaway
   store. Every campaign is classified:

     match    the result digest is bit-identical to the fault-free
              reference (the self-healing layers fully masked the
              injected faults);
     typed    the run surfaced a typed error (a killed DAG node's
              [Worker_crash] cells) — visible, attributable, sound;
     corrupt  the result differs from the reference with no typed
              error — silent corruption, the one outcome the
              architecture promises never happens;
     escape   an exception leaked out of a workload.

   The soak digest folds every campaign's (workload, verdict, result
   digest) triple; it is a pure function of (--seed, --plan,
   --campaigns) — the same at any --jobs — because pool-node faults
   are keyed by node index and store faults are fully masked. Exit 1
   on any corrupt or escape. *)

let chaos_cmd =
  let run campaigns seed plan_name jobs dir_opt verbose =
    if campaigns < 1 then begin
      Printf.eprintf "chaos: --campaigns must be at least 1\n";
      exit exit_invalid_input
    end;
    let plan =
      match Chaos.Plan.named plan_name with
      | Ok p -> p
      | Error msg ->
        Printf.eprintf "chaos: %s\n" msg;
        exit exit_invalid_input
    in
    let bench = "fibcall" in
    let _, compiled = compile_target bench in
    let program = compiled.Minic.Compile.program in
    let config = config_of 8 2 16 in
    let target = 1e-12 in
    let root =
      match dir_opt with
      | Some d -> d
      | None ->
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "pwcet_chaos.%d" (Unix.getpid ()))
    in
    let rec rm_rf path =
      match Sys.is_directory path with
      | true ->
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
      | false -> ( try Sys.remove path with Sys_error _ -> ())
      | exception Sys_error _ -> ()
    in
    (try Unix.mkdir root 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let md5 s = Digest.to_hex (Digest.string s) in
    (* --- workloads, shared between reference and chaotic runs --- *)
    let analyze_of ?store () =
      let task = Pwcet.Estimator.prepare ~program ~config ?store () in
      let ff = Pwcet.Estimator.fault_free_wcet task in
      let est =
        Pwcet.Estimator.estimate task ~pfail:default_pfail
          ~mechanism:Pwcet.Mechanism.Shared_reliable_buffer ?store ()
      in
      md5
        (Printf.sprintf "%d|%.17g|%d" ff est.Pwcet.Estimator.pbf
           (ff + Prob.Dist.quantile est.Pwcet.Estimator.penalty ~target))
    in
    let sweep_of ?store () =
      let task = Pwcet.Estimator.prepare ~program ~config ?store () in
      let ff = Pwcet.Estimator.fault_free_wcet task in
      let buf = Buffer.create 256 in
      List.iter
        (fun mech ->
          let ests =
            Pwcet.Estimator.sweep task ~pfail_grid:[ 1e-5; 1e-4; 1e-3 ] ~mechanism:mech
              ?store ()
          in
          List.iter
            (fun (e : Pwcet.Estimator.estimate) ->
              Buffer.add_string buf
                (Printf.sprintf "%s|%.17g|%d;"
                   (Pwcet.Mechanism.short_name mech)
                   e.Pwcet.Estimator.pfail
                   (ff + Prob.Dist.quantile e.Pwcet.Estimator.penalty ~target)))
            ests)
        [ Pwcet.Mechanism.No_protection; Pwcet.Mechanism.Shared_reliable_buffer ];
      md5 (Buffer.contents buf)
    in
    let grid_spec =
      { Grid.benchmarks = [ (bench, program) ];
        configs = [ config ];
        mechanisms = Pwcet.Mechanism.all;
        pfail_grid = [ 1e-5; 1e-4 ];
        targets = [ target ];
        engine = `Path;
        exact = false;
        impl = `Sliced }
    in
    let sched_spec =
      match
        Sched.Campaign.make ~count:2 ~n_tasks:3 ~utilisation:0.5 ~seed:42
          ~benchmarks:[ bench ] ~sets:8 ~ways:2 ~line:16 ()
      with
      | Ok spec -> spec
      | Error msg ->
        Printf.eprintf "chaos: internal sched spec invalid: %s\n" msg;
        exit 1
    in
    (* --- fault-free references, computed once --- *)
    let analyze_ref = analyze_of () in
    let sweep_ref = sweep_of () in
    let grid_ref = Grid.run ~jobs:1 grid_spec in
    let grid_ref_digest = Grid.digest grid_ref in
    let sched_ref = (Sched.Campaign.run sched_spec).Sched.Campaign.digest in
    (* --- the soak --- *)
    let workloads = [| "analyze"; "sweep"; "grid"; "sched" |] in
    let tallies = Array.make_matrix (Array.length workloads) 4 0 in
    let soak = Buffer.create 4096 in
    let injected = ref 0 in
    for i = 0 to campaigns - 1 do
      let cseed = Sim.Rng.stream ~seed ~sample:i in
      let injector = Chaos.Injector.create ~seed:cseed plan in
      let dir = Filename.concat root (Printf.sprintf "c%d" i) in
      let with_store f =
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () -> f (Store.Artifact.open_store ~chaos:injector ~dir ()))
      in
      let w = i mod Array.length workloads in
      let thunk () =
        match w with
        | 0 ->
          with_store (fun store ->
              let d = analyze_of ~store () in
              if d = analyze_ref then (`Match, d, None)
              else (`Corrupt, d, Some "analyze digest mismatch"))
        | 1 ->
          with_store (fun store ->
              let d = sweep_of ~store () in
              (* Journal fuzz rides along: a torn chaotic append must
                 cost exactly the records that never returned, never a
                 poisoned resume. *)
              let jpath = Filename.concat root (Printf.sprintf "c%d.journal" i) in
              let writer =
                Store.Journal.create ~chaos:injector ~path:jpath ~run_key:"chaos-soak" ()
              in
              let appended = ref [] in
              (try
                 for r = 0 to 4 do
                   let record = Printf.sprintf "record-%d-%d" i r in
                   Store.Journal.append writer record;
                   appended := record :: !appended
                 done
               with Unix.Unix_error _ -> ());
              Store.Journal.close writer;
              let _, replayed = Store.Journal.resume ~path:jpath ~run_key:"chaos-soak" () in
              (try Sys.remove jpath with Sys_error _ -> ());
              if replayed <> List.rev !appended then
                (`Corrupt, d, Some "journal replay mismatch")
              else if d = sweep_ref then (`Match, d, None)
              else (`Corrupt, d, Some "sweep digest mismatch"))
        | 2 ->
          with_store (fun store ->
              let outcomes = Grid.run ~jobs ~store ~chaos:injector grid_spec in
              let d = Grid.digest outcomes in
              let errors = List.exists (fun (_, r) -> Result.is_error r) outcomes in
              let silent =
                List.exists2
                  (fun (_, r) (_, r0) ->
                    match (r, r0) with
                    | Ok c, Ok c0 -> Grid.cell_to_wire c <> Grid.cell_to_wire c0
                    | Ok _, Error _ -> true
                    | Error _, _ -> false)
                  outcomes grid_ref
              in
              if silent then (`Corrupt, d, Some "grid cell differs from reference")
              else if errors then (`Typed, d, None)
              else if d = grid_ref_digest then (`Match, d, None)
              else (`Corrupt, d, Some "grid digest mismatch"))
        | _ ->
          with_store (fun store ->
              let t = Sched.Campaign.run ~store ~jobs sched_spec in
              let d = t.Sched.Campaign.digest in
              if d = sched_ref then (`Match, d, None)
              else (`Corrupt, d, Some "sched digest mismatch"))
      in
      let verdict, digest, detail =
        try thunk () with e -> (`Escape, "-", Some (Printexc.to_string e))
      in
      let v_idx, v_name =
        match verdict with
        | `Match -> (0, "match")
        | `Typed -> (1, "typed")
        | `Corrupt -> (2, "corrupt")
        | `Escape -> (3, "escape")
      in
      tallies.(w).(v_idx) <- tallies.(w).(v_idx) + 1;
      injected := !injected + Chaos.Injector.total_injected injector;
      Buffer.add_string soak (Printf.sprintf "%d:%s:%s:%s\n" i workloads.(w) v_name digest);
      if verbose || v_idx >= 2 then
        Printf.printf "campaign %3d  %-7s  %-7s%s\n" i workloads.(w) v_name
          (match detail with None -> "" | Some m -> "  " ^ m)
    done;
    (try Unix.rmdir root with Unix.Unix_error _ -> ());
    let corrupts = Array.fold_left (fun a t -> a + t.(2)) 0 tallies in
    let escapes = Array.fold_left (fun a t -> a + t.(3)) 0 tallies in
    Printf.printf "plan        : %s  (seed %d, %d campaigns, jobs %d)\n" plan.Chaos.Plan.name
      seed campaigns jobs;
    Array.iteri
      (fun w name ->
        let t = tallies.(w) in
        Printf.printf "%-12s: %d run, %d match, %d typed, %d corrupt, %d escape\n" name
          (t.(0) + t.(1) + t.(2) + t.(3))
          t.(0) t.(1) t.(2) t.(3))
      workloads;
    Printf.printf "injected    : %d faults\n" !injected;
    Printf.printf "soak digest : %s\n" (md5 (Buffer.contents soak));
    if corrupts > 0 || escapes > 0 then begin
      Printf.printf "verdict     : FAIL — %d silent corruption(s), %d escape(s)\n" corrupts
        escapes;
      exit 1
    end
    else Printf.printf "verdict     : OK — every campaign bit-identical or typed\n"
  in
  let campaigns_arg =
    Arg.(value & opt int 200
         & info [ "campaigns" ] ~docv:"N" ~doc:"Soak campaigns to run (cycling workloads).")
  in
  let seed_arg =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Soak seed; every campaign's fault schedule is a pure function of \
                   ($(docv), campaign index).")
  in
  let plan_arg =
    Arg.(value & opt string "all"
         & info [ "plan" ] ~docv:"PLAN"
             ~doc:"Fault plan: none, store, workers, pool, service, or all (default).")
  in
  let dir_arg =
    Arg.(value & opt (some string) None
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Scratch directory for the per-campaign stores and journals \
                   (default: a fresh one under the system temp dir). Cleaned as the \
                   soak goes.")
  in
  let verbose_arg =
    Arg.(value & flag
         & info [ "verbose" ] ~doc:"Print one line per campaign, not just the failures.")
  in
  Cmd.v
    (cmd_info "chaos"
       ~doc:"Deterministic fault-injection soak: run seeded analyze/sweep/grid/sched \
             campaigns under a named fault plan, asserting every result is bit-identical \
             to its fault-free reference or a typed error — never silent corruption. The \
             soak digest is reproducible from (--seed, --plan, --campaigns) at any --jobs.")
    Term.(const run $ campaigns_arg $ seed_arg $ plan_arg $ jobs_arg $ dir_arg $ verbose_arg)

let () =
  let doc = "probabilistic WCET estimation with fault-mitigation hardware (DATE'16 reproduction)" in
  let info = Cmd.info "pwcet_tool" ~version:"1.0.0" ~doc ~exits in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; source_cmd; disasm_cmd; analyze_cmd; sweep_cmd; grid_cmd; suite_cmd;
            simulate_cmd; validate_cmd; audit_cmd; refined_cmd; sched_cmd; cache_cmd;
            serve_cmd; client_cmd; chaos_cmd ]))

(* How fast do pWCET estimates degrade as the per-bit failure
   probability grows, and how much of that degradation do the RW and SRB
   mechanisms absorb? This reproduces the motivating observation of the
   paper (from its predecessor [1]): unprotected pWCETs blow up quickly
   with pfail, which is what makes mitigation hardware necessary.

     dune exec examples/fault_sweep.exe [benchmark] *)

let () =
  let bench_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "crc" in
  let entry =
    match Benchmarks.Registry.find bench_name with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown benchmark %s\n" bench_name;
      exit 1
  in
  let compiled = Minic.Compile.compile entry.Benchmarks.Registry.program in
  let config = Cache.Config.paper_default in
  let task = Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config () in
  let ff = Pwcet.Estimator.fault_free_wcet task in
  let target = 1e-15 in
  Printf.printf "benchmark %s, fault-free WCET %d cycles, target probability %g\n\n"
    bench_name ff target;
  Printf.printf "  %-8s %-10s %12s %12s %12s %9s %9s\n" "pfail" "pbf" "none" "srb" "rw"
    "gain srb" "gain rw";
  (* One sweep per mechanism: the fault miss map is pfail-independent,
     so Estimator.sweep computes it once and reweights per grid point —
     three analyses total instead of one per (mechanism, pfail). *)
  let grid = [ 1e-7; 1e-6; 1e-5; 1e-4; 1e-3; 1e-2 ] in
  let sweep mechanism =
    List.map
      (fun est -> Pwcet.Estimator.pwcet est ~target)
      (Pwcet.Estimator.sweep task ~pfail_grid:grid ~mechanism ())
  in
  let nones = sweep Pwcet.Mechanism.No_protection in
  let srbs = sweep Pwcet.Mechanism.Shared_reliable_buffer in
  let rws = sweep Pwcet.Mechanism.Reliable_way in
  List.iteri
    (fun i pfail ->
      let none = List.nth nones i and srb = List.nth srbs i and rw = List.nth rws i in
      let gain x = 100.0 *. float_of_int (none - x) /. float_of_int none in
      Printf.printf "  %-8g %-10.3g %12d %12d %12d %8.1f%% %8.1f%%\n" pfail
        (Fault.Model.pbf_of_config ~pfail config)
        none srb rw (gain srb) (gain rw))
    grid;
  Printf.printf
    "\nReading: as pfail grows, the all-ways-faulty probability per set\n\
     (pbf^4) crosses the 1e-15 target and the unprotected pWCET jumps;\n\
     RW removes that point entirely, the SRB caps it near the spatial-\n\
     locality cost. At pfail = 1e-4 (the paper's setting) the gap is\n\
     already decisive.\n"

(* Quickstart: write a small program in mini-C, compile it to the
   MIPS-like ISA, and run the whole fault-aware pWCET pipeline on it.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A program: dot product of two 16-element vectors. *)
  let program =
    let open Minic.Dsl in
    program
      ~globals:[ array_n "xs" 16 (fun k -> k + 1); array_n "ys" 16 (fun k -> 2 * k) ]
      [ fn "main" []
          [ decl "acc" (i 0)
          ; for_ "k" (i 0) (i 16)
              [ set "acc" (v "acc" +: (idx "xs" (v "k") *: idx "ys" (v "k"))) ]
          ; ret (v "acc")
          ]
      ]
  in
  (* 2. Compile and execute on the interpreter (sanity check). *)
  let compiled = Minic.Compile.compile program in
  let result = Minic.Compile.run compiled in
  Printf.printf "program result        : %d (expected %d)\n" result.Isa.Machine.return_value
    (List.fold_left ( + ) 0 (List.init 16 (fun k -> (k + 1) * 2 * k)));
  Printf.printf "instructions executed : %d\n\n" result.Isa.Machine.instructions;

  (* 3. Fault-free WCET on the paper's cache (1 KB, 4-way, 16 B lines). *)
  let config = Cache.Config.paper_default in
  let task = Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config () in
  Format.printf "cache                 : %a@." Cache.Config.pp config;
  Printf.printf "fault-free WCET       : %d cycles\n\n" (Pwcet.Estimator.fault_free_wcet task);

  (* 4. pWCET with permanent faults (pfail = 1e-4, target 1e-15), for the
     three hardware configurations of the paper. *)
  let pfail = 1e-4 and target = 1e-15 in
  List.iter
    (fun mechanism ->
      let est = Pwcet.Estimator.estimate task ~pfail ~mechanism () in
      Printf.printf "%-30s: pWCET(%g) = %d cycles\n" (Pwcet.Mechanism.name mechanism) target
        (Pwcet.Estimator.pwcet est ~target))
    Pwcet.Mechanism.all;

  (* 5. The Fault Miss Map behind the no-protection estimate (Fig. 1a). *)
  let est = Pwcet.Estimator.estimate task ~pfail ~mechanism:Pwcet.Mechanism.No_protection () in
  Format.printf "@.fault miss map (misses per set per fault count):@.%a" Pwcet.Fmm.pp
    est.Pwcet.Estimator.fmm;

  (* 6. The paper's Fig. 1 worked example, reproduced from its exact
     numbers: two sets with penalties (10, 130) and (14, 164). *)
  let fig1_config = Cache.Config.make ~sets:4 ~ways:2 ~line_bytes:16 ~miss_latency:2 () in
  let fmm =
    Pwcet.Fmm.of_table ~config:fig1_config ~mechanism:Pwcet.Mechanism.No_protection
      [| [| 0; 10; 130 |]; [| 0; 14; 164 |]; [| 0; 13; 193 |]; [| 0; 20; 240 |] |]
  in
  let pbf = 0.1 in
  let d01 =
    Prob.Dist.convolve
      (Pwcet.Penalty.set_distribution ~fmm ~pbf ~set:0 ())
      (Pwcet.Penalty.set_distribution ~fmm ~pbf ~set:1 ())
  in
  Format.printf "@.Fig. 1b: penalty distribution of set 0 + set 1 (pbf = %.1f):@." pbf;
  List.iter (fun (x, p) -> Printf.printf "  penalty %3d  probability %.6f\n" x p)
    (Prob.Dist.support d01)

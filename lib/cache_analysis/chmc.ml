type scope =
  | Global
  | Loop of int

type classification =
  | Always_hit
  | First_miss of scope
  | Always_miss
  | Not_classified

type t = {
  classes : classification array array;  (* per node, per instruction offset *)
  blocks : int array array;
  sets : int array array;
  reachable : bool array;
}

module IntSet = Context.IntSet

(* Must and may in-states for the given cache set, then per-reference
   presence flags obtained by replaying each node's accesses. *)
let presence_for_set graph blocks sets ~set ~assoc =
  let transfer update u acs =
    let b = blocks.(u) and ss = sets.(u) in
    let acc = ref acs in
    Array.iteri (fun k blk -> if ss.(k) = set then acc := update !acc blk) b;
    !acc
  in
  let must_in =
    Fixpoint.run ~graph ~entry_state:Acs.empty
      ~transfer:(transfer (Acs.must_update ~assoc))
      ~join:Acs.must_join ~equal:Acs.equal ()
  in
  let may_in =
    Fixpoint.run ~graph ~entry_state:Acs.empty
      ~transfer:(transfer (Acs.may_update ~assoc))
      ~join:Acs.may_join ~equal:Acs.equal ()
  in
  let n = Cfg.Graph.node_count graph in
  let must_hit = Array.make n [||] and may_present = Array.make n [||] in
  for u = 0 to n - 1 do
    let len = Array.length blocks.(u) in
    must_hit.(u) <- Array.make len false;
    may_present.(u) <- Array.make len false;
    (match (must_in.(u), may_in.(u)) with
    | Some must0, Some may0 ->
      let must = ref must0 and may = ref may0 in
      for k = 0 to len - 1 do
        let blk = blocks.(u).(k) in
        if sets.(u).(k) = set then begin
          must_hit.(u).(k) <- Acs.mem !must blk;
          may_present.(u).(k) <- Acs.mem !may blk;
          must := Acs.must_update ~assoc !must blk;
          may := Acs.may_update ~assoc !may blk
        end
      done
    | _ -> () (* unreachable node *))
  done;
  (must_hit, may_present)

(* The classification lattice of one reference, given its presence in
   the stabilised Must/May states. Shared by the full-CFG analysis below
   and the per-set condensed engine ([Slice]) so both are classification
   -identical by construction. *)
let classify_ref ctx ~set ~assoc ~node ~must_hit ~may_present =
  if must_hit then Always_hit
  else if assoc > 0 && ctx.Context.global_counts.(set) <= assoc then First_miss Global
  else
    match Context.fitting_loop ctx ~node ~set ~assoc with
    | Some header -> First_miss (Loop header)
    | None -> if not may_present then Always_miss else Not_classified

let set_signature ctx ~set ~degraded =
  let acc = ref [] in
  Array.iter
    (fun u ->
      Array.iteri
        (fun k s -> if s = set then acc := degraded ~node:u ~offset:k :: !acc)
        ctx.Context.sets.(u))
    ctx.Context.touching.(set);
  !acc

let analyze ?ctx ~graph ~loops ~config ?assoc ?only_sets () =
  let ctx = match ctx with Some c -> c | None -> Context.make ~graph ~loops ~config in
  let ways = config.Cache.Config.ways in
  let assoc = match assoc with Some f -> f | None -> fun _ -> ways in
  let blocks = ctx.Context.blocks and sets = ctx.Context.sets in
  let n = ctx.Context.n in
  (* Referenced cache sets, optionally restricted. *)
  let used_sets =
    match only_sets with
    | None -> ctx.Context.used_sets
    | Some keep -> IntSet.inter ctx.Context.used_sets (IntSet.of_list keep)
  in
  let classes = Array.init n (fun u -> Array.make (Array.length blocks.(u)) Not_classified) in
  IntSet.iter
    (fun set ->
      let assoc_s = assoc set in
      let must_hit, may_present = presence_for_set graph blocks sets ~set ~assoc:assoc_s in
      Array.iter
        (fun u ->
          Array.iteri
            (fun k s ->
              if s = set then
                classes.(u).(k) <-
                  classify_ref ctx ~set ~assoc:assoc_s ~node:u ~must_hit:must_hit.(u).(k)
                    ~may_present:may_present.(u).(k))
            sets.(u))
        ctx.Context.touching.(set))
    used_sets;
  { classes; blocks; sets; reachable = ctx.Context.reachable }

let classification t ~node ~offset = t.classes.(node).(offset)
let block t ~node ~offset = t.blocks.(node).(offset)
let cache_set t ~node ~offset = t.sets.(node).(offset)

let fold_refs f t init =
  let acc = ref init in
  Array.iteri
    (fun u row ->
      if t.reachable.(u) then
        Array.iteri (fun k cls -> acc := f ~node:u ~offset:k cls !acc) row)
    t.classes;
  !acc

let miss_cost_per_execution = function
  | Always_miss | Not_classified -> true
  | Always_hit | First_miss _ -> false

let pp_classification fmt = function
  | Always_hit -> Format.pp_print_string fmt "AH"
  | First_miss Global -> Format.pp_print_string fmt "FM(global)"
  | First_miss (Loop h) -> Format.fprintf fmt "FM(loop n%d)" h
  | Always_miss -> Format.pp_print_string fmt "AM"
  | Not_classified -> Format.pp_print_string fmt "NC"

(** Cache Hit/Miss Classification (CHMC) of every instruction fetch.

    Combines three analyses (paper Section II-B.1):
    - {b Must} (abstract interpretation): proves always-hit;
    - {b Persistence} (conflict-set based, per loop scope and globally):
      proves first-miss — at most one miss per entry of the scope;
    - {b May}: proves always-miss (absence from the may-cache).

    Everything else is not-classified, which the paper costs exactly
    like always-miss.

    The per-set associativity override [assoc] is how faulty blocks
    enter the picture: a set with [f] disabled ways is analysed with
    associativity [W - f] (paper Section II-C); [0] means the set
    caches nothing. The conflict-set persistence criterion (a block is
    persistent in a scope when the number of distinct blocks mapping to
    its set within that scope does not exceed the set's associativity)
    is a sound simplification of Ferdinand's persistence that avoids
    its known unsoundness (Cullmann 2013). *)

type scope =
  | Global  (** at most one miss over the whole execution *)
  | Loop of int  (** at most one miss per entry of the loop with this header node *)

type classification =
  | Always_hit
  | First_miss of scope
  | Always_miss
  | Not_classified

type t

val analyze :
  ?ctx:Context.t ->
  graph:Cfg.Graph.t ->
  loops:Cfg.Loop.loop list ->
  config:Cache.Config.t ->
  ?assoc:(int -> int) ->
  ?only_sets:int list ->
  unit ->
  t
(** [assoc] maps a cache set to its effective associativity (default:
    [config.ways] everywhere). [only_sets] restricts the analysis to
    references mapping to the given cache sets (others stay
    [Not_classified]) — the FMM computation re-analyses one degraded
    set at a time. [ctx] supplies a precomputed {!Context.t} for
    [(graph, loops, config)]; without it one is derived internally on
    every call. *)

val classify_ref :
  Context.t ->
  set:int ->
  assoc:int ->
  node:int ->
  must_hit:bool ->
  may_present:bool ->
  classification
(** Classification of one reference of [set] at [node] from its
    stabilised Must/May presence: must-hit, else global persistence,
    else outermost fitting loop persistence, else always-miss when
    absent from the May cache. Shared with the condensed per-set engine
    ({!Slice}) so both classify identically by construction. *)

val set_signature :
  Context.t ->
  set:int ->
  degraded:(node:int -> offset:int -> classification) ->
  classification list
(** The classifications of every reference mapping to [set], folded
    over the context's touching-node index only (node then offset
    order). The FMM row memoises its per-fault-count delta bounds on
    this signature. *)

val classification : t -> node:int -> offset:int -> classification
(** Classification of the [offset]-th instruction of node [node]. *)

val block : t -> node:int -> offset:int -> int
(** Memory-block number fetched by that instruction. *)

val cache_set : t -> node:int -> offset:int -> int

val fold_refs : (node:int -> offset:int -> classification -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over all reachable references in node/offset order. *)

val miss_cost_per_execution : classification -> bool
(** True when the reference must be costed as a miss on {e every}
    execution (always-miss / not-classified). *)

val pp_classification : Format.formatter -> classification -> unit

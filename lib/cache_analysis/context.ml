module IntSet = Set.Make (Int)

type loop_info = {
  loop : Cfg.Loop.loop;
  body_size : int;
  members : bool array;
  conflict_counts : int array;
}

type t = {
  graph : Cfg.Graph.t;
  loops : Cfg.Loop.loop list;
  config : Cache.Config.t;
  n : int;
  blocks : int array array;
  sets : int array array;
  rpo : int array;
  rpo_pos : int array;
  reachable : bool array;
  global_counts : int array;
  loop_infos : loop_info array;
  enclosing : int array array;
  used_sets : IntSet.t;
  touching : int array array;
}

let make ~graph ~loops ~config =
  let n = Cfg.Graph.node_count graph in
  let blocks = Array.make n [||] and sets = Array.make n [||] in
  for u = 0 to n - 1 do
    let addrs = Array.of_list (Cfg.Graph.addresses graph (Cfg.Graph.node graph u)) in
    blocks.(u) <- Array.map (Cache.Config.block_of_address config) addrs;
    sets.(u) <- Array.map (Cache.Config.set_of_block config) blocks.(u)
  done;
  let rpo = Cfg.Graph.reverse_postorder graph in
  let rpo_pos = Array.make n max_int in
  Array.iteri (fun i u -> rpo_pos.(u) <- i) rpo;
  let reachable = Array.make n false in
  Array.iter (fun u -> reachable.(u) <- true) rpo;
  let n_sets = config.Cache.Config.sets in
  (* Number of distinct blocks per cache set over a node set — the
     conflict counts of the persistence criterion. *)
  let conflict_counts nodes =
    let per_set = Array.make n_sets IntSet.empty in
    List.iter
      (fun u ->
        Array.iteri
          (fun k blk -> per_set.(sets.(u).(k)) <- IntSet.add blk per_set.(sets.(u).(k)))
          blocks.(u))
      nodes;
    Array.map IntSet.cardinal per_set
  in
  let reachable_nodes = List.filter (fun u -> reachable.(u)) (List.init n Fun.id) in
  let global_counts = conflict_counts reachable_nodes in
  let loop_infos =
    List.map
      (fun (l : Cfg.Loop.loop) ->
        let members = Array.make n false in
        List.iter (fun u -> members.(u) <- true) l.Cfg.Loop.body;
        { loop = l
        ; body_size = List.length l.Cfg.Loop.body
        ; members
        ; conflict_counts = conflict_counts l.Cfg.Loop.body
        })
      loops
    (* Body-size descending (outermost first); natural loops of a
       reducible graph are disjoint or strictly nested, so ties cannot
       involve loops sharing a node and the order per node is total. *)
    |> List.sort (fun a b -> compare b.body_size a.body_size)
    |> Array.of_list
  in
  let enclosing =
    Array.init n (fun u ->
        let acc = ref [] in
        for i = Array.length loop_infos - 1 downto 0 do
          if loop_infos.(i).members.(u) then acc := i :: !acc
        done;
        Array.of_list !acc)
  in
  let used_sets = ref IntSet.empty in
  let touch_rev = Array.make n_sets [] in
  for u = n - 1 downto 0 do
    if reachable.(u) then
      Array.iter
        (fun s ->
          used_sets := IntSet.add s !used_sets;
          match touch_rev.(s) with
          | v :: _ when v = u -> ()
          | _ -> touch_rev.(s) <- u :: touch_rev.(s))
        sets.(u)
  done;
  let touching = Array.map Array.of_list touch_rev in
  { graph; loops; config; n; blocks; sets; rpo; rpo_pos; reachable; global_counts
  ; loop_infos; enclosing; used_sets = !used_sets; touching }

let fitting_loop t ~node ~set ~assoc =
  if assoc <= 0 then None
  else begin
    let enc = t.enclosing.(node) in
    let rec find i =
      if i >= Array.length enc then None
      else begin
        let li = t.loop_infos.(enc.(i)) in
        if li.conflict_counts.(set) <= assoc then Some li.loop.Cfg.Loop.header
        else find (i + 1)
      end
    in
    find 0
  end

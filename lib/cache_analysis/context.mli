(** Shared, immutable per-(graph, loops, config) analysis context.

    Everything the cache analyses re-derived on every call — reference
    block/set arrays, reverse postorder, reachability, per-loop
    membership bitsets, global and per-loop conflict counts, and the
    per-cache-set index of touching nodes — computed {e once} and
    threaded through {!Chmc.analyze}, {!Slice}, {!Srb_analysis}, the
    FMM computation and the delta engines. The fault-miss-map hot path
    calls those analyses once per (cache set, fault count); without the
    context each call was O(whole program) before its fixpoint even
    started.

    The structure is immutable after {!make} and safe to share across
    domains. *)

module IntSet : Set.S with type elt = int

type loop_info = {
  loop : Cfg.Loop.loop;
  body_size : int;
  members : bool array;  (** node membership bitset, O(1) lookup *)
  conflict_counts : int array;
      (** distinct blocks per cache set referenced inside the body *)
}

type t = {
  graph : Cfg.Graph.t;
  loops : Cfg.Loop.loop list;
  config : Cache.Config.t;
  n : int;  (** node count *)
  blocks : int array array;  (** per node, per fetch: memory block *)
  sets : int array array;  (** per node, per fetch: cache set *)
  rpo : int array;  (** reverse postorder from the entry *)
  rpo_pos : int array;  (** node -> position in [rpo]; [max_int] if unreachable *)
  reachable : bool array;
  global_counts : int array;  (** distinct blocks per cache set, whole program *)
  loop_infos : loop_info array;  (** body-size descending (outermost first) *)
  enclosing : int array array;
      (** node -> indices into [loop_infos] of the loops containing it,
          body-size descending *)
  used_sets : IntSet.t;  (** cache sets referenced by a reachable node *)
  touching : int array array;
      (** cache set -> reachable nodes with at least one reference to
          it, ascending node ids *)
}

val make : graph:Cfg.Graph.t -> loops:Cfg.Loop.loop list -> config:Cache.Config.t -> t

val fitting_loop : t -> node:int -> set:int -> assoc:int -> int option
(** Header of the outermost loop containing [node] whose conflict count
    for [set] fits within [assoc] — the per-loop persistence test of the
    CHMC, in O(nesting depth) instead of a per-reference scan of every
    loop body. [None] when no enclosing loop fits (or [assoc <= 0]). *)

(* Worklist keyed by a per-node priority (reverse-postorder position for
   CFGs) so nodes are processed in a near-topological order; a set of
   (priority, node) pairs gives O(log n) pops of the minimum. *)
module PQ = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let run_custom ~n ~entry ~succ ~priority ~entry_state ~transfer ~join ~equal ?max_iters () =
  let in_state : 'a option array = Array.make n None in
  in_state.(entry) <- Some entry_state;
  let work = ref (PQ.singleton (priority.(entry), entry)) in
  let pops = ref 0 in
  while not (PQ.is_empty !work) do
    incr pops;
    (match max_iters with
    | Some cap when !pops > cap ->
      Robust.Pwcet_error.raise_error
        (Robust.Pwcet_error.Fixpoint_divergence
           (Printf.sprintf "Fixpoint.run_custom: no fixpoint after %d worklist pops" cap))
    | _ -> ());
    let ((_, u) as el) = PQ.min_elt !work in
    work := PQ.remove el !work;
    match in_state.(u) with
    | None -> ()
    | Some s ->
      let out = transfer u s in
      List.iter
        (fun v ->
          let updated =
            match in_state.(v) with
            | None -> Some out
            | Some old ->
              let joined = join old out in
              if equal joined old then None else Some joined
          in
          match updated with
          | None -> ()
          | Some j ->
            in_state.(v) <- Some j;
            work := PQ.add (priority.(v), v) !work)
        (succ u)
  done;
  in_state

let run ~graph ~entry_state ~transfer ~join ~equal ?max_iters () =
  let n = Cfg.Graph.node_count graph in
  let rpo = Cfg.Graph.reverse_postorder graph in
  let priority = Array.make n max_int in
  Array.iteri (fun i u -> priority.(u) <- i) rpo;
  run_custom ~n ~entry:graph.Cfg.Graph.entry
    ~succ:(Cfg.Graph.successors graph)
    ~priority ~entry_state ~transfer ~join ~equal ?max_iters ()

(** Generic forward data-flow fixpoint over a control-flow graph.

    Worklist iteration in reverse-postorder. The in-state of a node is
    the join of its predecessors' out-states; unreachable nodes keep no
    state ([None]).

    Both entry points accept an optional iteration cap [max_iters]
    (worklist pops). The cache lattices are finite and the transfer
    functions monotone, so the analyses always terminate — the cap
    exists so a budgeted pipeline can turn a hypothetical divergence
    (e.g. a buggy custom transfer passed to {!run_custom}) into the
    typed error {!Robust.Pwcet_error.Fixpoint_divergence} instead of a
    hang. *)

val run :
  graph:Cfg.Graph.t ->
  entry_state:'a ->
  transfer:(int -> 'a -> 'a) ->
  join:('a -> 'a -> 'a) ->
  equal:('a -> 'a -> bool) ->
  ?max_iters:int ->
  unit ->
  'a option array
(** [run ~graph ~entry_state ~transfer ~join ~equal] returns the
    stabilised {e in}-state of every node (indexed by node id). The
    entry node's in-state additionally joins [entry_state] (the state
    on the virtual entry edge).
    @raise Robust.Pwcet_error.Error with [Fixpoint_divergence] when
    [max_iters] worklist pops pass without stabilisation. *)

val run_custom :
  n:int ->
  entry:int ->
  succ:(int -> int list) ->
  priority:int array ->
  entry_state:'a ->
  transfer:(int -> 'a -> 'a) ->
  join:('a -> 'a -> 'a) ->
  equal:('a -> 'a -> bool) ->
  ?max_iters:int ->
  unit ->
  'a option array
(** Same iteration on an arbitrary graph given by [succ] over node ids
    [0..n-1]. [priority] orders worklist pops (smaller first, unique per
    node — e.g. reverse-postorder positions); the condensed per-set
    projections of {!Slice} run their fixpoints through this entry
    point. *)

type t = {
  ctx : Context.t;
  set : int;
  nodes : int array;  (* slice position -> CFG node id, RPO-position order *)
  pos_of : int array;  (* CFG node id -> slice position, -1 when absent *)
  succ : int list array;  (* condensed edges between slice positions *)
  priority : int array;  (* identity: nodes are already in RPO order *)
  entry_pos : int;
  touches : bool array;  (* slice position -> node references the set *)
}

let make (ctx : Context.t) ~set =
  let graph = ctx.Context.graph in
  let entry = graph.Cfg.Graph.entry in
  let touching = ctx.Context.touching.(set) in
  let node_list =
    if Array.exists (fun u -> u = entry) touching then Array.to_list touching
    else entry :: Array.to_list touching
  in
  let nodes =
    List.sort (fun a b -> compare ctx.Context.rpo_pos.(a) ctx.Context.rpo_pos.(b)) node_list
    |> Array.of_list
  in
  let m = Array.length nodes in
  let pos_of = Array.make ctx.Context.n (-1) in
  Array.iteri (fun i u -> pos_of.(u) <- i) nodes;
  let touches_node = Array.make ctx.Context.n false in
  Array.iter (fun u -> touches_node.(u) <- true) touching;
  (* Condensed edge a -> b iff the CFG has a path a -> ... -> b whose
     interior nodes all miss the set. Interior transfers are the
     identity, so a fixpoint over these edges stabilises to exactly the
     in-states the full-CFG fixpoint computes at the touching nodes
     (join is associative, commutative and idempotent, so deferring the
     interior merges changes nothing). One DFS through the non-touching
     region per slice node, stamped to avoid clearing visit marks. *)
  let succ = Array.make m [] in
  let visited = Array.make ctx.Context.n 0 in
  let target_mark = Array.make m 0 in
  let stamp = ref 0 in
  Array.iteri
    (fun i u ->
      incr stamp;
      let s = !stamp in
      let targets = ref [] in
      let work = ref (Cfg.Graph.successors graph u) in
      let continue_ = ref true in
      while !continue_ do
        match !work with
        | [] -> continue_ := false
        | v :: rest ->
          work := rest;
          if touches_node.(v) then begin
            let j = pos_of.(v) in
            if target_mark.(j) <> s then begin
              target_mark.(j) <- s;
              targets := j :: !targets
            end
          end
          else if visited.(v) <> s then begin
            visited.(v) <- s;
            work := List.rev_append (Cfg.Graph.successors graph v) !work
          end
      done;
      succ.(i) <- !targets)
    nodes;
  { ctx; set; nodes; pos_of; succ
  ; priority = Array.init m Fun.id
  ; entry_pos = pos_of.(entry)
  ; touches = Array.map (fun u -> touches_node.(u)) nodes
  }

type result = {
  slice : t;
  assoc : int;
  classes : Chmc.classification array array;
      (* per slice position, per offset; Not_classified off the set *)
  any_must_hit : bool;
  any_may_present : bool;
  saturated : bool;
}

let analyze (sl : t) ~assoc ?prev () =
  (match prev with
  | Some p -> assert (p.slice == sl && p.assoc > assoc)
  | None -> ());
  let ctx = sl.ctx and set = sl.set in
  let blocks = ctx.Context.blocks and sets = ctx.Context.sets in
  let m = Array.length sl.nodes in
  let transfer update i acs =
    if not sl.touches.(i) then acs
    else begin
      let u = sl.nodes.(i) in
      let b = blocks.(u) and ss = sets.(u) in
      let acc = ref acs in
      Array.iteri (fun k blk -> if ss.(k) = set then acc := update !acc blk) b;
      !acc
    end
  in
  let run update join =
    Fixpoint.run_custom ~n:m ~entry:sl.entry_pos
      ~succ:(fun i -> sl.succ.(i))
      ~priority:sl.priority ~entry_state:Acs.empty ~transfer:(transfer update) ~join
      ~equal:Acs.equal ()
  in
  (* Cross-fault-count incrementality: per-reference must-hit and
     may-present flags are monotone non-increasing in the associativity,
     so once the previous (larger-assoc) result shows none, the
     corresponding fixpoint is skipped — its outcome is known to be
     all-false. A dead set (assoc <= 0) trivially holds nothing. *)
  let skip_must =
    assoc <= 0 || match prev with Some p -> not p.any_must_hit | None -> false
  in
  let skip_may =
    assoc <= 0 || match prev with Some p -> not p.any_may_present | None -> false
  in
  let must_in = if skip_must then None else Some (run (Acs.must_update ~assoc) Acs.must_join) in
  let may_in = if skip_may then None else Some (run (Acs.may_update ~assoc) Acs.may_join) in
  let classes =
    Array.init m (fun i -> Array.make (Array.length blocks.(sl.nodes.(i))) Chmc.Not_classified)
  in
  let any_must_hit = ref false and any_may_present = ref false in
  let saturated = ref true in
  for i = 0 to m - 1 do
    if sl.touches.(i) then begin
      let u = sl.nodes.(i) in
      let must = ref (match must_in with Some arr -> arr.(i) | None -> None) in
      let may = ref (match may_in with Some arr -> arr.(i) | None -> None) in
      Array.iteri
        (fun k blk ->
          if sets.(u).(k) = set then begin
            let mh = match !must with Some a -> Acs.mem a blk | None -> false in
            let mp = match !may with Some a -> Acs.mem a blk | None -> false in
            if mh then any_must_hit := true;
            if mp then any_may_present := true;
            let cls = Chmc.classify_ref ctx ~set ~assoc ~node:u ~must_hit:mh ~may_present:mp in
            classes.(i).(k) <- cls;
            if cls <> Chmc.Always_miss then saturated := false;
            must := Option.map (fun a -> Acs.must_update ~assoc a blk) !must;
            may := Option.map (fun a -> Acs.may_update ~assoc a blk) !may
          end)
        blocks.(u)
    end
  done;
  { slice = sl; assoc; classes
  ; any_must_hit = !any_must_hit
  ; any_may_present = !any_may_present
  ; saturated = !saturated
  }

let classification r ~node ~offset =
  let i = r.slice.pos_of.(node) in
  if i < 0 then Chmc.Not_classified else r.classes.(i).(offset)

let saturated r = r.saturated

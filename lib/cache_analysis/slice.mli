(** Condensed per-cache-set CHMC engine — the FMM hot path.

    The degraded analysis of one cache set runs a Must and a May
    fixpoint whose transfer function is the identity on every node that
    does not reference the set. [make] projects the CFG onto the
    touching nodes (plus the entry) once per set: a condensed edge
    [a -> b] stands for every CFG path from [a] to [b] whose interior
    nodes miss the set. Because interior transfers are the identity and
    the joins are associative, commutative and idempotent, the fixpoint
    over the condensed graph stabilises to exactly the in-states of the
    full-CFG fixpoint at the touching nodes — so [analyze] is
    classification-identical to
    [Chmc.analyze ~only_sets:[set] ~assoc:(...)] while running in
    O(touching nodes) instead of O(CFG) per (set, fault count). The
    differential tests in [test/test_sliced.ml] pin this equivalence.

    [analyze ?prev] adds cross-fault-count incrementality inside an FMM
    row: per-reference must-hit and may-present flags are monotone
    non-increasing in the associativity, so when the previous (one
    fault fewer) result had none, the corresponding fixpoint is skipped
    outright. (Warm-starting the ACS fixpoint itself from the previous
    states would be unsound for Must — the smaller-associativity
    fixpoint lies {e below} the previous one, and chaotic iteration
    started above the least fixpoint can overshoot it.) *)

type t
(** The per-set projection; build once per set, reuse for every fault
    count. Immutable and safe to share across domains. *)

val make : Context.t -> set:int -> t

type result

val analyze : t -> assoc:int -> ?prev:result -> unit -> result
(** Degraded classification of the slice's set at the given effective
    associativity. [prev] must be the result for the same slice at a
    strictly larger associativity (the previous fault count of the
    row); it only enables sound skips and never changes the outcome. *)

val classification : result -> node:int -> offset:int -> Chmc.classification
(** [Not_classified] for references outside the slice's set, as with
    [Chmc.analyze ~only_sets]. *)

val saturated : result -> bool
(** Every reference of the set is [Always_miss] — further fault counts
    cannot change the classification (monotone degradation), so the FMM
    row can stop re-analysing. *)

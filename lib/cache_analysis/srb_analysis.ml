type t = {
  hits : bool array array;
  reachable : bool array;
}

(* The abstract SRB state: the set of blocks the buffer is guaranteed to
   hold. With capacity one this is either one block or unknown, which is
   exactly a Must-ACS of associativity 1 over a single set. [touches]
   selects which references go through the buffer: all of them for the
   paper's conservative analysis, only one cache set's for the exclusive
   refinement. *)
let analyze_with ?ctx ~graph ~config ~touches () =
  let n = Cfg.Graph.node_count graph in
  let blocks =
    match ctx with
    | Some ctx -> ctx.Context.blocks
    | None ->
      Array.init n (fun u ->
          Array.of_list
            (List.map
               (Cache.Config.block_of_address config)
               (Cfg.Graph.addresses graph (Cfg.Graph.node graph u))))
  in
  let update acs blk = if touches blk then Acs.must_update ~assoc:1 acs blk else acs in
  let transfer u acs = Array.fold_left update acs blocks.(u) in
  let must_in =
    Fixpoint.run ~graph ~entry_state:Acs.empty ~transfer ~join:Acs.must_join ~equal:Acs.equal ()
  in
  let reachable =
    match ctx with
    | Some ctx -> ctx.Context.reachable
    | None ->
      let reachable = Array.make n false in
      Array.iter (fun u -> reachable.(u) <- true) (Cfg.Graph.reverse_postorder graph);
      reachable
  in
  let hits = Array.make n [||] in
  for u = 0 to n - 1 do
    let len = Array.length blocks.(u) in
    hits.(u) <- Array.make len false;
    match must_in.(u) with
    | Some acs0 ->
      let acs = ref acs0 in
      for k = 0 to len - 1 do
        let blk = blocks.(u).(k) in
        if touches blk then begin
          hits.(u).(k) <- Acs.mem !acs blk;
          acs := update !acs blk
        end
      done
    | None -> ()
  done;
  { hits; reachable }

let analyze ?ctx ~graph ~config () = analyze_with ?ctx ~graph ~config ~touches:(fun _ -> true) ()

let analyze_exclusive ?ctx ~graph ~config ~sets () =
  analyze_with ?ctx ~graph ~config
    ~touches:(fun blk -> List.mem (Cache.Config.set_of_block config blk) sets)
    ()

let always_hit t ~node ~offset = t.hits.(node).(offset)

let hit_count t =
  let acc = ref 0 in
  Array.iteri
    (fun u row -> if t.reachable.(u) then Array.iter (fun h -> if h then incr acc) row)
    t.hits;
  !acc

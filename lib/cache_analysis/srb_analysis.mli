(** Must analysis of the Shared Reliable Buffer viewed as the only
    cache in the system (paper Section III-B.2).

    The SRB holds exactly one cache block, so the analysis is a Must
    analysis with a single fully-associative entry over {e all}
    references: a reference is always-hit in the SRB precisely when, on
    every path, the immediately preceding reference touched the same
    memory block — i.e. the SRB preserves spatial locality only. This
    also realises the paper's deliberate conservatism: no information
    is retained across distinct series of SRB accesses, because any
    intervening reference (whether its set is faulty or not) replaces
    the abstract buffer content. *)

type t

val analyze : ?ctx:Context.t -> graph:Cfg.Graph.t -> config:Cache.Config.t -> unit -> t
(** [ctx] reuses a precomputed {!Context.t}'s block arrays and
    reachability instead of re-deriving them. *)

val analyze_exclusive :
  ?ctx:Context.t -> graph:Cfg.Graph.t -> config:Cache.Config.t -> sets:int list -> unit -> t
(** Variant for the refined SRB analysis (the paper's future-work
    direction): assumes references mapping to [sets] are the {e only}
    ones routed through the buffer — sound exactly when [sets] are the
    only fully-faulty sets, because references to healthy sets never
    consult the SRB. Temporal locality within the dead sets is then
    preserved across interleaved accesses to healthy ones. *)

val always_hit : t -> node:int -> offset:int -> bool
(** Whether the [offset]-th fetch of the node is guaranteed to hit in
    the SRB when its set is fully faulty. *)

val hit_count : t -> int
(** Number of references classified always-hit (over reachable nodes). *)

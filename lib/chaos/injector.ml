(* Counter-based fault decisions, exactly the Sim.Rng discipline: the
   same splitmix-style finalizer on native 63-bit ints (the constants
   are Sim.Rng's, duplicated here so the chaos layer stays a leaf the
   I/O libraries can depend on; test/test_chaos.ml pins the two mixers
   equal), driven by (seed, site, occurrence) instead of
   (seed, sample, draw). *)
let mult_a = 0x2545F4914F6CDD1D
let mult_b = 0x27220A95FE1DADD5
let gamma = 0x1E3779B97F4A7C15

let mix z =
  let z = (z lxor (z lsr 33)) * mult_a in
  let z = (z lxor (z lsr 29)) * mult_b in
  z lxor (z lsr 32)

let ulp53 = 1.0 /. 9007199254740992.0

let uniform ~stream ~draw =
  float_of_int (mix (stream + ((draw + 1) * mult_a)) land 0x1F_FFFF_FFFF_FFFF) *. ulp53

let site_code site =
  let h = ref (String.length site) in
  String.iter (fun c -> h := mix ((!h * mult_b) + Char.code c)) site;
  !h

exception Killed of string

let () =
  Printexc.register_printer (function
    | Killed site -> Some (Printf.sprintf "Chaos.Injector.Killed(%s)" site)
    | _ -> None)

type outcome =
  | Pass
  | Fail of Unix.error
  | Short
  | Flip
  | Sleep of float
  | Die

type site_state = {
  rules : Plan.rule array;
  occurrence : int Atomic.t;  (** next occurrence index at this site *)
  hits : int Atomic.t;  (** non-[Pass] decisions *)
}

type t = {
  seed : int;
  plan : Plan.t;
  by_site : (string, site_state) Hashtbl.t;
      (** built once at {!create}, read-only afterwards — safe to
          consult from any domain or thread without a lock *)
}

let create ~seed plan =
  let by_site = Hashtbl.create 16 in
  List.iter
    (fun site ->
      let rules =
        Array.of_list (List.filter (fun (r : Plan.rule) -> String.equal r.site site) plan.Plan.rules)
      in
      Hashtbl.replace by_site site
        { rules; occurrence = Atomic.make 0; hits = Atomic.make 0 })
    (Plan.sites plan);
  { seed; plan; by_site }

let seed t = t.seed
let plan t = t.plan

(* The decision for occurrence [k] at [site]: a pure function of
   (seed, site, rule index, k). Rules are consulted in plan order with
   independent draws; the first that fires wins. No state is read, so
   equal (seed, site, k) give equal outcomes on every run, in every
   process, under every interleaving. *)
let decide_pure t ~site ~rules ~occurrence =
  let code = site_code site in
  let base = mix (mix (t.seed + 1) + (code * gamma)) in
  let n = Array.length rules in
  let rec pick j =
    if j >= n then Pass
    else begin
      let r : Plan.rule = rules.(j) in
      let u = uniform ~stream:(base + ((j + 1) * mult_b)) ~draw:occurrence in
      if u < r.p then
        match r.fault with
        | Plan.Io_error err -> Fail err
        | Plan.Short_io -> Short
        | Plan.Bit_flip -> Flip
        | Plan.Stall s -> Sleep s
        | Plan.Kill -> Die
      else pick (j + 1)
    end
  in
  pick 0

let state t ~site = Hashtbl.find_opt t.by_site site

let record st outcome =
  (match outcome with Pass -> () | _ -> Atomic.incr st.hits);
  outcome

(* Decision for an explicitly numbered occurrence — the caller owns the
   numbering (e.g. a DAG node index), so the schedule is independent of
   execution order. *)
let decide_at t ~site ~occurrence =
  match state t ~site with
  | None -> Pass
  | Some st -> record st (decide_pure t ~site ~rules:st.rules ~occurrence)

(* Decision for the next occurrence in program order at this site. *)
let decide t ~site =
  match state t ~site with
  | None -> Pass
  | Some st ->
    let occurrence = Atomic.fetch_and_add st.occurrence 1 in
    record st (decide_pure t ~site ~rules:st.rules ~occurrence)

let injected t =
  Hashtbl.fold
    (fun site st acc ->
      let n = Atomic.get st.hits in
      if n > 0 then (site, n) :: acc else acc)
    t.by_site []
  |> List.sort compare

let total_injected t = List.fold_left (fun acc (_, n) -> acc + n) 0 (injected t)

(* --- taps: what the instrumented layers actually call --------------------- *)

let raise_fault ~site err = raise (Unix.Unix_error (err, site, "chaos"))

let act ~site = function
  | Pass | Short | Flip -> ()
  | Fail err -> raise_fault ~site err
  | Sleep s -> Unix.sleepf s
  | Die -> raise (Killed site)

let tap opt ~site =
  match opt with None -> () | Some t -> act ~site (decide t ~site)

let tap_at opt ~site ~occurrence =
  match opt with None -> () | Some t -> act ~site (decide_at t ~site ~occurrence)

(* I/O length injection: [`Partial n] asks the call site to transfer
   only [n] of [len] bytes this once (0 <= n < len, deterministic in
   the occurrence). What a partial transfer *means* — retryable short
   write vs torn-then-failed append — is the call site's semantics. *)
let tap_io opt ~site ~len =
  match opt with
  | None -> `Full
  | Some t -> (
    match state t ~site with
    | None -> `Full
    | Some st -> (
      let occurrence = Atomic.fetch_and_add st.occurrence 1 in
      match record st (decide_pure t ~site ~rules:st.rules ~occurrence) with
      | Pass | Flip -> `Full
      | Fail err -> raise_fault ~site err
      | Sleep s ->
        Unix.sleepf s;
        `Full
      | Die -> raise (Killed site)
      | Short ->
        if len <= 0 then `Full
        else begin
          let u = uniform ~stream:(mix (t.seed + site_code site)) ~draw:occurrence in
          `Partial (int_of_float (u *. float_of_int len) mod len)
        end))

(* Readback corruption: flip one deterministically chosen bit of the
   payload — the integrity layer above must catch it. *)
let tap_data opt ~site data =
  match opt with
  | None -> data
  | Some t -> (
    match state t ~site with
    | None -> data
    | Some st -> (
      let occurrence = Atomic.fetch_and_add st.occurrence 1 in
      match record st (decide_pure t ~site ~rules:st.rules ~occurrence) with
      | Pass | Short -> data
      | Fail err -> raise_fault ~site err
      | Sleep s ->
        Unix.sleepf s;
        data
      | Die -> raise (Killed site)
      | Flip ->
        if String.length data = 0 then data
        else begin
          let u = uniform ~stream:(mix (t.seed + site_code site)) ~draw:occurrence in
          let bit = int_of_float (u *. float_of_int (String.length data * 8)) in
          let byte = min (String.length data - 1) (bit / 8) in
          let b = Bytes.of_string data in
          Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit land 7))));
          Bytes.unsafe_to_string b
        end))

(* Worker-loop variant: never raises, so the loop can sequence its own
   requeue/respawn protocol around a simulated domain death. *)
let tap_worker opt ~site =
  match opt with
  | None -> `Pass
  | Some t -> (
    match decide t ~site with
    | Pass | Short | Flip -> `Pass
    | Fail _ -> `Pass
    | Sleep s -> `Sleep s
    | Die -> `Die)

(** Deterministic, seeded fault injection.

    An injector binds a {!Plan.t} to a seed. Every fault decision is a
    pure function of [(seed, site, occurrence)] — the same counter-based
    construction as [Sim.Rng] (the mixer is pinned equal by
    test/test_chaos.ml) — so a fault schedule is reproducible from the
    seed alone: re-running the same operations in the same per-site
    order re-injects exactly the same faults, in any process, at any
    parallelism. Sites whose occurrence numbering is owned by the
    caller ({!tap_at}, e.g. DAG nodes keyed by node index) are
    deterministic even across execution orders.

    Injectors are safe to share across domains and threads: the site
    table is immutable after {!create} and the per-site occurrence and
    hit counters are atomics.

    Every tap takes [t option] and is a no-op returning instantly on
    [None] — production call sites pay one pattern match when chaos is
    off. *)

type t

exception Killed of string
(** Simulated death of the executing worker, raised at the named site.
    The worker layers catch it {e outside} job containment, so it kills
    the domain (which must requeue its job and respawn), unlike a job
    exception (which is contained per-item). *)

type outcome = Pass | Fail of Unix.error | Short | Flip | Sleep of float | Die

val create : seed:int -> Plan.t -> t
val seed : t -> int
val plan : t -> Plan.t

val decide : t -> site:string -> outcome
(** Decision for the next occurrence (in program order) at [site];
    bumps the site's occurrence counter. *)

val decide_at : t -> site:string -> occurrence:int -> outcome
(** Decision for an explicitly numbered occurrence; does not touch the
    site counter. Use when the caller owns a stable numbering (node or
    item index), making the schedule independent of execution order. *)

val injected : t -> (string * int) list
(** Non-[Pass] decisions recorded per site, sorted by site name. *)

val total_injected : t -> int

(** {1 Taps} *)

val tap : t option -> site:string -> unit
(** [Fail] raises [Unix.Unix_error (err, site, "chaos")]; [Sleep]
    sleeps; [Die] raises {!Killed}; everything else passes. *)

val tap_at : t option -> site:string -> occurrence:int -> unit
(** {!tap} with caller-owned occurrence numbering ({!decide_at}). *)

val tap_io : t option -> site:string -> len:int -> [ `Full | `Partial of int ]
(** Length injection for a transfer of [len] bytes: [`Partial n] asks
    the call site to move only [n] bytes (0 <= n < [len]) this once.
    Whether that partial transfer is then retried (a short socket
    write) or aborted torn (ENOSPC mid-append) is the call site's
    semantics. [Fail]/[Die] raise as in {!tap}. *)

val tap_data : t option -> site:string -> string -> string
(** Readback corruption: on [Flip], returns the data with one
    deterministically chosen bit flipped — the integrity layer above
    must catch it. Otherwise the data, unchanged. *)

val tap_worker : t option -> site:string -> [ `Pass | `Die | `Sleep of float ]
(** Non-raising variant for worker loops, which must run their own
    requeue/respawn protocol around a simulated death. *)

(** {1 Internals exposed for tests} *)

val mix : int -> int
(** The splitmix-style finalizer behind every decision — duplicated
    from [Sim.Rng] so this library stays a dependency leaf; exposed
    only so test/test_chaos.ml can pin the two mixers equal. *)

type fault =
  | Io_error of Unix.error
  | Short_io
  | Bit_flip
  | Stall of float
  | Kill

type rule = { site : string; p : float; fault : fault }
type t = { name : string; rules : rule list }

let fault_to_string = function
  | Io_error err -> Printf.sprintf "io-error(%s)" (Unix.error_message err)
  | Short_io -> "short-io"
  | Bit_flip -> "bit-flip"
  | Stall s -> Printf.sprintf "stall(%gs)" s
  | Kill -> "kill"

let rule site p fault =
  if not (Float.is_finite p) || p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Chaos.Plan.rule: probability %g outside [0, 1]" p);
  { site; p; fault }

let none = { name = "none"; rules = [] }

(* The store plan covers every on-disk failure mode the paper's
   infrastructure must absorb: transient and persistent read errors,
   silent media corruption surfacing on readback, a filling disk
   (ENOSPC on data writes, fsync and rename), and torn appends. *)
let store_rules =
  [ rule Site.store_read 0.08 (Io_error Unix.EIO);
    rule Site.store_read_data 0.08 Bit_flip;
    rule Site.store_write 0.05 (Io_error Unix.ENOSPC);
    rule Site.store_write 0.04 (Io_error Unix.EIO);
    rule Site.store_write 0.06 Short_io;
    rule Site.store_fsync 0.05 (Io_error Unix.EIO);
    rule Site.store_rename 0.03 (Io_error Unix.ENOSPC);
    rule Site.journal_append 0.05 Short_io;
    rule Site.journal_append 0.03 (Io_error Unix.ENOSPC) ]

let store_plan = { name = "store"; rules = store_rules }

(* Worker-domain faults: the domain picking up a job dies on the spot
   (the job must be requeued and the domain respawned) or stalls long
   enough to reorder everything behind it. *)
let workers_rules =
  [ rule Site.workers_job 0.12 Kill; rule Site.workers_job 0.05 (Stall 0.02) ]

let workers_plan = { name = "workers"; rules = workers_rules }

(* DAG-node faults for the grid engine: kills surface as typed
   [Worker_crash] cells, stalls only delay. Decisions are keyed by
   node index, so the same nodes die at every [--jobs]. *)
let pool_rules =
  [ rule Site.pool_node 0.06 Kill; rule Site.pool_node 0.04 (Stall 0.01) ]

let pool_plan = { name = "pool"; rules = pool_rules }

(* Hostile-network plan: reads and writes on either side of a
   connection hit EAGAIN, partial transfers and resets; connects are
   refused. Every fault is one the frame/client layers must either
   heal (retry, resume the partial transfer) or surface typed. *)
let service_rules =
  [ rule Site.frame_read 0.06 (Io_error Unix.EAGAIN);
    rule Site.frame_read 0.03 (Io_error Unix.ECONNRESET);
    rule Site.frame_write 0.08 Short_io;
    rule Site.frame_write 0.03 (Io_error Unix.ECONNRESET);
    rule Site.frame_write 0.03 (Io_error Unix.EPIPE);
    rule Site.client_connect 0.06 (Io_error Unix.ECONNREFUSED);
    rule Site.client_send 0.04 (Io_error Unix.ECONNRESET);
    rule Site.client_recv 0.04 (Io_error Unix.ECONNRESET) ]

let service_plan = { name = "service"; rules = service_rules }

let all_plan =
  { name = "all"; rules = store_rules @ workers_rules @ pool_rules @ service_rules }

let builtin = [ none; store_plan; workers_plan; pool_plan; service_plan; all_plan ]
let all_names = List.map (fun p -> p.name) builtin

let named name =
  match List.find_opt (fun p -> String.equal p.name name) builtin with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown chaos plan %S (expected one of %s)" name
         (String.concat ", " all_names))

let sites t = List.sort_uniq compare (List.map (fun r -> r.site) t.rules)

(** Named fault plans: which faults may fire at which injection sites,
    and how often.

    A plan is pure data — probabilities per (site, fault) pair. The
    {!Injector} turns a plan plus a seed into a deterministic fault
    schedule: whether occurrence [k] at a site faults is a pure
    function of [(seed, site, k)], never of wall clock or scheduling.

    The built-in plans mirror the fault model of DESIGN.md §14: [store]
    (EIO/ENOSPC/short writes/failed fsync and rename/readback
    bit-flips), [workers] (worker-domain deaths and stalls), [pool]
    (DAG-node deaths and stalls, keyed by node index), [service]
    (EAGAIN, partial and reset transfers, refused connects), [all]
    (their union) and [none]. *)

type fault =
  | Io_error of Unix.error  (** the operation raises this errno *)
  | Short_io  (** the transfer moves only part of its bytes *)
  | Bit_flip  (** one bit of the data read back is flipped *)
  | Stall of float  (** the operation sleeps this many seconds first *)
  | Kill  (** the executing worker dies ({!Injector.Killed}) *)

type rule = { site : string; p : float; fault : fault }
type t = { name : string; rules : rule list }

val fault_to_string : fault -> string

val rule : string -> float -> fault -> rule
(** @raise Invalid_argument if [p] lies outside [0, 1]. *)

val none : t
val store_plan : t
val workers_plan : t
val pool_plan : t
val service_plan : t
val all_plan : t

val builtin : t list
val all_names : string list

val named : string -> (t, string) result
(** Look a built-in plan up by name; the error lists the valid names. *)

val sites : t -> string list
(** The distinct sites the plan mentions, sorted. *)

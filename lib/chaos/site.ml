(* One constant per injection point, so plans, call sites and reports
   all spell a site the same way. The namespace mirrors the layer
   layout: store.*, journal.*, frame.*, client.*, workers.*, pool.*. *)

let store_read = "store.read"
let store_read_data = "store.read.data"
let store_write = "store.write"
let store_fsync = "store.fsync"
let store_rename = "store.rename"
let journal_append = "journal.append"
let frame_read = "frame.read"
let frame_write = "frame.write"
let client_connect = "client.connect"
let client_send = "client.send"
let client_recv = "client.recv"
let workers_job = "workers.job"
let pool_node = "pool.node"

let all =
  [ store_read; store_read_data; store_write; store_fsync; store_rename; journal_append;
    frame_read; frame_write; client_connect; client_send; client_recv; workers_job;
    pool_node ]

(** Canonical injection-site names, one constant per instrumented
    operation, so plans, taps and reports never disagree on
    spelling. *)

val store_read : string
val store_read_data : string
val store_write : string
val store_fsync : string
val store_rename : string
val journal_append : string
val frame_read : string
val frame_write : string
val client_connect : string
val client_send : string
val client_recv : string
val workers_job : string
val pool_node : string

val all : string list

type violation = { check : string; detail : string }
type report = { checks : int; violations : violation list }

let empty = { checks = 0; violations = [] }
let ok r = r.violations = []

let merge reports =
  List.fold_left
    (fun acc r ->
      { checks = acc.checks + r.checks; violations = acc.violations @ r.violations })
    empty reports

let run check tests =
  let violations =
    List.filter_map (fun (holds, detail) -> if holds then None else Some { check; detail }) tests
  in
  { checks = List.length tests; violations }

(* Probability comparisons tolerate compensated-summation noise: both
   sides are sums of the same magnitudes, so the slack is relative to
   the larger side plus an absolute floor far below any mass the
   pipeline distinguishes. *)
let prob_leq a b = a <= b +. (1e-9 *. Float.max 1.0 b) +. 1e-12

let label = function None -> "" | Some l -> Printf.sprintf " [%s]" l

(* FMM invariants: column 0 is the fault-free delta (zero by
   definition), entries are counts, rows are monotone in the fault
   count (more dead blocks can only add misses). *)
let check_fmm ?what fmm =
  let w = label what in
  let config = Fmm.config fmm in
  let ways = config.Cache.Config.ways in
  let tests = ref [] in
  for set = 0 to config.Cache.Config.sets - 1 do
    let row f = Fmm.misses fmm ~set ~faulty:f in
    tests :=
      (row 0 = 0, Printf.sprintf "fmm%s: set %d column 0 is %d, expected 0" w set (row 0))
      :: !tests;
    for f = 1 to ways do
      tests :=
        ( row f >= row (f - 1),
          Printf.sprintf "fmm%s: set %d not monotone at f=%d (%d < %d)" w set f (row f)
            (row (f - 1)) )
        :: (row f >= 0, Printf.sprintf "fmm%s: set %d negative entry at f=%d" w set f)
        :: !tests
    done
  done;
  run "fmm" !tests

(* Distribution invariants: probabilities are in [0, 1], the support is
   strictly ascending, and the total mass is conserved (1 within
   [mass_tol], compensated summation leaves ~1e-12 on real pipelines). *)
let check_distribution ?what ?(mass_tol = 1e-6) dist =
  let w = label what in
  let support = Prob.Dist.support dist in
  let mass = Prob.Dist.total_mass dist in
  let tests =
    ( Float.abs (mass -. 1.0) <= mass_tol,
      Printf.sprintf "dist%s: total mass %.17g drifts from 1 by more than %g" w mass mass_tol )
    :: List.map
         (fun (x, p) ->
           ( Float.is_finite p && p >= 0.0 && p <= 1.0 +. 1e-9,
             Printf.sprintf "dist%s: P(X = %d) = %.17g outside [0, 1]" w x p ))
         support
  in
  let ordering =
    let rec go = function
      | (x, _) :: ((y, _) :: _ as rest) ->
        (x < y, Printf.sprintf "dist%s: support not ascending at %d, %d" w x y) :: go rest
      | _ -> []
    in
    go support
  in
  run "distribution" (tests @ ordering)

(* Exceedance curves are complementary CDFs: values strictly ascending,
   probabilities non-increasing and within [0, 1]. *)
let check_exceedance_curve ?what curve =
  let w = label what in
  let bounds =
    List.map
      (fun (x, p) ->
        ( Float.is_finite p && p >= 0.0 && p <= 1.0 +. 1e-9,
          Printf.sprintf "curve%s: P(X >= %d) = %.17g outside [0, 1]" w x p ))
      curve
  in
  let rec steps = function
    | (x1, p1) :: ((x2, p2) :: _ as rest) ->
      (x1 < x2, Printf.sprintf "curve%s: values not ascending at %d, %d" w x1 x2)
      :: ( prob_leq p2 p1,
           Printf.sprintf "curve%s: exceedance increases from %.17g at %d to %.17g at %d" w p1 x1
             p2 x2 )
      :: steps rest
    | _ -> []
  in
  run "exceedance-curve" (bounds @ steps curve)

(* Mechanism dominance (paper Section III-B): a mitigation mechanism
   can only remove fault-induced misses, so its pWCET exceedance curve
   must lie on or below the unprotected baseline at every value. Both
   curves are queried at the union of their support points. *)
let check_dominance ~baseline ~other =
  let base_curve = Estimator.exceedance_curve baseline in
  let other_curve = Estimator.exceedance_curve other in
  let xs =
    List.sort_uniq compare (List.map fst base_curve @ List.map fst other_curve)
  in
  let exceed e x =
    (* absolute value x: P(wcet_ff + penalty > x), weak form at support *)
    Prob.Dist.exceedance e.Estimator.penalty (x - 1 - Estimator.fault_free_wcet e.Estimator.task)
  in
  let tests =
    List.map
      (fun x ->
        let pb = exceed baseline x and po = exceed other x in
        ( prob_leq po pb,
          Printf.sprintf "dominance: %s exceedance %.17g > baseline %.17g at %d"
            (Mechanism.short_name other.Estimator.mechanism) po pb x ))
      xs
  in
  run "mechanism-dominance" tests

let check_estimate ?label:l e =
  let what =
    match l with
    | Some l -> Some l
    | None -> Some (Mechanism.short_name e.Estimator.mechanism)
  in
  merge
    [
      check_fmm ?what e.Estimator.fmm;
      check_distribution ?what e.Estimator.penalty;
      check_exceedance_curve ?what (Estimator.exceedance_curve e);
    ]

(* Monte-Carlo bound-violation search: draw concrete fault maps from
   the model (eq. 2), price each one through the FMM, and compare the
   empirical exceedance frequency against the analytic curve at a few
   analytic quantiles. The analytic curve upper-bounds the true law, so
   an empirical frequency above it by more than binomial sampling noise
   (5 sigma plus discretisation slack) is a soundness violation, not
   bad luck. Each sampled penalty must also stay under the
   distribution's support ceiling — a deterministic check. *)
let monte_carlo ?(samples = 10) ?(seed = 42) e =
  let task = e.Estimator.task in
  let config = task.Estimator.config in
  let ways = config.Cache.Config.ways in
  let miss_penalty = Cache.Config.miss_penalty config in
  let rng = Random.State.make [| seed |] in
  let sample_penalty () =
    let map = Cache.Fault_map.sample config ~pbf:e.Estimator.pbf rng in
    let map =
      (* The RW mechanism's reliable way never holds faulty blocks;
         masking one way reproduces eq. 3's binomial over W-1 ways. *)
      match e.Estimator.mechanism with
      | Mechanism.Reliable_way -> Cache.Fault_map.mask_way map ~way:(ways - 1)
      | Mechanism.No_protection | Mechanism.Shared_reliable_buffer -> map
    in
    let misses = ref 0 in
    for set = 0 to config.Cache.Config.sets - 1 do
      misses := !misses + Fmm.misses e.Estimator.fmm ~set ~faulty:(Cache.Fault_map.faulty_in_set map set)
    done;
    !misses * miss_penalty
  in
  (* Stream the samples: Welford moments plus per-threshold exceedance
     counters, so the sample count never implies O(samples) live
     memory — the flags on `pwcet_tool audit` invite millions. *)
  let ceiling = Fmm.max_penalty_misses e.Estimator.fmm * miss_penalty in
  let thresholds =
    List.sort_uniq compare
      (List.map (fun t -> Prob.Dist.quantile e.Estimator.penalty ~target:t) [ 0.5; 0.1; 0.01 ])
  in
  let threshold_arr = Array.of_list thresholds in
  let exceed_counts = Array.make (Array.length threshold_arr) 0 in
  let moments = Sim.Welford.create () in
  let over_ceiling = ref 0 and worst = ref min_int in
  for _ = 1 to samples do
    let p = sample_penalty () in
    Sim.Welford.add moments (float_of_int p);
    if p > !worst then worst := p;
    if p > ceiling then incr over_ceiling;
    Array.iteri (fun i x -> if p > x then exceed_counts.(i) <- exceed_counts.(i) + 1) threshold_arr
  done;
  let ceiling_test =
    ( !over_ceiling = 0,
      Printf.sprintf
        "monte-carlo: %d of %d sampled penalties exceed support ceiling %d (max %d, mean %.1f)"
        !over_ceiling samples ceiling !worst (Sim.Welford.mean moments) )
  in
  let n = float_of_int samples in
  let tail_tests =
    List.mapi
      (fun i x ->
        let analytic = Prob.Dist.exceedance e.Estimator.penalty x in
        let empirical = float_of_int exceed_counts.(i) /. n in
        let noise = (5.0 *. sqrt (Float.max analytic (1.0 /. n) /. n)) +. (1.0 /. n) in
        ( empirical <= analytic +. noise,
          Printf.sprintf
            "monte-carlo: empirical P(X > %d) = %.3g exceeds analytic %.3g + noise %.3g" x
            empirical analytic noise ))
      thresholds
  in
  run "monte-carlo" (ceiling_test :: tail_tests)

let pp_violation fmt v = Format.fprintf fmt "VIOLATION %s: %s" v.check v.detail

let pp_report fmt r =
  Format.fprintf fmt "%d checks, %d violations" r.checks (List.length r.violations);
  List.iter (fun v -> Format.fprintf fmt "@.  %a" pp_violation v) r.violations

(** Runtime invariant auditor for the pWCET pipeline.

    Each check replays an invariant the pipeline's soundness argument
    relies on, against the {e concrete} artefacts of a run — so a bug
    anywhere upstream (analysis, solver, convolution, degradation
    fallback) surfaces as a named violation instead of a silently wrong
    bound. Audited invariants:

    - {b FMM shape}: column 0 zero, entries non-negative, rows monotone
      in the fault count.
    - {b Mass conservation}: penalty distributions sum to 1 (within
      tolerance), probabilities in [0, 1], support strictly ascending.
    - {b Exceedance monotonicity}: curves are complementary CDFs —
      values ascending, probabilities non-increasing.
    - {b Mechanism dominance}: RW/SRB exceedance curves lie on or below
      the unprotected baseline at every value (mitigation can only
      remove misses).
    - {b Monte-Carlo bound search}: concrete fault maps sampled from
      the model, priced through the FMM, must not empirically exceed
      the analytic exceedance curve beyond sampling noise, nor the
      distribution's support ceiling.

    All float comparisons carry small tolerances for compensated-sum
    noise; a reported violation is a real defect, not float wobble. *)

type violation = { check : string; detail : string }
type report = { checks : int; violations : violation list }

val empty : report
val ok : report -> bool
(** No violations. *)

val merge : report list -> report

val check_fmm : ?what:string -> Fmm.t -> report
val check_distribution : ?what:string -> ?mass_tol:float -> Prob.Dist.t -> report
val check_exceedance_curve : ?what:string -> (int * float) list -> report

val check_dominance : baseline:Estimator.estimate -> other:Estimator.estimate -> report
(** Both estimates must come from the same task (same program and
    cache configuration); the baseline is normally [No_protection]. *)

val check_estimate : ?label:string -> Estimator.estimate -> report
(** {!check_fmm} + {!check_distribution} + {!check_exceedance_curve}
    on one estimate's artefacts. *)

val monte_carlo : ?samples:int -> ?seed:int -> Estimator.estimate -> report
(** Seeded fault-injection search (default 10 samples, seed 42) —
    deterministic for fixed arguments. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit

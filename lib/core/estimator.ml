type task = {
  graph : Cfg.Graph.t;
  loops : Cfg.Loop.loop list;
  config : Cache.Config.t;
  ctx : Cache_analysis.Context.t;
  chmc : Cache_analysis.Chmc.t;
  wcet_ff : int;
  wcet_rung : Robust.Rung.t;
  identity : (string * string) list;
}

type estimate = {
  task : task;
  mechanism : Mechanism.t;
  pfail : float;
  pbf : float;
  fmm : Fmm.t;
  penalty : Prob.Dist.t;
}

(* --- artifact-store plumbing --------------------------------------------- *)

(* Bump whenever a change can alter any computed table: every existing
   artifact then keys differently and reads as a miss, not a stale
   hit. *)
let code_version = "pwcet-analysis-1"

let wcet_kind = "WCET" and wcet_version = 1
let fmm_kind = "FMM " and fmm_version = 1
let dist_kind = "DIST" and dist_version = 1

let artifact_kinds =
  [ (wcet_kind, wcet_version); (fmm_kind, fmm_version); (dist_kind, dist_version) ]

let engine_tag = function `Path -> "path" | `Ilp -> "ilp"
let impl_tag = function `Naive -> "naive" | `Sliced -> "sliced"

let identity_of ~program ~config =
  [ ("code", code_version);
    (* Content digest, not a name: editing a benchmark or source file
       changes the key, so a stale artifact cannot shadow new code. *)
    ("program", Digest.to_hex (Digest.string (Format.asprintf "%a" Isa.Program.pp program)));
    ("sets", string_of_int config.Cache.Config.sets);
    ("ways", string_of_int config.Cache.Config.ways);
    ("line", string_of_int config.Cache.Config.line_bytes);
    ("hit", string_of_int config.Cache.Config.hit_latency);
    ("miss", string_of_int config.Cache.Config.miss_latency) ]

(* Read-through cache wrapper. Budgeted runs bypass the store in both
   directions: their outcomes depend on wall-clock, so a cached
   degraded table could mask an exact one (and vice versa). A payload
   that decodes but fails semantic validation is quarantined exactly
   like a checksum failure — corruption costs a recompute, never a
   wrong result. *)
let cached ~store ~budget ~parts ~kind ~version ~encode ~decode compute =
  match store with
  | Some st when budget = None -> (
    let key = Store.Artifact.key parts in
    let recompute_and_put () =
      let v = compute () in
      Store.Artifact.put st ~key ~kind ~version (encode v);
      v
    in
    match Store.Artifact.get st ~key ~kind ~version with
    | None -> recompute_and_put ()
    | Some payload -> (
      match decode payload with
      | Ok v -> v
      | Error reason ->
        Store.Artifact.quarantine st ~key ~reason;
        recompute_and_put ()))
  | _ -> compute ()

let prepare ~program ~config ?(engine = `Path) ?(exact = false) ?budget ?store () =
  let graph = Cfg.Graph.build program in
  let loops = Cfg.Loop.detect graph in
  let ctx = Cache_analysis.Context.make ~graph ~loops ~config in
  let chmc = Cache_analysis.Chmc.analyze ~ctx ~graph ~loops ~config () in
  let identity = identity_of ~program ~config in
  let wcet_ff, wcet_rung =
    cached ~store ~budget
      ~parts:
        (identity
        @ [ ("artifact", "wcet"); ("engine", engine_tag engine);
            ("exact", string_of_bool exact) ])
      ~kind:wcet_kind ~version:wcet_version
      ~encode:(fun (wcet, rung) ->
        let w = Store.Wire.writer () in
        Store.Wire.put_int w wcet;
        Store.Wire.put_int w (Robust.Rung.to_tag rung);
        Store.Wire.contents w)
      ~decode:(fun payload ->
        Store.Wire.decode payload (fun r ->
            let wcet = Store.Wire.get_int r in
            let tag = Store.Wire.get_int r in
            if wcet < 0 then Store.Wire.malformed "wcet artifact: negative WCET";
            match Robust.Rung.of_tag tag with
            | Some rung -> (wcet, rung)
            | None -> Store.Wire.malformed "wcet artifact: unknown rung tag"))
      (fun () ->
        match Ipet.Wcet.compute_result ~graph ~loops ~chmc ~config ~engine ~exact ?budget () with
        | Ok (result, rung) -> (result.Ipet.Wcet.wcet, rung)
        | Error e -> Robust.Pwcet_error.raise_error e)
  in
  { graph; loops; config; ctx; chmc; wcet_ff; wcet_rung; identity }

(* The FMM (and everything upstream of it) is pfail-independent: pfail
   only enters through the binomial reweighting of the per-set penalty
   distributions. [compute_fmm] is the expensive pfail-free prefix,
   [estimate_with_fmm] the cheap per-pfail suffix — [sweep] amortises
   the former across a whole grid, and the store persists both across
   processes. [jobs] stays out of every key: results are bit-identical
   across job counts. *)
let fmm_parts task ~mechanism ~engine ~exact ~impl =
  task.identity
  @ [ ("mechanism", Mechanism.short_name mechanism); ("engine", engine_tag engine);
      ("exact", string_of_bool exact); ("impl", impl_tag impl) ]

let compute_fmm task ~mechanism ~engine ~exact ~jobs ~impl ?budget ?store () =
  cached ~store ~budget
    ~parts:(("artifact", "fmm") :: fmm_parts task ~mechanism ~engine ~exact ~impl)
    ~kind:fmm_kind ~version:fmm_version ~encode:Fmm.to_wire
    ~decode:(Fmm.of_wire ~config:task.config ~mechanism)
    (fun () ->
      Fmm.compute ~graph:task.graph ~loops:task.loops ~config:task.config ~mechanism ~engine
        ~exact ~jobs ~impl ~ctx:task.ctx ?budget ~baseline:task.chmc ())

(* Multi-mechanism FMM with store read-through: cached tables are
   served per mechanism, the misses are computed together through
   {!Fmm.compute_multi} (sharing the mechanism-independent row
   prefixes), and every fresh table is persisted under the exact same
   per-mechanism key [compute_fmm] uses — so grid runs and single runs
   interchangeably warm each other's cache. *)
let fmm_grid task ~mechanisms ?(engine = `Path) ?(exact = false) ?(jobs = 1) ?(impl = `Sliced)
    ?budget ?store () =
  let parts_of mechanism =
    ("artifact", "fmm") :: fmm_parts task ~mechanism ~engine ~exact ~impl
  in
  let lookup mechanism =
    match store with
    | Some st when budget = None -> (
      let key = Store.Artifact.key (parts_of mechanism) in
      match Store.Artifact.get st ~key ~kind:fmm_kind ~version:fmm_version with
      | None -> None
      | Some payload -> (
        match Fmm.of_wire ~config:task.config ~mechanism payload with
        | Ok fmm -> Some fmm
        | Error reason ->
          Store.Artifact.quarantine st ~key ~reason;
          None))
    | _ -> None
  in
  let hits = List.map (fun m -> (m, lookup m)) mechanisms in
  let missing =
    List.rev
      (List.fold_left
         (fun acc (m, hit) ->
           match hit with
           | Some _ -> acc
           | None -> if List.exists (Mechanism.equal m) acc then acc else m :: acc)
         [] hits)
  in
  let computed =
    match missing with
    | [] -> []
    | _ ->
      Fmm.compute_multi ~graph:task.graph ~loops:task.loops ~config:task.config
        ~mechanisms:missing ~engine ~exact ~jobs ~impl ~ctx:task.ctx ?budget
        ~baseline:task.chmc ()
  in
  (match store with
  | Some st when budget = None ->
    List.iter
      (fun (mechanism, fmm) ->
        Store.Artifact.put st
          ~key:(Store.Artifact.key (parts_of mechanism))
          ~kind:fmm_kind ~version:fmm_version (Fmm.to_wire fmm))
      computed
  | _ -> ());
  List.map
    (fun (m, hit) ->
      match hit with
      | Some fmm -> (m, fmm)
      | None -> (m, snd (List.find (fun (m', _) -> Mechanism.equal m m') computed)))
    hits

let estimate_with_fmm task ~fmm ~parts ~mechanism ~jobs ~pfail ?budget ?store () =
  let pbf = Fault.Model.pbf_of_config ~pfail task.config in
  let penalty =
    cached ~store ~budget
      ~parts:
        (("artifact", "penalty")
        :: ("pfail", Int64.to_string (Int64.bits_of_float pfail))
        :: parts)
      ~kind:dist_kind ~version:dist_version ~encode:Prob.Dist.to_wire ~decode:Prob.Dist.of_wire
      (fun () -> Penalty.total_distribution ~jobs ~fmm ~pbf ())
  in
  { task; mechanism; pfail; pbf; fmm; penalty }

let estimate task ~pfail ~mechanism ?(engine = `Path) ?(exact = false) ?(jobs = 1)
    ?(impl = `Sliced) ?budget ?store () =
  let fmm = compute_fmm task ~mechanism ~engine ~exact ~jobs ~impl ?budget ?store () in
  let parts = fmm_parts task ~mechanism ~engine ~exact ~impl in
  estimate_with_fmm task ~fmm ~parts ~mechanism ~jobs ~pfail ?budget ?store ()

let sweep task ~pfail_grid ~mechanism ?(engine = `Path) ?(exact = false) ?(jobs = 1)
    ?(impl = `Sliced) ?budget ?store () =
  let fmm = compute_fmm task ~mechanism ~engine ~exact ~jobs ~impl ?budget ?store () in
  let parts = fmm_parts task ~mechanism ~engine ~exact ~impl in
  List.map
    (fun pfail -> estimate_with_fmm task ~fmm ~parts ~mechanism ~jobs ~pfail ?budget ?store ())
    pfail_grid

let estimate_of_fmm task ~fmm ~pfail ?(engine = `Path) ?(exact = false) ?(jobs = 1)
    ?(impl = `Sliced) ?budget ?store () =
  let mechanism = Fmm.mechanism fmm in
  let parts = fmm_parts task ~mechanism ~engine ~exact ~impl in
  estimate_with_fmm task ~fmm ~parts ~mechanism ~jobs ~pfail ?budget ?store ()

let pwcet e ~target = e.task.wcet_ff + Prob.Dist.quantile e.penalty ~target

let exceedance_curve e =
  List.map (fun (x, p) -> (e.task.wcet_ff + x, p)) (Prob.Dist.exceedance_curve e.penalty)

let fault_free_wcet task = task.wcet_ff
let worst_rung e = Robust.Rung.worst e.task.wcet_rung (Fmm.worst_rung e.fmm)
let degradation_errors e = Fmm.errors e.fmm

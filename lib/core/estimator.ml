type task = {
  graph : Cfg.Graph.t;
  loops : Cfg.Loop.loop list;
  config : Cache.Config.t;
  ctx : Cache_analysis.Context.t;
  chmc : Cache_analysis.Chmc.t;
  wcet_ff : int;
  wcet_rung : Robust.Rung.t;
}

type estimate = {
  task : task;
  mechanism : Mechanism.t;
  pfail : float;
  pbf : float;
  fmm : Fmm.t;
  penalty : Prob.Dist.t;
}

let prepare ~program ~config ?(engine = `Path) ?(exact = false) ?budget () =
  let graph = Cfg.Graph.build program in
  let loops = Cfg.Loop.detect graph in
  let ctx = Cache_analysis.Context.make ~graph ~loops ~config in
  let chmc = Cache_analysis.Chmc.analyze ~ctx ~graph ~loops ~config () in
  let result, wcet_rung =
    match Ipet.Wcet.compute_result ~graph ~loops ~chmc ~config ~engine ~exact ?budget () with
    | Ok v -> v
    | Error e -> Robust.Pwcet_error.raise_error e
  in
  { graph; loops; config; ctx; chmc; wcet_ff = result.Ipet.Wcet.wcet; wcet_rung }

(* The FMM (and everything upstream of it) is pfail-independent: pfail
   only enters through the binomial reweighting of the per-set penalty
   distributions. [compute_fmm] is the expensive pfail-free prefix,
   [estimate_with_fmm] the cheap per-pfail suffix — [sweep] amortises
   the former across a whole grid. *)
let compute_fmm task ~mechanism ~engine ~exact ~jobs ~impl ?budget () =
  Fmm.compute ~graph:task.graph ~loops:task.loops ~config:task.config ~mechanism ~engine ~exact
    ~jobs ~impl ~ctx:task.ctx ?budget ()

let estimate_with_fmm task ~fmm ~mechanism ~jobs ~pfail =
  let pbf = Fault.Model.pbf_of_config ~pfail task.config in
  let penalty = Penalty.total_distribution ~jobs ~fmm ~pbf () in
  { task; mechanism; pfail; pbf; fmm; penalty }

let estimate task ~pfail ~mechanism ?(engine = `Path) ?(exact = false) ?(jobs = 1)
    ?(impl = `Sliced) ?budget () =
  let fmm = compute_fmm task ~mechanism ~engine ~exact ~jobs ~impl ?budget () in
  estimate_with_fmm task ~fmm ~mechanism ~jobs ~pfail

let sweep task ~pfail_grid ~mechanism ?(engine = `Path) ?(exact = false) ?(jobs = 1)
    ?(impl = `Sliced) ?budget () =
  let fmm = compute_fmm task ~mechanism ~engine ~exact ~jobs ~impl ?budget () in
  List.map (fun pfail -> estimate_with_fmm task ~fmm ~mechanism ~jobs ~pfail) pfail_grid

let pwcet e ~target = e.task.wcet_ff + Prob.Dist.quantile e.penalty ~target

let exceedance_curve e =
  List.map (fun (x, p) -> (e.task.wcet_ff + x, p)) (Prob.Dist.exceedance_curve e.penalty)

let fault_free_wcet task = task.wcet_ff
let worst_rung e = Robust.Rung.worst e.task.wcet_rung (Fmm.worst_rung e.fmm)
let degradation_errors e = Fmm.errors e.fmm

(** End-to-end probabilistic WCET estimation — the paper's full pipeline.

    [prepare] runs the fault-free analysis (CFG recovery, cache
    analysis, IPET) once per program/configuration. [estimate] adds the
    fault dimension for one mechanism: FMM, per-set penalty
    distributions, cross-set convolution. The resulting pWCET
    distribution is [wcet_ff + penalty]; {!pwcet} reads the exceedance
    quantile at the target probability (the paper uses [1e-15]).

    Both stages accept a {!Robust.Budget.t}: a starved budget degrades
    individual bounds down the Exact -> Relaxed -> Structural ladder
    instead of failing, and {!worst_rung} reports how much of the
    ladder the estimate consumed. *)

type task = private {
  graph : Cfg.Graph.t;
  loops : Cfg.Loop.loop list;
  config : Cache.Config.t;
  ctx : Cache_analysis.Context.t;  (** shared analysis context, built once *)
  chmc : Cache_analysis.Chmc.t;
  wcet_ff : int;  (** fault-free WCET, cycles *)
  wcet_rung : Robust.Rung.t;  (** ladder rung that produced [wcet_ff] *)
  identity : (string * string) list;
      (** labelled artifact-key components pinning everything the
          analysis results depend on: code version, program content
          digest, cache geometry and latencies *)
}

type estimate = private {
  task : task;
  mechanism : Mechanism.t;
  pfail : float;
  pbf : float;  (** derived block-failure probability (eq. 1) *)
  fmm : Fmm.t;
  penalty : Prob.Dist.t;  (** total fault-induced penalty distribution *)
}

val code_version : string
(** Version stamp of the analysis semantics, baked into every artifact
    key — bump it whenever a change can alter any computed table, and
    every cached artifact silently becomes a miss instead of a stale
    hit. *)

val artifact_kinds : (string * int) list
(** The artifact kinds this module writes with their current envelope
    format versions — what [cache verify] passes to
    {!Store.Artifact.verify} as [expected]. *)

val identity_of : program:Isa.Program.t -> config:Cache.Config.t -> (string * string) list
(** The labelled identity components the [task] produced by {!prepare}
    for this program and configuration will carry — code version,
    program content digest, cache geometry and latencies — available
    {e without} running the analysis. This is what lets a service
    compute a request's content-addressed key (and dedup identical
    in-flight requests against it) before deciding whether to spend
    the preparation work at all. *)

val prepare :
  program:Isa.Program.t ->
  config:Cache.Config.t ->
  ?engine:[ `Path | `Ilp ] ->
  ?exact:bool ->
  ?budget:Robust.Budget.t ->
  ?store:Store.Artifact.t ->
  unit ->
  task
(** [store] caches the fault-free WCET (the ILP/path-engine result —
    the expensive, pfail-independent tail of preparation) keyed by
    program content, geometry and engine flags. Lookups are
    integrity-checked; a corrupt entry is quarantined and recomputed.
    Budgeted runs ([budget] present) bypass the store entirely: their
    results depend on wall-clock, so they are neither read nor
    written. *)

val estimate :
  task ->
  pfail:float ->
  mechanism:Mechanism.t ->
  ?engine:[ `Path | `Ilp ] ->
  ?exact:bool ->
  ?jobs:int ->
  ?impl:[ `Naive | `Sliced ] ->
  ?budget:Robust.Budget.t ->
  ?store:Store.Artifact.t ->
  unit ->
  estimate
(** [jobs] (default 1) runs the independent per-set FMM analyses and
    penalty-distribution builds on that many OCaml domains; results are
    identical for every value. [impl] selects the FMM degraded-analysis
    engine (see {!Fmm.compute}); both yield the same estimate.
    [budget] flows into {!Fmm.compute}; exhaustion loosens FMM cells
    (soundly) rather than raising.

    [store] caches the FMM table (per mechanism/engine flags) and the
    per-point penalty distribution (additionally per pfail). [jobs]
    deliberately stays out of every key — results are bit-identical
    across job counts — so warm hits are bit-identical to cold
    recomputation by construction (pinned by test/test_store.ml), and
    budgeted runs bypass the store as in {!prepare}. *)

val sweep :
  task ->
  pfail_grid:float list ->
  mechanism:Mechanism.t ->
  ?engine:[ `Path | `Ilp ] ->
  ?exact:bool ->
  ?jobs:int ->
  ?impl:[ `Naive | `Sliced ] ->
  ?budget:Robust.Budget.t ->
  ?store:Store.Artifact.t ->
  unit ->
  estimate list
(** One estimate per grid point, in grid order, computing the
    pfail-{e independent} work (CHMC, FMM, fault-free WCET via the
    already-prepared task) once and redoing only the cheap binomial
    reweight + convolution + quantile machinery per point — the paper's
    Fig. 5-style sensitivity studies without re-running the static
    analysis per point. Each element is bit-identical to an independent
    {!estimate} call at that [pfail] with the same options (the shared
    FMM is deterministic in its inputs), pinned by
    test/test_dist_engine.ml for every [jobs] value. *)

val fmm_grid :
  task ->
  mechanisms:Mechanism.t list ->
  ?engine:[ `Path | `Ilp ] ->
  ?exact:bool ->
  ?jobs:int ->
  ?impl:[ `Naive | `Sliced ] ->
  ?budget:Robust.Budget.t ->
  ?store:Store.Artifact.t ->
  unit ->
  (Mechanism.t * Fmm.t) list
(** One FMM per requested mechanism (in list order), computing the
    misses together through {!Fmm.compute_multi} so the
    mechanism-independent per-set row prefixes (degraded fixpoints,
    signature memo, delta bounds) are paid once instead of once per
    mechanism. Each table is bit-identical to what a standalone
    {!estimate} at the same options would compute, and is read from /
    written to [store] under the exact per-mechanism key {!estimate}
    uses — grid and single runs warm each other's cache. Budgeted runs
    bypass the store as everywhere else. *)

val estimate_of_fmm :
  task ->
  fmm:Fmm.t ->
  pfail:float ->
  ?engine:[ `Path | `Ilp ] ->
  ?exact:bool ->
  ?jobs:int ->
  ?impl:[ `Naive | `Sliced ] ->
  ?budget:Robust.Budget.t ->
  ?store:Store.Artifact.t ->
  unit ->
  estimate
(** The per-pfail suffix of {!estimate} for a map obtained from
    {!fmm_grid} (or a previous estimate): binomial reweight,
    convolution, penalty caching. [engine]/[exact]/[impl] must match
    the options the map was computed under — they only enter the
    penalty artifact's store key, which must agree with the key an
    equivalent {!estimate} call would use. The result is bit-identical
    to that {!estimate} call. *)

val pwcet : estimate -> target:float -> int
(** pWCET at the target exceedance probability, in cycles. *)

val exceedance_curve : estimate -> (int * float) list
(** [(wcet_value, P(WCET >= value))] staircase — Fig. 3's curves. *)

val fault_free_wcet : task -> int

val worst_rung : estimate -> Robust.Rung.t
(** Loosest ladder rung anywhere in the estimate (fault-free WCET and
    every FMM cell) — [Exact] iff nothing degraded. *)

val degradation_errors : estimate -> (int * Robust.Pwcet_error.t) list
(** Per-set failures recorded by the FMM stage (see {!Fmm.errors}). *)

module Chmc = Cache_analysis.Chmc
module Context = Cache_analysis.Context
module Slice = Cache_analysis.Slice
module Srb_analysis = Cache_analysis.Srb_analysis
module Rung = Robust.Rung
module E = Robust.Pwcet_error

type t = {
  misses : int array array;  (* sets x (ways + 1); column 0 is all zeros *)
  provenance : Rung.t array array;  (* same shape: which ladder rung produced each cell *)
  errors : (int * E.t) list;  (* sets whose row fell back to the structural bound, and why *)
  config : Cache.Config.t;
  mechanism : Mechanism.t;
}

(* The f = ways classification: the set holds nothing; only an SRB can
   still serve hits. *)
let dead_set_degraded ~srb ~node ~offset =
  match srb with
  | Some srb_result ->
    if Srb_analysis.always_hit srb_result ~node ~offset then Chmc.Always_hit
    else Chmc.Always_miss
  | None -> Chmc.Always_miss

(* Rung of a [max]-combined cell: the contributor that set the value
   wins; on a tie the tighter rung does (both bounds hold, so the cell
   is as trustworthy as its best witness). *)
let pick_rung ~value ~rung ~prev_value ~prev_rung =
  if value > prev_value then rung
  else if value < prev_value then prev_rung
  else if Rung.compare rung prev_rung <= 0 then rung
  else prev_rung

(* One FMM row, naive engine: a fresh whole-CFG degraded analysis per
   fault count, exactly the pre-context cost profile (kept as the
   reference implementation for the differential tests and the bench
   comparison). Self-contained (no mutable state outside the row) so
   rows can run on separate domains. Returns the miss row and the
   per-cell degradation rungs. *)
let compute_row ~ctx ~graph ~loops ~config ~mechanism ~engine ~exact ~budget ~baseline ~srb set =
  let ways = config.Cache.Config.ways in
  let row = Array.make (ways + 1) 0 in
  let rungs = Array.make (ways + 1) Rung.Exact in
  (* With RW the all-faulty situation cannot occur (the reliable way
     survives); the last meaningful column is W-1. *)
  let max_f = match mechanism with Mechanism.Reliable_way -> ways - 1 | _ -> ways in
  let previous : (Chmc.classification list * (int * Rung.t)) option ref = ref None in
  for f = 1 to max_f do
    let degraded =
      if f < ways then begin
        let chmc_f =
          Chmc.analyze ~graph ~loops ~config
            ~assoc:(fun s -> if s = set then ways - f else ways)
            ~only_sets:[ set ] ()
        in
        fun ~node ~offset -> Chmc.classification chmc_f ~node ~offset
      end
      else dead_set_degraded ~srb
    in
    (* Successive fault counts often leave the classification of the
       set unchanged; reuse the ILP bound when they do. *)
    let signature = Chmc.set_signature ctx ~set ~degraded in
    let value, rung =
      match !previous with
      | Some (prev_sig, prev) when prev_sig = signature -> prev
      | _ ->
        let v =
          match
            Ipet.Delta.extra_misses_result ~graph ~loops ~config ~baseline ~degraded
              ~sets:[ set ] ~engine ~exact ?budget ()
          with
          | Ok v -> v
          | Error e -> E.raise_error e
        in
        previous := Some (signature, v);
        v
    in
    (* The map is monotone in the fault count by construction;
       enforce it against any relaxation tie-break wobble. *)
    row.(f) <- max value row.(f - 1);
    rungs.(f) <-
      pick_rung ~value ~rung ~prev_value:row.(f - 1) ~prev_rung:rungs.(f - 1)
  done;
  if max_f < ways then begin
    row.(ways) <- row.(max_f);
    rungs.(ways) <- rungs.(max_f)
  end;
  (row, rungs)

(* One FMM row, sliced engine: a condensed per-set fixpoint reused
   across fault counts, with saturation early-exit. Classification-
   identical to [compute_row] (pinned by test/test_sliced.ml). *)
let compute_row_sliced ~ctx ~graph ~loops ~config ~mechanism ~engine ~exact ~budget ~baseline ~srb
    set =
  let ways = config.Cache.Config.ways in
  let row = Array.make (ways + 1) 0 in
  let rungs = Array.make (ways + 1) Rung.Exact in
  let max_f = match mechanism with Mechanism.Reliable_way -> ways - 1 | _ -> ways in
  let slice = Slice.make ctx ~set in
  let previous : (Chmc.classification list * (int * Rung.t)) option ref = ref None in
  let prev_result = ref None in
  let saturated = ref false in
  for f = 1 to max_f do
    if f < ways && !saturated then begin
      (* Every reference already always-miss: shrinking the
         associativity further cannot change the classification, so the
         naive engine's signature memo would have reused the previous
         bound — do so without re-analysing. *)
      row.(f) <- row.(f - 1);
      rungs.(f) <- rungs.(f - 1)
    end
    else begin
      let degraded =
        if f < ways then begin
          let r = Slice.analyze slice ~assoc:(ways - f) ?prev:!prev_result () in
          prev_result := Some r;
          if Slice.saturated r then saturated := true;
          fun ~node ~offset -> Slice.classification r ~node ~offset
        end
        else dead_set_degraded ~srb
      in
      let signature = Chmc.set_signature ctx ~set ~degraded in
      let value, rung =
        match !previous with
        | Some (prev_sig, prev) when prev_sig = signature -> prev
        | _ ->
          let v =
            match
              Ipet.Delta.extra_misses_result ~graph ~loops ~config ~baseline ~degraded
                ~sets:[ set ] ~ctx ~engine ~exact ?budget ()
            with
            | Ok v -> v
            | Error e -> E.raise_error e
          in
          previous := Some (signature, v);
          v
      in
      row.(f) <- max value row.(f - 1);
      rungs.(f) <-
        pick_rung ~value ~rung ~prev_value:row.(f - 1) ~prev_rung:rungs.(f - 1)
    end
  done;
  if max_f < ways then begin
    row.(ways) <- row.(max_f);
    rungs.(ways) <- rungs.(max_f)
  end;
  (row, rungs)

(* Fallback row when a per-set worker crashed or the deadline passed:
   the structural bound needs no degraded analysis and no solver, and
   dominates every fault count's true delta, so a constant row is both
   monotone and sound. *)
let structural_row ~ctx ~graph ~loops ~config ~baseline ~ways set =
  let v =
    Ipet.Delta.structural_extra_misses ~graph ~loops ~config ~baseline ~sets:[ set ] ~ctx ()
  in
  let row = Array.make (ways + 1) v in
  row.(0) <- 0;
  let rungs = Array.make (ways + 1) Rung.Structural in
  rungs.(0) <- Rung.Exact;
  (row, rungs)

(* Multi-mechanism rows with a shared prefix.  The f < W loop body of
   [compute_row]/[compute_row_sliced] never consults the mechanism: the
   degraded analysis shrinks the set's associativity, the signature memo
   keys on the classification alone, and the delta bound sees only the
   classification.  Only the dead-set column (f = W) is
   mechanism-dependent — RW copies column W-1 (the all-faulty situation
   cannot occur), while None/SRB classify the dead set via
   [dead_set_degraded].  So one prefix pass (f = 1 .. W-1) feeds every
   mechanism's tail, bit-identically to running each mechanism alone:
   the tails read the prefix's signature memo exactly where a
   single-mechanism run would, and never write it. *)
let compute_rows_multi ~ctx ~graph ~loops ~config ~mechanisms ~engine ~exact ~budget ~baseline
    ~srb ~impl set =
  let ways = config.Cache.Config.ways in
  let row = Array.make (ways + 1) 0 in
  let rungs = Array.make (ways + 1) Rung.Exact in
  let previous : (Chmc.classification list * (int * Rung.t)) option ref = ref None in
  let delta ~with_ctx ~degraded =
    match
      Ipet.Delta.extra_misses_result ~graph ~loops ~config ~baseline ~degraded ~sets:[ set ]
        ?ctx:(if with_ctx then Some ctx else None)
        ~engine ~exact ?budget ()
    with
    | Ok v -> v
    | Error e -> E.raise_error e
  in
  (* The shared signature-memo/monotone-update step of the prefix,
     verbatim from the single-mechanism rows. *)
  let step ~with_ctx ~degraded f =
    let signature = Chmc.set_signature ctx ~set ~degraded in
    let value, rung =
      match !previous with
      | Some (prev_sig, prev) when prev_sig = signature -> prev
      | _ ->
        let v = delta ~with_ctx ~degraded in
        previous := Some (signature, v);
        v
    in
    row.(f) <- max value row.(f - 1);
    rungs.(f) <- pick_rung ~value ~rung ~prev_value:row.(f - 1) ~prev_rung:rungs.(f - 1)
  in
  (match impl with
  | `Naive ->
    for f = 1 to ways - 1 do
      let chmc_f =
        Chmc.analyze ~graph ~loops ~config
          ~assoc:(fun s -> if s = set then ways - f else ways)
          ~only_sets:[ set ] ()
      in
      step ~with_ctx:false
        ~degraded:(fun ~node ~offset -> Chmc.classification chmc_f ~node ~offset)
        f
    done
  | `Sliced ->
    let slice = Slice.make ctx ~set in
    let prev_result = ref None in
    let saturated = ref false in
    for f = 1 to ways - 1 do
      if !saturated then begin
        row.(f) <- row.(f - 1);
        rungs.(f) <- rungs.(f - 1)
      end
      else begin
        let r = Slice.analyze slice ~assoc:(ways - f) ?prev:!prev_result () in
        prev_result := Some r;
        if Slice.saturated r then saturated := true;
        step ~with_ctx:true
          ~degraded:(fun ~node ~offset -> Slice.classification r ~node ~offset)
          f
      end
    done);
  let with_ctx = match impl with `Naive -> false | `Sliced -> true in
  List.map
    (fun mechanism ->
      let row_m = Array.copy row and rungs_m = Array.copy rungs in
      (match mechanism with
      | Mechanism.Reliable_way ->
        row_m.(ways) <- row_m.(ways - 1);
        rungs_m.(ways) <- rungs_m.(ways - 1)
      | Mechanism.No_protection | Mechanism.Shared_reliable_buffer ->
        let srb =
          match mechanism with Mechanism.Shared_reliable_buffer -> srb | _ -> None
        in
        let degraded = dead_set_degraded ~srb in
        let signature = Chmc.set_signature ctx ~set ~degraded in
        let value, rung =
          match !previous with
          | Some (prev_sig, prev) when prev_sig = signature -> prev
          | _ -> delta ~with_ctx ~degraded
        in
        row_m.(ways) <- max value row_m.(ways - 1);
        rungs_m.(ways) <-
          pick_rung ~value ~rung ~prev_value:row_m.(ways - 1) ~prev_rung:rungs_m.(ways - 1));
      (mechanism, row_m, rungs_m))
    mechanisms

let compute ~graph ~loops ~config ~mechanism ?(engine = `Path) ?(exact = false) ?(jobs = 1)
    ?(impl = `Sliced) ?ctx ?budget ?baseline () =
  let n_sets = config.Cache.Config.sets and ways = config.Cache.Config.ways in
  let ctx = match ctx with Some c -> c | None -> Context.make ~graph ~loops ~config in
  let baseline =
    match baseline with Some b -> b | None -> Chmc.analyze ~ctx ~graph ~loops ~config ()
  in
  let srb =
    match mechanism with
    | Mechanism.Shared_reliable_buffer -> Some (Srb_analysis.analyze ~ctx ~graph ~config ())
    | Mechanism.No_protection | Mechanism.Reliable_way -> None
  in
  let misses = Array.make_matrix n_sets (ways + 1) 0 in
  let provenance = Array.init n_sets (fun _ -> Array.make (ways + 1) Rung.Exact) in
  (* Rows are independent; fan the referenced sets out across domains.
     Each row is deterministic given its inputs, so the table is
     bit-identical for every [jobs]. *)
  let used_sets =
    Array.of_list
      (List.filter
         (fun s -> Array.length ctx.Context.touching.(s) > 0)
         (List.init n_sets Fun.id))
  in
  let row =
    match impl with
    | `Naive -> compute_row ~ctx ~graph ~loops ~config ~mechanism ~engine ~exact ~budget ~baseline ~srb
    | `Sliced ->
      compute_row_sliced ~ctx ~graph ~loops ~config ~mechanism ~engine ~exact ~budget ~baseline
        ~srb
  in
  let deadline = match budget with Some b -> b.Robust.Budget.deadline | None -> None in
  let rows = Parallel.Pool.map_result ?deadline ~jobs row used_sets in
  let errors = ref [] in
  Array.iteri
    (fun i set ->
      match rows.(i) with
      | Ok (r, p) ->
        misses.(set) <- r;
        provenance.(set) <- p
      | Error e ->
        let r, p = structural_row ~ctx ~graph ~loops ~config ~baseline ~ways set in
        misses.(set) <- r;
        provenance.(set) <- p;
        errors := (set, e) :: !errors)
    used_sets;
  { misses; provenance; errors = List.rev !errors; config; mechanism }

let compute_multi ~graph ~loops ~config ~mechanisms ?(engine = `Path) ?(exact = false)
    ?(jobs = 1) ?(impl = `Sliced) ?ctx ?budget ?baseline () =
  match mechanisms with
  | [] -> []
  | _ ->
    let n_sets = config.Cache.Config.sets and ways = config.Cache.Config.ways in
    let ctx = match ctx with Some c -> c | None -> Context.make ~graph ~loops ~config in
    let baseline =
      match baseline with Some b -> b | None -> Chmc.analyze ~ctx ~graph ~loops ~config ()
    in
    (* One SRB analysis serves every mechanism that needs it. *)
    let srb =
      if List.mem Mechanism.Shared_reliable_buffer mechanisms then
        Some (Srb_analysis.analyze ~ctx ~graph ~config ())
      else None
    in
    let used_sets =
      Array.of_list
        (List.filter
           (fun s -> Array.length ctx.Context.touching.(s) > 0)
           (List.init n_sets Fun.id))
    in
    let deadline = match budget with Some b -> b.Robust.Budget.deadline | None -> None in
    let rows =
      Parallel.Pool.map_result ?deadline ~jobs
        (compute_rows_multi ~ctx ~graph ~loops ~config ~mechanisms ~engine ~exact ~budget
           ~baseline ~srb ~impl)
        used_sets
    in
    List.map
      (fun mechanism ->
        let misses = Array.make_matrix n_sets (ways + 1) 0 in
        let provenance = Array.init n_sets (fun _ -> Array.make (ways + 1) Rung.Exact) in
        let errors = ref [] in
        Array.iteri
          (fun i set ->
            match rows.(i) with
            | Ok per_mech ->
              let _, r, p =
                List.find (fun (m, _, _) -> Mechanism.equal m mechanism) per_mech
              in
              misses.(set) <- Array.copy r;
              provenance.(set) <- Array.copy p
            | Error e ->
              (* A crashed or starved shared prefix poisons the set's
                 row for every mechanism — each falls back to the same
                 structural bound an independent run would. *)
              let r, p = structural_row ~ctx ~graph ~loops ~config ~baseline ~ways set in
              misses.(set) <- r;
              provenance.(set) <- p;
              errors := (set, e) :: !errors)
          used_sets;
        (mechanism, { misses; provenance; errors = List.rev !errors; config; mechanism }))
      mechanisms

let of_table ~config ~mechanism ?provenance ?(errors = []) table =
  if Array.length table <> config.Cache.Config.sets then
    invalid_arg "Fmm.of_table: wrong number of rows";
  Array.iter
    (fun row ->
      if Array.length row <> config.Cache.Config.ways + 1 then
        invalid_arg "Fmm.of_table: wrong row width";
      if row.(0) <> 0 then invalid_arg "Fmm.of_table: column 0 must be zero";
      for f = 1 to config.Cache.Config.ways do
        if row.(f) < row.(f - 1) then invalid_arg "Fmm.of_table: non-monotone row"
      done)
    table;
  let provenance =
    match provenance with
    | None ->
      Array.init config.Cache.Config.sets (fun _ ->
          Array.make (config.Cache.Config.ways + 1) Rung.Exact)
    | Some p ->
      if
        Array.length p <> config.Cache.Config.sets
        || Array.exists (fun r -> Array.length r <> config.Cache.Config.ways + 1) p
      then invalid_arg "Fmm.of_table: provenance shape mismatch";
      Array.map Array.copy p
  in
  { misses = Array.map Array.copy table; provenance; errors; config; mechanism }

let misses t ~set ~faulty =
  if set < 0 || set >= Array.length t.misses then invalid_arg "Fmm.misses: bad set";
  if faulty < 0 || faulty > t.config.Cache.Config.ways then invalid_arg "Fmm.misses: bad count";
  t.misses.(set).(faulty)

let provenance t ~set ~faulty =
  if set < 0 || set >= Array.length t.provenance then invalid_arg "Fmm.provenance: bad set";
  if faulty < 0 || faulty > t.config.Cache.Config.ways then
    invalid_arg "Fmm.provenance: bad count";
  t.provenance.(set).(faulty)

let worst_rung t =
  Array.fold_left
    (fun acc row -> Array.fold_left Rung.worst acc row)
    Rung.Exact t.provenance

let degraded_cells t =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc r -> if Rung.equal r Rung.Exact then acc else acc + 1) acc row)
    0 t.provenance

let errors t = t.errors
let config t = t.config
let mechanism t = t.mechanism
let table t = Array.map Array.copy t.misses

let max_penalty_misses t =
  let last =
    match t.mechanism with
    | Mechanism.Reliable_way -> t.config.Cache.Config.ways - 1
    | _ -> t.config.Cache.Config.ways
  in
  Array.fold_left (fun acc row -> acc + row.(last)) 0 t.misses

let pp fmt t =
  let ways = t.config.Cache.Config.ways in
  Format.fprintf fmt "      ";
  for f = 1 to ways do
    Format.fprintf fmt "%8s" (Printf.sprintf "%d faulty" f)
  done;
  Format.fprintf fmt "@.";
  Array.iteri
    (fun s row ->
      Format.fprintf fmt "set %2d" s;
      for f = 1 to ways do
        Format.fprintf fmt "%8d" row.(f)
      done;
      Format.fprintf fmt "@.")
    t.misses

(* --- canonical serialization --------------------------------------------

   Payload only: geometry and mechanism live in the store key, so the
   decoder receives them as trusted context and revalidates the payload
   against them (shape, zero column, monotone rows, known provenance
   tags) — a decoded map upholds exactly the invariants [of_table]
   enforces on a fresh one. *)

let to_wire t =
  let w = Store.Wire.writer () in
  Store.Wire.put_int w (Array.length t.misses);
  Store.Wire.put_int w t.config.Cache.Config.ways;
  Array.iter (Store.Wire.put_int_array w) t.misses;
  Array.iter
    (fun row -> Store.Wire.put_int_array w (Array.map Rung.to_tag row))
    t.provenance;
  Store.Wire.put_int w (List.length t.errors);
  List.iter
    (fun (set, e) ->
      Store.Wire.put_int w set;
      Store.Wire.put_string w (E.category e);
      Store.Wire.put_string w (E.message e))
    t.errors;
  Store.Wire.contents w

let of_wire ~config ~mechanism data =
  let n_sets = config.Cache.Config.sets and ways = config.Cache.Config.ways in
  Store.Wire.decode data (fun r ->
      if Store.Wire.get_int r <> n_sets then Store.Wire.malformed "Fmm.of_wire: set count";
      if Store.Wire.get_int r <> ways then Store.Wire.malformed "Fmm.of_wire: way count";
      let misses = Array.init n_sets (fun _ -> Store.Wire.get_int_array r) in
      let provenance =
        Array.init n_sets (fun _ ->
            Array.map
              (fun tag ->
                match Rung.of_tag tag with
                | Some rung -> rung
                | None -> Store.Wire.malformed "Fmm.of_wire: unknown provenance tag")
              (Store.Wire.get_int_array r))
      in
      let n_errors = Store.Wire.get_int r in
      if n_errors < 0 || n_errors > n_sets then
        Store.Wire.malformed "Fmm.of_wire: implausible error count";
      let errors =
        List.init n_errors (fun _ ->
            let set = Store.Wire.get_int r in
            let category = Store.Wire.get_string r in
            let message = Store.Wire.get_string r in
            if set < 0 || set >= n_sets then Store.Wire.malformed "Fmm.of_wire: error set";
            match E.of_category category message with
            | Some e -> (set, e)
            | None -> Store.Wire.malformed "Fmm.of_wire: unknown error category")
      in
      match of_table ~config ~mechanism ~provenance ~errors misses with
      | t -> t
      | exception Invalid_argument msg -> Store.Wire.malformed msg)

(** The Fault Miss Map (paper Fig. 1a and Section II-C).

    [misses t ~set ~faulty] upper-bounds the number of {e fault-induced}
    additional misses the program can suffer when [faulty] blocks of
    cache set [set] are disabled, relative to the fault-free analysis.
    Entries are in misses; multiply by the configuration's miss penalty
    for cycles.

    Mechanism variants (Section III-B):
    - {b RW}: the all-faulty column can never materialise (the reliable
      way survives); it is stored as the [W-1] column's bound would
      dictate but is simply never weighted by the penalty distribution.
    - {b SRB}: the all-faulty column is recomputed with the references
      proven always-hit by the SRB analysis removed.

    Every cell additionally carries the {!Robust.Rung.t} of the
    degradation ladder that produced it, so a budget-starved run is
    distinguishable from an exact one without losing soundness: a
    non-[Exact] cell is looser, never smaller, than the exact value. *)

type t

val compute :
  graph:Cfg.Graph.t ->
  loops:Cfg.Loop.loop list ->
  config:Cache.Config.t ->
  mechanism:Mechanism.t ->
  ?engine:[ `Path | `Ilp ] ->
  ?exact:bool ->
  ?jobs:int ->
  ?impl:[ `Naive | `Sliced ] ->
  ?ctx:Cache_analysis.Context.t ->
  ?budget:Robust.Budget.t ->
  ?baseline:Cache_analysis.Chmc.t ->
  unit ->
  t
(** Runs the fault-free analysis once, then one degraded analysis +
    miss-delta bound per (referenced set, fault count). [engine] picks
    the bounding engine (tree-based path engine by default, or the IPET
    ILP); [exact] selects branch-and-bound when the ILP engine is
    used. [jobs] (default 1) fans the independent per-set rows out
    across that many OCaml domains; the resulting table is bit-identical
    for every value of [jobs].

    [impl] selects the degraded-analysis engine. [`Sliced] (default)
    runs, per set, a condensed fixpoint over only the nodes referencing
    that set ({!Cache_analysis.Slice}), reuses the previous fault
    count's result to skip analyses that provably cannot change, and
    stops re-analysing once the set's classification saturates to
    all-always-miss. [`Naive] re-runs the whole-CFG
    {!Cache_analysis.Chmc.analyze} per (set, fault count) — the
    reference implementation. Both produce bit-identical tables
    (pinned by the differential tests).

    [ctx] supplies a precomputed {!Cache_analysis.Context.t} for
    [graph]/[loops]/[config]; built on the fly when absent.

    [budget] bounds the work ({!Robust.Budget.t}): ILP node caps flow
    into the per-cell solver, whose exhaustion degrades that cell down
    the Exact -> Relaxed -> Structural ladder; the deadline is also
    checked between per-set rows, and a row whose worker crashes or
    starts past the deadline falls back to a constant
    {!Ipet.Delta.structural_extra_misses} row tagged [Structural], with
    the cause recorded in {!errors}. [compute] never raises on budget
    exhaustion or worker crashes — the result is merely looser.

    [baseline] supplies the precomputed fault-free CHMC for
    [graph]/[loops]/[config] (the same value
    [Cache_analysis.Chmc.analyze ~ctx ~graph ~loops ~config ()]
    returns); computed on the fly when absent. The analysis is
    deterministic, so passing it is a pure recompute-skip. *)

val compute_multi :
  graph:Cfg.Graph.t ->
  loops:Cfg.Loop.loop list ->
  config:Cache.Config.t ->
  mechanisms:Mechanism.t list ->
  ?engine:[ `Path | `Ilp ] ->
  ?exact:bool ->
  ?jobs:int ->
  ?impl:[ `Naive | `Sliced ] ->
  ?ctx:Cache_analysis.Context.t ->
  ?budget:Robust.Budget.t ->
  ?baseline:Cache_analysis.Chmc.t ->
  unit ->
  (Mechanism.t * t) list
(** One map per requested mechanism (in [mechanisms] order, duplicates
    allowed), sharing everything that is mechanism-independent: the
    fault-free baseline, the SRB reachability analysis (run once iff
    SRB is requested), and — the expensive part — the whole
    [f = 1 .. W-1] prefix of every per-set row, whose degraded
    analyses, signature memo and delta bounds never consult the
    mechanism. Only the dead-set column (f = W) is evaluated per
    mechanism: RW copies column W-1, None/SRB classify the dead set.

    Each returned map is bit-identical to the map a standalone
    {!compute} call with the same parameters produces — pinned by the
    differential tests — so [compute_multi] is a pure cost optimisation
    ([k] mechanisms for roughly the price of one). Budget/crash
    fallback matches {!compute}, with one difference in failure
    granularity: the shared prefix means a crashed or starved set
    degrades that set's row for {e every} mechanism. *)

val of_table :
  config:Cache.Config.t ->
  mechanism:Mechanism.t ->
  ?provenance:Robust.Rung.t array array ->
  ?errors:(int * Robust.Pwcet_error.t) list ->
  int array array ->
  t
(** Wraps an explicit [sets x (ways+1)] miss table (column 0 must be
    zero, rows monotone) — for worked examples and tests. [provenance]
    defaults to all-[Exact]; when given it must have the table's shape.
    @raise Invalid_argument on bad dimensions or non-monotone rows. *)

val misses : t -> set:int -> faulty:int -> int
(** @raise Invalid_argument outside [0 <= set < S], [0 <= faulty <= W]. *)

val provenance : t -> set:int -> faulty:int -> Robust.Rung.t
(** Which degradation rung produced the cell.
    @raise Invalid_argument outside [0 <= set < S], [0 <= faulty <= W]. *)

val worst_rung : t -> Robust.Rung.t
(** The loosest rung appearing anywhere in the map — [Exact] iff no
    cell degraded. *)

val degraded_cells : t -> int
(** Number of cells whose rung is not [Exact]. *)

val errors : t -> (int * Robust.Pwcet_error.t) list
(** Per-set failures (worker crash, deadline) that forced the whole row
    onto the structural fallback, in set order. Empty for an exact run. *)

val config : t -> Cache.Config.t
val mechanism : t -> Mechanism.t

val table : t -> int array array
(** A copy of the full [sets x (ways+1)] miss table — for bit-exact
    comparisons between analysis configurations (e.g. sequential vs
    parallel) and for serialisation. *)

val max_penalty_misses : t -> int
(** Sum over sets of the worst column — the support ceiling of the total
    penalty distribution. *)

val pp : Format.formatter -> t -> unit
(** The tabular rendering of Fig. 1a. *)

val to_wire : t -> string
(** Canonical binary payload (table, provenance, recorded errors) for
    the artifact store — deterministic byte-for-byte in the map's
    contents. The geometry and mechanism are {e not} embedded; they are
    part of the store key, and {!of_wire} revalidates the payload
    against them. *)

val of_wire :
  config:Cache.Config.t -> mechanism:Mechanism.t -> string -> (t, string) result
(** Inverse of {!to_wire} under the given key context. Every structural
    invariant ({!of_table}'s shape, zero column, monotonicity — plus
    provenance tags and error categories) is revalidated, so a stored
    payload that decodes is as trustworthy as a fresh computation. *)

(* The per-set way PMF depends only on (ways, pbf, mechanism) — never on
   the set — so callers batching over sets compute it once and pass it
   down. *)
let way_pmf ~fmm ~pbf =
  let ways = (Fmm.config fmm).Cache.Config.ways in
  match Fmm.mechanism fmm with
  | Mechanism.Reliable_way -> Fault.Model.way_distribution_rw ~ways ~pbf
  | Mechanism.No_protection | Mechanism.Shared_reliable_buffer ->
    Fault.Model.way_distribution ~ways ~pbf

let set_distribution ?pmf ~fmm ~pbf ~set () =
  let config = Fmm.config fmm in
  let penalty = Cache.Config.miss_penalty config in
  let pmf = match pmf with Some p -> p | None -> way_pmf ~fmm ~pbf in
  let points = ref [] in
  Array.iteri
    (fun w p -> if p > 0.0 then points := (Fmm.misses fmm ~set ~faulty:w * penalty, p) :: !points)
    pmf;
  Prob.Dist.of_points !points

let total_distribution ?max_points ?(jobs = 1) ?(impl = `Grouped) ~fmm ~pbf () =
  let config = Fmm.config fmm in
  let ways = config.Cache.Config.ways in
  (* Rows are monotone with a zero first column, so a zero last column
     means the whole row is zero: the set contributes the identity
     distribution (point 0) and can be skipped — on a 64-set cache with
     a handful of referenced sets that avoids dozens of no-op
     convolutions without changing the result. *)
  let active =
    List.filter
      (fun set -> Fmm.misses fmm ~set ~faulty:ways <> 0)
      (List.init config.Cache.Config.sets Fun.id)
  in
  match impl with
  | `Reference ->
    (* The pre-overhaul engine: one distribution per active set (each
       recomputing the way PMF), reduced through a sequential pairwise
       tree with the hash-table convolution kernel. Kept for
       differential testing and the BENCH_dist comparison. *)
    let dists =
      Parallel.Pool.map ~jobs
        (fun set -> set_distribution ~fmm ~pbf ~set ())
        (Array.of_list active)
    in
    Prob.Dist.convolve_all ~impl:`Reference ?max_points (Array.to_list dists)
  | `Grouped ->
    (* Equal FMM rows yield equal distributions (the distribution is a
       function of the row and the shared PMF alone), and on wide caches
       most referenced sets share a handful of row shapes. Group the
       active sets by row in first-seen order (deterministic), build
       each group's distribution once, raise it to the multiplicity by
       squaring, and reduce the per-group results through the pairwise
       tree with per-layer fan-out — ~log-many convolutions where the
       reference does one per set. *)
    let pmf = way_pmf ~fmm ~pbf in
    let groups = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun set ->
        let row = Array.init (ways + 1) (fun w -> Fmm.misses fmm ~set ~faulty:w) in
        match Hashtbl.find_opt groups row with
        | Some count -> incr count
        | None ->
          let count = ref 1 in
          Hashtbl.add groups row count;
          order := (set, count) :: !order)
      active;
    let powed =
      Parallel.Pool.map ~jobs
        (fun (set, count) ->
          Prob.Dist.convolve_pow ?max_points (set_distribution ~pmf ~fmm ~pbf ~set ()) !count)
        (Array.of_list (List.rev !order))
    in
    (* Leaf order is free (only quantile-level agreement with the
       reference is promised), and it drives the reduction cost: the
       dense convolution kernel is O(n * m), so a balanced split of the
       final support is the worst case (big x big at the root). Sorting
       the leaves largest-first clusters the heavy groups into one
       subtree, making every reduction step big x small. Deterministic
       (ties broken by position, independent of [jobs]). *)
    let decorated = Array.mapi (fun i d -> (i, d)) powed in
    Array.sort
      (fun (i, a) (j, b) ->
        let c = compare (Prob.Dist.size b) (Prob.Dist.size a) in
        if c <> 0 then c else compare i j)
      decorated;
    (match
       Parallel.Pool.reduce_pairs ~jobs
         (fun a b -> Prob.Dist.convolve ?max_points a b)
         (Array.map snd decorated)
     with
    | Some d -> d
    | None -> Prob.Dist.point 0)

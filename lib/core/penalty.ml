let set_distribution ~fmm ~pbf ~set =
  let config = Fmm.config fmm in
  let ways = config.Cache.Config.ways in
  let penalty = Cache.Config.miss_penalty config in
  let pmf =
    match Fmm.mechanism fmm with
    | Mechanism.Reliable_way -> Fault.Model.way_distribution_rw ~ways ~pbf
    | Mechanism.No_protection | Mechanism.Shared_reliable_buffer ->
      Fault.Model.way_distribution ~ways ~pbf
  in
  let points = ref [] in
  Array.iteri
    (fun w p -> if p > 0.0 then points := (Fmm.misses fmm ~set ~faulty:w * penalty, p) :: !points)
    pmf;
  Prob.Dist.of_points !points

let total_distribution ?max_points ?(jobs = 1) ~fmm ~pbf () =
  let config = Fmm.config fmm in
  let ways = config.Cache.Config.ways in
  (* Rows are monotone with a zero first column, so a zero last column
     means the whole row is zero: the set contributes the identity
     distribution (point 0) and can be skipped — on a 64-set cache with
     a handful of referenced sets that avoids dozens of no-op
     convolutions without changing the result. *)
  let active =
    List.filter
      (fun set -> Fmm.misses fmm ~set ~faulty:ways <> 0)
      (List.init config.Cache.Config.sets Fun.id)
  in
  let dists =
    Parallel.Pool.map ~jobs
      (fun set -> set_distribution ~fmm ~pbf ~set)
      (Array.of_list active)
  in
  Prob.Dist.convolve_all ?max_points (Array.to_list dists)

(** Fault-induced penalty distributions (paper Fig. 1b).

    The per-set distribution has at most [W+1] points: penalty
    [FMM[s][w] * miss_penalty] cycles with probability [pwf(w)]
    (eq. 2, or eq. 3 under RW, where the all-faulty point disappears).
    Sets fail independently, so the program-level distribution is the
    convolution across sets. *)

val way_pmf : fmm:Fmm.t -> pbf:float -> float array
(** The per-set faulty-way PMF (eq. 2, or eq. 3 under RW). Depends only
    on the configuration's associativity, [pbf] and the mechanism —
    never on the set — so batch callers compute it once and pass it to
    {!set_distribution}. *)

val set_distribution :
  ?pmf:float array -> fmm:Fmm.t -> pbf:float -> set:int -> unit -> Prob.Dist.t
(** The penalty distribution of one cache set. [pmf] (defaults to
    {!way_pmf}[ ~fmm ~pbf]) lets callers share one PMF across sets. *)

val total_distribution :
  ?max_points:int ->
  ?jobs:int ->
  ?impl:[ `Grouped | `Reference ] ->
  fmm:Fmm.t ->
  pbf:float ->
  unit ->
  Prob.Dist.t
(** Convolution over all sets. All-zero FMM rows (never-referenced
    sets) contribute the identity distribution and are skipped — the
    result is unchanged. [jobs] (default 1) fans the independent
    per-group builds and each reduction layer's convolutions out across
    that many domains; the result is bit-identical for every value.

    [impl] selects the engine. [`Grouped] (default) computes the way
    PMF once, groups sets with equal FMM rows (equal rows imply equal
    distributions), raises each group's distribution to its
    multiplicity with {!Prob.Dist.convolve_pow}, and reduces the
    per-group results through a balanced pairwise tree with per-layer
    parallel fan-out. [`Reference] is the pre-overhaul engine — one
    distribution per set, sequential pairwise tree, hash-table
    convolution kernel — kept for differential testing and
    benchmarking. Both are conservative; their pWCET quantiles agree on
    every registry benchmark (pinned by test/test_dist_engine.ml). *)

(** Fault-induced penalty distributions (paper Fig. 1b).

    The per-set distribution has at most [W+1] points: penalty
    [FMM[s][w] * miss_penalty] cycles with probability [pwf(w)]
    (eq. 2, or eq. 3 under RW, where the all-faulty point disappears).
    Sets fail independently, so the program-level distribution is the
    convolution across sets. *)

val set_distribution : fmm:Fmm.t -> pbf:float -> set:int -> Prob.Dist.t
(** The penalty distribution of one cache set. *)

val total_distribution :
  ?max_points:int -> ?jobs:int -> fmm:Fmm.t -> pbf:float -> unit -> Prob.Dist.t
(** Convolution over all sets, as a balanced pairwise reduction.
    All-zero FMM rows (never-referenced sets) contribute the identity
    distribution and are skipped — the result is unchanged. [jobs]
    (default 1) builds the per-set distributions on that many
    domains. *)

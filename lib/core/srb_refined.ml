module Chmc = Cache_analysis.Chmc
module Dist = Prob.Dist

type t = {
  term0 : Dist.t;  (* joint sub-distribution: no dead set *)
  term1 : Dist.t list;  (* one per potential dead set *)
  term2 : Dist.t list;  (* one per potential dead-set pair *)
  fallback : Dist.t;  (* the paper's conservative SRB distribution *)
  p_three_or_more : float;
  excl_misses : int array;
}

let compute ~graph ~loops ~config ~pbf ?(engine = `Path) ?(max_points = 65536) () =
  let n_sets = config.Cache.Config.sets and ways = config.Cache.Config.ways in
  let penalty_unit = Cache.Config.miss_penalty config in
  let pwf = Fault.Model.way_distribution ~ways ~pbf in
  let p_dead = pwf.(ways) in
  let ctx = Cache_analysis.Context.make ~graph ~loops ~config in
  let baseline = Chmc.analyze ~ctx ~graph ~loops ~config () in
  let fmm_none =
    Fmm.compute ~graph ~loops ~config ~mechanism:Mechanism.No_protection ~engine ~ctx ()
  in
  let fmm_srb =
    Fmm.compute ~graph ~loops ~config ~mechanism:Mechanism.Shared_reliable_buffer ~engine ~ctx ()
  in
  let used = Array.make n_sets false in
  Chmc.fold_refs
    (fun ~node ~offset _ () -> used.(Chmc.cache_set baseline ~node ~offset) <- true)
    baseline ();
  (* Miss bound for the references of [sets] when exactly those sets are
     dead: the exclusive SRB analysis routes only them through the
     buffer, preserving their temporal locality against interleaved
     accesses to healthy sets. *)
  let exclusive_misses sets =
    if not (List.exists (fun s -> used.(s)) sets) then 0
    else begin
      let srb = Cache_analysis.Srb_analysis.analyze_exclusive ~ctx ~graph ~config ~sets () in
      let degraded ~node ~offset =
        if Cache_analysis.Srb_analysis.always_hit srb ~node ~offset then Chmc.Always_hit
        else Chmc.Always_miss
      in
      Ipet.Delta.extra_misses ~graph ~loops ~config ~baseline ~degraded ~sets ~ctx ~engine ()
    end
  in
  let excl_misses = Array.init n_sets (fun set -> exclusive_misses [ set ]) in
  (* Per-set sub-distribution over the f < W columns. *)
  let dist_lt set =
    let points = ref [] in
    for w = 0 to ways - 1 do
      if pwf.(w) > 0.0 then
        points := (Fmm.misses fmm_none ~set ~faulty:w * penalty_unit, pwf.(w)) :: !points
    done;
    Dist.of_sub_points !points
  in
  let all_lt = Array.init n_sets dist_lt in
  (* Prefix/suffix convolutions make each leave-k-out product cheap. *)
  let prefix = Array.make (n_sets + 1) (Dist.point 0) in
  for s = 0 to n_sets - 1 do
    prefix.(s + 1) <- Dist.convolve ~max_points prefix.(s) all_lt.(s)
  done;
  let suffix = Array.make (n_sets + 1) (Dist.point 0) in
  for s = n_sets - 1 downto 0 do
    suffix.(s) <- Dist.convolve ~max_points suffix.(s + 1) all_lt.(s)
  done;
  let term0 = prefix.(n_sets) in
  let all_but s = Dist.convolve ~max_points prefix.(s) suffix.(s + 1) in
  let all_but_pair s1 s2 =
    (* s1 < s2: prefix up to s1, the middle range, suffix after s2. *)
    let mid = ref prefix.(s1) in
    for s = s1 + 1 to s2 - 1 do
      mid := Dist.convolve ~max_points !mid all_lt.(s)
    done;
    Dist.convolve ~max_points !mid suffix.(s2 + 1)
  in
  let term1 =
    List.init n_sets (fun dead ->
        Dist.scale p_dead
          (Dist.convolve ~max_points (all_but dead)
             (Dist.point (excl_misses.(dead) * penalty_unit))))
  in
  let p_dead2 = p_dead *. p_dead in
  let term2 = ref [] in
  for s1 = 0 to n_sets - 1 do
    for s2 = s1 + 1 to n_sets - 1 do
      if p_dead2 > 0.0 then begin
        let misses = exclusive_misses [ s1; s2 ] in
        term2 :=
          Dist.scale p_dead2
            (Dist.convolve ~max_points (all_but_pair s1 s2) (Dist.point (misses * penalty_unit)))
          :: !term2
      end
    done
  done;
  let fallback = Penalty.total_distribution ~max_points ~fmm:fmm_srb ~pbf () in
  let p_three_or_more = Numeric.Binomial.survival ~n:n_sets ~p:p_dead 2 in
  { term0; term1; term2 = !term2; fallback; p_three_or_more; excl_misses }

let exceedance t x =
  let acc = Numeric.Kahan.create () in
  Numeric.Kahan.add acc (Dist.exceedance t.term0 x);
  List.iter (fun d -> Numeric.Kahan.add acc (Dist.exceedance d x)) t.term1;
  List.iter (fun d -> Numeric.Kahan.add acc (Dist.exceedance d x)) t.term2;
  Numeric.Kahan.add acc (Float.min t.p_three_or_more (Dist.exceedance t.fallback x));
  Numeric.Kahan.total acc

let quantile t ~target =
  if not (Float.is_finite target) || target < 0.0 then
    invalid_arg "Srb_refined.quantile: target must be finite and non-negative";
  (* The bound is a decreasing step function whose steps lie on the
     union of the terms' supports. *)
  let candidates =
    List.concat_map
      (fun d -> List.map fst (Dist.support d))
      ((t.term0 :: t.fallback :: t.term1) @ t.term2)
    |> List.sort_uniq compare
  in
  if exceedance t 0 <= target then 0
  else begin
    let rec scan = function
      | [] -> (match List.rev candidates with x :: _ -> x | [] -> 0)
      | x :: rest -> if exceedance t x <= target then x else scan rest
    in
    scan candidates
  end

let exclusive_dead_set_misses t = Array.copy t.excl_misses

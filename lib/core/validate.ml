type campaign_check = {
  mechanism : Mechanism.t;
  samples : int;
  seed : int;
  jobs : int;
  engine : [ `Replay | `Emulate ];
  wcet_ff : int;
  result : Sim.Campaign.result;
  elapsed_s : float;
  samples_per_sec : float;
  curve_points : int;
  max_gap : float;
  curve_ok : bool;
  bound_ok : bool;
  digest : string;
}

let ok c = c.curve_ok && c.bound_ok

let sim_mechanism : Mechanism.t -> Sim.Campaign.mechanism = function
  | Mechanism.No_protection -> Sim.Campaign.No_protection
  | Mechanism.Reliable_way -> Sim.Campaign.Reliable_way
  | Mechanism.Shared_reliable_buffer -> Sim.Campaign.Shared_reliable_buffer

let spec_of ~program ~data ~(est : Estimator.estimate) ~samples ~seed ~jobs ~engine ~with_bound =
  {
    Sim.Campaign.program;
    data;
    config = est.Estimator.task.Estimator.config;
    mechanism = sim_mechanism est.Estimator.mechanism;
    pbf = est.Estimator.pbf;
    samples;
    seed;
    jobs;
    engine;
    bound =
      (if with_bound then
         Some
           {
             Sim.Campaign.bound_base = est.Estimator.task.Estimator.wcet_ff;
             bound_misses = Fmm.table est.Estimator.fmm;
           }
       else None);
  }

(* Empirical vs analytic exceedance at every observed execution time.
   Both sides use the weak form P(X >= x): the analytic distribution is
   [wcet_ff + penalty], so P(X >= x) = P(penalty > x - 1 - wcet_ff) at
   the integer support (the Audit.check_dominance convention). The
   empirical frequency is allowed the Monte-Carlo binomial noise slack
   (5 sigma + 1/n) Audit.monte_carlo already uses. *)
let compare_curve ~(est : Estimator.estimate) (r : Sim.Campaign.result) =
  let wcet_ff = est.Estimator.task.Estimator.wcet_ff in
  let n = float_of_int r.Sim.Campaign.samples in
  let points = ref 0 in
  let max_gap = ref neg_infinity in
  let all_ok = ref true in
  let above = ref 0 in
  let counts = r.Sim.Campaign.counts in
  for d = Array.length counts - 1 downto 0 do
    above := !above + counts.(d);
    if counts.(d) > 0 then begin
      let x = Sim.Campaign.cycles_of_bucket r d in
      let empirical = float_of_int !above /. n in
      let analytic = Prob.Dist.exceedance est.Estimator.penalty (x - 1 - wcet_ff) in
      let noise = (5.0 *. sqrt (Float.max analytic (1.0 /. n) /. n)) +. (1.0 /. n) in
      incr points;
      let gap = empirical -. analytic in
      if gap > !max_gap then max_gap := gap;
      if empirical > analytic +. noise then all_ok := false
    end
  done;
  (!points, (if !points = 0 then 0.0 else !max_gap), !all_ok)

let check ~program ~data ~est ~samples ~seed ~jobs ?(engine = `Replay) () =
  let spec = spec_of ~program ~data ~est ~samples ~seed ~jobs ~engine ~with_bound:true in
  let t0 = Robust.Budget.now () in
  let campaign = Sim.Campaign.prepare spec in
  let result = Sim.Campaign.run campaign in
  let elapsed = Float.max 1e-9 (Robust.Budget.now () -. t0) in
  let curve_points, max_gap, curve_ok = compare_curve ~est result in
  {
    mechanism = est.Estimator.mechanism;
    samples;
    seed;
    jobs;
    engine;
    wcet_ff = est.Estimator.task.Estimator.wcet_ff;
    result;
    elapsed_s = elapsed;
    samples_per_sec = float_of_int samples /. elapsed;
    curve_points;
    max_gap;
    curve_ok;
    bound_ok = result.Sim.Campaign.bound_violations = 0;
    digest = Sim.Campaign.digest result;
  }

type speedup = {
  benchmark : string;
  sp_sets : int;
  sp_samples : int;
  baseline_s : float;
  batched_s : float;
  baseline_samples_per_sec : float;
  batched_samples_per_sec : float;
  factor : float;
  crosscheck_samples : int;
  cycles_identical : bool;
  engines_identical : bool;
}

(* The pre-existing simulation path: Isa.Machine.run with a concrete
   cache simulator as fetch oracle, one fresh simulator per sampled
   fault pattern. Fault-way positions are immaterial under LRU, so the
   count-derived map gives the same law the batched engine samples. *)
let baseline_cycles ~program ~data ~(est : Estimator.estimate) campaign counts ~sample =
  let config = est.Estimator.task.Estimator.config in
  Sim.Campaign.sample_faulty_counts campaign ~sample counts;
  let fault_map = Cache.Fault_map.of_faulty_counts config counts in
  let fetch =
    match est.Estimator.mechanism with
    | Mechanism.No_protection | Mechanism.Reliable_way ->
      Cache.Lru.latency_oracle (Cache.Lru.create ~fault_map config)
    | Mechanism.Shared_reliable_buffer ->
      Cache.Reliable.Srb.latency_oracle (Cache.Reliable.Srb.create ~fault_map config)
  in
  (Isa.Machine.run ~memory_init:data ~fetch program).Isa.Machine.cycles

let measure_speedup ~program ~data ~est ~benchmark ~samples ?(crosscheck = 100) () =
  let crosscheck = min crosscheck samples in
  let seed = 42 and jobs = 1 in
  let spec = spec_of ~program ~data ~est ~samples ~seed ~jobs ~engine:`Replay ~with_bound:false in
  (* Batched: preparation (trace extraction + tables) is part of the
     measured cost — it is what a user of the engine pays. *)
  let t0 = Robust.Budget.now () in
  let campaign = Sim.Campaign.prepare spec in
  let (_ : Sim.Campaign.result) = Sim.Campaign.run campaign in
  let batched_s = Float.max 1e-9 (Robust.Budget.now () -. t0) in
  let config = est.Estimator.task.Estimator.config in
  let counts = Array.make config.Cache.Config.sets 0 in
  let identical = ref true in
  let t1 = Robust.Budget.now () in
  for sample = 0 to samples - 1 do
    let cycles = baseline_cycles ~program ~data ~est campaign counts ~sample in
    if sample < crosscheck && cycles <> Sim.Campaign.replay_cycles campaign ~sample then
      identical := false
  done;
  let baseline_s = Float.max 1e-9 (Robust.Budget.now () -. t1) in
  (* Engine cross-check: full emulation and trace replay must agree on
     every bit of a (smaller) campaign's result. *)
  let engines_identical =
    let small n engine =
      let spec =
        spec_of ~program ~data ~est ~samples:n ~seed ~jobs ~engine ~with_bound:false
      in
      Sim.Campaign.digest (Sim.Campaign.run (Sim.Campaign.prepare spec))
    in
    let n = max 1 crosscheck in
    String.equal (small n `Replay) (small n `Emulate)
  in
  {
    benchmark;
    sp_sets = config.Cache.Config.sets;
    sp_samples = samples;
    baseline_s;
    batched_s;
    baseline_samples_per_sec = float_of_int samples /. baseline_s;
    batched_samples_per_sec = float_of_int samples /. batched_s;
    factor = baseline_s /. batched_s;
    crosscheck_samples = crosscheck;
    cycles_identical = !identical;
    engines_identical;
  }

let engine_name = function `Replay -> "replay" | `Emulate -> "emulate"

let write_json ~path ~git_commit ~(config : Cache.Config.t) ~pfail ~speedup ~rows =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema_version\": 1,\n";
  p "  \"git_commit\": %S,\n" git_commit;
  p "  \"sets\": %d,\n" config.Cache.Config.sets;
  p "  \"ways\": %d,\n" config.Cache.Config.ways;
  p "  \"line_bytes\": %d,\n" config.Cache.Config.line_bytes;
  p "  \"hit_latency\": %d,\n" config.Cache.Config.hit_latency;
  p "  \"miss_latency\": %d,\n" config.Cache.Config.miss_latency;
  p "  \"pfail\": %.17g,\n" pfail;
  (match speedup with
  | None -> p "  \"speedup\": null,\n"
  | Some s ->
    p "  \"speedup\": {\n";
    p "    \"benchmark\": %S,\n" s.benchmark;
    p "    \"sets\": %d,\n" s.sp_sets;
    p "    \"samples\": %d,\n" s.sp_samples;
    p "    \"baseline_s\": %.6f,\n" s.baseline_s;
    p "    \"batched_s\": %.6f,\n" s.batched_s;
    p "    \"baseline_samples_per_sec\": %.1f,\n" s.baseline_samples_per_sec;
    p "    \"batched_samples_per_sec\": %.1f,\n" s.batched_samples_per_sec;
    p "    \"speedup\": %.2f,\n" s.factor;
    p "    \"crosscheck_samples\": %d,\n" s.crosscheck_samples;
    p "    \"cycles_identical\": %b,\n" s.cycles_identical;
    p "    \"engines_identical\": %b\n" s.engines_identical;
    p "  },\n");
  p "  \"campaigns\": [";
  List.iteri
    (fun i (benchmark, c) ->
      let r = c.result in
      if i > 0 then p ",";
      p "\n    {\n";
      p "      \"benchmark\": %S,\n" benchmark;
      p "      \"mechanism\": %S,\n" (Mechanism.short_name c.mechanism);
      p "      \"engine\": %S,\n" (engine_name c.engine);
      p "      \"samples\": %d,\n" c.samples;
      p "      \"seed\": %d,\n" c.seed;
      p "      \"jobs\": %d,\n" c.jobs;
      p "      \"elapsed_s\": %.6f,\n" c.elapsed_s;
      p "      \"samples_per_sec\": %.1f,\n" c.samples_per_sec;
      p "      \"accesses\": %d,\n" r.Sim.Campaign.accesses;
      p "      \"wcet_ff\": %d,\n" c.wcet_ff;
      p "      \"fault_free_cycles_sim\": %d,\n" r.Sim.Campaign.fault_free_cycles;
      p "      \"fault_free_misses\": %d,\n" r.Sim.Campaign.fault_free_misses;
      p "      \"min_cycles\": %d,\n" r.Sim.Campaign.min_cycles;
      p "      \"max_cycles\": %d,\n" r.Sim.Campaign.max_cycles;
      p "      \"mean_cycles\": %.3f,\n" r.Sim.Campaign.mean_cycles;
      p "      \"curve_points\": %d,\n" c.curve_points;
      p "      \"max_gap\": %.6g,\n" c.max_gap;
      p "      \"curve_ok\": %b,\n" c.curve_ok;
      p "      \"bound_violations\": %d,\n" r.Sim.Campaign.bound_violations;
      p "      \"srb_merged_replays\": %d,\n" r.Sim.Campaign.srb_merged_replays;
      p "      \"digest\": %S\n" c.digest;
      p "    }")
    rows;
  p "\n  ]\n}\n";
  close_out oc

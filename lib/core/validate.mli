(** Emulator-scale statistical validation of the analytic pWCET.

    Bridges the analytic pipeline ({!Estimator}) and the batched
    fault-injection engine ([Sim.Campaign]): runs a Monte-Carlo
    campaign under an estimate's fault law, then holds the empirical
    execution-time exceedance against the analytic curve at every
    observed value, and every individual sample against its own
    per-pattern FMM bound. Shared by [pwcet_tool validate], the
    [sim-json] bench section and the CI gate so all three report the
    same numbers. *)

type campaign_check = {
  mechanism : Mechanism.t;
  samples : int;
  seed : int;
  jobs : int;
  engine : [ `Replay | `Emulate ];
  wcet_ff : int;
  result : Sim.Campaign.result;
  elapsed_s : float;
  samples_per_sec : float;
  curve_points : int;  (** observed values compared against the curve *)
  max_gap : float;
      (** max over observed values of empirical - analytic exceedance
          (negative when the analytic curve dominates outright) *)
  curve_ok : bool;
      (** empirical <= analytic + binomial sampling noise everywhere *)
  bound_ok : bool;  (** no sample exceeded its per-pattern FMM bound *)
  digest : string;
}

val ok : campaign_check -> bool

val sim_mechanism : Mechanism.t -> Sim.Campaign.mechanism

val check :
  program:Isa.Program.t ->
  data:(int * int) list ->
  est:Estimator.estimate ->
  samples:int ->
  seed:int ->
  jobs:int ->
  ?engine:[ `Replay | `Emulate ] ->
  unit ->
  campaign_check
(** Runs one campaign (default engine [`Replay]) with the estimate's
    FMM table as per-sample bound, and compares curves. The empirical
    frequency at an observed value may exceed the analytic bound by
    binomial sampling noise (the [Audit.monte_carlo] 5-sigma
    convention); anything beyond that fails [curve_ok]. *)

type speedup = {
  benchmark : string;
  sp_sets : int;
  sp_samples : int;
  baseline_s : float;
  batched_s : float;
  baseline_samples_per_sec : float;
  batched_samples_per_sec : float;
  factor : float;
  crosscheck_samples : int;
  cycles_identical : bool;
      (** baseline [Isa.Machine.run]+oracle cycles == batched replay
          cycles on every cross-checked sample *)
  engines_identical : bool;
      (** [`Replay] and [`Emulate] campaign digests match *)
}

val measure_speedup :
  program:Isa.Program.t ->
  data:(int * int) list ->
  est:Estimator.estimate ->
  benchmark:string ->
  samples:int ->
  ?crosscheck:int ->
  unit ->
  speedup
(** Times a baseline loop — one {!Isa.Machine.run} with a fresh
    concrete cache simulator per sampled fault pattern — against the
    batched engine (prepare + run, jobs 1) at the same sample count and
    the same per-sample fault law, and cross-checks the first
    [crosscheck] (default 100, capped at [samples]) samples cycle by
    cycle. *)

val write_json :
  path:string ->
  git_commit:string ->
  config:Cache.Config.t ->
  pfail:float ->
  speedup:speedup option ->
  rows:(string * campaign_check) list ->
  unit
(** Emits the BENCH_sim.json document: schema, geometry, the optional
    speedup block and one record per (benchmark, mechanism) campaign. *)

module Acs = Cache_analysis.Acs
module Chmc = Cache_analysis.Chmc
module IntSet = Set.Make (Int)

(* What a cached data load can touch. *)
type kind =
  | Precise of int  (* single memory block *)
  | Imprecise of int list  (* every block of the range *)

type t = {
  classes : Chmc.classification option array array;
  kinds : kind option array array;
  config : Cache.Config.t;
  reachable : bool array;
}

let blocks_of_range config ~base ~bytes =
  let first = Cache.Config.block_of_address config base in
  let last = Cache.Config.block_of_address config (base + bytes - 1) in
  List.init (last - first + 1) (fun k -> first + k)

let kind_of config = function
  | Minic.Compile.Data_exact addr -> Precise (Cache.Config.block_of_address config addr)
  | Minic.Compile.Data_range { base; bytes } -> (
    match blocks_of_range config ~base ~bytes with
    | [ b ] -> Precise b
    | bs -> Imprecise bs)
  | Minic.Compile.Data_stack -> assert false

(* Precomputed analysis context, shared across the per-(set, fault
   count) degraded analyses of the data-cache FMM — the data-side
   counterpart of Cache_analysis.Context. Immutable after [prepare]. *)
type loop_ctx = {
  header : int;
  conflict_counts : int array;  (* per set: distinct possibly-touched blocks in the body *)
}

type ctx = {
  c_kinds : kind option array array;
  c_reachable : bool array;
  c_global_counts : int array;  (* per set: distinct possibly-touched blocks, program-wide *)
  c_loops : loop_ctx array;  (* sorted by body size, descending *)
  c_enclosing : int array array;  (* node -> indices into [c_loops], same order *)
  c_used : IntSet.t;
  c_touching : int array array;  (* per set: reachable nodes with a precise load of it *)
}

let prepare ~graph ~loops ~config ~annot =
  let n = Cfg.Graph.node_count graph in
  let reachable = Array.make n false in
  Array.iter (fun u -> reachable.(u) <- true) (Cfg.Graph.reverse_postorder graph);
  let kinds =
    Array.init n (fun u ->
        let len = (Cfg.Graph.node graph u).Cfg.Graph.len in
        Array.init len (fun k ->
            Option.map (kind_of config) (Annot.cached_load annot ~node:u ~offset:k)))
  in
  let set_of_block = Cache.Config.set_of_block config in
  let conflicts nodes =
    let per_set = Array.make config.Cache.Config.sets IntSet.empty in
    List.iter
      (fun u ->
        Array.iter
          (function
            | Some (Precise b) -> per_set.(set_of_block b) <- IntSet.add b per_set.(set_of_block b)
            | Some (Imprecise bs) ->
              List.iter
                (fun b -> per_set.(set_of_block b) <- IntSet.add b per_set.(set_of_block b))
                bs
            | None -> ())
          kinds.(u))
      nodes;
    Array.map IntSet.cardinal per_set
  in
  let reachable_nodes = List.filter (fun u -> reachable.(u)) (List.init n Fun.id) in
  let global_counts = conflicts reachable_nodes in
  (* Descending body size with List.sort's stability, so the innermost
     fitting-loop search below visits loops in the same order as the
     original filter-then-sort per reference. *)
  let sorted_loops =
    List.sort
      (fun (a : Cfg.Loop.loop) b ->
        compare (List.length b.Cfg.Loop.body) (List.length a.Cfg.Loop.body))
      loops
  in
  let loop_ctxs =
    Array.of_list
      (List.map
         (fun (l : Cfg.Loop.loop) ->
           { header = l.Cfg.Loop.header; conflict_counts = conflicts l.Cfg.Loop.body })
         sorted_loops)
  in
  let enclosing_rev = Array.make n [] in
  List.iteri
    (fun i (l : Cfg.Loop.loop) ->
      List.iter (fun u -> enclosing_rev.(u) <- i :: enclosing_rev.(u)) l.Cfg.Loop.body)
    sorted_loops;
  let enclosing = Array.map (fun is -> Array.of_list (List.rev is)) enclosing_rev in
  let used = ref IntSet.empty in
  let touching_rev = Array.make config.Cache.Config.sets [] in
  for u = n - 1 downto 0 do
    let sets_here = ref IntSet.empty in
    Array.iter
      (function
        | Some (Precise b) ->
          used := IntSet.add (set_of_block b) !used;
          if reachable.(u) then sets_here := IntSet.add (set_of_block b) !sets_here
        | Some (Imprecise bs) ->
          List.iter (fun b -> used := IntSet.add (set_of_block b) !used) bs
        | None -> ())
      kinds.(u);
    IntSet.iter (fun s -> touching_rev.(s) <- u :: touching_rev.(s)) !sets_here
  done;
  {
    c_kinds = kinds;
    c_reachable = reachable;
    c_global_counts = global_counts;
    c_loops = loop_ctxs;
    c_enclosing = enclosing;
    c_used = !used;
    c_touching = Array.map Array.of_list touching_rev;
  }

let ctx_reachable ctx = ctx.c_reachable
let ctx_touching ctx ~set = ctx.c_touching.(set)

let analyze ?ctx ~graph ~loops ~config ~annot ?assoc ?only_sets () =
  let ways = config.Cache.Config.ways in
  let assoc = match assoc with Some f -> f | None -> fun _ -> ways in
  let n = Cfg.Graph.node_count graph in
  let ctx = match ctx with Some c -> c | None -> prepare ~graph ~loops ~config ~annot in
  let kinds = ctx.c_kinds and reachable = ctx.c_reachable in
  let set_of_block = Cache.Config.set_of_block config in
  let used =
    match only_sets with
    | None -> ctx.c_used
    | Some keep -> IntSet.inter ctx.c_used (IntSet.of_list keep)
  in
  let classes = Array.init n (fun u -> Array.make (Array.length kinds.(u)) None) in
  IntSet.iter
    (fun set ->
      let assoc_s = assoc set in
      (* Must fixpoint restricted to this set. *)
      let step acs = function
        | Some (Precise b) when set_of_block b = set -> Acs.must_update ~assoc:assoc_s acs b
        | Some (Imprecise bs) when List.exists (fun b -> set_of_block b = set) bs ->
          Acs.must_age_all ~assoc:assoc_s acs
        | _ -> acs
      in
      let transfer u acs = Array.fold_left step acs kinds.(u) in
      let must_in =
        Cache_analysis.Fixpoint.run ~graph ~entry_state:Acs.empty ~transfer ~join:Acs.must_join
          ~equal:Acs.equal ()
      in
      (* Only nodes with a precise load of the set can receive a
         classification; the persistence check walks the precomputed
         enclosing-loop index instead of scanning every loop body. *)
      Array.iter
        (fun u ->
          match must_in.(u) with
          | None -> ()
          | Some acs0 ->
            let acs = ref acs0 in
            Array.iteri
              (fun k kind ->
                match kind with
                | Some (Precise b) when set_of_block b = set ->
                  let hit = Acs.mem !acs b in
                  let cls =
                    if hit then Chmc.Always_hit
                    else if assoc_s > 0 && ctx.c_global_counts.(set) <= assoc_s then
                      Chmc.First_miss Chmc.Global
                    else begin
                      let fitting = ref None in
                      if assoc_s > 0 then
                        Array.iter
                          (fun i ->
                            if
                              !fitting = None
                              && ctx.c_loops.(i).conflict_counts.(set) <= assoc_s
                            then fitting := Some ctx.c_loops.(i).header)
                          ctx.c_enclosing.(u);
                      match !fitting with
                      | Some header -> Chmc.First_miss (Chmc.Loop header)
                      | None -> Chmc.Not_classified
                    end
                  in
                  classes.(u).(k) <- Some cls;
                  acs := step !acs kind
                | Some _ -> acs := step !acs kind
                | None -> ())
              kinds.(u))
        ctx.c_touching.(set))
    used;
  (* Imprecise loads are NC regardless of set. *)
  for u = 0 to n - 1 do
    if reachable.(u) then
      Array.iteri
        (fun k kind ->
          match kind with
          | Some (Imprecise _) -> classes.(u).(k) <- Some Chmc.Not_classified
          | _ -> ())
        kinds.(u)
  done;
  { classes; kinds; config; reachable }

let classification t ~node ~offset = t.classes.(node).(offset)

let cache_set t ~node ~offset =
  match t.kinds.(node).(offset) with
  | Some (Precise b) -> Some (Cache.Config.set_of_block t.config b)
  | Some (Imprecise _) | None -> None

let touched_sets t ~node ~offset =
  match t.kinds.(node).(offset) with
  | Some (Precise b) -> [ Cache.Config.set_of_block t.config b ]
  | Some (Imprecise bs) ->
    List.sort_uniq compare (List.map (Cache.Config.set_of_block t.config) bs)
  | None -> []

let fold_loads f t init =
  let acc = ref init in
  Array.iteri
    (fun u row ->
      if t.reachable.(u) then
        Array.iteri
          (fun k cls -> match cls with Some c -> acc := f ~node:u ~offset:k c !acc | None -> ())
          row)
    t.classes;
  !acc

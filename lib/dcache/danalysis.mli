(** Data-cache CHMC — the paper's analysis transposed to data caches
    (its Section VI future-work direction).

    The modelled data cache is read-allocate, write-through with a
    non-blocking write buffer: stores cost no time and do not disturb
    the LRU state, so only loads are classified. Loads come in two
    precisions (from the compiler's {!Minic.Compile.data_target}
    annotations):

    - {e precise}: global scalars, and array accesses whose whole array
      fits in one cache block — analysed exactly like instruction
      fetches (Must + conflict-set persistence);
    - {e imprecise}: array accesses spanning several blocks. They are
      classified not-classified (costed as misses) and treated by the
      Must analysis as unknown accesses that age every tracked block,
      and by the persistence criterion as touching every block of the
      array — both conservative.

    Stack accesses go to the scratchpad and are not classified. *)

type t

type ctx
(** Precomputed analysis context for one (graph, config, annot) triple:
    load kinds, reachability, global and per-loop conflict counts, the
    per-node enclosing-loop index and the per-set index of nodes with a
    precise load of that set. Immutable; build once with {!prepare} and
    share across every degraded {!analyze} of the data-cache FMM. *)

val prepare :
  graph:Cfg.Graph.t ->
  loops:Cfg.Loop.loop list ->
  config:Cache.Config.t ->
  annot:Annot.t ->
  ctx

val ctx_reachable : ctx -> bool array
(** Shared reachability array (do not mutate). *)

val ctx_touching : ctx -> set:int -> int array
(** Reachable nodes carrying a precise load of [set], ascending (do not
    mutate) — the only nodes whose classification can change when that
    set degrades. *)

val analyze :
  ?ctx:ctx ->
  graph:Cfg.Graph.t ->
  loops:Cfg.Loop.loop list ->
  config:Cache.Config.t ->
  annot:Annot.t ->
  ?assoc:(int -> int) ->
  ?only_sets:int list ->
  unit ->
  t
(** Same override knobs as {!Cache_analysis.Chmc.analyze}, for the
    data-cache FMM. [ctx] (built by {!prepare}) skips the per-call
    recomputation of kinds, reachability and conflict sets; results are
    identical with or without it. *)

val classification : t -> node:int -> offset:int -> Cache_analysis.Chmc.classification option
(** [None] when the instruction is not a cached data load. *)

val cache_set : t -> node:int -> offset:int -> int option
(** The cache set of a precise load; [None] for imprecise ones. *)

val touched_sets : t -> node:int -> offset:int -> int list
(** Sets a cached load can touch (singleton for precise loads). *)

val fold_loads :
  (node:int -> offset:int -> Cache_analysis.Chmc.classification -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over reachable cached loads. *)

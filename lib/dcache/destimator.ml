module Chmc = Cache_analysis.Chmc
module Acs = Cache_analysis.Acs
module Dist = Prob.Dist
module PE = Ipet.Path_engine

type task = {
  graph : Cfg.Graph.t;
  loops : Cfg.Loop.loop list;
  iconfig : Cache.Config.t;
  dconfig : Cache.Config.t;
  ictx : Cache_analysis.Context.t;
  dctx : Danalysis.ctx;
  ichmc : Chmc.t;
  dchmc : Danalysis.t;
  annot : Annot.t;
  wcet_ff : int;
}

type estimate = {
  task : task;
  imech : Pwcet.Mechanism.t;
  dmech : Pwcet.Mechanism.t;
  ifmm : Pwcet.Fmm.t;
  dfmm : Pwcet.Fmm.t;
  penalty : Dist.t;
}

let path_scope = function
  | Chmc.Global -> PE.Whole_program
  | Chmc.Loop header -> PE.Loop_scope header

(* Per-execution data-fetch cost and one-shots of one node. *)
let data_node_costs ~graph ~dchmc ~dconfig u =
  let node = Cfg.Graph.node graph u in
  let hit = dconfig.Cache.Config.hit_latency in
  let miss = dconfig.Cache.Config.miss_latency in
  let penalty = Cache.Config.miss_penalty dconfig in
  let per_exec = ref 0 in
  let shots = ref [] in
  for k = 0 to node.Cfg.Graph.len - 1 do
    match Danalysis.classification dchmc ~node:u ~offset:k with
    | None -> ()
    | Some Chmc.Always_hit -> per_exec := !per_exec + hit
    | Some (Chmc.First_miss scope) ->
      per_exec := !per_exec + hit;
      shots := (scope, penalty) :: !shots
    | Some (Chmc.Always_miss | Chmc.Not_classified) -> per_exec := !per_exec + miss
  done;
  (!per_exec, !shots)

let combined_wcet ~graph ~loops ~iconfig ~dconfig ~ichmc ~dchmc =
  let n = Cfg.Graph.node_count graph in
  let reachable = Array.make n false in
  Array.iter (fun u -> reachable.(u) <- true) (Cfg.Graph.reverse_postorder graph);
  let cost = Array.make n 0 in
  let one_shots = ref [] in
  for u = 0 to n - 1 do
    if reachable.(u) then begin
      let icost, ishots = Ipet.Wcet.node_costs ~graph ~chmc:ichmc ~config:iconfig u in
      let dcost, dshots = data_node_costs ~graph ~dchmc ~dconfig u in
      cost.(u) <- icost + dcost;
      List.iter
        (fun (scope, amount) -> one_shots := (path_scope scope, amount) :: !one_shots)
        (ishots @ dshots)
    end
  done;
  PE.longest ~graph ~loops ~node_cost:(fun u -> cost.(u)) ~one_shots:!one_shots

let prepare ~compiled ~iconfig ~dconfig () =
  let program = compiled.Minic.Compile.program in
  let graph = Cfg.Graph.build program in
  let loops = Cfg.Loop.detect graph in
  let ictx = Cache_analysis.Context.make ~graph ~loops ~config:iconfig in
  let ichmc = Chmc.analyze ~ctx:ictx ~graph ~loops ~config:iconfig () in
  let annot = Annot.build graph compiled.Minic.Compile.data_refs in
  let dctx = Danalysis.prepare ~graph ~loops ~config:dconfig ~annot in
  let dchmc = Danalysis.analyze ~ctx:dctx ~graph ~loops ~config:dconfig ~annot () in
  let wcet_ff = combined_wcet ~graph ~loops ~iconfig ~dconfig ~ichmc ~dchmc in
  { graph; loops; iconfig; dconfig; ictx; dctx; ichmc; dchmc; annot; wcet_ff }

(* --- data-cache fault miss map ------------------------------------------- *)

let per_exec_miss = function
  | Chmc.Always_miss | Chmc.Not_classified -> 1
  | Chmc.Always_hit | Chmc.First_miss _ -> 0

(* Miss-delta bound for precise data loads of [set], via the path
   engine — the data-cache counterpart of Ipet.Delta. *)
let data_extra_misses ~task ~degraded ~set =
  let graph = task.graph in
  let n = Cfg.Graph.node_count graph in
  let per_exec = Array.make n 0 in
  let one_shots = ref [] in
  let any = ref false in
  (* Only reachable nodes with a precise load of [set] can carry a
     delta; the context indexes them directly. *)
  Array.iter
    (fun u ->
      let node = Cfg.Graph.node graph u in
      for k = 0 to node.Cfg.Graph.len - 1 do
        if Danalysis.cache_set task.dchmc ~node:u ~offset:k = Some set then begin
          let base = Option.get (Danalysis.classification task.dchmc ~node:u ~offset:k) in
          let degr = degraded ~node:u ~offset:k in
          if base <> degr then begin
            let d = max 0 (per_exec_miss degr - per_exec_miss base) in
            if d > 0 then begin
              per_exec.(u) <- per_exec.(u) + d;
              any := true
            end;
            match (degr, base) with
            | Chmc.First_miss scope, (Chmc.Always_hit | Chmc.First_miss _) ->
              any := true;
              one_shots := (path_scope scope, 1) :: !one_shots
            | _ -> ()
          end
        end
      done)
    (Danalysis.ctx_touching task.dctx ~set);
  if not !any then 0
  else
    PE.longest ~graph ~loops:task.loops ~node_cost:(fun u -> per_exec.(u))
      ~one_shots:!one_shots

(* Must analysis of a data SRB: a 1-block buffer over precise loads;
   imprecise loads clobber it. *)
let dsrb_hits task =
  let graph = task.graph in
  let n = Cfg.Graph.node_count graph in
  let kinds u k = Annot.cached_load task.annot ~node:u ~offset:k in
  let block_of = Cache.Config.block_of_address task.dconfig in
  let step acs (u, k) =
    match kinds u k with
    | Some (Minic.Compile.Data_exact addr) -> Acs.must_update ~assoc:1 acs (block_of addr)
    | Some (Minic.Compile.Data_range _) -> Acs.must_age_all ~assoc:1 acs
    | _ -> acs
  in
  let transfer u acs =
    let node = Cfg.Graph.node graph u in
    let result = ref acs in
    for k = 0 to node.Cfg.Graph.len - 1 do
      result := step !result (u, k)
    done;
    !result
  in
  let must_in =
    Cache_analysis.Fixpoint.run ~graph ~entry_state:Acs.empty ~transfer ~join:Acs.must_join
      ~equal:Acs.equal ()
  in
  let hits = Array.init n (fun u -> Array.make (Cfg.Graph.node graph u).Cfg.Graph.len false) in
  for u = 0 to n - 1 do
    match must_in.(u) with
    | None -> ()
    | Some acs0 ->
      let acs = ref acs0 in
      let node = Cfg.Graph.node graph u in
      for k = 0 to node.Cfg.Graph.len - 1 do
        (match kinds u k with
        | Some (Minic.Compile.Data_exact addr) -> hits.(u).(k) <- Acs.mem !acs (block_of addr)
        | _ -> ());
        acs := step !acs (u, k)
      done
  done;
  hits

(* One data-cache FMM row; self-contained so rows can run on separate
   domains (mirrors Pwcet.Fmm.compute_row). *)
let compute_dfmm_row task ~mechanism ~srb_hits set =
  let dconfig = task.dconfig in
  let ways = dconfig.Cache.Config.ways in
  let row = Array.make (ways + 1) 0 in
  let max_f = match mechanism with Pwcet.Mechanism.Reliable_way -> ways - 1 | _ -> ways in
  for f = 1 to max_f do
    let degraded =
      if f < ways then begin
        let dchmc_f =
          Danalysis.analyze ~ctx:task.dctx ~graph:task.graph ~loops:task.loops ~config:dconfig
            ~annot:task.annot
            ~assoc:(fun s -> if s = set then ways - f else ways)
            ~only_sets:[ set ] ()
        in
        fun ~node ~offset ->
          Option.value
            (Danalysis.classification dchmc_f ~node ~offset)
            ~default:Chmc.Not_classified
      end
      else
        match srb_hits with
        | Some hits ->
          fun ~node ~offset ->
            if hits.(node).(offset) then Chmc.Always_hit else Chmc.Always_miss
        | None -> fun ~node:_ ~offset:_ -> Chmc.Always_miss
    in
    let v = data_extra_misses ~task ~degraded ~set in
    row.(f) <- max v row.(f - 1)
  done;
  if max_f < ways then row.(ways) <- row.(max_f);
  row

(* Structural fallback row for a data set: every precise load of the
   set misses at most once per execution of its node — no degraded
   analysis, no path search, dominates every fault count. *)
let structural_drow task set =
  Array.fold_left
    (fun acc u ->
      let node = Cfg.Graph.node task.graph u in
      let refs = ref 0 in
      for k = 0 to node.Cfg.Graph.len - 1 do
        if Danalysis.cache_set task.dchmc ~node:u ~offset:k = Some set then incr refs
      done;
      Ipet.Model.sat_add acc
        (Ipet.Model.sat_mul !refs (Ipet.Model.execution_count_bound task.loops u)))
    0
    (Danalysis.ctx_touching task.dctx ~set)

let compute_dfmm task ~mechanism ~jobs ?deadline () =
  let dconfig = task.dconfig in
  let n_sets = dconfig.Cache.Config.sets and ways = dconfig.Cache.Config.ways in
  let used = Array.make n_sets false in
  Danalysis.fold_loads
    (fun ~node ~offset _ () ->
      match Danalysis.cache_set task.dchmc ~node ~offset with
      | Some s -> used.(s) <- true
      | None -> ())
    task.dchmc ();
  let srb_hits =
    match mechanism with
    | Pwcet.Mechanism.Shared_reliable_buffer -> Some (dsrb_hits task)
    | _ -> None
  in
  let misses = Array.make_matrix n_sets (ways + 1) 0 in
  let provenance =
    Array.init n_sets (fun _ -> Array.make (ways + 1) Robust.Rung.Exact)
  in
  let used_sets =
    Array.of_list (List.filter (fun s -> used.(s)) (List.init n_sets Fun.id))
  in
  let rows =
    Parallel.Pool.map_result ?deadline ~jobs (compute_dfmm_row task ~mechanism ~srb_hits)
      used_sets
  in
  let errors = ref [] in
  Array.iteri
    (fun i set ->
      match rows.(i) with
      | Ok row -> misses.(set) <- row
      | Error e ->
        let v = structural_drow task set in
        let row = Array.make (ways + 1) v in
        row.(0) <- 0;
        misses.(set) <- row;
        let p = Array.make (ways + 1) Robust.Rung.Structural in
        p.(0) <- Robust.Rung.Exact;
        provenance.(set) <- p;
        errors := (set, e) :: !errors)
    used_sets;
  (misses, provenance, List.rev !errors)

let estimate task ~pfail ~imech ~dmech ?(jobs = 1) ?budget () =
  let ifmm =
    Pwcet.Fmm.compute ~graph:task.graph ~loops:task.loops ~config:task.iconfig
      ~mechanism:imech ~jobs ~ctx:task.ictx ?budget ()
  in
  let deadline =
    match budget with Some b -> b.Robust.Budget.deadline | None -> None
  in
  let dfmm =
    let misses, provenance, errors = compute_dfmm task ~mechanism:dmech ~jobs ?deadline () in
    Pwcet.Fmm.of_table ~config:task.dconfig ~mechanism:dmech ~provenance ~errors misses
  in
  let ipbf = Fault.Model.pbf_of_config ~pfail task.iconfig in
  let dpbf = Fault.Model.pbf_of_config ~pfail task.dconfig in
  let ipenalty = Pwcet.Penalty.total_distribution ~jobs ~fmm:ifmm ~pbf:ipbf () in
  let dpenalty = Pwcet.Penalty.total_distribution ~jobs ~fmm:dfmm ~pbf:dpbf () in
  let penalty = Dist.convolve ipenalty dpenalty in
  { task; imech; dmech; ifmm; dfmm; penalty }

let pwcet e ~target = e.task.wcet_ff + Dist.quantile e.penalty ~target

let dfmm_misses e ~set ~faulty = Pwcet.Fmm.misses e.dfmm ~set ~faulty

let worst_rung e =
  Robust.Rung.worst (Pwcet.Fmm.worst_rung e.ifmm) (Pwcet.Fmm.worst_rung e.dfmm)

let degradation_errors e = Pwcet.Fmm.errors e.ifmm @ Pwcet.Fmm.errors e.dfmm

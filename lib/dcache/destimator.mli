(** Combined instruction + data cache pWCET estimation — the paper's
    pipeline with its Section-VI data-cache transposition.

    The WCET costs both caches' contributions; faults strike the two
    cache arrays independently, so the total fault-induced penalty is
    the convolution of the two penalty distributions (each built
    exactly as in the paper: per-set FMM columns weighted by the
    binomial law, convolved across sets). Each cache can carry its own
    protection mechanism. *)

type task = private {
  graph : Cfg.Graph.t;
  loops : Cfg.Loop.loop list;
  iconfig : Cache.Config.t;
  dconfig : Cache.Config.t;
  ictx : Cache_analysis.Context.t;  (** instruction-cache analysis context *)
  dctx : Danalysis.ctx;  (** data-cache analysis context *)
  ichmc : Cache_analysis.Chmc.t;
  dchmc : Danalysis.t;
  annot : Annot.t;
  wcet_ff : int;  (** combined fault-free WCET, cycles *)
}

val prepare :
  compiled:Minic.Compile.compiled ->
  iconfig:Cache.Config.t ->
  dconfig:Cache.Config.t ->
  unit ->
  task

type estimate = private {
  task : task;
  imech : Pwcet.Mechanism.t;
  dmech : Pwcet.Mechanism.t;
  ifmm : Pwcet.Fmm.t;
  dfmm : Pwcet.Fmm.t;
  penalty : Prob.Dist.t;  (** convolution of both caches' penalties *)
}

val estimate :
  task ->
  pfail:float ->
  imech:Pwcet.Mechanism.t ->
  dmech:Pwcet.Mechanism.t ->
  ?jobs:int ->
  ?budget:Robust.Budget.t ->
  unit ->
  estimate
(** [jobs] (default 1) runs the independent per-set analyses of both
    caches' FMMs (and the per-set penalty builds) on that many OCaml
    domains; results are identical for every value. [budget] flows
    into the instruction-cache FMM (see {!Pwcet.Fmm.compute}); its
    deadline also guards the data-cache rows, where a crashed or
    deadline-starved per-set worker falls back to a constant
    structural row tagged [Structural] instead of aborting. *)

val pwcet : estimate -> target:float -> int

val dfmm_misses : estimate -> set:int -> faulty:int -> int
(** Data-cache fault-miss-map entries (for reporting and tests). *)

val worst_rung : estimate -> Robust.Rung.t
(** Loosest degradation rung across both caches' FMMs. *)

val degradation_errors : estimate -> (int * Robust.Pwcet_error.t) list
(** Per-set failures from both FMM stages (instruction first). *)

module B = Numeric.Binomial
module Pf = Numeric.Probfloat

(* Probabilities enter here from user input (CLI flags, config files);
   reject NaN and infinities explicitly — [p < 0.0 || p > 1.0] is false
   for NaN, so a plain range check would let NaN poison every
   downstream distribution silently. *)
let validate_prob ~what p =
  if not (Float.is_finite p) then
    invalid_arg (Printf.sprintf "Model.%s: probability must be finite, got %h" what p);
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Model.%s: probability %g outside [0, 1]" what p)

let pbf ~pfail ~block_bits =
  validate_prob ~what:"pbf" pfail;
  Pf.one_minus_pow_one_minus ~p:pfail ~k:block_bits

let pbf_of_config ~pfail cfg = pbf ~pfail ~block_bits:(Cache.Config.block_bits cfg)

let pwf ~ways ~pbf w =
  validate_prob ~what:"pwf" pbf;
  B.pmf ~n:ways ~p:pbf w

let pwf_rw ~ways ~pbf w =
  if ways <= 0 then invalid_arg "Model.pwf_rw: non-positive ways";
  validate_prob ~what:"pwf_rw" pbf;
  B.pmf ~n:(ways - 1) ~p:pbf w

let way_distribution ~ways ~pbf =
  validate_prob ~what:"way_distribution" pbf;
  Array.init (ways + 1) (pwf ~ways ~pbf)

let way_distribution_rw ~ways ~pbf =
  validate_prob ~what:"way_distribution_rw" pbf;
  Array.init (ways + 1) (pwf_rw ~ways ~pbf)

let prob_all_ways_faulty ~ways ~pbf = pwf ~ways ~pbf ways

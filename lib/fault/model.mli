(** The paper's analytic fault model (Section II-A).

    Every SRAM bit fails independently with probability [pfail]; a
    block is disabled if any of its [K] bits is faulty (eq. 1); the
    number of faulty ways in a set follows a binomial law over the
    [W] ways (eq. 2), or over [W - 1] ways under the RW mechanism,
    which masks faults in the reliable way (eq. 3).

    All probability inputs ([pfail], [pbf]) are validated: NaN,
    infinities, and values outside [0, 1] raise [Invalid_argument]
    with the offending entry point named — they would otherwise poison
    every downstream distribution silently. *)

val pbf : pfail:float -> block_bits:int -> float
(** Eq. 1: [1 - (1 - pfail)^K], computed without cancellation. *)

val pbf_of_config : pfail:float -> Cache.Config.t -> float

val pwf : ways:int -> pbf:float -> int -> float
(** Eq. 2: probability of exactly [w] faulty ways among [ways]. *)

val pwf_rw : ways:int -> pbf:float -> int -> float
(** Eq. 3: RW variant — binomial over [ways - 1]; the reliable way's
    faults are masked. [pwf_rw ~ways ~pbf ways = 0]. *)

val way_distribution : ways:int -> pbf:float -> float array
(** [pwf] for w = 0..ways; sums to 1. *)

val way_distribution_rw : ways:int -> pbf:float -> float array
(** [pwf_rw] for w = 0..ways (last entry 0); sums to 1. *)

val prob_all_ways_faulty : ways:int -> pbf:float -> float
(** [pwf ways] — the probability a set is entirely dead, the situation
    both mechanisms target. *)

let fault_map cfg ~pfail state =
  let pbf = Model.pbf_of_config ~pfail cfg in
  Cache.Fault_map.sample cfg ~pbf state

let faulty_way_counts (cfg : Cache.Config.t) ~pfail state =
  let ways = cfg.Cache.Config.ways in
  let pbf = Model.pbf_of_config ~pfail cfg in
  let pmf = Model.way_distribution ~ways ~pbf in
  let draw () =
    let u = Random.State.float state 1.0 in
    let rec go w acc =
      if w >= ways then ways
      else begin
        let acc = acc +. pmf.(w) in
        if u < acc then w else go (w + 1) acc
      end
    in
    go 0 0.0
  in
  Array.init cfg.Cache.Config.sets (fun _ -> draw ())

let way_cdf ~ways ~pbf ~rw =
  let pmf = if rw then Model.way_distribution_rw ~ways ~pbf else Model.way_distribution ~ways ~pbf in
  let n = Array.length pmf in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. pmf.(i);
    cdf.(i) <- !acc
  done;
  let last = ref 0 in
  for i = 0 to n - 1 do
    if pmf.(i) > 0.0 then last := i
  done;
  for i = !last to n - 1 do
    cdf.(i) <- 1.0
  done;
  cdf

let index_of_u ~cdf u =
  let n = Array.length cdf in
  let rec go i = if i >= n - 1 then i else if u < Array.unsafe_get cdf i then i else go (i + 1) in
  go 0

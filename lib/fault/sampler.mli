(** Monte-Carlo sampling of fault configurations, for cross-validating
    the analytic pipeline against concrete simulation. *)

val fault_map : Cache.Config.t -> pfail:float -> Random.State.t -> Cache.Fault_map.t
(** Samples per-block failures with [pbf] derived from [pfail]
    (eq. 1) — the concrete realisation of the paper's model. *)

val faulty_way_counts : Cache.Config.t -> pfail:float -> Random.State.t -> int array
(** Per-set faulty-way counts drawn from the binomial law (eq. 2) by
    inversion; statistically identical to counting in [fault_map]. *)

val way_cdf : ways:int -> pbf:float -> rw:bool -> float array
(** Cumulative distribution of the per-set faulty-way count (eq. 2, or
    eq. 3 when [rw]), prepared for inverse-CDF sampling from an
    external uniform variate: the last positive-mass entry (and
    everything after it) is forced to exactly 1.0, so float rounding in
    the partial sums can never push a draw past the support — an RW
    draw in particular can never return [ways]. *)

val index_of_u : cdf:float array -> float -> int
(** Smallest [i] with [u < cdf.(i)] — the inversion step itself, shared
    by the batched Monte-Carlo engine so sampled laws stay identical
    across engines by construction. *)

module Mechanism = Pwcet.Mechanism
module Estimator = Pwcet.Estimator
module Fmm = Pwcet.Fmm
module Rung = Robust.Rung
module E = Robust.Pwcet_error

type spec = {
  benchmarks : (string * Isa.Program.t) list;
  configs : Cache.Config.t list;
  mechanisms : Mechanism.t list;
  pfail_grid : float list;
  targets : float list;
  engine : [ `Path | `Ilp ];
  exact : bool;
  impl : [ `Naive | `Sliced ];
}

type point = {
  bench : string;
  config : Cache.Config.t;
  mechanism : Mechanism.t;
  pfail : float;
}

type cell = {
  point : point;
  wcet_ff : int;
  pbf : float;
  pwcets : (float * int) list;
  rung : Rung.t;
  degraded : int;
}

let float_key f = Int64.to_string (Int64.bits_of_float f)

let point_key p =
  Printf.sprintf "%s/%dx%dx%d+%d+%d/%s/%s" p.bench p.config.Cache.Config.sets
    p.config.Cache.Config.ways p.config.Cache.Config.line_bytes
    p.config.Cache.Config.hit_latency p.config.Cache.Config.miss_latency
    (Mechanism.short_name p.mechanism) (float_key p.pfail)

(* Canonical cell order: benchmark x geometry x mechanism x pfail, each
   axis in spec order.  Every consumer — the DAG result merge, the
   digest, the journal replay, the JSON matrix — walks cells in this
   order, which is what makes outputs comparable byte-for-byte across
   runs, processes and job counts. *)
let points spec =
  List.concat_map
    (fun (bench, _) ->
      List.concat_map
        (fun config ->
          List.concat_map
            (fun mechanism ->
              List.map (fun pfail -> { bench; config; mechanism; pfail }) spec.pfail_grid)
            spec.mechanisms)
        spec.configs)
    spec.benchmarks

let engine_tag = function `Path -> "path" | `Ilp -> "ilp"
let impl_tag = function `Naive -> "naive" | `Sliced -> "sliced"

(* Labelled content identity of the whole grid — program digests,
   geometries, axes and engine flags — for resume-journal run keys and
   daemon request dedup.  Reuses the per-(program, geometry) identity
   the estimator derives, so anything that would change a cell's value
   changes the grid's key. *)
let identity spec =
  List.concat_map
    (fun (name, program) ->
      List.concat_map
        (fun config -> ("bench", name) :: Estimator.identity_of ~program ~config)
        spec.configs)
    spec.benchmarks
  @ [ ("mechanisms", String.concat "," (List.map Mechanism.short_name spec.mechanisms));
      ("pfail-grid", String.concat "," (List.map float_key spec.pfail_grid));
      ("targets", String.concat "," (List.map float_key spec.targets));
      ("engine", engine_tag spec.engine);
      ("exact", string_of_bool spec.exact);
      ("impl", impl_tag spec.impl) ]

(* --- canonical cell serialization (journal payloads, digests) ----------- *)

let cell_to_wire c =
  let w = Store.Wire.writer () in
  Store.Wire.put_string w c.point.bench;
  Store.Wire.put_int w c.point.config.Cache.Config.sets;
  Store.Wire.put_int w c.point.config.Cache.Config.ways;
  Store.Wire.put_int w c.point.config.Cache.Config.line_bytes;
  Store.Wire.put_int w c.point.config.Cache.Config.hit_latency;
  Store.Wire.put_int w c.point.config.Cache.Config.miss_latency;
  Store.Wire.put_string w (Mechanism.short_name c.point.mechanism);
  Store.Wire.put_float w c.point.pfail;
  Store.Wire.put_int w c.wcet_ff;
  Store.Wire.put_float w c.pbf;
  Store.Wire.put_int w (List.length c.pwcets);
  List.iter
    (fun (target, value) ->
      Store.Wire.put_float w target;
      Store.Wire.put_int w value)
    c.pwcets;
  Store.Wire.put_int w (Rung.to_tag c.rung);
  Store.Wire.put_int w c.degraded;
  Store.Wire.contents w

let cell_of_wire data =
  Store.Wire.decode data (fun r ->
      let bench = Store.Wire.get_string r in
      let sets = Store.Wire.get_int r in
      let ways = Store.Wire.get_int r in
      let line_bytes = Store.Wire.get_int r in
      let hit_latency = Store.Wire.get_int r in
      let miss_latency = Store.Wire.get_int r in
      let config =
        match Cache.Config.make ~sets ~ways ~line_bytes ~hit_latency ~miss_latency () with
        | c -> c
        | exception Invalid_argument msg -> Store.Wire.malformed msg
      in
      let mechanism =
        match Mechanism.of_string (Store.Wire.get_string r) with
        | Some m -> m
        | None -> Store.Wire.malformed "Grid.cell_of_wire: unknown mechanism"
      in
      let pfail = Store.Wire.get_float r in
      let wcet_ff = Store.Wire.get_int r in
      if wcet_ff < 0 then Store.Wire.malformed "Grid.cell_of_wire: negative WCET";
      let pbf = Store.Wire.get_float r in
      let n = Store.Wire.get_int r in
      if n < 0 || n > 1024 then Store.Wire.malformed "Grid.cell_of_wire: implausible target count";
      let pwcets =
        List.init n (fun _ ->
            let target = Store.Wire.get_float r in
            let value = Store.Wire.get_int r in
            if value < 0 then Store.Wire.malformed "Grid.cell_of_wire: negative pWCET";
            (target, value))
      in
      let rung =
        match Rung.of_tag (Store.Wire.get_int r) with
        | Some rung -> rung
        | None -> Store.Wire.malformed "Grid.cell_of_wire: unknown rung tag"
      in
      let degraded = Store.Wire.get_int r in
      if degraded < 0 then Store.Wire.malformed "Grid.cell_of_wire: negative degraded count";
      { point = { bench; config; mechanism; pfail }; wcet_ff; pbf; pwcets; rung; degraded })

let digest results =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (point, r) ->
      match r with
      | Ok cell -> Buffer.add_string buf (cell_to_wire cell)
      | Error e ->
        Buffer.add_string buf (point_key point);
        Buffer.add_string buf (E.category e);
        Buffer.add_string buf (E.message e))
    results;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- the one-pass evaluator --------------------------------------------- *)

(* DAG node values: each (benchmark, geometry) panel contributes one
   prepare node (CFG, context, CHMC, fault-free WCET — shared by every
   mechanism and pfail at that geometry), one multi-mechanism FMM node
   (the f < W row prefixes are mechanism-independent, so all
   mechanisms' maps cost roughly one), and one cheap node per
   (mechanism, pfail) cell (binomial reweight + convolution +
   quantiles).  Inner stages run at jobs:1 — the DAG itself is the
   parallelism, and nesting domain fan-outs would oversubscribe. *)
type value =
  | Panel of Estimator.task * (Mechanism.t * Fmm.t) list
  | Cell of cell

let run ?(jobs = 1) ?budget ?store ?skip ?on_cell ?chaos spec =
  let skip = match skip with Some f -> f | None -> fun _ -> None in
  let all_points = points spec in
  let nodes = ref [] in
  let n_nodes = ref 0 in
  let push node =
    let idx = !n_nodes in
    nodes := node :: !nodes;
    incr n_nodes;
    idx
  in
  (* slots.(i) resolves each canonical point to either its replayed
     cell or the DAG node that computes it. *)
  let slots =
    List.map
      (fun point ->
        match skip point with Some cell -> `Replayed (point, cell) | None -> `Node point)
      all_points
  in
  let panel_index : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let panel_key bench config =
    Printf.sprintf "%s/%dx%dx%d+%d+%d" bench config.Cache.Config.sets config.Cache.Config.ways
      config.Cache.Config.line_bytes config.Cache.Config.hit_latency
      config.Cache.Config.miss_latency
  in
  let programs = Hashtbl.create 16 in
  List.iter (fun (name, program) -> Hashtbl.replace programs name program) spec.benchmarks;
  (* A panel node is created lazily, only when some cell of that panel
     actually needs computing — a fully replayed panel costs nothing. *)
  let panel_node bench config =
    let key = panel_key bench config in
    match Hashtbl.find_opt panel_index key with
    | Some idx -> idx
    | None ->
      let program = Hashtbl.find programs bench in
      let idx =
        push
          {
            Parallel.Pool.deps = [||];
            run =
              (fun _ ->
                let task =
                  Estimator.prepare ~program ~config ~engine:spec.engine ~exact:spec.exact
                    ?budget ?store ()
                in
                let fmms =
                  Estimator.fmm_grid task ~mechanisms:spec.mechanisms ~engine:spec.engine
                    ~exact:spec.exact ~jobs:1 ~impl:spec.impl ?budget ?store ()
                in
                Panel (task, fmms));
          }
      in
      Hashtbl.replace panel_index key idx;
      idx
  in
  let resolved =
    List.map
      (fun slot ->
        match slot with
        | `Replayed (point, cell) -> `Replayed (point, cell)
        | `Node point ->
          let panel = panel_node point.bench point.config in
          let idx =
            push
              {
                Parallel.Pool.deps = [| panel |];
                run =
                  (fun deps ->
                    let task, fmms =
                      match deps.(0) with Panel (t, f) -> (t, f) | Cell _ -> assert false
                    in
                    let _, fmm =
                      List.find (fun (m, _) -> Mechanism.equal m point.mechanism) fmms
                    in
                    let e =
                      Estimator.estimate_of_fmm task ~fmm ~pfail:point.pfail
                        ~engine:spec.engine ~exact:spec.exact ~jobs:1 ~impl:spec.impl ?budget
                        ?store ()
                    in
                    let cell =
                      {
                        point;
                        wcet_ff = Estimator.fault_free_wcet task;
                        pbf = e.Estimator.pbf;
                        pwcets =
                          List.map
                            (fun target -> (target, Estimator.pwcet e ~target))
                            spec.targets;
                        rung = Estimator.worst_rung e;
                        degraded = Fmm.degraded_cells fmm;
                      }
                    in
                    (match on_cell with Some f -> f cell | None -> ());
                    Cell cell);
              }
          in
          `Computed (point, idx))
      slots
  in
  let node_array = Array.of_list (List.rev !nodes) in
  (* The budget is threaded into every stage (prepare, FMM, penalty),
     each of which degrades internally and completes — a starved grid
     yields looser cells, not missing ones.  [run_dag]'s own deadline
     refusal is deliberately not armed here for that reason. *)
  let outcomes = Parallel.Pool.run_dag ?chaos ~jobs node_array in
  List.map
    (fun slot ->
      match slot with
      | `Replayed (point, cell) -> (point, Ok cell)
      | `Node _ -> assert false
      | `Computed (point, idx) -> (
        match outcomes.(idx) with
        | Ok (Cell cell) -> (point, Ok cell)
        | Ok (Panel _) -> assert false
        | Error e -> (point, Error e)))
    resolved

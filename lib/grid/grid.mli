(** One-pass cross-configuration grid evaluation.

    A grid is the cross product (benchmark x cache geometry x
    protection mechanism x pfail), the shape of the paper's comparison
    studies (Section IV) and of way-disabling/multi-level scenario
    sweeps. Run independently, every cell pays the full pipeline; run
    here, each (benchmark, geometry) panel pays its mechanism- and
    pfail-independent work once:

    {ul
    {- one CFG recovery, one {!Cache_analysis.Context}, one fault-free
       CHMC and one fault-free WCET per panel ({!Pwcet.Estimator.prepare}),
       reused by every mechanism and pfail at that geometry;}
    {- one set of per-set degraded-classification fixpoints per panel:
       the [f < W] FMM row prefixes never consult the mechanism, so all
       requested mechanisms' maps come from a single pass
       ({!Pwcet.Estimator.fmm_grid} / {!Pwcet.Fmm.compute_multi});}
    {- per (mechanism, pfail) cell only the cheap suffix: binomial
       reweight, convolution, quantile reads.}}

    The resulting irregular DAG (wide cheap fan-outs behind few
    expensive roots) is scheduled on {!Parallel.Pool.run_dag}'s
    work-stealing mode; results are merged in canonical cell order, so
    the output — and {!digest} — is bit-identical for every [jobs]
    value, and every cell is bit-identical to an independent
    {!Pwcet.Estimator.estimate} call (pinned by test/test_grid.ml). *)

type spec = {
  benchmarks : (string * Isa.Program.t) list;  (** resolved by the caller *)
  configs : Cache.Config.t list;  (** the geometry axis *)
  mechanisms : Pwcet.Mechanism.t list;
  pfail_grid : float list;
  targets : float list;  (** exceedance targets each cell reports pWCET at *)
  engine : [ `Path | `Ilp ];
  exact : bool;
  impl : [ `Naive | `Sliced ];
}

type point = {
  bench : string;
  config : Cache.Config.t;
  mechanism : Pwcet.Mechanism.t;
  pfail : float;
}
(** One cell's coordinates. *)

type cell = {
  point : point;
  wcet_ff : int;  (** fault-free WCET, cycles *)
  pbf : float;  (** derived block-failure probability *)
  pwcets : (float * int) list;  (** (target, pWCET cycles) in spec target order *)
  rung : Robust.Rung.t;  (** loosest ladder rung anywhere in the cell *)
  degraded : int;  (** non-[Exact] FMM cells behind this estimate *)
}

val points : spec -> point list
(** The grid's cells in canonical order — benchmark x geometry x
    mechanism x pfail, each axis in spec order. Every output of this
    module (results, digest, journals, JSON) follows this order. *)

val point_key : point -> string
(** Stable human-readable key of a point
    (["bench/SxWxL+hit+miss/mech/pfail-bits"]) — for replay tables and
    error reports. *)

val identity : spec -> (string * string) list
(** Labelled content identity of the whole grid — per-(program,
    geometry) estimator identities plus the mechanism/pfail/target axes
    and engine flags — for resume-journal run keys and daemon request
    dedup. Anything that can change a cell's value changes the key. *)

val run :
  ?jobs:int ->
  ?budget:Robust.Budget.t ->
  ?store:Store.Artifact.t ->
  ?skip:(point -> cell option) ->
  ?on_cell:(cell -> unit) ->
  ?chaos:Chaos.Injector.t ->
  spec ->
  (point * (cell, Robust.Pwcet_error.t) result) list
(** Evaluates the grid in one pass, returning one outcome per point in
    canonical order. [jobs] sizes the work-stealing pool; results are
    bit-identical for every value. [skip] short-circuits points whose
    cell is already known (journal replay) — a fully replayed panel
    never even builds its analysis nodes. [on_cell] observes each
    {e freshly computed} cell as it completes, possibly from a worker
    domain and in completion (not canonical) order — callers that
    append to a journal must serialise themselves.

    [budget] is threaded into every analysis stage, each of which
    degrades internally and completes — a starved grid yields looser
    (non-[Exact] rung) cells, not missing ones. [Error] outcomes only
    arise from a crashed worker (or its downstream cells). Budgeted
    runs bypass [store] exactly as in {!Pwcet.Estimator}.

    [chaos] arms DAG-node death/stall injection ({!Parallel.Pool.run_dag},
    site [pool.node], keyed by node index): a killed node and its
    dependents surface as typed [Error] cells, identically at every
    [jobs] value — the grid digest over outcomes stays jobs-invariant
    even under injected faults. *)

val digest : (point * (cell, Robust.Pwcet_error.t) result) list -> string
(** Hex digest over the canonical encodings of the outcomes, in the
    given order — equal iff the grids are cell-for-cell bit-identical.
    Pinned equal across [jobs] values and across cold/warm/resumed
    runs by test/test_grid.ml and scripts/check_grid.sh. *)

val cell_to_wire : cell -> string
(** Canonical binary payload of a cell (journal records, digests) —
    deterministic byte-for-byte in the cell's contents. *)

val cell_of_wire : string -> (cell, string) result
(** Inverse of {!cell_to_wire}; revalidates geometry, mechanism, rung
    tags and value ranges, so a replayed journal record that decodes is
    as trustworthy as a fresh computation. *)

module Rat = Numeric.Rat
module Bigint = Numeric.Bigint

type result =
  | Optimal of Simplex.solution
  | Infeasible
  | Unbounded

type status =
  | Finished of result
  | Exhausted

(* A subproblem is the base LP plus variable bound cuts. *)
type cut = {
  var : Lp.var;
  relation : Lp.relation;
  bound : Bigint.t;
}

exception Out_of_budget

let rebuild base cuts =
  let lp = Lp.create () in
  for _ = 1 to Lp.num_vars base do
    ignore (Lp.add_var lp ())
  done;
  List.iter
    (fun (c : Lp.constr) -> Lp.add_constr lp ~name:c.Lp.cname c.Lp.coeffs c.Lp.relation c.Lp.rhs)
    (Lp.constraints base);
  List.iter
    (fun cut -> Lp.add_constr lp [ (cut.var, Rat.one) ] cut.relation (Rat.of_bigint cut.bound))
    cuts;
  Lp.set_objective lp (Lp.objective base);
  lp

let first_fractional base (sol : Simplex.solution) =
  let n = Array.length sol.Simplex.values in
  let rec go v =
    if v >= n then None
    else if Lp.is_integer base v && not (Rat.is_integer sol.Simplex.values.(v)) then
      Some (v, sol.Simplex.values.(v))
    else go (v + 1)
  in
  go 0

let solve_within ?(max_nodes = Robust.Budget.default_ilp_nodes) ?deadline base =
  let incumbent = ref None in
  let nodes = ref 0 in
  let root_unbounded = ref false in
  let deadline_passed () =
    match deadline with
    | None -> false
    (* Poll the clock only every 32 nodes: gettimeofday per node would
       dominate the tiny LP re-solves of IPET trees. *)
    | Some d -> !nodes land 31 = 0 && Robust.Budget.now () > d
  in
  let rec branch cuts =
    incr nodes;
    if !nodes > max_nodes || deadline_passed () then raise Out_of_budget;
    match Simplex.solve (rebuild base cuts) with
    | Simplex.Infeasible -> ()
    | Simplex.Unbounded ->
      (* Only possible at the root: cuts merely restrict the region. *)
      root_unbounded := true
    | Simplex.Optimal sol ->
      let dominated =
        match !incumbent with
        | Some (inc : Simplex.solution) -> Rat.compare sol.Simplex.objective inc.Simplex.objective <= 0
        | None -> false
      in
      if not dominated then begin
        match first_fractional base sol with
        | None -> incumbent := Some sol
        | Some (v, value) ->
          branch ({ var = v; relation = Lp.Le; bound = Rat.floor value } :: cuts);
          if not !root_unbounded then
            branch ({ var = v; relation = Lp.Ge; bound = Rat.ceil value } :: cuts)
      end
  in
  (* One unconditional clock read at entry: an already-expired deadline
     must exhaust deterministically even when the tree would finish
     inside the first polling window. *)
  let expired_at_entry =
    match deadline with None -> false | Some d -> Robust.Budget.now () > d
  in
  if expired_at_entry then Exhausted
  else
    match branch [] with
    | () ->
      Finished
        (if !root_unbounded then Unbounded
         else match !incumbent with Some sol -> Optimal sol | None -> Infeasible)
    | exception Out_of_budget -> Exhausted

let solve ?(max_nodes = Robust.Budget.default_ilp_nodes) base =
  match solve_within ~max_nodes base with
  | Finished r -> r
  | Exhausted -> failwith "Branch_bound.solve: node budget exhausted"

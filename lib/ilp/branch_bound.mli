(** Branch-and-bound for integer programs on top of {!Simplex}.

    Depth-first search branching on the first fractional
    integer-marked variable, pruning with the incumbent objective.
    IPET systems have near-integral relaxations, so the tree is almost
    always trivial. *)

type result =
  | Optimal of Simplex.solution
  | Infeasible
  | Unbounded  (** the root relaxation is unbounded *)

type status =
  | Finished of result
  | Exhausted
      (** the node budget or deadline ran out before the search
          finished — no partial answer is exposed (an incumbent found
          early could {e under}-approximate the maximum, which WCET
          soundness forbids); callers degrade to the LP relaxation
          instead (see {!Solver.bounded_objective}). *)

val solve_within : ?max_nodes:int -> ?deadline:float -> Lp.t -> status
(** Budgeted search: at most [max_nodes] subproblems (default
    {!Robust.Budget.default_ilp_nodes}) and, when [deadline] (absolute,
    {!Robust.Budget.now} scale) is given, stops once it passes. Never
    raises on exhaustion. *)

val solve : ?max_nodes:int -> Lp.t -> result
(** Compatibility wrapper over {!solve_within}.
    @raise Failure when the node budget (default 100000) is exhausted —
    never silently under-approximates. *)

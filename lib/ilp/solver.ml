module Rat = Numeric.Rat
module Bigint = Numeric.Bigint
module Budget = Robust.Budget
module Rung = Robust.Rung
module E = Robust.Pwcet_error

type outcome = {
  objective : Rat.t;
  values : Rat.t array;
  integral : bool;
}

type result =
  | Solution of outcome
  | Infeasible
  | Unbounded

type bound = {
  value : int;
  rung : Rung.t;
}

let is_integral lp (sol : Simplex.solution) =
  let n = Array.length sol.Simplex.values in
  let rec go v =
    v >= n || ((not (Lp.is_integer lp v)) || Rat.is_integer sol.Simplex.values.(v)) && go (v + 1)
  in
  go 0

let of_simplex lp = function
  | Simplex.Optimal sol ->
    Solution
      {
        objective = sol.Simplex.objective;
        values = sol.Simplex.values;
        integral = is_integral lp sol;
      }
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded

let relaxation lp = of_simplex lp (Simplex.solve lp)

let integer lp =
  match Branch_bound.solve lp with
  | Branch_bound.Optimal sol ->
    Solution
      {
        objective = sol.Simplex.objective;
        values = sol.Simplex.values;
        integral = true;
      }
  | Branch_bound.Infeasible -> Infeasible
  | Branch_bound.Unbounded -> Unbounded

let maximize ?(exact = true) lp =
  match relaxation lp with
  | Solution o when (not o.integral) && exact -> integer lp
  | r -> r

let objective_upper_bound lp =
  match relaxation lp with
  | Solution o -> Bigint.to_int_exn (Rat.ceil o.objective)
  | Infeasible -> failwith "Solver.objective_upper_bound: infeasible model"
  | Unbounded -> failwith "Solver.objective_upper_bound: unbounded model"

(* --- degradation ladder --------------------------------------------------- *)

let ceil_int (r : Rat.t) = Bigint.to_int_exn (Rat.ceil r)

(* Rung 2 of the ladder: the LP relaxation. For a maximisation ILP the
   relaxation optimum always dominates the integer optimum, so its
   ceiling is a sound (looser) WCET-style bound. *)
let relaxed_bound lp =
  match Simplex.solve lp with
  | Simplex.Optimal sol -> Ok { value = ceil_int sol.Simplex.objective; rung = Rung.Relaxed }
  | Simplex.Infeasible -> Error (E.Infeasible "LP relaxation is infeasible")
  | Simplex.Unbounded -> Error (E.Unbounded "LP relaxation is unbounded")

let bounded_objective ?(budget = Budget.unlimited) ?(exact = true) lp =
  if not exact then relaxed_bound lp
  else begin
    let max_nodes = Option.value budget.Budget.ilp_nodes ~default:Budget.default_ilp_nodes in
    match Branch_bound.solve_within ~max_nodes ?deadline:budget.Budget.deadline lp with
    | Branch_bound.Finished (Branch_bound.Optimal sol) ->
      Ok { value = ceil_int sol.Simplex.objective; rung = Rung.Exact }
    | Branch_bound.Finished Branch_bound.Infeasible -> Error (E.Infeasible "ILP is infeasible")
    | Branch_bound.Finished Branch_bound.Unbounded -> Error (E.Unbounded "ILP is unbounded")
    | Branch_bound.Exhausted ->
      (* Degrade: the exact search ran out of nodes or time; fall back
         to the (always-terminating) relaxation bound. *)
      relaxed_bound lp
  end

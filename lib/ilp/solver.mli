(** Facade over {!Simplex} and {!Branch_bound} with the conventions the
    WCET pipeline needs. *)

type outcome = {
  objective : Numeric.Rat.t;
  values : Numeric.Rat.t array;
  integral : bool;  (** every integer-marked variable has an integral value *)
}

type result =
  | Solution of outcome
  | Infeasible
  | Unbounded

type bound = {
  value : int;  (** smallest integer >= the solved objective *)
  rung : Robust.Rung.t;  (** the ladder rung that produced it *)
}

val relaxation : Lp.t -> result
(** LP relaxation only. For maximisation, its objective is always a
    sound {e upper} bound on the ILP optimum. *)

val integer : Lp.t -> result
(** Exact ILP optimum via branch-and-bound. *)

val maximize : ?exact:bool -> Lp.t -> result
(** [maximize lp] solves the relaxation and, when some integer variable
    comes out fractional and [exact] is true (the default), falls back
    to branch-and-bound. With [exact:false] a fractional relaxation
    result is returned as-is — still a sound WCET bound, possibly a
    slightly conservative one. *)

val bounded_objective :
  ?budget:Robust.Budget.t -> ?exact:bool -> Lp.t -> (bound, Robust.Pwcet_error.t) Stdlib.result
(** The budgeted two-rung solver ladder for maximisation ILPs:
    branch-and-bound within [budget] (node cap and deadline), degrading
    to the LP-relaxation upper bound when the budget runs out — sound
    because relaxing integrality can only increase a maximum. With
    [exact:false] the relaxation is used directly (rung [Relaxed]).
    [Error] only on genuinely broken models ([Infeasible] /
    [Unbounded]); the third, LP-free rung ([Structural]) is assembled
    by the IPET layer, which owns the loop-bound information
    ({!Ipet.Wcet.structural_bound}, {!Ipet.Delta.structural_extra_misses}).
    Never raises. *)

val objective_upper_bound : Lp.t -> int
(** Smallest integer [>=] the relaxation optimum: the sound WCET-style
    scalar bound. @raise Failure on infeasible or unbounded models. *)

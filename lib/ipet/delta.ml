module Lp = Ilp.Lp
module Chmc = Cache_analysis.Chmc
module Context = Cache_analysis.Context
module Rung = Robust.Rung
module E = Robust.Pwcet_error

(* Per-execution miss indicator of a classification (first-miss counts
   through its one-shot variable instead). *)
let per_exec_miss = function
  | Chmc.Always_miss | Chmc.Not_classified -> 1
  | Chmc.Always_hit | Chmc.First_miss _ -> 0

let scope_cap model loops = function
  | Chmc.Global -> ([], 1)
  | Chmc.Loop header -> (
    match List.find_opt (fun (l : Cfg.Loop.loop) -> l.Cfg.Loop.header = header) loops with
    | Some l -> Model.entry_terms_of_loop model l
    | None -> ([], 1))

let path_scope = function
  | Chmc.Global -> Path_engine.Whole_program
  | Chmc.Loop header -> Path_engine.Loop_scope header

(* Per-node delta in misses-per-execution and the one-shot deltas, for
   references mapping to a set selected by [member]. *)
let node_delta ~graph ~baseline ~degraded ~member u =
  let node = Cfg.Graph.node graph u in
  let per_exec = ref 0 in
  let shots = ref [] in
  for k = 0 to node.Cfg.Graph.len - 1 do
    if member.(Chmc.cache_set baseline ~node:u ~offset:k) then begin
      let base = Chmc.classification baseline ~node:u ~offset:k in
      let degr = degraded ~node:u ~offset:k in
      if base <> degr then begin
        (* Per-execution part, clamped non-negative (the SRB can
           genuinely improve on the baseline; the paper only removes
           misses, never credits). *)
        per_exec := !per_exec + max 0 (per_exec_miss degr - per_exec_miss base);
        (* One-shot part: degraded first-miss where the baseline was
           strictly better (always-hit), or first-miss with a different
           (smaller) scope. The baseline's own one-shot allowance is
           dropped, never subtracted — conservative. *)
        match (degr, base) with
        | Chmc.First_miss scope, (Chmc.Always_hit | Chmc.First_miss _) ->
          shots := (scope, 1) :: !shots
        | _ -> ()
      end
    end
  done;
  (!per_exec, !shots)

(* Shared candidate-node enumeration: with a context, only the sets'
   touching nodes (the others cannot reference the sets, hence
   contribute nothing); otherwise every reachable node. *)
let candidate_nodes ~graph ~sets ?ctx () =
  match ctx with
  | Some ctx ->
    List.concat_map (fun s -> Array.to_list ctx.Context.touching.(s)) sets
    |> List.sort_uniq compare
  | None ->
    let n = Cfg.Graph.node_count graph in
    let reachable = Array.make n false in
    Array.iter (fun u -> reachable.(u) <- true) (Cfg.Graph.reverse_postorder graph);
    List.filter (fun u -> reachable.(u)) (List.init n Fun.id)

let member_of_sets ~config ~sets =
  let member = Array.make config.Cache.Config.sets false in
  List.iter (fun s -> member.(s) <- true) sets;
  member

(* The [Structural] rung for miss deltas: each reference to a selected
   set turns into at most one extra miss per execution of its node, and
   executions are bounded by the loop-bound product. Needs neither a
   degraded classification nor a solver, so it also serves as the
   fallback FMM row for a crashed or deadline-starved worker. *)
let structural_of_candidates ~graph ~loops ~baseline ~member candidates =
  List.fold_left
    (fun acc u ->
      let node = Cfg.Graph.node graph u in
      let refs = ref 0 in
      for k = 0 to node.Cfg.Graph.len - 1 do
        if member.(Chmc.cache_set baseline ~node:u ~offset:k) then incr refs
      done;
      Model.sat_add acc (Model.sat_mul !refs (Model.execution_count_bound loops u)))
    0 candidates

let structural_extra_misses ~graph ~loops ~config ~baseline ~sets ?ctx () =
  let member = member_of_sets ~config ~sets in
  let candidates = candidate_nodes ~graph ~sets ?ctx () in
  structural_of_candidates ~graph ~loops ~baseline ~member candidates

let extra_misses_ilp ~graph ~loops ~baseline ~degraded ~member ~candidates ~exact ?budget () =
  let model = Model.build graph loops in
  let lp = Model.lp model in
  let coeffs : (Lp.var, int) Hashtbl.t = Hashtbl.create 64 in
  let constant = ref 0 in
  let add_terms terms const factor =
    List.iter
      (fun (v, c) ->
        Hashtbl.replace coeffs v (Option.value ~default:0 (Hashtbl.find_opt coeffs v) + (c * factor)))
      terms;
    constant := !constant + (const * factor)
  in
  let any_delta = ref false in
  List.iter
    (fun u ->
      if Model.reachable model u then begin
        let per_exec, shots = node_delta ~graph ~baseline ~degraded ~member u in
        List.iteri
          (fun idx (scope, amount) ->
            any_delta := true;
            let y =
              Model.add_capped_counter model
                ~name:(Printf.sprintf "dfm_%d_%d" u idx)
                ~node:u ~cap:(scope_cap model loops scope)
            in
            add_terms [ (y, 1) ] 0 amount)
          shots;
        if per_exec > 0 then begin
          any_delta := true;
          let terms, const = Model.execution_terms model u in
          add_terms terms const per_exec
        end
      end)
    candidates;
  if not !any_delta then Ok (0, Rung.Exact)
  else begin
    Lp.set_objective_int lp (Hashtbl.fold (fun v c acc -> (v, c) :: acc) coeffs []);
    match Ilp.Solver.bounded_objective ?budget ~exact lp with
    | Ok { Ilp.Solver.value; rung } -> Ok (max 0 (value + !constant), rung)
    | Error (E.Unbounded _ | E.Budget_exhausted _) ->
      Ok
        ( structural_of_candidates ~graph ~loops ~baseline ~member candidates,
          Rung.Structural )
    | Error e -> Error e
  end

let extra_misses_path ~graph ~loops ~baseline ~degraded ~member ~candidates =
  let n = Cfg.Graph.node_count graph in
  let per_exec = Array.make n 0 in
  let one_shots = ref [] in
  let any_delta = ref false in
  List.iter
    (fun u ->
      let d, shots = node_delta ~graph ~baseline ~degraded ~member u in
      per_exec.(u) <- d;
      if d > 0 || shots <> [] then any_delta := true;
      List.iter (fun (scope, amount) -> one_shots := (path_scope scope, amount) :: !one_shots) shots)
    candidates;
  if not !any_delta then 0
  else
    Path_engine.longest ~graph ~loops ~node_cost:(fun u -> per_exec.(u)) ~one_shots:!one_shots

let extra_misses_result ~graph ~loops ~config ~baseline ~degraded ~sets ?ctx ?(engine = `Path)
    ?(exact = false) ?budget () =
  let member = member_of_sets ~config ~sets in
  let candidates = candidate_nodes ~graph ~sets ?ctx () in
  match engine with
  | `Path -> Ok (extra_misses_path ~graph ~loops ~baseline ~degraded ~member ~candidates, Rung.Exact)
  | `Ilp -> extra_misses_ilp ~graph ~loops ~baseline ~degraded ~member ~candidates ~exact ?budget ()

let extra_misses ~graph ~loops ~config ~baseline ~degraded ~sets ?ctx ?(engine = `Path)
    ?(exact = false) () =
  match
    extra_misses_result ~graph ~loops ~config ~baseline ~degraded ~sets ?ctx ~engine ~exact ()
  with
  | Ok (v, _) -> v
  | Error e -> E.raise_error e

(** Fault-induced extra-miss bounds — the entries of the Fault Miss Map.

    For a cache set [s] and a degraded classification (obtained by
    re-analysing with reduced associativity, or with the SRB rule for a
    fully faulty set), [extra_misses] solves an ILP "close to IPET"
    (paper Section II-C): maximise, over all structurally feasible
    paths, the number of additional misses the degraded classification
    implies for references mapping to [s], relative to the fault-free
    classification.

    Soundness: classifications degrade monotonically with shrinking
    associativity, the per-reference delta coefficients are clamped
    non-negative, baseline first-miss allowances are dropped (never
    subtracted), and max over paths is subadditive — so the result
    over-approximates [WCET_f - WCET_0] in units of misses.

    Under a {!Robust.Budget.t} the ILP engine degrades instead of
    failing: exact branch-and-bound -> LP-relaxation upper bound ->
    {!structural_extra_misses}; each outcome carries the
    {!Robust.Rung.t} that produced it. *)

val extra_misses_result :
  graph:Cfg.Graph.t ->
  loops:Cfg.Loop.loop list ->
  config:Cache.Config.t ->
  baseline:Cache_analysis.Chmc.t ->
  degraded:(node:int -> offset:int -> Cache_analysis.Chmc.classification) ->
  sets:int list ->
  ?ctx:Cache_analysis.Context.t ->
  ?engine:[ `Path | `Ilp ] ->
  ?exact:bool ->
  ?budget:Robust.Budget.t ->
  unit ->
  (int * Robust.Rung.t, Robust.Pwcet_error.t) Stdlib.result
(** Upper bound (>= 0) on the number of fault-induced misses for
    references mapping to any of the cache sets [sets] (usually a
    single set; the refined SRB analysis passes dead-set pairs),
    tagged with the degradation rung that produced it. [engine]
    selects the tree-based path engine (default; always [Exact] for
    its cost model) or the IPET ILP. [ctx] supplies precomputed
    reachability and the per-set touching-node index, so only nodes
    that can actually carry a delta are scanned — the result is
    identical either way. [Error] only on an infeasible flow system
    (cannot happen for models built from a real CFG). *)

val extra_misses :
  graph:Cfg.Graph.t ->
  loops:Cfg.Loop.loop list ->
  config:Cache.Config.t ->
  baseline:Cache_analysis.Chmc.t ->
  degraded:(node:int -> offset:int -> Cache_analysis.Chmc.classification) ->
  sets:int list ->
  ?ctx:Cache_analysis.Context.t ->
  ?engine:[ `Path | `Ilp ] ->
  ?exact:bool ->
  unit ->
  int
(** Raising wrapper over {!extra_misses_result} (drops the rung).
    @raise Robust.Pwcet_error.Error on [Error] outcomes. *)

val structural_extra_misses :
  graph:Cfg.Graph.t ->
  loops:Cfg.Loop.loop list ->
  config:Cache.Config.t ->
  baseline:Cache_analysis.Chmc.t ->
  sets:int list ->
  ?ctx:Cache_analysis.Context.t ->
  unit ->
  int
(** The [Structural] rung, computable with no degraded analysis and no
    solver: every reference to one of [sets] misses at most once per
    execution of its node, weighted by {!Model.execution_count_bound}.
    Dominates {!extra_misses} for {e every} degraded classification —
    which is what makes it a safe fallback row when a per-set FMM
    worker crashes or the deadline passes. *)

(** Fault-induced extra-miss bounds — the entries of the Fault Miss Map.

    For a cache set [s] and a degraded classification (obtained by
    re-analysing with reduced associativity, or with the SRB rule for a
    fully faulty set), [extra_misses] solves an ILP "close to IPET"
    (paper Section II-C): maximise, over all structurally feasible
    paths, the number of additional misses the degraded classification
    implies for references mapping to [s], relative to the fault-free
    classification.

    Soundness: classifications degrade monotonically with shrinking
    associativity, the per-reference delta coefficients are clamped
    non-negative, baseline first-miss allowances are dropped (never
    subtracted), and max over paths is subadditive — so the result
    over-approximates [WCET_f - WCET_0] in units of misses. *)

val extra_misses :
  graph:Cfg.Graph.t ->
  loops:Cfg.Loop.loop list ->
  config:Cache.Config.t ->
  baseline:Cache_analysis.Chmc.t ->
  degraded:(node:int -> offset:int -> Cache_analysis.Chmc.classification) ->
  sets:int list ->
  ?ctx:Cache_analysis.Context.t ->
  ?engine:[ `Path | `Ilp ] ->
  ?exact:bool ->
  unit ->
  int
(** Upper bound (>= 0) on the number of fault-induced misses for
    references mapping to any of the cache sets [sets] (usually a
    single set; the refined SRB analysis passes dead-set pairs).
    [engine] selects the tree-based path engine (default) or the IPET
    ILP, as in {!Wcet.compute}. [ctx] supplies precomputed reachability
    and the per-set touching-node index, so only nodes that can
    actually carry a delta are scanned — the result is identical either
    way. *)

module Lp = Ilp.Lp

type t = {
  lp : Lp.t;
  graph : Cfg.Graph.t;
  edge_vars : (int * int, Lp.var) Hashtbl.t;
  reachable : bool array;
}

let build graph loops =
  let lp = Lp.create () in
  let n = Cfg.Graph.node_count graph in
  let reachable = Array.make n false in
  Array.iter (fun u -> reachable.(u) <- true) (Cfg.Graph.reverse_postorder graph);
  let edge_vars = Hashtbl.create 64 in
  List.iter
    (fun (u, v) ->
      if reachable.(u) && reachable.(v) then
        Hashtbl.replace edge_vars (u, v)
          (Lp.add_var lp ~name:(Printf.sprintf "e_%d_%d" u v) ()))
    (Cfg.Graph.edges graph);
  let exit_vars = Hashtbl.create 4 in
  List.iter
    (fun u ->
      if reachable.(u) then
        Hashtbl.replace exit_vars u (Lp.add_var lp ~name:(Printf.sprintf "exit_%d" u) ()))
    graph.Cfg.Graph.exits;
  (* Flow conservation: in + [entry] = out + [exit]. *)
  for u = 0 to n - 1 do
    if reachable.(u) then begin
      let in_terms =
        List.filter_map
          (fun p -> Option.map (fun v -> (v, 1)) (Hashtbl.find_opt edge_vars (p, u)))
          (Cfg.Graph.predecessors graph u)
      in
      let out_terms =
        List.filter_map
          (fun s -> Option.map (fun v -> (v, -1)) (Hashtbl.find_opt edge_vars (u, s)))
          (Cfg.Graph.successors graph u)
      in
      let exit_term =
        match Hashtbl.find_opt exit_vars u with Some v -> [ (v, -1) ] | None -> []
      in
      let entry_const = if u = graph.Cfg.Graph.entry then 1 else 0 in
      Lp.add_constr_int lp
        ~name:(Printf.sprintf "flow_%d" u)
        (in_terms @ out_terms @ exit_term)
        Lp.Eq (-entry_const)
    end
  done;
  (* Exactly one exit is taken. *)
  Lp.add_constr_int lp ~name:"sink"
    (Hashtbl.fold (fun _ v acc -> (v, 1) :: acc) exit_vars [])
    Lp.Eq 1;
  let model = { lp; graph; edge_vars; reachable } in
  (* Loop bounds: sum(back) - bound * sum(entries) <= bound * [header=entry]. *)
  List.iter
    (fun (l : Cfg.Loop.loop) ->
      let back =
        List.filter_map (fun e -> Option.map (fun v -> (v, 1)) (Hashtbl.find_opt edge_vars e)) l.Cfg.Loop.back_edges
      in
      let entries =
        List.filter_map
          (fun e -> Option.map (fun v -> (v, -l.Cfg.Loop.bound)) (Hashtbl.find_opt edge_vars e))
          l.Cfg.Loop.entry_edges
      in
      let const = if l.Cfg.Loop.header = graph.Cfg.Graph.entry then l.Cfg.Loop.bound else 0 in
      Lp.add_constr_int lp
        ~name:(Printf.sprintf "loop_%d" l.Cfg.Loop.header)
        (back @ entries) Lp.Le const)
    loops;
  model

let lp t = t.lp
let graph t = t.graph
let reachable t u = t.reachable.(u)

let edge_var t e = Hashtbl.find t.edge_vars e

let execution_terms t u =
  let terms =
    List.filter_map
      (fun p -> Option.map (fun v -> (v, 1)) (Hashtbl.find_opt t.edge_vars (p, u)))
      (Cfg.Graph.predecessors t.graph u)
  in
  let const = if u = t.graph.Cfg.Graph.entry then 1 else 0 in
  (terms, const)

let entry_terms_of_loop t (l : Cfg.Loop.loop) =
  let terms =
    List.filter_map
      (fun e -> Option.map (fun v -> (v, 1)) (Hashtbl.find_opt t.edge_vars e))
      l.Cfg.Loop.entry_edges
  in
  let const = if l.Cfg.Loop.header = t.graph.Cfg.Graph.entry then 1 else 0 in
  (terms, const)

(* Saturating arithmetic for the structural bounds: deep loop nests can
   overflow a product of (bound + 1) factors; clamping at [max_int]
   keeps the bound sound (it only ever gets looser). Operands are
   non-negative. *)
let sat_add a b = if a > max_int - b then max_int else a + b
let sat_mul a b = if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

let execution_count_bound loops u =
  List.fold_left
    (fun acc (l : Cfg.Loop.loop) -> sat_mul acc (sat_add l.Cfg.Loop.bound 1))
    1
    (Cfg.Loop.loops_containing loops u)

let add_capped_counter t ~name ~node ~cap =
  let y = Lp.add_var t.lp ~name () in
  let exec_terms, exec_const = execution_terms t node in
  Lp.add_constr_int t.lp
    ~name:(name ^ "_exec")
    ((y, 1) :: List.map (fun (v, c) -> (v, -c)) exec_terms)
    Lp.Le exec_const;
  let cap_terms, cap_const = cap in
  Lp.add_constr_int t.lp
    ~name:(name ^ "_cap")
    ((y, 1) :: List.map (fun (v, c) -> (v, -c)) cap_terms)
    Lp.Le cap_const;
  y

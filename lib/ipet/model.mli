(** IPET flow model (Li & Malik): one integer variable per CFG edge plus
    one virtual exit edge per exit node, flow conservation at every
    reachable node, a unit source at the entry, a unit sink across the
    exits, and the loop-bound constraints
    [sum(back edges) <= bound * sum(entry edges)].

    Unreachable nodes are excluded so that disconnected circulation
    cannot inflate the objective. Objectives are added on top by
    {!Wcet} and {!Delta}. *)

type t

val build : Cfg.Graph.t -> Cfg.Loop.loop list -> t

val lp : t -> Ilp.Lp.t

val graph : t -> Cfg.Graph.t

val reachable : t -> int -> bool

val edge_var : t -> int * int -> Ilp.Lp.var
(** @raise Not_found for edges not in the model. *)

val execution_terms : t -> int -> (Ilp.Lp.var * int) list * int
(** [execution_terms t u] is the execution count of node [u] as (linear
    terms, constant): the sum of incoming edge variables, plus 1 when
    [u] is the entry node. *)

val entry_terms_of_loop : t -> Cfg.Loop.loop -> (Ilp.Lp.var * int) list * int
(** Loop-entry count (used to bound first-miss variables). *)

val add_capped_counter : t -> name:string -> node:int -> cap:(Ilp.Lp.var * int) list * int -> Ilp.Lp.var
(** A fresh variable [y] with [0 <= y <= execution count of node] and
    [y <= cap] — the shape of every first-miss counter. *)

val execution_count_bound : Cfg.Loop.loop list -> int -> int
(** Structural (LP-free) bound on the execution count of a node: the
    product of [(bound + 1)] over its enclosing loops ([1] outside any
    loop). Always dominates every feasible IPET execution count — the
    basis of the [Structural] degradation rung. Saturates at [max_int]
    instead of overflowing. *)

val sat_add : int -> int -> int
val sat_mul : int -> int -> int
(** Saturating non-negative arithmetic used by the structural bounds. *)

module Lp = Ilp.Lp
module Chmc = Cache_analysis.Chmc
module Rung = Robust.Rung
module E = Robust.Pwcet_error

type result = {
  wcet : int;
  lp_size : int * int;
}

let scope_cap model loops = function
  | Chmc.Global -> ([], 1)
  | Chmc.Loop header -> (
    match List.find_opt (fun (l : Cfg.Loop.loop) -> l.Cfg.Loop.header = header) loops with
    | Some l -> Model.entry_terms_of_loop model l
    | None -> ([], 1) (* cannot happen: scopes come from the same loop list *))

let path_scope = function
  | Chmc.Global -> Path_engine.Whole_program
  | Chmc.Loop header -> Path_engine.Loop_scope header

(* Per-execution fetch cost of a node and the one-shot (first-miss)
   penalties of its references. *)
let node_costs ~graph ~chmc ~config u =
  let node = Cfg.Graph.node graph u in
  let hit = config.Cache.Config.hit_latency in
  let miss = config.Cache.Config.miss_latency in
  let penalty = Cache.Config.miss_penalty config in
  let per_exec = ref 0 in
  let shots = ref [] in
  for k = 0 to node.Cfg.Graph.len - 1 do
    match Chmc.classification chmc ~node:u ~offset:k with
    | Chmc.Always_hit -> per_exec := !per_exec + hit
    | Chmc.First_miss scope ->
      per_exec := !per_exec + hit;
      shots := (scope, penalty) :: !shots
    | Chmc.Always_miss | Chmc.Not_classified -> per_exec := !per_exec + miss
  done;
  (!per_exec, !shots)

(* The bottom rung of the degradation ladder: every fetch pays the full
   miss latency, every node runs its loop-bound-product count. No LP is
   involved, so this bound is available even when the solver cannot
   finish; it dominates both the exact ILP optimum and the relaxation. *)
let structural_bound ~graph ~loops ~config =
  let miss = config.Cache.Config.miss_latency in
  let reachable = Array.make (Cfg.Graph.node_count graph) false in
  Array.iter (fun u -> reachable.(u) <- true) (Cfg.Graph.reverse_postorder graph);
  let total = ref 0 in
  Array.iteri
    (fun u r ->
      if r then begin
        let node = Cfg.Graph.node graph u in
        let per_exec = Model.sat_mul node.Cfg.Graph.len miss in
        total := Model.sat_add !total (Model.sat_mul per_exec (Model.execution_count_bound loops u))
      end)
    reachable;
  !total

let compute_ilp ~graph ~loops ~chmc ~config ~exact ?budget () =
  let model = Model.build graph loops in
  let lp = Model.lp model in
  let coeffs : (Lp.var, int) Hashtbl.t = Hashtbl.create 64 in
  let constant = ref 0 in
  let add_terms terms const factor =
    List.iter
      (fun (v, c) ->
        Hashtbl.replace coeffs v (Option.value ~default:0 (Hashtbl.find_opt coeffs v) + (c * factor)))
      terms;
    constant := !constant + (const * factor)
  in
  for u = 0 to Cfg.Graph.node_count graph - 1 do
    if Model.reachable model u then begin
      let per_exec, shots = node_costs ~graph ~chmc ~config u in
      List.iteri
        (fun idx (scope, amount) ->
          let y =
            Model.add_capped_counter model
              ~name:(Printf.sprintf "fm_%d_%d" u idx)
              ~node:u
              ~cap:(scope_cap model loops scope)
          in
          add_terms [ (y, 1) ] 0 amount)
        shots;
      if per_exec > 0 then begin
        let terms, const = Model.execution_terms model u in
        add_terms terms const per_exec
      end
    end
  done;
  Lp.set_objective_int lp (Hashtbl.fold (fun v c acc -> (v, c) :: acc) coeffs []);
  let lp_size = (Lp.num_vars lp, List.length (Lp.constraints lp)) in
  match Ilp.Solver.bounded_objective ?budget ~exact lp with
  | Ok { Ilp.Solver.value; rung } ->
    Ok ({ wcet = Model.sat_add value !constant; lp_size }, rung)
  | Error (E.Unbounded _ | E.Budget_exhausted _) ->
    (* Both remaining LP rungs are unusable; fall to the structural
       bound, which needs no solver at all. *)
    Ok ({ wcet = structural_bound ~graph ~loops ~config; lp_size }, Rung.Structural)
  | Error e -> Error e

let compute_path ~graph ~loops ~chmc ~config =
  let n = Cfg.Graph.node_count graph in
  let per_exec = Array.make n 0 in
  let one_shots = ref [] in
  let reachable = Array.make n false in
  Array.iter (fun u -> reachable.(u) <- true) (Cfg.Graph.reverse_postorder graph);
  for u = 0 to n - 1 do
    if reachable.(u) then begin
      let cost, shots = node_costs ~graph ~chmc ~config u in
      per_exec.(u) <- cost;
      List.iter (fun (scope, amount) -> one_shots := (path_scope scope, amount) :: !one_shots) shots
    end
  done;
  let wcet =
    Path_engine.longest ~graph ~loops ~node_cost:(fun u -> per_exec.(u)) ~one_shots:!one_shots
  in
  { wcet; lp_size = (0, 0) }

let compute_result ~graph ~loops ~chmc ~config ?(engine = `Path) ?(exact = false) ?budget () =
  match engine with
  | `Path -> Ok (compute_path ~graph ~loops ~chmc ~config, Rung.Exact)
  | `Ilp -> compute_ilp ~graph ~loops ~chmc ~config ~exact ?budget ()

let compute ~graph ~loops ~chmc ~config ?(engine = `Path) ?(exact = false) ?budget () =
  match compute_result ~graph ~loops ~chmc ~config ~engine ~exact ?budget () with
  | Ok (r, _) -> r
  | Error e -> E.raise_error e

(** Fault-free WCET computation.

    Instruction-fetch cost per the paper's setup: a reference classified
    always-hit or first-miss costs the hit latency per execution;
    always-miss / not-classified cost the miss latency per execution; a
    first-miss reference additionally pays the miss penalty once per
    entry of its persistence scope.

    Two interchangeable engines compute the bound:
    - [`Path] (default): the tree-based loop-collapse engine
      ({!Path_engine}) — near-linear time;
    - [`Ilp]: the IPET ILP (Li & Malik) over the exact-rational solver,
      as in the paper's toolchain (Cplex there).

    Both are sound upper bounds; on loop-structured programs they agree
    up to the slightly more conservative one-shot accounting of the path
    engine (tested against each other in [test/test_ipet.ml]).

    The ILP engine degrades rather than fails when the solver budget
    runs out: exact branch-and-bound -> LP relaxation -> structural
    loop-bound product ({!structural_bound}); the rung returned by
    {!compute_result} records which one produced the bound. *)

type result = {
  wcet : int;  (** cycles: instruction-cache contribution only *)
  lp_size : int * int;  (** (variables, constraints) — (0,0) for [`Path] *)
}

val node_costs :
  graph:Cfg.Graph.t ->
  chmc:Cache_analysis.Chmc.t ->
  config:Cache.Config.t ->
  int ->
  int * (Cache_analysis.Chmc.scope * int) list
(** Per-execution instruction-fetch cost of a node and its one-shot
    (first-miss) penalties — the building blocks of the objective,
    exposed for engines that combine several cost sources (the
    data-cache extension). *)

val structural_bound :
  graph:Cfg.Graph.t -> loops:Cfg.Loop.loop list -> config:Cache.Config.t -> int
(** The [Structural] degradation rung: every reachable fetch pays the
    miss latency, weighted by {!Model.execution_count_bound}. Dominates
    the exact WCET for every classification, with no LP solved. *)

val compute_result :
  graph:Cfg.Graph.t ->
  loops:Cfg.Loop.loop list ->
  chmc:Cache_analysis.Chmc.t ->
  config:Cache.Config.t ->
  ?engine:[ `Path | `Ilp ] ->
  ?exact:bool ->
  ?budget:Robust.Budget.t ->
  unit ->
  (result * Robust.Rung.t, Robust.Pwcet_error.t) Stdlib.result
(** [exact] (ILP engine only): branch-and-bound instead of the LP
    relaxation bound. [budget] caps the branch-and-bound search; when
    it runs out, the bound degrades one rung (relaxation, then the
    structural bound) instead of failing. [Error] only on genuinely
    broken models ([Infeasible] — an inconsistent flow system). The
    path engine is exact for its cost model and never consults the
    budget. *)

val compute :
  graph:Cfg.Graph.t ->
  loops:Cfg.Loop.loop list ->
  chmc:Cache_analysis.Chmc.t ->
  config:Cache.Config.t ->
  ?engine:[ `Path | `Ilp ] ->
  ?exact:bool ->
  ?budget:Robust.Budget.t ->
  unit ->
  result
(** Raising wrapper over {!compute_result} (drops the rung).
    @raise Robust.Pwcet_error.Error on [Error] outcomes. *)

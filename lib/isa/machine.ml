type status =
  | Halted
  | Out_of_fuel

type result = {
  status : status;
  cycles : int;
  instructions : int;
  return_value : int;
  regs : int array;
}

exception Trap of string

let trap fmt = Format.kasprintf (fun s -> raise (Trap s)) fmt

(* 32-bit two's-complement wrapping on native ints. *)
let wrap32 x =
  let m = x land 0xFFFF_FFFF in
  if m >= 0x8000_0000 then m - 0x1_0000_0000 else m

let to_u32 x = x land 0xFFFF_FFFF

let initial_sp = 0x7FFF_FFF0
let data_alignment_mask = 3

let eval_binop op a b =
  match (op : Instr.binop) with
  | Add -> wrap32 (a + b)
  | Sub -> wrap32 (a - b)
  | Mul -> wrap32 (a * b)
  | Div -> if b = 0 then trap "division by zero" else wrap32 (a / b)
  | Rem -> if b = 0 then trap "rem by zero" else wrap32 (a mod b)
  | And -> a land b |> wrap32
  | Or -> a lor b |> wrap32
  | Xor -> a lxor b |> wrap32
  | Nor -> wrap32 (lnot (a lor b))
  | Slt -> if a < b then 1 else 0
  | Sltu -> if to_u32 a < to_u32 b then 1 else 0
  | Sllv -> wrap32 (to_u32 a lsl (b land 31))
  | Srlv -> wrap32 (to_u32 a lsr (b land 31))
  | Srav -> wrap32 (a asr (b land 31))

let eval_cond c a b =
  match (c : Instr.cond) with
  | Eq -> a = b
  | Ne -> a <> b
  | Lez -> a <= 0
  | Gtz -> a > 0
  | Ltz -> a < 0
  | Gez -> a >= 0

let run ?(max_steps = 50_000_000) ?(args = []) ?(memory_init = []) ?(fetch = fun _ -> 1)
    ?(data_access = fun _ ~write:_ -> 0) ?on_fetch program =
  let regs = Array.make Reg.count 0 in
  regs.(Reg.index Reg.sp) <- initial_sp;
  List.iteri
    (fun i v ->
      if i < 4 then regs.(Reg.index Reg.a0 + i) <- wrap32 v
      else invalid_arg "Machine.run: more than 4 arguments")
    args;
  (* Word-granular sparse memory; bytes are carved out of words. *)
  let memory : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun (addr, v) ->
      if addr land data_alignment_mask <> 0 then trap "unaligned memory_init at %#x" addr;
      Hashtbl.replace memory (addr asr 2) (wrap32 v))
    memory_init;
  let load_word addr =
    if addr land data_alignment_mask <> 0 then trap "unaligned lw at %#x" addr;
    match Hashtbl.find_opt memory (addr asr 2) with Some v -> v | None -> 0
  in
  let store_word addr v =
    if addr land data_alignment_mask <> 0 then trap "unaligned sw at %#x" addr;
    Hashtbl.replace memory (addr asr 2) (wrap32 v)
  in
  let load_byte addr =
    let word = match Hashtbl.find_opt memory (addr asr 2) with Some v -> v | None -> 0 in
    let shift = (addr land 3) * 8 in
    let byte = (to_u32 word lsr shift) land 0xFF in
    if byte >= 0x80 then byte - 0x100 else byte
  in
  let store_byte addr v =
    let word = match Hashtbl.find_opt memory (addr asr 2) with Some v -> v | None -> 0 in
    let shift = (addr land 3) * 8 in
    let cleared = to_u32 word land lnot (0xFF lsl shift) in
    Hashtbl.replace memory (addr asr 2) (wrap32 (cleared lor ((v land 0xFF) lsl shift)))
  in
  let get r = regs.(Reg.index r) in
  let set r v = if not (Reg.equal r Reg.zero) then regs.(Reg.index r) <- wrap32 v in
  let cycles = ref 0 in
  let executed = ref 0 in
  let pc = ref program.Program.entry in
  let halted = ref false in
  (try
     while (not !halted) && !executed < max_steps do
       let index = !pc in
       if index < 0 || index >= Program.instruction_count program then
         trap "pc outside text segment (index %d)" index;
       let addr = Program.address_of_index program index in
       cycles := !cycles + fetch addr;
       (match on_fetch with Some f -> f addr | None -> ());
       incr executed;
       let next = index + 1 in
       (match Program.instruction program index with
       | Alu (op, rd, rs, rt) ->
         set rd (eval_binop op (get rs) (get rt));
         pc := next
       | Alui (op, rd, rs, imm) ->
         set rd (eval_binop op (get rs) imm);
         pc := next
       | Shift (op, rd, rs, shamt) ->
         set rd (eval_binop op (get rs) shamt);
         pc := next
       | Li (rd, imm) ->
         set rd imm;
         pc := next
       | Lw (rt, off, base) ->
         let a = get base + off in
         cycles := !cycles + data_access a ~write:false;
         set rt (load_word a);
         pc := next
       | Sw (rt, off, base) ->
         let a = get base + off in
         cycles := !cycles + data_access a ~write:true;
         store_word a (get rt);
         pc := next
       | Lb (rt, off, base) ->
         let a = get base + off in
         cycles := !cycles + data_access a ~write:false;
         set rt (load_byte a);
         pc := next
       | Sb (rt, off, base) ->
         let a = get base + off in
         cycles := !cycles + data_access a ~write:true;
         store_byte a (get rt);
         pc := next
       | Beq2 (c, rs, rt, target) -> pc := if eval_cond c (get rs) (get rt) then target else next
       | Beqz (c, rs, target) -> pc := if eval_cond c (get rs) 0 then target else next
       | J target -> pc := target
       | Jal target ->
         set Reg.ra (Program.address_of_index program next);
         pc := target
       | Jr r -> pc := Program.index_of_address program (get r)
       | Nop -> pc := next
       | Halt -> halted := true)
     done
   with Invalid_argument msg -> trap "invalid jump: %s" msg);
  {
    status = (if !halted then Halted else Out_of_fuel);
    cycles = !cycles;
    instructions = !executed;
    return_value = regs.(Reg.index Reg.v0);
    regs = Array.copy regs;
  }

let run_trace program =
  let trace = ref [] in
  let result = run ~on_fetch:(fun addr -> trace := addr :: !trace) program in
  ignore result;
  List.rev !trace

(** Cycle-counting interpreter for assembled programs.

    The machine charges exactly the instruction-fetch cost supplied by
    the [fetch] oracle for each executed instruction and nothing else,
    matching the paper's experimental setup where only the instruction
    cache contributes to the WCET (hit 1 cycle, miss 100 cycles; data
    accesses and the pipeline are not modelled). Plugging a concrete
    cache simulator in as the oracle yields execution times directly
    comparable with the analytical WCET bounds.

    Arithmetic wraps to 32-bit two's complement, like the MIPS R2000. *)

type status =
  | Halted
  | Out_of_fuel  (** [max_steps] exceeded *)

type result = {
  status : status;
  cycles : int;       (** total fetch cycles charged by the oracle *)
  instructions : int; (** dynamic instruction count *)
  return_value : int; (** contents of $v0 at the end *)
  regs : int array;   (** final register file (copy) — for differential
                          cross-validation of alternative interpreters *)
}

exception Trap of string
(** Division by zero, unaligned or wild memory access, jump outside the
    text segment. *)

val run :
  ?max_steps:int ->
  ?args:int list ->
  ?memory_init:(int * int) list ->
  ?fetch:(int -> int) ->
  ?data_access:(int -> write:bool -> int) ->
  ?on_fetch:(int -> unit) ->
  Program.t ->
  result
(** [run program] interprets from the entry point until [Halt].
    [args] are loaded into $a0..$a3; [memory_init] pre-loads data words
    (word-aligned byte address, value) — the compiler's data image goes
    here. [fetch addr] returns the cost of fetching the instruction at
    byte address [addr] (default: constant 1). [data_access addr ~write]
    returns the extra cycles a load/store costs (default: 0 — the
    paper's setup times instruction fetches only; the data-cache
    extension plugs its simulator in here). [on_fetch] observes the
    fetched address stream (for trace-based cross-validation). Default
    [max_steps] is [50_000_000]. *)

val run_trace : Program.t -> int list
(** Convenience: full instruction-fetch address trace of a run with the
    default oracle. *)

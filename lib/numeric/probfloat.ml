let check p k =
  if not (Float.is_finite p) || p < 0.0 || p > 1.0 then invalid_arg "Probfloat: p outside [0,1]";
  if k < 0 then invalid_arg "Probfloat: negative exponent"

let pow_one_minus ~p ~k =
  check p k;
  if p = 1.0 then if k = 0 then 1.0 else 0.0
  else exp (float_of_int k *. Float.log1p (-.p))

let one_minus_pow_one_minus ~p ~k =
  check p k;
  if p = 1.0 then if k = 0 then 0.0 else 1.0
  else -.Float.expm1 (float_of_int k *. Float.log1p (-.p))

(* Real-exponent variants for rate composition: (1 - p)^n with n a
   count of events per hour (or a 1/k unit split, as in the
   Reghenzani re-execution model) is not an integer power. Same
   log1p/expm1 discipline: p ~ 1e-19 composed over ~1e9 jobs/hour
   must not round to "1.0 - 0.0". *)
let check_real p n =
  if not (Float.is_finite p) || p < 0.0 || p > 1.0 then invalid_arg "Probfloat: p outside [0,1]";
  if not (Float.is_finite n) || n < 0.0 then invalid_arg "Probfloat: bad real exponent"

let pow_one_minus_real ~p ~n =
  check_real p n;
  if p = 1.0 then if n = 0.0 then 1.0 else 0.0
  else exp (n *. Float.log1p (-.p))

let one_minus_pow_one_minus_real ~p ~n =
  check_real p n;
  if p = 1.0 then if n = 0.0 then 0.0 else 1.0
  else -.Float.expm1 (n *. Float.log1p (-.p))

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

(** Numerically careful probability helpers for the fault model. *)

val one_minus_pow_one_minus : p:float -> k:int -> float
(** [one_minus_pow_one_minus ~p ~k] computes [1 - (1 - p)^k] (paper
    eq. 1: block-failure probability from bit-failure probability) via
    [expm1]/[log1p] so that tiny [p] does not cancel.
    @raise Invalid_argument when [p] is outside [0,1] or [k < 0]. *)

val pow_one_minus : p:float -> k:int -> float
(** [(1 - p)^k] without forming [1 - p] when [p] is tiny. *)

val pow_one_minus_real : p:float -> n:float -> float
(** [(1 - p)^n] for a real non-negative exponent — rate composition
    over fractional event counts (jobs per hour, per-unit splits of a
    per-hour failure rate). Same [log1p]/[exp] discipline as the
    integer version, so [p] around [1e-19] survives exponents around
    [1e9] without rounding to 0 or 1.
    @raise Invalid_argument when [p] is outside [0,1] or [n] is
    negative or not finite. *)

val one_minus_pow_one_minus_real : p:float -> n:float -> float
(** [1 - (1 - p)^n] for a real non-negative exponent, via [expm1] —
    the per-hour failure probability of [n] independent jobs each
    failing with probability [p], exact in the deep-tail regime where
    the naive form cancels to 0. *)

val clamp01 : float -> float
(** Clamp to [0, 1] (guards accumulated rounding at the boundaries). *)

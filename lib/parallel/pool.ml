module E = Robust.Pwcet_error

let default_jobs () = Domain.recommended_domain_count ()

(* Test-only fault injection: make the [count]-th (0-based) spawn of a
   map call fail, simulating the runtime's domain limit being hit under
   load.  [None] (the default) never injects. *)
let injected_spawn_failure : int option Atomic.t = Atomic.make None
let inject_spawn_failure_after count = Atomic.set injected_spawn_failure count

let spawn worker =
  (match Atomic.get injected_spawn_failure with
  | Some k when k <= 0 -> failwith "Pool: injected Domain.spawn failure"
  | Some k ->
    Atomic.set injected_spawn_failure (Some (k - 1));
    ()
  | None -> ());
  Domain.spawn worker

(* Spawn [count] worker domains, all-or-error.  [Domain.spawn] itself
   can raise (domain limit reached — routine for a process fanning many
   concurrent requests over pools); spawning bare [Array.init] would
   then unwind with the already-spawned domains never joined: they keep
   racing on the result array after the exception propagates, and the
   domains leak.  Instead, on a spawn failure: push the shared item
   counter past [n] so in-flight workers drain instead of starting new
   items, join every domain that did spawn, then re-raise. *)
let spawn_all ~count ~next ~n worker =
  let spawned = ref [] in
  (try
     for _ = 1 to count do
       spawned := spawn worker :: !spawned
     done
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Atomic.set next n;
     List.iter Domain.join !spawned;
     Printexc.raise_with_backtrace e bt);
  !spawned

let mapi ~jobs f input =
  let n = Array.length input in
  if jobs <= 1 || n <= 1 then Array.mapi f input
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let error : (exn * Printexc.raw_backtrace) option Atomic.t = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get error <> None then continue := false
        else
          match f i input.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set error None (Some (e, bt)));
            continue := false
      done
    in
    (* The caller is one of the workers: [jobs] domains run in total. *)
    let spawned = spawn_all ~count:(min (jobs - 1) (n - 1)) ~next ~n worker in
    worker ();
    List.iter Domain.join spawned;
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ~jobs f input = mapi ~jobs (fun _ x -> f x) input

(* Crash-isolating variant: every item gets its own outcome, a raising
   item poisons only its own slot, and items picked up after the
   deadline are refused without running. Unlike [mapi], nothing aborts
   the remaining work — independent items survive a crashing sibling. *)
let mapi_result ?deadline ~jobs f input =
  let past_deadline () =
    match deadline with None -> false | Some d -> Robust.Budget.now () > d
  in
  let item i x =
    if past_deadline () then
      Error (E.Budget_exhausted (Printf.sprintf "Pool.mapi_result: deadline expired before item %d" i))
    else
      match f i x with
      | v -> Ok v
      | exception e -> Error (E.Worker_crash (Printexc.to_string e))
  in
  let n = Array.length input in
  if jobs <= 1 || n <= 1 then Array.mapi item input
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false else results.(i) <- Some (item i input.(i))
      done
    in
    let spawned = spawn_all ~count:(min (jobs - 1) (n - 1)) ~next ~n worker in
    worker ();
    List.iter Domain.join spawned;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_result ?deadline ~jobs f input = mapi_result ?deadline ~jobs (fun _ x -> f x) input

(* Balanced pairwise reduction with per-layer fan-out: each layer's
   pairs are independent, so they run through [map]; the combination
   tree itself is fixed (adjacent pairs, odd leftover kept at the end —
   the same shape as a sequential pairwise tree reduction), so the
   result is bit-identical for every [jobs]. *)
let reduce_pairs_result ?deadline ~jobs f input =
  let past_deadline () =
    match deadline with None -> false | Some d -> Robust.Budget.now () > d
  in
  let rec loop layer arr =
    let n = Array.length arr in
    if n = 0 then Ok None
    else if n = 1 then Ok (Some arr.(0))
    (* The pre-layer check mirrors [mapi_result]'s pre-item check: a
       layer whose start is already past the deadline never runs, and
       the whole reduction reports starvation instead of silently
       spending unbounded time in the remaining log2(n) layers. *)
    else if past_deadline () then
      Error
        (E.Budget_exhausted
           (Printf.sprintf
              "Pool.reduce_pairs_result: deadline expired before layer %d (%d values left)"
              layer n))
    else begin
      let pairs = Array.init (n / 2) (fun i -> (arr.(2 * i), arr.((2 * i) + 1))) in
      let merged = map ~jobs (fun (a, b) -> f a b) pairs in
      loop (layer + 1) (if n land 1 = 0 then merged else Array.append merged [| arr.(n - 1) |])
    end
  in
  loop 0 input

let reduce_pairs ~jobs f input =
  match reduce_pairs_result ~jobs f input with
  | Ok v -> v
  | Error _ -> assert false (* no deadline, so no starvation path *)

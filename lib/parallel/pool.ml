let default_jobs () = Domain.recommended_domain_count ()

let mapi ~jobs f input =
  let n = Array.length input in
  if jobs <= 1 || n <= 1 then Array.mapi f input
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let error : (exn * Printexc.raw_backtrace) option Atomic.t = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get error <> None then continue := false
        else
          match f i input.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set error None (Some (e, bt)));
            continue := false
      done
    in
    (* The caller is one of the workers: [jobs] domains run in total. *)
    let spawned = Array.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ~jobs f input = mapi ~jobs (fun _ x -> f x) input

module E = Robust.Pwcet_error

let default_jobs () = Domain.recommended_domain_count ()

(* Test-only fault injection: make the [count]-th (0-based) spawn of a
   map call fail, simulating the runtime's domain limit being hit under
   load.  [None] (the default) never injects. *)
let injected_spawn_failure : int option Atomic.t = Atomic.make None
let inject_spawn_failure_after count = Atomic.set injected_spawn_failure count

let spawn worker =
  (match Atomic.get injected_spawn_failure with
  | Some k when k <= 0 -> failwith "Pool: injected Domain.spawn failure"
  | Some k ->
    Atomic.set injected_spawn_failure (Some (k - 1));
    ()
  | None -> ());
  Domain.spawn worker

(* Spawn [count] worker domains, all-or-error.  [Domain.spawn] itself
   can raise (domain limit reached — routine for a process fanning many
   concurrent requests over pools); spawning bare [Array.init] would
   then unwind with the already-spawned domains never joined: they keep
   racing on the result array after the exception propagates, and the
   domains leak.  Instead, on a spawn failure: push the shared item
   counter past [n] so in-flight workers drain instead of starting new
   items, join every domain that did spawn, then re-raise. *)
let spawn_all ~count ~next ~n worker =
  let spawned = ref [] in
  (try
     for _ = 1 to count do
       spawned := spawn worker :: !spawned
     done
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Atomic.set next n;
     List.iter Domain.join !spawned;
     Printexc.raise_with_backtrace e bt);
  !spawned

let mapi ~jobs f input =
  let n = Array.length input in
  if jobs <= 1 || n <= 1 then Array.mapi f input
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let error : (exn * Printexc.raw_backtrace) option Atomic.t = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get error <> None then continue := false
        else
          match f i input.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set error None (Some (e, bt)));
            continue := false
      done
    in
    (* The caller is one of the workers: [jobs] domains run in total. *)
    let spawned = spawn_all ~count:(min (jobs - 1) (n - 1)) ~next ~n worker in
    worker ();
    List.iter Domain.join spawned;
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ~jobs f input = mapi ~jobs (fun _ x -> f x) input

(* Crash-isolating variant: every item gets its own outcome, a raising
   item poisons only its own slot, and items picked up after the
   deadline are refused without running. Unlike [mapi], nothing aborts
   the remaining work — independent items survive a crashing sibling.
   [chaos] may kill or stall individual items (occurrence = item index,
   so the same items die at every [jobs]); a killed item is exactly a
   crashed one — a typed [Worker_crash] in its own slot. *)
let mapi_result ?deadline ?chaos ~jobs f input =
  let past_deadline () =
    match deadline with None -> false | Some d -> Robust.Budget.now () > d
  in
  let item i x =
    if past_deadline () then
      Error (E.Budget_exhausted (Printf.sprintf "Pool.mapi_result: deadline expired before item %d" i))
    else
      match
        Chaos.Injector.tap_at chaos ~site:Chaos.Site.pool_node ~occurrence:i;
        f i x
      with
      | v -> Ok v
      | exception e -> Error (E.Worker_crash (Printexc.to_string e))
  in
  let n = Array.length input in
  if jobs <= 1 || n <= 1 then Array.mapi item input
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false else results.(i) <- Some (item i input.(i))
      done
    in
    let spawned = spawn_all ~count:(min (jobs - 1) (n - 1)) ~next ~n worker in
    worker ();
    List.iter Domain.join spawned;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_result ?deadline ?chaos ~jobs f input =
  mapi_result ?deadline ?chaos ~jobs (fun _ x -> f x) input

(* Balanced pairwise reduction with per-layer fan-out: each layer's
   pairs are independent, so they run through [map]; the combination
   tree itself is fixed (adjacent pairs, odd leftover kept at the end —
   the same shape as a sequential pairwise tree reduction), so the
   result is bit-identical for every [jobs]. *)
let reduce_pairs_result ?deadline ~jobs f input =
  let past_deadline () =
    match deadline with None -> false | Some d -> Robust.Budget.now () > d
  in
  let rec loop layer arr =
    let n = Array.length arr in
    if n = 0 then Ok None
    else if n = 1 then Ok (Some arr.(0))
    (* The pre-layer check mirrors [mapi_result]'s pre-item check: a
       layer whose start is already past the deadline never runs, and
       the whole reduction reports starvation instead of silently
       spending unbounded time in the remaining log2(n) layers. *)
    else if past_deadline () then
      Error
        (E.Budget_exhausted
           (Printf.sprintf
              "Pool.reduce_pairs_result: deadline expired before layer %d (%d values left)"
              layer n))
    else begin
      let pairs = Array.init (n / 2) (fun i -> (arr.(2 * i), arr.((2 * i) + 1))) in
      let merged = map ~jobs (fun (a, b) -> f a b) pairs in
      loop (layer + 1) (if n land 1 = 0 then merged else Array.append merged [| arr.(n - 1) |])
    end
  in
  loop 0 input

let reduce_pairs ~jobs f input =
  match reduce_pairs_result ~jobs f input with
  | Ok v -> v
  | Error _ -> assert false (* no deadline, so no starvation path *)

type 'a dag_node = { deps : int array; run : 'a array -> 'a }

(* Deadline-aware work-stealing executor for an irregular DAG of
   heterogeneous tasks.  The fixed chunking of [mapi_result] leaves
   domains idle behind the slowest item when per-item costs vary by
   orders of magnitude (a whole-program fixpoint next to a single
   convolution); here idle workers instead pull from a shared deque of
   ready nodes, so any runnable node keeps every domain busy.

   Node outcomes are a pure function of the node's own [run] and its
   dependencies' outcomes — the deque only decides *when* a node runs,
   never *what* it computes — and results are returned in node-index
   order, so the output is bit-identical for every [jobs] value. *)
let run_dag ?deadline ?chaos ~jobs nodes =
  let n = Array.length nodes in
  Array.iteri
    (fun i node ->
      Array.iter
        (fun d ->
          if d < 0 || d >= i then
            invalid_arg
              (Printf.sprintf "Pool.run_dag: node %d depends on %d (deps must point backwards)" i d))
        node.deps)
    nodes;
  let past_deadline () =
    match deadline with None -> false | Some d -> Robust.Budget.now () > d
  in
  let results : ('a, E.t) result option array = Array.make n None in
  let outcome i =
    match results.(i) with Some r -> r | None -> assert false
  in
  (* A node whose dependency failed propagates the first (lowest dep
     index) failure without running — deterministic given the deps'
     outcomes, hence independent of scheduling. *)
  let compute i =
    let node = nodes.(i) in
    let failed =
      Array.fold_left
        (fun acc d ->
          match acc with
          | Some _ -> acc
          | None -> ( match outcome d with Error e -> Some e | Ok _ -> None))
        None node.deps
    in
    match failed with
    | Some e -> Error e
    | None ->
      if past_deadline () then
        Error
          (E.Budget_exhausted
             (Printf.sprintf "Pool.run_dag: deadline expired before node %d" i))
      else
        let args = Array.map (fun d -> match outcome d with Ok v -> v | Error _ -> assert false) node.deps in
        (* The chaos tap is keyed by node index, not arrival order, so
           the same nodes die (as typed [Worker_crash] outcomes) at
           every [jobs] value — fault schedules stay jobs-invariant. *)
        (match
           Chaos.Injector.tap_at chaos ~site:Chaos.Site.pool_node ~occurrence:i;
           node.run args
         with
        | v -> Ok v
        | exception e -> Error (E.Worker_crash (Printexc.to_string e)))
  in
  if jobs <= 1 || n <= 1 then begin
    (* Dependencies point backwards, so index order is a topological
       order: the sequential path is a plain left-to-right scan. *)
    for i = 0 to n - 1 do
      results.(i) <- Some (compute i)
    done;
    Array.init n outcome
  end
  else begin
    let dependents = Array.make n [] in
    let pending = Array.make n 0 in
    Array.iteri
      (fun i node ->
        pending.(i) <- Array.length node.deps;
        Array.iter (fun d -> dependents.(d) <- i :: dependents.(d)) node.deps)
      nodes;
    let ready = Queue.create () in
    for i = 0 to n - 1 do
      if pending.(i) = 0 then Queue.push i ready
    done;
    let mutex = Mutex.create () in
    let cond = Condition.create () in
    let completed = ref 0 in
    let aborted = ref false in
    (* Worker: steal a ready node, run it, publish its outcome and
       release newly-ready dependents.  Result slots are written under
       the mutex and a dependent is only enqueued afterwards, so its
       worker's later pop (also under the mutex) sees every dependency
       outcome published. *)
    let worker () =
      let running = ref true in
      while !running do
        Mutex.lock mutex;
        while Queue.is_empty ready && !completed < n && not !aborted do
          Condition.wait cond mutex
        done;
        if !aborted || (Queue.is_empty ready && !completed >= n) then begin
          Mutex.unlock mutex;
          running := false
        end
        else begin
          let i = Queue.pop ready in
          Mutex.unlock mutex;
          let r = compute i in
          Mutex.lock mutex;
          results.(i) <- Some r;
          incr completed;
          List.iter
            (fun j ->
              pending.(j) <- pending.(j) - 1;
              if pending.(j) = 0 then Queue.push j ready)
            dependents.(i);
          Condition.broadcast cond;
          Mutex.unlock mutex
        end
      done
    in
    (* Same all-or-error spawn discipline as [spawn_all], adapted to
       the deque: on a spawn failure, abort (waking any waiting
       workers), join every domain that did spawn, then re-raise. *)
    let spawned = ref [] in
    (try
       for _ = 1 to min (jobs - 1) (n - 1) do
         spawned := spawn worker :: !spawned
       done
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       Mutex.lock mutex;
       aborted := true;
       Condition.broadcast cond;
       Mutex.unlock mutex;
       List.iter Domain.join !spawned;
       Printexc.raise_with_backtrace e bt);
    worker ();
    List.iter Domain.join !spawned;
    Array.init n outcome
  end

(** Dependency-free data parallelism over OCaml 5 domains.

    [map ~jobs f input] applies [f] to every element of [input] and
    returns the results in input order, distributing elements across
    [jobs] domains (the calling domain counts as one of them). With
    [jobs <= 1], or when the input has fewer than two elements, it is
    exactly [Array.map f input] on the current domain — no domain is
    spawned, so callers can expose a [?jobs] knob whose [1] setting is
    observationally sequential.

    Work is distributed dynamically (an atomic next-index counter), so
    uneven per-element costs — the norm for per-cache-set analyses —
    still balance. [f] must be safe to run concurrently with itself on
    distinct elements; it must not rely on unsynchronised shared
    mutable state.

    If [f] raises, remaining elements are abandoned, all domains are
    joined, and the first exception observed is re-raised (with its
    backtrace) in the calling domain. The [_result] variants instead
    isolate each item's outcome — the graceful-degradation entry
    points the FMM batch layers build on.

    If [Domain.spawn] itself raises partway through fan-out (the
    runtime's domain limit, routine under heavy concurrent service
    load), the same discipline applies: in-flight workers drain,
    every domain that did spawn is joined, and the spawn exception is
    re-raised — no worker ever outlives the call that spawned it. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the runtime's estimate of
    how many domains the hardware can usefully run. *)

val inject_spawn_failure_after : int option -> unit
(** Test-only fault injection: [Some k] makes the [k]-th (0-based)
    domain spawn of the next map call raise [Failure], simulating the
    runtime's domain limit being hit mid-fan-out; [None] restores
    normal operation. Pins the join-on-spawn-failure contract above —
    not for production use. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array

val mapi : jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!map}, passing each element's index. *)

val mapi_result :
  ?deadline:float ->
  ?chaos:Chaos.Injector.t ->
  jobs:int ->
  (int -> 'a -> 'b) ->
  'a array ->
  ('b, Robust.Pwcet_error.t) Stdlib.result array
(** Crash-isolating {!mapi}: one outcome per item, in input order.
    An item whose [f] raises yields [Error (Worker_crash text)] (with
    the original exception text) without disturbing its siblings; when
    [chaos] is given, items may additionally be killed or stalled at
    site {!Chaos.Site.pool_node} — keyed by item index, so the same
    items fault at every [jobs] value, as typed [Worker_crash]; when
    [deadline] (absolute, {!Robust.Budget.now} scale) has passed before
    an item starts, that item yields [Error (Budget_exhausted _)]
    without running. Outcomes of items that do run are independent of
    [jobs]; never raises and never aborts remaining items — with the
    single exception of a [Domain.spawn] failure during fan-out, which
    (after draining and joining every spawned domain) re-raises: it is
    an environment failure of the call itself, not of any item. *)

val map_result :
  ?deadline:float ->
  ?chaos:Chaos.Injector.t ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  ('b, Robust.Pwcet_error.t) Stdlib.result array
(** {!mapi_result} without the index. *)

val reduce_pairs : jobs:int -> ('a -> 'a -> 'a) -> 'a array -> 'a option
(** Balanced pairwise tree reduction ([None] on the empty array):
    adjacent elements are combined layer by layer, an odd leftover
    passes through at the end of its layer. Each layer's combinations
    are independent and fan out across [jobs] domains via {!map}; the
    tree shape is fixed, so for a deterministic [f] the result is
    identical for every [jobs] value. Combination order matters for
    non-associative [f] (e.g. capped convolution): the shape matches a
    sequential pairwise tree, {e not} a left fold. *)

type 'a dag_node = {
  deps : int array;
      (** Indices of the nodes this node consumes. Every index must be
          strictly smaller than the node's own index (the array is given
          in topological order); violations raise [Invalid_argument]. *)
  run : 'a array -> 'a;
      (** Computes the node's value from its dependencies' values, in
          [deps] order. Must be deterministic and safe to run
          concurrently with other nodes' [run]. *)
}

val run_dag :
  ?deadline:float ->
  ?chaos:Chaos.Injector.t ->
  jobs:int ->
  'a dag_node array ->
  ('a, Robust.Pwcet_error.t) Stdlib.result array
(** Deadline-aware work-stealing execution of an irregular task DAG:
    idle domains steal from a shared deque of ready nodes, so uneven
    node costs (a whole-program fixpoint next to a single convolution)
    never leave a runnable node waiting behind a fixed chunk boundary.
    One outcome per node, in node-index order.

    Crash isolation matches {!mapi_result}: a node whose [run] raises
    yields [Error (Worker_crash text)]; with [chaos], nodes may be
    killed or stalled at site {!Chaos.Site.pool_node}, keyed by node
    index so the same nodes fault at every [jobs] value; a node picked
    up after [deadline] (absolute, {!Robust.Budget.now} scale) yields
    [Error (Budget_exhausted _)] without running. A node with a failed
    dependency propagates the first (lowest dependency index) failure
    without running, so errors flow down the DAG deterministically.

    Every outcome of a node that runs is a pure function of its [run]
    and its dependencies' outcomes — the deque only decides {e when} a
    node runs — and with [jobs <= 1] (or fewer than two nodes) the DAG
    executes sequentially in index order on the calling domain. Results
    are therefore bit-identical for every [jobs] value (deadline
    refusals aside, which are timing-dependent by nature). The
    [Domain.spawn]-failure discipline of the header applies. *)

val reduce_pairs_result :
  ?deadline:float ->
  jobs:int ->
  ('a -> 'a -> 'a) ->
  'a array ->
  ('a option, Robust.Pwcet_error.t) Stdlib.result
(** {!reduce_pairs} with the same deadline contract the [_result] maps
    give items, applied between reduction layers: when [deadline]
    (absolute, {!Robust.Budget.now} scale) has passed before a layer
    starts, the reduction stops with [Error (Budget_exhausted _)]
    instead of running its remaining layers. A reduction that starts
    its last layer in time completes it; without [deadline] this is
    exactly {!reduce_pairs}. *)

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;  (** signalled on enqueue and on shutdown *)
  jobs : (unit -> unit) Queue.t;
  queue_max : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;  (** emptied by [shutdown] *)
}

let worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    let rec next () =
      match Queue.take_opt t.jobs with
      | Some job -> Some job
      | None ->
        if t.stopping then None
        else begin
          Condition.wait t.nonempty t.lock;
          next ()
        end
    in
    let job = next () in
    Mutex.unlock t.lock;
    match job with
    | None -> ()
    | Some job ->
      (* Crash containment, as in [Pool.mapi_result]: the job's own
         result channel carries failures; a worker must survive any
         job to keep serving the rest. *)
      (try job () with _ -> ());
      loop ()
  in
  loop ()

let create ~domains ~queue_max =
  if domains < 1 then invalid_arg "Workers.create: domains must be at least 1";
  if queue_max < 0 then invalid_arg "Workers.create: negative queue_max";
  let t =
    { lock = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      queue_max;
      stopping = false;
      domains = [] }
  in
  (* Eager spawn under the Pool discipline: if the runtime's domain
     limit bites midway, drain (nothing is queued yet) and join the
     domains that did start before re-raising. *)
  (try
     for _ = 1 to domains do
       t.domains <- Domain.spawn (worker t) :: t.domains
     done
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Mutex.lock t.lock;
     t.stopping <- true;
     Condition.broadcast t.nonempty;
     Mutex.unlock t.lock;
     List.iter Domain.join t.domains;
     Printexc.raise_with_backtrace e bt);
  t

let submit t job =
  Mutex.lock t.lock;
  let accepted = (not t.stopping) && Queue.length t.jobs < t.queue_max in
  if accepted then begin
    Queue.add job t.jobs;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.lock;
  accepted

let queued t =
  Mutex.lock t.lock;
  let n = Queue.length t.jobs in
  Mutex.unlock t.lock;
  n

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  let domains = t.domains in
  t.domains <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join domains

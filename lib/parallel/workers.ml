type t = {
  lock : Mutex.t;
  nonempty : Condition.t;  (** signalled on enqueue and on shutdown *)
  jobs : (unit -> unit) Queue.t;
  queue_max : int;
  target : int;  (** domains requested at {!create} *)
  chaos : Chaos.Injector.t option;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;  (** emptied by [shutdown] *)
  mutable live : int;  (** workers currently in their serve loop *)
  mutable crashed : int;
  mutable respawned : int;
}

(* A worker's death must never lose the job it had already dequeued:
   the job goes back on the queue before anything else (jobs are
   idempotent computations filling ivars, so re-running is safe), then
   the dying worker spawns its own replacement while still holding the
   lock — the successor is in [t.domains] before any observer can see
   the pool short-handed. A failed replacement spawn (domain limit) is
   tolerated: [ensure_alive] repairs the deficit from a live thread. *)
let rec die_with_job t job =
  Mutex.lock t.lock;
  Queue.add job t.jobs;
  t.crashed <- t.crashed + 1;
  t.live <- t.live - 1;
  if not t.stopping then begin
    try
      t.domains <- Domain.spawn (worker t) :: t.domains;
      t.live <- t.live + 1;
      t.respawned <- t.respawned + 1
    with _ -> ()
  end;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

and worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    let rec next () =
      match Queue.take_opt t.jobs with
      | Some job -> Some job
      | None ->
        if t.stopping then None
        else begin
          Condition.wait t.nonempty t.lock;
          next ()
        end
    in
    let job = next () in
    Mutex.unlock t.lock;
    match job with
    | None ->
      Mutex.lock t.lock;
      t.live <- t.live - 1;
      Mutex.unlock t.lock
    | Some job -> (
      (* The chaos tap sits between dequeue and execution: a [`Die]
         here simulates the domain dying with a claimed-but-unserved
         job in hand — the hardest loss window — and exercises the
         requeue-and-respawn protocol above. *)
      match Chaos.Injector.tap_worker t.chaos ~site:Chaos.Site.workers_job with
      | `Die -> die_with_job t job
      | `Sleep s ->
        Unix.sleepf s;
        run_and_loop job
      | `Pass -> run_and_loop job)
  and run_and_loop job =
    (* Crash containment, as in [Pool.mapi_result]: the job's own
       result channel carries failures; a worker must survive any
       job to keep serving the rest. *)
    (try job () with _ -> ());
    loop ()
  in
  loop ()

let create ?chaos ~domains ~queue_max () =
  if domains < 1 then invalid_arg "Workers.create: domains must be at least 1";
  if queue_max < 0 then invalid_arg "Workers.create: negative queue_max";
  let t =
    { lock = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      queue_max;
      target = domains;
      chaos;
      stopping = false;
      domains = [];
      live = 0;
      crashed = 0;
      respawned = 0 }
  in
  (* Eager spawn under the Pool discipline: if the runtime's domain
     limit bites midway, drain (nothing is queued yet) and join the
     domains that did start before re-raising. *)
  (try
     for _ = 1 to domains do
       t.domains <- Domain.spawn (worker t) :: t.domains;
       t.live <- t.live + 1
     done
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Mutex.lock t.lock;
     t.stopping <- true;
     Condition.broadcast t.nonempty;
     Mutex.unlock t.lock;
     List.iter Domain.join t.domains;
     Printexc.raise_with_backtrace e bt);
  t

let submit t job =
  Mutex.lock t.lock;
  let accepted = (not t.stopping) && Queue.length t.jobs < t.queue_max in
  if accepted then begin
    Queue.add job t.jobs;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.lock;
  accepted

(* Belt-and-braces watchdog: top up the pool to its target headcount.
   Normally a no-op — a dying worker respawns its own successor — but
   it repairs the deficit when that in-line respawn failed (domain
   limit at the moment of death). Called opportunistically from the
   service layer on each admission. *)
let ensure_alive t =
  Mutex.lock t.lock;
  let spawned = ref 0 in
  (try
     while (not t.stopping) && t.live < t.target do
       t.domains <- Domain.spawn (worker t) :: t.domains;
       t.live <- t.live + 1;
       t.respawned <- t.respawned + 1;
       incr spawned
     done
   with _ -> ());
  Mutex.unlock t.lock;
  !spawned

let queued t =
  Mutex.lock t.lock;
  let n = Queue.length t.jobs in
  Mutex.unlock t.lock;
  n

let crashed t =
  Mutex.lock t.lock;
  let n = t.crashed in
  Mutex.unlock t.lock;
  n

let respawned t =
  Mutex.lock t.lock;
  let n = t.respawned in
  Mutex.unlock t.lock;
  n

let live t =
  Mutex.lock t.lock;
  let n = t.live in
  Mutex.unlock t.lock;
  n

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  let domains = t.domains in
  t.domains <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join domains

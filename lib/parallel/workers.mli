(** A persistent pool of worker domains with a bounded job queue.

    {!Pool} fans a {e known} array of items across short-lived domains;
    a long-running service needs the dual: domains that outlive any one
    request and pull jobs as they arrive. The queue bound is the
    admission-control primitive — {!submit} refuses (returns [false])
    instead of queuing unboundedly, so overload surfaces to the caller
    as a typed decision point, never as unbounded memory growth or
    unbounded latency.

    Jobs are [unit -> unit] closures; result delivery is the
    submitter's business (the service layer blocks the submitting
    thread on a condition variable until its job fills an ivar). A job
    that raises is contained: the exception is swallowed by the worker
    loop (the closure is expected to capture failures into its own
    result channel, mirroring {!Pool.mapi_result}'s crash isolation),
    and the worker keeps serving.

    All operations are safe from any domain or thread. *)

type t

val create : domains:int -> queue_max:int -> t
(** [domains] worker domains are spawned eagerly (so a later
    [Domain.spawn] failure cannot strand a half-started pool — the
    {!Pool} spawn discipline) and block waiting for work. [queue_max]
    bounds the number of {e queued} (not yet running) jobs.
    @raise Invalid_argument if [domains < 1] or [queue_max < 0]. *)

val submit : t -> (unit -> unit) -> bool
(** Enqueue a job for the next free worker. [false] — and the job is
    {e not} enqueued — when the queue already holds [queue_max] jobs
    (shed load now, don't promise latency you can't deliver) or the
    pool is shutting down. Never blocks. *)

val queued : t -> int
(** Jobs accepted but not yet picked up by a worker — the instantaneous
    queue depth, for stats reporting. *)

val shutdown : t -> unit
(** Stop accepting new jobs, let the workers finish everything already
    queued, then join every domain. Idempotent; safe to call
    concurrently with {!submit} (the loser of that race gets
    [false]). *)

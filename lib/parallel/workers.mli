(** A persistent, self-healing pool of worker domains with a bounded
    job queue.

    {!Pool} fans a {e known} array of items across short-lived domains;
    a long-running service needs the dual: domains that outlive any one
    request and pull jobs as they arrive. The queue bound is the
    admission-control primitive — {!submit} refuses (returns [false])
    instead of queuing unboundedly, so overload surfaces to the caller
    as a typed decision point, never as unbounded memory growth or
    unbounded latency.

    Jobs are [unit -> unit] closures; result delivery is the
    submitter's business (the service layer blocks the submitting
    thread on a condition variable until its job fills an ivar). A job
    that raises is contained: the exception is swallowed by the worker
    loop (the closure is expected to capture failures into its own
    result channel, mirroring {!Pool.mapi_result}'s crash isolation),
    and the worker keeps serving.

    The pool also survives the death of a worker domain itself (the
    chaos layer simulates this between dequeue and execution — the
    widest loss window): the claimed job is requeued first, the dying
    worker spawns its own replacement, and {!ensure_alive} tops the
    pool back up to its target headcount whenever an in-line respawn
    failed. Jobs must be idempotent for the requeue to be safe — true
    of every scheduler job, which only fills an ivar.

    All operations are safe from any domain or thread. *)

type t

val create : ?chaos:Chaos.Injector.t -> domains:int -> queue_max:int -> unit -> t
(** [domains] worker domains are spawned eagerly (so a later
    [Domain.spawn] failure cannot strand a half-started pool — the
    {!Pool} spawn discipline) and block waiting for work. [queue_max]
    bounds the number of {e queued} (not yet running) jobs. [chaos]
    injects worker deaths and stalls at site {!Chaos.Site.workers_job}.
    @raise Invalid_argument if [domains < 1] or [queue_max < 0]. *)

val submit : t -> (unit -> unit) -> bool
(** Enqueue a job for the next free worker. [false] — and the job is
    {e not} enqueued — when the queue already holds [queue_max] jobs
    (shed load now, don't promise latency you can't deliver) or the
    pool is shutting down. Never blocks. *)

val ensure_alive : t -> int
(** Watchdog: spawn workers until the pool is back at its target
    headcount (a no-op when nothing died, or when every death already
    respawned its own successor in-line). Returns the number of
    workers spawned. Never raises — a failed spawn leaves the repair
    to a later call. *)

val queued : t -> int
(** Jobs accepted but not yet picked up by a worker — the instantaneous
    queue depth, for stats reporting. *)

val crashed : t -> int
(** Worker-domain deaths observed so far (injected or real). *)

val respawned : t -> int
(** Replacement workers spawned so far (in-line or by
    {!ensure_alive}). *)

val live : t -> int
(** Workers currently serving — [target] when the pool is healthy. *)

val shutdown : t -> unit
(** Stop accepting new jobs, let the workers finish everything already
    queued, then join every domain. Idempotent; safe to call
    concurrently with {!submit} (the loser of that race gets
    [false]). *)

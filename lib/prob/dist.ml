module Kahan = Numeric.Kahan

(* Invariant: penalties strictly ascending, probabilities > 0, suffix
   holds the weak-exceedance values P(X >= penalties.(i)) accumulated
   from the top with compensated summation. Convention (documented in
   dist.mli): [exceedance] answers the strict P(X > x) query, while
   [exceedance_curve] exposes the weak P(X >= x) staircase; at a support
   point x_i they are related by P(X >= x_i) = P(X > x_i - 1). *)
type t = {
  penalties : int array;
  probs : float array;
  suffix : float array;
}

let build_suffix penalties probs =
  let n = Array.length penalties in
  let suffix = Array.make n 0.0 in
  let acc = Kahan.create () in
  for i = n - 1 downto 0 do
    Kahan.add acc probs.(i);
    suffix.(i) <- Kahan.total acc
  done;
  suffix

let of_sorted_arrays penalties probs =
  { penalties; probs; suffix = build_suffix penalties probs }

let point x =
  if x < 0 then invalid_arg "Dist.point: negative penalty";
  of_sorted_arrays [| x |] [| 1.0 |]

let merge_points caller points =
  let tbl = Hashtbl.create (List.length points) in
  List.iter
    (fun (x, p) ->
      if x < 0 then invalid_arg (caller ^ ": negative penalty");
      if not (Float.is_finite p) || p < 0.0 then invalid_arg (caller ^ ": bad probability");
      Hashtbl.replace tbl x (p +. Option.value ~default:0.0 (Hashtbl.find_opt tbl x)))
    points;
  Hashtbl.fold (fun x p acc -> if p > 0.0 then (x, p) :: acc else acc) tbl []
  |> List.sort compare

let of_points points =
  let merged = merge_points "Dist.of_points" points in
  let total = Kahan.sum_by snd merged in
  if Float.abs (total -. 1.0) > 1e-9 then
    invalid_arg (Printf.sprintf "Dist.of_points: total mass %.12g (expected 1)" total);
  of_sorted_arrays (Array.of_list (List.map fst merged)) (Array.of_list (List.map snd merged))

let of_sub_points points =
  let merged = merge_points "Dist.of_sub_points" points in
  let total = Kahan.sum_by snd merged in
  if total > 1.0 +. 1e-9 then
    invalid_arg (Printf.sprintf "Dist.of_sub_points: total mass %.12g > 1" total);
  of_sorted_arrays (Array.of_list (List.map fst merged)) (Array.of_list (List.map snd merged))

let scale factor t =
  if not (Float.is_finite factor) || factor < 0.0 || factor > 1.0 then
    invalid_arg "Dist.scale: factor outside [0,1]";
  let pairs = ref [] in
  Array.iteri
    (fun i x ->
      let p = t.probs.(i) *. factor in
      if p > 0.0 then pairs := (x, p) :: !pairs)
    t.penalties;
  let pairs = List.rev !pairs in
  of_sorted_arrays (Array.of_list (List.map fst pairs)) (Array.of_list (List.map snd pairs))

let support t = Array.to_list (Array.map2 (fun x p -> (x, p)) t.penalties t.probs)
let size t = Array.length t.penalties
let total_mass t = if size t = 0 then 0.0 else t.suffix.(0)

(* Fold the lowest-probability points into their upward neighbour until
   at most [max_points] remain. Probability only moves to higher
   penalties, so exceedance curves of the result dominate the input's:
   conservative for pWCET. The bound is hard: ranking ties are broken by
   index, so duplicated probabilities cannot inflate the kept set past
   [max_points] (a probability threshold would keep every tied point). *)
let cap_points max_points (pairs : (int * float) list) =
  let n = List.length pairs in
  if n <= max_points then pairs
  else begin
    let arr = Array.of_list pairs in
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun i j ->
        let c = compare (snd arr.(i)) (snd arr.(j)) in
        if c <> 0 then c else compare i j)
      order;
    (* Keep the top-penalty point (folded mass needs somewhere to go),
       then the highest-probability points until the budget is full. *)
    let keep = Array.make n false in
    keep.(n - 1) <- true;
    let kept = ref 1 in
    let r = ref (n - 1) in
    while !kept < max_points && !r >= 0 do
      let i = order.(!r) in
      if not keep.(i) then begin
        keep.(i) <- true;
        incr kept
      end;
      decr r
    done;
    (* Walk in ascending penalty order; a dropped point's mass rides
       along until the next kept (higher-penalty) point absorbs it. The
       top point is always kept, so no mass is left over. *)
    let result = ref [] in
    let carried = ref 0.0 in
    Array.iteri
      (fun i (x, p) ->
        if keep.(i) then begin
          result := (x, p +. !carried) :: !result;
          carried := 0.0
        end
        else carried := !carried +. p)
      arr;
    List.rev !result
  end

let convolve ?(max_points = 65536) a b =
  let tbl = Hashtbl.create (size a * size b) in
  Array.iteri
    (fun i xa ->
      let pa = a.probs.(i) in
      Array.iteri
        (fun j xb ->
          let x = xa + xb in
          let p = pa *. b.probs.(j) in
          Hashtbl.replace tbl x (p +. Option.value ~default:0.0 (Hashtbl.find_opt tbl x)))
        b.penalties)
    a.penalties;
  let pairs = Hashtbl.fold (fun x p acc -> (x, p) :: acc) tbl [] |> List.sort compare in
  let pairs = cap_points max_points pairs in
  of_sorted_arrays (Array.of_list (List.map fst pairs)) (Array.of_list (List.map snd pairs))

(* Balanced pairwise tree instead of a left fold: n-1 convolutions
   either way, but operands stay similarly sized, so total work drops
   from O(n * |acc|) against one ever-growing accumulator to the
   tree-sum of products, and capping (when it triggers) applies to
   balanced operands rather than degrading one long chain. *)
let convolve_all ?max_points dists =
  let rec pair_up = function
    | a :: b :: rest -> convolve ?max_points a b :: pair_up rest
    | tail -> tail
  in
  let rec reduce = function
    | [] -> point 0
    | [ d ] -> d
    | ds -> reduce (pair_up ds)
  in
  reduce dists

(* P(X > x): suffix sum of the first support point strictly above x. *)
let exceedance t x =
  let n = Array.length t.penalties in
  (* Binary search: first index with penalty > x. *)
  let rec search lo hi = if lo >= hi then lo else begin
      let mid = (lo + hi) / 2 in
      if t.penalties.(mid) > x then search lo mid else search (mid + 1) hi
    end
  in
  let i = search 0 n in
  if i >= n then 0.0 else t.suffix.(i)

let quantile t ~target =
  (* NaN fails every comparison, so [target < 0.0] alone would accept
     it and the binary search below would return nonsense. *)
  if not (Float.is_finite target) || target < 0.0 then
    invalid_arg "Dist.quantile: target must be finite and non-negative";
  let n = Array.length t.penalties in
  if n = 0 || exceedance t 0 <= target then 0
  else begin
    (* The exceedance function only drops at support values, so the
       smallest x with P(X > x) <= target is the first support value
       whose strict upper tail fits the target. [tail_above] is
       non-increasing in i, so binary-search the first index where it
       fits; at i = n-1 the tail is 0, so the search is total. *)
    let tail_above i = if i + 1 < n then t.suffix.(i + 1) else 0.0 in
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if tail_above mid <= target then search lo mid else search (mid + 1) hi
      end
    in
    t.penalties.(search 0 (n - 1))
  end

let exceedance_curve t =
  Array.to_list (Array.map2 (fun x s -> (x, s)) t.penalties t.suffix)

let expectation t =
  let acc = Kahan.create () in
  Array.iteri (fun i x -> Kahan.add acc (float_of_int x *. t.probs.(i))) t.penalties;
  Kahan.total acc

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iteri (fun i x -> Format.fprintf fmt "%d: %.6g@," x t.probs.(i)) t.penalties;
  Format.fprintf fmt "@]"

module Kahan = Numeric.Kahan

(* Invariant: penalties strictly ascending, probabilities > 0, suffix
   holds the weak-exceedance values P(X >= penalties.(i)) accumulated
   from the top with compensated summation. Convention (documented in
   dist.mli): [exceedance] answers the strict P(X > x) query, while
   [exceedance_curve] exposes the weak P(X >= x) staircase; at a support
   point x_i they are related by P(X >= x_i) = P(X > x_i - 1). *)
type t = {
  penalties : int array;
  probs : float array;
  suffix : float array;
}

let build_suffix penalties probs =
  let n = Array.length penalties in
  let suffix = Array.make n 0.0 in
  let acc = Kahan.create () in
  for i = n - 1 downto 0 do
    Kahan.add acc probs.(i);
    suffix.(i) <- Kahan.total acc
  done;
  suffix

let of_sorted_arrays penalties probs =
  { penalties; probs; suffix = build_suffix penalties probs }

let point x =
  if x < 0 then invalid_arg "Dist.point: negative penalty";
  of_sorted_arrays [| x |] [| 1.0 |]

let merge_points caller points =
  let tbl = Hashtbl.create (List.length points) in
  List.iter
    (fun (x, p) ->
      if x < 0 then invalid_arg (caller ^ ": negative penalty");
      if not (Float.is_finite p) || p < 0.0 then invalid_arg (caller ^ ": bad probability");
      Hashtbl.replace tbl x (p +. Option.value ~default:0.0 (Hashtbl.find_opt tbl x)))
    points;
  Hashtbl.fold (fun x p acc -> if p > 0.0 then (x, p) :: acc else acc) tbl []
  |> List.sort compare

let of_points points =
  let merged = merge_points "Dist.of_points" points in
  let total = Kahan.sum_by snd merged in
  if Float.abs (total -. 1.0) > 1e-9 then
    invalid_arg (Printf.sprintf "Dist.of_points: total mass %.12g (expected 1)" total);
  of_sorted_arrays (Array.of_list (List.map fst merged)) (Array.of_list (List.map snd merged))

let of_sub_points points =
  let merged = merge_points "Dist.of_sub_points" points in
  let total = Kahan.sum_by snd merged in
  if total > 1.0 +. 1e-9 then
    invalid_arg (Printf.sprintf "Dist.of_sub_points: total mass %.12g > 1" total);
  of_sorted_arrays (Array.of_list (List.map fst merged)) (Array.of_list (List.map snd merged))

let scale factor t =
  if not (Float.is_finite factor) || factor < 0.0 || factor > 1.0 then
    invalid_arg "Dist.scale: factor outside [0,1]";
  let pairs = ref [] in
  Array.iteri
    (fun i x ->
      let p = t.probs.(i) *. factor in
      if p > 0.0 then pairs := (x, p) :: !pairs)
    t.penalties;
  let pairs = List.rev !pairs in
  of_sorted_arrays (Array.of_list (List.map fst pairs)) (Array.of_list (List.map snd pairs))

(* Shifting every penalty by a constant leaves the probabilities — and
   therefore the suffix (exceedance) array — untouched, so the derived
   tails of the result are bit-identical to the input's: no re-summation
   happens that could perturb a 1e-12 tail. *)
let shift c t =
  let n = Array.length t.penalties in
  if n > 0 && t.penalties.(0) + c < 0 then invalid_arg "Dist.shift: negative penalty";
  { t with penalties = Array.map (fun x -> x + c) t.penalties }

let support t = Array.to_list (Array.map2 (fun x p -> (x, p)) t.penalties t.probs)
let size t = Array.length t.penalties
let total_mass t = if size t = 0 then 0.0 else t.suffix.(0)

(* Fold the lowest-probability points into their upward neighbour until
   at most [max_points] remain. Probability only moves to higher
   penalties, so exceedance curves of the result dominate the input's:
   conservative for pWCET. The bound is hard: ranking ties are broken by
   index, so duplicated probabilities cannot inflate the kept set past
   [max_points] (a probability threshold would keep every tied point).

   Array core shared by the list path (reference engine) and the merge
   kernel, so capping is bit-identical across engines. [n >= 1]. *)
let cap_arrays max_points pens probs n =
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let c = compare probs.(i) probs.(j) in
      if c <> 0 then c else compare i j)
    order;
  (* Keep the top-penalty point (folded mass needs somewhere to go),
     then the highest-probability points until the budget is full. *)
  let keep = Array.make n false in
  keep.(n - 1) <- true;
  let kept = ref 1 in
  let r = ref (n - 1) in
  while !kept < max_points && !r >= 0 do
    let i = order.(!r) in
    if not keep.(i) then begin
      keep.(i) <- true;
      incr kept
    end;
    decr r
  done;
  (* Walk in ascending penalty order; a dropped point's mass rides
     along until the next kept (higher-penalty) point absorbs it. The
     top point is always kept, so no mass is left over. *)
  let out_pen = Array.make !kept 0 and out_prob = Array.make !kept 0.0 in
  let k = ref 0 in
  let carried = ref 0.0 in
  for i = 0 to n - 1 do
    if keep.(i) then begin
      out_pen.(!k) <- pens.(i);
      out_prob.(!k) <- probs.(i) +. !carried;
      carried := 0.0;
      incr k
    end
    else carried := !carried +. probs.(i)
  done;
  (out_pen, out_prob)

let cap_points max_points (pairs : (int * float) list) =
  let n = List.length pairs in
  if n <= max_points then pairs
  else begin
    let pens = Array.make n 0 and probs = Array.make n 0.0 in
    List.iteri
      (fun i (x, p) ->
        pens.(i) <- x;
        probs.(i) <- p)
      pairs;
    let pens, probs = cap_arrays max_points pens probs n in
    Array.to_list (Array.map2 (fun x p -> (x, p)) pens probs)
  end

(* Reference convolution engine: accumulate the n*m products in a hash
   table, sort, cap. Kept for differential testing and benchmarking of
   the merge kernel. The table is only pre-sized as a hint: two near-cap
   operands would otherwise request ~4e9 buckets up front (and the
   product can overflow on 32-bit), so the hint is clamped — the table
   still grows dynamically when the support really is that large. *)
let convolve_reference ~max_points a b =
  let n = size a and m = size b in
  let size_hint =
    if m = 0 || n <= 65536 / m then max 16 (n * m) else min max_points 65536
  in
  let tbl = Hashtbl.create size_hint in
  Array.iteri
    (fun i xa ->
      let pa = a.probs.(i) in
      Array.iteri
        (fun j xb ->
          let x = xa + xb in
          let p = pa *. b.probs.(j) in
          Hashtbl.replace tbl x (p +. Option.value ~default:0.0 (Hashtbl.find_opt tbl x)))
        b.penalties)
    a.penalties;
  let pairs = Hashtbl.fold (fun x p acc -> (x, p) :: acc) tbl [] |> List.sort compare in
  let pairs = cap_points max_points pairs in
  of_sorted_arrays (Array.of_list (List.map fst pairs)) (Array.of_list (List.map snd pairs))

(* Merge convolution kernel, two regimes sharing one contract: emit the
   n*m pairwise sums in ascending order with equal sums accumulated in
   ascending i (outer operand) order — no hash table, no intermediate
   list, no comparison sort of the product set.

   Bit-compatibility with [convolve_reference]: the reference's hash
   table accumulates equal sums in i-outer/j-inner order, and within one
   i a given sum occurs at most once (b's support is strictly
   ascending). Both regimes below add the identical products in that
   identical order and cap with the shared [cap_arrays], so the engines
   agree bit for bit (float addition is commutative, so the bucket
   regime's [acc +. p] matches the reference's [p +. acc]).

   Regime 1 (dense buckets): penalty sums in this domain are small
   multiples of the miss penalty, so once supports have grown past a few
   hundred points the sums densely tile [lo, hi] and an O(n*m + range)
   bucket accumulation beats any comparison-based scheme. Used when the
   value range is within a small factor of the pair count (and an
   absolute ceiling bounds the scratch allocation).

   Regime 2 (k-way run merge): the sorted supports make the n*m sums n
   sorted runs {a_i + b_0, a_i + b_1, ...}; a binary min-heap keyed on
   (sum, run index) pops sums ascending with the (sum, run) tie-break
   reproducing the i-ascending accumulation order. O(n*m log n), no
   range-proportional scratch: the fallback for sparse or huge-range
   supports. *)

(* Dense-bucket ceiling: 4M buckets = one 32 MB float scratch. Beyond
   that, or when the bucket count dwarfs the pair count, the heap regime
   wins. *)
let dense_range_ceiling = 1 lsl 22

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Gcd of the successive differences of a sorted support (0 for a
   singleton): every value is [pens.(0) + k * step]. *)
let support_step pens n =
  let g = ref 0 in
  for i = 1 to n - 1 do
    g := gcd !g (pens.(i) - pens.(i - 1))
  done;
  !g

let convolve_dense ~max_points ~lo ~step ~buckets a b =
  let n = size a and m = size b in
  let ap = a.penalties and aw = a.probs in
  let bp = b.penalties and bw = b.probs in
  (* Penalties in this domain are multiples of the miss penalty, so
     indexing buckets by (value - lo) / step instead of raw value keeps
     the scratch proportional to the number of achievable sums, not the
     cycle range. *)
  let boff = Array.init m (fun j -> (bp.(j) - bp.(0)) / step) in
  (* Untouched buckets hold the -1.0 sentinel: probability products can
     underflow to exactly 0.0 deep in the tail, and the reference keeps
     such points, so presence cannot be inferred from a nonzero bucket.
     The first touch writes the product directly, which matches the
     reference's [p +. 0.0] accumulation from an absent hash entry bit
     for bit (adding 0.0 to a non-negative float is exact). *)
  let acc = Array.make buckets (-1.0) in
  for i = 0 to n - 1 do
    let pa = aw.(i) in
    let base = (ap.(i) - ap.(0)) / step in
    for j = 0 to m - 1 do
      let k = base + Array.unsafe_get boff j in
      let p = pa *. Array.unsafe_get bw j in
      let v = Array.unsafe_get acc k in
      Array.unsafe_set acc k (if v >= 0.0 then v +. p else p)
    done
  done;
  let count = ref 0 in
  for k = 0 to buckets - 1 do
    if Array.unsafe_get acc k >= 0.0 then incr count
  done;
  let out_pen = Array.make !count 0 and out_prob = Array.make !count 0.0 in
  let idx = ref 0 in
  for k = 0 to buckets - 1 do
    let v = Array.unsafe_get acc k in
    if v >= 0.0 then begin
      out_pen.(!idx) <- lo + (k * step);
      out_prob.(!idx) <- v;
      incr idx
    end
  done;
  let pens, probs =
    if !count <= max_points then (out_pen, out_prob)
    else cap_arrays max_points out_pen out_prob !count
  in
  of_sorted_arrays pens probs

let convolve_merge ~max_points a b =
  let n = size a and m = size b in
  if n = 0 || m = 0 then of_sorted_arrays [||] [||]
  else begin
    let ap = a.penalties and aw = a.probs in
    let bp = b.penalties and bw = b.probs in
    let lo = ap.(0) + bp.(0) in
    (* Sums live on the lattice lo + k * step: step divides every
       pairwise difference on both sides. *)
    let step = max 1 (gcd (support_step ap n) (support_step bp m)) in
    let buckets = ((ap.(n - 1) + bp.(m - 1) - lo) / step) + 1 in
    if buckets <= dense_range_ceiling && buckets <= 4 * n * m then
      convolve_dense ~max_points ~lo ~step ~buckets a b
    else begin
    (* Heap slot k holds run [heap_run.(k)] whose current element is
       [heap_sum.(k)]; [jpos.(i)] is run i's position in b. The initial
       sums a_i + b_0 are ascending in i, so the array starts heap-ordered. *)
    let heap_sum = Array.make n 0 in
    let heap_run = Array.make n 0 in
    let jpos = Array.make n 0 in
    for i = 0 to n - 1 do
      heap_sum.(i) <- ap.(i) + bp.(0);
      heap_run.(i) <- i
    done;
    let heap_len = ref n in
    let less s1 r1 s2 r2 = s1 < s2 || (s1 = s2 && r1 < r2) in
    let sift_down k0 =
      let k = ref k0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !k) + 1 and r = (2 * !k) + 2 in
        let smallest = ref !k in
        if l < !heap_len && less heap_sum.(l) heap_run.(l) heap_sum.(!smallest) heap_run.(!smallest)
        then smallest := l;
        if r < !heap_len && less heap_sum.(r) heap_run.(r) heap_sum.(!smallest) heap_run.(!smallest)
        then smallest := r;
        if !smallest = !k then continue := false
        else begin
          let s = heap_sum.(!k) and ri = heap_run.(!k) in
          heap_sum.(!k) <- heap_sum.(!smallest);
          heap_run.(!k) <- heap_run.(!smallest);
          heap_sum.(!smallest) <- s;
          heap_run.(!smallest) <- ri;
          k := !smallest
        end
      done
    in
    (* Output buffers, grown by doubling: after duplicate folding the
       support is usually far smaller than n*m. *)
    let out_pen = ref (Array.make (min (n * m) 1024) 0) in
    let out_prob = ref (Array.make (min (n * m) 1024) 0.0) in
    let out_len = ref 0 in
    let emit x p =
      if !out_len > 0 && !out_pen.(!out_len - 1) = x then
        !out_prob.(!out_len - 1) <- p +. !out_prob.(!out_len - 1)
      else begin
        if !out_len = Array.length !out_pen then begin
          let cap = 2 * !out_len in
          let pen' = Array.make cap 0 and prob' = Array.make cap 0.0 in
          Array.blit !out_pen 0 pen' 0 !out_len;
          Array.blit !out_prob 0 prob' 0 !out_len;
          out_pen := pen';
          out_prob := prob'
        end;
        !out_pen.(!out_len) <- x;
        !out_prob.(!out_len) <- p;
        incr out_len
      end
    in
    while !heap_len > 0 do
      let i = heap_run.(0) in
      emit heap_sum.(0) (aw.(i) *. bw.(jpos.(i)));
      let j = jpos.(i) + 1 in
      if j < m then begin
        jpos.(i) <- j;
        heap_sum.(0) <- ap.(i) + bp.(j);
        sift_down 0
      end
      else begin
        decr heap_len;
        heap_sum.(0) <- heap_sum.(!heap_len);
        heap_run.(0) <- heap_run.(!heap_len);
        sift_down 0
      end
    done;
    let pens, probs =
      if !out_len <= max_points then
        (Array.sub !out_pen 0 !out_len, Array.sub !out_prob 0 !out_len)
      else cap_arrays max_points !out_pen !out_prob !out_len
    in
    of_sorted_arrays pens probs
    end
  end

(* Weighted mixture. The per-penalty accumulation order is the given
   part order (Hashtbl bucket per penalty, like the reference convolution
   engine); within one part the support is strictly ascending so each
   penalty is touched at most once per part. Weighted masses that
   underflow to exactly 0.0 are dropped — below the subnormal floor
   (~1e-323) there is nothing left to keep, ~300 orders of magnitude
   past any exceedance target this pipeline answers. *)
let mixture ?(max_points = 65536) parts =
  let points = ref [] in
  List.iter
    (fun (w, t) ->
      if not (Float.is_finite w) || w < 0.0 || w > 1.0 then
        invalid_arg "Dist.mixture: weight outside [0,1]";
      if w > 0.0 then
        Array.iteri (fun i x -> points := (x, w *. t.probs.(i)) :: !points) t.penalties)
    parts;
  let merged = merge_points "Dist.mixture" (List.rev !points) in
  let total = Kahan.sum_by snd merged in
  if total > 1.0 +. 1e-9 then
    invalid_arg (Printf.sprintf "Dist.mixture: total mass %.12g > 1" total);
  match merged with
  | [] -> of_sorted_arrays [||] [||]
  | merged ->
    let merged = cap_points max_points merged in
    of_sorted_arrays
      (Array.of_list (List.map fst merged))
      (Array.of_list (List.map snd merged))

let convolve ?(impl = `Merge) ?(max_points = 65536) a b =
  match impl with
  | `Merge -> convolve_merge ~max_points a b
  | `Reference -> convolve_reference ~max_points a b

(* Balanced pairwise tree instead of a left fold: n-1 convolutions
   either way, but operands stay similarly sized, so total work drops
   from O(n * |acc|) against one ever-growing accumulator to the
   tree-sum of products, and capping (when it triggers) applies to
   balanced operands rather than degrading one long chain. *)
let convolve_all ?impl ?max_points dists =
  let rec pair_up = function
    | a :: b :: rest -> convolve ?impl ?max_points a b :: pair_up rest
    | tail -> tail
  in
  let rec reduce = function
    | [] -> point 0
    | [ d ] -> d
    | ds -> reduce (pair_up ds)
  in
  reduce dists

(* k-th convolution power by repeated squaring. Bit-identical to
   [convolve_all] on k copies of [d] for every k, impl and max_points:
   the balanced tree over equal elements only ever contains a run of
   one repeated value plus at most one distinct trailing element, so
   the whole tree collapses to log-many distinct convolutions —
   [(e, c, tail)] below is exactly that run. With c odd, [pair_up]
   pairs the run's last copy with the trailing element, which is why
   the odd step convolves [e] into the tail rather than multiplying
   tails together at the end (plain binary exponentiation would not
   match the tree once capping triggers). *)
let convolve_pow ?impl ?max_points d k =
  if k < 0 then invalid_arg "Dist.convolve_pow: negative power";
  if k = 0 then point 0
  else begin
    let conv a b = convolve ?impl ?max_points a b in
    let rec go e c tail =
      (* invariant: remaining tree level is [e; e; ...(c copies)] @ tail *)
      if c = 1 then (match tail with None -> e | Some t -> conv e t)
      else begin
        let e2 = conv e e in
        if c land 1 = 0 then go e2 (c / 2) tail
        else
          match tail with
          | None -> go e2 (c / 2) (Some e)
          | Some t -> go e2 (c / 2) (Some (conv e t))
      end
    in
    go d k None
  end

(* P(X > x): suffix sum of the first support point strictly above x. *)
let exceedance t x =
  let n = Array.length t.penalties in
  (* Binary search: first index with penalty > x. *)
  let rec search lo hi = if lo >= hi then lo else begin
      let mid = (lo + hi) / 2 in
      if t.penalties.(mid) > x then search lo mid else search (mid + 1) hi
    end
  in
  let i = search 0 n in
  if i >= n then 0.0 else t.suffix.(i)

let quantile t ~target =
  (* NaN fails every comparison, so [target < 0.0] alone would accept
     it and the binary search below would return nonsense. *)
  if not (Float.is_finite target) || target < 0.0 then
    invalid_arg "Dist.quantile: target must be finite and non-negative";
  let n = Array.length t.penalties in
  if n = 0 || exceedance t 0 <= target then 0
  else begin
    (* The exceedance function only drops at support values, so the
       smallest x with P(X > x) <= target is the first support value
       whose strict upper tail fits the target. [tail_above] is
       non-increasing in i, so binary-search the first index where it
       fits; at i = n-1 the tail is 0, so the search is total. *)
    let tail_above i = if i + 1 < n then t.suffix.(i + 1) else 0.0 in
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if tail_above mid <= target then search lo mid else search (mid + 1) hi
      end
    in
    t.penalties.(search 0 (n - 1))
  end

let exceedance_curve t =
  Array.to_list (Array.map2 (fun x s -> (x, s)) t.penalties t.suffix)

let expectation t =
  let acc = Kahan.create () in
  Array.iteri (fun i x -> Kahan.add acc (float_of_int x *. t.probs.(i))) t.penalties;
  Kahan.total acc

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iteri (fun i x -> Format.fprintf fmt "%d: %.6g@," x t.probs.(i)) t.penalties;
  Format.fprintf fmt "@]"

(* --- canonical serialization --------------------------------------------

   Fixed-width little-endian, no implicit state: [n] then n pairs of
   (penalty as int64, probability as IEEE-754 bits). The suffix array
   is derived data and is rebuilt on decode by the same [build_suffix]
   that built the original — storing it would only add bytes that can
   disagree with the probabilities. *)

let to_wire t =
  let n = Array.length t.penalties in
  let b = Buffer.create (8 + (16 * n)) in
  Buffer.add_int64_le b (Int64.of_int n);
  for i = 0 to n - 1 do
    Buffer.add_int64_le b (Int64.of_int t.penalties.(i));
    Buffer.add_int64_le b (Int64.bits_of_float t.probs.(i))
  done;
  Buffer.contents b

let of_wire data =
  let len = String.length data in
  if len < 8 then Error "Dist.of_wire: truncated header"
  else begin
    let n = Int64.to_int (String.get_int64_le data 0) in
    if n < 0 || len <> 8 + (16 * n) then
      Error (Printf.sprintf "Dist.of_wire: length %d inconsistent with %d points" len n)
    else begin
      let penalties = Array.make n 0 in
      let probs = Array.make n 0.0 in
      let error = ref None in
      let fail msg = if !error = None then error := Some msg in
      for i = 0 to n - 1 do
        let x = Int64.to_int (String.get_int64_le data (8 + (16 * i))) in
        let p = Int64.float_of_bits (String.get_int64_le data (16 + (16 * i))) in
        if x < 0 then fail (Printf.sprintf "Dist.of_wire: negative penalty %d" x);
        if i > 0 && x <= penalties.(i - 1) then
          fail (Printf.sprintf "Dist.of_wire: penalties not strictly ascending at %d" i);
        if (not (Float.is_finite p)) || p <= 0.0 || p > 1.0 then
          fail (Printf.sprintf "Dist.of_wire: bad probability at %d" i);
        penalties.(i) <- x;
        probs.(i) <- p
      done;
      match !error with
      | Some msg -> Error msg
      | None ->
        let t = of_sorted_arrays penalties probs in
        if total_mass t > 1.0 +. 1e-9 then
          Error (Printf.sprintf "Dist.of_wire: total mass %.12g > 1" (total_mass t))
        else Ok t
    end
  end

(** Finite discrete probability distributions over integer penalties
    (cycles), with the convolution and exceedance machinery of the
    paper's Section II-C.

    Soundness convention: all approximation is {e upward} — when the
    support is capped, low-probability points are merged into {e
    higher} penalties, so every derived exceedance probability and
    quantile over-approximates the true one. Probability sums use
    compensated summation; the tail masses of interest (around
    [1e-15]) are far above the float64 noise floor when accumulated
    this way. *)

type t

val point : int -> t
(** The deterministic distribution. *)

val of_points : (int * float) list -> t
(** Duplicate penalties are merged. Total mass must be within [1e-9] of
    1. @raise Invalid_argument on negative penalties or probabilities,
    or a bad total. *)

val of_sub_points : (int * float) list -> t
(** Like {!of_points} but allows any total mass in [0, 1]: a
    {e sub}-probability distribution. Convolving sub-distributions
    multiplies masses, which is exactly the joint-event accounting the
    refined SRB analysis needs ({!total_mass} tracks the defect). *)

val scale : float -> t -> t
(** Multiply every probability by a factor in [0, 1]. *)

val shift : int -> t -> t
(** [shift c t] adds [c] cycles to every penalty. The probabilities —
    and therefore the derived exceedance (suffix) array — are reused
    bit-for-bit, so no re-summation can perturb a deep tail.
    @raise Invalid_argument when a shifted penalty would be negative. *)

val mixture : ?max_points:int -> (float * t) list -> t
(** [mixture parts] is the weighted sum [Σ wᵢ·dᵢ] of the given
    (sub-)distributions — the law of a variable that follows [dᵢ] with
    probability [wᵢ]. Weights must lie in [0, 1]; the total mass may be
    any value in [0, 1] (a sub-distribution, as with
    {!of_sub_points}), which is how the re-execution model carries the
    residual unrecovered-fault mass outside the mixture. Capping at
    [max_points] (default 65536) is the same upward-conservative fold
    as {!convolve}. Weighted masses that underflow to exactly [0.0]
    are dropped, consistent with the engine-wide [p > 0] invariant.
    @raise Invalid_argument on a weight outside [0,1] or total mass
    beyond [1 + 1e-9]. *)

val support : t -> (int * float) list
(** Ascending penalties with their probabilities. *)

val size : t -> int
val total_mass : t -> float

val convolve : ?impl:[ `Merge | `Reference ] -> ?max_points:int -> t -> t -> t
(** Distribution of the sum of two independent variables. When the
    result exceeds [max_points] (default 65536), the lowest-probability
    points are folded into the next higher kept penalty (conservative);
    the result never has more than [max_points] points, even when tied
    probabilities straddle the cut.

    [impl] selects the engine. [`Merge] (default) runs a k-way
    sorted-run merge over preallocated buffers — the support arrays are
    already sorted, so the n*m pairwise sums are n sorted runs and no
    hash table or comparison sort is needed. [`Reference] is the
    original hash-table engine, kept for differential testing and
    benchmarking. The engines are {e bit-identical}: equal sums are
    accumulated in the same order (see the kernel comment in the
    implementation) and both share the same capping code. *)

val convolve_all : ?impl:[ `Merge | `Reference ] -> ?max_points:int -> t list -> t
(** Convolution of a list of independent variables ([{!point} 0] for the
    empty list), computed as a balanced pairwise tree. Equal to the
    left-to-right fold whenever [max_points] never triggers (convolution
    is associative); when capping does trigger, the result still
    conservatively dominates every uncapped ordering (see the soundness
    convention above), but individual points may differ from the
    fold's. *)

val convolve_pow : ?impl:[ `Merge | `Reference ] -> ?max_points:int -> t -> int -> t
(** [convolve_pow d k] is the distribution of the sum of [k] independent
    copies of [d] ([{!point} 0] for [k = 0]), computed with
    exponentiation by squaring: O(log k) convolutions instead of k-1.
    Bit-identical to [convolve_all] on [k] copies of [d] for every [k],
    [impl] and [max_points] — the balanced tree over equal operands
    collapses to repeated squaring plus one odd-element chain, and the
    implementation reproduces that exact shape so capping decisions
    coincide. In particular it equals the k-fold left [convolve] fold
    whenever capping never triggers and the probabilities are exactly
    representable (convolution is associative and commutative; see
    DESIGN.md §7 for the multiset argument).
    @raise Invalid_argument when [k < 0]. *)

(** {2 Exceedance convention}

    Two tail queries coexist and are intentionally distinct:
    {ul
    {- [exceedance t x] is the {e strict} tail [P(X > x)] — the paper's
       exceedance-probability query: a deadline set at [x] is {e missed}
       only when the penalty strictly exceeds it.}
    {- [exceedance_curve t] lists the {e weak} tails [P(X >= x)] at
       every support point — the CCDF staircase of Fig. 3, which must
       show each point's own mass.}}
    On integer penalties they interconvert: [P(X >= x) = P(X > x - 1)],
    i.e. the curve value at support point [x] equals
    [exceedance t (x - 1)]. *)

val exceedance : t -> int -> float
(** [exceedance t x] is the strict tail [P(X > x)]. *)

val quantile : t -> target:float -> int
(** Smallest penalty [x] with [P(X > x) <= target] — the value read off
    the paper's complementary cumulative distributions. Binary search
    over the suffix-tail array: O(log n) per query.
    @raise Invalid_argument when [target < 0]. *)

val exceedance_curve : t -> (int * float) list
(** Points [(x, P(X >= x))] for every x in the support — the staircase
    the paper plots in Fig. 3 (weak inequality; see the convention
    above). *)

val expectation : t -> float
val pp : Format.formatter -> t -> unit

(** {2 Canonical serialization}

    The wire form is a pure function of the distribution — ascending
    [(penalty, probability-bits)] pairs, fixed-width little-endian — so
    equal distributions encode to equal bytes and a byte-for-byte
    comparison of artifacts is a distribution comparison. The suffix
    (exceedance) array is {e not} stored: {!of_wire} rebuilds it with
    the same compensated summation that built the original, so a
    decoded distribution is structurally identical to the encoded one,
    including every derived tail value. *)

val to_wire : t -> string

val of_wire : string -> (t, string) result
(** Validates shape and content (strictly ascending non-negative
    penalties, finite positive probabilities, total mass at most 1) —
    a corrupted or adversarial payload yields [Error], never a
    distribution that violates the module invariants. *)

type t = {
  ilp_nodes : int option;
  fixpoint_iters : int option;
  deadline : float option;
}

let unlimited = { ilp_nodes = None; fixpoint_iters = None; deadline = None }

let default_ilp_nodes = 100_000

(* Deadlines live on the monotonic scale, not the wall clock: a
   long-running daemon holds deadlines open for hours, and an NTP step
   or manual clock change under [Unix.gettimeofday] would fire every
   in-flight deadline spuriously (clock jumped forward) or never
   (clock jumped back).  CLOCK_MONOTONIC only ever advances. *)
external monotonic_now : unit -> float = "pwcet_monotonic_now"

let now = monotonic_now

let make ?ilp_nodes ?fixpoint_iters ?timeout () =
  let positive what = function
    | Some n when n < 0 -> invalid_arg ("Budget.make: negative " ^ what)
    | v -> v
  in
  (match timeout with
  | Some s when (not (Float.is_finite s)) || s < 0.0 ->
    invalid_arg "Budget.make: timeout must be finite and non-negative"
  | _ -> ());
  {
    ilp_nodes = positive "ilp_nodes" ilp_nodes;
    fixpoint_iters = positive "fixpoint_iters" fixpoint_iters;
    deadline = Option.map (fun s -> now () +. s) timeout;
  }

let expired t =
  match t.deadline with None -> false | Some d -> now () > d

let check_deadline ~what t =
  if expired t then
    Error (Pwcet_error.Budget_exhausted (what ^ ": deadline expired"))
  else Ok ()

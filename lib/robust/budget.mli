(** Resource budgets for the analysis pipeline.

    A budget caps the three places the pipeline can burn unbounded
    time: branch-and-bound node expansion, abstract-interpretation
    fixpoint iteration, and wall-clock time of a whole batch.
    Exceeding a cap is never a crash: solvers report
    {!Pwcet_error.Budget_exhausted} and the callers degrade to a
    looser sound bound (see {!Rung}). *)

type t = {
  ilp_nodes : int option;  (** branch-and-bound node cap *)
  fixpoint_iters : int option;  (** worklist-pop cap per fixpoint run *)
  deadline : float option;  (** absolute monotonic instant, {!now} scale *)
}

val unlimited : t
(** No caps at all: the exact pre-degradation behaviour. *)

val default_ilp_nodes : int
(** The historical [Branch_bound.solve] default (100_000), used when a
    budget caps nothing. *)

val make : ?ilp_nodes:int -> ?fixpoint_iters:int -> ?timeout:float -> unit -> t
(** [timeout] is in seconds {e from now}; it is converted to an
    absolute deadline at creation time, so one budget value threads a
    single deadline through every stage of a run.
    @raise Invalid_argument on a negative or non-finite cap. *)

val now : unit -> float
(** Monotonic seconds ([clock_gettime(CLOCK_MONOTONIC)]) — the
    deadline scale.  {e Not} the wall clock: the origin is arbitrary
    (typically boot), the value only ever advances, and an NTP step or
    manual clock change does not move it — so a deadline held open for
    hours by a long-running service fires exactly [timeout] seconds
    after {!make}, never spuriously and never late because the wall
    clock jumped. Compare instants from this function only with each
    other, within one process. *)

val expired : t -> bool
(** Whether the deadline (if any) has passed. *)

val check_deadline : what:string -> t -> (unit, Pwcet_error.t) result
(** [Error (Budget_exhausted _)] naming [what] once {!expired}. *)

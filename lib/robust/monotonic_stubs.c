/* Monotonic clock for deadline arithmetic.
 *
 * Budget deadlines must survive wall-clock steps: an NTP correction or
 * a manual `date` while an analysis daemon holds deadlines open must
 * neither fire every in-flight deadline spuriously nor postpone them
 * indefinitely.  CLOCK_MONOTONIC is immune to both — it only ever
 * advances, at (adjusted) real-time rate, from an arbitrary origin.
 *
 * Kept as a local stub (no external opam dependency): the repository's
 * no-deps rule also covers the clock.
 */

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value pwcet_monotonic_now(value unit)
{
    struct timespec ts;
    if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
        caml_failwith("Budget.now: clock_gettime(CLOCK_MONOTONIC) failed");
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec / 1e9);
}

type t =
  | Infeasible of string
  | Unbounded of string
  | Budget_exhausted of string
  | Fixpoint_divergence of string
  | Invalid_input of string
  | Worker_crash of string
  | Corrupt_artifact of string
  | Version_mismatch of string

exception Error of t

let category = function
  | Infeasible _ -> "infeasible"
  | Unbounded _ -> "unbounded"
  | Budget_exhausted _ -> "budget-exhausted"
  | Fixpoint_divergence _ -> "fixpoint-divergence"
  | Invalid_input _ -> "invalid-input"
  | Worker_crash _ -> "worker-crash"
  | Corrupt_artifact _ -> "corrupt-artifact"
  | Version_mismatch _ -> "version-mismatch"

let message = function
  | Infeasible m
  | Unbounded m
  | Budget_exhausted m
  | Fixpoint_divergence m
  | Invalid_input m
  | Worker_crash m
  | Corrupt_artifact m
  | Version_mismatch m ->
    m

let of_category category message =
  match category with
  | "infeasible" -> Some (Infeasible message)
  | "unbounded" -> Some (Unbounded message)
  | "budget-exhausted" -> Some (Budget_exhausted message)
  | "fixpoint-divergence" -> Some (Fixpoint_divergence message)
  | "invalid-input" -> Some (Invalid_input message)
  | "worker-crash" -> Some (Worker_crash message)
  | "corrupt-artifact" -> Some (Corrupt_artifact message)
  | "version-mismatch" -> Some (Version_mismatch message)
  | _ -> None

let to_string t = category t ^ ": " ^ message t

let pp fmt t = Format.pp_print_string fmt (to_string t)

let raise_error t = raise (Error t)

(* Readable [Printexc.to_string] output for the wrappers. *)
let () =
  Printexc.register_printer (function
    | Error t -> Some ("Robust.Pwcet_error.Error (" ^ to_string t ^ ")")
    | _ -> None)

(** Typed pipeline errors — the error half of every [result]-typed
    analysis outcome in the degradation layer.

    The taxonomy is deliberately small and spans every layer of the
    eq. 1-3 -> CHMC -> FMM -> IPET chain:
    {ul
    {- [Infeasible] / [Unbounded]: the ILP itself is broken (an
       infeasible IPET system means the flow model is inconsistent; an
       unbounded one means a loop bound is missing) — these are {e
       model} errors, not resource exhaustion, and no degradation rung
       can repair them;}
    {- [Budget_exhausted]: a solver or pool ran out of its
       {!Budget.t} allowance (ILP nodes, wall-clock deadline) — the
       caller is expected to degrade to a looser sound bound;}
    {- [Fixpoint_divergence]: an abstract-interpretation fixpoint
       exceeded its iteration cap (cannot happen on the finite cache
       lattices, but the cap turns a hypothetical hang into a typed
       error);}
    {- [Invalid_input]: a validation failure (bad geometry,
       non-probability, malformed table);}
    {- [Worker_crash]: an exception escaped a pool worker; the payload
       carries the original exception text so sibling items can
       survive while the crash stays diagnosable.}} *)

type t =
  | Infeasible of string
  | Unbounded of string
  | Budget_exhausted of string
  | Fixpoint_divergence of string
  | Invalid_input of string
  | Worker_crash of string

exception Error of t
(** The raising mirror of [t], for the thin compatibility wrappers
    around the [result]-typed APIs. *)

val category : t -> string
(** Short stable tag ("infeasible", "budget-exhausted", ...) for
    reports and tests. *)

val message : t -> string
(** The constructor payload. *)

val to_string : t -> string
(** ["category: message"]. *)

val pp : Format.formatter -> t -> unit

val raise_error : t -> 'a
(** [raise (Error t)]. *)

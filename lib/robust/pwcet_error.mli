(** Typed pipeline errors — the error half of every [result]-typed
    analysis outcome in the degradation layer.

    The taxonomy is deliberately small and spans every layer of the
    eq. 1-3 -> CHMC -> FMM -> IPET chain:
    {ul
    {- [Infeasible] / [Unbounded]: the ILP itself is broken (an
       infeasible IPET system means the flow model is inconsistent; an
       unbounded one means a loop bound is missing) — these are {e
       model} errors, not resource exhaustion, and no degradation rung
       can repair them;}
    {- [Budget_exhausted]: a solver or pool ran out of its
       {!Budget.t} allowance (ILP nodes, wall-clock deadline) — the
       caller is expected to degrade to a looser sound bound;}
    {- [Fixpoint_divergence]: an abstract-interpretation fixpoint
       exceeded its iteration cap (cannot happen on the finite cache
       lattices, but the cap turns a hypothetical hang into a typed
       error);}
    {- [Invalid_input]: a validation failure (bad geometry,
       non-probability, malformed table);}
    {- [Worker_crash]: an exception escaped a pool worker; the payload
       carries the original exception text so sibling items can
       survive while the crash stays diagnosable;}
    {- [Corrupt_artifact]: an on-disk artifact failed its integrity
       check (bad magic, torn write, checksum mismatch, malformed
       payload). The store quarantines the entry and the caller
       recomputes — corruption must never surface as a wrong table;}
    {- [Version_mismatch]: an artifact was written by a different
       on-disk format version; treated like a miss (recompute), never
       decoded on trust.}} *)

type t =
  | Infeasible of string
  | Unbounded of string
  | Budget_exhausted of string
  | Fixpoint_divergence of string
  | Invalid_input of string
  | Worker_crash of string
  | Corrupt_artifact of string
  | Version_mismatch of string

exception Error of t
(** The raising mirror of [t], for the thin compatibility wrappers
    around the [result]-typed APIs. *)

val category : t -> string
(** Short stable tag ("infeasible", "budget-exhausted", ...) for
    reports and tests. *)

val message : t -> string
(** The constructor payload. *)

val of_category : string -> string -> t option
(** [of_category cat msg] inverts {!category} — the wire decoding of a
    serialized error ([None] on an unknown tag, so readers of artifacts
    written by a future version fail closed). *)

val to_string : t -> string
(** ["category: message"]. *)

val pp : Format.formatter -> t -> unit

val raise_error : t -> 'a
(** [raise (Error t)]. *)

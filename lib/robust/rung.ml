type t =
  | Exact
  | Relaxed
  | Structural

let to_string = function
  | Exact -> "exact"
  | Relaxed -> "relaxed"
  | Structural -> "structural"

let rank = function Exact -> 0 | Relaxed -> 1 | Structural -> 2

let compare a b = Int.compare (rank a) (rank b)

let worst a b = if compare a b >= 0 then a else b

let equal a b = rank a = rank b

let pp fmt t = Format.pp_print_string fmt (to_string t)

let to_tag = rank

let of_tag = function
  | 0 -> Some Exact
  | 1 -> Some Relaxed
  | 2 -> Some Structural
  | _ -> None

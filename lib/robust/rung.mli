(** Degradation-ladder provenance for maximisation bounds.

    Every WCET-style bound the pipeline produces is tagged with the
    rung that produced it. The ladder only ever moves towards {e
    looser but still sound} bounds (for a maximisation objective every
    rung over-approximates the one below it):

    {ul
    {- [Exact] — branch-and-bound ran to completion (or the tree-based
       path engine, which is exact for its own cost model);}
    {- [Relaxed] — the LP relaxation's optimum. Sound for WCET / miss
       deltas because relaxing integrality of a maximisation ILP can
       only enlarge the feasible region, hence the optimum;}
    {- [Structural] — the loop-bound product bound: every node costs
       its worst per-execution cost at most [prod (bound_l + 1)] times
       over its enclosing loops. No LP is solved at all.}} *)

type t =
  | Exact
  | Relaxed
  | Structural

val to_string : t -> string

val compare : t -> t -> int
(** Looseness order: [Exact < Relaxed < Structural]. *)

val worst : t -> t -> t
(** The looser of the two — how a bound assembled from several
    sub-bounds is tagged. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_tag : t -> int
(** Stable wire tag (the looseness rank) for serialized provenance. *)

val of_tag : int -> t option
(** Inverse of {!to_tag}; [None] on an unknown tag, so artifact readers
    fail closed. *)

type policy = Rm | Edf

let policy_name = function Rm -> "rm" | Edf -> "edf"

let policy_of_string = function
  | "rm" -> Some Rm
  | "edf" -> Some Edf
  | _ -> None

type model = {
  bench : string;
  utilisation : float;
  exec : Prob.Dist.t;
  period : int;
  p_exec : float;
  rung : Robust.Rung.t;
}

let model_of_law ~bench ~utilisation ~law ~rep_target ~fault_rate_per_hour ~cycles_per_hour ~rung
    =
  if not (Float.is_finite utilisation) || utilisation <= 0.0 || utilisation > 1.0 then
    invalid_arg "Analysis.model_of_law: utilisation outside (0,1]";
  if Prob.Dist.size law = 0 then invalid_arg "Analysis.model_of_law: law has empty support";
  (* The provisioned per-execution budget is the law's quantile at the
     replenishment target; the period spreads it over the task's
     utilisation share. Fault exposure is that same budget — snippet
     1's model: the detection window is the provisioned WCET, not the
     (unknowable at analysis time) actual run length. *)
  let rep = max 1 (Prob.Dist.quantile law ~target:rep_target) in
  let period = max rep (int_of_float (Float.ceil (float_of_int rep /. utilisation))) in
  let p_exec = Reexec.p_exec ~fault_rate_per_hour ~cycles_per_hour ~exec_cycles:rep in
  { bench; utilisation; exec = law; period; p_exec; rung }

type params = {
  policy : policy;
  budget : int;
  k_max : int;
  max_points : int;
  cycles_per_hour : float;
  targets : float list;
}

let default_targets = [ 1e-3; 1e-5; 1e-7; 1e-9 ]

type task_verdict = {
  model : model;
  p_job : float;
  p_hour : float;
  jobs_per_hour : float;
  task_rung : Robust.Rung.t;
  capped : bool;
  error : Robust.Pwcet_error.t option;
}

type verdict = {
  set_index : int;
  tasks : task_verdict list;
  p_system_hour : float;
  rung : Robust.Rung.t;
  capped : bool;
  degraded : bool;
  passes : (float * bool) list;
  min_budget : (float * int option) list;
}

let check_params params =
  if params.budget < 0 then invalid_arg "Analysis.analyze: negative re-execution budget";
  if params.k_max < params.budget then invalid_arg "Analysis.analyze: k_max below budget";
  if params.max_points < 2 then invalid_arg "Analysis.analyze: max_points must be at least 2";
  if not (Float.is_finite params.cycles_per_hour) || params.cycles_per_hour <= 0.0 then
    invalid_arg "Analysis.analyze: cycles_per_hour must be positive";
  List.iter
    (fun t ->
      if not (Float.is_finite t) || t <= 0.0 || t > 1.0 then
        invalid_arg "Analysis.analyze: target outside (0,1]")
    params.targets

(* Jobs of task [j] that can execute inside one job window of task [i].
   RM: only higher-priority tasks (shorter period, ties by index)
   interfere, ceil(D_i/T_j) releases each. EDF: jobs of [j] with
   deadline at or before D_i — the demand-bound count floor(D_i/T_j)
   for implicit deadlines. *)
let interference_jobs ~policy models i j =
  let ti = models.(i).period and tj = models.(j).period in
  match policy with
  | Rm -> if tj < ti || (tj = ti && j < i) then (ti + tj - 1) / tj else 0
  | Edf -> if ti < tj then 0 else ti / tj

type sys = {
  stasks : task_verdict list;
  p_sys : float;
}

let analyze ?budget ~params ~set_index models =
  let n = Array.length models in
  if n = 0 then invalid_arg "Analysis.analyze: empty model array";
  check_params params;
  let max_points = params.max_points in
  (* Per-task convolution-power ladders up to k_max, built lazily and
     shared by the verdict read and the minimal-budget scan. *)
  let ladders = Array.make n None in
  let ladder i =
    match ladders.(i) with
    | Some l -> l
    | None ->
      let l = Reexec.powers ~max_points ~budget:params.k_max models.(i).exec in
      ladders.(i) <- Some l;
      l
  in
  let deadline_expired () =
    match budget with Some b -> Robust.Budget.expired b | None -> false
  in
  let jobs_per_hour i = params.cycles_per_hour /. float_of_int models.(i).period in
  let degraded_task k i =
    {
      model = models.(i);
      p_job = 1.0;
      p_hour = 1.0;
      jobs_per_hour = jobs_per_hour i;
      task_rung = Robust.Rung.Structural;
      capped = false;
      error =
        Some
          (Robust.Pwcet_error.Budget_exhausted
             (Printf.sprintf "sched analysis: set %d, task %d, re-execution budget %d"
                set_index i k));
    }
  in
  let task_at k i =
    if deadline_expired () then degraded_task k i
    else begin
      let m = models.(i) in
      let capped = ref false in
      let note d =
        if Prob.Dist.size d >= max_points then capped := true;
        d
      in
      let parts = ref [] in
      for j = n - 1 downto 0 do
        if j <> i then begin
          let jobs = interference_jobs ~policy:params.policy models i j in
          if jobs > 0 then begin
            let demand =
              note
                (Reexec.interference_demand ~max_points ~p:models.(j).p_exec ~budget:k
                   (ladder j))
            in
            parts := note (Prob.Dist.convolve_pow ~max_points demand jobs) :: !parts
          end
        end
      done;
      let interference = note (Prob.Dist.convolve_all ~max_points !parts) in
      (* p_job = p^(k+1) + sum_j p^j (1-p) P(I + C^(j+1) > D), with the
         convolution powers grown incrementally onto the interference:
         (I * C) * C ... — under capping this differs from I * (C^j)
         only conservatively (every cap folds mass upward). *)
      let weights, residual = Reexec.attempt_weights ~p:m.p_exec ~budget:k in
      let acc = Numeric.Kahan.create () in
      Numeric.Kahan.add acc residual;
      let cur = ref interference in
      for j = 0 to k do
        cur := note (Prob.Dist.convolve ~max_points !cur m.exec);
        Numeric.Kahan.add acc (weights.(j) *. Prob.Dist.exceedance !cur m.period)
      done;
      let p_job = Numeric.Probfloat.clamp01 (Numeric.Kahan.total acc) in
      let jobs_per_hour = jobs_per_hour i in
      let p_hour = Numeric.Probfloat.one_minus_pow_one_minus_real ~p:p_job ~n:jobs_per_hour in
      {
        model = m;
        p_job;
        p_hour;
        jobs_per_hour;
        task_rung =
          Robust.Rung.worst m.rung
            (if !capped then Robust.Rung.Relaxed else Robust.Rung.Exact);
        capped = !capped;
        error = None;
      }
    end
  in
  let system k =
    let rev = ref [] in
    for i = 0 to n - 1 do
      rev := task_at k i :: !rev
    done;
    let stasks = List.rev !rev in
    let p_sys =
      if List.exists (fun tv -> tv.p_hour >= 1.0) stasks then 1.0
      else begin
        let acc = Numeric.Kahan.create () in
        List.iter (fun tv -> Numeric.Kahan.add acc (Float.log1p (-.tv.p_hour))) stasks;
        Numeric.Probfloat.clamp01 (-.Float.expm1 (Numeric.Kahan.total acc))
      end
    in
    { stasks; p_sys }
  in
  let memo = Array.make (params.k_max + 1) None in
  let system_at k =
    match memo.(k) with
    | Some s -> s
    | None ->
      let s = system k in
      memo.(k) <- Some s;
      s
  in
  let headline = system_at params.budget in
  (* Linear scan from k = 0: system failure need not be monotone in a
     global budget (interfering jobs re-execute more, too), so "the
     smallest k that meets the target" is found by looking, not by
     bisection. *)
  let min_budget =
    List.map
      (fun target ->
        let rec find k =
          if k > params.k_max then None
          else if (system_at k).p_sys <= target then Some k
          else find (k + 1)
        in
        (target, find 0))
      params.targets
  in
  let rung =
    List.fold_left
      (fun acc tv -> Robust.Rung.worst acc tv.task_rung)
      Robust.Rung.Exact headline.stasks
  in
  {
    set_index;
    tasks = headline.stasks;
    p_system_hour = headline.p_sys;
    rung;
    capped = List.exists (fun (tv : task_verdict) -> tv.capped) headline.stasks;
    degraded = List.exists (fun (tv : task_verdict) -> tv.error <> None) headline.stasks;
    passes = List.map (fun t -> (t, headline.p_sys <= t)) params.targets;
    min_budget;
  }

(** Deadline-failure-probability analysis under RM and EDF.

    Each task contributes a single-execution pWCET law (fault-free WCET
    plus fault penalty, from {!Pwcet.Estimator}); a job is that law
    under bounded re-execution ({!Reexec}). For one job of task [i]
    with implicit deadline [D_i = T_i], the analysis convolves the
    interference of every other task's jobs released inside the window
    with the job's own executed demand and reads the exceedance at the
    deadline:

    [p_job_i = p^(k+1) + sum_j p^(j-1)(1-p) * P(I_i + j-fold C_i > D_i)]

    where the first term is the budget-exhaustion residual (certain
    failure) and [I_i] convolves, per interfering task [j], the
    full-mass {!Reexec.interference_demand} to the power of the number
    of interfering jobs — [ceil(D_i/T_j)] for higher-priority tasks
    under RM, [floor(D_i/T_j)] under EDF (the demand-bound count for
    implicit deadlines). Every convolution is capped at [max_points]
    with the engine's upward-conservative fold, so a capped analysis
    over-approximates the uncapped one; capping is recorded as
    provenance ([capped], rung at least [Relaxed]) rather than changing
    any verdict semantics.

    Degradation: when the optional {!Robust.Budget.t} deadline expires,
    the remaining tasks are not analysed — they report the sound upper
    bound [p_job = 1] with rung [Structural] and a
    [Budget_exhausted] error, and the set-level verdict carries
    [degraded = true]. The analysis never aborts. *)

type policy = Rm | Edf

val policy_name : policy -> string
val policy_of_string : string -> policy option

type model = {
  bench : string;  (** benchmark label, for reports *)
  utilisation : float;  (** in (0, 1] *)
  exec : Prob.Dist.t;  (** single-execution pWCET law, cycles *)
  period : int;  (** cycles; implicit deadline *)
  p_exec : float;  (** per-execution fault-detection probability *)
  rung : Robust.Rung.t;  (** provenance inherited from the estimate *)
}

val model_of_law :
  bench:string ->
  utilisation:float ->
  law:Prob.Dist.t ->
  rep_target:float ->
  fault_rate_per_hour:float ->
  cycles_per_hour:float ->
  rung:Robust.Rung.t ->
  model
(** Derives the period from the law's [rep_target] quantile [rep]
    (the provisioned per-execution budget): [T = ceil(rep / u)], and
    the per-execution fault probability from [rep] cycles of exposure
    at the given per-hour rate ({!Reexec.p_exec}).
    @raise Invalid_argument on a utilisation outside (0, 1] or a law
    with an empty support. *)

type params = {
  policy : policy;
  budget : int;  (** re-execution budget [k] the verdict is read at *)
  k_max : int;  (** top of the minimal-budget scan, at least [budget] *)
  max_points : int;  (** convolution cap, with provenance when it binds *)
  cycles_per_hour : float;
  targets : float list;  (** per-hour failure-rate targets, e.g. 1e-3..1e-9 *)
}

val default_targets : float list
(** [1e-3; 1e-5; 1e-7; 1e-9] — snippet 1's target ladder. *)

type task_verdict = {
  model : model;
  p_job : float;  (** deadline-failure probability per job *)
  p_hour : float;  (** per hour, composed over [jobs_per_hour] *)
  jobs_per_hour : float;
  task_rung : Robust.Rung.t;  (** worst of the model's rung and capping *)
  capped : bool;  (** some convolution hit [max_points] *)
  error : Robust.Pwcet_error.t option;  (** budget exhaustion, if any *)
}

type verdict = {
  set_index : int;
  tasks : task_verdict list;
  p_system_hour : float;  (** any-task deadline failure per hour *)
  rung : Robust.Rung.t;  (** worst task rung *)
  capped : bool;
  degraded : bool;  (** some task carries a budget-exhaustion bound *)
  passes : (float * bool) list;  (** per target, at budget [params.budget] *)
  min_budget : (float * int option) list;
      (** per target, the smallest [k <= k_max] whose system failure
          rate meets it; [None] when none does *)
}

val interference_jobs : policy:policy -> model array -> int -> int -> int
(** [interference_jobs ~policy models i j] — jobs of task [j] that can
    execute inside one job window of task [i]: [ceil(D_i/T_j)] for
    RM-higher-priority tasks (shorter period, ties by index),
    [floor(D_i/T_j)] under EDF (demand-bound count for implicit
    deadlines), 0 otherwise. Shared with {!Montecarlo} so sampler and
    integrator agree on the interference population. *)

val analyze : ?budget:Robust.Budget.t -> params:params -> set_index:int -> model array -> verdict
(** Deterministic in everything but the wall clock a [budget] deadline
    reads; an unbudgeted call is a pure function of its inputs.
    @raise Invalid_argument on an empty model array or invalid params. *)

type spec = {
  count : int;
  n_tasks : int;
  utilisation : float;
  seed : int;
  policy : Analysis.policy;
  reexec_budget : int;
  k_max : int;
  targets : float list;
  pfail : float;
  mechanism : Pwcet.Mechanism.t;
  sets : int;
  ways : int;
  line : int;
  fault_rate : float;
  clock_mhz : float;
  rep_target : float;
  max_points : int;
  benchmarks : string list;
}

let taskset_spec spec =
  {
    Taskset.n_tasks = spec.n_tasks;
    utilisation = spec.utilisation;
    seed = spec.seed;
    benchmarks = spec.benchmarks;
  }

let cycles_per_hour spec = spec.clock_mhz *. 1e6 *. 3600.0

let validate spec =
  let ( let* ) = Result.bind in
  let check cond msg = if cond then Ok () else Error msg in
  let prob name p =
    check (Float.is_finite p && p > 0.0 && p < 1.0) (Printf.sprintf "%s must lie in (0,1)" name)
  in
  let* () = check (spec.count >= 1) "count must be at least 1" in
  let* () = Taskset.validate (taskset_spec spec) in
  let* () =
    match List.find_opt (fun b -> Benchmarks.Registry.find b = None) spec.benchmarks with
    | Some b -> Error (Printf.sprintf "unknown benchmark %s" b)
    | None -> Ok ()
  in
  let* () = check (spec.reexec_budget >= 0) "re-execution budget must be non-negative" in
  let* () = check (spec.k_max >= spec.reexec_budget) "k_max must be at least the budget" in
  let* () = check (spec.max_points >= 2) "max_points must be at least 2" in
  let* () = prob "pfail" spec.pfail in
  let* () =
    check
      (Float.is_finite spec.fault_rate && spec.fault_rate >= 0.0 && spec.fault_rate < 1.0)
      "fault_rate must lie in [0,1)"
  in
  let* () =
    check (Float.is_finite spec.clock_mhz && spec.clock_mhz > 0.0) "clock_mhz must be positive"
  in
  let* () = prob "rep_target" spec.rep_target in
  let* () = check (spec.targets <> []) "target list is empty" in
  let* () =
    match
      List.find_opt (fun t -> not (Float.is_finite t) || t <= 0.0 || t > 1.0) spec.targets
    with
    | Some t -> Error (Printf.sprintf "target %g outside (0,1]" t)
    | None -> Ok ()
  in
  match Cache.Config.make ~sets:spec.sets ~ways:spec.ways ~line_bytes:spec.line () with
  | (_ : Cache.Config.t) -> Ok ()
  | exception Invalid_argument msg -> Error ("invalid cache configuration: " ^ msg)

let make ?(count = 100) ?(n_tasks = 4) ?(utilisation = 0.6) ?(seed = 42)
    ?(policy = Analysis.Rm) ?(reexec_budget = 1) ?(k_max = 3)
    ?(targets = Analysis.default_targets) ?(pfail = 1e-4)
    ?(mechanism = Pwcet.Mechanism.Shared_reliable_buffer) ?(sets = 16) ?(ways = 4) ?(line = 16)
    ?(fault_rate = 1e-4) ?(clock_mhz = 100.0) ?(rep_target = 1e-9) ?(max_points = 512)
    ?(benchmarks = Benchmarks.Registry.names) () =
  let spec =
    {
      count;
      n_tasks;
      utilisation;
      seed;
      policy;
      reexec_budget;
      k_max;
      targets;
      pfail;
      mechanism;
      sets;
      ways;
      line;
      fault_rate;
      clock_mhz;
      rep_target;
      max_points;
      benchmarks;
    }
  in
  Result.map (fun () -> spec) (validate spec)

let float_key f = Int64.to_string (Int64.bits_of_float f)

let identity spec =
  [
    ("kind", "sched-campaign");
    ("code", Pwcet.Estimator.code_version);
    ("count", string_of_int spec.count);
    ("n_tasks", string_of_int spec.n_tasks);
    ("utilisation", float_key spec.utilisation);
    ("seed", string_of_int spec.seed);
    ("policy", Analysis.policy_name spec.policy);
    ("budget", string_of_int spec.reexec_budget);
    ("k_max", string_of_int spec.k_max);
    ("targets", String.concat "," (List.map float_key spec.targets));
    ("pfail", float_key spec.pfail);
    ("mechanism", Pwcet.Mechanism.short_name spec.mechanism);
    ("sets", string_of_int spec.sets);
    ("ways", string_of_int spec.ways);
    ("line", string_of_int spec.line);
    ("fault_rate", float_key spec.fault_rate);
    ("clock_mhz", float_key spec.clock_mhz);
    ("rep_target", float_key spec.rep_target);
    ("max_points", string_of_int spec.max_points);
    ("benchmarks", String.concat "," spec.benchmarks);
  ]

(* --- per-benchmark laws ------------------------------------------------ *)

type bench_law = {
  bench : string;
  law : Prob.Dist.t;
  wcet_ff : int;
  law_rung : Robust.Rung.t;
}

let law_of_estimate spec ~bench (est : Pwcet.Estimator.estimate) =
  let wcet_ff = Pwcet.Estimator.fault_free_wcet est.task in
  (* Shift reuses the penalty's exceedance array bit-for-bit; the
     weight-1 mixture is the engine's own upward-conservative re-cap
     down to the sched layer's (much smaller) point budget. *)
  let law =
    Prob.Dist.mixture ~max_points:spec.max_points
      [ (1.0, Prob.Dist.shift wcet_ff est.penalty) ]
  in
  { bench; law; wcet_ff; law_rung = Pwcet.Estimator.worst_rung est }

let distinct_benchmarks spec =
  let seen = Hashtbl.create 31 in
  List.filter
    (fun b ->
      if Hashtbl.mem seen b then false
      else begin
        Hashtbl.add seen b ();
        true
      end)
    spec.benchmarks

let laws ?store ?budget ?(jobs = 1) spec =
  (match validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Campaign.laws: " ^ msg));
  let config = Cache.Config.make ~sets:spec.sets ~ways:spec.ways ~line_bytes:spec.line () in
  let compute bench =
    let entry = Option.get (Benchmarks.Registry.find bench) in
    let compiled = Minic.Compile.compile entry.Benchmarks.Registry.program in
    let task =
      Pwcet.Estimator.prepare ~program:compiled.Minic.Compile.program ~config ?budget ?store ()
    in
    let est =
      Pwcet.Estimator.estimate task ~pfail:spec.pfail ~mechanism:spec.mechanism ?budget ?store
        ()
    in
    law_of_estimate spec ~bench est
  in
  Array.to_list (Parallel.Pool.map ~jobs compute (Array.of_list (distinct_benchmarks spec)))

(* --- results ----------------------------------------------------------- *)

type task_row = {
  bench : string;
  utilisation : float;
  period : int;
  p_exec : float;
  p_job : float;
  p_hour : float;
  jobs_per_hour : float;
  task_rung : Robust.Rung.t;
  capped : bool;
  error : Robust.Pwcet_error.t option;
}

type set_result = {
  set_index : int;
  rows : task_row list;
  p_system_hour : float;
  rung : Robust.Rung.t;
  capped : bool;
  degraded : bool;
  passes : (float * bool) list;
  min_budget : (float * int option) list;
}

let result_of_verdict (v : Analysis.verdict) =
  {
    set_index = v.set_index;
    rows =
      List.map
        (fun (tv : Analysis.task_verdict) ->
          {
            bench = tv.model.bench;
            utilisation = tv.model.utilisation;
            period = tv.model.period;
            p_exec = tv.model.p_exec;
            p_job = tv.p_job;
            p_hour = tv.p_hour;
            jobs_per_hour = tv.jobs_per_hour;
            task_rung = tv.task_rung;
            capped = tv.capped;
            error = tv.error;
          })
        v.tasks;
    p_system_hour = v.p_system_hour;
    rung = v.rung;
    capped = v.capped;
    degraded = v.degraded;
    passes = v.passes;
    min_budget = v.min_budget;
  }

let put_bool w b = Store.Wire.put_int w (if b then 1 else 0)

let get_bool r =
  match Store.Wire.get_int r with
  | 0 -> false
  | 1 -> true
  | n -> Store.Wire.malformed (Printf.sprintf "bad boolean %d" n)

let put_rung w rung = Store.Wire.put_int w (Robust.Rung.to_tag rung)

let get_rung r =
  match Robust.Rung.of_tag (Store.Wire.get_int r) with
  | Some rung -> rung
  | None -> Store.Wire.malformed "unknown rung tag"

let result_to_wire res =
  let w = Store.Wire.writer () in
  Store.Wire.put_int w res.set_index;
  Store.Wire.put_int w (List.length res.rows);
  List.iter
    (fun row ->
      Store.Wire.put_string w row.bench;
      Store.Wire.put_float w row.utilisation;
      Store.Wire.put_int w row.period;
      Store.Wire.put_float w row.p_exec;
      Store.Wire.put_float w row.p_job;
      Store.Wire.put_float w row.p_hour;
      Store.Wire.put_float w row.jobs_per_hour;
      put_rung w row.task_rung;
      put_bool w row.capped;
      match row.error with
      | None ->
        Store.Wire.put_string w "";
        Store.Wire.put_string w ""
      | Some e ->
        Store.Wire.put_string w (Robust.Pwcet_error.category e);
        Store.Wire.put_string w (Robust.Pwcet_error.message e))
    res.rows;
  Store.Wire.put_float w res.p_system_hour;
  put_rung w res.rung;
  put_bool w res.capped;
  put_bool w res.degraded;
  Store.Wire.put_int w (List.length res.passes);
  List.iter
    (fun (target, ok) ->
      Store.Wire.put_float w target;
      put_bool w ok)
    res.passes;
  Store.Wire.put_int w (List.length res.min_budget);
  List.iter
    (fun (target, k) ->
      Store.Wire.put_float w target;
      Store.Wire.put_int w (match k with None -> -1 | Some k -> k))
    res.min_budget;
  Store.Wire.contents w

let result_of_wire data =
  Store.Wire.decode data (fun r ->
      let set_index = Store.Wire.get_int r in
      let n_rows = Store.Wire.get_int r in
      if n_rows < 0 then Store.Wire.malformed "negative row count";
      let rows =
        List.init n_rows (fun _ ->
            let bench = Store.Wire.get_string r in
            let utilisation = Store.Wire.get_float r in
            let period = Store.Wire.get_int r in
            let p_exec = Store.Wire.get_float r in
            let p_job = Store.Wire.get_float r in
            let p_hour = Store.Wire.get_float r in
            let jobs_per_hour = Store.Wire.get_float r in
            let task_rung = get_rung r in
            let capped = get_bool r in
            let cat = Store.Wire.get_string r in
            let msg = Store.Wire.get_string r in
            let error =
              if cat = "" then None
              else
                match Robust.Pwcet_error.of_category cat msg with
                | Some e -> Some e
                | None -> Store.Wire.malformed ("unknown error category " ^ cat)
            in
            {
              bench;
              utilisation;
              period;
              p_exec;
              p_job;
              p_hour;
              jobs_per_hour;
              task_rung;
              capped;
              error;
            })
      in
      let p_system_hour = Store.Wire.get_float r in
      let rung = get_rung r in
      let capped = get_bool r in
      let degraded = get_bool r in
      let n_passes = Store.Wire.get_int r in
      if n_passes < 0 then Store.Wire.malformed "negative pass count";
      let passes =
        List.init n_passes (fun _ ->
            let target = Store.Wire.get_float r in
            let ok = get_bool r in
            (target, ok))
      in
      let n_min = Store.Wire.get_int r in
      if n_min < 0 then Store.Wire.malformed "negative min-budget count";
      let min_budget =
        List.init n_min (fun _ ->
            let target = Store.Wire.get_float r in
            let k = Store.Wire.get_int r in
            (target, if k < 0 then None else Some k))
      in
      { set_index; rows; p_system_hour; rung; capped; degraded; passes; min_budget })

let digest_of_results results =
  Digest.to_hex (Digest.string (String.concat "" (List.map result_to_wire results)))

(* --- analysis ---------------------------------------------------------- *)

let params_of_spec spec =
  {
    Analysis.policy = spec.policy;
    budget = spec.reexec_budget;
    k_max = spec.k_max;
    max_points = spec.max_points;
    cycles_per_hour = cycles_per_hour spec;
    targets = spec.targets;
  }

let models_of_set spec laws (ts : Taskset.t) =
  let cph = cycles_per_hour spec in
  Array.map
    (fun (t : Taskset.task) ->
      match List.find_opt (fun (bl : bench_law) -> bl.bench = t.bench) laws with
      | None -> invalid_arg (Printf.sprintf "Campaign: no law for benchmark %s" t.bench)
      | Some bl ->
        Analysis.model_of_law ~bench:t.bench ~utilisation:t.utilisation ~law:bl.law
          ~rep_target:spec.rep_target ~fault_rate_per_hour:spec.fault_rate ~cycles_per_hour:cph
          ~rung:bl.law_rung)
    (Array.of_list ts.tasks)

let analyze_set ?budget ?(mc_samples = 0) ?mc_seed spec laws ~index =
  let ts = Taskset.generate (taskset_spec spec) ~index in
  let models = models_of_set spec laws ts in
  let verdict = Analysis.analyze ?budget ~params:(params_of_spec spec) ~set_index:index models in
  let result = result_of_verdict verdict in
  let mc =
    if mc_samples <= 0 then None
    else begin
      let base = Option.value mc_seed ~default:spec.seed in
      (* Per-set seed: avalanche-mixed so sets don't share sample
         streams; still a pure function of (spec seed, index). *)
      let seed = Sim.Rng.mix (base + (index * 0x9e3779)) in
      let analytic =
        Array.of_list (List.map (fun (tv : Analysis.task_verdict) -> tv.p_job) verdict.tasks)
      in
      Some
        (Montecarlo.run ~seed ~samples:mc_samples ~reexec_budget:spec.reexec_budget
           ~policy:spec.policy ~models ~analytic)
    end
  in
  (result, mc)

type t = {
  spec : spec;
  results : set_result list;
  mc : (int * Montecarlo.t) list;
  digest : string;
}

let run_with_laws ?budget ?(jobs = 1) ?mc_samples ?mc_seed spec laws =
  (match validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Campaign.run: " ^ msg));
  let out =
    Parallel.Pool.map ~jobs
      (fun index -> analyze_set ?budget ?mc_samples ?mc_seed spec laws ~index)
      (Array.init spec.count (fun i -> i))
  in
  let results = Array.to_list (Array.map fst out) in
  let mc =
    Array.to_list out
    |> List.concat_map (fun ((r : set_result), m) ->
           match m with Some m -> [ (r.set_index, m) ] | None -> [])
  in
  { spec; results; mc; digest = digest_of_results results }

let run ?store ?budget ?jobs ?mc_samples ?mc_seed spec =
  let bench_laws = laws ?store ?budget ?jobs spec in
  run_with_laws ?budget ?jobs ?mc_samples ?mc_seed spec bench_laws

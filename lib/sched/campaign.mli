(** Schedulability campaigns: many task sets, one pool of per-benchmark
    pWCET laws.

    The expensive work — static analysis and fault-penalty estimation
    per benchmark — depends only on (benchmark, geometry, mechanism,
    pfail), not on the task set, so a campaign computes each distinct
    benchmark's law exactly once ({!laws}, store-backed via
    {!Pwcet.Estimator}'s artifact keys) and fans the cheap per-set
    analysis out over domains. Task sets are pure functions of
    [(spec, index)] ({!Taskset.generate}), and unbudgeted analyses are
    pure functions of their inputs, so the campaign digest is
    bit-identical for every [jobs] value; budgeted runs trade that for
    wall-clock degradation (like the estimator's store bypass) and are
    deliberately excluded from the determinism contract. *)

type spec = {
  count : int;  (** task sets in the campaign *)
  n_tasks : int;
  utilisation : float;  (** total, in (0, n_tasks] *)
  seed : int;
  policy : Analysis.policy;
  reexec_budget : int;  (** k read by the headline verdict *)
  k_max : int;  (** top of the minimal-budget scan *)
  targets : float list;
  pfail : float;  (** per-bit permanent failure probability *)
  mechanism : Pwcet.Mechanism.t;
  sets : int;
  ways : int;
  line : int;  (** cache geometry, as the estimator takes it *)
  fault_rate : float;  (** transient (detected) faults per hour, in [0,1) *)
  clock_mhz : float;
  rep_target : float;  (** quantile provisioning each task's budget *)
  max_points : int;  (** convolution cap for the sched layer *)
  benchmarks : string list;
}

val make :
  ?count:int ->
  ?n_tasks:int ->
  ?utilisation:float ->
  ?seed:int ->
  ?policy:Analysis.policy ->
  ?reexec_budget:int ->
  ?k_max:int ->
  ?targets:float list ->
  ?pfail:float ->
  ?mechanism:Pwcet.Mechanism.t ->
  ?sets:int ->
  ?ways:int ->
  ?line:int ->
  ?fault_rate:float ->
  ?clock_mhz:float ->
  ?rep_target:float ->
  ?max_points:int ->
  ?benchmarks:string list ->
  unit ->
  (spec, string) result
(** Validated construction; the defaults are a small RM campaign over
    the whole registry (100 sets of 4 tasks at total utilisation 0.6,
    budget 1, scan to 3, pfail 1e-4, SRB, 16x4x16 geometry, fault rate
    1e-4/hour at 100 MHz, rep target 1e-9, 512-point cap). *)

val validate : spec -> (unit, string) result
val cycles_per_hour : spec -> float

val taskset_spec : spec -> Taskset.spec
(** The generation-relevant projection of the spec. *)

val distinct_benchmarks : spec -> string list
(** [spec.benchmarks] with duplicates dropped, first occurrence kept —
    the order {!laws} computes (and callers must supply) laws in. *)

val identity : spec -> (string * string) list
(** Labelled key components pinning everything a campaign result
    depends on — every spec field plus {!Pwcet.Estimator.code_version}
    (floats by IEEE bit pattern) — the journal/run key for resumable
    CLI runs and the dedup key for service requests. *)

(** {2 Per-benchmark laws} *)

type bench_law = {
  bench : string;
  law : Prob.Dist.t;
      (** single-execution pWCET law [wcet_ff + penalty], re-capped to
          the spec's [max_points] *)
  wcet_ff : int;
  law_rung : Robust.Rung.t;
}

val law_of_estimate : spec -> bench:string -> Pwcet.Estimator.estimate -> bench_law
(** Shift the estimate's penalty by its fault-free WCET and re-cap to
    the sched layer's [max_points] — the adapter the service layer
    uses to feed its own deduplicated estimates into
    {!run_with_laws}. *)

val laws :
  ?store:Store.Artifact.t ->
  ?budget:Robust.Budget.t ->
  ?jobs:int ->
  spec ->
  bench_law list
(** One law per distinct benchmark in [spec.benchmarks], in that
    order, computed across [jobs] domains. [store] caches the
    underlying artifacts under the estimator's PR-5 keys; budgeted
    runs bypass it (estimator contract).
    @raise Invalid_argument when {!validate} rejects the spec. *)

(** {2 Results} *)

type task_row = {
  bench : string;
  utilisation : float;
  period : int;
  p_exec : float;
  p_job : float;
  p_hour : float;
  jobs_per_hour : float;
  task_rung : Robust.Rung.t;
  capped : bool;
  error : Robust.Pwcet_error.t option;
}

type set_result = {
  set_index : int;
  rows : task_row list;
  p_system_hour : float;
  rung : Robust.Rung.t;
  capped : bool;
  degraded : bool;
  passes : (float * bool) list;
  min_budget : (float * int option) list;
}

val result_of_verdict : Analysis.verdict -> set_result

val result_to_wire : set_result -> string
(** Canonical bytes (deterministic {!Store.Wire} encoding) — the unit
    of journal resume and of the campaign digest. *)

val result_of_wire : string -> (set_result, string) result

val digest_of_results : set_result list -> string
(** MD5 hex over the concatenated canonical encodings, in list order —
    equal digests mean equal reported campaigns, bit for bit. *)

val analyze_set :
  ?budget:Robust.Budget.t ->
  ?mc_samples:int ->
  ?mc_seed:int ->
  spec ->
  bench_law list ->
  index:int ->
  set_result * Montecarlo.t option
(** Generate and analyse the [index]-th task set. [mc_samples > 0]
    additionally cross-validates against {!Montecarlo} (seeded
    per-set from [mc_seed], default the spec seed). *)

type t = {
  spec : spec;
  results : set_result list;  (** in set order *)
  mc : (int * Montecarlo.t) list;  (** per set index, when requested *)
  digest : string;
}

val run_with_laws :
  ?budget:Robust.Budget.t ->
  ?jobs:int ->
  ?mc_samples:int ->
  ?mc_seed:int ->
  spec ->
  bench_law list ->
  t

val run :
  ?store:Store.Artifact.t ->
  ?budget:Robust.Budget.t ->
  ?jobs:int ->
  ?mc_samples:int ->
  ?mc_seed:int ->
  spec ->
  t
(** {!laws} followed by {!run_with_laws}. *)

type task_stat = {
  misses : int;
  empirical : float;
  analytic : float;
  noise : float;
  pass : bool;
}

type t = {
  samples : int;
  seed : int;
  tasks : task_stat list;
  pass : bool;
}

(* One job of [m]: executions until success or budget exhaustion, each
   execution drawn from the task's law by inverse CDF. [u] lies in
   [0,1), so the tail target 1-u lies in (0,1] and the quantile is the
   smallest support point whose strict tail drops to it — the exact
   inverse of the staircase the analysis integrates. *)
let simulate_job uniform (m : Analysis.model) ~budget =
  let total = ref 0 in
  let succeeded = ref false in
  let attempt = ref 0 in
  while (not !succeeded) && !attempt <= budget do
    incr attempt;
    let u = uniform () in
    total := !total + Prob.Dist.quantile m.exec ~target:(1.0 -. u);
    if uniform () >= m.p_exec then succeeded := true
  done;
  (!total, !succeeded)

let run ~seed ~samples ~reexec_budget ~policy ~models ~analytic =
  if samples < 1 then invalid_arg "Montecarlo.run: samples must be at least 1";
  if reexec_budget < 0 then invalid_arg "Montecarlo.run: negative re-execution budget";
  let n = Array.length models in
  if n = 0 then invalid_arg "Montecarlo.run: empty model array";
  if Array.length analytic <> n then invalid_arg "Montecarlo.run: analytic/model length mismatch";
  let misses = Array.make n 0 in
  for sample = 0 to samples - 1 do
    let stream = Sim.Rng.stream ~seed ~sample in
    let draw = ref 0 in
    let uniform () =
      let u = Sim.Rng.uniform ~stream ~draw:!draw in
      incr draw;
      u
    in
    (* Fixed draw order — task by task, own job first, then each
       interfering task's jobs in index order — so the run is a pure
       function of (seed, sample). *)
    for i = 0 to n - 1 do
      let own, ok = simulate_job uniform models.(i) ~budget:reexec_budget in
      let interference = ref 0 in
      for j = 0 to n - 1 do
        if j <> i then begin
          let jobs = Analysis.interference_jobs ~policy models i j in
          for _ = 1 to jobs do
            let t, _ = simulate_job uniform models.(j) ~budget:reexec_budget in
            interference := !interference + t
          done
        end
      done;
      if (not ok) || !interference + own > models.(i).period then
        misses.(i) <- misses.(i) + 1
    done
  done;
  let nf = float_of_int samples in
  let rev = ref [] in
  for i = n - 1 downto 0 do
    let empirical = float_of_int misses.(i) /. nf in
    (* Same 5-sigma convention as Validate/Audit: binomial std-dev at
       the analytic rate (floored at one observable event) plus a
       one-event quantisation term. *)
    let noise = (5.0 *. sqrt (Float.max analytic.(i) (1.0 /. nf) /. nf)) +. (1.0 /. nf) in
    rev :=
      {
        misses = misses.(i);
        empirical;
        analytic = analytic.(i);
        noise;
        pass = empirical <= analytic.(i) +. noise;
      }
      :: !rev
  done;
  let tasks = !rev in
  { samples; seed; tasks; pass = List.for_all (fun (s : task_stat) -> s.pass) tasks }

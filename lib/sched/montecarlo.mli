(** Monte-Carlo cross-validation of the analytic deadline-failure
    probabilities.

    Simulates exactly the probabilistic model {!Analysis} integrates:
    per sample, every task's job draws its executions from the task's
    single-execution law (inverse-CDF over the same
    {!Prob.Dist.quantile} machinery the analysis reads), each execution
    faults independently with the task's [p_exec], re-execution stops
    at the budget, and interfering jobs run their full re-execution
    sequences regardless of outcome. A job misses when it exhausts its
    budget or when interference plus its own executed cycles exceed
    the deadline.

    Because the sampler and the integrator share one model, the
    analytic probability upper-bounds the empirical frequency up to
    sampling noise — strictly upper-bounds it once convolution capping
    binds (capping only moves mass towards higher penalties). The
    acceptance test is the same 5-sigma convention as
    [Pwcet.Validate]: [empirical <= analytic + noise] with
    [noise = 5 sqrt(max analytic (1/n) / n) + 1/n].

    Draws are {!Sim.Rng} per-sample streams: sample [s] of seed [g] is
    reproducible in isolation, and the whole run is a pure function of
    [(seed, samples, models, budget, policy)]. *)

type task_stat = {
  misses : int;
  empirical : float;
  analytic : float;  (** the analysis' per-job bound for this task *)
  noise : float;  (** 5-sigma allowance at this sample count *)
  pass : bool;  (** [empirical <= analytic + noise] *)
}

type t = {
  samples : int;
  seed : int;
  tasks : task_stat list;
  pass : bool;  (** every task passed *)
}

val run :
  seed:int ->
  samples:int ->
  reexec_budget:int ->
  policy:Analysis.policy ->
  models:Analysis.model array ->
  analytic:float array ->
  t
(** [analytic.(i)] is task [i]'s per-job deadline-failure bound (the
    [p_job] of the corresponding {!Analysis.task_verdict}).
    @raise Invalid_argument on [samples < 1], a negative budget, or an
    [analytic] array whose length differs from [models]. *)

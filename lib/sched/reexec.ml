let p_exec ~fault_rate_per_hour ~cycles_per_hour ~exec_cycles =
  if not (Float.is_finite cycles_per_hour) || cycles_per_hour <= 0.0 then
    invalid_arg "Reexec.p_exec: cycles_per_hour must be positive";
  if exec_cycles < 0 then invalid_arg "Reexec.p_exec: negative exec_cycles";
  (* (1 - rate)^(1/cycles_per_hour) per cycle, composed over C cycles,
     collapses to a single real exponent — one log1p/expm1 round trip
     instead of two, so there is no intermediate per-cycle probability
     to round to 0. Probfloat validates the rate. *)
  Numeric.Probfloat.one_minus_pow_one_minus_real ~p:fault_rate_per_hour
    ~n:(float_of_int exec_cycles /. cycles_per_hour)

let check_weight_args p budget =
  if not (Float.is_finite p) || p < 0.0 || p > 1.0 then
    invalid_arg "Reexec: p_exec outside [0,1]";
  if budget < 0 then invalid_arg "Reexec: negative re-execution budget"

let attempt_weights ~p ~budget =
  check_weight_args p budget;
  let weights = Array.make (budget + 1) 0.0 in
  let pow = ref 1.0 in
  for j = 0 to budget do
    weights.(j) <- !pow *. (1.0 -. p);
    pow := !pow *. p
  done;
  (weights, !pow)

let powers ?max_points ~budget exec =
  check_weight_args 0.0 budget;
  let out = Array.make (budget + 1) exec in
  for j = 1 to budget do
    out.(j) <- Prob.Dist.convolve ?max_points out.(j - 1) exec
  done;
  out

let mixture_of_weights ?max_points ~weights ~budget powers =
  if Array.length powers <= budget then invalid_arg "Reexec: powers ladder shorter than budget";
  let parts = ref [] in
  for j = budget downto 0 do
    parts := (weights.(j), powers.(j)) :: !parts
  done;
  Prob.Dist.mixture ?max_points !parts

let own_demand ?max_points ~p ~budget powers =
  let weights, _residual = attempt_weights ~p ~budget in
  mixture_of_weights ?max_points ~weights ~budget powers

let interference_demand ?max_points ~p ~budget powers =
  let weights, residual = attempt_weights ~p ~budget in
  (* The never-succeeding job still ran all budget+1 executions: its
     mass rides the top rung, restoring total mass 1. *)
  weights.(budget) <- weights.(budget) +. residual;
  mixture_of_weights ?max_points ~weights ~budget powers

(** Bounded re-execution on fault detection — the Reghenzani-style
    per-execution fault-probability composition.

    A job runs its task once; when the detection mechanism flags a
    fault it re-executes, up to a budget of [k] re-executions ([k + 1]
    executions in total). Each execution independently faults with
    probability [p_exec], derived from a per-hour transient fault rate
    composed over the execution's share of an hour of cycles — the
    composition runs in log space ({!Numeric.Probfloat}) so rates down
    to 1e-19/hour survive billion-cycle exponents.

    Two demand laws come out of the model, and they are deliberately
    different:
    {ul
    {- {!own_demand} — the law of the {e completing} job's executed
       work: a sub-distribution with weight [p^j (1-p)] on the
       [(j+1)]-fold convolution of the execution law, missing the
       residual mass [p^(k+1)] of the never-succeeding case. The
       verdict layer adds that residual back as certain failure —
       a job that exhausts its budget has failed no matter what the
       clock says.}
    {- {!interference_demand} — the law of the processor time a job
       {e occupies} regardless of outcome: the same mixture but with
       the full mass [p^k] of "reached the last execution" on the
       [(k+1)]-fold convolution, totalling 1. Interference from a
       failing job is still interference.}} *)

val p_exec : fault_rate_per_hour:float -> cycles_per_hour:float -> exec_cycles:int -> float
(** Per-execution fault probability: [1 - (1 - rate)^(C / cycles_per_hour)].
    @raise Invalid_argument on a rate outside [0,1], a non-positive
    [cycles_per_hour], or negative [exec_cycles]. *)

val attempt_weights : p:float -> budget:int -> float array * float
(** [(weights, residual)]: [weights.(j)] (0-based) is the probability
    that the job completes on execution [j + 1], i.e. [p^j * (1 - p)]
    for [j <= budget]; [residual = p^(budget+1)] is the probability
    that every execution faults. The masses sum to 1 exactly in real
    arithmetic (telescoping product).
    @raise Invalid_argument on [p] outside [0,1] or a negative budget. *)

val powers : ?max_points:int -> budget:int -> Prob.Dist.t -> Prob.Dist.t array
(** [powers ~budget exec]: element [j] is the [(j+1)]-fold convolution
    of [exec], for [j = 0..budget] — the shared ladder both demand
    laws mix over, built incrementally so a [k]-scan pays each
    convolution once. *)

val own_demand : ?max_points:int -> p:float -> budget:int -> Prob.Dist.t array -> Prob.Dist.t
(** [own_demand ~p ~budget powers] — sub-distribution of the completing
    job's executed cycles (see above); [total_mass] is
    [1 - p^(budget+1)] up to rounding. [powers] must come from
    {!powers} with a budget of at least [budget]. *)

val interference_demand :
  ?max_points:int -> p:float -> budget:int -> Prob.Dist.t array -> Prob.Dist.t
(** Full-mass law of the processor time one job occupies. *)
